// Figure 6: txRate vs rxRate as the rate signal (§3.4). A 2-to-1 congestion
// scenario; with rxRate the queue oscillates before converging, with txRate
// it converges smoothly.
#include <cstdio>

#include "bench/bench_util.h"
#include "stats/queue_monitor.h"

using namespace hpcc;

namespace {

stats::TimeSeries RunOne(const bench::Flags& flags, const char* scheme,
                         sim::TimePs horizon) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = 3;
  cfg.cc.scheme = scheme;
  cfg.cc.hpcc.expected_flows = 2;
  cfg.seed = flags.seed;
  runner::Experiment e(cfg);
  const auto& h = e.hosts();
  e.AddFlow(h[0], h[2], 1'000'000'000, 0);
  e.AddFlow(h[1], h[2], 1'000'000'000, 0);
  // Queue of the switch port toward the receiver (port index 2 of the star).
  net::SwitchNode& sw = e.topology().switch_node(e.topology().switches()[0]);
  stats::PortQueueSampler sampler(&e.simulator(), &sw.port(2), sim::Us(2));
  sampler.Start(horizon);
  e.RunUntil(horizon);
  return sampler.series();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const sim::TimePs horizon = sim::Us(
      flags.duration_ms > 0 ? static_cast<int64_t>(flags.duration_ms * 1000)
                            : 300);
  bench::PrintHeader("Figure 6", "txRate vs rxRate queue length, 2-to-1");

  const stats::TimeSeries tx = RunOne(flags, "hpcc", horizon);
  const stats::TimeSeries rx = RunOne(flags, "hpcc-rxrate", horizon);

  std::printf("\nqueue length over time (KB):\n");
  std::printf("  %10s  %12s  %12s\n", "time", "HPCC(txRate)", "HPCC(rxRate)");
  const auto& tp = tx.points();
  const auto& rp = rx.points();
  const size_t n = std::min(tp.size(), rp.size());
  const size_t stride = std::max<size_t>(1, n / 30);
  for (size_t i = 0; i < n; i += stride) {
    std::printf("  %8.1fus  %12.1f  %12.1f\n", sim::ToUs(tp[i].first),
                tp[i].second / 1e3, rp[i].second / 1e3);
  }

  // Oscillation metric: peak and late-window variability.
  auto late_stats = [n](const stats::TimeSeries& s) {
    stats::PercentileTracker t;
    for (size_t i = n / 2; i < s.points().size(); ++i) {
      t.Add(s.points()[i].second);
    }
    return t;
  };
  const stats::PercentileTracker lt = late_stats(tx);
  const stats::PercentileTracker lr = late_stats(rx);
  std::printf("\npeak queue:   txRate %.1f KB, rxRate %.1f KB\n",
              tx.MaxValue() / 1e3, rx.MaxValue() / 1e3);
  std::printf("late-half p95: txRate %.1f KB, rxRate %.1f KB\n",
              lt.Percentile(95) / 1e3, lr.Percentile(95) / 1e3);
  std::printf(
      "(paper: rxRate oscillates before converging; txRate converges "
      "gracefully)\n");
  return 0;
}
