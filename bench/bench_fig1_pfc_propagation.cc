// Figure 1 (substitute): PFC pause propagation depth and suppressed
// bandwidth. The paper's figure is production telemetry; we regenerate the
// same two distributions from simulated incast-heavy DCQCN runs (see
// DESIGN.md's substitution table).
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"

using namespace hpcc;

int main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintHeader(
      "Figure 1 (substitute)",
      "PFC pause propagation depth & suppressed bandwidth under DCQCN");

  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kFatTree;
  cfg.fattree = bench::BenchFatTree(flags.full);
  // Shallow-buffer switches make pause trees reproducible at mini scale.
  cfg.cc.scheme = "dcqcn";
  cfg.load = 0.4;
  cfg.trace = "fbhadoop";
  cfg.duration =
      sim::Ms(flags.duration_ms > 0 ? static_cast<int64_t>(flags.duration_ms)
                                    : (flags.full ? 20 : 6));
  cfg.incast = true;
  cfg.incast_opts.fan_in = flags.full ? 60 : 14;
  cfg.incast_opts.flow_bytes = 1'000'000;
  cfg.incast_opts.first_event = sim::Us(200);
  cfg.incast_opts.period = sim::Us(400);
  cfg.incast_opts.fixed_receiver = 0;
  cfg.seed = flags.seed;

  runner::Experiment e(cfg);
  const uint32_t receiver = e.hosts()[0];
  runner::ExperimentResult r = e.Run();
  const auto& events = e.pfc_monitor().events();

  std::printf("\nrun: %s\n", r.Summary().c_str());
  if (events.empty()) {
    std::printf("no PFC events observed — increase load/incast (try --full)\n");
    return 0;
  }

  // Fig 1a: propagation depth = hop distance from the congestion point (the
  // incast receiver) to the paused egress.
  std::map<int, int> depth_count;
  for (const auto& ev : events) {
    depth_count[e.topology().Distance(ev.node, receiver)]++;
  }
  std::printf("\nFig 1a — pause propagation depth (hops from receiver):\n");
  int cum = 0;
  for (const auto& [depth, count] : depth_count) {
    cum += count;
    std::printf("  depth %d: %4d events  (CDF %.1f%%)\n", depth, count,
                100.0 * cum / static_cast<double>(events.size()));
  }

  // Fig 1b: suppressed bandwidth — the fraction of total host capacity
  // behind paused ports, sampled over the time any pause is active.
  int64_t total_host_bps = 0;
  for (uint32_t h : e.hosts()) {
    total_host_bps += e.topology().host(h).port(0).bandwidth_bps();
  }
  // Count only pauses that silence host NICs: that is the capacity the
  // fabric actually loses to innocent senders (§2.2).
  std::vector<std::pair<sim::TimePs, int64_t>> deltas;
  for (const auto& ev : events) {
    if (e.topology().node(ev.node).IsSwitch()) continue;
    deltas.emplace_back(ev.start, ev.port_bps);
    deltas.emplace_back(ev.end, -ev.port_bps);
  }
  std::sort(deltas.begin(), deltas.end());
  stats::PercentileTracker suppressed;
  int64_t current = 0;
  sim::TimePs prev = 0;
  for (const auto& [t, d] : deltas) {
    if (current > 0 && t > prev) {
      // weight by duration: add one sample per microsecond of pause time
      const int64_t us = std::max<int64_t>(1, (t - prev) / sim::kPsPerUs);
      for (int64_t i = 0; i < std::min<int64_t>(us, 1000); ++i) {
        suppressed.Add(100.0 * static_cast<double>(current) /
                       static_cast<double>(total_host_bps));
      }
    }
    current += d;
    prev = t;
  }
  std::printf("\nFig 1b — suppressed bandwidth while pauses active "
              "(%% of host capacity):\n");
  for (double p : {50.0, 90.0, 99.0, 100.0}) {
    std::printf("  p%-3.0f: %.1f%%\n", p, suppressed.Percentile(p));
  }
  std::printf(
      "\n(paper: ~10%% of pauses propagate 3 hops; worst case suppresses "
      "25%% of capacity. At mini scale the incast involves most of the "
      "fleet, so suppression fractions run higher; the shape — deep "
      "propagation, heavy tail — is the point.)\n");
  return 0;
}
