// Ablations of HPCC's design choices beyond the paper's own figures:
//   - the min-qlen noise filter and the parameterless EWMA (Algorithm 1)
//   - the reciprocal-table division (§4.3) end to end
//   - eta sweep (utilization vs queue trade-off, §3.3)
//   - the Appendix A.3 alpha-fair variant across alpha
#include <cstdio>

#include "bench/bench_util.h"
#include "stats/queue_monitor.h"

using namespace hpcc;

namespace {

struct Outcome {
  double goodput_gbps;
  double q50_kb;
  double q95_kb;
  double q99_kb;
};

Outcome RunIncastSampled(const cc::CcConfig& cc, sim::TimePs horizon,
                         int int_sample_every);

Outcome RunIncast(const cc::CcConfig& cc, sim::TimePs horizon) {
  return RunIncastSampled(cc, horizon, 1);
}

Outcome RunIncastSampled(const cc::CcConfig& cc, sim::TimePs horizon,
                         int int_sample_every) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = 17;
  cfg.star.host_bps = 100'000'000'000;
  cfg.cc = cc;
  cfg.cc.hpcc.expected_flows = 16;
  cfg.int_sample_every = int_sample_every;
  runner::Experiment e(cfg);
  const auto& h = e.hosts();
  std::vector<host::Flow*> flows;
  for (int i = 0; i < 16; ++i) {
    flows.push_back(e.AddFlow(h[i], h[16], 1'000'000'000, 0));
  }
  net::SwitchNode& sw = e.topology().switch_node(e.topology().switches()[0]);
  stats::PortQueueSampler qs(&e.simulator(), &sw.port(16), sim::Us(1));
  qs.Start(horizon);
  e.RunUntil(horizon);
  stats::PercentileTracker q;
  for (const auto& [t, v] : qs.series().points()) {
    if (t > sim::Us(100)) q.Add(v);  // skip line-rate-start transient
  }
  uint64_t acked = 0;
  for (auto* f : flows) acked += f->snd_una;
  return Outcome{static_cast<double>(acked) * 8 / sim::ToSec(horizon) / 1e9,
                 q.Percentile(50) / 1e3, q.Percentile(95) / 1e3,
                 q.Percentile(99) / 1e3};
}

// Same 16-to-1 incast but across a dumbbell trunk: every flow crosses three
// INT hops, so per-link registers and the alpha aggregate genuinely differ.
Outcome RunTrunkIncast(const cc::CcConfig& cc, sim::TimePs horizon) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kDumbbell;
  cfg.dumbbell.hosts_per_side = 16;
  cfg.dumbbell.host_bps = 100'000'000'000;
  cfg.dumbbell.trunk_bps = 400'000'000'000;
  cfg.cc = cc;
  cfg.cc.hpcc.expected_flows = 16;
  runner::Experiment e(cfg);
  const auto& h = e.hosts();
  std::vector<host::Flow*> flows;
  for (int i = 0; i < 16; ++i) {
    flows.push_back(e.AddFlow(h[i], h[16], 1'000'000'000, 0));
  }
  // Receiver downlink is port index 1+0 of the right switch (trunk is 0).
  net::SwitchNode& swr = e.topology().switch_node(e.topology().switches()[1]);
  stats::PortQueueSampler qs(&e.simulator(), &swr.port(1), sim::Us(1));
  qs.Start(horizon);
  e.RunUntil(horizon);
  stats::PercentileTracker q;
  for (const auto& [t, v] : qs.series().points()) {
    if (t > sim::Us(150)) q.Add(v);
  }
  uint64_t acked = 0;
  for (auto* f : flows) acked += f->snd_una;
  return Outcome{static_cast<double>(acked) * 8 / sim::ToSec(horizon) / 1e9,
                 q.Percentile(50) / 1e3, q.Percentile(95) / 1e3,
                 q.Percentile(99) / 1e3};
}

void Row(const char* label, const Outcome& o) {
  std::printf("  %-28s goodput %6.1f Gbps   q50 %7.2f KB  q95 %7.2f KB  "
              "q99 %7.2f KB\n",
              label, o.goodput_gbps, o.q50_kb, o.q95_kb, o.q99_kb);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const sim::TimePs horizon = sim::Ms(
      flags.duration_ms > 0 ? static_cast<int64_t>(flags.duration_ms) : 2);
  bench::PrintHeader("Ablations", "HPCC design choices, 16-to-1 long flows");

  cc::CcConfig base;
  base.scheme = "hpcc";

  std::printf("\nAlgorithm-1 filters:\n");
  Row("baseline", RunIncast(base, horizon));
  {
    cc::CcConfig c = base;
    c.hpcc.use_min_qlen_filter = false;
    Row("no min-qlen filter", RunIncast(c, horizon));
  }
  {
    cc::CcConfig c = base;
    c.hpcc.use_ewma = false;
    Row("no EWMA", RunIncast(c, horizon));
  }

  std::printf("\nHardware fidelity (§4.1/§4.3):\n");
  {
    cc::CcConfig c = base;
    c.hpcc.use_div_table = true;
    Row("reciprocal table (eps=0.5%)", RunIncast(c, horizon));
  }
  {
    cc::CcConfig c = base;
    c.hpcc.wire_format = true;
    Row("Fig.7 wire-format INT", RunIncast(c, horizon));
  }
  {
    cc::CcConfig c = base;
    c.hpcc.use_div_table = true;
    c.hpcc.wire_format = true;
    Row("wire INT + recip table", RunIncast(c, horizon));
  }

  std::printf("\nINT sampling (the paper's optional efficiency extension: "
              "telemetry on every Nth packet):\n");
  for (int every : {1, 2, 4, 8}) {
    cc::CcConfig c = base;
    char label[48];
    std::snprintf(label, sizeof(label), "INT on 1/%d packets", every);
    Row(label, RunIncastSampled(c, horizon, every));
  }

  std::printf("\neta sweep (§3.3 utilization/queue trade-off; W_AI fixed at "
              "80B to isolate eta):\n");
  for (double eta : {0.90, 0.95, 0.98}) {
    cc::CcConfig c = base;
    c.hpcc.eta = eta;
    c.hpcc.wai_bytes = 80;
    char label[32];
    std::snprintf(label, sizeof(label), "eta = %.2f", eta);
    Row(label, RunIncast(c, horizon));
  }
  std::printf("  (note: with the §3.3 rule of thumb W_AI = Winit(1-eta)/N "
              "instead, a lower eta also enlarges the AI step, which can "
              "dominate the transient queue)\n");

  std::printf("\nExplicit-feedback baseline (§3.4/§6): RCP's switch-computed "
              "processor sharing vs HPCC's inflight-bytes signal:\n");
  {
    cc::CcConfig c = base;
    c.scheme = "rcp";
    Row("rcp", RunIncast(c, horizon));
    c.scheme = "rcp+win";
    Row("rcp+win", RunIncast(c, horizon));
  }

  std::printf("\nAppendix A.3 alpha-fair variant (3-hop path so the "
              "aggregate differs from the bottleneck register):\n");
  for (double alpha : {1.0, 4.0, 16.0, 128.0}) {
    cc::CcConfig c = base;
    c.scheme = "hpcc-alpha";
    c.alpha_fair = alpha;
    char label[32];
    std::snprintf(label, sizeof(label), "alpha = %g", alpha);
    Row(label, RunTrunkIncast(c, horizon));
  }
  Row("hpcc (reference)", RunTrunkIncast(base, horizon));
  std::printf("\n(expected: filters matter little in this clean fixture but "
              "guard against noise; the reciprocal table is indistinguishable "
              "from exact division; higher eta trades queue headroom for "
              "goodput; alpha->inf approaches base HPCC while small alpha "
              "penalizes multi-hop paths)\n");
  return 0;
}
