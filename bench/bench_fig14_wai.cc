// Figure 14: the W_AI trade-off on a 16-to-1 incast — W_AI beyond
// Winit(1-eta)/N sustains a standing queue; within the bound, larger W_AI
// converges to fairness faster (§3.3/§5.4).
#include <cstdio>

#include "bench/bench_util.h"
#include "stats/queue_monitor.h"
#include "stats/timeseries.h"

using namespace hpcc;

namespace {

struct Outcome {
  double q50;
  double q95;
  double q99;
  double jain_early;  // fairness shortly after start
  double jain_late;
};

Outcome RunOne(double wai_bytes, sim::TimePs horizon) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = 17;
  cfg.star.host_bps = 100'000'000'000;
  cfg.cc.scheme = "hpcc";
  cfg.cc.hpcc.wai_bytes = wai_bytes;
  runner::Experiment e(cfg);
  const auto& h = e.hosts();
  stats::GoodputSampler gp(&e.simulator(), sim::Us(20));
  for (int i = 0; i < 16; ++i) {
    // Staggered starts so fairness convergence is observable.
    host::Flow* f = e.AddFlow(h[i], h[16], 1'000'000'000, i * sim::Us(10));
    gp.Track(f, "f" + std::to_string(i));
  }
  net::SwitchNode& sw = e.topology().switch_node(e.topology().switches()[0]);
  stats::PortQueueSampler qs(&e.simulator(), &sw.port(16), sim::Us(1));
  gp.Start(horizon);
  qs.Start(horizon);
  e.RunUntil(horizon);

  stats::PercentileTracker q;
  // Skip the unavoidable startup transient (line-rate starts, §A.4).
  for (const auto& [t, v] : qs.series().points()) {
    if (t > sim::Us(100)) q.Add(v);
  }
  auto jain_at = [&gp](double frac) {
    double sum = 0;
    double sq = 0;
    for (size_t f = 0; f < gp.num_flows(); ++f) {
      const auto& pts = gp.series(f).points();
      const size_t i0 = static_cast<size_t>(pts.size() * frac);
      double g = 0;
      size_t cnt = 0;
      for (size_t i = i0; i < std::min(pts.size(), i0 + 10); ++i, ++cnt) {
        g += pts[i].second;
      }
      g /= std::max<size_t>(1, cnt);
      sum += g;
      sq += g * g;
    }
    return sum * sum / (16 * sq);
  };
  return Outcome{q.Percentile(50), q.Percentile(95), q.Percentile(99),
                 jain_at(0.25), jain_at(0.9)};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const sim::TimePs horizon = sim::Ms(
      flags.duration_ms > 0 ? static_cast<int64_t>(flags.duration_ms)
                            : (flags.full ? 10 : 2));
  bench::PrintHeader("Figure 14", "W_AI sweep: fairness vs queue, 16-to-1");
  // 16 flows at 100G, base RTT ~4.4us: the §5.4 bound is
  // Winit*(1-eta)/16 ~ 170 bytes; 300 exceeds it.
  std::printf("\n  %8s  %8s  %8s  %8s  %10s  %10s\n", "W_AI", "q50(KB)",
              "q95(KB)", "q99(KB)", "Jain(25%)", "Jain(90%)");
  for (double wai : {25.0, 50.0, 150.0, 300.0}) {
    const Outcome o = RunOne(wai, horizon);
    std::printf("  %7.0fB  %8.1f  %8.1f  %8.1f  %10.3f  %10.3f\n", wai,
                o.q50 / 1e3, o.q95 / 1e3, o.q99 / 1e3, o.jain_early,
                o.jain_late);
  }
  std::printf(
      "\n(paper: W_AI within the bound keeps q95 within a few KB; 300B "
      "sustains a standing queue (~13KB at p95) but degrades gracefully; "
      "larger W_AI reaches fairness sooner)\n");
  return 0;
}
