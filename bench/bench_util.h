// Shared helpers for the per-figure bench binaries: a tiny flag parser and
// common report formatting. Every bench runs a scaled-down instance by
// default (documented in EXPERIMENTS.md) and accepts:
//   --full            paper-scale topology / duration
//   --duration-ms=N   workload horizon
//   --seed=N
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runner/experiment.h"

namespace hpcc::bench {

struct Flags {
  bool full = false;
  double duration_ms = 0;  // 0 = bench default
  uint64_t seed = 1;
};

inline Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      f.full = true;
    } else if (arg.rfind("--duration-ms=", 0) == 0) {
      f.duration_ms = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--seed=", 0) == 0) {
      f.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--benchmark", 0) == 0) {
      // Tolerate google-benchmark style flags when the runner sweeps bench/.
    } else {
      std::fprintf(stderr,
                   "usage: %s [--full] [--duration-ms=N] [--seed=N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return f;
}

inline void PrintHeader(const char* figure, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("==============================================================\n");
}

// Standard per-run report: FCT slowdown table + queue/PFC summary.
inline void PrintResult(const char* label,
                        const runner::ExperimentResult& r) {
  std::printf("--- %s ---\n", label);
  std::printf("%s\n", r.Summary().c_str());
  std::printf("%s", r.fct->FormatTable().c_str());
  if (r.short_fct_us.Count() > 0) {
    std::printf("  short-flow latency p50/p95/p99: %.1f / %.1f / %.1f us\n",
                r.short_fct_us.Percentile(50), r.short_fct_us.Percentile(95),
                r.short_fct_us.Percentile(99));
  }
  std::printf("\n");
}

// Mini fattree used by the simulation benches unless --full.
inline topo::FatTreeOptions BenchFatTree(bool full) {
  if (full) return topo::FatTreeOptions::PaperScale();
  topo::FatTreeOptions o;
  o.pods = 2;
  o.tors_per_pod = 2;
  o.aggs_per_pod = 2;
  o.cores_per_agg = 2;
  o.hosts_per_tor = 4;  // 16 hosts
  return o;
}

inline topo::TestbedOptions BenchTestbed(bool full) {
  topo::TestbedOptions o;  // paper scale is already small (32 hosts)
  if (!full) o.servers_per_pair = 8;  // 16 hosts for quick runs
  return o;
}

}  // namespace hpcc::bench
