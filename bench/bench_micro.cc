// google-benchmark micro-benchmarks: cost of the building blocks — event
// loop, HPCC's per-ACK update (the hot path a NIC implements in hardware),
// the reciprocal table vs FP division (§4.3), and switch forwarding.
#include <benchmark/benchmark.h>

#include "bench/bench_hotpath.h"
#include "cc/dcqcn.h"
#include "core/div_table.h"
#include "core/hpcc.h"
#include "runner/experiment.h"
#include "sim/simulator.h"
#include "stats/percentile.h"

using namespace hpcc;

namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1000; ++i) {
      s.ScheduleAt(sim::Us(i), []() {});
    }
    benchmark::DoNotOptimize(s.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

// Steady-state event churn at a configurable pending-queue depth (see
// bench_hotpath.h; shared with bench_report's event_loop/schedule_run).
void BM_SimulatorSteadyChurn(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(benchgen::RunSteadyChurn(depth, 20'000));
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_SimulatorSteadyChurn)->Arg(64)->Arg(512)->Arg(4096)
    ->ArgNames({"depth"});

// RTO-style timer churn (bench_hotpath.h, shared with bench_report's
// event_loop/timer_churn): Schedule+Cancel pairs in bounded batches, so
// lazily-discarded cancel records cannot accumulate across iterations.
void BM_SimulatorTimerChurn(benchmark::State& state) {
  uint64_t fired = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    ops += benchgen::RunTimerChurn(&fired);
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(BM_SimulatorTimerChurn);

// Forward-path packet cost: data packet + echoed ACK factory round trip; in
// steady state both come from (and return to) the thread-local pool.
void BM_PacketPoolCycle(benchmark::State& state) {
  uint64_t bytes = 0;
  uint64_t i = 0;
  for (auto _ : state) {
    ++i;
    auto data = net::MakeDataPacket(7, 1, 2, i * 1000, 1000,
                                    /*int_enabled=*/true,
                                    /*ecn_capable=*/false);
    auto ack = net::MakeAck(*data, data->seq + 1000);
    bytes += static_cast<uint64_t>(data->size_bytes() + ack->size_bytes());
  }
  benchmark::DoNotOptimize(bytes);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketPoolCycle);

cc::CcContext MicroCtx() {
  cc::CcContext ctx;
  ctx.nic_bps = 100'000'000'000;
  ctx.base_rtt = sim::Us(13);
  return ctx;
}

void BM_HpccOnAck(benchmark::State& state) {
  core::HpccParams params;
  params.use_div_table = state.range(0) != 0;
  core::HpccCc cc(MicroCtx(), params);
  core::IntStack stack;
  sim::TimePs ts = sim::Us(1);
  uint64_t tx = 0;
  uint64_t seq = 0;
  for (auto _ : state) {
    stack.Clear();
    ts += sim::Us(1);
    tx += 120'000;
    for (uint32_t hop = 0; hop < 5; ++hop) {
      core::IntHop h;
      h.bandwidth_bps = 100'000'000'000;
      h.ts = ts;
      h.tx_bytes = tx + hop;
      h.qlen_bytes = static_cast<int64_t>(seq % 30'000);
      h.switch_id = hop + 1;
      stack.Push(h);
    }
    cc::AckInfo info;
    seq += 60'000;
    info.ack_seq = seq;
    info.snd_nxt = seq + 50'000;
    info.int_stack = &stack;
    cc.OnAck(info);
    benchmark::DoNotOptimize(cc.window_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HpccOnAck)->Arg(0)->Arg(1)->ArgNames({"divtable"});

void BM_DcqcnOnCnp(benchmark::State& state) {
  cc::DcqcnCc cc(MicroCtx(), cc::DcqcnParams{});
  sim::TimePs now = 0;
  for (auto _ : state) {
    now += sim::Us(100);
    cc.OnCnp(now);
    benchmark::DoNotOptimize(cc.rate_bps());
  }
}
BENCHMARK(BM_DcqcnOnCnp);

void BM_DivTableDivide(benchmark::State& state) {
  const core::DivTable table(0.005);
  double d = 1.0001;
  double acc = 0;
  for (auto _ : state) {
    d = d * 1.37;
    if (d > 1e9) d = 1.0001;
    acc += table.Divide(162500.0, d);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_DivTableDivide);

void BM_FpDivide(benchmark::State& state) {
  double d = 1.0001;
  double acc = 0;
  for (auto _ : state) {
    d = d * 1.37;
    if (d > 1e9) d = 1.0001;
    acc += 162500.0 / d;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_FpDivide);

void BM_PercentileAddAndQuery(benchmark::State& state) {
  for (auto _ : state) {
    stats::PercentileTracker t;
    for (int i = 0; i < 10'000; ++i) {
      t.Add(static_cast<double>((i * 2654435761u) % 100000));
    }
    benchmark::DoNotOptimize(t.Percentile(99));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_PercentileAddAndQuery);

// End-to-end packet cost: a 2-host transfer through one switch, measuring
// simulated-packets per wall second.
void BM_EndToEndTransfer(benchmark::State& state) {
  for (auto _ : state) {
    runner::ExperimentConfig cfg;
    cfg.topology = runner::TopologyKind::kStar;
    cfg.star.num_hosts = 2;
    cfg.cc.scheme = "hpcc";
    runner::Experiment e(cfg);
    e.AddFlow(e.hosts()[0], e.hosts()[1], 1'000'000, 0);
    e.RunUntil(sim::Ms(2));
    benchmark::DoNotOptimize(e.flows_completed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // ~1000 packets
}
BENCHMARK(BM_EndToEndTransfer);

// Fig. 11-style macro point (incast over background load on a star):
// forwarded packets per wall-second — a work unit independent of the
// transmit engine — the end-to-end figure of merit for the §5 evaluation
// harness. Same config as bench_report's macro/fig11_incast
// (bench_hotpath.h); arg 0/1 selects the reference / train engine.
void BM_MacroFig11Incast(benchmark::State& state) {
  const bool fast_path = state.range(0) != 0;
  uint64_t pkts = 0;
  for (auto _ : state) {
    runner::Experiment e(benchgen::Fig11MacroConfig(fast_path));
    auto result = e.Run();
    pkts += result.packets_forwarded;
  }
  state.SetItemsProcessed(static_cast<int64_t>(pkts));
}
BENCHMARK(BM_MacroFig11Incast)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

}  // namespace
