// Figure 3: DCQCN's bandwidth-vs-latency trade-off across ECN thresholds
// (Kmin, Kmax), WebSearch at 30% (3a) and 50% (3b) load.
#include <cstdio>

#include "bench/bench_util.h"

using namespace hpcc;

namespace {

struct Threshold {
  double kmin_kb;
  double kmax_kb;
};

// §2.3's three settings (KB at 25 Gbps reference).
const Threshold kThresholds[] = {{400, 1600}, {100, 400}, {12, 50}};

runner::ExperimentResult RunOne(const bench::Flags& flags, Threshold k,
                                double load) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kTestbed;
  cfg.testbed = bench::BenchTestbed(flags.full);
  cfg.cc.scheme = "dcqcn";
  cfg.red_override = net::RedConfig::Dcqcn(k.kmin_kb, k.kmax_kb);
  cfg.load = load;
  cfg.trace = "websearch";
  cfg.duration =
      sim::Ms(flags.duration_ms > 0 ? static_cast<int64_t>(flags.duration_ms)
                                    : (flags.full ? 20 : 10));
  cfg.seed = flags.seed;
  runner::Experiment e(cfg);
  return e.Run();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintHeader("Figure 3", "DCQCN ECN thresholds: bandwidth vs latency");
  for (double load : {0.3, 0.5}) {
    std::printf("\nFig 3%s — WebSearch %.0f%% load\n\n", load < 0.4 ? "a" : "b",
                load * 100);
    for (const Threshold& k : kThresholds) {
      char label[64];
      std::snprintf(label, sizeof(label), "Kmin=%gKB Kmax=%gKB", k.kmin_kb,
                    k.kmax_kb);
      runner::ExperimentResult r = RunOne(flags, k, load);
      bench::PrintResult(label, r);
      std::printf("  queue p95: %.1f KB\n\n", r.queue_dist.Percentile(95) / 1e3);
    }
  }
  std::printf(
      "(paper: low thresholds favor short flows' latency, high thresholds "
      "favor long flows' bandwidth — the trade-off is unavoidable in one "
      "configuration)\n");
  return 0;
}
