// Figure 12: flow-control choices (PFC / go-back-N on lossy fabric / IRN)
// under DCQCN and HPCC. With HPCC the choice barely matters; DCQCN depends
// on it because it controls the queue poorly.
#include <cstdio>

#include "bench/bench_util.h"

using namespace hpcc;

namespace {

struct FlowControl {
  const char* name;
  bool pfc;
  host::RecoveryMode recovery;
};

const FlowControl kFlowControls[] = {
    {"PFC+GBN", true, host::RecoveryMode::kGoBackN},
    {"lossy+GBN", false, host::RecoveryMode::kGoBackN},
    {"lossy+IRN", false, host::RecoveryMode::kIrn},
};

runner::ExperimentResult RunOne(const bench::Flags& flags,
                                const std::string& scheme,
                                const FlowControl& fc, double load,
                                bool incast) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kFatTree;
  cfg.fattree = bench::BenchFatTree(flags.full);
  cfg.cc.scheme = scheme;
  cfg.pfc_enabled = fc.pfc;
  cfg.recovery = fc.recovery;
  cfg.load = load;
  cfg.trace = "fbhadoop";
  cfg.duration =
      sim::Ms(flags.duration_ms > 0 ? static_cast<int64_t>(flags.duration_ms)
                                    : (flags.full ? 20 : 3));
  cfg.seed = flags.seed;
  if (incast) {
    cfg.incast = true;
    cfg.incast_opts.fan_in = flags.full ? 60 : 12;
    cfg.incast_opts.flow_bytes = 500'000;
    cfg.incast_opts.first_event = sim::Us(300);
    cfg.incast_opts.period = cfg.duration / 3;
  }
  runner::Experiment e(cfg);
  return e.Run();
}

void Scenario(const bench::Flags& flags, double load, bool incast,
              const char* fig) {
  std::printf("\n######## %s — FB_Hadoop %.0f%% load%s ########\n", fig,
              load * 100, incast ? " + incast" : "");
  for (const char* scheme : {"dcqcn", "hpcc"}) {
    for (const FlowControl& fc : kFlowControls) {
      char label[64];
      std::snprintf(label, sizeof(label), "%s-%s", scheme, fc.name);
      runner::ExperimentResult r = RunOne(flags, scheme, fc, load, incast);
      bench::PrintResult(label, r);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintHeader("Figure 12",
                     "flow-control choices x {DCQCN, HPCC}, 95p slowdown");
  Scenario(flags, 0.3, /*incast=*/true, "Fig 12a");
  Scenario(flags, 0.5, /*incast=*/false, "Fig 12b");
  std::printf(
      "(paper: HPCC's rows are nearly identical across flow controls; "
      "DCQCN improves with IRN's inflight cap but still trails HPCC)\n");
  return 0;
}
