// Figure 13: reaction-strategy ablation on a 16-to-1 incast at 100 Gbps —
// per-ACK overreacts (throughput collapses and oscillates), per-RTT reacts
// too slowly (queue persists), HPCC's reference window gets both right.
#include <cstdio>

#include "bench/bench_util.h"
#include "stats/queue_monitor.h"
#include "stats/timeseries.h"

using namespace hpcc;

namespace {

struct Outcome {
  stats::TimeSeries throughput;  // aggregate Gbps
  stats::TimeSeries queue;       // bytes
};

Outcome RunOne(const char* scheme, sim::TimePs horizon) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = 17;
  cfg.star.host_bps = 100'000'000'000;
  cfg.cc.scheme = scheme;
  cfg.cc.hpcc.expected_flows = 16;
  runner::Experiment e(cfg);
  const auto& h = e.hosts();
  stats::GoodputSampler gp(&e.simulator(), sim::Us(5));
  for (int i = 0; i < 16; ++i) {
    host::Flow* f = e.AddFlow(h[i], h[16], 10'000'000, 0);
    gp.Track(f, "f" + std::to_string(i));
  }
  net::SwitchNode& sw = e.topology().switch_node(e.topology().switches()[0]);
  stats::PortQueueSampler qs(&e.simulator(), &sw.port(16), sim::Us(5));
  gp.Start(horizon);
  qs.Start(horizon);
  e.RunUntil(horizon);
  return Outcome{gp.Aggregate(), qs.series()};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const sim::TimePs horizon = sim::Us(
      flags.duration_ms > 0 ? static_cast<int64_t>(flags.duration_ms * 1000)
                            : 400);
  bench::PrintHeader("Figure 13",
                     "per-ACK vs per-RTT vs HPCC, 16-to-1 incast");

  const Outcome per_ack = RunOne("hpcc-perack", horizon);
  const Outcome per_rtt = RunOne("hpcc-perrtt", horizon);
  const Outcome hpcc = RunOne("hpcc", horizon);

  std::printf("\n  %8s | %26s | %26s\n", "", "total throughput (Gbps)",
              "queue length (KB)");
  std::printf("  %8s | %8s %8s %8s | %8s %8s %8s\n", "time", "perACK",
              "perRTT", "HPCC", "perACK", "perRTT", "HPCC");
  const size_t n = hpcc.throughput.points().size();
  const size_t stride = std::max<size_t>(1, n / 30);
  for (size_t i = 0; i < n; i += stride) {
    auto val = [i](const stats::TimeSeries& s) {
      return i < s.points().size() ? s.points()[i].second : 0.0;
    };
    std::printf("  %6.0fus | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f\n",
                sim::ToUs(hpcc.throughput.points()[i].first),
                val(per_ack.throughput), val(per_rtt.throughput),
                val(hpcc.throughput), val(per_ack.queue) / 1e3,
                val(per_rtt.queue) / 1e3, val(hpcc.queue) / 1e3);
  }

  auto late_mean = [n](const stats::TimeSeries& s) {
    double sum = 0;
    size_t cnt = 0;
    for (size_t i = n / 2; i < s.points().size(); ++i, ++cnt) {
      sum += s.points()[i].second;
    }
    return cnt > 0 ? sum / static_cast<double>(cnt) : 0.0;
  };
  std::printf("\nsteady throughput (Gbps): perACK %.1f, perRTT %.1f, HPCC %.1f\n",
              late_mean(per_ack.throughput), late_mean(per_rtt.throughput),
              late_mean(hpcc.throughput));
  std::printf("peak queue (KB): perACK %.1f, perRTT %.1f, HPCC %.1f\n",
              per_ack.queue.MaxValue() / 1e3, per_rtt.queue.MaxValue() / 1e3,
              hpcc.queue.MaxValue() / 1e3);
  std::printf(
      "(paper: per-ACK drops throughput to ~0 then oscillates; per-RTT "
      "drains the initial queue slowly; HPCC reacts fast without "
      "overreaction)\n");
  return 0;
}
