// Figure 9: the four testbed micro-benchmarks, HPCC vs DCQCN, on 25 Gbps
// hosts behind one switch (the testbed's single-bottleneck scenarios):
//   9a/9b  long-short: rate recovery after a short flow leaves
//   9c/9d  8-to-1 incast: congestion avoidance and queue drain
//   9e/9f  elephant-mice: mice latency CDF and queue CDF
//   9g/9h  fair share across staggered flows
#include <cstdio>

#include "bench/bench_util.h"
#include "stats/queue_monitor.h"
#include "stats/timeseries.h"

using namespace hpcc;

namespace {

runner::ExperimentConfig StarCfg(const char* scheme, int hosts) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = hosts;
  cfg.star.host_bps = 25'000'000'000;
  cfg.cc.scheme = scheme;
  cfg.cc.hpcc.expected_flows = 16;
  return cfg;
}

void PrintSeries(const char* what, const stats::GoodputSampler& gp,
                 const stats::TimeSeries& queue) {
  std::printf("%s\n", what);
  std::printf("  %9s", "time");
  for (size_t i = 0; i < gp.num_flows(); ++i) {
    std::printf("  %8s", gp.label(i).c_str());
  }
  std::printf("  %9s\n", "buffer");
  const size_t n = gp.series(0).points().size();
  const size_t stride = std::max<size_t>(1, n / 24);
  for (size_t i = 0; i < n; i += stride) {
    std::printf("  %7.0fus", sim::ToUs(gp.series(0).points()[i].first));
    for (size_t f = 0; f < gp.num_flows(); ++f) {
      std::printf("  %6.1fGb", gp.series(f).points()[i].second);
    }
    const auto& qp = queue.points();
    std::printf("  %7.1fKB\n",
                i < qp.size() ? qp[i].second / 1e3 : 0.0);
  }
}

// 9a/9b: long flow at line rate; 1MB short flow joins at 200us.
void LongShort(const char* scheme) {
  runner::Experiment e(StarCfg(scheme, 3));
  const auto& h = e.hosts();
  host::Flow* lf = e.AddFlow(h[0], h[2], 100'000'000, 0);
  host::Flow* sf = e.AddFlow(h[1], h[2], 1'000'000, sim::Us(200));
  net::SwitchNode& sw = e.topology().switch_node(e.topology().switches()[0]);
  stats::GoodputSampler gp(&e.simulator(), sim::Us(25));
  gp.Track(lf, "long");
  gp.Track(sf, "short");
  stats::PortQueueSampler qs(&e.simulator(), &sw.port(2), sim::Us(25));
  const sim::TimePs horizon = sim::Ms(2);
  gp.Start(horizon);
  qs.Start(horizon);
  e.RunUntil(horizon);
  char title[96];
  std::snprintf(title, sizeof(title),
                "Fig 9a/9b — Long-Short (%s): goodput + buffer", scheme);
  PrintSeries(title, gp, qs.series());
  std::printf("\n");
}

// 9c/9d: 8-to-1 incast joining a long-running flow.
void Incast(const char* scheme) {
  runner::Experiment e(StarCfg(scheme, 10));
  const auto& h = e.hosts();
  host::Flow* lf = e.AddFlow(h[0], h[9], 100'000'000, 0);
  for (int i = 1; i <= 7; ++i) {
    e.AddFlow(h[i], h[9], 500'000, sim::Us(200));
  }
  net::SwitchNode& sw = e.topology().switch_node(e.topology().switches()[0]);
  stats::GoodputSampler gp(&e.simulator(), sim::Us(25));
  gp.Track(lf, "long");
  stats::PortQueueSampler qs(&e.simulator(), &sw.port(9), sim::Us(25));
  const sim::TimePs horizon = sim::Ms(3);
  gp.Start(horizon);
  qs.Start(horizon);
  e.RunUntil(horizon);
  runner::ExperimentResult r = e.Collect();
  char title[96];
  std::snprintf(title, sizeof(title),
                "Fig 9c/9d — Incast (%s): long-flow goodput + buffer",
                scheme);
  PrintSeries(title, gp, qs.series());
  std::printf("  peak buffer %.1f KB, PFC pauses %zu\n\n",
              qs.series().MaxValue() / 1e3, r.pause_events);
}

// 9e/9f: two elephants saturate the downlink; 1KB mice measure latency.
// Long horizon so DCQCN reaches its oscillating equilibrium around the ECN
// thresholds (its standing queue is what hurts the mice, §5.2).
void ElephantMice(const char* scheme) {
  runner::ExperimentConfig cfg = StarCfg(scheme, 4);
  cfg.duration = sim::Ms(50);
  runner::Experiment e(cfg);
  const auto& h = e.hosts();
  e.AddFlow(h[0], h[3], 1'000'000'000, 0);
  e.AddFlow(h[1], h[3], 1'000'000'000, 0);
  std::vector<host::Flow*> mice;
  for (int i = 0; i < 150; ++i) {
    mice.push_back(
        e.AddFlow(h[2], h[3], 1'000, sim::Us(500) + i * sim::Us(300)));
  }
  e.RunUntil(sim::Ms(50));
  runner::ExperimentResult r = e.Collect();
  stats::PercentileTracker lat;
  for (host::Flow* m : mice) {
    if (m->done) {
      lat.Add(sim::ToUs(m->finish_time - m->spec().start_time));
    }
  }
  std::printf(
      "Fig 9e/9f — Elephant-Mice (%s): mice latency p50/p95/p99 = "
      "%.1f/%.1f/%.1f us; queue p50/p95/p99 = %.1f/%.1f/%.1f KB\n",
      scheme, lat.Percentile(50), lat.Percentile(95), lat.Percentile(99),
      r.queue_dist.Percentile(50) / 1e3, r.queue_dist.Percentile(95) / 1e3,
      r.queue_dist.Percentile(99) / 1e3);
}

// 9g/9h: four flows join one by one and share fairly.
void FairShare(const char* scheme) {
  runner::Experiment e(StarCfg(scheme, 5));
  const auto& h = e.hosts();
  stats::GoodputSampler gp(&e.simulator(), sim::Us(50));
  std::vector<host::Flow*> flows;
  for (int i = 0; i < 4; ++i) {
    host::Flow* f =
        e.AddFlow(h[i], h[4], 1'000'000'000, i * sim::Us(500));
    flows.push_back(f);
    gp.Track(f, "flow" + std::to_string(i + 1));
  }
  net::SwitchNode& sw = e.topology().switch_node(e.topology().switches()[0]);
  stats::PortQueueSampler qs(&e.simulator(), &sw.port(4), sim::Us(50));
  const sim::TimePs horizon = sim::Ms(4);
  gp.Start(horizon);
  qs.Start(horizon);
  e.RunUntil(horizon);
  char title[96];
  std::snprintf(title, sizeof(title), "Fig 9g/9h — Fair share (%s)", scheme);
  PrintSeries(title, gp, qs.series());
  // Jain's index of mean goodput over the final quarter (all four active).
  double sum = 0;
  double sq = 0;
  for (size_t f = 0; f < gp.num_flows(); ++f) {
    const auto& pts = gp.series(f).points();
    double g = 0;
    size_t cnt = 0;
    for (size_t i = pts.size() * 3 / 4; i < pts.size(); ++i, ++cnt) {
      g += pts[i].second;
    }
    g /= std::max<size_t>(1, cnt);
    sum += g;
    sq += g * g;
  }
  std::printf("  Jain index of steady goodput: %.3f\n\n",
              sum * sum / (4 * sq));
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::ParseFlags(argc, argv);
  bench::PrintHeader("Figure 9", "testbed micro-benchmarks, HPCC vs DCQCN");
  for (const char* scheme : {"hpcc", "dcqcn"}) {
    LongShort(scheme);
    Incast(scheme);
    ElephantMice(scheme);
    FairShare(scheme);
  }
  return 0;
}
