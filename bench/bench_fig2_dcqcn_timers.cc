// Figure 2: DCQCN's throughput-vs-stability trade-off across rate timer
// settings (Ti = rate-increase timer, Td = min decrease interval).
//   2a: 95p FCT slowdown per size bin, WebSearch 30% load.
//   2b: PFC pause duration and short-flow p95 latency with added incast.
#include <cstdio>

#include "bench/bench_util.h"

using namespace hpcc;

namespace {

struct TimerSetting {
  int ti_us;
  int td_us;
};

const TimerSetting kSettings[] = {{900, 4}, {300, 4}, {55, 50}};

runner::ExperimentResult RunOne(const bench::Flags& flags, TimerSetting t,
                                bool incast) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kTestbed;
  cfg.testbed = bench::BenchTestbed(flags.full);
  if (incast) {
    // Fig. 2b ran on the 230-server production-like pod where 60-to-1
    // incasts concentrate through the Agg uplinks; a 64-host pod is the
    // smallest that reproduces that concentration.
    cfg.testbed.servers_per_pair = 32;
  }
  cfg.cc.scheme = "dcqcn";
  cfg.cc.dcqcn.rate_inc_timer = sim::Us(t.ti_us);
  cfg.cc.dcqcn.min_dec_interval = sim::Us(t.td_us);
  cfg.load = 0.3;
  cfg.trace = "websearch";
  cfg.duration =
      sim::Ms(flags.duration_ms > 0 ? static_cast<int64_t>(flags.duration_ms)
                                    : (flags.full ? 20 : 10));
  cfg.seed = flags.seed;
  if (incast) {
    cfg.incast = true;
    cfg.incast_opts.fan_in = 60;
    cfg.incast_opts.flow_bytes = 2'000'000;
    cfg.incast_opts.first_event = sim::Us(300);
    cfg.incast_opts.period = cfg.duration / 3;
    cfg.incast_opts.fixed_receiver = 0;
  }
  runner::Experiment e(cfg);
  return e.Run();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintHeader("Figure 2",
                     "DCQCN rate timers: throughput vs stability");

  std::printf("\nFig 2a — WebSearch 30%% load, no incast\n\n");
  for (const TimerSetting& t : kSettings) {
    char label[64];
    std::snprintf(label, sizeof(label), "Ti=%d Td=%d", t.ti_us, t.td_us);
    bench::PrintResult(label, RunOne(flags, t, /*incast=*/false));
  }

  std::printf("\nFig 2b — 30%% load + incast: PFC and tail latency\n\n");
  for (const TimerSetting& t : kSettings) {
    runner::ExperimentResult r = RunOne(flags, t, /*incast=*/true);
    std::printf(
        "  Ti=%3d Td=%2d: pause-time %.4f%%  pauses %zu  "
        "pause p95 %.1f us  short-flow p95 latency %.1f us\n",
        t.ti_us, t.td_us, r.pause_time_fraction * 100, r.pause_events,
        r.pause_durations_us.Percentile(95), r.short_fct_us.Percentile(95));
  }
  std::printf(
      "\n(paper: aggressive timers (small Ti / large Td) improve FCT but "
      "suffer more/longer PFC pauses under incast)\n");
  return 0;
}
