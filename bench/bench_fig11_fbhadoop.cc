// Figure 11: all six CC schemes on the FatTree with FB_Hadoop.
//   11a/11b: 30% load + 60-to-1 incast — 95p FCT slowdown per bin; PFC pause
//            fraction and short-flow latency.
//   11c/11d: 50% load.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace hpcc;

namespace {

const std::vector<const char*> kSchemes = {"dcqcn",      "timely",
                                           "dcqcn+win",  "timely+win",
                                           "dctcp",      "hpcc"};

runner::ExperimentResult RunOne(const bench::Flags& flags,
                                const std::string& scheme, double load,
                                bool incast) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kFatTree;
  cfg.fattree = bench::BenchFatTree(flags.full);
  cfg.cc.scheme = scheme;
  cfg.load = load;
  cfg.trace = "fbhadoop";
  cfg.duration =
      sim::Ms(flags.duration_ms > 0 ? static_cast<int64_t>(flags.duration_ms)
                                    : (flags.full ? 20 : 3));
  cfg.seed = flags.seed;
  if (incast) {
    cfg.incast = true;
    // §5.3: 60 senders, 500 KB each, ~2% of network capacity. The mini
    // topology scales the fan-in down proportionally.
    cfg.incast_opts.fan_in = flags.full ? 60 : 12;
    cfg.incast_opts.flow_bytes = 500'000;
    cfg.incast_opts.first_event = sim::Us(300);
    cfg.incast_opts.period = cfg.duration / 3;
  }
  runner::Experiment e(cfg);
  return e.Run();
}

void Scenario(const bench::Flags& flags, double load, bool incast,
              const char* fct_fig, const char* pfc_fig) {
  std::printf("\n######## FB_Hadoop %.0f%% load%s ########\n", load * 100,
              incast ? " + incast" : "");
  std::printf("%s — 95th-percentile FCT slowdown per size bin\n", fct_fig);
  std::printf("%s — PFC pause fraction and short-flow latency\n\n", pfc_fig);
  for (const char* scheme : kSchemes) {
    runner::ExperimentResult r = RunOne(flags, scheme, load, incast);
    bench::PrintResult(scheme, r);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintHeader("Figure 11", "six CC schemes, FB_Hadoop on FatTree");
  Scenario(flags, 0.3, /*incast=*/true, "Fig 11a", "Fig 11b");
  Scenario(flags, 0.5, /*incast=*/false, "Fig 11c", "Fig 11d");
  return 0;
}
