// Appendix A numerics: the convergence Lemma (A.2), additive-increase
// equilibria (A.3), and the ΣD/D/1 queueing bounds (A.1).
#include <cstdio>

#include "analytic/convergence.h"
#include "analytic/fairness.h"
#include "analytic/queueing.h"
#include "bench/bench_util.h"
#include "sim/rng.h"

using namespace hpcc;

int main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintHeader("Appendix A", "analytical model numerics");

  // --- A.2: the Lemma on a worked example -------------------------------
  std::printf("\nA.2 — multiplicative recursion (3 paths, 2 resources):\n");
  analytic::ResourceNetwork net;
  net.incidence = {{true, true, false}, {true, false, true}};
  net.capacities = {100.0, 50.0};
  std::vector<double> r{40, 80, 40};
  for (int step = 0; step <= 6; ++step) {
    const auto y = analytic::Loads(net, r);
    std::printf(
        "  step %d: R = (%6.2f, %6.2f, %6.2f)  Y/C = (%.3f, %.3f)  "
        "feasible=%d pareto=%d\n",
        step, r[0], r[1], r[2], y[0] / 100.0, y[1] / 50.0,
        analytic::IsFeasible(net, r), analytic::IsParetoOptimal(net, r, 1e-3));
    r = analytic::Step(net, r);
  }
  std::printf("  (feasible after 1 step; tightest bottleneck pinned; the "
              "rest converges geometrically to Pareto optimality)\n");

  // --- A.3: equilibrium utilization vs additive step --------------------
  std::printf("\nA.3 — equilibrium utilization as a function of W_AI "
              "(U_target = 95%%):\n");
  for (double a_frac : {0.01, 0.02, 0.04, 0.049, 0.055}) {
    const double u = analytic::EquilibriumUtilization(a_frac, 0.95, 1.0);
    std::printf("  a = %.1f%% of flow rate -> U = %.1f%% %s\n", a_frac * 100,
                u * 100, u >= 1.0 ? "(UNSTABLE: exceeds capacity)" : "");
  }
  std::printf("  stability bound: a < R(1-U_target) = %.1f%% of the rate\n",
              analytic::MaxStableAdditiveStep(0.95, 1.0) * 100);

  // --- A.1: SumD/D/1 queue at a paced bottleneck -------------------------
  std::printf("\nA.1 — periodic-source queueing (N sources, unit server):\n");
  std::printf("  closed form at rho=1: E[Q] ~ sqrt(pi N/8): N=50 -> %.2f\n",
              analytic::MeanQueueAtFullLoad(50));
  sim::Rng rng(flags.seed);
  for (double rho : {0.90, 0.95, 1.0}) {
    const auto s = analytic::SimulatePeriodicSources(
        50, rho, flags.full ? 4'000'000 : 400'000, 20, rng);
    std::printf(
        "  MC N=50 rho=%.2f: mean %.2f  p99 %.2f  max %.1f  P(Q>20) %.2e\n",
        rho, s.mean_queue, s.p99_queue, s.max_queue, s.prob_above);
  }
  std::printf("  (paper: at 95%% load with 50 sources, P(Q>20) ~ 1e-9 — "
              "queues are negligible below saturation)\n");
  return 0;
}
