// Figure 10 (and the §5.2 headline numbers): HPCC vs DCQCN on the testbed
// PoD with WebSearch at 30% and 50% average load.
//   10a/10c: FCT slowdown per size bin at median/95/99 percentile.
//   10b/10d: queue length distribution at switches.
#include <cstdio>

#include "bench/bench_util.h"

using namespace hpcc;

namespace {

runner::ExperimentResult RunOne(const bench::Flags& flags,
                                const std::string& scheme, double load) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kTestbed;
  cfg.testbed = bench::BenchTestbed(flags.full);
  cfg.cc.scheme = scheme;
  cfg.load = load;
  cfg.trace = "websearch";
  cfg.duration =
      sim::Ms(flags.duration_ms > 0 ? static_cast<int64_t>(flags.duration_ms)
                                    : (flags.full ? 20 : 10));
  cfg.seed = flags.seed;
  runner::Experiment e(cfg);
  return e.Run();
}

void QueueCdfRow(const char* label, const stats::PercentileTracker& q) {
  std::printf(
      "  %-8s queue CDF (KB): p50=%.1f p90=%.1f p95=%.1f p99=%.1f max=%.1f\n",
      label, q.Percentile(50) / 1e3, q.Percentile(90) / 1e3,
      q.Percentile(95) / 1e3, q.Percentile(99) / 1e3, q.Max() / 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintHeader("Figure 10",
                     "HPCC vs DCQCN, WebSearch on the testbed PoD");

  for (double load : {0.3, 0.5}) {
    std::printf("\n################ average load %.0f%% ################\n",
                load * 100);
    runner::ExperimentResult hpcc_r = RunOne(flags, "hpcc", load);
    runner::ExperimentResult dcqcn_r = RunOne(flags, "dcqcn", load);
    bench::PrintResult("HPCC", hpcc_r);
    bench::PrintResult("DCQCN", dcqcn_r);
    std::printf("Fig 10%s — queue length CDF:\n", load < 0.4 ? "b" : "d");
    QueueCdfRow("HPCC", hpcc_r.queue_dist);
    QueueCdfRow("DCQCN", dcqcn_r.queue_dist);

    // §5.2 headline: 99th-percentile slowdown of the shortest bin.
    const double h99 = hpcc_r.fct->bin(0).Percentile(99);
    const double d99 = dcqcn_r.fct->bin(0).Percentile(99);
    std::printf(
        "shortest-bin p99 slowdown: HPCC %.2f vs DCQCN %.2f (%.0f%% "
        "reduction; paper at 50%%: 2.70 vs 53.9 = 95%%)\n",
        h99, d99, 100.0 * (1.0 - h99 / std::max(d99, 1e-9)));
  }
  return 0;
}
