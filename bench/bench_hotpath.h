// Hot-path workload definitions shared by bench_micro (google-benchmark) and
// tools/bench_report (dependency-free JSON harness), so the two report
// comparable numbers: the steady-state self-rescheduling event churn and the
// Fig. 11-style macro configuration.
#pragma once

#include <cstdint>
#include <vector>

#include "runner/experiment.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace hpcc::benchgen {

// Steady-state event churn: each callback schedules its successor from
// inside the loop, the shape of port transmissions and pacing wake-ups. The
// closure captures 24 bytes — above std::function's inline buffer on common
// ABIs and matching the simulator's real call sites (e.g.
// Port::StartTransmission captures {Node*, int, Packet*}).
struct SelfReschedule {
  sim::Simulator* s;
  uint64_t* remaining;
  uint64_t salt;
  void operator()() const {
    if (*remaining == 0) return;
    --*remaining;
    s->ScheduleIn(sim::Ns(10 + (salt & 7)),
                  SelfReschedule{s, remaining, salt * 6364136223846793005ULL + 1});
  }
};

// Seeds `depth` churn chains with a shared budget of `events` and runs the
// loop dry. Returns the number of events executed.
inline uint64_t RunSteadyChurn(int depth, uint64_t events) {
  sim::Simulator s;
  uint64_t remaining = events;
  for (int i = 0; i < depth; ++i) {
    s.ScheduleAt(sim::Ns(i),
                 SelfReschedule{&s, &remaining, static_cast<uint64_t>(i)});
  }
  return s.Run();
}

// RTO-style timer churn: every armed timer is cancelled and re-armed before
// it fires, measuring Schedule+Cancel pairs, then one drain. Bounded so
// lazily-discarded cancel records cannot accumulate across batches. Returns
// the number of Schedule+Cancel operations.
//
// The per-timer targets are spread by a *pinned* hash of (round, timer) —
// earlier versions re-armed all 256 timers onto one identical timestamp,
// a degenerate single-bucket shape whose measured rate swung several percent
// with unrelated code-layout changes (the PR3 10.17M -> 9.81M timers/s
// "regression" was exactly that). The seeded spread matches the real RTO
// pattern (timers scattered across a window) and makes run-to-run deltas
// attributable to the event loop, which the CI bench gate relies on.
inline constexpr uint64_t kTimerChurnSeed = 0x7f4a7c159e3779b9ULL;

inline uint64_t RunTimerChurn(uint64_t* fired_sink) {
  constexpr int kTimers = 256;
  constexpr int kRounds = 64;
  sim::Simulator s;
  std::vector<sim::EventId> armed(kTimers, sim::kInvalidEvent);
  for (int round = 0; round < kRounds; ++round) {
    for (int t = 0; t < kTimers; ++t) {
      if (armed[t] != sim::kInvalidEvent) s.Cancel(armed[t]);
      const uint64_t tag = static_cast<uint64_t>(round) << 32 | t;
      const uint64_t h = (tag ^ kTimerChurnSeed) * 6364136223846793005ULL;
      armed[t] = s.ScheduleAt(sim::Us(100 + round) +
                                  static_cast<sim::TimePs>(h >> 44),  // ~1us
                              [fired_sink, tag]() { *fired_sink += tag; });
    }
  }
  s.Run();
  return static_cast<uint64_t>(kTimers) * kRounds;
}

// Fat-tree shapes for the routing-core benchmarks: the k=16 slice matches
// examples/scenarios/fattree16_hadoop_burst.json (1024 hosts), the k=32
// slice matches examples/scenarios/fattree32_websearch.json (8192 hosts).
inline topo::FatTreeOptions FatTreeK16Options() {
  topo::FatTreeOptions o;
  o.pods = 16;
  o.tors_per_pod = 8;
  o.aggs_per_pod = 8;
  o.cores_per_agg = 8;
  o.hosts_per_tor = 8;
  return o;
}

inline topo::FatTreeOptions FatTreeK32Options() {
  topo::FatTreeOptions o;
  o.pods = 32;
  o.tors_per_pod = 16;
  o.aggs_per_pod = 16;
  o.cores_per_agg = 16;
  o.hosts_per_tor = 16;
  return o;
}

// The k=32 payoff macro workload, mirroring the base sweep point of
// examples/scenarios/fattree32_websearch.json (keep the two in sync):
// WebSearch background load and a two-tier link-flap script on the 8192-host
// fabric. The runner schedules the flaps itself so the configuration stays
// a plain ExperimentConfig.
inline runner::ExperimentConfig FatTree32MacroConfig() {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kFatTree;
  cfg.fattree = FatTreeK32Options();
  cfg.cc.scheme = "hpcc";
  cfg.load = 0.25;
  cfg.trace = "websearch";
  cfg.max_flows = 500;
  cfg.duration = sim::Us(100);
  cfg.drain_factor = 10.0;
  cfg.seed = 32;
  return cfg;
}

// Fig. 11-style macro point: incast over background load on a star. Small
// enough to finish in well under a second per run; the figure of merit is
// forwarded packets per wall-second, end to end — a work unit independent
// of the transmit engine (the train fast path executes fewer simulator
// events for the same forwarding work, so events/s would undercount it).
inline runner::ExperimentConfig Fig11MacroConfig(bool fast_path = true) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = 17;
  cfg.cc.scheme = "hpcc";
  cfg.load = 0.3;
  cfg.trace = "fbhadoop";
  cfg.max_flows = 60;
  cfg.incast = true;
  cfg.incast_opts.fan_in = 16;
  cfg.incast_opts.flow_bytes = 50'000;
  cfg.duration = sim::Ms(1);
  cfg.drain_factor = 2.0;
  cfg.fast_path = fast_path;
  return cfg;
}

}  // namespace hpcc::benchgen
