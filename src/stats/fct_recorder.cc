#include "stats/fct_recorder.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace hpcc::stats {

FctRecorder::FctRecorder(std::vector<uint64_t> bin_edges)
    : edges_(std::move(bin_edges)) {
  assert(std::is_sorted(edges_.begin(), edges_.end()));
  bins_.resize(edges_.size() + 1);
}

size_t FctRecorder::BinIndex(uint64_t size) const {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), size);
  return static_cast<size_t>(it - edges_.begin());
}

void FctRecorder::Record(uint64_t size_bytes, sim::TimePs fct,
                         sim::TimePs ideal_fct) {
  assert(ideal_fct > 0);
  const double slowdown = std::max(
      1.0, static_cast<double>(fct) / static_cast<double>(ideal_fct));
  bins_[BinIndex(size_bytes)].Add(slowdown);
  overall_.Add(slowdown);
}

void FctRecorder::Merge(const FctRecorder& other) {
  assert(edges_ == other.edges_);
  for (size_t i = 0; i < bins_.size(); ++i) bins_[i].Merge(other.bins_[i]);
  overall_.Merge(other.overall_);
}

namespace {
std::string HumanBytes(uint64_t b) {
  char buf[32];
  if (b >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3gM", static_cast<double>(b) / 1e6);
  } else if (b >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.3gK", static_cast<double>(b) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(b));
  }
  return buf;
}
}  // namespace

std::string FctRecorder::BinLabel(size_t bin) const {
  if (edges_.empty()) return "all";
  if (bin == 0) return "<=" + HumanBytes(edges_[0]);
  if (bin == bins_.size() - 1) return ">" + HumanBytes(edges_.back());
  return "(" + HumanBytes(edges_[bin - 1]) + "," + HumanBytes(edges_[bin]) +
         "]";
}

std::string FctRecorder::FormatTable() const {
  std::string out =
      "  size-bin            count   p50     p95     p99\n";
  char line[128];
  for (size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i].Empty()) continue;
    std::snprintf(line, sizeof(line), "  %-18s %7zu %7.2f %7.2f %7.2f\n",
                  BinLabel(i).c_str(), bins_[i].Count(),
                  bins_[i].Percentile(50), bins_[i].Percentile(95),
                  bins_[i].Percentile(99));
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-18s %7zu %7.2f %7.2f %7.2f\n", "all",
                overall_.Count(), overall_.Percentile(50),
                overall_.Percentile(95), overall_.Percentile(99));
  out += line;
  return out;
}

std::vector<uint64_t> FctRecorder::WebSearchBins() {
  // Fig. 2/3/10 x-axis: 0, 6.7K ... 30M bytes.
  return {6'700,     20'000,    30'000,    50'000,    73'000,
          200'000,   1'000'000, 2'000'000, 5'000'000, 30'000'000};
}

std::vector<uint64_t> FctRecorder::FbHadoopBins() {
  // Fig. 11/12 x-axis: 0, 324, ... 10M bytes.
  return {324,   400,    500,    600,     700,
          1'000, 7'000,  46'000, 120'000, 10'000'000};
}

}  // namespace hpcc::stats
