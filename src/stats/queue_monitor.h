// Periodic sampling of switch egress queue depths (queue-length CDFs of
// Fig. 9f/10b/10d and the time series of Fig. 6/9/13b/14b).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "stats/percentile.h"
#include "stats/timeseries.h"

namespace hpcc::topo {
class Topology;
}

namespace hpcc::net {
class Port;
}

namespace hpcc::stats {

// Samples every data-priority egress queue of every switch in the topology
// at a fixed interval; accumulates the distribution over (port, time).
class QueueMonitor {
 public:
  QueueMonitor(sim::Simulator* simulator, topo::Topology* topology,
               sim::TimePs interval);

  void Start(sim::TimePs until);
  // Shard-local sampling: restrict to these switches (default: every switch
  // in the topology). Set before Start.
  void set_switches(std::vector<uint32_t> switches) {
    switches_ = std::move(switches);
    use_subset_ = true;
  }
  // Folds a shard-local monitor in: the per-tick sample multiset over all
  // shards equals the single-sim one, and percentiles sort on demand.
  void Merge(const QueueMonitor& other) {
    dist_.Merge(other.dist_);
    max_seen_ = max_seen_ > other.max_seen_ ? max_seen_ : other.max_seen_;
  }
  const PercentileTracker& distribution() const { return dist_; }
  int64_t max_seen_bytes() const { return max_seen_; }

 private:
  void Sample();

  sim::Simulator* simulator_;
  topo::Topology* topology_;
  sim::TimePs interval_;
  sim::TimePs until_ = 0;
  std::vector<uint32_t> switches_;
  bool use_subset_ = false;
  PercentileTracker dist_;
  int64_t max_seen_ = 0;
};

// Time series of one specific port's data queue (Fig. 6 / 13b).
class PortQueueSampler {
 public:
  PortQueueSampler(sim::Simulator* simulator, const net::Port* port,
                   sim::TimePs interval);
  void Start(sim::TimePs until);
  const TimeSeries& series() const { return series_; }

 private:
  void Sample();
  sim::Simulator* simulator_;
  const net::Port* port_;
  sim::TimePs interval_;
  sim::TimePs until_ = 0;
  TimeSeries series_;
};

}  // namespace hpcc::stats
