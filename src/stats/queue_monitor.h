// Periodic sampling of switch egress queue depths (queue-length CDFs of
// Fig. 9f/10b/10d and the time series of Fig. 6/9/13b/14b).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "stats/percentile.h"
#include "stats/timeseries.h"

namespace hpcc::topo {
class Topology;
}

namespace hpcc::net {
class Port;
}

namespace hpcc::stats {

// Samples every data-priority egress queue of every switch in the topology
// at a fixed interval; accumulates the distribution over (port, time).
class QueueMonitor {
 public:
  QueueMonitor(sim::Simulator* simulator, topo::Topology* topology,
               sim::TimePs interval);

  void Start(sim::TimePs until);
  // Shard-local sampling: restrict to these switches (default: every switch
  // in the topology). Set before Start.
  void set_switches(std::vector<uint32_t> switches) {
    switches_ = std::move(switches);
    use_subset_ = true;
  }
  // Folds a shard-local monitor in: the per-tick sample multiset over all
  // shards equals the single-sim one, and percentiles sort on demand.
  void Merge(const QueueMonitor& other) {
    dist_.Merge(other.dist_);
    max_seen_ = max_seen_ > other.max_seen_ ? max_seen_ : other.max_seen_;
  }
  const PercentileTracker& distribution() const { return dist_; }
  int64_t max_seen_bytes() const { return max_seen_; }

  // --- Warm checkpoint/restore (runner/experiment.h) ---------------------
  // Checkpointed sampler state: the accumulated distribution plus the one
  // pending tick with its original (time, seq) key, so the restored sampling
  // cadence is event-for-event identical to the checkpointing run's.
  struct WarmState {
    PercentileTracker dist;
    int64_t max_seen = 0;
    sim::TimePs until = 0;
    bool tick_pending = false;
    sim::TimePs tick_at = 0;
    uint64_t tick_seq = 0;
  };
  bool tick_pending() const { return tick_pending_; }
  WarmState CaptureWarm() const;
  // Cancels this monitor's own pending tick and replays the captured one.
  // The monitor must already be Start()ed (so the cold and warm runs drew
  // the same install-time seq).
  void RestoreWarm(const WarmState& w);

 private:
  void Sample();
  void ScheduleTick(sim::TimePs at);

  sim::Simulator* simulator_;
  topo::Topology* topology_;
  sim::TimePs interval_;
  sim::TimePs until_ = 0;
  std::vector<uint32_t> switches_;
  bool use_subset_ = false;
  PercentileTracker dist_;
  int64_t max_seen_ = 0;
  bool tick_pending_ = false;
  sim::TimePs tick_at_ = 0;
  uint64_t tick_seq_ = 0;
  sim::EventId tick_event_ = sim::kInvalidEvent;
};

// Time series of one specific port's data queue (Fig. 6 / 13b).
class PortQueueSampler {
 public:
  PortQueueSampler(sim::Simulator* simulator, const net::Port* port,
                   sim::TimePs interval);
  void Start(sim::TimePs until);
  const TimeSeries& series() const { return series_; }

 private:
  void Sample();
  sim::Simulator* simulator_;
  const net::Port* port_;
  sim::TimePs interval_;
  sim::TimePs until_ = 0;
  TimeSeries series_;
};

}  // namespace hpcc::stats
