// Golden-trace hashing: an order-independent digest over per-flow outcomes.
//
// Two runs of the same scenario are "the same run" iff every flow saw the
// same (id, endpoints, size, start, finish, completion) tuple — regardless
// of the order the records are folded in. That makes one digest usable both
// for a single simulation (records arrive in completion order) and for a
// sweep executed on a thread pool (per-run digests combine in any order),
// so fuzz runs and --jobs=1 vs --jobs=N comparisons share one mechanism.
// The digest is integer-only (ids, byte counts, picosecond times), so it is
// independent of float formatting and stable across platforms that simulate
// identically.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace hpcc::stats {

class TraceHash {
 public:
  // Folds one flow outcome into the digest. Commutative and associative:
  // any record order yields the same digest.
  void AddFlow(uint64_t flow_id, uint32_t src, uint32_t dst,
               uint64_t size_bytes, sim::TimePs start, sim::TimePs finish,
               bool completed);

  // Folds another digest in (used to combine per-run digests of a sweep).
  // `salt` binds the sub-digest to its grid position so reordered results
  // cannot cancel out.
  void Combine(uint64_t digest, uint64_t salt);

  uint64_t digest() const;
  std::string hex() const;  // 16 lowercase hex digits of digest()
  uint64_t count() const { return count_; }

 private:
  uint64_t acc_ = 0;    // wrapping sum of per-record hashes (commutative)
  uint64_t count_ = 0;  // records folded, mixed into the final digest
};

}  // namespace hpcc::stats
