// PFC pause bookkeeping: pause-time fraction (Fig. 11b/11d), pause event
// durations (Fig. 2b), propagation depth and suppressed bandwidth
// (the Fig. 1 substitute experiment).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/port.h"
#include "sim/time.h"
#include "stats/percentile.h"

namespace hpcc::topo {
class Topology;
}

namespace hpcc::stats {

class PfcMonitor {
 public:
  struct PauseEvent {
    sim::TimePs start = 0;
    sim::TimePs end = -1;  // -1 while still paused
    uint32_t node = 0;     // node whose egress got paused
    int port = 0;
    int64_t port_bps = 0;
  };

  // Returns the observer to install on every port (Topology helper below).
  const net::PauseObserver& observer() const { return observer_; }

  // Attach to every port of every node in the topology.
  void AttachTo(topo::Topology& topology);
  // Shard-local variant: attach to the listed nodes' ports only.
  void AttachTo(topo::Topology& topology, const std::vector<uint32_t>& nodes);

  // Call once at the end of a run to close still-open pauses.
  void Finish(sim::TimePs now);

  // Folds a Finish()ed shard-local monitor in. Event lists concatenate (the
  // aggregate total_pause_time and duration distribution are order-
  // independent); peak_paused_bps becomes the max of per-shard peaks — a
  // lower bound on the true global simultaneous peak, which only the opt-in
  // profile section reports, never deterministic output.
  void Merge(const PfcMonitor& other);

  size_t pause_count() const { return events_.size(); }
  const std::vector<PauseEvent>& events() const { return events_; }
  sim::TimePs total_pause_time() const;
  // Fraction (0..1) of port-time spent paused over `elapsed` across
  // `num_ports` observed ports.
  double PauseTimeFraction(sim::TimePs elapsed, int num_ports) const;
  // Distribution of individual pause durations in microseconds.
  PercentileTracker DurationDistributionUs() const;
  // Peak simultaneous paused capacity (bps) and its fraction of total.
  int64_t peak_paused_bps() const { return peak_paused_bps_; }

  // --- Warm checkpoint/restore (runner/experiment.h) ---------------------
  // A checkpoint is only taken while no pause is open, so the closed event
  // list plus the peak is the complete state (port_bps_ is structural and
  // refilled by AttachTo on the restoring run).
  bool has_open_pauses() const { return !open_.empty(); }
  struct WarmState {
    std::vector<PauseEvent> events;
    int64_t peak_paused_bps = 0;
  };
  WarmState CaptureWarm() const { return {events_, peak_paused_bps_}; }
  void RestoreWarm(const WarmState& w) {
    events_ = w.events;
    peak_paused_bps_ = w.peak_paused_bps;
  }

 private:
  void OnChange(uint32_t node, int port, int prio, sim::TimePs now,
                bool paused);

  net::PauseObserver observer_{
      [this](uint32_t node, int port, int prio, sim::TimePs now,
             bool paused) { OnChange(node, port, prio, now, paused); }};
  std::vector<PauseEvent> events_;
  std::map<std::pair<uint32_t, int>, size_t> open_;  // (node,port) -> event
  std::map<std::pair<uint32_t, int>, int64_t> port_bps_;
  int64_t paused_bps_now_ = 0;
  int64_t peak_paused_bps_ = 0;
};

}  // namespace hpcc::stats
