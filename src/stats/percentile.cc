#include "stats/percentile.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hpcc::stats {

namespace {

double RankInterpolate(const std::vector<double>& sorted, double p) {
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

void PercentileTracker::Sort() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double PercentileTracker::Percentile(double p) const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (sorted_) return RankInterpolate(samples_, p);
  // Unsorted read: sort a local copy so concurrent readers never race.
  std::vector<double> copy = samples_;
  std::sort(copy.begin(), copy.end());
  return RankInterpolate(copy, p);
}

double PercentileTracker::Mean() const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double PercentileTracker::Max() const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(samples_.begin(), samples_.end());
}

double PercentileTracker::Min() const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(samples_.begin(), samples_.end());
}

}  // namespace hpcc::stats
