#include "stats/percentile.h"

#include <algorithm>
#include <cmath>

namespace hpcc::stats {

void PercentileTracker::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double PercentileTracker::Percentile(double p) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double PercentileTracker::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double PercentileTracker::Max() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.back();
}

double PercentileTracker::Min() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.front();
}

}  // namespace hpcc::stats
