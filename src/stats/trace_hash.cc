#include "stats/trace_hash.h"

#include <cstdio>

#include "core/hash.h"

namespace hpcc::stats {
namespace {

// The splitmix64 avalanche makes the wrapping-sum accumulator safe against
// records cancelling each other out.
using core::SplitMix64;

uint64_t Fold(uint64_t h, uint64_t v) { return SplitMix64(h ^ v); }

}  // namespace

void TraceHash::AddFlow(uint64_t flow_id, uint32_t src, uint32_t dst,
                        uint64_t size_bytes, sim::TimePs start,
                        sim::TimePs finish, bool completed) {
  uint64_t h = SplitMix64(flow_id);
  h = Fold(h, (static_cast<uint64_t>(src) << 32) | dst);
  h = Fold(h, size_bytes);
  h = Fold(h, static_cast<uint64_t>(start));
  h = Fold(h, static_cast<uint64_t>(finish));
  h = Fold(h, completed ? 1 : 0);
  acc_ += h;  // wrapping add: order-independent
  ++count_;
}

void TraceHash::Combine(uint64_t digest, uint64_t salt) {
  acc_ += Fold(SplitMix64(salt), digest);
  ++count_;
}

uint64_t TraceHash::digest() const { return Fold(SplitMix64(count_), acc_); }

std::string TraceHash::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest()));
  return buf;
}

}  // namespace hpcc::stats
