#include "stats/pfc_monitor.h"

#include <algorithm>

#include "net/packet.h"
#include "topo/topology.h"

namespace hpcc::stats {

void PfcMonitor::AttachTo(topo::Topology& topology) {
  for (uint32_t id = 0; id < topology.num_nodes(); ++id) {
    net::Node& n = topology.node(id);
    for (int p = 0; p < n.num_ports(); ++p) {
      n.port(p).set_pause_observer(&observer_);
      port_bps_[{id, p}] = n.port(p).bandwidth_bps();
    }
  }
}

void PfcMonitor::AttachTo(topo::Topology& topology,
                          const std::vector<uint32_t>& nodes) {
  for (uint32_t id : nodes) {
    net::Node& n = topology.node(id);
    for (int p = 0; p < n.num_ports(); ++p) {
      n.port(p).set_pause_observer(&observer_);
      port_bps_[{id, p}] = n.port(p).bandwidth_bps();
    }
  }
}

void PfcMonitor::Merge(const PfcMonitor& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  peak_paused_bps_ = std::max(peak_paused_bps_, other.peak_paused_bps_);
}

void PfcMonitor::OnChange(uint32_t node, int port, int prio, sim::TimePs now,
                          bool paused) {
  if (prio != net::kDataPriority) return;
  const auto key = std::make_pair(node, port);
  if (paused) {
    if (open_.count(key) > 0) return;
    PauseEvent ev;
    ev.start = now;
    ev.node = node;
    ev.port = port;
    ev.port_bps = port_bps_.count(key) > 0 ? port_bps_[key] : 0;
    open_[key] = events_.size();
    events_.push_back(ev);
    paused_bps_now_ += ev.port_bps;
    peak_paused_bps_ = std::max(peak_paused_bps_, paused_bps_now_);
  } else {
    auto it = open_.find(key);
    if (it == open_.end()) return;
    events_[it->second].end = now;
    paused_bps_now_ -= events_[it->second].port_bps;
    open_.erase(it);
  }
}

void PfcMonitor::Finish(sim::TimePs now) {
  for (const auto& [key, idx] : open_) {
    events_[idx].end = now;
  }
  open_.clear();
  paused_bps_now_ = 0;
}

sim::TimePs PfcMonitor::total_pause_time() const {
  sim::TimePs total = 0;
  for (const PauseEvent& ev : events_) {
    if (ev.end >= ev.start) total += ev.end - ev.start;
  }
  return total;
}

double PfcMonitor::PauseTimeFraction(sim::TimePs elapsed,
                                     int num_ports) const {
  if (elapsed <= 0 || num_ports <= 0) return 0;
  return static_cast<double>(total_pause_time()) /
         (static_cast<double>(elapsed) * num_ports);
}

PercentileTracker PfcMonitor::DurationDistributionUs() const {
  PercentileTracker t;
  for (const PauseEvent& ev : events_) {
    if (ev.end >= ev.start) t.Add(sim::ToUs(ev.end - ev.start));
  }
  return t;
}

}  // namespace hpcc::stats
