// Simple (time, value) series plus a per-flow goodput sampler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace hpcc::host {
class Flow;
}

namespace hpcc::stats {

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(size_t max_points) { set_max_points(max_points); }

  void Add(sim::TimePs t, double v) {
    if (max_points_ != 0 && points_.size() >= max_points_) Compact();
    points_.emplace_back(t, v);
  }
  const std::vector<std::pair<sim::TimePs, double>>& points() const {
    return points_;
  }
  bool empty() const { return points_.empty(); }

  // Bounds memory: once the series holds max_points entries the next Add
  // drops every other point (stride doubling), so an arbitrarily long
  // sampling run keeps the first point, the latest point and a uniformly
  // thinned middle while never exceeding the cap. 0 (default) = unbounded.
  void set_max_points(size_t max_points);
  size_t max_points() const { return max_points_; }

  // Downsampled CSV-ish rendering: "t_us,value" per line, at most max_rows.
  std::string Format(size_t max_rows = 40) const;
  double MaxValue() const;

 private:
  void Compact();  // keep even indices: halves size, doubles the stride

  std::vector<std::pair<sim::TimePs, double>> points_;
  size_t max_points_ = 0;
};

 // Samples each tracked flow's acked-byte delta per interval -> goodput in
 // Gbps (the per-flow throughput curves of Fig. 9a/9g, 13a, 14a).
class GoodputSampler {
 public:
  GoodputSampler(sim::Simulator* simulator, sim::TimePs interval);
  // Track a flow under a label; safe to call before the flow starts.
  void Track(const host::Flow* flow, const std::string& label);
  void Start(sim::TimePs until);

  size_t num_flows() const { return flows_.size(); }
  const std::string& label(size_t i) const { return labels_[i]; }
  const TimeSeries& series(size_t i) const { return series_[i]; }
  // Sum across flows at each tick (aggregate throughput, Fig. 13a).
  TimeSeries Aggregate() const;

 private:
  void Sample();
  sim::Simulator* simulator_;
  sim::TimePs interval_;
  sim::TimePs until_ = 0;
  std::vector<const host::Flow*> flows_;
  std::vector<std::string> labels_;
  std::vector<uint64_t> last_acked_;
  std::vector<TimeSeries> series_;

  std::vector<std::pair<sim::TimePs, double>> agg_points_;
};

}  // namespace hpcc::stats
