// CSV export for offline plotting: time series, distributions (as CDF
// points) and per-bin FCT tables in a gnuplot/pandas-friendly format.
#pragma once

#include <string>
#include <vector>

#include "stats/fct_recorder.h"
#include "stats/percentile.h"
#include "stats/timeseries.h"

namespace hpcc::stats {

// Generic rectangular table: one header row plus pre-formatted cells. Cells
// containing commas, quotes or newlines are quoted per RFC 4180. Used by the
// scenario sweep runner to aggregate per-run results into one file.
bool WriteTableCsv(const std::string& path,
                   const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows);

// "time_us,value" rows. Returns false if the file cannot be opened.
bool WriteTimeSeriesCsv(const std::string& path, const TimeSeries& series,
                        const std::string& value_header = "value");

// "percentile,value" rows at the given resolution (default every 1%).
bool WriteCdfCsv(const std::string& path, const PercentileTracker& dist,
                 int step_percent = 1);

// "bin,count,p50,p95,p99" rows per non-empty size bin.
bool WriteFctCsv(const std::string& path, const FctRecorder& fct);

}  // namespace hpcc::stats
