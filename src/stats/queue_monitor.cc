#include "stats/queue_monitor.h"

#include <algorithm>

#include "net/packet.h"
#include "net/port.h"
#include "net/switch_node.h"
#include "topo/topology.h"

namespace hpcc::stats {

QueueMonitor::QueueMonitor(sim::Simulator* simulator,
                           topo::Topology* topology, sim::TimePs interval)
    : simulator_(simulator), topology_(topology), interval_(interval) {}

void QueueMonitor::Start(sim::TimePs until) {
  until_ = until;
  ScheduleTick(simulator_->now() + interval_);
}

void QueueMonitor::ScheduleTick(sim::TimePs at) {
  tick_pending_ = true;
  tick_at_ = at;
  tick_seq_ = simulator_->next_schedule_seq();
  tick_event_ = simulator_->ScheduleAt(at, [this]() {
    tick_pending_ = false;
    Sample();
  });
}

QueueMonitor::WarmState QueueMonitor::CaptureWarm() const {
  WarmState w;
  w.dist = dist_;
  w.max_seen = max_seen_;
  w.until = until_;
  w.tick_pending = tick_pending_;
  w.tick_at = tick_at_;
  w.tick_seq = tick_seq_;
  return w;
}

void QueueMonitor::RestoreWarm(const WarmState& w) {
  if (tick_pending_) {
    simulator_->Cancel(tick_event_);
    tick_pending_ = false;
  }
  dist_ = w.dist;
  max_seen_ = w.max_seen;
  until_ = w.until;
  if (!w.tick_pending) return;
  tick_pending_ = true;
  tick_at_ = w.tick_at;
  tick_seq_ = w.tick_seq;
  tick_event_ = simulator_->ScheduleAtSeq(w.tick_at, w.tick_seq, [this]() {
    tick_pending_ = false;
    Sample();
  });
}

void QueueMonitor::Sample() {
  const std::vector<uint32_t>& sids =
      use_subset_ ? switches_ : topology_->switches();
  for (uint32_t sid : sids) {
    net::SwitchNode& sw = topology_->switch_node(sid);
    for (int p = 0; p < sw.num_ports(); ++p) {
      const int64_t q = sw.port(p).queue_bytes(net::kDataPriority);
      dist_.Add(static_cast<double>(q));
      max_seen_ = std::max(max_seen_, q);
    }
  }
  if (simulator_->now() + interval_ <= until_) {
    ScheduleTick(simulator_->now() + interval_);
  }
}

PortQueueSampler::PortQueueSampler(sim::Simulator* simulator,
                                   const net::Port* port, sim::TimePs interval)
    : simulator_(simulator), port_(port), interval_(interval) {}

void PortQueueSampler::Start(sim::TimePs until) {
  until_ = until;
  simulator_->ScheduleIn(interval_, [this]() { Sample(); });
}

void PortQueueSampler::Sample() {
  series_.Add(simulator_->now(),
              static_cast<double>(port_->queue_bytes(net::kDataPriority)));
  if (simulator_->now() + interval_ <= until_) {
    simulator_->ScheduleIn(interval_, [this]() { Sample(); });
  }
}

}  // namespace hpcc::stats
