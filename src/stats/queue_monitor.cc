#include "stats/queue_monitor.h"

#include <algorithm>

#include "net/packet.h"
#include "net/port.h"
#include "net/switch_node.h"
#include "topo/topology.h"

namespace hpcc::stats {

QueueMonitor::QueueMonitor(sim::Simulator* simulator,
                           topo::Topology* topology, sim::TimePs interval)
    : simulator_(simulator), topology_(topology), interval_(interval) {}

void QueueMonitor::Start(sim::TimePs until) {
  until_ = until;
  simulator_->ScheduleIn(interval_, [this]() { Sample(); });
}

void QueueMonitor::Sample() {
  const std::vector<uint32_t>& sids =
      use_subset_ ? switches_ : topology_->switches();
  for (uint32_t sid : sids) {
    net::SwitchNode& sw = topology_->switch_node(sid);
    for (int p = 0; p < sw.num_ports(); ++p) {
      const int64_t q = sw.port(p).queue_bytes(net::kDataPriority);
      dist_.Add(static_cast<double>(q));
      max_seen_ = std::max(max_seen_, q);
    }
  }
  if (simulator_->now() + interval_ <= until_) {
    simulator_->ScheduleIn(interval_, [this]() { Sample(); });
  }
}

PortQueueSampler::PortQueueSampler(sim::Simulator* simulator,
                                   const net::Port* port, sim::TimePs interval)
    : simulator_(simulator), port_(port), interval_(interval) {}

void PortQueueSampler::Start(sim::TimePs until) {
  until_ = until;
  simulator_->ScheduleIn(interval_, [this]() { Sample(); });
}

void PortQueueSampler::Sample() {
  series_.Add(simulator_->now(),
              static_cast<double>(port_->queue_bytes(net::kDataPriority)));
  if (simulator_->now() + interval_ <= until_) {
    simulator_->ScheduleIn(interval_, [this]() { Sample(); });
  }
}

}  // namespace hpcc::stats
