// Exact percentile tracking over collected samples.
//
// Thread-safety contract: const readers never mutate the tracker, so any
// number of threads may read one tracker concurrently (sweep aggregation,
// lane merges). Reading an unsorted tracker is correct but copies the
// samples; call Sort() once at the collection boundary (after the last
// Add/Merge) to make subsequent reads allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpcc::stats {

class PercentileTracker {
 public:
  void Add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }

  // Folds another tracker's samples in. Percentiles sort before answering,
  // so the merged result is independent of merge order — shard-merged
  // statistics equal the single-sim ones exactly.
  void Merge(const PercentileTracker& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  // Sorts in place so later const reads hit the zero-copy fast path. Call
  // after the final Add/Merge, before the tracker is shared across threads.
  void Sort();

  // p in [0, 100]; exact nearest-rank percentile (linear interpolation
  // between adjacent ranks). Returns NaN on no samples, so downstream
  // formatting can distinguish "no data" from a real 0.
  double Percentile(double p) const;
  double Mean() const;  // NaN on no samples
  double Max() const;   // NaN on no samples
  double Min() const;   // NaN on no samples
  size_t Count() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }

 private:
  std::vector<double> samples_;
  bool sorted_ = true;  // an empty tracker is trivially sorted
};

}  // namespace hpcc::stats
