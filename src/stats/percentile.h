// Exact percentile tracking over collected samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpcc::stats {

class PercentileTracker {
 public:
  void Add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }

  // Folds another tracker's samples in. Percentiles sort before answering,
  // so the merged result is independent of merge order — shard-merged
  // statistics equal the single-sim ones exactly.
  void Merge(const PercentileTracker& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  // p in [0, 100]; exact nearest-rank percentile. Returns 0 on no samples.
  double Percentile(double p) const;
  double Mean() const;
  double Max() const;
  double Min() const;
  size_t Count() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

}  // namespace hpcc::stats
