#include "stats/csv_writer.h"

#include <cstdio>
#include <memory>

namespace hpcc::stats {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr Open(const std::string& path) {
  return FilePtr(std::fopen(path.c_str(), "w"));
}

void WriteCell(std::FILE* f, const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) {
    std::fputs(cell.c_str(), f);
    return;
  }
  std::fputc('"', f);
  for (const char c : cell) {
    if (c == '"') std::fputc('"', f);
    std::fputc(c, f);
  }
  std::fputc('"', f);
}

void WriteRow(std::FILE* f, const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) std::fputc(',', f);
    WriteCell(f, cells[i]);
  }
  std::fputc('\n', f);
}

}  // namespace

bool WriteTableCsv(const std::string& path,
                   const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows) {
  FilePtr f = Open(path);
  if (f == nullptr) return false;
  WriteRow(f.get(), header);
  for (const auto& row : rows) WriteRow(f.get(), row);
  // A truncated file (e.g. disk full) must not report success.
  return std::fflush(f.get()) == 0 && std::ferror(f.get()) == 0;
}

bool WriteTimeSeriesCsv(const std::string& path, const TimeSeries& series,
                        const std::string& value_header) {
  FilePtr f = Open(path);
  if (f == nullptr) return false;
  std::fprintf(f.get(), "time_us,%s\n", value_header.c_str());
  for (const auto& [t, v] : series.points()) {
    std::fprintf(f.get(), "%.3f,%.6g\n", sim::ToUs(t), v);
  }
  return true;
}

bool WriteCdfCsv(const std::string& path, const PercentileTracker& dist,
                 int step_percent) {
  if (step_percent <= 0) return false;
  FilePtr f = Open(path);
  if (f == nullptr) return false;
  std::fprintf(f.get(), "percentile,value\n");
  for (int p = 0; p <= 100; p += step_percent) {
    std::fprintf(f.get(), "%d,%.6g\n", p,
                 dist.Percentile(static_cast<double>(p)));
  }
  return true;
}

bool WriteFctCsv(const std::string& path, const FctRecorder& fct) {
  FilePtr f = Open(path);
  if (f == nullptr) return false;
  std::fprintf(f.get(), "bin,count,p50,p95,p99\n");
  for (size_t i = 0; i < fct.num_bins(); ++i) {
    const PercentileTracker& bin = fct.bin(i);
    if (bin.Empty()) continue;
    std::fprintf(f.get(), "%s,%zu,%.4f,%.4f,%.4f\n", fct.BinLabel(i).c_str(),
                 bin.Count(), bin.Percentile(50), bin.Percentile(95),
                 bin.Percentile(99));
  }
  return true;
}

}  // namespace hpcc::stats
