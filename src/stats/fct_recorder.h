// FCT slowdown accounting: the paper's primary application metric.
//
// "FCT slowdown" is a flow's actual FCT normalized by its ideal FCT when the
// network carries only that flow (§2.3 footnote 1). Flows are bucketed into
// the size bins the paper uses on its x-axes, and per-bin slowdown
// percentiles (median/95/99) are reported.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "stats/percentile.h"

namespace hpcc::stats {

class FctRecorder {
 public:
  // `bin_edges`: upper-inclusive byte boundaries; a final +inf bin is
  // implied. Paper bin sets provided below.
  explicit FctRecorder(std::vector<uint64_t> bin_edges);

  void Record(uint64_t size_bytes, sim::TimePs fct, sim::TimePs ideal_fct);

  // Folds another recorder with identical bin edges in (shard merge);
  // percentiles sort on demand, so merge order does not matter.
  void Merge(const FctRecorder& other);

  // Sorts every bin so later const reads are zero-copy (and safe to share
  // across threads without per-read copies). Call at collection boundaries.
  void Sort() {
    for (PercentileTracker& b : bins_) b.Sort();
    overall_.Sort();
  }

  size_t num_bins() const { return bins_.size(); }
  std::string BinLabel(size_t bin) const;
  const PercentileTracker& bin(size_t i) const { return bins_[i]; }
  const PercentileTracker& overall() const { return overall_; }
  size_t total_flows() const { return overall_.Count(); }

  // One row per bin: label, count, p50/p95/p99 slowdown.
  std::string FormatTable() const;

  // Paper x-axis bin sets.
  static std::vector<uint64_t> WebSearchBins();   // Fig. 2/3/10
  static std::vector<uint64_t> FbHadoopBins();    // Fig. 11/12

 private:
  size_t BinIndex(uint64_t size) const;
  std::vector<uint64_t> edges_;
  std::vector<PercentileTracker> bins_;
  PercentileTracker overall_;
};

}  // namespace hpcc::stats
