#include "stats/timeseries.h"

#include <algorithm>
#include <cstdio>

#include "host/flow.h"

namespace hpcc::stats {

std::string TimeSeries::Format(size_t max_rows) const {
  std::string out;
  if (points_.empty()) return out;
  const size_t stride = std::max<size_t>(1, points_.size() / max_rows);
  char line[64];
  for (size_t i = 0; i < points_.size(); i += stride) {
    std::snprintf(line, sizeof(line), "  %10.1f us  %10.3f\n",
                  sim::ToUs(points_[i].first), points_[i].second);
    out += line;
  }
  return out;
}

void TimeSeries::set_max_points(size_t max_points) {
  // A cap under 4 would thin the series down to almost nothing on every
  // Add; clamp so the endpoints plus some interior always survive.
  max_points_ = max_points == 0 ? 0 : std::max<size_t>(max_points, 4);
  if (max_points_ != 0) {
    while (points_.size() >= max_points_) Compact();
  }
}

void TimeSeries::Compact() {
  if (points_.size() < 2) return;
  size_t out = 0;
  for (size_t i = 0; i < points_.size(); i += 2) points_[out++] = points_[i];
  points_.resize(out);
}

double TimeSeries::MaxValue() const {
  double m = 0;
  for (const auto& [t, v] : points_) m = std::max(m, v);
  return m;
}

GoodputSampler::GoodputSampler(sim::Simulator* simulator, sim::TimePs interval)
    : simulator_(simulator), interval_(interval) {}

void GoodputSampler::Track(const host::Flow* flow, const std::string& label) {
  flows_.push_back(flow);
  labels_.push_back(label);
  last_acked_.push_back(0);
  series_.emplace_back();
}

void GoodputSampler::Start(sim::TimePs until) {
  until_ = until;
  simulator_->ScheduleIn(interval_, [this]() { Sample(); });
}

void GoodputSampler::Sample() {
  const sim::TimePs now = simulator_->now();
  const double interval_sec = sim::ToSec(interval_);
  double agg_gbps = 0;
  for (size_t i = 0; i < flows_.size(); ++i) {
    const uint64_t acked = flows_[i]->snd_una;
    const double gbps = static_cast<double>(acked - last_acked_[i]) * 8.0 /
                        interval_sec / 1e9;
    last_acked_[i] = acked;
    series_[i].Add(now, gbps);
    agg_gbps += gbps;
  }
  agg_points_.emplace_back(now, agg_gbps);
  if (now + interval_ <= until_) {
    simulator_->ScheduleIn(interval_, [this]() { Sample(); });
  }
}

TimeSeries GoodputSampler::Aggregate() const {
  TimeSeries out;
  for (const auto& [t, v] : agg_points_) out.Add(t, v);
  return out;
}

}  // namespace hpcc::stats
