#include "runner/experiment.h"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <cstdio>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "core/hash.h"

namespace hpcc::runner {

net::SwitchConfig Experiment::MakeSwitchConfig() const {
  net::SwitchConfig sw;
  sw.fast_path = config_.fast_path;
  sw.pfc_enabled = config_.pfc_enabled;
  sw.int_enabled = cc::SchemeUsesInt(config_.cc.scheme);
  sw.int_wire_format = config_.cc.hpcc.wire_format;
  sw.rcp_enabled = cc::SchemeUsesRcp(config_.cc.scheme);
  if (config_.red_override.has_value()) {
    sw.red = *config_.red_override;
  } else if (config_.cc.scheme == "dctcp") {
    sw.red = net::RedConfig::Dctcp();
  } else if (cc::SchemeUsesEcn(config_.cc.scheme)) {
    sw.red = net::RedConfig::Dcqcn();
  }
  return sw;
}

void Experiment::BuildTopology() {
  const net::SwitchConfig sw = MakeSwitchConfig();
  host::HostConfig hc;
  hc.int_sample_every = config_.int_sample_every;
  hc.fast_path = config_.fast_path;
  switch (config_.topology) {
    case TopologyKind::kFatTree: {
      topo::FatTreeOptions o = config_.fattree;
      o.sw = sw;
      o.host = hc;
      auto built = topo::MakeFatTree(simulator_.get(), o, config_.fabric_snapshot);
      topology_ = std::move(built.topo);
      hosts_ = built.host_ids;
      break;
    }
    case TopologyKind::kTestbed: {
      topo::TestbedOptions o = config_.testbed;
      o.sw = sw;
      o.host = hc;
      auto built = topo::MakeTestbed(simulator_.get(), o, config_.fabric_snapshot);
      topology_ = std::move(built.topo);
      hosts_ = built.host_ids;
      break;
    }
    case TopologyKind::kStar: {
      topo::StarOptions o = config_.star;
      o.sw = sw;
      o.host = hc;
      auto built = topo::MakeStar(simulator_.get(), o, config_.fabric_snapshot);
      topology_ = std::move(built.topo);
      hosts_ = built.host_ids;
      break;
    }
    case TopologyKind::kDumbbell: {
      topo::DumbbellOptions o = config_.dumbbell;
      o.sw = sw;
      o.host = hc;
      auto built = topo::MakeDumbbell(simulator_.get(), o, config_.fabric_snapshot);
      topology_ = std::move(built.topo);
      hosts_ = built.left_hosts;
      hosts_.insert(hosts_.end(), built.right_hosts.begin(),
                    built.right_hosts.end());
      break;
    }
  }
}

std::unique_ptr<stats::FctRecorder> Experiment::MakeFctRecorder() const {
  return std::make_unique<stats::FctRecorder>(
      config_.trace == "fbhadoop" ? stats::FctRecorder::FbHadoopBins()
                                  : stats::FctRecorder::WebSearchBins());
}

Experiment::Experiment(const ExperimentConfig& config) : config_(config) {
  if (config_.shards < 1) {
    throw std::invalid_argument("shards must be >= 1");
  }
  if (config_.hybrid.enabled) {
    if (config_.shards > 1) {
      throw std::invalid_argument(
          "hybrid fluid/packet co-simulation requires shards=1");
    }
    if (!cc::SchemeUsesInt(config_.cc.scheme)) {
      throw std::invalid_argument(
          "hybrid fluid coupling needs an INT-carrying CC scheme");
    }
  } else if (config_.flow_class == workload::FlowClass::kFluid ||
             (config_.incast &&
              config_.incast_opts.flow_class == workload::FlowClass::kFluid)) {
    throw std::invalid_argument(
        "flow_class=fluid requires the hybrid engine (hybrid.enabled)");
  }
  if (!config_.trace_file.empty()) {
    // Parse once; sharded lanes share the parsed records by pointer.
    trace_records_ =
        std::make_shared<const std::vector<workload::TraceRecord>>(
            workload::LoadFlowTrace(config_.trace_file));
  }
  simulator_ = std::make_unique<sim::Simulator>();
  BuildTopology();
  base_rtt_ = config_.base_rtt_override > 0 ? config_.base_rtt_override
                                            : topology_->MaxBaseRtt();
  if (cc::SchemeUsesRcp(config_.cc.scheme)) {
    for (uint32_t s : topology_->switches()) {
      topology_->switch_node(s).set_rcp_rtt(base_rtt_);
    }
  }

  fct_ = MakeFctRecorder();

  if (config_.hybrid.enabled) {
    analytic::FluidRegionParams fp;
    fp.tick = config_.hybrid.tick > 0 ? config_.hybrid.tick : base_rtt_;
    // Projected fluid qLen is clamped to the same buffer bound the
    // IntSanityMonitor enforces on real queues.
    fp.qlen_cap_bytes = MakeSwitchConfig().buffer_bytes;
    fluid_ = std::make_unique<analytic::FluidRegion>(simulator_.get(),
                                                     topology_.get(), fp);
    fluid_->set_completion_callback(
        [this](const analytic::FluidRegion::FlowRecord& rec, sim::TimePs now) {
          fct_->Record(rec.size_bytes, now - rec.start,
                       topology_->IdealFct(rec.src, rec.dst, rec.size_bytes));
          if (rec.size_bytes <= config_.short_flow_bytes) {
            short_fct_us_.Add(sim::ToUs(now - rec.start));
          }
        });
  }

  if (config_.shards > 1) {
    SetupShards();
    return;
  }
  lane_node_ids_.resize(1);
  lane_node_ids_[0].resize(topology_->num_nodes());
  std::iota(lane_node_ids_[0].begin(), lane_node_ids_[0].end(), 0u);

  // Flow completion wiring: every host reports into the shared recorder.
  for (uint32_t h : hosts_) {
    topology_->host(h).set_flow_done_callback(
        [this](const host::Flow& f, sim::TimePs now) {
          if (f.failed) {
            // Give-up: the flow never delivered, so it must not feed the FCT
            // distributions — only the failure count.
            ++flows_failed_;
            return;
          }
          ++flows_completed_;
          const auto& s = f.spec();
          fct_->Record(s.size_bytes, now - s.start_time,
                       topology_->IdealFct(s.src, s.dst, s.size_bytes));
          if (s.size_bytes <= config_.short_flow_bytes) {
            short_fct_us_.Add(sim::ToUs(now - s.start_time));
          }
        });
  }
  InstallMonitors();
  MakeSources(simulator_.get(), 0, &sources_);
}

void Experiment::MakeSources(
    sim::Simulator* sim, int lane,
    std::vector<std::unique_ptr<workload::TrafficSource>>* out) {
  // Install order is a determinism contract: Poisson, trace replay, incast.
  // Warm checkpoints, lane replicas and StartWorkload all rely on it.
  if (config_.load > 0) {
    workload::FlowSink sink = [this, lane](uint32_t src, uint32_t dst,
                                           uint64_t size, sim::TimePs start) {
      AddWorkloadFlow(config_.flow_class, lane, src, dst, size, start);
    };
    workload::PoissonOptions po;
    po.load = config_.load;
    // Per-host capacity counts all NIC ports (testbed hosts are dual-homed).
    const host::HostNode& h0 = topology_->host(hosts_.front());
    po.host_bps = 0;
    for (int p = 0; p < h0.num_ports(); ++p) {
      po.host_bps += h0.port(p).bandwidth_bps();
    }
    po.start = 0;
    po.end = config_.duration;
    po.max_flows = config_.max_flows;
    po.seed = config_.seed;
    out->push_back(std::make_unique<workload::PoissonGenerator>(
        sim, hosts_,
        config_.trace == "fbhadoop" ? workload::SizeCdf::FbHadoop()
                                    : workload::SizeCdf::WebSearch(),
        po, sink));
  }
  if (trace_records_ != nullptr) {
    // Trace src/dst are indices into hosts() (stable across topologies);
    // translate to node ids here.
    workload::FlowSink sink = [this, lane](uint32_t src, uint32_t dst,
                                           uint64_t size, sim::TimePs start) {
      if (src >= hosts_.size() || dst >= hosts_.size()) {
        throw std::out_of_range("trace_file host index out of range");
      }
      AddWorkloadFlow(config_.flow_class, lane, hosts_[src], hosts_[dst], size,
                      start);
    };
    out->push_back(std::make_unique<workload::TraceReplaySource>(
        sim, trace_records_, sink));
  }
  if (config_.incast) {
    const workload::FlowClass fc = config_.incast_opts.flow_class;
    workload::FlowSink sink = [this, lane, fc](uint32_t src, uint32_t dst,
                                               uint64_t size,
                                               sim::TimePs start) {
      AddWorkloadFlow(fc, lane, src, dst, size, start);
    };
    workload::IncastOptions io = config_.incast_opts;
    io.end = io.end == 0 ? config_.duration : io.end;
    io.seed = core::DeriveSeed(config_.seed, 7);
    out->push_back(
        std::make_unique<workload::IncastGenerator>(sim, hosts_, io, sink));
  }
}

Experiment::~Experiment() = default;

void Experiment::SetupShards() {
  const int n = config_.shards;
  std::vector<int> lane_of =
      config_.topology == TopologyKind::kFatTree
          ? topo::FatTreeLanes(config_.fattree, n)
          : topo::ContiguousLanes(topology_->num_nodes(), n);
  partition_ = topo::MakePartition(*topology_, std::move(lane_of), n);
  for (const topo::CutLink& c : partition_.cut_links) {
    if (c.delay <= 0) {
      throw std::invalid_argument(
          "sharded run needs a positive delay on every cut link");
    }
  }
  total_ports_ = 0;
  for (uint32_t id = 0; id < topology_->num_nodes(); ++id) {
    total_ports_ += topology_->node(id).num_ports();
  }
  lane_node_ids_.resize(n);
  for (uint32_t id = 0; id < topology_->num_nodes(); ++id) {
    lane_node_ids_[partition_.lane_of_node[id]].push_back(id);
  }

  lanes_.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto lane = std::make_unique<Lane>();
    if (i == 0) {
      lane->sim = simulator_.get();
    } else {
      lane->owned_sim = std::make_unique<sim::Simulator>();
      lane->sim = lane->owned_sim.get();
    }
    lanes_.push_back(std::move(lane));
  }
  // Re-home every node (and its ports) onto its lane's event arena. The
  // topology was built quiescent on lane 0's simulator, so this is a plain
  // pointer swap.
  for (uint32_t id = 0; id < topology_->num_nodes(); ++id) {
    const int li = partition_.lane_of_node[id];
    if (li != 0) topology_->node(id).set_simulator(lanes_[li]->sim);
  }
  // Each direction of a cut link becomes an SPSC channel owned by the
  // consumer lane; the producer port commits arrivals into it instead of its
  // own arena.
  for (const topo::CutLink& c : partition_.cut_links) {
    Lane::Inbound in;
    in.channel = std::make_unique<net::HandoffChannel>();
    in.peer = &topology_->node(c.to_node);
    in.peer_port = c.to_port;
    in.key = (c.from_node << 8) | static_cast<uint32_t>(c.from_port);
    topology_->node(c.from_node).port(c.from_port).set_handoff(
        in.channel.get());
    lanes_[c.to_lane]->inbound.push_back(std::move(in));
  }

  for (int i = 0; i < n; ++i) {
    Lane& lane = *lanes_[i];
    lane.fct = MakeFctRecorder();
    lane.pfc = std::make_unique<stats::PfcMonitor>();
    lane.pfc->AttachTo(*topology_, lane_node_ids_[i]);
    lane.queue_monitor = std::make_unique<stats::QueueMonitor>(
        lane.sim, topology_.get(), config_.queue_sample_interval);
    lane.queue_monitor->set_switches(partition_.lane_switches[i]);
  }
  // Flow completion wiring: every host reports into its owning lane's
  // recorder (IdealFct is a const query with local search state, so
  // concurrent lane callbacks are safe).
  for (uint32_t h : hosts_) {
    Lane* lane = lanes_[partition_.lane_of_node[h]].get();
    topology_->host(h).set_flow_done_callback(
        [this, lane](const host::Flow& f, sim::TimePs now) {
          if (f.failed) {
            ++lane->flows_failed;
            return;
          }
          ++lane->flows_completed;
          const auto& s = f.spec();
          lane->fct->Record(s.size_bytes, now - s.start_time,
                            topology_->IdealFct(s.src, s.dst, s.size_bytes));
          if (s.size_bytes <= config_.short_flow_bytes) {
            lane->short_fct_us.Add(sim::ToUs(now - s.start_time));
          }
        });
  }
  // Replicated sources: every lane draws the full workload with the
  // single-sim seeds over ALL hosts; AddFlowOnLane keeps only the flows the
  // lane owns, while phantom draws still consume the lane's flow-id counter,
  // so ids match shards=1 creation order exactly. (Hybrid runs never get
  // here — fluid dispatch requires shards=1 — so AddWorkloadFlow reduces to
  // AddFlowOnLane for every replicated source.)
  for (int i = 0; i < n; ++i) {
    MakeSources(lanes_[i]->sim, i, &lanes_[i]->sources);
  }
}

void Experiment::InstallMonitors() {
  pfc_monitor_.AttachTo(*topology_);
  queue_monitor_ = std::make_unique<stats::QueueMonitor>(
      simulator_.get(), topology_.get(), config_.queue_sample_interval);
  total_ports_ = 0;
  for (uint32_t id = 0; id < topology_->num_nodes(); ++id) {
    total_ports_ += topology_->node(id).num_ports();
  }
}

host::Flow* Experiment::AddFlow(uint32_t src, uint32_t dst, uint64_t bytes,
                                sim::TimePs start) {
  if (config_.shards > 1) {
    // Replicate the draw in every lane so flow-id counters stay aligned;
    // exactly one lane owns `src` and returns the live flow.
    host::Flow* out = nullptr;
    for (int i = 0; i < config_.shards; ++i) {
      host::Flow* f = AddFlowOnLane(i, src, dst, bytes, start);
      if (f != nullptr) out = f;
    }
    return out;
  }
  if (src == dst) throw std::invalid_argument("flow src == dst");
  host::HostNode& h = topology_->host(src);
  host::FlowSpec spec;
  spec.id = next_flow_id_++;
  spec.src = src;
  spec.dst = dst;
  spec.size_bytes = bytes;
  spec.start_time = start;

  cc::CcContext ctx;
  ctx.nic_bps = h.port(0).bandwidth_bps();
  ctx.base_rtt = base_rtt_;
  ctx.mtu_bytes = h.config().mtu_bytes;
  ctx.simulator = simulator_.get();

  auto flow = std::make_unique<host::Flow>(spec, cc::MakeCc(config_.cc, ctx),
                                           config_.recovery);
  host::Flow* raw = flow.get();
  h.AddFlow(std::move(flow));
  flow_ptrs_.push_back(raw);
  return raw;
}

host::Flow* Experiment::AddFlowOnLane(int lane, uint32_t src, uint32_t dst,
                                      uint64_t bytes, sim::TimePs start) {
  if (config_.shards == 1) return AddFlow(src, dst, bytes, start);
  if (src == dst) throw std::invalid_argument("flow src == dst");
  Lane& L = *lanes_[lane];
  const uint64_t id = L.next_flow_id++;  // consumed whether owned or not
  if (partition_.lane_of_node[src] != lane) return nullptr;

  host::HostNode& h = topology_->host(src);
  host::FlowSpec spec;
  spec.id = id;
  spec.src = src;
  spec.dst = dst;
  spec.size_bytes = bytes;
  spec.start_time = start;

  cc::CcContext ctx;
  ctx.nic_bps = h.port(0).bandwidth_bps();
  ctx.base_rtt = base_rtt_;
  ctx.mtu_bytes = h.config().mtu_bytes;
  ctx.simulator = L.sim;

  auto flow = std::make_unique<host::Flow>(spec, cc::MakeCc(config_.cc, ctx),
                                           config_.recovery);
  host::Flow* raw = flow.get();
  h.AddFlow(std::move(flow));
  L.flow_ptrs.push_back(raw);
  return raw;
}

void Experiment::AddWorkloadFlow(workload::FlowClass flow_class, int lane,
                                 uint32_t src, uint32_t dst, uint64_t bytes,
                                 sim::TimePs start) {
  if (flow_class == workload::FlowClass::kFluid) {
    AddFluidFlow(src, dst, bytes, start);
    return;
  }
  AddFlowOnLane(lane, src, dst, bytes, start);
}

void Experiment::AddFluidFlow(uint32_t src, uint32_t dst, uint64_t bytes,
                              sim::TimePs start) {
  if (fluid_ == nullptr) {
    throw std::logic_error("fluid flow without hybrid.enabled");
  }
  // Same id space as packet flows (shards==1 here), so packet and fluid
  // flows interleave in one creation order and the trace hash stays total.
  const uint64_t id = next_flow_id_++;
  fluid_->AddFlow(id, src, dst, bytes, start);
}

void Experiment::InstallLinkEvent(sim::TimePs at, size_t link, bool up) {
  if (link >= topology_->links().size()) {
    throw std::invalid_argument("link event index out of range");
  }
  if (config_.shards == 1) {
    simulator_->ScheduleAt(
        at, [this, link, up] { topology_->SetLinkUp(link, up); });
    return;
  }
  for (auto& lp : lanes_) {
    Lane& lane = *lp;
    const uint64_t seq = lane.sim->next_schedule_seq();
    lane.sim->ScheduleAt(at, [] {});
    lane.marks.push_back({at, seq});
  }
  script_.push_back({at, link, up});
}

host::Flow* Experiment::AddReadFlow(uint32_t requester, uint32_t responder,
                                    uint64_t bytes, sim::TimePs start) {
  if (config_.shards > 1) {
    throw std::logic_error("read flows require shards=1");
  }
  if (requester == responder) {
    throw std::invalid_argument("read requester == responder");
  }
  host::HostNode& resp = topology_->host(responder);
  host::FlowSpec spec;
  spec.id = next_flow_id_++;
  spec.src = responder;  // data flows responder -> requester
  spec.dst = requester;
  spec.size_bytes = bytes;
  spec.start_time = start;

  cc::CcContext ctx;
  ctx.nic_bps = resp.port(0).bandwidth_bps();
  ctx.base_rtt = base_rtt_;
  ctx.mtu_bytes = resp.config().mtu_bytes;
  ctx.simulator = simulator_.get();

  auto flow = std::make_unique<host::Flow>(spec, cc::MakeCc(config_.cc, ctx),
                                           config_.recovery);
  host::Flow* raw = flow.get();
  resp.AddPendingFlow(std::move(flow));
  flow_ptrs_.push_back(raw);

  const uint64_t id = spec.id;
  simulator_->ScheduleAt(start, [this, requester, responder, id]() {
    topology_->host(requester).SendReadRequest(id, responder);
  });
  return raw;
}

void Experiment::RunUntil(sim::TimePs until) {
  if (config_.shards > 1) {
    throw std::logic_error("RunUntil requires shards=1");
  }
  if (!queue_monitor_started_) {
    queue_monitor_started_ = true;
    queue_monitor_->Start(config_.duration);
  }
  simulator_->Run(until);
}

void Experiment::set_event_budget(uint64_t max_total_events) {
  simulator_->set_event_budget(max_total_events);
  for (auto& lp : lanes_) {
    if (lp->owned_sim != nullptr) {
      lp->owned_sim->set_event_budget(max_total_events);
    }
  }
}

bool Experiment::budget_exhausted() const {
  if (simulator_->budget_exhausted()) return true;
  for (const auto& lp : lanes_) {
    if (lp->sim->budget_exhausted()) return true;
  }
  return false;
}

void Experiment::set_wall_deadline(
    std::chrono::steady_clock::time_point deadline) {
  simulator_->set_wall_deadline(deadline);
  for (auto& lp : lanes_) {
    if (lp->owned_sim != nullptr) lp->owned_sim->set_wall_deadline(deadline);
  }
}

bool Experiment::deadline_exceeded() const {
  if (simulator_->deadline_exceeded()) return true;
  for (const auto& lp : lanes_) {
    if (lp->sim->deadline_exceeded()) return true;
  }
  return false;
}

std::vector<const host::Flow*> Experiment::AllFlows() const {
  std::vector<const host::Flow*> out;
  out.insert(out.end(), flow_ptrs_.begin(), flow_ptrs_.end());
  for (const auto& lp : lanes_) {
    out.insert(out.end(), lp->flow_ptrs.begin(), lp->flow_ptrs.end());
  }
  return out;
}

void Experiment::DrainInbound(Lane& lane, sim::TimePs horizon) {
  for (Lane::Inbound& in : lane.inbound) {
    sim::TimePs at = 0;
    while (in.channel->PeekArrival(&at) && at <= horizon) {
      net::HandoffRecord rec;
      in.channel->Pop(&rec);
      net::Node* peer = in.peer;
      const int port = in.peer_port;
      net::Packet* pkt = rec.pkt;
      // Identical (at, emission, link_uid) key as the producer would have
      // used on its own arena, so the merged execution order is decided by
      // the EventClass tie-break contract, never by thread timing.
      lane.sim->ScheduleArrival(rec.at, rec.emission, in.key,
                                [peer, port, pkt] {
                                  peer->Deliver(net::PacketPtr(pkt), port);
                                });
    }
  }
}

ExperimentResult Experiment::RunSharded() {
  const int n = config_.shards;
  // Same per-lane start order as the single-sim Run, so every lane's seq
  // counter replays the same schedule sequence.
  for (auto& lp : lanes_) {
    Lane& lane = *lp;
    for (auto& src : lane.sources) src->Start();
    lane.queue_monitor->Start(config_.duration);
  }

  // Coordinator application order: script events by (time, install order).
  // Lane marker lists stay install-ordered, so sorted entries carry their
  // install index to look up each lane's marker seq.
  std::vector<size_t> order(script_.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return script_[a].at < script_[b].at;
  });

  const sim::TimePs cap =
      config_.duration +
      static_cast<sim::TimePs>(config_.drain_factor *
                               static_cast<double>(config_.duration));
  constexpr size_t kNoMark = std::numeric_limits<size_t>::max();

  struct Shared {
    sim::TimePs now = 0;       // barrier time (every lane's clock)
    sim::TimePs target = 0;    // current round horizon
    size_t mark = 0;           // script index bounding the round, or kNoMark
    sim::TimePs chunk = 0;     // next single-sim Run horizon
    size_t cursor = 0;         // next entry of `order`
    sim::TimePs lookahead = 0;
    bool done = false;
  } shared;
  shared.mark = kNoMark;
  shared.chunk = config_.duration;
  shared.lookahead = topo::UpLookahead(*topology_, partition_);

  auto retarget = [&] {
    sim::TimePs t = shared.chunk;
    shared.mark = kNoMark;
    if (shared.cursor < order.size() &&
        script_[order[shared.cursor]].at <= t) {
      shared.mark = order[shared.cursor];
      t = script_[shared.mark].at;
    }
    // The conservative window: a record committed after the last barrier
    // arrives strictly beyond now + lookahead (serialization takes > 0 ps),
    // so lanes never receive an arrival from their past. The guard form is
    // overflow-safe against a huge finite lookahead.
    if (shared.lookahead != topo::kUnboundedLookahead &&
        shared.lookahead < t - shared.now) {
      t = shared.now + shared.lookahead;
      shared.mark = kNoMark;
    }
    shared.target = t;
  };

  // Runs while every lane is blocked at the barrier, so single-threaded
  // access to the whole fabric (SetLinkUp rewires routes globally) is safe.
  auto coordinate = [&]() noexcept {
    shared.now = shared.target;
    bool exhausted = false;
    for (const auto& lp : lanes_) {
      exhausted |= lp->sim->budget_exhausted() || lp->sim->deadline_exceeded();
    }
    if (shared.mark != kNoMark) {
      const ScriptEvent& ev = script_[shared.mark];
      topology_->SetLinkUp(ev.link, ev.up);
      ++shared.cursor;
      shared.lookahead = topo::UpLookahead(*topology_, partition_);
    } else if (shared.now == shared.chunk) {
      // Chunk boundary: replicate the single-sim drain loop's decisions
      // exactly, so the final clock (= sim_time) is byte-identical.
      uint64_t created = 0;
      uint64_t finished = 0;  // completed or failed — either way, settled
      for (const auto& lp : lanes_) {
        created += lp->flow_ptrs.size();
        finished += lp->flows_completed + lp->flows_failed;
      }
      if (finished >= created || shared.now >= cap || exhausted) {
        shared.done = true;
        return;
      }
      shared.chunk = shared.now + sim::Ms(1);
    }
    if (exhausted) {
      shared.done = true;
      return;
    }
    retarget();
  };

  std::barrier sync(n, coordinate);
  auto lane_loop = [&](int li) {
    Lane& lane = *lanes_[li];
    for (;;) {
      const sim::TimePs t = shared.target;
      const uint64_t bound =
          shared.mark != kNoMark ? lane.marks[shared.mark].seq
                                 : std::numeric_limits<uint64_t>::max();
      DrainInbound(lane, t);
      lane.sim->Run(t, bound);
      sync.arrive_and_wait();
      if (shared.done) break;
    }
  };

  retarget();
  std::vector<std::thread> workers;
  workers.reserve(n - 1);
  for (int i = 1; i < n; ++i) workers.emplace_back(lane_loop, i);
  lane_loop(0);
  for (std::thread& w : workers) w.join();
  return CollectSharded();
}

ExperimentResult Experiment::Run() {
  if (config_.shards > 1) return RunSharded();
  StartWorkload();
  return FinishRun();
}

void Experiment::StartWorkload() {
  if (config_.shards > 1) {
    throw std::logic_error("StartWorkload requires shards=1");
  }
  for (auto& src : sources_) src->Start();
  if (!queue_monitor_started_) {
    queue_monitor_started_ = true;
    queue_monitor_->Start(config_.duration);
  }
}

ExperimentResult Experiment::FinishRun() {
  if (config_.shards > 1) {
    throw std::logic_error("FinishRun requires shards=1");
  }
  simulator_->Run(config_.duration);
  // Drain: let in-flight flows finish so their FCTs are recorded.
  const sim::TimePs cap =
      config_.duration +
      static_cast<sim::TimePs>(config_.drain_factor *
                               static_cast<double>(config_.duration));
  while ((flows_completed_ + flows_failed_ < flow_ptrs_.size() ||
          (fluid_ != nullptr && fluid_->active())) &&
         simulator_->now() < cap && !simulator_->budget_exhausted() &&
         !simulator_->deadline_exceeded()) {
    // A frozen clock under an exhausted event budget would spin here forever.
    simulator_->Run(simulator_->now() + sim::Ms(1));
  }
  return Collect();
}

bool Experiment::QuiescentForWarmCheckpoint(size_t external_pending) {
  if (config_.shards > 1) return false;
  // Hybrid runs are always cold: the fluid engine's continuous link/window
  // state has no warm capture surface.
  if (fluid_ != nullptr) return false;
  // Every created flow fully delivered and acknowledged.
  if (flows_completed_ != flow_ptrs_.size()) return false;
  // Every egress queue empty and every fast-path train settled; no pacing
  // wake armed anywhere (see HostNode::pending_wake_count).
  const uint32_t num_nodes = static_cast<uint32_t>(topology_->num_nodes());
  for (uint32_t id = 0; id < num_nodes; ++id) {
    net::Node& node = topology_->node(id);
    for (int p = 0; p < node.num_ports(); ++p) {
      const net::Port& port = node.port(p);
      if (port.total_queue_bytes() != 0 || port.has_unsettled()) return false;
    }
  }
  for (uint32_t h : hosts_) {
    if (topology_->host(h).pending_wake_count() != 0) return false;
  }
  if (pfc_monitor_.has_open_pauses()) return false;
  // Every pending event must be accounted for: the caller's external events
  // (link script, scenario-installed generators), this experiment's own
  // generators, and the queue-monitor tick. Anything else — an RTO, a CC
  // timer — means live protocol state we cannot capture.
  size_t expected = external_pending;
  for (const auto& src : sources_) {
    if (src->warm_pending()) ++expected;
  }
  if (queue_monitor_ != nullptr && queue_monitor_->tick_pending()) ++expected;
  return simulator_->pending_events() == expected;
}

std::unique_ptr<Experiment::WarmState> Experiment::CaptureWarmState() {
  auto w = std::make_unique<WarmState>();
  const sim::TimePs now = simulator_->now();
  w->now = now;
  w->next_schedule_seq = simulator_->next_schedule_seq();
  w->events_executed = simulator_->events_executed();
  w->next_flow_id = next_flow_id_;
  w->flows.reserve(flow_ptrs_.size());
  for (const host::Flow* f : flow_ptrs_) {
    const host::FlowSpec& s = f->spec();
    w->flows.push_back({s.id, s.src, s.dst, s.size_bytes, s.start_time,
                        f->finish_time, f->done});
  }
  w->fct = std::make_unique<stats::FctRecorder>(*fct_);
  w->short_fct_us = short_fct_us_;
  w->queue = queue_monitor_->CaptureWarm();
  w->pfc = pfc_monitor_.CaptureWarm();
  for (uint32_t s : topology_->switches()) {
    w->switches.push_back(topology_->switch_node(s).CaptureWarm());
  }
  const uint32_t num_nodes = static_cast<uint32_t>(topology_->num_nodes());
  for (uint32_t id = 0; id < num_nodes; ++id) {
    net::Node& node = topology_->node(id);
    for (int p = 0; p < node.num_ports(); ++p) {
      w->ports.push_back(node.port(p).CaptureWarm());
    }
  }
  for (uint32_t h : hosts_) {
    w->hosts.push_back(topology_->host(h).CaptureWarm());
  }
  w->sources.resize(sources_.size());
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i]->first_activity() < now) {
      w->sources[i] = sources_[i]->CaptureWarm();
    }
  }
  return w;
}

bool Experiment::ValidateWarmState(const WarmState& w) {
  if (config_.shards > 1) return false;
  if (!queue_monitor_started_) return false;
  if (w.fct == nullptr) return false;
  if (sources_.size() != w.sources.size()) return false;
  if (topology_->switches().size() != w.switches.size()) return false;
  if (hosts_.size() != w.hosts.size()) return false;
  const uint32_t num_nodes = static_cast<uint32_t>(topology_->num_nodes());
  size_t num_ports = 0;
  for (uint32_t id = 0; id < num_nodes; ++id) {
    num_ports += static_cast<size_t>(topology_->node(id).num_ports());
  }
  if (num_ports != w.ports.size()) return false;
  if (w.now < simulator_->now()) return false;
  return true;
}

bool Experiment::RestoreWarmState(const WarmState& w) {
  // Validate the structural match completely before touching anything, so a
  // mismatch leaves this experiment cold-runnable.
  if (!ValidateWarmState(w)) return false;
  const uint32_t num_nodes = static_cast<uint32_t>(topology_->num_nodes());

  for (size_t i = 0; i < w.sources.size(); ++i) {
    if (w.sources[i].has_value()) sources_[i]->RestoreWarm(*w.sources[i]);
  }
  queue_monitor_->RestoreWarm(w.queue);
  pfc_monitor_.RestoreWarm(w.pfc);
  for (size_t i = 0; i < w.switches.size(); ++i) {
    topology_->switch_node(topology_->switches()[i]).RestoreWarm(
        w.switches[i]);
  }
  size_t pi = 0;
  for (uint32_t id = 0; id < num_nodes; ++id) {
    net::Node& node = topology_->node(id);
    for (int p = 0; p < node.num_ports(); ++p) {
      node.port(p).RestoreWarm(w.ports[pi++]);
    }
  }
  for (size_t i = 0; i < hosts_.size(); ++i) {
    topology_->host(hosts_[i]).RestoreWarm(w.hosts[i]);
  }
  fct_ = std::make_unique<stats::FctRecorder>(*w.fct);
  short_fct_us_ = w.short_fct_us;
  warm_flows_ = w.flows;
  next_flow_id_ = w.next_flow_id;
  // Last: jump the clock and counters to T. Every event replayed above was
  // scheduled while now_ was still pre-T, so their captured (time, seq) keys
  // landed unchallenged; from here on the engine continues exactly as the
  // checkpointing run would have.
  simulator_->Restore(w.now, w.next_schedule_seq, w.events_executed);
  return true;
}

ExperimentResult Experiment::CollectSharded() {
  ExperimentResult r;
  // Every lane clock agrees at the final barrier (budget exhaustion is the
  // diagnostic exception); lane 0 is the canonical one.
  const sim::TimePs now = simulator_->now();
  r.fct = MakeFctRecorder();
  stats::PfcMonitor pfc;
  for (const auto& lp : lanes_) {
    Lane& lane = *lp;
    lane.pfc->Finish(lane.sim->now());
    pfc.Merge(*lane.pfc);
    r.fct->Merge(*lane.fct);
    r.short_fct_us.Merge(lane.short_fct_us);
    r.queue_dist.Merge(lane.queue_monitor->distribution());
    r.max_queue_bytes =
        std::max(r.max_queue_bytes, lane.queue_monitor->max_seen_bytes());
    r.flows_created += lane.flow_ptrs.size();
    r.flows_completed += lane.flows_completed;
    r.flows_failed += lane.flows_failed;
    for (const host::Flow* f : lane.flow_ptrs) {
      r.retx_timeouts += f->retx_timeouts;
    }
    r.events_executed += lane.sim->events_executed();
  }
  r.pause_time_fraction = pfc.PauseTimeFraction(now, total_ports_);
  r.pause_events = pfc.pause_count();
  r.pause_durations_us = pfc.DurationDistributionUs();
  for (uint32_t s : topology_->switches()) {
    const net::SwitchNode& sw = topology_->switch_node(s);
    r.dropped_packets += sw.dropped_packets();
    r.dropped_bytes += sw.dropped_bytes();
    for (int d = 0; d < check::kNumDropReasons; ++d) {
      r.dropped_by_reason[d] +=
          sw.dropped_by_reason(static_cast<check::DropReason>(d));
    }
    r.packets_forwarded += sw.forwarded_packets();
  }
  const uint32_t num_nodes = static_cast<uint32_t>(topology_->num_nodes());
  for (uint32_t id = 0; id < num_nodes; ++id) {
    const net::Node& node = topology_->node(id);
    for (int p = 0; p < node.num_ports(); ++p) {
      r.train_aborts += node.port(p).train_aborts();
    }
    // Corruption drops happen at delivery (hosts and switches alike), so
    // they live on the node, not inside the switch drop counters.
    r.dropped_packets += node.corrupt_dropped_packets();
    r.dropped_bytes += node.corrupt_dropped_bytes();
    r.dropped_by_reason[static_cast<int>(check::DropReason::kCorrupt)] +=
        node.corrupt_dropped_packets();
  }
  r.sim_time = now;
  r.base_rtt = base_rtt_;

  stats::TraceHash th;
  for (const auto& lp : lanes_) {
    for (const host::Flow* f : lp->flow_ptrs) {
      const host::FlowSpec& s = f->spec();
      th.AddFlow(s.id, s.src, s.dst, s.size_bytes, s.start_time,
                 f->finish_time, f->done);
    }
  }
  r.trace_hash = th.digest();
  SortResultDistributions(r);
  return r;
}

ExperimentResult Experiment::Collect() {
  if (config_.shards > 1) return CollectSharded();
  ExperimentResult r;
  const sim::TimePs now = simulator_->now();
  pfc_monitor_.Finish(now);

  r.fct = std::move(fct_);
  r.queue_dist = queue_monitor_->distribution();
  r.max_queue_bytes = queue_monitor_->max_seen_bytes();
  r.pause_time_fraction = pfc_monitor_.PauseTimeFraction(now, total_ports_);
  r.pause_events = pfc_monitor_.pause_count();
  r.pause_durations_us = pfc_monitor_.DurationDistributionUs();
  r.short_fct_us = short_fct_us_;
  for (uint32_t s : topology_->switches()) {
    const net::SwitchNode& sw = topology_->switch_node(s);
    r.dropped_packets += sw.dropped_packets();
    r.dropped_bytes += sw.dropped_bytes();
    for (int d = 0; d < check::kNumDropReasons; ++d) {
      r.dropped_by_reason[d] +=
          sw.dropped_by_reason(static_cast<check::DropReason>(d));
    }
    r.packets_forwarded += sw.forwarded_packets();
  }
  const uint32_t num_nodes = static_cast<uint32_t>(topology_->num_nodes());
  for (uint32_t id = 0; id < num_nodes; ++id) {
    const net::Node& node = topology_->node(id);
    for (int p = 0; p < node.num_ports(); ++p) {
      r.train_aborts += node.port(p).train_aborts();
    }
    r.dropped_packets += node.corrupt_dropped_packets();
    r.dropped_bytes += node.corrupt_dropped_bytes();
    r.dropped_by_reason[static_cast<int>(check::DropReason::kCorrupt)] +=
        node.corrupt_dropped_packets();
  }
  // Warm-restored runs fold the checkpoint's completed flows back in, so the
  // report covers [0, end) exactly like a cold run's.
  uint64_t warm_done = 0;
  for (const WarmFlowRecord& wf : warm_flows_) {
    if (wf.done) ++warm_done;
  }
  r.flows_created = flow_ptrs_.size() + warm_flows_.size();
  r.flows_completed = flows_completed_ + warm_done;
  r.flows_failed = flows_failed_;
  if (fluid_ != nullptr) {
    // Fluid flows fold into the engine-inclusive totals AND get their own
    // accounting block (manifest "fluid" subtree).
    r.fluid_flows_created = fluid_->flows_admitted();
    r.fluid_flows_completed = fluid_->flows_completed();
    r.fluid_ticks = fluid_->ticks();
    r.fluid_coupled_links = fluid_->coupled_links();
    r.fluid_delivered_bytes = fluid_->delivered_bytes();
    r.fluid_peak_queue_bytes = fluid_->peak_queue_bytes();
    r.flows_created += r.fluid_flows_created;
    r.flows_completed += r.fluid_flows_completed;
  }
  for (const host::Flow* f : flow_ptrs_) {
    r.retx_timeouts += f->retx_timeouts;
  }
  r.sim_time = now;
  r.events_executed = simulator_->events_executed();
  r.base_rtt = base_rtt_;

  stats::TraceHash th;
  for (const WarmFlowRecord& wf : warm_flows_) {
    th.AddFlow(wf.id, wf.src, wf.dst, wf.size_bytes, wf.start, wf.finish,
               wf.done);
  }
  for (const host::Flow* f : flow_ptrs_) {
    const host::FlowSpec& s = f->spec();
    th.AddFlow(s.id, s.src, s.dst, s.size_bytes, s.start_time, f->finish_time,
               f->done);
  }
  if (fluid_ != nullptr) {
    for (const auto& rec : fluid_->flows()) {
      th.AddFlow(rec.id, rec.src, rec.dst, rec.size_bytes, rec.start,
                 rec.finish, rec.done);
    }
  }
  r.trace_hash = th.digest();

  // The recorder moved out; re-create an empty one in case Collect is called
  // again (idempotence for tests).
  fct_ = std::make_unique<stats::FctRecorder>(
      config_.trace == "fbhadoop" ? stats::FctRecorder::FbHadoopBins()
                                  : stats::FctRecorder::WebSearchBins());
  SortResultDistributions(r);
  return r;
}

// Pre-sort every distribution at the collection boundary: const reads after
// this point (CSV rows, manifests, sweep aggregation across worker threads)
// are zero-copy and mutation-free.
void Experiment::SortResultDistributions(ExperimentResult& r) {
  if (r.fct != nullptr) r.fct->Sort();
  r.queue_dist.Sort();
  r.short_fct_us.Sort();
  r.pause_durations_us.Sort();
}

std::string ExperimentResult::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "flows %llu/%llu  q50 %.1fKB q95 %.1fKB q99 %.1fKB qmax %.1fKB  "
      "pfc %.4f%% (%zu events)  drops %llu  simtime %.2fms  events %llu",
      static_cast<unsigned long long>(flows_completed),
      static_cast<unsigned long long>(flows_created),
      queue_dist.Percentile(50) / 1e3, queue_dist.Percentile(95) / 1e3,
      queue_dist.Percentile(99) / 1e3,
      static_cast<double>(max_queue_bytes) / 1e3, pause_time_fraction * 100,
      pause_events, static_cast<unsigned long long>(dropped_packets),
      sim::ToMs(sim_time), static_cast<unsigned long long>(events_executed));
  return buf;
}

}  // namespace hpcc::runner
