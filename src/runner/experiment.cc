#include "runner/experiment.h"

#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace hpcc::runner {

net::SwitchConfig Experiment::MakeSwitchConfig() const {
  net::SwitchConfig sw;
  sw.fast_path = config_.fast_path;
  sw.pfc_enabled = config_.pfc_enabled;
  sw.int_enabled = cc::SchemeUsesInt(config_.cc.scheme);
  sw.int_wire_format = config_.cc.hpcc.wire_format;
  sw.rcp_enabled = cc::SchemeUsesRcp(config_.cc.scheme);
  if (config_.red_override.has_value()) {
    sw.red = *config_.red_override;
  } else if (config_.cc.scheme == "dctcp") {
    sw.red = net::RedConfig::Dctcp();
  } else if (cc::SchemeUsesEcn(config_.cc.scheme)) {
    sw.red = net::RedConfig::Dcqcn();
  }
  return sw;
}

void Experiment::BuildTopology() {
  const net::SwitchConfig sw = MakeSwitchConfig();
  host::HostConfig hc;
  hc.int_sample_every = config_.int_sample_every;
  hc.fast_path = config_.fast_path;
  switch (config_.topology) {
    case TopologyKind::kFatTree: {
      topo::FatTreeOptions o = config_.fattree;
      o.sw = sw;
      o.host = hc;
      auto built = topo::MakeFatTree(simulator_.get(), o);
      topology_ = std::move(built.topo);
      hosts_ = built.host_ids;
      break;
    }
    case TopologyKind::kTestbed: {
      topo::TestbedOptions o = config_.testbed;
      o.sw = sw;
      o.host = hc;
      auto built = topo::MakeTestbed(simulator_.get(), o);
      topology_ = std::move(built.topo);
      hosts_ = built.host_ids;
      break;
    }
    case TopologyKind::kStar: {
      topo::StarOptions o = config_.star;
      o.sw = sw;
      o.host = hc;
      auto built = topo::MakeStar(simulator_.get(), o);
      topology_ = std::move(built.topo);
      hosts_ = built.host_ids;
      break;
    }
    case TopologyKind::kDumbbell: {
      topo::DumbbellOptions o = config_.dumbbell;
      o.sw = sw;
      o.host = hc;
      auto built = topo::MakeDumbbell(simulator_.get(), o);
      topology_ = std::move(built.topo);
      hosts_ = built.left_hosts;
      hosts_.insert(hosts_.end(), built.right_hosts.begin(),
                    built.right_hosts.end());
      break;
    }
  }
}

Experiment::Experiment(const ExperimentConfig& config) : config_(config) {
  simulator_ = std::make_unique<sim::Simulator>();
  BuildTopology();
  base_rtt_ = config_.base_rtt_override > 0 ? config_.base_rtt_override
                                            : topology_->MaxBaseRtt();
  if (cc::SchemeUsesRcp(config_.cc.scheme)) {
    for (uint32_t s : topology_->switches()) {
      topology_->switch_node(s).set_rcp_rtt(base_rtt_);
    }
  }

  fct_ = std::make_unique<stats::FctRecorder>(
      config_.trace == "fbhadoop" ? stats::FctRecorder::FbHadoopBins()
                                  : stats::FctRecorder::WebSearchBins());

  // Flow completion wiring: every host reports into the shared recorder.
  for (uint32_t h : hosts_) {
    topology_->host(h).set_flow_done_callback(
        [this](const host::Flow& f, sim::TimePs now) {
          ++flows_completed_;
          const auto& s = f.spec();
          fct_->Record(s.size_bytes, now - s.start_time,
                       topology_->IdealFct(s.src, s.dst, s.size_bytes));
          if (s.size_bytes <= config_.short_flow_bytes) {
            short_fct_us_.Add(sim::ToUs(now - s.start_time));
          }
        });
  }
  InstallMonitors();

  workload::FlowSink sink = [this](uint32_t src, uint32_t dst, uint64_t size,
                                   sim::TimePs start) {
    AddFlow(src, dst, size, start);
  };
  if (config_.load > 0) {
    workload::PoissonOptions po;
    po.load = config_.load;
    // Per-host capacity counts all NIC ports (testbed hosts are dual-homed).
    const host::HostNode& h0 = topology_->host(hosts_.front());
    po.host_bps = 0;
    for (int p = 0; p < h0.num_ports(); ++p) {
      po.host_bps += h0.port(p).bandwidth_bps();
    }
    po.start = 0;
    po.end = config_.duration;
    po.max_flows = config_.max_flows;
    po.seed = config_.seed;
    poisson_ = std::make_unique<workload::PoissonGenerator>(
        simulator_.get(), hosts_,
        config_.trace == "fbhadoop" ? workload::SizeCdf::FbHadoop()
                                    : workload::SizeCdf::WebSearch(),
        po, sink);
  }
  if (config_.incast) {
    workload::IncastOptions io = config_.incast_opts;
    io.end = io.end == 0 ? config_.duration : io.end;
    io.seed = config_.seed * 31 + 7;
    incast_ = std::make_unique<workload::IncastGenerator>(simulator_.get(),
                                                          hosts_, io, sink);
  }
}

Experiment::~Experiment() = default;

void Experiment::InstallMonitors() {
  pfc_monitor_.AttachTo(*topology_);
  queue_monitor_ = std::make_unique<stats::QueueMonitor>(
      simulator_.get(), topology_.get(), config_.queue_sample_interval);
  total_ports_ = 0;
  for (uint32_t id = 0; id < topology_->num_nodes(); ++id) {
    total_ports_ += topology_->node(id).num_ports();
  }
}

host::Flow* Experiment::AddFlow(uint32_t src, uint32_t dst, uint64_t bytes,
                                sim::TimePs start) {
  if (src == dst) throw std::invalid_argument("flow src == dst");
  host::HostNode& h = topology_->host(src);
  host::FlowSpec spec;
  spec.id = next_flow_id_++;
  spec.src = src;
  spec.dst = dst;
  spec.size_bytes = bytes;
  spec.start_time = start;

  cc::CcContext ctx;
  ctx.nic_bps = h.port(0).bandwidth_bps();
  ctx.base_rtt = base_rtt_;
  ctx.mtu_bytes = h.config().mtu_bytes;
  ctx.simulator = simulator_.get();

  auto flow = std::make_unique<host::Flow>(spec, cc::MakeCc(config_.cc, ctx),
                                           config_.recovery);
  host::Flow* raw = flow.get();
  h.AddFlow(std::move(flow));
  flow_ptrs_.push_back(raw);
  return raw;
}

host::Flow* Experiment::AddReadFlow(uint32_t requester, uint32_t responder,
                                    uint64_t bytes, sim::TimePs start) {
  if (requester == responder) {
    throw std::invalid_argument("read requester == responder");
  }
  host::HostNode& resp = topology_->host(responder);
  host::FlowSpec spec;
  spec.id = next_flow_id_++;
  spec.src = responder;  // data flows responder -> requester
  spec.dst = requester;
  spec.size_bytes = bytes;
  spec.start_time = start;

  cc::CcContext ctx;
  ctx.nic_bps = resp.port(0).bandwidth_bps();
  ctx.base_rtt = base_rtt_;
  ctx.mtu_bytes = resp.config().mtu_bytes;
  ctx.simulator = simulator_.get();

  auto flow = std::make_unique<host::Flow>(spec, cc::MakeCc(config_.cc, ctx),
                                           config_.recovery);
  host::Flow* raw = flow.get();
  resp.AddPendingFlow(std::move(flow));
  flow_ptrs_.push_back(raw);

  const uint64_t id = spec.id;
  simulator_->ScheduleAt(start, [this, requester, responder, id]() {
    topology_->host(requester).SendReadRequest(id, responder);
  });
  return raw;
}

void Experiment::RunUntil(sim::TimePs until) {
  if (!queue_monitor_started_) {
    queue_monitor_started_ = true;
    queue_monitor_->Start(config_.duration);
  }
  simulator_->Run(until);
}

ExperimentResult Experiment::Run() {
  if (poisson_ != nullptr) poisson_->Start();
  if (incast_ != nullptr) incast_->Start();
  if (!queue_monitor_started_) {
    queue_monitor_started_ = true;
    queue_monitor_->Start(config_.duration);
  }

  simulator_->Run(config_.duration);
  // Drain: let in-flight flows finish so their FCTs are recorded.
  const sim::TimePs cap =
      config_.duration +
      static_cast<sim::TimePs>(config_.drain_factor *
                               static_cast<double>(config_.duration));
  while (flows_completed_ < flow_ptrs_.size() && simulator_->now() < cap &&
         !simulator_->budget_exhausted()) {
    // A frozen clock under an exhausted event budget would spin here forever.
    simulator_->Run(simulator_->now() + sim::Ms(1));
  }
  return Collect();
}

ExperimentResult Experiment::Collect() {
  ExperimentResult r;
  const sim::TimePs now = simulator_->now();
  pfc_monitor_.Finish(now);

  r.fct = std::move(fct_);
  r.queue_dist = queue_monitor_->distribution();
  r.max_queue_bytes = queue_monitor_->max_seen_bytes();
  r.pause_time_fraction = pfc_monitor_.PauseTimeFraction(now, total_ports_);
  r.pause_events = pfc_monitor_.pause_count();
  r.pause_durations_us = pfc_monitor_.DurationDistributionUs();
  r.short_fct_us = short_fct_us_;
  for (uint32_t s : topology_->switches()) {
    const net::SwitchNode& sw = topology_->switch_node(s);
    r.dropped_packets += sw.dropped_packets();
    r.dropped_bytes += sw.dropped_bytes();
    for (int d = 0; d < check::kNumDropReasons; ++d) {
      r.dropped_by_reason[d] +=
          sw.dropped_by_reason(static_cast<check::DropReason>(d));
    }
    r.packets_forwarded += sw.forwarded_packets();
  }
  const uint32_t num_nodes = static_cast<uint32_t>(topology_->num_nodes());
  for (uint32_t id = 0; id < num_nodes; ++id) {
    const net::Node& node = topology_->node(id);
    for (int p = 0; p < node.num_ports(); ++p) {
      r.train_aborts += node.port(p).train_aborts();
    }
  }
  r.flows_created = flow_ptrs_.size();
  r.flows_completed = flows_completed_;
  r.sim_time = now;
  r.events_executed = simulator_->events_executed();
  r.base_rtt = base_rtt_;

  stats::TraceHash th;
  for (const host::Flow* f : flow_ptrs_) {
    const host::FlowSpec& s = f->spec();
    th.AddFlow(s.id, s.src, s.dst, s.size_bytes, s.start_time, f->finish_time,
               f->done);
  }
  r.trace_hash = th.digest();

  // The recorder moved out; re-create an empty one in case Collect is called
  // again (idempotence for tests).
  fct_ = std::make_unique<stats::FctRecorder>(
      config_.trace == "fbhadoop" ? stats::FctRecorder::FbHadoopBins()
                                  : stats::FctRecorder::WebSearchBins());
  return r;
}

std::string ExperimentResult::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "flows %llu/%llu  q50 %.1fKB q95 %.1fKB q99 %.1fKB qmax %.1fKB  "
      "pfc %.4f%% (%zu events)  drops %llu  simtime %.2fms  events %llu",
      static_cast<unsigned long long>(flows_completed),
      static_cast<unsigned long long>(flows_created),
      queue_dist.Percentile(50) / 1e3, queue_dist.Percentile(95) / 1e3,
      queue_dist.Percentile(99) / 1e3,
      static_cast<double>(max_queue_bytes) / 1e3, pause_time_fraction * 100,
      pause_events, static_cast<unsigned long long>(dropped_packets),
      sim::ToMs(sim_time), static_cast<unsigned long long>(events_executed));
  return buf;
}

}  // namespace hpcc::runner
