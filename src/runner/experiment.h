// Experiment harness: wires a topology, a CC scheme, workload generators and
// monitors into one runnable unit. Every bench binary (one per paper figure)
// and example builds on this.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cc/factory.h"
#include "host/flow.h"
#include "net/switch_node.h"
#include "sim/simulator.h"
#include "stats/fct_recorder.h"
#include "stats/pfc_monitor.h"
#include "stats/queue_monitor.h"
#include "stats/trace_hash.h"
#include "topo/fattree.h"
#include "topo/simple.h"
#include "topo/testbed.h"
#include "topo/topology.h"
#include "workload/flow_gen.h"

namespace hpcc::runner {

enum class TopologyKind { kFatTree, kTestbed, kStar, kDumbbell };

struct ExperimentConfig {
  TopologyKind topology = TopologyKind::kFatTree;
  topo::FatTreeOptions fattree;
  topo::TestbedOptions testbed;
  topo::StarOptions star;
  topo::DumbbellOptions dumbbell;

  cc::CcConfig cc;
  host::RecoveryMode recovery = host::RecoveryMode::kGoBackN;
  bool pfc_enabled = true;
  // Transmission-train forwarding fast path (net/port.h). Semantically
  // equivalent to the per-packet reference engine — the fastpath determinism
  // suite pins equal TraceHash and byte-identical CSVs — but executes far
  // fewer simulator events. Off = the reference engine, for A/B runs.
  bool fast_path = true;
  // INT sampling period (1 = every data packet, the paper's default).
  int int_sample_every = 1;
  // Optional WRED override (Fig. 3's threshold sweep); by default the scheme
  // picks its own (DCQCN/DCTCP defaults, disabled for HPCC/TIMELY).
  std::optional<net::RedConfig> red_override;

  // Background Poisson workload (disabled when load <= 0).
  double load = 0.0;
  std::string trace = "websearch";  // "websearch" | "fbhadoop"
  uint64_t max_flows = 0;
  // Incast add-on (Fig. 11a's "30% + incast").
  bool incast = false;
  workload::IncastOptions incast_opts;

  sim::TimePs duration = sim::Ms(10);  // workload generation horizon
  // After `duration`, keep simulating until all flows finish, capped at
  // drain_factor * duration extra.
  double drain_factor = 4.0;
  uint64_t seed = 1;

  sim::TimePs queue_sample_interval = sim::Us(10);
  sim::TimePs base_rtt_override = 0;  // 0 = measured MaxBaseRtt
  // Flows at or below this size feed the short-flow latency distribution
  // (the "95pct-latency" series of Fig. 2b/11b/11d).
  uint64_t short_flow_bytes = 3'000;
};

struct ExperimentResult {
  std::unique_ptr<stats::FctRecorder> fct;
  stats::PercentileTracker queue_dist;   // bytes, sampled over (port, time)
  int64_t max_queue_bytes = 0;
  double pause_time_fraction = 0;        // of total port-time
  size_t pause_events = 0;
  stats::PercentileTracker pause_durations_us;
  stats::PercentileTracker short_fct_us;  // FCT of short flows, microseconds
  uint64_t dropped_packets = 0;
  // Per-check::DropReason breakdown; sums to dropped_packets.
  uint64_t dropped_by_reason[check::kNumDropReasons] = {};
  uint64_t dropped_bytes = 0;
  // Fast-path train rewinds across all ports (engine-dependent — zero on
  // the reference engine; telemetry quarantines it in "profile").
  uint64_t train_aborts = 0;
  // Packets the switches forwarded (admitted and enqueued toward an egress).
  // Unlike events_executed this is independent of the transmit engine, so it
  // is the work unit the macro benchmarks and scenario CSVs report.
  uint64_t packets_forwarded = 0;
  uint64_t flows_created = 0;
  uint64_t flows_completed = 0;
  sim::TimePs sim_time = 0;
  uint64_t events_executed = 0;
  sim::TimePs base_rtt = 0;
  // Order-independent digest of every flow's (id, endpoints, size, start,
  // finish, done) tuple — see stats/trace_hash.h. Two runs match iff their
  // hashes match; the determinism tests compare it across --jobs values.
  uint64_t trace_hash = 0;

  std::string Summary() const;
};

class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config);
  ~Experiment();

  // Manual flow injection (micro-benchmarks); returns the live Flow.
  host::Flow* AddFlow(uint32_t src, uint32_t dst, uint64_t bytes,
                      sim::TimePs start);
  // RDMA READ (§4.2): `requester` pulls `bytes` from `responder`. The data
  // flow runs responder -> requester; its FCT starts at the request post
  // time, so it includes the request's propagation.
  host::Flow* AddReadFlow(uint32_t requester, uint32_t responder,
                          uint64_t bytes, sim::TimePs start);

  // Runs generators + simulation, drains, and collects metrics.
  ExperimentResult Run();
  // Lower-level: run the simulator to `until` without draining (micro
  // benches drive this directly after AddFlow).
  void RunUntil(sim::TimePs until);
  ExperimentResult Collect();

  sim::Simulator& simulator() { return *simulator_; }
  topo::Topology& topology() { return *topology_; }
  const ExperimentConfig& config() const { return config_; }
  const std::vector<uint32_t>& hosts() const { return hosts_; }
  sim::TimePs base_rtt() const { return base_rtt_; }
  const std::vector<host::Flow*>& flows() const { return flow_ptrs_; }
  uint64_t flows_completed() const { return flows_completed_; }
  stats::PfcMonitor& pfc_monitor() { return pfc_monitor_; }

 private:
  void BuildTopology();
  void InstallMonitors();
  net::SwitchConfig MakeSwitchConfig() const;

  ExperimentConfig config_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<topo::Topology> topology_;
  std::vector<uint32_t> hosts_;
  sim::TimePs base_rtt_ = 0;

  uint64_t next_flow_id_ = 1;
  std::vector<host::Flow*> flow_ptrs_;
  uint64_t flows_completed_ = 0;

  std::unique_ptr<stats::FctRecorder> fct_;
  stats::PercentileTracker short_fct_us_;
  std::unique_ptr<stats::QueueMonitor> queue_monitor_;
  bool queue_monitor_started_ = false;
  stats::PfcMonitor pfc_monitor_;
  std::unique_ptr<workload::PoissonGenerator> poisson_;
  std::unique_ptr<workload::IncastGenerator> incast_;
  int total_ports_ = 0;
};

}  // namespace hpcc::runner
