// Experiment harness: wires a topology, a CC scheme, workload generators and
// monitors into one runnable unit. Every bench binary (one per paper figure)
// and example builds on this.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analytic/fluid_region.h"
#include "cc/factory.h"
#include "host/flow.h"
#include "net/handoff.h"
#include "net/switch_node.h"
#include "sim/simulator.h"
#include "stats/fct_recorder.h"
#include "stats/pfc_monitor.h"
#include "stats/queue_monitor.h"
#include "stats/trace_hash.h"
#include "topo/fattree.h"
#include "topo/partition.h"
#include "topo/simple.h"
#include "topo/testbed.h"
#include "topo/topology.h"
#include "workload/flow_gen.h"
#include "workload/trace_replay.h"
#include "workload/traffic_source.h"

namespace hpcc::runner {

enum class TopologyKind { kFatTree, kTestbed, kStar, kDumbbell };

struct ExperimentConfig {
  TopologyKind topology = TopologyKind::kFatTree;
  topo::FatTreeOptions fattree;
  topo::TestbedOptions testbed;
  topo::StarOptions star;
  topo::DumbbellOptions dumbbell;

  cc::CcConfig cc;
  host::RecoveryMode recovery = host::RecoveryMode::kGoBackN;
  bool pfc_enabled = true;
  // Transmission-train forwarding fast path (net/port.h). Semantically
  // equivalent to the per-packet reference engine — the fastpath determinism
  // suite pins equal TraceHash and byte-identical CSVs — but executes far
  // fewer simulator events. Off = the reference engine, for A/B runs.
  bool fast_path = true;
  // INT sampling period (1 = every data packet, the paper's default).
  int int_sample_every = 1;
  // Optional WRED override (Fig. 3's threshold sweep); by default the scheme
  // picks its own (DCQCN/DCTCP defaults, disabled for HPCC/TIMELY).
  std::optional<net::RedConfig> red_override;

  // Background Poisson workload (disabled when load <= 0).
  double load = 0.0;
  std::string trace = "websearch";  // "websearch" | "fbhadoop"
  uint64_t max_flows = 0;
  // Incast add-on (Fig. 11a's "30% + incast").
  bool incast = false;
  workload::IncastOptions incast_opts;
  // Transport engine for background flows — the Poisson generator, trace
  // replay, and scenario load phases (incast bursts carry their own class in
  // incast_opts.flow_class). kFluid requires hybrid.enabled.
  workload::FlowClass flow_class = workload::FlowClass::kPacket;
  // Flow-trace replay source (workload/trace_replay.h); empty = none.
  std::string trace_file;
  // Hybrid fluid/packet co-simulation (analytic/fluid_region.h): fluid-class
  // flows run as per-RTT window trajectories coupled into the shared ports'
  // INT stamps. Requires shards == 1 and an INT-based CC scheme.
  struct HybridConfig {
    bool enabled = false;
    sim::TimePs tick = 0;  // fluid round period; 0 = one MaxBaseRtt
  };
  HybridConfig hybrid;

  sim::TimePs duration = sim::Ms(10);  // workload generation horizon
  // After `duration`, keep simulating until all flows finish, capped at
  // drain_factor * duration extra.
  double drain_factor = 4.0;
  uint64_t seed = 1;
  // Intra-run parallelism: partition the fabric into this many lanes
  // (logical processes), each with its own event arena, synchronized
  // conservatively on cut-link propagation delay. Results are byte-identical
  // to shards=1 (the shard-equivalence suite pins TraceHash / CSV /
  // manifest equality); >1 requires every cut link to have positive delay.
  int shards = 1;

  // Warm-start sweeps: an immutable fabric snapshot exported by an
  // identically configured topology build (topo/snapshot.h). Switches adopt
  // its routing tables copy-on-write and Finalize skips the route BFS, so a
  // sweep pays the O(fabric) route build once instead of once per job.
  // Null = cold build. Never affects results — only setup cost.
  std::shared_ptr<const topo::FabricSnapshot> fabric_snapshot;

  sim::TimePs queue_sample_interval = sim::Us(10);
  sim::TimePs base_rtt_override = 0;  // 0 = measured MaxBaseRtt
  // Flows at or below this size feed the short-flow latency distribution
  // (the "95pct-latency" series of Fig. 2b/11b/11d).
  uint64_t short_flow_bytes = 3'000;
};

struct ExperimentResult {
  std::unique_ptr<stats::FctRecorder> fct;
  stats::PercentileTracker queue_dist;   // bytes, sampled over (port, time)
  int64_t max_queue_bytes = 0;
  double pause_time_fraction = 0;        // of total port-time
  size_t pause_events = 0;
  stats::PercentileTracker pause_durations_us;
  stats::PercentileTracker short_fct_us;  // FCT of short flows, microseconds
  uint64_t dropped_packets = 0;
  // Per-check::DropReason breakdown; sums to dropped_packets.
  uint64_t dropped_by_reason[check::kNumDropReasons] = {};
  uint64_t dropped_bytes = 0;
  // Fast-path train rewinds across all ports (engine-dependent — zero on
  // the reference engine; telemetry quarantines it in "profile").
  uint64_t train_aborts = 0;
  // Packets the switches forwarded (admitted and enqueued toward an egress).
  // Unlike events_executed this is independent of the transmit engine, so it
  // is the work unit the macro benchmarks and scenario CSVs report.
  uint64_t packets_forwarded = 0;
  uint64_t flows_created = 0;
  uint64_t flows_completed = 0;
  // Flows abandoned by the transport give-up (HostConfig::max_retx
  // consecutive timeouts without forward progress). Disjoint from
  // flows_completed: created = completed + failed + still-running.
  uint64_t flows_failed = 0;
  // Real RTO expiries summed over every flow (see Flow::retx_timeouts).
  uint64_t retx_timeouts = 0;
  sim::TimePs sim_time = 0;
  uint64_t events_executed = 0;
  sim::TimePs base_rtt = 0;
  // Hybrid fluid-engine accounting (all zero on non-hybrid runs). Fluid
  // flows are additionally folded into flows_created / flows_completed and
  // the trace hash, so those totals stay engine-inclusive.
  uint64_t fluid_flows_created = 0;
  uint64_t fluid_flows_completed = 0;
  uint64_t fluid_ticks = 0;
  uint64_t fluid_coupled_links = 0;
  uint64_t fluid_delivered_bytes = 0;
  int64_t fluid_peak_queue_bytes = 0;
  // Order-independent digest of every flow's (id, endpoints, size, start,
  // finish, done) tuple — see stats/trace_hash.h. Two runs match iff their
  // hashes match; the determinism tests compare it across --jobs values.
  uint64_t trace_hash = 0;

  std::string Summary() const;
};

class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config);
  ~Experiment();

  // Manual flow injection (micro-benchmarks); returns the live Flow. On a
  // sharded experiment this replicates the flow-id draw across every lane
  // (legal before Run only).
  host::Flow* AddFlow(uint32_t src, uint32_t dst, uint64_t bytes,
                      sim::TimePs start);
  // Lane-replicated flow injection: ALWAYS consumes lane `lane`'s next flow
  // id (so ids match shards=1 creation order), but creates a live flow only
  // when the lane owns `src` — returns nullptr otherwise. Every lane's
  // replicated generator calls this with identical arguments in identical
  // order. Equal to AddFlow when shards == 1.
  host::Flow* AddFlowOnLane(int lane, uint32_t src, uint32_t dst,
                            uint64_t bytes, sim::TimePs start);
  // The engine-dispatch seam every TrafficSource sink funnels through:
  // packet-class flows go to AddFlowOnLane (lane-replicated id draw), fluid
  // ones to the FluidRegion (hybrid runs are single-lane, so the id draw is
  // the plain counter). Both consume the same flow-id space, so packet and
  // fluid flows interleave in one creation order.
  void AddWorkloadFlow(workload::FlowClass flow_class, int lane, uint32_t src,
                       uint32_t dst, uint64_t bytes, sim::TimePs start);
  // RDMA READ (§4.2): `requester` pulls `bytes` from `responder`. The data
  // flow runs responder -> requester; its FCT starts at the request post
  // time, so it includes the request's propagation. Single-sim only.
  host::Flow* AddReadFlow(uint32_t requester, uint32_t responder,
                          uint64_t bytes, sim::TimePs start);

  // Schedules a link_down/link_up script event. Single-sim: one ScheduleAt
  // driving Topology::SetLinkUp. Sharded: installs a no-op barrier marker in
  // every lane (consuming exactly one tie-break seq, like the single-sim
  // event) and records the event for the coordinator, which applies it
  // between rounds while all lanes are blocked.
  void InstallLinkEvent(sim::TimePs at, size_t link, bool up);

  // Runs generators + simulation, drains, and collects metrics.
  ExperimentResult Run();
  // The two halves of a single-lane Run, split so the warm-start runner can
  // pause between them: StartWorkload starts the generators and the queue
  // monitor (drawing the same schedule seqs a plain Run would); FinishRun
  // executes to the workload horizon, drains, and collects. Run ==
  // StartWorkload + FinishRun when shards == 1.
  void StartWorkload();
  ExperimentResult FinishRun();
  // Lower-level: run the simulator to `until` without draining (micro
  // benches drive this directly after AddFlow).
  void RunUntil(sim::TimePs until);
  ExperimentResult Collect();

  // --- Warm checkpoint/restore (warm-start sweeps) -----------------------
  // A warm checkpoint captures the full mutable simulation state at a
  // *quiescent* instant T: every flow complete, every queue empty, no pause
  // open, and no pending event beyond the self-schedules of the generators,
  // the queue-monitor tick, and `external_pending` caller-owned events
  // (link-script events and scenario-installed generators, all at >= T).
  // Restoring into a freshly built, identically configured experiment then
  // reproduces the checkpointing run's state exactly — same RNG engines,
  // counters, pending (time, seq) pairs — so the continued run is
  // byte-identical to one that simulated [0, T) itself. Anything pending
  // that this accounting can't explain (a CC timer, an RTO) makes the
  // instant non-quiescent and the caller falls back to a cold run.

  // One completed pre-checkpoint flow, carried for TraceHash / flow-count
  // folding (the live Flow objects stay with the checkpointing experiment).
  struct WarmFlowRecord {
    uint64_t id = 0;
    uint32_t src = 0;
    uint32_t dst = 0;
    uint64_t size_bytes = 0;
    sim::TimePs start = 0;
    sim::TimePs finish = 0;
    bool done = false;
  };
  struct WarmState {
    sim::TimePs now = 0;             // checkpoint time T
    uint64_t next_schedule_seq = 0;  // simulator tie-break counter at T
    uint64_t events_executed = 0;
    uint64_t next_flow_id = 1;
    std::vector<WarmFlowRecord> flows;
    std::unique_ptr<stats::FctRecorder> fct;
    stats::PercentileTracker short_fct_us;
    stats::QueueMonitor::WarmState queue;
    stats::PfcMonitor::WarmState pfc;
    std::vector<net::SwitchNode::WarmState> switches;  // switches() order
    std::vector<net::Port::WarmCounters> ports;  // node asc, then port asc
    std::vector<host::HostNode::WarmCounters> hosts;   // hosts() order
    // One slot per workload TrafficSource, install order (Poisson, trace
    // replay, incast — whichever the config enables). Engaged iff the
    // source was captured (its first activity predates T); a source whose
    // schedule starts at or beyond T is left alone on restore — its own
    // install-time schedule already matches. The vector size doubles as the
    // structural echo restore validation checks.
    std::vector<std::optional<workload::GenWarmState>> sources;
  };

  // True when the current instant satisfies the quiescence contract above.
  bool QuiescentForWarmCheckpoint(size_t external_pending);
  std::unique_ptr<WarmState> CaptureWarmState();
  // True when `w` structurally matches this experiment (same generator
  // presence, node/port/host counts, non-regressed clock). Mutates nothing —
  // callers that restore external state of their own (scenario-installed
  // generators) check this before touching anything.
  bool ValidateWarmState(const WarmState& w);
  // Validates, then restores every captured piece and jumps the simulator
  // clock/counters to T. Returns false (mutating nothing) on a structural
  // mismatch — the caller runs cold. Call after StartWorkload, before any
  // Run: the pre-T self-schedules this experiment drew are cancelled and
  // replaced by the checkpoint's captured (time, seq) events.
  bool RestoreWarmState(const WarmState& w);

  sim::Simulator& simulator() { return *simulator_; }
  topo::Topology& topology() { return *topology_; }
  const ExperimentConfig& config() const { return config_; }
  const std::vector<uint32_t>& hosts() const { return hosts_; }
  sim::TimePs base_rtt() const { return base_rtt_; }
  const std::vector<host::Flow*>& flows() const { return flow_ptrs_; }
  uint64_t flows_completed() const { return flows_completed_; }
  // The hybrid fluid engine (null unless config.hybrid.enabled).
  analytic::FluidRegion* fluid_region() { return fluid_.get(); }
  // Every live flow across all lanes (lane order, creation order within a
  // lane; equals flows() when shards == 1). For post-run checkers like the
  // no-progress monitor.
  std::vector<const host::Flow*> AllFlows() const;
  stats::PfcMonitor& pfc_monitor() { return pfc_monitor_; }

  // Sharded-run surface. With shards == 1 there is exactly one lane (0),
  // backed by simulator() and owning every node.
  int shards() const { return config_.shards; }
  sim::Simulator& lane_simulator(int lane) {
    return lanes_.empty() ? *simulator_ : *lanes_[lane]->sim;
  }
  // Node ids owned by `lane`, ascending.
  const std::vector<uint32_t>& lane_nodes(int lane) const {
    return lane_node_ids_[lane];
  }
  const topo::Partition& partition() const { return partition_; }
  // Event-storm watchdog, fanned out to every lane simulator.
  void set_event_budget(uint64_t max_total_events);
  bool budget_exhausted() const;
  // Wall-clock watchdog (per-point sweep deadlines), fanned out to every
  // lane simulator. Affects only how far the run gets, never the event order
  // up to the stop — see sim::Simulator::set_wall_deadline.
  void set_wall_deadline(std::chrono::steady_clock::time_point deadline);
  bool deadline_exceeded() const;

 private:
  // One logical process of a sharded run: an event arena plus shard-local
  // replicas of every piece of per-run mutable state (stats, monitors,
  // generators, flow-id counter). Heap-allocated because monitors hand out
  // self-referential observers.
  struct Lane {
    sim::Simulator* sim = nullptr;  // lane 0 aliases Experiment::simulator_
    std::unique_ptr<sim::Simulator> owned_sim;  // lanes > 0
    // One inbound channel per incoming direction of a cut link.
    struct Inbound {
      std::unique_ptr<net::HandoffChannel> channel;
      net::Node* peer = nullptr;  // consumer-side node
      int peer_port = 0;
      uint32_t key = 0;  // producer link uid: (from_node << 8) | from_port
    };
    std::vector<Inbound> inbound;
    // Barrier markers, one per installed link-script event (install order).
    struct Mark {
      sim::TimePs at = 0;
      uint64_t seq = 0;
    };
    std::vector<Mark> marks;
    std::unique_ptr<stats::FctRecorder> fct;
    stats::PercentileTracker short_fct_us;
    std::unique_ptr<stats::QueueMonitor> queue_monitor;
    std::unique_ptr<stats::PfcMonitor> pfc;
    // Lane-replicated workload sources, same install order as the
    // single-sim sources_ (Poisson, trace replay, incast).
    std::vector<std::unique_ptr<workload::TrafficSource>> sources;
    uint64_t next_flow_id = 1;
    std::vector<host::Flow*> flow_ptrs;  // lane-owned flows, creation order
    uint64_t flows_completed = 0;
    uint64_t flows_failed = 0;
  };
  // One recorded link-script event (coordinator-applied at barriers).
  struct ScriptEvent {
    sim::TimePs at = 0;
    size_t link = 0;
    bool up = false;
  };

  void BuildTopology();
  void InstallMonitors();
  void SetupShards();
  // Builds the configured TrafficSources (install order: Poisson, trace
  // replay, incast) emitting into lane `lane` of `sim` — the one definition
  // the single-sim constructor and every replicated shard lane share.
  void MakeSources(sim::Simulator* sim, int lane,
                   std::vector<std::unique_ptr<workload::TrafficSource>>* out);
  // Admits a fluid-class flow (consumes the next flow id).
  void AddFluidFlow(uint32_t src, uint32_t dst, uint64_t bytes,
                    sim::TimePs start);
  ExperimentResult RunSharded();
  ExperimentResult CollectSharded();
  // Reschedules every pending inbound record with arrival <= horizon onto
  // the lane's own simulator, under the producer's arrival tie-break key.
  void DrainInbound(Lane& lane, sim::TimePs horizon);
  net::SwitchConfig MakeSwitchConfig() const;
  std::unique_ptr<stats::FctRecorder> MakeFctRecorder() const;
  static void SortResultDistributions(ExperimentResult& r);

  ExperimentConfig config_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<topo::Topology> topology_;
  std::vector<uint32_t> hosts_;
  sim::TimePs base_rtt_ = 0;

  uint64_t next_flow_id_ = 1;
  std::vector<host::Flow*> flow_ptrs_;
  uint64_t flows_completed_ = 0;
  uint64_t flows_failed_ = 0;
  // Pre-checkpoint flows adopted by RestoreWarmState; Collect folds them
  // into flows_created/completed and the trace hash. Empty on cold runs.
  std::vector<WarmFlowRecord> warm_flows_;

  std::unique_ptr<stats::FctRecorder> fct_;
  stats::PercentileTracker short_fct_us_;
  std::unique_ptr<stats::QueueMonitor> queue_monitor_;
  bool queue_monitor_started_ = false;
  stats::PfcMonitor pfc_monitor_;
  // Workload sources, install order (Poisson, trace replay, incast).
  std::vector<std::unique_ptr<workload::TrafficSource>> sources_;
  // Parsed once, shared across replicated lane sources.
  std::shared_ptr<const std::vector<workload::TraceRecord>> trace_records_;
  std::unique_ptr<analytic::FluidRegion> fluid_;
  int total_ports_ = 0;

  topo::Partition partition_;
  std::vector<std::unique_ptr<Lane>> lanes_;          // empty when shards == 1
  std::vector<std::vector<uint32_t>> lane_node_ids_;  // sized shards
  std::vector<ScriptEvent> script_;                   // install order
};

}  // namespace hpcc::runner
