// Deterministic random number generation for workloads and simulations.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace hpcc::sim {

// Thin wrapper around mt19937_64 with the draw helpers the workload and
// topology code needs. Every experiment owns one Rng seeded explicitly, so
// runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 1) : engine_(seed) {}

  // Uniform in [0, 1).
  double Uniform();
  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Exponential with the given mean (mean > 0).
  double Exponential(double mean);
  // Pick an index in [0, n) uniformly.
  size_t Index(size_t n);
  // Sample `k` distinct indices from [0, n), k <= n.
  std::vector<size_t> SampleDistinct(size_t k, size_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hpcc::sim
