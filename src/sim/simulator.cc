#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <memory>
#include <utility>

namespace hpcc::sim {

Simulator::Simulator()
    : buckets_(kBucketCount), occupied_(kBucketCount / 64, 0) {}

void Simulator::HeapPush(std::vector<HeapEntry>& h, const HeapEntry& e) {
  size_t i = h.size();
  h.push_back(e);
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (!Earlier(e, h[parent])) break;
    h[i] = h[parent];
    i = parent;
  }
  h[i] = e;
}

void Simulator::HeapSiftDown(std::vector<HeapEntry>& h, size_t start) {
  const size_t n = h.size();
  const HeapEntry x = h[start];
  const HeapEntry* d = h.data();
  size_t i = start;
  for (;;) {
    const size_t first_child = i * 4 + 1;
    if (first_child + 4 <= n) {
      // Full node: select the earliest child with conditional moves.
      size_t best = first_child;
      best = Earlier(d[first_child + 1], d[best]) ? first_child + 1 : best;
      best = Earlier(d[first_child + 2], d[best]) ? first_child + 2 : best;
      best = Earlier(d[first_child + 3], d[best]) ? first_child + 3 : best;
      if (!Earlier(d[best], x)) break;
      h[i] = d[best];
      i = best;
    } else {
      if (first_child >= n) break;
      size_t best = first_child;
      for (size_t c = first_child + 1; c < n; ++c) {
        best = Earlier(d[c], d[best]) ? c : best;
      }
      if (!Earlier(d[best], x)) break;
      h[i] = d[best];
      i = best;
    }
  }
  h[i] = x;
}

void Simulator::HeapPopMin(std::vector<HeapEntry>& h) {
  h[0] = h.back();
  h.pop_back();
  if (!h.empty()) HeapSiftDown(h, 0);
}

void Simulator::Heapify(std::vector<HeapEntry>& h) {
  if (h.size() < 2) return;
  for (size_t i = (h.size() - 2) / 4 + 1; i-- > 0;) HeapSiftDown(h, i);
}

void Simulator::InsertRing(const HeapEntry& e) {
  const size_t b =
      static_cast<size_t>(e.at >> kBucketWidthBits) & (kBucketCount - 1);
  Bucket& bucket = buckets_[b];
  if (bucket.heapified) {
    HeapPush(bucket.entries, e);
  } else {
    bucket.entries.push_back(e);
  }
  occupied_[b / 64] |= uint64_t{1} << (b % 64);
}

size_t Simulator::NextOccupied(size_t start) const {
  const size_t words = occupied_.size();
  size_t w = start / 64;
  uint64_t word = occupied_[w] & (~uint64_t{0} << (start % 64));
  for (size_t n = 0; n <= words; ++n) {
    if (word != 0) {
      return (w * 64 + static_cast<size_t>(std::countr_zero(word))) &
             (kBucketCount - 1);
    }
    w = (w + 1) % words;
    word = occupied_[w];
  }
  return kBucketCount;
}

EventId Simulator::ScheduleKeyed(TimePs at, uint64_t seq, Callback cb) {
  assert(at >= now_);
  uint32_t slot_index;
  if (free_head_ != kNoFreeSlot) {
    slot_index = free_head_;
    free_head_ = slots_[slot_index].next_free;
  } else {
    slot_index = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[slot_index];
  ++slot.gen;  // even -> odd: live
  slot.cb = std::move(cb);
  const HeapEntry e{at, seq, slot_index, slot.gen};
  if ((at >> kBucketWidthBits) - (now_ >> kBucketWidthBits) <
      static_cast<TimePs>(kBucketCount)) {
    InsertRing(e);
  } else {
    HeapPush(far_heap_, e);
  }
  ++live_events_;
  return MakeEventId(slot_index, slot.gen);
}

EventId Simulator::ScheduleAt(TimePs at, Callback cb) {
  return ScheduleKeyed(at, kOtherSeqBase | next_seq_++, std::move(cb));
}

EventId Simulator::ScheduleIn(TimePs delay, Callback cb) {
  assert(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(cb));
}

EventId Simulator::ScheduleArrival(TimePs at, TimePs emission_time,
                                   uint32_t link_uid, Callback cb) {
  const TimePs em = emission_time < 0                ? 0
                    : emission_time > kMaxKeyedEmission ? kMaxKeyedEmission
                                                        : emission_time;
  const uint64_t seq =
      kArrivalSeqBase | (static_cast<uint64_t>(em) << kArrivalUidBits) |
      (link_uid & ((uint32_t{1} << kArrivalUidBits) - 1));
  return ScheduleKeyed(at, seq, std::move(cb));
}

EventId Simulator::ScheduleBoundary(TimePs at, uint32_t link_uid,
                                    Callback cb) {
  return ScheduleKeyed(at, BoundarySeq(link_uid), std::move(cb));
}

namespace {
// Self-rescheduling series state for SchedulePeriodic. Heap-allocated and
// shared by every occurrence's closure; the series dies when the callback
// returns false (the last shared_ptr drops with the final closure).
struct PeriodicSeries {
  Simulator* sim = nullptr;
  TimePs period = 0;
  std::function<bool()> tick;
};

void RunPeriodicOnce(const std::shared_ptr<PeriodicSeries>& series) {
  if (!series->tick()) return;
  series->sim->ScheduleAt(series->sim->now() + series->period,
                          [series]() { RunPeriodicOnce(series); });
}
}  // namespace

EventId Simulator::SchedulePeriodic(TimePs first, TimePs period,
                                    std::function<bool()> tick) {
  assert(period > 0);
  auto series = std::make_shared<PeriodicSeries>();
  series->sim = this;
  series->period = period;
  series->tick = std::move(tick);
  return ScheduleAt(first, [series]() { RunPeriodicOnce(series); });
}

void Simulator::Cancel(EventId id) {
  if (id == kInvalidEvent) return;
  const uint32_t slot_index = static_cast<uint32_t>(id >> 32);
  const uint32_t gen = static_cast<uint32_t>(id);
  if (slot_index >= slots_.size()) return;
  // Live generations are odd; a mismatch means the event already ran, was
  // already cancelled, or the slot now belongs to a newer event.
  if ((gen & 1) == 0 || slots_[slot_index].gen != gen) return;
  ReleaseSlot(slot_index);
  // The queue record stays behind; PopEarliest drops it when it surfaces,
  // seeing a generation newer than the one it recorded.
}

void Simulator::ReleaseSlot(uint32_t slot_index) {
  Slot& slot = slots_[slot_index];
  slot.cb.Reset();
  ++slot.gen;  // odd -> even: free
  slot.next_free = free_head_;
  free_head_ = slot_index;
  --live_events_;
}

bool Simulator::PopEarliest(TimePs until, uint64_t until_seq,
                            HeapEntry* out) {
  if (live_events_ == 0) return false;
  // `cur` is the absolute bucket time the window starts at. It only moves
  // forward: past buckets are empty because every pop scans from now_'s
  // bucket and cleans what it passes.
  int64_t cur = now_ >> kBucketWidthBits;
  for (;;) {
    // Migrate far events whose bucket entered the window. Stale records are
    // discarded here, so surviving far entries are >= the live far minimum
    // and always land at bucket times >= cur.
    while (!far_heap_.empty()) {
      const HeapEntry top = far_heap_.front();
      if (IsStale(top)) {
        HeapPopMin(far_heap_);
        continue;
      }
      if ((top.at >> kBucketWidthBits) >=
          cur + static_cast<int64_t>(kBucketCount)) {
        break;
      }
      HeapPopMin(far_heap_);
      InsertRing(top);
    }
    // Walk occupied buckets in circular (= time) order from the window
    // start. Buckets that turn out to hold only stale records are emptied
    // and the walk continues.
    size_t b = NextOccupied(static_cast<size_t>(cur) & (kBucketCount - 1));
    while (b != kBucketCount) {
      Bucket& bucket = buckets_[b];
      if (!bucket.heapified) {
        Heapify(bucket.entries);
        bucket.heapified = true;
      }
      while (!bucket.entries.empty() && IsStale(bucket.entries.front())) {
        HeapPopMin(bucket.entries);
      }
      if (bucket.entries.empty()) {
        bucket.heapified = false;
        occupied_[b / 64] &= ~(uint64_t{1} << (b % 64));
        b = NextOccupied((b + 1) & (kBucketCount - 1));
        continue;
      }
      const HeapEntry top = bucket.entries.front();
      if (top.at > until || (top.at == until && top.seq >= until_seq)) {
        return false;
      }
      HeapPopMin(bucket.entries);
      if (bucket.entries.empty()) {
        bucket.heapified = false;
        occupied_[b / 64] &= ~(uint64_t{1} << (b % 64));
      }
      *out = top;
      return true;
    }
    // Ring empty: jump the window to the far heap's next live event. Never
    // jump past the horizon — the jump target must be popped within this
    // call, or entries migrated at the jumped window would linger in the
    // ring beyond the span the next call's circular scan can order.
    while (!far_heap_.empty() && IsStale(far_heap_.front())) {
      HeapPopMin(far_heap_);
    }
    if (far_heap_.empty() || far_heap_.front().at > until ||
        (far_heap_.front().at == until && far_heap_.front().seq >= until_seq)) {
      return false;
    }
    cur = far_heap_.front().at >> kBucketWidthBits;
  }
}

uint64_t Simulator::Run(TimePs until, uint64_t until_seq) {
  stopped_ = false;
  uint64_t executed = 0;
  HeapEntry e;
  while (!stopped_) {
    if (events_executed_ >= event_budget_) {
      // A queue that drained exactly at the budget completed normally: fall
      // through to the horizon clock-advance (a frozen clock here would hang
      // callers that poll now() — the very livelock this watchdog prevents).
      if (live_events_ == 0) break;
      budget_exhausted_ = true;
      executing_seq_ = kOtherSeqBase;
      return executed;  // clock stays at the last executed event
    }
    if (has_deadline_ && (executed % kDeadlineCheckStride) == 0) [[unlikely]] {
      if (deadline_exceeded_ ||
          std::chrono::steady_clock::now() >= wall_deadline_) {
        if (live_events_ == 0) break;
        deadline_exceeded_ = true;
        executing_seq_ = kOtherSeqBase;
        return executed;  // like the budget stop: a prefix of the full run
      }
    }
    if (!PopEarliest(until, until_seq, &e)) break;
    // Move the closure out and release the slot *before* invoking: the
    // callback may reschedule into this slot (new generation) and its own id
    // is already stale, making self-cancel a no-op.
    Callback cb = std::move(slots_[e.slot].cb);
    ReleaseSlot(e.slot);
    now_ = e.at;
    executing_seq_ = e.seq;
    cb();
    ++executed;
    ++events_executed_;
  }
  executing_seq_ = kOtherSeqBase;
  // If we stopped because of the horizon, advance the clock to it so that
  // repeated Run(until) calls observe monotone time.
  if (!stopped_ && now_ < until &&
      until != std::numeric_limits<TimePs>::max()) {
    now_ = until;
  }
  return executed;
}

}  // namespace hpcc::sim
