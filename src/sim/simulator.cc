#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace hpcc::sim {

EventId Simulator::ScheduleAt(TimePs at, Callback cb) {
  assert(at >= now_);
  EventId id = next_id_++;
  heap_.push(Event{at, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

EventId Simulator::ScheduleIn(TimePs delay, Callback cb) {
  assert(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(cb));
}

void Simulator::Cancel(EventId id) {
  if (id == kInvalidEvent) return;
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return;  // already ran or never existed
  callbacks_.erase(it);
  cancelled_.insert(id);
}

uint64_t Simulator::Run(TimePs until) {
  stopped_ = false;
  uint64_t executed = 0;
  while (!heap_.empty() && !stopped_) {
    Event ev = heap_.top();
    if (ev.at > until) break;
    heap_.pop();
    if (auto c = cancelled_.find(ev.id); c != cancelled_.end()) {
      cancelled_.erase(c);
      continue;
    }
    auto it = callbacks_.find(ev.id);
    assert(it != callbacks_.end());
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.at;
    cb();
    ++executed;
    ++events_executed_;
  }
  // If we stopped because of the horizon, advance the clock to it so that
  // repeated Run(until) calls observe monotone time.
  if (!heap_.empty() && !stopped_ && now_ < until) now_ = until;
  if (heap_.empty() && now_ < until &&
      until != std::numeric_limits<TimePs>::max()) {
    now_ = until;
  }
  return executed;
}

}  // namespace hpcc::sim
