// Discrete-event simulator: a single-threaded event loop over a timing ring.
//
// This is the substrate replacing ns-3 in the paper's evaluation (§5). All
// network components schedule closures at absolute picosecond timestamps;
// ties are broken by insertion order so runs are fully deterministic.
//
// The hot path is allocation-free and (near-)constant time:
//
//  - Closures live in a slot-indexed event arena — a flat vector of pooled
//    slots recycled through a free list — inside small-buffer sim::Callback
//    storage. An EventId encodes {slot, generation}; the generation advances
//    on every allocation and release, so Cancel is an O(1) tag comparison
//    plus slot release (no tombstone set, no map), and a stale id can never
//    touch a newer event.
//
//  - The pending-event queue is a two-level structure. Events within the
//    near-future window (kBucketCount buckets of kBucketWidth picoseconds,
//    ~2 µs — sized to cover serialization, propagation and CC-timer delays)
//    go into a timing ring: O(1) append into the bucket of their timestamp,
//    ordered lazily by a tiny per-bucket 4-ary min-heap when the wheel
//    drains that bucket. Events beyond the window go to a far 4-ary heap
//    and migrate into the ring when the window reaches them. Everything is
//    ordered by (time, schedule sequence number), so the executed order is
//    identical to a single global priority queue — a comparison-based heap
//    at realistic queue depths (hundreds to thousands pending) costs ~90 ns
//    per event in sift alone, which this structure removes.
//
// Ownership and reentrancy rules:
//  - The Simulator owns every scheduled closure until it runs or is
//    cancelled; Cancel destroys the closure immediately.
//  - Callbacks run strictly single-threaded, in (time, insertion) order.
//  - A callback may freely Schedule new events, including at now(), and may
//    Cancel any pending event — cancelling its own (currently running) id is
//    a no-op because the slot was released before invocation.
//  - EventIds are never reissued: a reused slot gets a fresh generation, so
//    holding an id after its event fired is safe (Cancel is a no-op), which
//    is what the RTO/CC-timer call sites rely on.
#pragma once

#include <cassert>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace hpcc::sim {

// {generation (odd = live), slot index} — see MakeEventId below. Id 0 never
// names a live event because live generations are odd.
using EventId = uint64_t;
inline constexpr EventId kInvalidEvent = 0;

// Same-timestamp ordering class, encoded into the queue records' tie-break
// key (top two bits of `seq`). Events at equal timestamps execute link
// boundary events first (serialization ends / train completions, ordered by
// link uid), then packet arrivals (ordered by emission time, then link uid),
// then everything else in scheduling order.
//
// This exists for the forwarding fast path: transmission trains schedule a
// packet's arrival when the train forms, not when the packet's serialization
// starts, so a seq assigned by scheduling *order* would make same-picosecond
// ties resolve differently than in the per-packet reference engine — and a
// phase-locked network (equal-rate links, equal-size packets) ties
// constantly. Keying arrivals by (emission time, link) and boundaries by
// (link) makes the execution order a function of simulation quantities both
// engines agree on, which is what lets `--fastpath=on/off` produce
// byte-identical results.
//
// Boundaries sort *before* arrivals deliberately: when a packet arrives at a
// port at exactly the instant its previous serialization ends, the reference
// engine's tx-complete is then guaranteed to have already fired, so the fast
// path may start transmitting inside the arrival event itself instead of
// scheduling a boundary event to stay order-aligned — that keeps store-and-
// forward chains across equal-rate links (arrival == boundary at every hop)
// at zero extra events per forwarded packet.
enum class EventClass : uint32_t { kBoundary = 0, kArrival = 1, kOther = 2 };

class Simulator {
 public:
  using Callback = sim::Callback;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Schedules `cb` to run at absolute time `at` (must be >= now()).
  EventId ScheduleAt(TimePs at, Callback cb);
  // Schedules `cb` to run `delay` after now().
  EventId ScheduleIn(TimePs delay, Callback cb);

  // Class-keyed scheduling (see EventClass). A packet arrival at `at`,
  // emitted onto link `link_uid` at `emission_time`; and a link boundary
  // (serialization end / train completion) on `link_uid`. Both tie-break
  // deterministically by their keys instead of scheduling order.
  EventId ScheduleArrival(TimePs at, TimePs emission_time, uint32_t link_uid,
                          Callback cb);
  EventId ScheduleBoundary(TimePs at, uint32_t link_uid, Callback cb);

  // Periodic hook: runs `tick` at `first`, then every `period` thereafter
  // for as long as it returns true. Each occurrence is an ordinary
  // EventClass::kOther event drawn from the normal schedule counter, so a
  // periodic hook interleaves with same-timestamp packet events under the
  // standard deterministic tie-breaks (boundaries, then arrivals, then this)
  // — which is what lets engines driven by it (e.g. the hybrid fluid ticks)
  // stay byte-identical across --fastpath=on/off and --jobs values. Returns
  // the id of the *first* occurrence only; the series owns its later
  // reschedules, and stopping is the callback's job (return false).
  EventId SchedulePeriodic(TimePs first, TimePs period,
                           std::function<bool()> tick);

  // Tie-break key of the currently executing event ((class << 62) | key);
  // kOtherSeqBase outside Run. The fast path consults it to decide whether
  // the reference engine's same-timestamp boundary would already have fired.
  uint64_t executing_seq() const { return executing_seq_; }
  EventClass executing_class() const {
    return static_cast<EventClass>(executing_seq_ >> kClassShift);
  }

  // Tie-break key the *next* ScheduleAt call would receive. Sharded event
  // installation records this before scheduling a link-script marker so the
  // lane can later run seq-bounded up to (but excluding) that marker.
  uint64_t next_schedule_seq() const { return kOtherSeqBase | next_seq_; }

  // seq-encoding layout (public for the call sites that compare keys).
  static constexpr int kClassShift = 62;
  // Arrival key: emission time (43 bits, ~8.8 s — clamped beyond, which only
  // coarsens tie-breaks) then link uid (19 bits, wrapped beyond).
  static constexpr int kArrivalUidBits = 19;
  static constexpr TimePs kMaxKeyedEmission =
      (TimePs{1} << (kClassShift - kArrivalUidBits)) - 1;
  static constexpr uint64_t kArrivalSeqBase = uint64_t{1} << kClassShift;
  static constexpr uint64_t kOtherSeqBase = uint64_t{2} << kClassShift;

  static uint64_t BoundarySeq(uint32_t link_uid) {
    return link_uid & ((uint32_t{1} << kArrivalUidBits) - 1);
  }

  // --- Warm restore (checkpointed sweeps; see runner/experiment.h) --------
  // Re-schedules an event under a previously-issued tie-break key. A warm
  // restore replays a checkpointed simulator's pending events with their
  // original (at, seq) pairs, so the resumed execution order is the exact
  // order the checkpointing run would have used. `seq` must be a full
  // encoded key (class bits included), exactly as next_schedule_seq() /
  // executing_seq() report them.
  EventId ScheduleAtSeq(TimePs at, uint64_t seq, Callback cb) {
    return ScheduleKeyed(at, seq, std::move(cb));
  }
  // Jumps the clock, schedule counter and executed-event count to a
  // checkpoint's values (all pending events must already carry timestamps
  // >= `now`). The caller re-creates pending events via ScheduleAtSeq; this
  // only aligns the counters so post-restore ScheduleAt calls draw the same
  // seqs (and events_executed reports the same totals) as the run that took
  // the checkpoint.
  void Restore(TimePs now, uint64_t next_schedule_seq_value,
               uint64_t events_executed_value) {
    assert(now >= now_);
    now_ = now;
    next_seq_ = next_schedule_seq_value & (kArrivalSeqBase - 1);
    events_executed_ = events_executed_value;
  }
  // Cancels a pending event and destroys its closure. Cancelling an
  // already-run, already-cancelled, or invalid id is a no-op.
  void Cancel(EventId id);

  // Runs until the event queue empties, `until` is reached, Stop(), or the
  // event budget is exhausted. Returns the number of events executed.
  //
  // `until_seq` refines the horizon for events at exactly `until`: only
  // events with tie-break seq < until_seq execute there (default: all of
  // them). Sharded runs use this to stop each lane exactly *before* a
  // same-timestamp link-script marker so the script can apply at a barrier
  // in the same relative order the single-sim run would have used.
  uint64_t Run(TimePs until = std::numeric_limits<TimePs>::max(),
               uint64_t until_seq = std::numeric_limits<uint64_t>::max());
  // Stops the run loop after the current event returns.
  void Stop() { stopped_ = true; }

  // Watchdog against event storms/livelocks (e.g. a callback rescheduling
  // itself at now() forever would otherwise hang Run at a frozen clock):
  // once `events_executed()` reaches the budget, Run returns immediately and
  // `budget_exhausted()` latches true if events are still pending (a queue
  // that drained exactly at the budget completed normally). The scenario
  // fuzzer turns this into an invariant violation instead of a hung
  // process. Default: unlimited.
  void set_event_budget(uint64_t max_total_events) {
    event_budget_ = max_total_events;
  }
  bool budget_exhausted() const { return budget_exhausted_; }

  // Wall-clock watchdog (per-point sweep deadlines): once the steady clock
  // passes `deadline`, Run returns and `deadline_exceeded()` latches true.
  // Checked every kDeadlineCheckStride events, so it changes only how *far*
  // the run gets — never the order of the events executed before the stop;
  // the simulated state at the stop is a prefix of the undisturbed run.
  void set_wall_deadline(std::chrono::steady_clock::time_point deadline) {
    wall_deadline_ = deadline;
    has_deadline_ = true;
  }
  bool deadline_exceeded() const { return deadline_exceeded_; }

  TimePs now() const { return now_; }
  uint64_t events_executed() const { return events_executed_; }
  // Scheduled events that are neither cancelled nor executed. Maintained as
  // a direct live count, so it can never underflow however ids are cancelled
  // around Run() boundaries.
  size_t pending_events() const { return live_events_; }

 private:
  // One arena slot. `gen` is odd while the slot holds a live event and even
  // while free; it advances on every transition, so each (slot, gen) pair
  // names one event ever (modulo 2^31 reuses of a single slot).
  struct Slot {
    Callback cb;
    uint32_t gen = 0;
    uint32_t next_free = 0;  // free-list link, valid while gen is even
  };

  // Queue records are plain data; the closure stays in the slot. `seq` is
  // the same-timestamp tie-break: (EventClass << 62) | class key — a
  // monotone schedule counter for kOther, simulation-derived keys for
  // arrivals and boundaries (see EventClass above).
  struct HeapEntry {
    TimePs at;
    uint64_t seq;
    uint32_t slot;
    uint32_t gen;
  };

  // Bitwise-composed so the comparison compiles to flag arithmetic + cmov
  // rather than branches: the sift loops' child selection is data-dependent
  // and mispredicts dominate its cost when branchy.
  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    return (a.at < b.at) | ((a.at == b.at) & (a.seq < b.seq));
  }

  // Timing-ring geometry. Width × count must exceed the longest hot-path
  // delay (serialization + propagation ≈ 1.1 µs on the paper's links) so
  // per-packet events never touch the far heap; ms-scale RTO and scenario
  // timers do, at negligible rate.
  static constexpr int kBucketBits = 12;
  static constexpr size_t kBucketCount = size_t{1} << kBucketBits;  // 4096
  static constexpr int kBucketWidthBits = 9;  // 512 ps per bucket
  static constexpr TimePs kBucketWidth = TimePs{1} << kBucketWidthBits;
  static constexpr TimePs kWindowPs =
      static_cast<TimePs>(kBucketCount) * kBucketWidth;  // ~2.1 µs

  // A ring bucket: appended to in O(1) while future, turned into a 4-ary
  // min-heap (heapified) when the wheel starts draining it.
  struct Bucket {
    std::vector<HeapEntry> entries;
    bool heapified = false;
  };

  // 4-ary min-heap primitives shared by the buckets and the far heap.
  static void HeapPush(std::vector<HeapEntry>& h, const HeapEntry& e);
  static void HeapPopMin(std::vector<HeapEntry>& h);
  static void HeapSiftDown(std::vector<HeapEntry>& h, size_t i);
  static void Heapify(std::vector<HeapEntry>& h);

  static EventId MakeEventId(uint32_t slot, uint32_t gen) {
    return (static_cast<EventId>(slot) << 32) | gen;
  }

  bool IsStale(const HeapEntry& e) const {
    return slots_[e.slot].gen != e.gen;
  }

  // Allocates a slot and inserts a queue record with the given tie-break.
  EventId ScheduleKeyed(TimePs at, uint64_t seq, Callback cb);
  // O(1) append of a queue record into its ring bucket.
  void InsertRing(const HeapEntry& e);
  // Pops the earliest live event with (at, seq) < (until, until_seq) into
  // *out. Returns false when there is none (queue empty or horizon reached).
  // Lazily discards stale (cancelled) records and migrates far events into
  // the ring.
  bool PopEarliest(TimePs until, uint64_t until_seq, HeapEntry* out);
  // First occupied bucket at circular distance >= 0 from `start`;
  // kBucketCount when the ring is empty.
  size_t NextOccupied(size_t start) const;

  // Destroys the slot's closure and returns it to the free list.
  void ReleaseSlot(uint32_t slot_index);

  TimePs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executing_seq_ = kOtherSeqBase;
  bool stopped_ = false;
  uint64_t events_executed_ = 0;
  uint64_t event_budget_ = std::numeric_limits<uint64_t>::max();
  bool budget_exhausted_ = false;
  // Amortization stride for the wall-deadline check: one steady_clock read
  // per this many executed events (~microseconds of wall time), so the
  // watchdog costs nothing measurable on the hot loop.
  static constexpr uint64_t kDeadlineCheckStride = 8192;
  std::chrono::steady_clock::time_point wall_deadline_{};
  bool has_deadline_ = false;
  bool deadline_exceeded_ = false;
  size_t live_events_ = 0;

  std::vector<Slot> slots_;
  uint32_t free_head_ = kNoFreeSlot;
  static constexpr uint32_t kNoFreeSlot = UINT32_MAX;

  std::vector<Bucket> buckets_;      // kBucketCount ring buckets
  std::vector<uint64_t> occupied_;   // one bit per bucket
  std::vector<HeapEntry> far_heap_;  // events beyond the ring window
};

}  // namespace hpcc::sim
