// Discrete-event simulator: a single-threaded event loop over a binary heap.
//
// This is the substrate replacing ns-3 in the paper's evaluation (§5). All
// network components schedule closures at absolute picosecond timestamps;
// ties are broken by insertion order so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace hpcc::sim {

using EventId = uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Schedules `cb` to run at absolute time `at` (must be >= now()).
  EventId ScheduleAt(TimePs at, Callback cb);
  // Schedules `cb` to run `delay` after now().
  EventId ScheduleIn(TimePs delay, Callback cb);
  // Cancels a pending event. Cancelling an already-run or invalid id is a
  // no-op (lazy deletion: the heap entry is skipped when popped).
  void Cancel(EventId id);

  // Runs until the event queue empties, `until` is reached, or Stop().
  // Returns the number of events executed.
  uint64_t Run(TimePs until = std::numeric_limits<TimePs>::max());
  // Stops the run loop after the current event returns.
  void Stop() { stopped_ = true; }

  TimePs now() const { return now_; }
  uint64_t events_executed() const { return events_executed_; }
  // Scheduled events that are neither cancelled nor executed. Counted from
  // the callback map — which holds exactly the live events — rather than
  // heap size minus cancelled size, so the count can never underflow however
  // ids are cancelled around Run() boundaries.
  size_t pending_events() const { return callbacks_.size(); }

 private:
  struct Event {
    TimePs at;
    EventId id;
    // Heap is a max-heap by default; invert for earliest-first, then
    // lowest-id-first for deterministic tie-break.
    bool operator<(const Event& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  TimePs now_ = 0;
  EventId next_id_ = 1;
  bool stopped_ = false;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event> heap_;
  // Callbacks are stored separately so cancelled events free their closure.
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace hpcc::sim
