#include "sim/rng.h"

#include <cassert>

namespace hpcc::sim {

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

size_t Rng::Index(size_t n) {
  assert(n > 0);
  return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
}

std::vector<size_t> Rng::SampleDistinct(size_t k, size_t n) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector; fine for the sizes we use
  // (incast fan-ins of tens out of hundreds of hosts).
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace hpcc::sim
