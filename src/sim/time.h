// Time representation for the discrete-event simulator.
//
// All simulation time is kept in int64 picoseconds. At 100 Gbps one byte
// serializes in exactly 80 ps, so link arithmetic is exact with no floating
// point drift; an int64 covers ~106 days of simulated time.
#pragma once

#include <cstdint>

namespace hpcc::sim {

using TimePs = int64_t;

inline constexpr TimePs kPsPerNs = 1'000;
inline constexpr TimePs kPsPerUs = 1'000'000;
inline constexpr TimePs kPsPerMs = 1'000'000'000;
inline constexpr TimePs kPsPerSec = 1'000'000'000'000;

constexpr TimePs Ns(int64_t v) { return v * kPsPerNs; }
constexpr TimePs Us(int64_t v) { return v * kPsPerUs; }
constexpr TimePs Ms(int64_t v) { return v * kPsPerMs; }
constexpr TimePs Sec(int64_t v) { return v * kPsPerSec; }

constexpr double ToUs(TimePs t) { return static_cast<double>(t) / kPsPerUs; }
constexpr double ToMs(TimePs t) { return static_cast<double>(t) / kPsPerMs; }
constexpr double ToSec(TimePs t) { return static_cast<double>(t) / kPsPerSec; }

// Serialization time of `bytes` on a link of `bps` bits/second.
constexpr TimePs SerializationTime(int64_t bytes, int64_t bps) {
  // bytes*8*1e12/bps; bytes here are packet-sized (<64KB) so the product
  // bytes*8*kPsPerSec stays far below int64 overflow only for bps >= ~57bps.
  // Compute in long double-free integer form via 128-bit intermediate.
  return static_cast<TimePs>((static_cast<__int128>(bytes) * 8 * kPsPerSec) /
                             bps);
}

// Rate (bits/second) that sends `bytes` in time `t`.
constexpr int64_t RateBps(int64_t bytes, TimePs t) {
  if (t <= 0) return 0;
  return static_cast<int64_t>((static_cast<__int128>(bytes) * 8 * kPsPerSec) /
                              t);
}

inline constexpr int64_t kGbps = 1'000'000'000;

}  // namespace hpcc::sim
