// Small-buffer callback: the simulator's event closure type.
//
// std::function heap-allocates any capture larger than two pointers, which on
// the event-loop hot path means one malloc/free per scheduled event. Every
// closure the simulator's clients actually schedule (port transmissions, CC
// timers, workload arrivals, scenario scripts) captures a few pointers and
// ints, so Callback stores captures up to kInlineBytes in place and only
// falls back to the heap beyond that. Move-only: closures are owned by
// exactly one event slot and are moved out to run.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hpcc::sim {

class Callback {
 public:
  // Sized for the largest capture in the tree (std::function recursion in
  // tests is 32 bytes; typical network closures are 16-24).
  static constexpr size_t kInlineBytes = 48;

  Callback() noexcept = default;

  // Wraps any void() callable. Captures that fit (and are nothrow-movable,
  // so event-slot relocation cannot throw) live inline; others on the heap.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  Callback(Callback&& other) noexcept { StealFrom(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      Reset();
      StealFrom(other);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { Reset(); }

  // Destroys the held closure (and frees it if heap-stored); empty after.
  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs the closure at dst from src and destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr bool kFitsInline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static void InlineInvoke(void* p) {
    (*std::launder(reinterpret_cast<D*>(p)))();
  }
  template <typename D>
  static void InlineRelocate(void* dst, void* src) noexcept {
    D* s = std::launder(reinterpret_cast<D*>(src));
    ::new (dst) D(std::move(*s));
    s->~D();
  }
  template <typename D>
  static void InlineDestroy(void* p) noexcept {
    std::launder(reinterpret_cast<D*>(p))->~D();
  }
  template <typename D>
  static constexpr Ops kInlineOps = {&InlineInvoke<D>, &InlineRelocate<D>,
                                     &InlineDestroy<D>};

  template <typename D>
  static D*& HeapPtr(void* p) {
    return *std::launder(reinterpret_cast<D**>(p));
  }
  template <typename D>
  static void HeapInvoke(void* p) {
    (*HeapPtr<D>(p))();
  }
  template <typename D>
  static void HeapRelocate(void* dst, void* src) noexcept {
    *reinterpret_cast<D**>(dst) = HeapPtr<D>(src);
  }
  template <typename D>
  static void HeapDestroy(void* p) noexcept {
    delete HeapPtr<D>(p);
  }
  template <typename D>
  static constexpr Ops kHeapOps = {&HeapInvoke<D>, &HeapRelocate<D>,
                                   &HeapDestroy<D>};

  void StealFrom(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace hpcc::sim
