#include "net/port.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/hash.h"
#include "core/int_header.h"
#include "core/int_wire.h"
#include "net/node.h"

namespace hpcc::net {

Node::Node(sim::Simulator* simulator, uint32_t id, std::string name)
    : simulator_(simulator), id_(id), name_(std::move(name)) {}

Node::~Node() = default;

int Node::AddPort(std::unique_ptr<Port> port) {
  port->set_fast_path(ports_fast_path_);
  ports_.push_back(std::move(port));
  return static_cast<int>(ports_.size()) - 1;
}

void Node::set_simulator(sim::Simulator* simulator) {
  simulator_ = simulator;
  for (std::unique_ptr<Port>& p : ports_) p->set_simulator(simulator);
}

void Node::AddCorruptWindow(int in_port, sim::TimePs start, sim::TimePs end,
                            uint64_t threshold, uint64_t seed) {
  if (corrupt_ == nullptr) corrupt_ = std::make_unique<CorruptState>();
  auto& by_port = corrupt_->by_port;
  if (by_port.size() <= static_cast<size_t>(in_port)) {
    by_port.resize(static_cast<size_t>(in_port) + 1);
  }
  CorruptWindow w;
  w.start = start;
  w.end = end;
  w.threshold = threshold;
  w.seed = seed;
  by_port[static_cast<size_t>(in_port)].push_back(w);
}

bool Node::CorruptDrop(const Packet& pkt, int in_port) {
  // PFC control frames are link-local MAC frames outside the corruption
  // model (losing one would wedge the pause protocol, which has no recovery
  // path), and a lost READ request would strand a flow that never armed its
  // retransmission timer. Everything end-to-end — data, ACK/NACK, CNP — is
  // fair game; the transport's RTO machinery recovers it.
  switch (pkt.type) {
    case PacketType::kData:
    case PacketType::kAck:
    case PacketType::kNack:
    case PacketType::kCnp:
      break;
    case PacketType::kPfcPause:
    case PacketType::kPfcResume:
    case PacketType::kReadRequest:
      return false;
  }
  auto& by_port = corrupt_->by_port;
  if (static_cast<size_t>(in_port) >= by_port.size()) return false;
  const sim::TimePs now = simulator_->now();
  for (CorruptWindow& w : by_port[static_cast<size_t>(in_port)]) {
    if (now < w.start || now >= w.end) continue;
    // Counted draw per eligible in-window packet: the stream position
    // depends only on the deterministic per-port arrival order.
    const uint64_t draw = core::SplitMix64(w.seed + w.counter++);
    if (draw >= w.threshold) continue;
    ++corrupt_dropped_packets_;
    corrupt_dropped_bytes_ += static_cast<uint64_t>(pkt.size_bytes());
    if (check_hooks_ != nullptr) [[unlikely]] {
      check_hooks_->OnDrop(id_, pkt, check::DropReason::kCorrupt);
    }
    return true;
  }
  return false;
}

Port::Port(Node* owner, int index, int64_t bandwidth_bps,
           sim::TimePs propagation_delay)
    : owner_(owner),
      simulator_(&owner->simulator()),
      owner_id_(owner->id()),
      index_(index),
      bandwidth_bps_(bandwidth_bps),
      propagation_delay_(propagation_delay),
      owner_is_switch_(owner->IsSwitch()) {
  assert(bandwidth_bps > 0);
}

void Port::Enqueue(PacketPtr pkt) {
  if (fast_path_) {
    EnqueueFast(std::move(pkt));
    return;
  }
  const Packet* raw = pkt.get();  // stays alive inside the queue
  queues_.Enqueue(std::move(pkt));
  if (check::NetHooks* hooks = owner_->check_hooks()) [[unlikely]] {
    hooks->OnEnqueue(owner_->id(), index_, *raw, queues_.bytes(raw->priority));
  }
  TryTransmit();
}

void Port::SetPaused(int priority, bool paused, sim::TimePs now) {
  if (paused_[priority] == paused) return;
  if (fast_path_) {
    // A pause state change alters which packets the reference engine would
    // pick at the next emission boundary: rewind the committed tail.
    AbortUnemitted();
  }
  paused_[priority] = paused;
  if (priority == kDataPriority) {
    if (paused) {
      pause_started_ = now;
    } else {
      total_paused_ += now - pause_started_;
    }
  }
  if (pause_observer_ != nullptr && pause_observer_->on_change) {
    pause_observer_->on_change(owner_->id(), index_, priority, now, paused);
  }
  if (check::NetHooks* hooks = owner_->check_hooks()) [[unlikely]] {
    hooks->OnPauseChange(owner_->id(), index_, priority, paused, now);
  }
  if (!paused) TryTransmit();
}

sim::TimePs Port::total_paused_time(sim::TimePs now) const {
  sim::TimePs t = total_paused_;
  if (paused_[kDataPriority]) t += now - pause_started_;
  return t;
}

void Port::SetLinkUp(bool up) {
  if (link_up_ == up) return;
  if (fast_path_) {
    // Down: unemitted packets freeze back in the queue (in-flight and
    // currently-serializing ones still arrive, as in the reference engine).
    AbortUnemitted();
  }
  link_up_ = up;
  if (up) TryTransmit();
}

void Port::TryTransmit() {
  if (fast_path_) {
    TryTransmitFast();
    return;
  }
  if (busy_ || !link_up_) return;
  PacketPtr pkt = queues_.Dequeue(paused_);
  if (pkt == nullptr) {
    // Fully drained (or everything paused): let the owner top up. Hosts pull
    // the next paced packet here; switches have nothing to add.
    if (queues_.empty()) owner_->OnPortIdle(index_);
    return;
  }
  if (check::NetHooks* hooks = owner_->check_hooks()) [[unlikely]] {
    hooks->OnDequeue(owner_->id(), index_, *pkt, queues_.bytes(pkt->priority));
  }
  StartTransmission(std::move(pkt));
}

// Emission bookkeeping shared by both engines, at the packet's (possibly
// reconstructed) emission instant. `qlen_data_behind` is the data-priority
// occupancy the packet leaves behind — physical plus logically-queued
// unemitted train bytes, which is exactly what the reference engine reads.
void Port::EmitPacket(Packet& pkt, sim::TimePs emit_time,
                      int64_t qlen_data_behind) {
  tx_bytes_ += static_cast<uint64_t>(pkt.size_bytes());

  // INT stamping at emission (§3.1): the record reports the egress state the
  // packet observed, including the queue it leaves behind. Under hybrid
  // co-simulation the fluid engine's virtual occupancy and served bytes are
  // folded in here — this is the entire packet-visible surface of a fluid
  // flow (see SetFluidState).
  if (stamp_int_ && pkt.int_enabled && pkt.type == PacketType::kData) {
    uint64_t tx_for_int = tx_bytes_;
    int64_t qlen_for_int = qlen_data_behind;
    if (fluid_active_) [[unlikely]] {
      tx_for_int += FluidTxAt(emit_time);
      qlen_for_int += fluid_qlen_;
      if (fluid_qlen_cap_ > 0)
        qlen_for_int = std::min(qlen_for_int, fluid_qlen_cap_);
    }
    core::IntHop hop;
    hop.bandwidth_bps = bandwidth_bps_;
    hop.ts = emit_time;
    hop.tx_bytes = tx_for_int;
    hop.qlen_bytes = qlen_for_int;
    hop.switch_id = owner_->id();
    if (int_wire_format_) {
      // Quantize and wrap to the Fig. 7 field widths (see core/int_wire.h);
      // values stay in natural units so consumers share one representation.
      hop.ts = ((emit_time / sim::kPsPerNs) & core::kTsMask) * sim::kPsPerNs;
      hop.tx_bytes = (hop.tx_bytes / core::kTxBytesUnit & core::kTxMask) *
                     core::kTxBytesUnit;
      const int64_t qu =
          std::min<int64_t>(hop.qlen_bytes / core::kQlenUnit, core::kQlenMask);
      hop.qlen_bytes = qu * core::kQlenUnit;
    }
    pkt.int_stack.Push(hop);
  }

  // Owner hook last (switch: release shared buffer, maybe send PFC resume —
  // which can recursively enqueue a control frame, so all emission state is
  // already consistent by this point).
  owner_->OnPortDequeue(pkt, index_);
}

uint64_t Port::FluidTxAt(sim::TimePs t) const {
  if (!fluid_active_) return 0;
  const sim::TimePs dt = t > fluid_tick_start_ ? t - fluid_tick_start_ : 0;
  // 64x64 -> 128-bit product: rate * dt overflows uint64 for 400 Gbps links
  // over ms-scale gaps, and the stamped counter must never jump backwards.
  const unsigned __int128 extra =
      static_cast<unsigned __int128>(fluid_rate_Bps_) *
      static_cast<unsigned __int128>(dt) / sim::kPsPerSec;
  return fluid_tx_base_ + static_cast<uint64_t>(extra);
}

void Port::SetFluidState(int64_t qlen_bytes, int64_t rate_Bps,
                         int64_t qlen_cap_bytes) {
  const sim::TimePs now = SimNow();
  // Re-base continuously: the new segment starts where the old one ends, so
  // FluidTxAt is monotone across rate changes.
  fluid_tx_base_ = FluidTxAt(now);
  fluid_tick_start_ = now;
  fluid_rate_Bps_ = std::max<int64_t>(0, rate_Bps);
  fluid_qlen_ = std::max<int64_t>(0, qlen_bytes);
  fluid_qlen_cap_ = qlen_cap_bytes;
  fluid_active_ = true;
}

void Port::StartTransmission(PacketPtr pkt) {
  assert(peer_ != nullptr && "port not connected");
  busy_ = true;
  const sim::TimePs now = simulator_->now();
  const sim::TimePs ser =
      sim::SerializationTime(pkt->size_bytes(), bandwidth_bps_);
  busy_until_ = now + ser;  // keeps free_at() engine-independent

  EmitPacket(*pkt, now, queues_.bytes(kDataPriority));

  // Arrival at the peer after serialization + propagation, keyed by the
  // emission instant (see sim::EventClass).
  CommitArrival(std::move(pkt), now, ser);

  // Transmitter frees up after serialization (boundary class: fires after
  // every same-timestamp arrival, before everything else).
  simulator_->ScheduleBoundary(now + ser, link_uid(), [this]() {
    busy_ = false;
    TryTransmit();
  });
}

void Port::CommitArrival(PacketPtr pkt, sim::TimePs emit, sim::TimePs ser) {
  if (handoff_ != nullptr) {
    // Shard boundary: the record is final (single-packet transmit paths
    // never cancel a committed arrival), so ownership moves raw into the
    // channel; the consumer lane re-wraps it on delivery.
    handoff_->Push(HandoffRecord{emit + ser + propagation_delay_, emit,
                                 pkt.release()});
    return;
  }
  // The closure owns the packet (sim::Callback moves move-only captures
  // inline), so a run torn down with packets still on the wire releases
  // them back to the pool instead of leaking — LeakSanitizer catches the
  // raw-pointer variant.
  Node* peer = peer_;
  const int peer_port = peer_port_;
  simulator_->ScheduleArrival(emit + ser + propagation_delay_, emit,
                              link_uid(),
                              [peer, peer_port, pkt = std::move(pkt)]() mutable {
                                peer->Deliver(std::move(pkt), peer_port);
                              });
}

// ---- fast-path engine -------------------------------------------------------

void Port::EnqueueFast(PacketPtr pkt) {
  SettleDue();
  // Control preemption: the reference engine re-picks the highest priority at
  // every emission boundary, so a newcomer must not wait behind committed
  // lower-priority train items.
  for (int p = pkt->priority + 1; p < kNumPriorities; ++p) {
    if (unsettled_bytes_[p] > 0) {
      AbortUnemitted();
      break;
    }
  }
  const Packet* raw = pkt.get();
  queues_.Enqueue(std::move(pkt));
  if (check::NetHooks* hooks = owner_->check_hooks()) [[unlikely]] {
    hooks->OnEnqueue(owner_->id(), index_, *raw,
                     queues_.bytes(raw->priority) +
                         unsettled_bytes_[raw->priority]);
  }
  TryTransmitFast();
}

void Port::TryTransmitFast() {
  SettleDue();
  if (!link_up_) return;
  if (completion_event_ != sim::kInvalidEvent) return;  // boundary will kick
  const sim::TimePs now = simulator_->now();
  if (now < busy_until_) {
    // Mid-serialization. Make sure the emission boundary wakes us if there is
    // queued work (host ports always have a completion event pending).
    if (!queues_.empty()) EnsureCompletionEvent();
    return;
  }
  if (now == busy_until_ &&
      sim::Simulator::BoundarySeq(link_uid()) > simulator_->executing_seq()) {
    // The reference engine's tx-complete for the previous emission fires at
    // exactly this timestamp and has not been reached yet — only possible
    // inside a lower-uid boundary event, since boundaries sort before
    // arrivals and everything else. Emitting here would move the emission
    // ahead of that boundary position; defer to a boundary event at `now`,
    // which sorts exactly where the tx-complete would.
    if (!queues_.empty()) EnsureCompletionEvent();
    return;
  }
  FormTrain(now);
}

void Port::FormTrain(sim::TimePs now) {
  assert(peer_ != nullptr && "port not connected");
  assert(settled_in_train_ == train_.size() && "forming over unemitted items");
  PacketPtr first = queues_.Dequeue(paused_);
  if (first == nullptr) {
    if (queues_.empty()) owner_->OnPortIdle(index_);
    return;
  }
  check::NetHooks* const hooks = owner_->check_hooks();

  if (handoff_ != nullptr || !queues_.HasEligible(paused_) ||
      owner_->MaxTrainPackets() == 1) {
    // Single-packet transmission — the common, uncongested case. Shaped
    // exactly like the reference engine's StartTransmission (the arrival
    // closure owns the packet; no train-buffer traffic), minus the
    // tx-complete event: the emission boundary is busy_until_, and a
    // completion event exists only if someone needs the boundary kick.
    if (hooks != nullptr) [[unlikely]] {
      hooks->OnDequeue(owner_->id(), index_, *first,
                       queues_.bytes(first->priority));
    }
    const sim::TimePs ser =
        sim::SerializationTime(first->size_bytes(), bandwidth_bps_);
    busy_until_ = now + ser;
    EmitPacket(*first, now, queues_.bytes(kDataPriority));
    CommitArrival(std::move(first), now, ser);
    if (!queues_.empty() || owner_->WantsPortIdle(index_)) {
      EnsureCompletionEvent();
    }
    return;
  }

  // Burst train: commit up to max_items back-to-back packets with
  // arithmetically computed emission times. Emission work for future items
  // is settled lazily (SettleDue).
  const int max_items = owner_->MaxTrainPackets();
  sim::TimePs t = now;
  int n = 0;
  for (PacketPtr pkt = std::move(first); pkt != nullptr;
       pkt = ++n < max_items ? queues_.Dequeue(paused_) : nullptr) {
    TrainItem it;
    it.prio = static_cast<int8_t>(pkt->priority);
    it.emit = t;
    it.end = t + sim::SerializationTime(pkt->size_bytes(), bandwidth_bps_);
    t = it.end;
    unsettled_bytes_[it.prio] += pkt->size_bytes();
    it.arrival =
        simulator_->ScheduleArrival(it.end + propagation_delay_, it.emit,
                                    link_uid(), [this]() { DeliverFront(); });
    it.pkt = std::move(pkt);
    train_.push_back(std::move(it));
  }
  busy_until_ = t;
  next_unsettled_emit_ = now;  // the first new item emits immediately
  SettleDueSlow(/*force_now=*/true);
  if (has_unsettled() && owner_is_switch_) owner_->OnTrainPending(index_);

  // One train-completion event at most. A port whose owner wants the
  // boundary kick (host NICs with active sender flows: OnPortIdle pulls the
  // next paced packet) or that still holds queued packets needs it; a
  // drained port otherwise needs none — forwarding then costs zero events
  // beyond the arrivals. A stale completion from a train formed at this
  // same timestamp by an earlier event is cancelled so boundaries never
  // double-fire.
  if (completion_event_ != sim::kInvalidEvent) {
    simulator_->Cancel(completion_event_);
    completion_event_ = sim::kInvalidEvent;
  }
  if (!queues_.empty() || owner_->WantsPortIdle(index_)) {
    EnsureCompletionEvent();
  }
}

void Port::EnsureCompletionEvent() {
  if (completion_event_ != sim::kInvalidEvent) return;
  completion_event_ =
      simulator_->ScheduleBoundary(busy_until_, link_uid(), [this]() {
        completion_event_ = sim::kInvalidEvent;
        TryTransmitFast();
      });
}

void Port::SettleDueSlow(bool force_now) {
  if (settling_) return;  // reentry via OnPortDequeue -> PFC frame enqueue
  settling_ = true;
  check::NetHooks* const hooks = owner_->check_hooks();
  const sim::TimePs now = simulator_->now();
  // An item emitting at exactly `now` emits at this port's boundary
  // position. Boundaries sort first at a timestamp, so almost every reader
  // (arrivals, timers, samplers) observes it already emitted; only an
  // earlier-uid boundary event runs before it and must still see it queued.
  const bool settle_now_items =
      force_now || simulator_->executing_seq() >
                       sim::Simulator::BoundarySeq(link_uid());
  if (hooks != nullptr) [[unlikely]] burst_records_.clear();
  while (settled_in_train_ < train_.size()) {
    TrainItem& it = train_[settled_in_train_];
    if (it.emit > now || (it.emit == now && !settle_now_items)) break;
    ++settled_in_train_;
    Packet& pkt = *it.pkt;
    unsettled_bytes_[it.prio] -= pkt.size_bytes();
    if (hooks != nullptr) [[unlikely]] {
      burst_records_.push_back(
          {&pkt, queues_.bytes(it.prio) + unsettled_bytes_[it.prio]});
    }
    EmitPacket(pkt, it.emit,
               queues_.bytes(kDataPriority) + unsettled_bytes_[kDataPriority]);
  }
  next_unsettled_emit_ =
      has_unsettled() ? train_[settled_in_train_].emit : kNever;
  if (hooks != nullptr && !burst_records_.empty()) [[unlikely]] {
    hooks->OnDequeueBurst(owner_->id(), index_, burst_records_.data(),
                          burst_records_.size());
  }
  settling_ = false;
}

void Port::DeliverFront() {
  SettleDue();
  assert(!train_.empty() && settled_in_train_ > 0 &&
         "delivery of an unemitted train item");
  TrainItem it = train_.pop_front();
  --settled_in_train_;
  peer_->Deliver(std::move(it.pkt), peer_port_);
}

void Port::AbortUnemitted() {
  SettleDue();
  if (!has_unsettled()) return;
  ++train_aborts_;
  while (train_.size() > settled_in_train_) {
    TrainItem it = train_.pop_back();
    simulator_->Cancel(it.arrival);
    unsettled_bytes_[it.prio] -= it.pkt->size_bytes();
    queues_.Requeue(std::move(it.pkt));
  }
  next_unsettled_emit_ = kNever;
  // The settled tail item is still serializing (its arrival, at end +
  // propagation, is in the future), so it is still in the train buffer.
  assert(settled_in_train_ > 0);
  busy_until_ = train_[settled_in_train_ - 1].end;
  if (completion_event_ != sim::kInvalidEvent) {
    simulator_->Cancel(completion_event_);
    completion_event_ = sim::kInvalidEvent;
  }
  EnsureCompletionEvent();
}

}  // namespace hpcc::net
