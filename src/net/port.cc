#include "net/port.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/int_header.h"
#include "core/int_wire.h"
#include "net/node.h"

namespace hpcc::net {

Node::Node(sim::Simulator* simulator, uint32_t id, std::string name)
    : simulator_(simulator), id_(id), name_(std::move(name)) {}

Node::~Node() = default;

int Node::AddPort(std::unique_ptr<Port> port) {
  ports_.push_back(std::move(port));
  return static_cast<int>(ports_.size()) - 1;
}

Port::Port(Node* owner, int index, int64_t bandwidth_bps,
           sim::TimePs propagation_delay)
    : owner_(owner),
      index_(index),
      bandwidth_bps_(bandwidth_bps),
      propagation_delay_(propagation_delay) {
  assert(bandwidth_bps > 0);
}

void Port::Enqueue(PacketPtr pkt) {
  const Packet* raw = pkt.get();  // stays alive inside the queue
  queues_.Enqueue(std::move(pkt));
  if (check::NetHooks* hooks = owner_->check_hooks()) [[unlikely]] {
    hooks->OnEnqueue(owner_->id(), index_, *raw, queues_.bytes(raw->priority));
  }
  TryTransmit();
}

void Port::SetPaused(int priority, bool paused, sim::TimePs now) {
  if (paused_[priority] == paused) return;
  paused_[priority] = paused;
  if (priority == kDataPriority) {
    if (paused) {
      pause_started_ = now;
    } else {
      total_paused_ += now - pause_started_;
    }
  }
  if (pause_observer_ != nullptr && pause_observer_->on_change) {
    pause_observer_->on_change(owner_->id(), index_, priority, now, paused);
  }
  if (check::NetHooks* hooks = owner_->check_hooks()) [[unlikely]] {
    hooks->OnPauseChange(owner_->id(), index_, priority, paused, now);
  }
  if (!paused) TryTransmit();
}

sim::TimePs Port::total_paused_time(sim::TimePs now) const {
  sim::TimePs t = total_paused_;
  if (paused_[kDataPriority]) t += now - pause_started_;
  return t;
}

void Port::SetLinkUp(bool up) {
  if (link_up_ == up) return;
  link_up_ = up;
  if (up) TryTransmit();
}

void Port::TryTransmit() {
  if (busy_ || !link_up_) return;
  PacketPtr pkt = queues_.Dequeue(paused_);
  if (pkt == nullptr) {
    // Fully drained (or everything paused): let the owner top up. Hosts pull
    // the next paced packet here; switches have nothing to add.
    if (queues_.empty()) owner_->OnPortIdle(index_);
    return;
  }
  if (check::NetHooks* hooks = owner_->check_hooks()) [[unlikely]] {
    hooks->OnDequeue(owner_->id(), index_, *pkt, queues_.bytes(pkt->priority));
  }
  StartTransmission(std::move(pkt));
}

void Port::StartTransmission(PacketPtr pkt) {
  assert(peer_ != nullptr && "port not connected");
  busy_ = true;
  sim::Simulator& simulator = owner_->simulator();
  const sim::TimePs now = simulator.now();

  // Owner hook first (switch: release shared buffer, maybe send PFC resume).
  owner_->OnPortDequeue(*pkt, index_);

  tx_bytes_ += static_cast<uint64_t>(pkt->size_bytes());

  // INT stamping at emission (§3.1): the record reports the egress state the
  // packet observed, including the queue it leaves behind.
  if (stamp_int_ && pkt->int_enabled && pkt->type == PacketType::kData) {
    core::IntHop hop;
    hop.bandwidth_bps = bandwidth_bps_;
    hop.ts = now;
    hop.tx_bytes = tx_bytes_;
    hop.qlen_bytes = queues_.bytes(kDataPriority);
    hop.switch_id = owner_->id();
    if (int_wire_format_) {
      // Quantize and wrap to the Fig. 7 field widths (see core/int_wire.h);
      // values stay in natural units so consumers share one representation.
      hop.ts = ((now / sim::kPsPerNs) & core::kTsMask) * sim::kPsPerNs;
      hop.tx_bytes = (hop.tx_bytes / core::kTxBytesUnit & core::kTxMask) *
                     core::kTxBytesUnit;
      const int64_t qu =
          std::min<int64_t>(hop.qlen_bytes / core::kQlenUnit, core::kQlenMask);
      hop.qlen_bytes = qu * core::kQlenUnit;
    }
    pkt->int_stack.Push(hop);
  }

  const sim::TimePs ser =
      sim::SerializationTime(pkt->size_bytes(), bandwidth_bps_);

  // Arrival at the peer after serialization + propagation. The closure owns
  // the packet (sim::Callback moves move-only captures inline), so a run
  // torn down with packets still on the wire releases them back to the pool
  // instead of leaking — LeakSanitizer catches the raw-pointer variant.
  Node* peer = peer_;
  const int peer_port = peer_port_;
  simulator.ScheduleIn(ser + propagation_delay_,
                       [peer, peer_port, pkt = std::move(pkt)]() mutable {
                         peer->Receive(std::move(pkt), peer_port);
                       });

  // Transmitter frees up after serialization.
  simulator.ScheduleIn(ser, [this]() {
    busy_ = false;
    TryTransmit();
  });
}

}  // namespace hpcc::net
