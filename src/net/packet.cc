#include "net/packet.h"

#include <cassert>
#include <vector>

namespace hpcc::net {
namespace {

// Owns this thread's free list; frees the parked packets at thread exit.
struct ThreadCache {
  std::vector<Packet*> free_list;
  size_t allocated = 0;
  ~ThreadCache() {
    for (Packet* p : free_list) delete p;
  }
};

ThreadCache& Cache() {
  static thread_local ThreadCache cache;
  return cache;
}

}  // namespace

Packet* PacketPool::Acquire() {
  ThreadCache& cache = Cache();
  if (!cache.free_list.empty()) {
    Packet* p = cache.free_list.back();
    cache.free_list.pop_back();
    return p;
  }
  ++cache.allocated;
  return new Packet();
}

void PacketPool::Release(Packet* p) noexcept {
  if (p == nullptr) return;
  *p = Packet{};  // scrub: a recycled packet must look freshly constructed
  try {
    Cache().free_list.push_back(p);
  } catch (...) {
    delete p;  // free-list growth failed; fall back to the heap
  }
}

size_t PacketPool::free_count() noexcept { return Cache().free_list.size(); }

size_t PacketPool::allocated_count() noexcept { return Cache().allocated; }

void PacketPool::TrimThreadCache() noexcept {
  ThreadCache& cache = Cache();
  for (Packet* p : cache.free_list) delete p;
  cache.free_list.clear();
}

PacketPtr AllocatePacket() { return PacketPtr(PacketPool::Acquire()); }

PacketPtr MakeDataPacket(uint64_t flow_id, uint32_t src, uint32_t dst,
                         uint64_t seq, int payload_bytes, bool int_enabled,
                         bool ecn_capable) {
  auto p = AllocatePacket();
  p->type = PacketType::kData;
  p->flow_id = flow_id;
  p->src = src;
  p->dst = dst;
  p->seq = seq;
  p->payload_bytes = payload_bytes;
  p->header_bytes = kDataHeaderBytes;
  if (int_enabled) {
    // Worst-case INT padding charged on every data packet (§5.1).
    p->header_bytes += core::IntStack::kWorstCaseWireBytes;
    p->int_enabled = true;
  }
  p->ecn_capable = ecn_capable;
  p->priority = kDataPriority;
  return p;
}

PacketPtr MakeAck(const Packet& data, uint64_t cumulative_ack) {
  assert(data.type == PacketType::kData);
  auto p = AllocatePacket();
  p->type = PacketType::kAck;
  p->flow_id = data.flow_id;
  p->src = data.dst;
  p->dst = data.src;
  p->seq = cumulative_ack;
  p->payload_bytes = 0;
  p->header_bytes = kAckHeaderBytes;
  p->priority = kControlPriority;
  p->ecn_echo = data.ecn_ce;
  p->data_sent_time = data.sent_time;
  p->rcp_rate_bps = data.rcp_rate_bps;
  p->irn = data.irn;
  p->acked_payload_bytes = data.payload_bytes;
  if (data.int_enabled) {
    // Receiver copies the INT meta-data into the ACK (§3.1 step 5). The ACK
    // also physically carries those bytes.
    p->int_enabled = true;
    p->int_stack = data.int_stack;
    p->header_bytes += data.int_stack.WireBytes();
  }
  return p;
}

PacketPtr MakeNack(const Packet& data, uint64_t expected_seq) {
  auto p = MakeAck(data, expected_seq);
  p->type = PacketType::kNack;
  p->sack_seq = data.seq;
  p->has_sack = true;
  return p;
}

PacketPtr MakeCnp(uint64_t flow_id, uint32_t src, uint32_t dst) {
  auto p = AllocatePacket();
  p->type = PacketType::kCnp;
  p->flow_id = flow_id;
  p->src = src;
  p->dst = dst;
  p->payload_bytes = 0;
  p->header_bytes = kAckHeaderBytes;
  p->priority = kControlPriority;
  return p;
}

PacketPtr MakeReadRequest(uint64_t flow_id, uint32_t requester,
                          uint32_t responder) {
  auto p = AllocatePacket();
  p->type = PacketType::kReadRequest;
  p->flow_id = flow_id;
  p->src = requester;
  p->dst = responder;
  p->payload_bytes = 0;
  p->header_bytes = kAckHeaderBytes;
  p->priority = kControlPriority;
  return p;
}

PacketPtr MakePfc(PacketType pause_or_resume, int priority) {
  assert(pause_or_resume == PacketType::kPfcPause ||
         pause_or_resume == PacketType::kPfcResume);
  auto p = AllocatePacket();
  p->type = pause_or_resume;
  p->payload_bytes = 0;
  p->header_bytes = kPfcFrameBytes;
  p->priority = kControlPriority;
  p->pause_priority = priority;
  return p;
}

}  // namespace hpcc::net
