// Base class for network devices (hosts and switches).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/hooks.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace hpcc::net {

class Port;

class Node {
 public:
  Node(sim::Simulator* simulator, uint32_t id, std::string name);
  virtual ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // A packet has fully arrived on `in_port`.
  virtual void Receive(PacketPtr pkt, int in_port) = 0;
  virtual bool IsSwitch() const = 0;

  // Port hooks (see Port). Default: no-op.
  // Called right before a data/control packet starts serialization.
  virtual void OnPortDequeue(Packet& /*pkt*/, int /*port_index*/) {}
  // Called when a port finished serializing and found nothing to send next;
  // hosts use it to pull the next paced packet.
  virtual void OnPortIdle(int /*port_index*/) {}

  // Adds a port; returns its index. Used by Topology when wiring links.
  int AddPort(std::unique_ptr<Port> port);

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  sim::Simulator& simulator() { return *simulator_; }
  int num_ports() const { return static_cast<int>(ports_.size()); }
  Port& port(int i) { return *ports_[i]; }
  const Port& port(int i) const { return *ports_[i]; }

  // Invariant-monitor hooks (check::MonitorRegistry::AttachTo). Null by
  // default; the installer must keep the hooks alive for the node's whole
  // simulation (they are consulted on every enqueue/dequeue).
  void set_check_hooks(check::NetHooks* hooks) { check_hooks_ = hooks; }
  check::NetHooks* check_hooks() const { return check_hooks_; }

 protected:
  sim::Simulator* simulator_;
  uint32_t id_;
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
  check::NetHooks* check_hooks_ = nullptr;
};

}  // namespace hpcc::net
