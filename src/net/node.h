// Base class for network devices (hosts and switches).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/hooks.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace hpcc::net {

class Port;

// Upper bound on packets per transmission train (see Port): deep enough to
// amortize boundary events across an incast backlog, small enough that an
// abort rewinds a bounded amount of state.
inline constexpr int kMaxTrainPackets = 32;

class Node {
 public:
  Node(sim::Simulator* simulator, uint32_t id, std::string name);
  virtual ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // A packet has fully arrived on `in_port`.
  virtual void Receive(PacketPtr pkt, int in_port) = 0;
  virtual bool IsSwitch() const = 0;

  // Delivery front door used by the wire (Port and the shard handoff path):
  // runs the seeded corruption filter for `in_port`, then hands the survivor
  // to Receive. With no `corrupt` windows installed this is one predicted
  // branch on top of Receive.
  void Deliver(PacketPtr pkt, int in_port) {
    if (corrupt_ != nullptr) [[unlikely]] {
      if (CorruptDrop(*pkt, in_port)) return;
    }
    Receive(std::move(pkt), in_port);
  }

  // Installs a seeded corruption window on `in_port`: packets fully arriving
  // in [start, end) are dropped when the next draw of the per-(node, port)
  // SplitMix64 counter stream lands below `threshold` (= BER scaled to
  // 2^64). The counter advances once per eligible packet whether or not it
  // drops, so the stream — and therefore every drop decision — is pinned by
  // the deterministic per-port arrival order, identical across transmit
  // engines, shard counts and --jobs.
  void AddCorruptWindow(int in_port, sim::TimePs start, sim::TimePs end,
                        uint64_t threshold, uint64_t seed);

  // Packets discarded by corruption windows on any of this node's in-ports.
  uint64_t corrupt_dropped_packets() const { return corrupt_dropped_packets_; }
  uint64_t corrupt_dropped_bytes() const { return corrupt_dropped_bytes_; }

  // Port hooks (see Port). Default: no-op.
  // Called right before a data/control packet starts serialization.
  virtual void OnPortDequeue(Packet& /*pkt*/, int /*port_index*/) {}
  // Called when a port finished serializing and found nothing to send next;
  // hosts use it to pull the next paced packet.
  virtual void OnPortIdle(int /*port_index*/) {}

  // Fast-path train hooks. MaxTrainPackets bounds how many packets one of
  // this node's ports may commit to a single back-to-back train (switches
  // drop to 1 while a PFC pause is outstanding so deferred emission work can
  // never delay a RESUME). OnTrainPending tells the owner that `port` now
  // holds unemitted train items whose emission work is settled lazily —
  // switches track these ports so shared-buffer reads stay exact.
  virtual int MaxTrainPackets() const { return kMaxTrainPackets; }
  virtual void OnTrainPending(int /*port_index*/) {}
  // Whether this node wants OnPortIdle at the port's next emission boundary
  // even if the queue drains. Hosts with active sender flows say yes (the
  // boundary pulls the next paced packet); pure receivers and switches say
  // no, which lets the fast path skip the boundary event entirely.
  virtual bool WantsPortIdle(int /*port_index*/) const { return false; }

  // Adds a port; returns its index. Used by Topology when wiring links.
  int AddPort(std::unique_ptr<Port> port);

  // Re-homes this node (and every port) onto another event arena. Sharded
  // runs build the topology once on lane 0's simulator and then move each
  // node to its owning lane's simulator; legal only while quiescent (node
  // construction schedules nothing).
  void set_simulator(sim::Simulator* simulator);

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  sim::Simulator& simulator() { return *simulator_; }
  int num_ports() const { return static_cast<int>(ports_.size()); }
  Port& port(int i) { return *ports_[i]; }
  const Port& port(int i) const { return *ports_[i]; }

  // Invariant-monitor hooks (check::MonitorRegistry::AttachTo). Null by
  // default; the installer must keep the hooks alive for the node's whole
  // simulation (they are consulted on every enqueue/dequeue).
  void set_check_hooks(check::NetHooks* hooks) { check_hooks_ = hooks; }
  check::NetHooks* check_hooks() const { return check_hooks_; }

 protected:
  sim::Simulator* simulator_;
  uint32_t id_;
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
  check::NetHooks* check_hooks_ = nullptr;
  // Applied to every port this node receives (AddPort). Host and switch
  // constructors set it from their config before the topology wires links.
  bool ports_fast_path_ = true;

 private:
  struct CorruptWindow {
    sim::TimePs start = 0;
    sim::TimePs end = 0;
    uint64_t threshold = 0;  // drop when SplitMix64(seed + counter) < this
    uint64_t seed = 0;
    uint64_t counter = 0;
  };
  struct CorruptState {
    // Indexed by in-port; each port may carry several windows.
    std::vector<std::vector<CorruptWindow>> by_port;
  };
  // Cold path of Deliver: true = the packet was counted, reported through
  // OnDrop(kCorrupt) and must not reach Receive.
  bool CorruptDrop(const Packet& pkt, int in_port);

  // Null unless a scenario installed `corrupt` windows on this node.
  std::unique_ptr<CorruptState> corrupt_;
  uint64_t corrupt_dropped_packets_ = 0;
  uint64_t corrupt_dropped_bytes_ = 0;
};

}  // namespace hpcc::net
