// WRED/ECN marking, the congestion signal of DCQCN and DCTCP (§2.3).
//
// Marking probability ramps linearly from 0 at Kmin to Pmax at Kmax, and is 1
// above Kmax (RED on instantaneous queue length, as DCQCN configures).
// Thresholds are specified at a reference port speed and scaled linearly with
// the egress bandwidth, matching §5.1 ("we scale the ECN marking threshold
// proportional to the link bandwidth").
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/rng.h"

namespace hpcc::net {

struct RedConfig {
  bool enabled = false;
  double kmin_bytes = 0;   // at ref_bps
  double kmax_bytes = 0;   // at ref_bps
  double pmax = 0.2;
  int64_t ref_bps = 25'000'000'000;  // 25 Gbps reference

  static RedConfig Dcqcn(double kmin_kb = 100, double kmax_kb = 400,
                         double pmax = 0.2) {
    return RedConfig{true, kmin_kb * 1000, kmax_kb * 1000, pmax,
                     25'000'000'000};
  }
  static RedConfig Dctcp(double k_kb = 30) {
    // DCTCP uses a step mark: Kmin = Kmax (§5.1), threshold at 10G reference.
    return RedConfig{true, k_kb * 1000, k_kb * 1000, 1.0, 10'000'000'000};
  }

  double ScaledKmin(int64_t port_bps) const {
    return kmin_bytes * static_cast<double>(port_bps) / ref_bps;
  }
  double ScaledKmax(int64_t port_bps) const {
    return kmax_bytes * static_cast<double>(port_bps) / ref_bps;
  }

  // Decide whether to CE-mark a packet that sees `qlen_bytes` in the egress
  // queue of a `port_bps` port.
  bool ShouldMark(int64_t qlen_bytes, int64_t port_bps, sim::Rng& rng) const {
    if (!enabled) return false;
    const double kmin = ScaledKmin(port_bps);
    const double kmax = ScaledKmax(port_bps);
    const double q = static_cast<double>(qlen_bytes);
    if (q <= kmin) return false;
    if (q >= kmax) return true;
    const double p = pmax * (q - kmin) / std::max(1.0, kmax - kmin);
    return rng.Uniform() < p;
  }
};

}  // namespace hpcc::net
