#include "net/shared_buffer.h"

#include <cassert>

namespace hpcc::net {

SharedBuffer::SharedBuffer(int64_t capacity_bytes, int num_ports)
    : capacity_(capacity_bytes),
      ingress_(static_cast<size_t>(num_ports),
               std::array<int64_t, kNumPriorities>{}) {
  assert(capacity_bytes > 0);
}

void SharedBuffer::Admit(int in_port, int priority, int64_t bytes) {
  used_ += bytes;
  assert(used_ <= capacity_);
  ingress_[in_port][priority] += bytes;
}

void SharedBuffer::Release(int in_port, int priority, int64_t bytes) {
  used_ -= bytes;
  ingress_[in_port][priority] -= bytes;
  assert(used_ >= 0);
  assert(ingress_[in_port][priority] >= 0);
}

}  // namespace hpcc::net
