// Switch shared-buffer accounting with per-ingress PFC thresholds.
//
// All egress queues of a switch draw from one shared memory pool (32 MB in
// §5.1). PFC accounting is per ingress port and priority: when the bytes
// buffered that arrived through an ingress port exceed a dynamic threshold —
// a fraction of the *free* buffer (11 % per §5.1) — the switch sends a PAUSE
// upstream; it resumes (with hysteresis) once the occupancy falls back below.
// In lossy mode (Fig. 12 GBN/IRN without PFC) admission instead applies a
// dynamic egress threshold with alpha = 1 (footnote 6).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace hpcc::net {

class SharedBuffer {
 public:
  SharedBuffer(int64_t capacity_bytes, int num_ports);

  // Pure capacity check (tail drop when the pool is exhausted).
  bool CanAdmit(int64_t bytes) const { return used_ + bytes <= capacity_; }
  void Admit(int in_port, int priority, int64_t bytes);
  void Release(int in_port, int priority, int64_t bytes);

  int64_t used_bytes() const { return used_; }
  int64_t free_bytes() const { return capacity_ - used_; }
  int64_t capacity() const { return capacity_; }
  int64_t ingress_bytes(int in_port, int priority) const {
    return ingress_[in_port][priority];
  }

  // Dynamic PFC threshold for the current occupancy.
  int64_t PfcThreshold(double alpha) const {
    return static_cast<int64_t>(alpha * static_cast<double>(free_bytes()));
  }
  bool ShouldPause(int in_port, int priority, double alpha) const {
    return ingress_[in_port][priority] > PfcThreshold(alpha);
  }
  bool ShouldResume(int in_port, int priority, double alpha,
                    double hysteresis) const {
    return ingress_[in_port][priority] <
           static_cast<int64_t>(hysteresis *
                                static_cast<double>(PfcThreshold(alpha)));
  }

 private:
  int64_t capacity_;
  int64_t used_ = 0;
  std::vector<std::array<int64_t, kNumPriorities>> ingress_;
};

}  // namespace hpcc::net
