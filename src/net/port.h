// Egress port: the transmit side of one direction of a point-to-point link.
//
// A port owns its per-priority egress queues, the serialization state machine
// (one packet on the wire at a time), the PFC pause flags, and the cumulative
// txBytes counter that feeds INT. Switch ports additionally stamp the INT hop
// record at dequeue — the exact semantics of Fig. 5: the record describes the
// queue the packet leaves behind at emission time.
//
// Two transmit engines share this state:
//
//  - The reference engine (fast_path off) is the original per-packet state
//    machine: every packet costs one tx-complete event (busy_ flip + next
//    dequeue) plus one arrival event at the peer.
//
//  - The fast-path engine replaces per-packet tx-completes with transmission
//    trains. When the port can transmit, it commits up to
//    Node::MaxTrainPackets() back-to-back packets in one step: per-packet
//    emission times are computed arithmetically (t_{i+1} = t_i + ser_i), all
//    arrival events are scheduled immediately, and at most ONE train-
//    completion event marks the end of the burst — none at all for a switch
//    port whose queue drained, in which case forwarding a packet through the
//    port costs zero extra events beyond its arrival.
//
//    Emission work (queue removal, txBytes, INT stamp, buffer release, the
//    OnDequeue hook) for packets whose emission time is still in the future
//    is deferred and settled lazily — see SettleDue. Every state observer
//    (queue_bytes, tx_bytes, enqueue, pause/link changes, switch receive,
//    delivery) settles first, so all observed values are byte-identical to
//    the reference engine; the determinism suite in tests/fastpath_test.cc
//    pins `TraceHash` and scenario CSV equality across both engines. When an
//    interaction mid-train could change what the reference engine would have
//    transmitted (pause state change, link failure, a higher-priority
//    enqueue, a PFC pause sent by the owning switch), the unemitted tail of
//    the train is aborted: its arrival events are cancelled (O(1) each) and
//    its packets return to the head of their queues, which restores exact
//    reference state.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "check/hooks.h"
#include "net/handoff.h"
#include "net/queue.h"
#include "net/ring.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace hpcc::net {

class Node;

// Pause bookkeeping callback (wired to stats::PfcMonitor).
struct PauseObserver {
  std::function<void(uint32_t node_id, int port, int prio, sim::TimePs now,
                     bool paused)>
      on_change;
};

class Port {
 public:
  Port(Node* owner, int index, int64_t bandwidth_bps,
       sim::TimePs propagation_delay);

  // Wires the far end; called by Topology.
  void ConnectTo(Node* peer, int peer_port_index) {
    peer_ = peer;
    peer_port_ = peer_port_index;
  }

  // Queues a packet for transmission and kicks the transmitter.
  void Enqueue(PacketPtr pkt);
  // Starts transmission if idle and an eligible packet exists; otherwise, if
  // fully drained, asks the owner for more via Node::OnPortIdle.
  void TryTransmit();

  // PFC pause state for this egress direction (set when the *peer* sends a
  // pause frame that arrives at the owning node through this port).
  void SetPaused(int priority, bool paused, sim::TimePs now);
  bool paused(int priority) const { return paused_[priority]; }

  // Link failure: a down port transmits nothing (queued packets freeze until
  // repair; packets already serialized onto the wire still arrive).
  void SetLinkUp(bool up);
  bool link_up() const { return link_up_; }

  // INT stamping (switch egress only). `wire_format` quantizes the stamped
  // fields to the Fig. 7 bit widths, wrapping like the hardware counters.
  void EnableIntStamping(uint32_t switch_id, bool wire_format = false) {
    stamp_int_ = true;
    int_switch_id_ = switch_id;
    int_wire_format_ = wire_format;
  }

  // --- Hybrid fluid coupling (analytic/fluid_region.h) -------------------
  // Virtual background state injected by the fluid engine at its RTT ticks.
  // Stamped INT records report the *sum* of real and fluid state: the fluid
  // queue is added to the stamped qLen (clamped to `qlen_cap_bytes`, the
  // switch buffer bound the IntSanityMonitor enforces; 0 = no cap), and a
  // virtual fluid byte counter is added to the stamped txBytes. The counter
  // advances at `rate_Bps` between ticks and is re-based continuously at
  // each update (new base = interpolated value at update time), so the sum
  // stays monotone however rates change. Real queues, PFC and scheduling
  // are untouched: fluid flows occupy bandwidth only in the eyes of
  // INT-reading congestion control.
  //
  // Determinism contract: the fluid engine must read this port's tx_bytes()
  // (which settles due fast-path train items) *before* calling this in the
  // same tick event, so every packet emitted at or before the tick instant
  // is stamped with the pre-tick fluid state under both transmit engines.
  void SetFluidState(int64_t qlen_bytes, int64_t rate_Bps,
                     int64_t qlen_cap_bytes);
  bool has_fluid_state() const { return fluid_active_; }
  // Virtual fluid byte counter at time `t` (monotone in t).
  uint64_t FluidTxAt(sim::TimePs t) const;

  void set_pause_observer(const PauseObserver* obs) { pause_observer_ = obs; }

  // Selects the transmit engine; flipped only while the port is quiescent
  // (Node::AddPort, SwitchNode::FinishSetup).
  void set_fast_path(bool on) { fast_path_ = on; }
  bool fast_path() const { return fast_path_; }

  // Re-homes the port onto another event arena (sharded runs; see
  // Node::set_simulator). Only while quiescent.
  void set_simulator(sim::Simulator* simulator) { simulator_ = simulator; }

  // Marks this egress as a shard boundary: committed arrivals go into the
  // channel (consumed and rescheduled by the peer's lane) instead of this
  // lane's simulator. Handoff ports always transmit on the single-packet
  // path — committed handoff records are final, never retracted, so the
  // cancellable burst-train tail must never form here.
  void set_handoff(HandoffChannel* channel) { handoff_ = channel; }

  // Performs the emission work of every train item whose emission time has
  // arrived. Cheap no-op when nothing is due; called from every observer of
  // port/queue state so deferred work is never visible. An item emitting at
  // exactly now() settles only once the executing event has passed the
  // reference engine's boundary position (same-timestamp arrivals observe it
  // still queued, exactly as they would under per-packet transmission).
  void SettleDue() {
    if (next_unsettled_emit_ <= SimNow()) SettleDueSlow(false);
  }
  // True while the train holds packets whose emission has not started yet.
  bool has_unsettled() const { return settled_in_train_ < train_.size(); }
  // Cancels the unemitted tail of the train and returns its packets to the
  // head of their queues (exact reference state). Settles due work first.
  void AbortUnemitted();

  int64_t bandwidth_bps() const { return bandwidth_bps_; }
  sim::TimePs propagation_delay() const { return propagation_delay_; }
  // End of the serialization currently on the wire — reference-engine
  // semantics, identical under both transmit engines (the host pacing logic
  // keys wake decisions off it). During a committed multi-packet train this
  // is the emitting item's end, not the train end.
  sim::TimePs free_at() const {
    const_cast<Port*>(this)->SettleDue();
    // Unemitted items pending: the wire is serializing the last settled item
    // (its end is the next emission boundary). Otherwise the newest
    // commitment ends at busy_until_.
    if (has_unsettled()) return train_[settled_in_train_ - 1].end;
    return busy_until_;
  }
  uint64_t tx_bytes() const {
    const_cast<Port*>(this)->SettleDue();
    return tx_bytes_;
  }
  // Trains whose unemitted tail was rewound (PAUSE/link-down mid-train).
  // Fast-path only, so engine-dependent: telemetry reports it under the
  // opt-in "profile" manifest section, never in deterministic output.
  uint64_t train_aborts() const { return train_aborts_; }
  int64_t queue_bytes(int priority) const {
    const_cast<Port*>(this)->SettleDue();
    return queues_.bytes(priority) + unsettled_bytes_[priority];
  }
  int64_t total_queue_bytes() const {
    const_cast<Port*>(this)->SettleDue();
    int64_t t = queues_.total_bytes();
    for (int64_t b : unsettled_bytes_) t += b;
    return t;
  }
  bool busy() const { return fast_path_ ? SimNow() < busy_until_ : busy_; }
  int index() const { return index_; }
  Node* peer() const { return peer_; }
  int peer_port() const { return peer_port_; }
  // Total time this egress direction spent paused (data priority).
  sim::TimePs total_paused_time(sim::TimePs now) const;

  // --- Warm checkpoint/restore (runner/experiment.h) ---------------------
  // Cumulative counters a checkpoint must carry: txBytes feeds the INT hop
  // records (wire-format wrapping depends on the absolute count), the others
  // are reporting totals. Captured only while the port is quiescent (empty
  // queues, no train, not paused), so the transient serialization state
  // (busy_until_, pause_started_) needs no restore: every comparison against
  // it is already decided at any post-checkpoint time.
  struct WarmCounters {
    uint64_t tx_bytes = 0;
    uint64_t train_aborts = 0;
    sim::TimePs total_paused = 0;
  };
  WarmCounters CaptureWarm() const {
    return {tx_bytes(), train_aborts(), total_paused_};
  }
  void RestoreWarm(const WarmCounters& w) {
    tx_bytes_ = w.tx_bytes;
    train_aborts_ = w.train_aborts;
    total_paused_ = w.total_paused;
  }

 private:
  static constexpr sim::TimePs kNever = std::numeric_limits<sim::TimePs>::max();

  // One committed transmission: the packet, its arithmetic emission window
  // [emit, end), and the already-scheduled arrival event at the peer.
  struct TrainItem {
    PacketPtr pkt;
    sim::TimePs emit = 0;
    sim::TimePs end = 0;
    sim::EventId arrival = sim::kInvalidEvent;
    int8_t prio = 0;
  };

  sim::TimePs SimNow() const;

  // Reference engine.
  void StartTransmission(PacketPtr pkt);

  // Fast-path engine.
  void EnqueueFast(PacketPtr pkt);
  void TryTransmitFast();
  void FormTrain(sim::TimePs now);
  // `force_now` settles items emitting at exactly now() regardless of the
  // executing event's class — used by FormTrain for the item it just
  // started emitting at the current (reference-aligned) position.
  void SettleDueSlow(bool force_now);
  void DeliverFront();
  void EnsureCompletionEvent();
  // Globally unique link identifier for keyed event scheduling.
  uint32_t link_uid() const {
    return (owner_id_ << 8) | static_cast<uint32_t>(index_);
  }
  // Commits one serialized packet: schedules its arrival at the peer, or —
  // on a shard-boundary port — pushes the final handoff record instead.
  void CommitArrival(PacketPtr pkt, sim::TimePs emit, sim::TimePs ser);
  // Emission work shared by both engines: owner hook, txBytes, INT stamp.
  // `queue_bytes_behind` is the data-priority occupancy left behind.
  void EmitPacket(Packet& pkt, sim::TimePs emit_time,
                  int64_t queue_bytes_behind);

  Node* owner_;
  sim::Simulator* simulator_;
  uint32_t owner_id_;
  int index_;
  int64_t bandwidth_bps_;
  sim::TimePs propagation_delay_;
  Node* peer_ = nullptr;
  int peer_port_ = -1;
  bool owner_is_switch_ = false;
  bool fast_path_ = true;

  PriorityQueues queues_;
  std::array<bool, kNumPriorities> paused_{};
  bool busy_ = false;  // reference engine only
  bool link_up_ = true;
  uint64_t tx_bytes_ = 0;
  uint64_t train_aborts_ = 0;

  // Fast-path train state. Items [0, settled_in_train_) have had their
  // emission work performed; the rest are committed but unemitted.
  // `unsettled_bytes_` is their per-priority byte sum: logically those
  // packets are still queued (queue_bytes adds them back), physically they
  // live here so formation touched each packet exactly once.
  sim::TimePs busy_until_ = 0;
  sim::TimePs next_unsettled_emit_ = kNever;
  Ring<TrainItem> train_;
  size_t settled_in_train_ = 0;
  std::array<int64_t, kNumPriorities> unsettled_bytes_{};
  sim::EventId completion_event_ = sim::kInvalidEvent;
  bool settling_ = false;  // reentrancy guard (see SettleDueSlow)
  std::vector<check::DequeueRecord> burst_records_;

  bool stamp_int_ = false;
  uint32_t int_switch_id_ = 0;
  bool int_wire_format_ = false;

  // Hybrid fluid coupling state (see SetFluidState).
  bool fluid_active_ = false;
  int64_t fluid_qlen_ = 0;
  int64_t fluid_rate_Bps_ = 0;
  int64_t fluid_qlen_cap_ = 0;
  uint64_t fluid_tx_base_ = 0;
  sim::TimePs fluid_tick_start_ = 0;

  const PauseObserver* pause_observer_ = nullptr;
  sim::TimePs pause_started_ = 0;
  sim::TimePs total_paused_ = 0;

  HandoffChannel* handoff_ = nullptr;  // non-null on shard-boundary egress
};

inline sim::TimePs Port::SimNow() const { return simulator_->now(); }

}  // namespace hpcc::net
