// Egress port: the transmit side of one direction of a point-to-point link.
//
// A port owns its per-priority egress queues, the serialization state machine
// (one packet on the wire at a time), the PFC pause flags, and the cumulative
// txBytes counter that feeds INT. Switch ports additionally stamp the INT hop
// record at dequeue — the exact semantics of Fig. 5: the record describes the
// queue the packet leaves behind at emission time.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "net/queue.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace hpcc::net {

class Node;

// Pause bookkeeping callback (wired to stats::PfcMonitor).
struct PauseObserver {
  std::function<void(uint32_t node_id, int port, int prio, sim::TimePs now,
                     bool paused)>
      on_change;
};

class Port {
 public:
  Port(Node* owner, int index, int64_t bandwidth_bps,
       sim::TimePs propagation_delay);

  // Wires the far end; called by Topology.
  void ConnectTo(Node* peer, int peer_port_index) {
    peer_ = peer;
    peer_port_ = peer_port_index;
  }

  // Queues a packet for transmission and kicks the transmitter.
  void Enqueue(PacketPtr pkt);
  // Starts transmission if idle and an eligible packet exists; otherwise, if
  // fully drained, asks the owner for more via Node::OnPortIdle.
  void TryTransmit();

  // PFC pause state for this egress direction (set when the *peer* sends a
  // pause frame that arrives at the owning node through this port).
  void SetPaused(int priority, bool paused, sim::TimePs now);
  bool paused(int priority) const { return paused_[priority]; }

  // Link failure: a down port transmits nothing (queued packets freeze until
  // repair; packets already serialized onto the wire still arrive).
  void SetLinkUp(bool up);
  bool link_up() const { return link_up_; }

  // INT stamping (switch egress only). `wire_format` quantizes the stamped
  // fields to the Fig. 7 bit widths, wrapping like the hardware counters.
  void EnableIntStamping(uint32_t switch_id, bool wire_format = false) {
    stamp_int_ = true;
    int_switch_id_ = switch_id;
    int_wire_format_ = wire_format;
  }

  void set_pause_observer(const PauseObserver* obs) { pause_observer_ = obs; }

  int64_t bandwidth_bps() const { return bandwidth_bps_; }
  sim::TimePs propagation_delay() const { return propagation_delay_; }
  uint64_t tx_bytes() const { return tx_bytes_; }
  int64_t queue_bytes(int priority) const { return queues_.bytes(priority); }
  int64_t total_queue_bytes() const { return queues_.total_bytes(); }
  bool busy() const { return busy_; }
  int index() const { return index_; }
  Node* peer() const { return peer_; }
  int peer_port() const { return peer_port_; }
  // Total time this egress direction spent paused (data priority).
  sim::TimePs total_paused_time(sim::TimePs now) const;

 private:
  void StartTransmission(PacketPtr pkt);

  Node* owner_;
  int index_;
  int64_t bandwidth_bps_;
  sim::TimePs propagation_delay_;
  Node* peer_ = nullptr;
  int peer_port_ = -1;

  PriorityQueues queues_;
  std::array<bool, kNumPriorities> paused_{};
  bool busy_ = false;
  bool link_up_ = true;
  uint64_t tx_bytes_ = 0;

  bool stamp_int_ = false;
  uint32_t int_switch_id_ = 0;
  bool int_wire_format_ = false;

  const PauseObserver* pause_observer_ = nullptr;
  sim::TimePs pause_started_ = 0;
  sim::TimePs total_paused_ = 0;
};

}  // namespace hpcc::net
