// Output-queued shared-buffer switch with ECMP, WRED/ECN, PFC and INT.
//
// Pipeline per received data packet (§3.1 / §4.1):
//   route (ECMP hash) -> shared-buffer admission (tail drop, or dynamic
//   egress threshold in lossy mode) -> WRED/ECN mark -> egress enqueue ->
//   per-ingress PFC threshold check (maybe PAUSE upstream).
// At dequeue the egress port stamps the INT hop record and the buffer is
// released, possibly sending RESUME upstream.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ecn.h"
#include "net/nexthop.h"
#include "net/node.h"
#include "net/port.h"
#include "net/shared_buffer.h"
#include "sim/rng.h"

namespace hpcc::net {

struct SwitchConfig {
  int64_t buffer_bytes = 32LL * 1024 * 1024;  // 32 MB (§5.1)

  bool pfc_enabled = true;
  double pfc_alpha = 0.11;          // pause above 11 % of free buffer (§5.1)
  double pfc_resume_ratio = 0.85;   // hysteresis for RESUME

  RedConfig red;                    // ECN marking (disabled by default)

  // Lossy mode (Fig. 12 footnote 6): per-egress dynamic drop threshold
  // `egress_alpha * free_bytes`; only used when pfc_enabled == false.
  double egress_alpha = 1.0;

  // Transmission-train fast path on the egress ports (see net/port.h).
  // Disabled automatically when RCP is enabled: the RCP controller samples
  // time-dependent state at every dequeue, which deferred emission would
  // skew. `--fastpath=off` at the CLI/scenario level clears it everywhere.
  bool fast_path = true;

  bool int_enabled = true;          // stamp INT on data packets that ask
  // Hardware-faithful INT: quantize/wrap the stamped fields to the Fig. 7
  // wire widths (24-bit ns timestamp, 20-bit 128B tx counter, 16-bit 80B
  // queue length). Senders must then use wrap-safe deltas
  // (HpccParams::wire_format).
  bool int_wire_format = false;

  // RCP (§3.4/§6 baseline): switches compute a per-port fair rate and stamp
  // min(R) into data packets. Needs an RTT estimate `rcp_rtt` (set by the
  // runner from the measured base RTT).
  bool rcp_enabled = false;
  double rcp_alpha = 0.4;
  double rcp_beta = 0.226;
  sim::TimePs rcp_rtt = sim::Us(13);
};

class SwitchNode : public Node {
 public:
  SwitchNode(sim::Simulator* simulator, uint32_t id, std::string name,
             const SwitchConfig& config);

  void Receive(PacketPtr pkt, int in_port) override;
  bool IsSwitch() const override { return true; }
  void OnPortDequeue(Packet& pkt, int port_index) override;

  // Fast-path policy: multi-packet trains are allowed only while no PFC
  // pause is outstanding from this switch, so a deferred buffer release can
  // never delay a RESUME (emission work of a single-packet train runs
  // synchronously at its emission instant, like the reference engine).
  int MaxTrainPackets() const override {
    return pause_out_ == 0 ? kMaxTrainPackets : 1;
  }
  void OnTrainPending(int port_index) override;

  // Routing: interned ECMP next-hop groups, dst node id -> shared port set
  // (see net/nexthop.h). Topology owns the contents: it resets/rebuilds the
  // table in RecomputeRoutes and patches single groups during incremental
  // link-event repair.
  //
  // Copy-on-write: the read view may alias an immutable fabric-snapshot
  // table shared across sweep jobs (AdoptRouteView). Readers always go
  // through routes(); the first mutation must go through mutable_routes(),
  // which detaches this switch onto a private copy — link-event scripts
  // fork only the switches they actually touch.
  const NextHopTable& routes() const { return *route_view_; }
  // Detaches from a shared view (copying it unless `preserve` is false —
  // callers about to Reset skip the copy) and returns the private table.
  NextHopTable& mutable_routes(bool preserve = true) {
    if (route_view_ != &routes_) {
      if (preserve) routes_ = *route_view_;
      route_view_ = &routes_;
    }
    return routes_;
  }
  // Points the read view at an externally-owned immutable table (the caller
  // guarantees it outlives this switch or is replaced first).
  void AdoptRouteView(const NextHopTable* shared) { route_view_ = shared; }
  bool routes_shared() const { return route_view_ != &routes_; }
  // Convenience for tests/benches that wire a switch by hand: installs one
  // candidate list per destination node id (index = dst).
  void SetRoutes(const std::vector<std::vector<uint16_t>>& routes);
  // ECMP egress port for pkt.dst, or -1 when there is no route — including
  // an out-of-range dst, which is a checked (hook-visible kNoRoute) drop
  // rather than undefined behavior on a corrupt packet.
  int RoutePort(const Packet& pkt) const;

  // Called by Topology after ports are wired.
  void FinishSetup();

  const SwitchConfig& config() const { return config_; }
  SharedBuffer& buffer() { return buffer_; }
  // Runner calls this after measuring the fabric's base RTT.
  void set_rcp_rtt(sim::TimePs rtt) { config_.rcp_rtt = rtt; }
  // Current RCP fair rate of a port (tests).
  int64_t rcp_rate(int port) const {
    return static_cast<int64_t>(rcp_[port].rate);
  }
  uint64_t dropped_packets() const { return dropped_packets_; }
  uint64_t dropped_bytes() const { return dropped_bytes_; }
  // Per-reason breakdown; sums to dropped_packets().
  uint64_t dropped_by_reason(check::DropReason reason) const {
    return dropped_by_reason_[static_cast<int>(reason)];
  }
  uint64_t forwarded_packets() const { return forwarded_packets_; }

  // RCP per-egress-port controller state (public so warm checkpoints can
  // carry it).
  struct RcpState {
    double rate = 0;
    sim::TimePs last_update = 0;
    int64_t rx_bytes = 0;  // data bytes admitted toward this port
  };

  // --- Warm checkpoint/restore (runner/experiment.h) ---------------------
  // Per-switch mutable state that survives a quiescent instant: the WRED
  // marking RNG (shared across all packets this switch marks), the RCP
  // controller state, and the drop/forward counters. Buffer occupancy,
  // pause bookkeeping and train state are all empty at a checkpoint (the
  // quiescence check guarantees it), so they restore to their initial
  // values for free.
  struct WarmState {
    sim::Rng rng;
    std::vector<RcpState> rcp;
    uint64_t dropped_packets = 0;
    uint64_t dropped_bytes = 0;
    uint64_t dropped_by_reason[check::kNumDropReasons] = {};
    uint64_t forwarded_packets = 0;
  };
  WarmState CaptureWarm() const {
    WarmState w;
    w.rng = rng_;
    w.rcp = rcp_;
    w.dropped_packets = dropped_packets_;
    w.dropped_bytes = dropped_bytes_;
    for (int i = 0; i < check::kNumDropReasons; ++i) {
      w.dropped_by_reason[i] = dropped_by_reason_[i];
    }
    w.forwarded_packets = forwarded_packets_;
    return w;
  }
  void RestoreWarm(const WarmState& w) {
    rng_ = w.rng;
    rcp_ = w.rcp;
    dropped_packets_ = w.dropped_packets;
    dropped_bytes_ = w.dropped_bytes;
    for (int i = 0; i < check::kNumDropReasons; ++i) {
      dropped_by_reason_[i] = w.dropped_by_reason[i];
    }
    forwarded_packets_ = w.forwarded_packets;
  }

 private:
  void AdmitAndForward(PacketPtr pkt, int in_port, int out_port);
  void CheckPause(int in_port, int priority);
  void CheckResume(int in_port, int priority);
  void SendPfc(int in_port, int priority, bool pause);

  void MaybeUpdateRcp(int port_index);

  // Settles every port holding deferred train emissions so shared-buffer and
  // queue reads observe exact reference state; called on every Receive.
  void SettleTrains();
  // Rewinds the unemitted tail of every active train (first PFC pause sent).
  void AbortTrains();

  SwitchConfig config_;
  SharedBuffer buffer_;
  sim::Rng rng_;
  NextHopTable routes_;
  // Read view: &routes_ (private) or a shared snapshot table (COW).
  const NextHopTable* route_view_ = &routes_;
  std::vector<RcpState> rcp_;
  // Whether we have an outstanding PAUSE toward each (ingress port, prio).
  std::vector<std::array<bool, kNumPriorities>> pause_sent_;
  int pause_out_ = 0;  // count of outstanding PAUSEs across all (port, prio)
  // Ports with unemitted train items (deferred emission work), plus a
  // per-port membership flag so the list stays duplicate-free.
  std::vector<uint16_t> train_pending_;
  std::vector<uint8_t> train_pending_flag_;

  uint64_t dropped_packets_ = 0;
  uint64_t dropped_bytes_ = 0;
  uint64_t dropped_by_reason_[check::kNumDropReasons] = {};
  uint64_t forwarded_packets_ = 0;
};

}  // namespace hpcc::net
