// Growable power-of-two ring buffer, the FIFO under the egress queues and
// the port transmission trains.
//
// std::deque pays a chunk-map indirection on every front/back touch and
// allocates per chunk; the forwarding loop pushes and pops one packet at a
// time, so the queue working set is a handful of entries that should stay in
// one contiguous (and usually L1-resident) array. push_front exists for the
// train-abort path, which returns unemitted packets to the head of their
// queue in reverse order.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace hpcc::net {

template <typename T>
class Ring {
 public:
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  T& front() {
    assert(size_ > 0);
    return buf_[head_];
  }
  T& back() {
    assert(size_ > 0);
    return buf_[Index(size_ - 1)];
  }
  // i counts from the front (0 = next to pop).
  T& operator[](size_t i) {
    assert(i < size_);
    return buf_[Index(i)];
  }
  const T& operator[](size_t i) const {
    return const_cast<Ring*>(this)->operator[](i);
  }

  void push_back(T v) {
    if (size_ == buf_.size()) Grow();
    buf_[Index(size_)] = std::move(v);
    ++size_;
  }

  void push_front(T v) {
    if (size_ == buf_.size()) Grow();
    head_ = (head_ + buf_.size() - 1) & (buf_.size() - 1);
    buf_[head_] = std::move(v);
    ++size_;
  }

  T pop_front() {
    assert(size_ > 0);
    T v = std::move(buf_[head_]);
    buf_[head_] = T{};  // drop any owned resource now, not at overwrite time
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
    return v;
  }

  T pop_back() {
    assert(size_ > 0);
    T v = std::move(buf_[Index(size_ - 1)]);
    buf_[Index(size_ - 1)] = T{};
    --size_;
    return v;
  }

 private:
  size_t Index(size_t i) const { return (head_ + i) & (buf_.size() - 1); }

  void Grow() {
    const size_t n = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(n);
    for (size_t i = 0; i < size_; ++i) next[i] = std::move(buf_[Index(i)]);
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace hpcc::net
