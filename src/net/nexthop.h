// Interned ECMP next-hop groups: the routing table of one switch.
//
// The dense per-switch representation (one std::vector<uint16_t> of candidate
// ports per destination) costs O(num_nodes) vector headers per switch and
// O(nodes^2) across the fabric. In a structured fat-tree almost every
// destination behind the same pod shares the same ECMP port set, so the table
// stores each distinct ordered port list once ("group") and maps
// dst -> group id through a flat uint32_t array:
//
//   dst_group_[dst] --> groups_[gid] --> ports_[offset .. offset+size)
//
// Group 0 is the interned empty group ("no route"); a fresh table routes
// nothing. Candidate order inside a group is preserved exactly as handed to
// SetRoute (ascending port index, the order Topology's BFS emits), so ECMP
// hashing (`SplitMix64(flow) % size`) picks byte-identical ports to the dense
// table it replaced.
//
// Groups are reference-counted: SetRoute/AddPort/RemovePort re-intern and
// move the refs; dead groups go to a free list and their port storage is
// compacted once more than half of it is garbage. All mutations are
// deterministic functions of the call sequence, so two identical runs build
// identical tables. Lookup() is the forwarding hot path — two dependent loads
// past the dst array; everything else is control-plane-only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpcc::net {

class NextHopTable {
 public:
  static constexpr uint32_t kNoGroup = 0;  // the interned empty group

  NextHopTable() { InitEmptyGroup(); }

  // Drops every route and group and resizes the destination map; all
  // destinations route nowhere until SetRoute is called.
  void Reset(uint32_t num_dsts);

  // Interns `ports[0..count)` (must be strictly ascending) and points `dst`
  // at the resulting group. count == 0 maps dst back to the empty group.
  void SetRoute(uint32_t dst, const uint16_t* ports, uint32_t count);

  // Interns an ordered port list once; AssignGroup points destinations at it.
  // This is the bulk path RecomputeRoutes uses when thousands of hosts behind
  // one ToR share a port set: one intern, O(1) per destination. The caller
  // must assign every interned group at least once (a zero-ref group would
  // linger in the index until the next Reset) and `ports` must not point
  // into this table's own storage (interning may reallocate it).
  uint32_t InternGroup(const uint16_t* ports, uint32_t count);
  void AssignGroup(uint32_t dst, uint32_t gid);

  // Incremental repair: inserts/removes one port from dst's candidate list
  // (keeping ascending order) by re-interning the patched list.
  void AddPort(uint32_t dst, uint16_t port);
  void RemovePort(uint32_t dst, uint16_t port);

  // Hot path: the candidate port list for dst. size == 0 means no route.
  struct Group {
    const uint16_t* ports;
    uint32_t size;
  };
  Group Lookup(uint32_t dst) const {
    const Meta& m = groups_[dst_group_[dst]];
    return Group{ports_.data() + m.offset, m.size};
  }
  uint32_t group_id(uint32_t dst) const { return dst_group_[dst]; }

  uint32_t num_dsts() const { return static_cast<uint32_t>(dst_group_.size()); }
  // Live (referenced) groups, excluding the always-present empty group.
  size_t num_groups() const { return live_groups_; }
  // Bytes resident in the table proper (dst map + group metadata + port
  // storage + intern index). The figure the memory benchmarks report.
  size_t resident_bytes() const;
  // Sum over destinations of their candidate-list length: the port-entry
  // count a dense per-destination table would store. resident_bytes() vs
  // (this * sizeof(vector) overhead) is the compression headline.
  size_t expanded_port_entries() const;

  // Copy of dst's candidate list (tests and the route oracle).
  std::vector<uint16_t> PortsOf(uint32_t dst) const;

  // Internal-invariant audit for tests: refcounts match dst references,
  // groups are ascending and deduplicated. Returns false on corruption.
  bool CheckConsistency() const;

 private:
  struct Meta {
    uint32_t offset = 0;
    uint32_t size = 0;
    uint32_t refs = 0;
    uint64_t hash = 0;
  };

  void InitEmptyGroup();
  static uint64_t HashPorts(const uint16_t* ports, uint32_t count);
  bool GroupEquals(uint32_t gid, const uint16_t* ports, uint32_t count) const;
  void ReleaseGroup(uint32_t gid);
  void MaybeCompact();

  std::vector<uint32_t> dst_group_;
  std::vector<uint16_t> ports_;      // group port storage, append-only
  std::vector<Meta> groups_;         // gid -> meta; slot 0 = empty group
  // Open-addressing intern index: hash -> gid chains, rebuilt on growth.
  std::vector<uint32_t> index_;      // power-of-two; kEmptySlot when free
  static constexpr uint32_t kEmptySlot = 0xffffffffu;
  std::vector<uint32_t> free_gids_;  // dead group slots for reuse
  size_t live_groups_ = 0;
  size_t dead_port_slots_ = 0;
  size_t index_used_ = 0;

  void IndexInsert(uint32_t gid);
  void IndexErase(uint32_t gid);
  uint32_t IndexFind(uint64_t hash, const uint16_t* ports,
                     uint32_t count) const;
  void IndexGrow();
  std::vector<uint16_t> scratch_;    // patch buffer for Add/RemovePort
};

}  // namespace hpcc::net
