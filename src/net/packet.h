// Packet model shared by hosts and switches.
//
// One struct covers data packets, per-packet ACK/NACK (RoCEv2-style), DCQCN
// CNPs and PFC pause/resume control frames; the `type` discriminates. Sizes
// follow §5.1: 1000 B payload, small fixed headers, plus the INT stack bytes
// for schemes that enable INT.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>

#include "core/int_header.h"
#include "sim/time.h"

namespace hpcc::net {

enum class PacketType : uint8_t {
  kData,
  kAck,
  kNack,         // go-back-N: carries the receiver's expected seq
  kCnp,          // DCQCN congestion notification packet
  kPfcPause,     // 802.1Qbb pause frame for one priority
  kPfcResume,
  kReadRequest,  // RDMA READ: requester asks the responder to start sending
};

inline constexpr int kPayloadBytes = 1000;   // MTU-sized data segment
inline constexpr int kDataHeaderBytes = 48;  // Eth+IP+UDP+IB BTH
inline constexpr int kAckHeaderBytes = 60;   // ACK/NACK/CNP frame
inline constexpr int kPfcFrameBytes = 64;    // MAC control frame

// Priorities: control (ACK/NACK/CNP/PFC) preempts data at egress. The paper
// uses a single data priority queue (§6); PFC acts on the data priority.
inline constexpr int kControlPriority = 0;
inline constexpr int kDataPriority = 1;
inline constexpr int kNumPriorities = 2;

struct Packet {
  PacketType type = PacketType::kData;

  // Flow addressing. Node ids index Topology::nodes.
  uint64_t flow_id = 0;
  uint32_t src = 0;
  uint32_t dst = 0;

  // Data: `seq` is the byte offset of the first payload byte;
  // ACK/NACK: `seq` is the cumulative ack (next expected byte).
  uint64_t seq = 0;
  int payload_bytes = 0;
  int header_bytes = kDataHeaderBytes;

  int priority = kDataPriority;

  // ECN codepoint: transport marks packets ECN-capable; switches set CE under
  // WRED; the receiver echoes CE on the ACK (`ecn_echo`).
  bool ecn_capable = false;
  bool ecn_ce = false;
  bool ecn_echo = false;

  // INT (HPCC): stamped by switches on data packets, copied to the ACK by
  // the receiver. `int_enabled` is set per-flow by the CC scheme.
  bool int_enabled = false;
  core::IntStack int_stack;

  // RCP (the §3.4/§6 explicit-feedback baseline): switches with RCP enabled
  // stamp min(rate along the path); the receiver echoes it on the ACK.
  int64_t rcp_rate_bps = std::numeric_limits<int64_t>::max();

  // IRN selective-repeat support: on a NACK, `sack_seq` identifies the
  // out-of-order segment that *was* received (so only the gap retransmits).
  uint64_t sack_seq = 0;
  bool has_sack = false;
  // Data packets advertise the sender's recovery mode so the receiver
  // responds with matching GBN/IRN semantics.
  bool irn = false;
  // ACK/NACK: payload size of the data packet being acknowledged (IRN's
  // per-packet inflight accounting).
  int acked_payload_bytes = 0;

  // PFC pause/resume: which priority to (un)pause on the receiving port.
  int pause_priority = kDataPriority;

  // Transient, valid only while the packet sits inside one switch: which
  // ingress port admitted it (for per-ingress PFC buffer accounting).
  int buffer_ingress_port = -1;

  // Timestamps for RTT measurement (TIMELY) and FCT accounting.
  sim::TimePs sent_time = 0;      // when the data packet left the sender
  sim::TimePs data_sent_time = 0; // echoed into the ACK by the receiver

  // Total bytes this packet occupies on the wire and in buffers.
  int size_bytes() const { return payload_bytes + header_bytes; }
};

// Free-list packet pool. The per-hop forward path (host egress → switch →
// ACK back) would otherwise malloc/free every packet; instead released
// packets park on a thread-local free list and are recycled by the next
// Make*. Pool rules:
//  - The pool is thread-local: each sweep-runner worker owns an independent
//    free list, so pooling is lock-free and a packet must be released on the
//    thread that acquired it (simulations are single-threaded, so this holds
//    by construction).
//  - Release scrubs the packet back to default state before pooling; a
//    recycled packet is indistinguishable from a freshly constructed one.
//  - The free list only grows on demand (steady state allocates nothing) and
//    is freed at thread exit; tests can force-free it with TrimThreadCache.
class PacketPool {
 public:
  // Returns a default-state packet, recycled when possible.
  static Packet* Acquire();
  // Scrubs `p` and parks it on this thread's free list.
  static void Release(Packet* p) noexcept;

  // Introspection (this thread's pool only; used by tests and benches).
  static size_t free_count() noexcept;        // packets parked in the pool
  static size_t allocated_count() noexcept;   // ever heap-allocated
  static void TrimThreadCache() noexcept;     // frees the parked packets
};

// PacketPtr returns its packet to the pool instead of the heap. Ownership is
// linear along the forwarding path: host → port queue → wire (released raw
// across the in-flight gap, re-wrapped at the peer) → receiver, which either
// consumes the packet (drop/deliver) or reuses it to build the response.
struct PacketDeleter {
  void operator()(Packet* p) const noexcept { PacketPool::Release(p); }
};
using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

// Acquires a pooled default-state packet.
PacketPtr AllocatePacket();

// Factory helpers (defined in packet.cc).
PacketPtr MakeDataPacket(uint64_t flow_id, uint32_t src, uint32_t dst,
                         uint64_t seq, int payload_bytes, bool int_enabled,
                         bool ecn_capable);
PacketPtr MakeAck(const Packet& data, uint64_t cumulative_ack);
PacketPtr MakeNack(const Packet& data, uint64_t expected_seq);
PacketPtr MakeCnp(uint64_t flow_id, uint32_t src, uint32_t dst);
PacketPtr MakePfc(PacketType pause_or_resume, int priority);
// RDMA READ request (§4.2): `requester` asks `responder` to transmit the
// flow registered under `flow_id` back to it.
PacketPtr MakeReadRequest(uint64_t flow_id, uint32_t requester,
                          uint32_t responder);

}  // namespace hpcc::net
