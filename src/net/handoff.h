// SPSC handoff channel carrying committed packet arrivals across shard
// boundaries (one channel per direction of every cut link, owned by the
// consumer lane).
//
// The producer is the boundary port's transmit path: when a packet's
// serialization is committed, it pushes {arrival time, emission time, raw
// packet} instead of scheduling the arrival on its own simulator. The
// consumer lane drains the head at every barrier round start, rescheduling
// each record on its own simulator with the identical
// (at, emission, link_uid) arrival key — so the merged execution order is
// decided by the sim::EventClass tie-break contract, never by thread timing.
//
// Synchronization: per-chunk monotone write cursor published with release,
// read with acquire (plus a release/acquire `next` pointer when a chunk
// fills), so push and pop may run concurrently on two threads with no locks
// and no data races. Records within a channel are pushed in nondecreasing
// arrival order (ports serialize in time order), which is what lets the
// consumer stop at the first head record beyond its round horizon.
#pragma once

#include <atomic>
#include <cstddef>

#include "net/packet.h"
#include "sim/time.h"

namespace hpcc::net {

struct HandoffRecord {
  sim::TimePs at = 0;        // arrival time at the consumer port
  sim::TimePs emission = 0;  // serialization start (arrival tie-break key)
  Packet* pkt = nullptr;     // ownership moves producer -> consumer
};

class HandoffChannel {
 public:
  static constexpr size_t kDefaultChunkCapacity = 256;

  explicit HandoffChannel(size_t chunk_capacity = kDefaultChunkCapacity)
      : capacity_(chunk_capacity < 2 ? 2 : chunk_capacity) {
    head_ = tail_ = new Chunk(capacity_);
  }
  HandoffChannel(const HandoffChannel&) = delete;
  HandoffChannel& operator=(const HandoffChannel&) = delete;

  // Shutdown drain: undelivered packets return to the pool (on the
  // destroying thread's free list — the lanes have joined by then).
  ~HandoffChannel() {
    HandoffRecord r;
    while (Pop(&r)) PacketPool::Release(r.pkt);
    Chunk* c = head_;
    while (c != nullptr) {
      Chunk* next = c->next.load(std::memory_order_relaxed);
      delete c;
      c = next;
    }
  }

  // Producer thread only.
  void Push(const HandoffRecord& r) {
    Chunk* t = tail_;
    const size_t w = t->write.load(std::memory_order_relaxed);
    if (w == capacity_) {
      Chunk* fresh = new Chunk(capacity_);
      fresh->slots[0] = r;
      fresh->write.store(1, std::memory_order_relaxed);
      // Publish the chunk (and its first record) to the consumer.
      t->next.store(fresh, std::memory_order_release);
      tail_ = fresh;
      return;
    }
    t->slots[w] = r;
    t->write.store(w + 1, std::memory_order_release);
  }

  // Consumer thread only: earliest pending arrival time, if any.
  bool PeekArrival(sim::TimePs* at) {
    Chunk* c = Readable();
    if (c == nullptr) return false;
    *at = c->slots[c->read].at;
    return true;
  }

  // Consumer thread only.
  bool Pop(HandoffRecord* out) {
    Chunk* c = Readable();
    if (c == nullptr) return false;
    *out = c->slots[c->read++];
    return true;
  }

 private:
  struct Chunk {
    explicit Chunk(size_t cap) : slots(new HandoffRecord[cap]) {}
    ~Chunk() { delete[] slots; }
    HandoffRecord* slots;
    std::atomic<size_t> write{0};  // records committed by the producer
    std::atomic<Chunk*> next{nullptr};
    size_t read = 0;  // consumer-only cursor
  };

  // The chunk holding the next readable record, retiring exhausted chunks;
  // nullptr when the channel is (currently) empty.
  Chunk* Readable() {
    Chunk* c = head_;
    if (c->read < c->write.load(std::memory_order_acquire)) return c;
    if (c->read < capacity_) return nullptr;  // producer still filling it
    Chunk* next = c->next.load(std::memory_order_acquire);
    if (next == nullptr) return nullptr;
    head_ = next;
    delete c;
    return Readable();
  }

  const size_t capacity_;
  Chunk* head_;  // consumer side
  Chunk* tail_;  // producer side
};

}  // namespace hpcc::net
