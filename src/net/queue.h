// Per-priority FIFO egress queues.
//
// Two priorities exist (§6: HPCC needs only a single data priority; control
// frames — ACK/NACK/CNP/PFC — ride a strict high priority so feedback is not
// queued behind data).
//
// The byte/packet counters live in one packed block at the front of the
// object (structure-of-arrays style): the burst loop in net::Port touches
// counters far more often than packet storage, and keeping them on one cache
// line keeps eligibility checks and occupancy reads off the ring arrays.
#pragma once

#include <array>
#include <cstdint>

#include "net/packet.h"
#include "net/ring.h"

namespace hpcc::net {

class PriorityQueues {
 public:
  void Enqueue(PacketPtr pkt);
  // Pops the highest-priority packet whose priority is not paused.
  // `paused` maps priority -> paused flag.
  PacketPtr Dequeue(const std::array<bool, kNumPriorities>& paused);
  // Returns a packet to the head of its priority queue (train abort: an
  // unemitted packet goes back exactly where the burst took it from).
  void Requeue(PacketPtr pkt);

  bool HasEligible(const std::array<bool, kNumPriorities>& paused) const;
  int64_t bytes(int priority) const { return hot_.bytes[priority]; }
  int64_t total_bytes() const;
  size_t total_packets() const;
  bool empty() const { return total_packets() == 0; }

 private:
  // Hot counters, packed together and first in the object.
  struct Hot {
    std::array<int64_t, kNumPriorities> bytes{};
    std::array<uint32_t, kNumPriorities> packets{};
  };
  Hot hot_;
  std::array<Ring<PacketPtr>, kNumPriorities> queues_{};
};

}  // namespace hpcc::net
