// Per-priority FIFO egress queues.
//
// Two priorities exist (§6: HPCC needs only a single data priority; control
// frames — ACK/NACK/CNP/PFC — ride a strict high priority so feedback is not
// queued behind data).
#pragma once

#include <array>
#include <cstdint>
#include <deque>

#include "net/packet.h"

namespace hpcc::net {

class PriorityQueues {
 public:
  void Enqueue(PacketPtr pkt);
  // Pops the highest-priority packet whose priority is not paused.
  // `paused` maps priority -> paused flag.
  PacketPtr Dequeue(const std::array<bool, kNumPriorities>& paused);

  bool HasEligible(const std::array<bool, kNumPriorities>& paused) const;
  int64_t bytes(int priority) const { return bytes_[priority]; }
  int64_t total_bytes() const;
  size_t total_packets() const;
  bool empty() const { return total_packets() == 0; }

 private:
  std::array<std::deque<PacketPtr>, kNumPriorities> queues_{};
  std::array<int64_t, kNumPriorities> bytes_{};
};

}  // namespace hpcc::net
