#include "net/switch_node.h"

#include <algorithm>
#include <cassert>

#include "core/hash.h"

namespace hpcc::net {

SwitchNode::SwitchNode(sim::Simulator* simulator, uint32_t id,
                       std::string name, const SwitchConfig& config)
    : Node(simulator, id, std::move(name)),
      config_(config),
      buffer_(config.buffer_bytes, /*num_ports=*/1),
      rng_(0x5317c4ed ^ id) {
  ports_fast_path_ = config.fast_path && !config.rcp_enabled;
}

void SwitchNode::FinishSetup() {
  buffer_ = SharedBuffer(config_.buffer_bytes, num_ports());
  pause_sent_.assign(static_cast<size_t>(num_ports()),
                     std::array<bool, kNumPriorities>{});
  train_pending_flag_.assign(static_cast<size_t>(num_ports()), 0);
  train_pending_.clear();
  rcp_.assign(static_cast<size_t>(num_ports()), RcpState{});
  for (int i = 0; i < num_ports(); ++i) {
    // RCP starts each port's fair rate at capacity (processor sharing pulls
    // it down as flows arrive).
    rcp_[i].rate = static_cast<double>(ports_[i]->bandwidth_bps());
  }
  if (config_.int_enabled) {
    for (int i = 0; i < num_ports(); ++i) {
      ports_[i]->EnableIntStamping(id_, config_.int_wire_format);
    }
  }
}

void SwitchNode::SetRoutes(const std::vector<std::vector<uint16_t>>& routes) {
  NextHopTable& table = mutable_routes(/*preserve=*/false);
  table.Reset(static_cast<uint32_t>(routes.size()));
  for (uint32_t dst = 0; dst < routes.size(); ++dst) {
    table.SetRoute(dst, routes[dst].data(),
                   static_cast<uint32_t>(routes[dst].size()));
  }
}

int SwitchNode::RoutePort(const Packet& pkt) const {
  // A corrupt/out-of-range dst must be a visible kNoRoute drop, not a silent
  // out-of-bounds read (an assert here compiles out in Release).
  if (pkt.dst >= route_view_->num_dsts()) [[unlikely]] return -1;
  const NextHopTable::Group g = route_view_->Lookup(pkt.dst);
  if (g.size == 0) return -1;  // disconnected (link failures)
  if (g.size == 1) return g.ports[0];
  // Per-flow ECMP: hash is stable for a flow at this switch, so all packets
  // of a flow take one path (no reordering in the common case).
  const uint64_t h =
      core::SplitMix64(pkt.flow_id ^ (static_cast<uint64_t>(id_) << 40));
  return g.ports[h % g.size];
}

void SwitchNode::OnTrainPending(int port_index) {
  uint8_t& flag = train_pending_flag_[static_cast<size_t>(port_index)];
  if (flag != 0) return;
  flag = 1;
  train_pending_.push_back(static_cast<uint16_t>(port_index));
}

void SwitchNode::SettleTrains() {
  if (train_pending_.empty()) [[likely]] return;
  size_t w = 0;
  for (size_t i = 0; i < train_pending_.size(); ++i) {
    const uint16_t p = train_pending_[i];
    Port& port = *ports_[p];
    port.SettleDue();
    if (port.has_unsettled()) {
      train_pending_[w++] = p;
    } else {
      train_pending_flag_[p] = 0;
    }
  }
  train_pending_.resize(w);
}

void SwitchNode::AbortTrains() {
  for (const uint16_t p : train_pending_) {
    ports_[p]->AbortUnemitted();
    train_pending_flag_[p] = 0;
  }
  train_pending_.clear();
}

void SwitchNode::Receive(PacketPtr pkt, int in_port) {
  // Deferred train emissions on any port release shared buffer and mutate
  // queue counters; settle them before this packet observes either.
  SettleTrains();
  if (pkt->type == PacketType::kPfcPause ||
      pkt->type == PacketType::kPfcResume) {
    // The frame arrived through `in_port`, so the pause applies to our
    // egress direction of that same link.
    ports_[in_port]->SetPaused(pkt->pause_priority,
                               pkt->type == PacketType::kPfcPause,
                               simulator_->now());
    return;
  }
  const int out_port = RoutePort(*pkt);
  if (out_port < 0) {
    ++dropped_packets_;
    dropped_bytes_ += static_cast<uint64_t>(pkt->size_bytes());
    ++dropped_by_reason_[static_cast<int>(check::DropReason::kNoRoute)];
    if (check_hooks_ != nullptr) [[unlikely]] {
      check_hooks_->OnDrop(id_, *pkt, check::DropReason::kNoRoute);
    }
    return;
  }
  AdmitAndForward(std::move(pkt), in_port, out_port);
}

void SwitchNode::AdmitAndForward(PacketPtr pkt, int in_port, int out_port) {
  const int64_t bytes = pkt->size_bytes();
  const int prio = pkt->priority;

  bool drop = !buffer_.CanAdmit(bytes);
  check::DropReason reason = check::DropReason::kBufferFull;
  if (!drop && !config_.pfc_enabled && prio == kDataPriority) {
    // Lossy mode: dynamic per-egress threshold (footnote 6, alpha = 1).
    const int64_t threshold = static_cast<int64_t>(
        config_.egress_alpha * static_cast<double>(buffer_.free_bytes()));
    if (ports_[out_port]->queue_bytes(kDataPriority) + bytes > threshold) {
      drop = true;
      reason = check::DropReason::kEgressThreshold;
    }
  }
  if (drop) {
    ++dropped_packets_;
    dropped_bytes_ += static_cast<uint64_t>(bytes);
    ++dropped_by_reason_[static_cast<int>(reason)];
    if (check_hooks_ != nullptr) [[unlikely]] {
      check_hooks_->OnDrop(id_, *pkt, reason);
    }
    return;
  }

  buffer_.Admit(in_port, prio, bytes);
  pkt->buffer_ingress_port = in_port;

  if (config_.rcp_enabled && pkt->type == PacketType::kData) {
    rcp_[out_port].rx_bytes += bytes;  // arrival-rate measurement
  }

  // WRED/ECN marking on the egress queue occupancy including this packet.
  if (pkt->ecn_capable && config_.red.enabled) {
    const int64_t q = ports_[out_port]->queue_bytes(kDataPriority) + bytes;
    if (config_.red.ShouldMark(q, ports_[out_port]->bandwidth_bps(), rng_)) {
      pkt->ecn_ce = true;
    }
  }

  ++forwarded_packets_;
  ports_[out_port]->Enqueue(std::move(pkt));

  if (config_.pfc_enabled && prio == kDataPriority) {
    CheckPause(in_port, prio);
  }
}

void SwitchNode::MaybeUpdateRcp(int port_index) {
  RcpState& st = rcp_[port_index];
  const sim::TimePs now = simulator_->now();
  const sim::TimePs elapsed = now - st.last_update;
  const sim::TimePs d = config_.rcp_rtt;
  if (elapsed < d) return;
  const double c_bps =
      static_cast<double>(ports_[port_index]->bandwidth_bps());
  const double y_bps =
      static_cast<double>(st.rx_bytes) * 8.0 / sim::ToSec(elapsed);
  const double q_bits =
      static_cast<double>(ports_[port_index]->queue_bytes(kDataPriority)) *
      8.0;
  // R <- R [1 + (T/d)(alpha (C - y) - beta q/d)/C]  (RCP control law).
  const double factor =
      1.0 + (sim::ToSec(elapsed) / sim::ToSec(d)) *
                (config_.rcp_alpha * (c_bps - y_bps) -
                 config_.rcp_beta * q_bits / sim::ToSec(d)) /
                c_bps;
  st.rate = std::clamp(st.rate * factor, c_bps * 1e-3, c_bps);
  st.rx_bytes = 0;
  st.last_update = now;
}

void SwitchNode::OnPortDequeue(Packet& pkt, int port_index) {
  if (config_.rcp_enabled && pkt.type == PacketType::kData) {
    MaybeUpdateRcp(port_index);
    pkt.rcp_rate_bps = std::min(
        pkt.rcp_rate_bps, static_cast<int64_t>(rcp_[port_index].rate));
  }
  // Release the shared buffer when the packet starts leaving the switch.
  const int in_port = pkt.buffer_ingress_port;
  if (in_port < 0) return;  // locally generated (PFC frame): never admitted
  buffer_.Release(in_port, pkt.priority, pkt.size_bytes());
  pkt.buffer_ingress_port = -1;
  if (config_.pfc_enabled && pkt.priority == kDataPriority) {
    CheckResume(in_port, pkt.priority);
  }
}

void SwitchNode::CheckPause(int in_port, int priority) {
  if (pause_sent_[in_port][priority]) return;
  if (buffer_.ShouldPause(in_port, priority, config_.pfc_alpha)) {
    pause_sent_[in_port][priority] = true;
    SendPfc(in_port, priority, /*pause=*/true);
  }
}

void SwitchNode::CheckResume(int in_port, int priority) {
  if (!pause_sent_[in_port][priority]) return;
  if (buffer_.ShouldResume(in_port, priority, config_.pfc_alpha,
                           config_.pfc_resume_ratio)) {
    pause_sent_[in_port][priority] = false;
    SendPfc(in_port, priority, /*pause=*/false);
  }
}

void SwitchNode::SendPfc(int in_port, int priority, bool pause) {
  if (pause) {
    // From here until the matching RESUME, emission work must run at exact
    // emission instants (a deferred buffer release could delay the RESUME):
    // rewind all committed-but-unemitted train items and drop to
    // single-packet trains (MaxTrainPackets).
    if (pause_out_++ == 0) AbortTrains();
  } else {
    --pause_out_;
  }
  PacketPtr frame = MakePfc(
      pause ? PacketType::kPfcPause : PacketType::kPfcResume, priority);
  // PFC travels upstream: out through the port the congesting traffic came in
  // on. It rides the control priority, so it preempts queued data.
  ports_[in_port]->Enqueue(std::move(frame));
}

}  // namespace hpcc::net
