#include "net/queue.h"

#include <cassert>

namespace hpcc::net {

void PriorityQueues::Enqueue(PacketPtr pkt) {
  const int prio = pkt->priority;
  assert(prio >= 0 && prio < kNumPriorities);
  hot_.bytes[prio] += pkt->size_bytes();
  ++hot_.packets[prio];
  queues_[prio].push_back(std::move(pkt));
}

PacketPtr PriorityQueues::Dequeue(
    const std::array<bool, kNumPriorities>& paused) {
  for (int prio = 0; prio < kNumPriorities; ++prio) {
    if (paused[prio] || hot_.packets[prio] == 0) continue;
    PacketPtr pkt = queues_[prio].pop_front();
    hot_.bytes[prio] -= pkt->size_bytes();
    --hot_.packets[prio];
    assert(hot_.bytes[prio] >= 0);
    return pkt;
  }
  return nullptr;
}

void PriorityQueues::Requeue(PacketPtr pkt) {
  const int prio = pkt->priority;
  assert(prio >= 0 && prio < kNumPriorities);
  hot_.bytes[prio] += pkt->size_bytes();
  ++hot_.packets[prio];
  queues_[prio].push_front(std::move(pkt));
}

bool PriorityQueues::HasEligible(
    const std::array<bool, kNumPriorities>& paused) const {
  for (int prio = 0; prio < kNumPriorities; ++prio) {
    if (!paused[prio] && hot_.packets[prio] != 0) return true;
  }
  return false;
}

int64_t PriorityQueues::total_bytes() const {
  int64_t total = 0;
  for (int64_t b : hot_.bytes) total += b;
  return total;
}

size_t PriorityQueues::total_packets() const {
  size_t total = 0;
  for (uint32_t c : hot_.packets) total += c;
  return total;
}

}  // namespace hpcc::net
