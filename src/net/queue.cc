#include "net/queue.h"

#include <cassert>

namespace hpcc::net {

void PriorityQueues::Enqueue(PacketPtr pkt) {
  const int prio = pkt->priority;
  assert(prio >= 0 && prio < kNumPriorities);
  bytes_[prio] += pkt->size_bytes();
  queues_[prio].push_back(std::move(pkt));
}

PacketPtr PriorityQueues::Dequeue(
    const std::array<bool, kNumPriorities>& paused) {
  for (int prio = 0; prio < kNumPriorities; ++prio) {
    if (paused[prio] || queues_[prio].empty()) continue;
    PacketPtr pkt = std::move(queues_[prio].front());
    queues_[prio].pop_front();
    bytes_[prio] -= pkt->size_bytes();
    assert(bytes_[prio] >= 0);
    return pkt;
  }
  return nullptr;
}

bool PriorityQueues::HasEligible(
    const std::array<bool, kNumPriorities>& paused) const {
  for (int prio = 0; prio < kNumPriorities; ++prio) {
    if (!paused[prio] && !queues_[prio].empty()) return true;
  }
  return false;
}

int64_t PriorityQueues::total_bytes() const {
  int64_t total = 0;
  for (int64_t b : bytes_) total += b;
  return total;
}

size_t PriorityQueues::total_packets() const {
  size_t total = 0;
  for (const auto& q : queues_) total += q.size();
  return total;
}

}  // namespace hpcc::net
