#include "net/nexthop.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "core/hash.h"

namespace hpcc::net {

void NextHopTable::InitEmptyGroup() {
  groups_.assign(1, Meta{0, 0, 0, HashPorts(nullptr, 0)});
  index_.assign(16, kEmptySlot);
  index_used_ = 0;
  IndexInsert(kNoGroup);
  live_groups_ = 0;
  dead_port_slots_ = 0;
  free_gids_.clear();
  ports_.clear();
}

void NextHopTable::Reset(uint32_t num_dsts) {
  dst_group_.assign(num_dsts, kNoGroup);
  InitEmptyGroup();
}

uint64_t NextHopTable::HashPorts(const uint16_t* ports, uint32_t count) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ count;
  for (uint32_t i = 0; i < count; ++i) {
    h = core::SplitMix64(h ^ ports[i]);
  }
  return h;
}

bool NextHopTable::GroupEquals(uint32_t gid, const uint16_t* ports,
                               uint32_t count) const {
  const Meta& m = groups_[gid];
  if (m.size != count) return false;
  return count == 0 ||
         std::memcmp(ports_.data() + m.offset, ports,
                     count * sizeof(uint16_t)) == 0;
}

void NextHopTable::IndexGrow() {
  std::vector<uint32_t> old = std::move(index_);
  index_.assign(old.size() * 2, kEmptySlot);
  index_used_ = 0;
  for (const uint32_t gid : old) {
    if (gid != kEmptySlot) IndexInsert(gid);
  }
}

void NextHopTable::IndexInsert(uint32_t gid) {
  if ((index_used_ + 1) * 4 >= index_.size() * 3) IndexGrow();
  const size_t mask = index_.size() - 1;
  size_t slot = groups_[gid].hash & mask;
  while (index_[slot] != kEmptySlot) slot = (slot + 1) & mask;
  index_[slot] = gid;
  ++index_used_;
}

void NextHopTable::IndexErase(uint32_t gid) {
  // Linear-probe erase with the canonical backward-shift fixup: any element
  // whose probe path crossed the vacated slot moves back into it.
  const size_t mask = index_.size() - 1;
  size_t slot = groups_[gid].hash & mask;
  while (index_[slot] != gid) slot = (slot + 1) & mask;
  index_[slot] = kEmptySlot;
  --index_used_;
  size_t j = slot;
  while (true) {
    j = (j + 1) & mask;
    if (index_[j] == kEmptySlot) break;
    const size_t home = groups_[index_[j]].hash & mask;
    if (((j - home) & mask) >= ((j - slot) & mask)) {
      index_[slot] = index_[j];
      index_[j] = kEmptySlot;
      slot = j;
    }
  }
}

uint32_t NextHopTable::IndexFind(uint64_t hash, const uint16_t* ports,
                                 uint32_t count) const {
  const size_t mask = index_.size() - 1;
  size_t slot = hash & mask;
  while (index_[slot] != kEmptySlot) {
    const uint32_t gid = index_[slot];
    if (groups_[gid].hash == hash && GroupEquals(gid, ports, count)) {
      return gid;
    }
    slot = (slot + 1) & mask;
  }
  return kEmptySlot;
}

uint32_t NextHopTable::InternGroup(const uint16_t* ports, uint32_t count) {
#ifndef NDEBUG
  for (uint32_t i = 1; i < count; ++i) assert(ports[i - 1] < ports[i]);
#endif
  const uint64_t hash = HashPorts(ports, count);
  const uint32_t found = IndexFind(hash, ports, count);
  if (found != kEmptySlot) return found;

  uint32_t gid;
  if (!free_gids_.empty()) {
    gid = free_gids_.back();
    free_gids_.pop_back();
  } else {
    gid = static_cast<uint32_t>(groups_.size());
    groups_.emplace_back();
  }
  Meta& m = groups_[gid];
  m.offset = static_cast<uint32_t>(ports_.size());
  m.size = count;
  m.refs = 0;
  m.hash = hash;
  ports_.insert(ports_.end(), ports, ports + count);
  IndexInsert(gid);
  ++live_groups_;
  return gid;
}

void NextHopTable::AssignGroup(uint32_t dst, uint32_t gid) {
  const uint32_t old = dst_group_[dst];
  if (old == gid) return;
  if (gid != kNoGroup) ++groups_[gid].refs;
  dst_group_[dst] = gid;
  if (old != kNoGroup) ReleaseGroup(old);
}

void NextHopTable::SetRoute(uint32_t dst, const uint16_t* ports,
                            uint32_t count) {
  AssignGroup(dst, count == 0 ? kNoGroup : InternGroup(ports, count));
}

void NextHopTable::ReleaseGroup(uint32_t gid) {
  Meta& m = groups_[gid];
  assert(m.refs > 0);
  if (--m.refs > 0) return;
  IndexErase(gid);
  dead_port_slots_ += m.size;
  free_gids_.push_back(gid);
  --live_groups_;
  MaybeCompact();
}

void NextHopTable::MaybeCompact() {
  if (dead_port_slots_ < 4096 || dead_port_slots_ * 2 < ports_.size()) return;
  // Rewrite port storage keeping group ids stable; only offsets move.
  std::vector<uint16_t> packed;
  packed.reserve(ports_.size() - dead_port_slots_);
  // A freed gid may still sit in free_gids_ with a stale offset; mark live
  // groups via refs (the empty group has size 0 and needs no storage).
  for (uint32_t gid = 0; gid < groups_.size(); ++gid) {
    Meta& m = groups_[gid];
    if (m.refs == 0 || m.size == 0) continue;
    const uint32_t new_offset = static_cast<uint32_t>(packed.size());
    packed.insert(packed.end(), ports_.begin() + m.offset,
                  ports_.begin() + m.offset + m.size);
    m.offset = new_offset;
  }
  ports_ = std::move(packed);
  dead_port_slots_ = 0;
}

void NextHopTable::AddPort(uint32_t dst, uint16_t port) {
  const Group g = Lookup(dst);
  scratch_.assign(g.ports, g.ports + g.size);
  auto it = std::lower_bound(scratch_.begin(), scratch_.end(), port);
  assert(it == scratch_.end() || *it != port);
  scratch_.insert(it, port);
  SetRoute(dst, scratch_.data(), static_cast<uint32_t>(scratch_.size()));
}

void NextHopTable::RemovePort(uint32_t dst, uint16_t port) {
  const Group g = Lookup(dst);
  scratch_.assign(g.ports, g.ports + g.size);
  auto it = std::lower_bound(scratch_.begin(), scratch_.end(), port);
  assert(it != scratch_.end() && *it == port);
  scratch_.erase(it);
  SetRoute(dst, scratch_.data(), static_cast<uint32_t>(scratch_.size()));
}

size_t NextHopTable::resident_bytes() const {
  return dst_group_.capacity() * sizeof(uint32_t) +
         ports_.capacity() * sizeof(uint16_t) +
         groups_.capacity() * sizeof(Meta) +
         index_.capacity() * sizeof(uint32_t) +
         free_gids_.capacity() * sizeof(uint32_t);
}

size_t NextHopTable::expanded_port_entries() const {
  size_t total = 0;
  for (const uint32_t gid : dst_group_) total += groups_[gid].size;
  return total;
}

std::vector<uint16_t> NextHopTable::PortsOf(uint32_t dst) const {
  const Group g = Lookup(dst);
  return std::vector<uint16_t>(g.ports, g.ports + g.size);
}

bool NextHopTable::CheckConsistency() const {
  std::vector<uint32_t> refs(groups_.size(), 0);
  for (const uint32_t gid : dst_group_) {
    if (gid >= groups_.size()) return false;
    if (gid != kNoGroup) ++refs[gid];
  }
  size_t live = 0;
  for (uint32_t gid = 0; gid < groups_.size(); ++gid) {
    const Meta& m = groups_[gid];
    if (m.refs != refs[gid]) return false;
    if (m.refs == 0) continue;
    if (gid != kNoGroup) ++live;
    if (m.offset + m.size > ports_.size()) return false;
    for (uint32_t i = 1; i < m.size; ++i) {
      if (ports_[m.offset + i - 1] >= ports_[m.offset + i]) return false;
    }
    if (m.hash != HashPorts(ports_.data() + m.offset, m.size)) return false;
    // Deduplication: the index must find exactly this gid.
    if (IndexFind(m.hash, ports_.data() + m.offset, m.size) != gid) {
      return false;
    }
  }
  return live == live_groups_;
}

}  // namespace hpcc::net
