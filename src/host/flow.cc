#include "host/flow.h"

// Flow is a plain state holder; logic lives in HostNode (host_node.cc) and in
// the per-flow CongestionControl instance.
namespace hpcc::host {}
