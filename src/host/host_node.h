// Host NIC model (§4.2): sender TX pipe (flow scheduler, window + pacing,
// retransmission) and receiver RX pipe (per-packet ACK/NACK, INT echo, ECN
// echo, DCQCN CNP generation).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/flat_map.h"
#include "host/flow.h"
#include "host/ooo_ranges.h"
#include "host/scheduler.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/port.h"

namespace hpcc::host {

struct HostConfig {
  int mtu_bytes = net::kPayloadBytes;
  // Safety retransmission timeout (tail loss in lossy mode); PFC-protected
  // runs never fire it.
  sim::TimePs rto = sim::Us(1000);
  // Exponential backoff cap: consecutive expiries double the effective RTO
  // up to this value (forward ACK progress resets it to `rto`).
  sim::TimePs rto_max = sim::Us(16'000);
  // Give-up threshold: after this many consecutive timeouts with no forward
  // progress the flow is abandoned and recorded as failed
  // (ExperimentResult::flows_failed). <= 0 disables the give-up.
  int max_retx = 15;
  // GBN NACK rate limit: at most one NACK per interval per flow.
  sim::TimePs nack_interval = sim::Us(10);
  // DCQCN: min gap between CNPs of one flow (50 us, §5.1/DCQCN paper).
  sim::TimePs cnp_interval = sim::Us(50);
  // IRN window in base-RTT BDPs of the NIC port.
  double irn_window_bdp = 1.0;
  sim::TimePs irn_base_rtt = sim::Us(13);
  // The paper's optional INT-efficiency extension (§1: "a trivial and
  // optional extension for efficiency"): request INT only on every Nth data
  // packet of a flow, cutting the 42B padding overhead by ~N while HPCC
  // still reacts multiple times per RTT.
  int int_sample_every = 1;
  // Transmission-train fast path on the NIC ports (see net/port.h).
  bool fast_path = true;
};

class HostNode : public net::Node {
 public:
  HostNode(sim::Simulator* simulator, uint32_t id, std::string name,
           const HostConfig& config);

  void Receive(net::PacketPtr pkt, int in_port) override;
  bool IsSwitch() const override { return false; }
  void OnPortIdle(int port_index) override;
  // The NIC needs the emission boundary while any sender flow still holds
  // data: the OnPortIdle pull paces flows and re-arms their wakes (see
  // FlowScheduler::HasPendingData). A pure receiver NIC (ACK traffic only)
  // and a sender whose flows are fully sent skip the boundary event
  // entirely (see net::Port::FormTrain).
  bool WantsPortIdle(int port_index) const override {
    return static_cast<size_t>(port_index) < schedulers_.size() &&
           schedulers_[static_cast<size_t>(port_index)].HasPendingData();
  }

  // Registers a sender-side flow on this host and schedules its start.
  // The flow must have spec().src == id().
  void AddFlow(std::unique_ptr<Flow> flow);

  // RDMA READ (§4.2): registers the responder-side flow without starting it;
  // transmission begins when the requester's kReadRequest arrives.
  void AddPendingFlow(std::unique_ptr<Flow> flow);
  // Requester side: emit the READ request for a flow pending at `responder`.
  void SendReadRequest(uint64_t flow_id, uint32_t responder);

  void set_flow_done_callback(FlowDoneCallback cb) {
    flow_done_ = std::move(cb);
  }

  const HostConfig& config() const { return config_; }
  Flow* FindFlow(uint64_t flow_id);
  uint64_t data_bytes_sent() const { return data_bytes_sent_; }
  uint64_t data_packets_sent() const { return data_packets_sent_; }
  uint64_t acks_received() const { return acks_received_; }

  // --- Warm checkpoint/restore (runner/experiment.h) ---------------------
  // Armed pacing wakes across all ports. A warm checkpoint requires zero:
  // ScheduleWake elides a re-arm while an earlier wake is still pending
  // (without drawing a schedule seq), so a restored run missing a stale wake
  // would draw differently than the checkpointing run from there on. With
  // every flow complete, pending wakes exist only in corner cases — the
  // quiescence check simply refuses those checkpoints.
  size_t pending_wake_count() const {
    size_t n = 0;
    for (const sim::EventId e : wake_events_) {
      if (e != sim::kInvalidEvent) ++n;
    }
    return n;
  }
  // Cumulative NIC counters (reporting only; nothing reads them back into
  // the dataplane).
  struct WarmCounters {
    uint64_t data_bytes_sent = 0;
    uint64_t data_packets_sent = 0;
    uint64_t acks_received = 0;
  };
  WarmCounters CaptureWarm() const {
    return {data_bytes_sent_, data_packets_sent_, acks_received_};
  }
  void RestoreWarm(const WarmCounters& w) {
    data_bytes_sent_ = w.data_bytes_sent;
    data_packets_sent_ = w.data_packets_sent;
    acks_received_ = w.acks_received;
  }

  // Receiver-side per-flow state (public for tests).
  struct RxState {
    uint64_t rcv_nxt = 0;   // cumulative in-order bytes
    OooRanges ooo;          // IRN: [start, end) of out-of-order data
    sim::TimePs last_nack = -1;
    sim::TimePs last_cnp = -1;
  };
  const RxState* FindRxState(uint64_t flow_id) const;

 private:
  // TX pipe.
  Flow* RegisterFlow(std::unique_ptr<Flow> flow);
  void StartFlow(Flow* flow);
  void TrySend(int port_index);
  void ScheduleWake(int port_index, sim::TimePs wake);
  void SendOnePacket(Flow& flow, sim::TimePs now);
  void ArmRto(Flow& flow);
  void OnRto(uint64_t flow_id);
  int PickPort(uint64_t flow_id) const;

  // RX pipe.
  void HandleData(net::PacketPtr pkt);
  void HandleAckLike(net::PacketPtr pkt);
  void SendControl(net::PacketPtr pkt, uint64_t flow_id);
  void CompleteFlow(Flow& flow, sim::TimePs now);
  // Give-up path: marks the flow done+failed and tears it down exactly like
  // CompleteFlow (scheduler removal, CC notification, completion callback).
  void FailFlow(Flow& flow, sim::TimePs now);

  RxState& RxStateFor(uint64_t flow_id);

  HostConfig config_;
  std::vector<FlowScheduler> schedulers_;       // one per port
  std::vector<sim::EventId> wake_events_;       // one pending wake per port
  std::vector<sim::TimePs> wake_targets_;       // time each pending wake fires
  std::vector<std::unique_ptr<Flow>> flows_;    // owned sender flows
  // Flow lookups run once per received ACK/NACK/data packet: open-addressing
  // flat tables (keys biased by +1; flow id 0 is legal in tests) instead of
  // unordered_map's node-per-entry layout. Receiver states live densely in
  // rx_states_, in flow-first-seen order; the table maps flow id -> slot+1.
  core::FlatMap<Flow*> tx_flows_;
  core::FlatMap<uint32_t> rx_index_;
  std::vector<RxState> rx_states_;
  FlowDoneCallback flow_done_;

  uint64_t data_bytes_sent_ = 0;
  uint64_t data_packets_sent_ = 0;
  uint64_t acks_received_ = 0;
};

}  // namespace hpcc::host
