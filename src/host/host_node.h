// Host NIC model (§4.2): sender TX pipe (flow scheduler, window + pacing,
// retransmission) and receiver RX pipe (per-packet ACK/NACK, INT echo, ECN
// echo, DCQCN CNP generation).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "host/flow.h"
#include "host/scheduler.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/port.h"

namespace hpcc::host {

struct HostConfig {
  int mtu_bytes = net::kPayloadBytes;
  // Safety retransmission timeout (tail loss in lossy mode); PFC-protected
  // runs never fire it.
  sim::TimePs rto = sim::Us(1000);
  // GBN NACK rate limit: at most one NACK per interval per flow.
  sim::TimePs nack_interval = sim::Us(10);
  // DCQCN: min gap between CNPs of one flow (50 us, §5.1/DCQCN paper).
  sim::TimePs cnp_interval = sim::Us(50);
  // IRN window in base-RTT BDPs of the NIC port.
  double irn_window_bdp = 1.0;
  sim::TimePs irn_base_rtt = sim::Us(13);
  // The paper's optional INT-efficiency extension (§1: "a trivial and
  // optional extension for efficiency"): request INT only on every Nth data
  // packet of a flow, cutting the 42B padding overhead by ~N while HPCC
  // still reacts multiple times per RTT.
  int int_sample_every = 1;
};

class HostNode : public net::Node {
 public:
  HostNode(sim::Simulator* simulator, uint32_t id, std::string name,
           const HostConfig& config);

  void Receive(net::PacketPtr pkt, int in_port) override;
  bool IsSwitch() const override { return false; }
  void OnPortIdle(int port_index) override;

  // Registers a sender-side flow on this host and schedules its start.
  // The flow must have spec().src == id().
  void AddFlow(std::unique_ptr<Flow> flow);

  // RDMA READ (§4.2): registers the responder-side flow without starting it;
  // transmission begins when the requester's kReadRequest arrives.
  void AddPendingFlow(std::unique_ptr<Flow> flow);
  // Requester side: emit the READ request for a flow pending at `responder`.
  void SendReadRequest(uint64_t flow_id, uint32_t responder);

  void set_flow_done_callback(FlowDoneCallback cb) {
    flow_done_ = std::move(cb);
  }

  const HostConfig& config() const { return config_; }
  Flow* FindFlow(uint64_t flow_id);
  uint64_t data_bytes_sent() const { return data_bytes_sent_; }
  uint64_t data_packets_sent() const { return data_packets_sent_; }
  uint64_t acks_received() const { return acks_received_; }

  // Receiver-side per-flow state (public for tests).
  struct RxState {
    uint64_t rcv_nxt = 0;                    // cumulative in-order bytes
    std::map<uint64_t, uint64_t> ooo;        // IRN: start -> end of OOO data
    sim::TimePs last_nack = -1;
    sim::TimePs last_cnp = -1;
  };
  const RxState* FindRxState(uint64_t flow_id) const;

 private:
  // TX pipe.
  Flow* RegisterFlow(std::unique_ptr<Flow> flow);
  void StartFlow(Flow* flow);
  void TrySend(int port_index);
  void SendOnePacket(Flow& flow, sim::TimePs now);
  void ArmRto(Flow& flow);
  void OnRto(uint64_t flow_id);
  int PickPort(uint64_t flow_id) const;

  // RX pipe.
  void HandleData(net::PacketPtr pkt);
  void HandleAckLike(net::PacketPtr pkt);
  void SendControl(net::PacketPtr pkt, uint64_t flow_id);
  void CompleteFlow(Flow& flow, sim::TimePs now);

  HostConfig config_;
  std::vector<FlowScheduler> schedulers_;       // one per port
  std::vector<sim::EventId> wake_events_;       // one pending wake per port
  std::vector<std::unique_ptr<Flow>> flows_;    // owned sender flows
  std::unordered_map<uint64_t, Flow*> tx_flows_;
  std::unordered_map<uint64_t, RxState> rx_flows_;
  FlowDoneCallback flow_done_;

  uint64_t data_bytes_sent_ = 0;
  uint64_t data_packets_sent_ = 0;
  uint64_t acks_received_ = 0;
};

}  // namespace hpcc::host
