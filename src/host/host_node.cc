#include "host/host_node.h"

#include <algorithm>
#include <cassert>

#include "core/hash.h"

namespace hpcc::host {

HostNode::HostNode(sim::Simulator* simulator, uint32_t id, std::string name,
                   const HostConfig& config)
    : Node(simulator, id, std::move(name)), config_(config) {
  ports_fast_path_ = config.fast_path;
}

int HostNode::PickPort(uint64_t flow_id) const {
  // Flows (and their reverse-direction control packets) are pinned to one
  // NIC port; hosts with two uplinks (testbed topology) spread flows by hash.
  assert(num_ports() > 0);
  return static_cast<int>(core::SplitMix64(flow_id) %
                          static_cast<uint64_t>(num_ports()));
}

Flow* HostNode::FindFlow(uint64_t flow_id) {
  Flow** f = tx_flows_.Find(flow_id + 1);
  return f == nullptr ? nullptr : *f;
}

const HostNode::RxState* HostNode::FindRxState(uint64_t flow_id) const {
  const uint32_t* slot = rx_index_.Find(flow_id + 1);
  return slot == nullptr ? nullptr : &rx_states_[*slot - 1];
}

HostNode::RxState& HostNode::RxStateFor(uint64_t flow_id) {
  uint32_t& slot = rx_index_[flow_id + 1];
  if (slot == 0) {
    rx_states_.emplace_back();
    slot = static_cast<uint32_t>(rx_states_.size());
  }
  return rx_states_[slot - 1];
}

void HostNode::AddFlow(std::unique_ptr<Flow> flow) {
  Flow* f = RegisterFlow(std::move(flow));
  const sim::TimePs start = std::max(f->spec().start_time, simulator_->now());
  simulator_->ScheduleAt(start, [this, f]() { StartFlow(f); });
}

void HostNode::AddPendingFlow(std::unique_ptr<Flow> flow) {
  RegisterFlow(std::move(flow));  // waits for the READ request
}

void HostNode::SendReadRequest(uint64_t flow_id, uint32_t responder) {
  schedulers_.resize(static_cast<size_t>(num_ports()));
  wake_events_.resize(static_cast<size_t>(num_ports()), sim::kInvalidEvent);
  wake_targets_.resize(static_cast<size_t>(num_ports()), 0);
  SendControl(net::MakeReadRequest(flow_id, id_, responder), flow_id);
}

Flow* HostNode::RegisterFlow(std::unique_ptr<Flow> flow) {
  assert(flow->spec().src == id_);
  schedulers_.resize(static_cast<size_t>(num_ports()));
  wake_events_.resize(static_cast<size_t>(num_ports()), sim::kInvalidEvent);
  wake_targets_.resize(static_cast<size_t>(num_ports()), 0);

  Flow* f = flow.get();
  f->tx_port = PickPort(f->spec().id);
  f->cur_rto = config_.rto;
  if (f->recovery() == RecoveryMode::kIrn && f->irn_window_bytes <= 0) {
    // IRN uses a fixed window of one BDP (§6, Fig. 12 discussion).
    const net::Port& p = port(f->tx_port);
    f->irn_window_bytes = static_cast<int64_t>(
        config_.irn_window_bdp *
        (static_cast<double>(p.bandwidth_bps()) / 8.0) *
        sim::ToSec(config_.irn_base_rtt));
  }
  flows_.push_back(std::move(flow));
  tx_flows_[f->spec().id + 1] = f;
  schedulers_[static_cast<size_t>(f->tx_port)].Add(f);
  return f;
}

void HostNode::StartFlow(Flow* flow) {
  flow->started = true;
  flow->next_tx_time = simulator_->now();
  flow->last_activity = simulator_->now();
  ArmRto(*flow);
  TrySend(flow->tx_port);
}

void HostNode::OnPortIdle(int port_index) {
  if (static_cast<size_t>(port_index) < schedulers_.size()) {
    TrySend(port_index);
  }
}

void HostNode::TrySend(int port_index) {
  auto idx = static_cast<size_t>(port_index);
  if (idx >= schedulers_.size()) return;
  FlowScheduler& sched = schedulers_[idx];
  net::Port& p = port(port_index);

  // Keep at most one data packet queued at the NIC port so pacing stays
  // accurate; the port pulls the next one via OnPortIdle.
  if (p.queue_bytes(net::kDataPriority) > 0) return;

  Flow* f = sched.PickEligible(simulator_->now());
  if (f != nullptr) {
    SendOnePacket(*f, simulator_->now());
    // Work that is ready at or before the wire frees is the emission
    // boundary's job (WantsPortIdle made the port keep that event, or the
    // queued packet did); only a pacing token maturing after free_at()
    // needs its own wake.
    const sim::TimePs next = sched.NextWakeTime(simulator_->now());
    if (next <= port(port_index).free_at()) return;  // includes next < 0
    ScheduleWake(port_index, next);
    return;
  }
  const sim::TimePs wake = sched.NextWakeTime(simulator_->now());
  if (wake >= 0) ScheduleWake(port_index, wake);
}

void HostNode::ScheduleWake(int port_index, sim::TimePs wake) {
  auto idx = static_cast<size_t>(port_index);
  const sim::TimePs at = std::max(wake, simulator_->now() + 1);
  // Lazy wake: a pending wake at or before `at` re-evaluates eligibility
  // when it fires (a spurious early fire is a cheap no-op), so the common
  // per-ACK call leaves the armed timer alone instead of a Cancel+Schedule
  // pair per packet. Only a wake that needs to move *earlier* reschedules.
  if (wake_events_[idx] != sim::kInvalidEvent) {
    if (wake_targets_[idx] <= at) return;
    simulator_->Cancel(wake_events_[idx]);
  }
  wake_targets_[idx] = at;
  wake_events_[idx] = simulator_->ScheduleAt(at, [this, port_index]() {
    wake_events_[static_cast<size_t>(port_index)] = sim::kInvalidEvent;
    TrySend(port_index);
  });
}

void HostNode::SendOnePacket(Flow& flow, sim::TimePs now) {
  uint64_t seq;
  bool is_rtx = false;
  if (flow.recovery() == RecoveryMode::kIrn && !flow.irn_rtx_queue.empty()) {
    seq = *flow.irn_rtx_queue.begin();
    flow.irn_rtx_queue.erase(flow.irn_rtx_queue.begin());
    flow.irn_marked_lost.erase(seq);
    is_rtx = true;
  } else {
    seq = flow.snd_nxt;
  }
  const int payload = static_cast<int>(std::min<uint64_t>(
      static_cast<uint64_t>(config_.mtu_bytes), flow.spec().size_bytes - seq));
  assert(payload > 0);

  // INT sampling: stamp telemetry on the 1st of every `int_sample_every`
  // MTU segments (deterministic in the byte offset so retransmits behave
  // the same way).
  const bool want_int =
      flow.cc().wants_int() &&
      (config_.int_sample_every <= 1 ||
       (seq / static_cast<uint64_t>(config_.mtu_bytes)) %
               static_cast<uint64_t>(config_.int_sample_every) ==
           0);
  auto pkt = net::MakeDataPacket(flow.spec().id, flow.spec().src,
                                 flow.spec().dst, seq, payload, want_int,
                                 flow.cc().wants_ecn());
  pkt->sent_time = now;
  pkt->irn = flow.recovery() == RecoveryMode::kIrn;
  const int wire_bytes = pkt->size_bytes();

  if (!is_rtx) flow.snd_nxt = seq + static_cast<uint64_t>(payload);
  if (flow.recovery() == RecoveryMode::kIrn) {
    flow.irn_inflight_bytes += payload;
  }

  // Pacing token: the next packet may leave one wire-time (at rate R) later.
  int64_t rate = std::max<int64_t>(flow.cc().rate_bps(), 1'000'000);
  flow.next_tx_time =
      std::max(flow.next_tx_time, now) +
      sim::SerializationTime(wire_bytes, rate);

  flow.cc().OnSent(payload, now);
  data_bytes_sent_ += static_cast<uint64_t>(payload);
  ++data_packets_sent_;

  port(flow.tx_port).Enqueue(std::move(pkt));
}

void HostNode::ArmRto(Flow& flow) {
  // Lazy re-arm: just move the deadline. The armed event re-checks it and
  // hops forward when it fires early (OnRto) — an RTO interval's worth of
  // ACKs then costs one field write each instead of Cancel+Schedule pairs.
  flow.rto_deadline = simulator_->now() + flow.cur_rto;
  if (flow.rto_event != sim::kInvalidEvent) return;
  const uint64_t id = flow.spec().id;
  flow.rto_event =
      simulator_->ScheduleIn(flow.cur_rto, [this, id]() { OnRto(id); });
}

void HostNode::OnRto(uint64_t flow_id) {
  Flow* f = FindFlow(flow_id);
  if (f == nullptr) return;
  f->rto_event = sim::kInvalidEvent;
  if (f->done || !f->started) return;
  if (f->all_acked()) return;
  if (simulator_->now() < f->rto_deadline) {
    // Re-armed since this event was scheduled: sleep to the new deadline.
    const uint64_t id = flow_id;
    f->rto_event = simulator_->ScheduleAt(f->rto_deadline,
                                          [this, id]() { OnRto(id); });
    return;
  }
  // Real expiry: no forward progress for a full (backed-off) RTO.
  ++f->retx_timeouts;
  ++f->consecutive_rtos;
  f->last_activity = simulator_->now();
  if (config_.max_retx > 0 &&
      f->consecutive_rtos > static_cast<uint32_t>(config_.max_retx)) {
    FailFlow(*f, simulator_->now());
    return;
  }
  // Exponential backoff with a cap; forward ACK progress resets it.
  f->cur_rto = std::min(f->cur_rto * 2, config_.rto_max);
  if (f->recovery() == RecoveryMode::kGoBackN) {
    f->snd_nxt = f->snd_una;  // go-back-N from the first unacked byte
  } else {
    // IRN safety net: requeue every unacked segment and reset the inflight
    // estimate (acknowledgements for them are clearly not coming).
    for (uint64_t s = f->snd_una; s < f->snd_nxt;
         s += static_cast<uint64_t>(config_.mtu_bytes)) {
      if (f->irn_marked_lost.insert(s).second) f->irn_rtx_queue.insert(s);
    }
    f->irn_inflight_bytes = 0;
  }
  ArmRto(*f);
  TrySend(f->tx_port);
}

void HostNode::Receive(net::PacketPtr pkt, int in_port) {
  switch (pkt->type) {
    case net::PacketType::kPfcPause:
    case net::PacketType::kPfcResume:
      ports_[in_port]->SetPaused(pkt->pause_priority,
                                 pkt->type == net::PacketType::kPfcPause,
                                 simulator_->now());
      return;
    case net::PacketType::kData:
      HandleData(std::move(pkt));
      return;
    case net::PacketType::kAck:
    case net::PacketType::kNack:
    case net::PacketType::kCnp:
      HandleAckLike(std::move(pkt));
      return;
    case net::PacketType::kReadRequest: {
      // Responder side of RDMA READ: start the pre-registered flow.
      Flow* f = FindFlow(pkt->flow_id);
      if (f != nullptr && !f->started && !f->done) StartFlow(f);
      return;
    }
  }
}

void HostNode::SendControl(net::PacketPtr pkt, uint64_t flow_id) {
  port(PickPort(flow_id)).Enqueue(std::move(pkt));
}

// RX pipe, data direction: per-packet ACK/NACK with INT echo (§3.1 step 5),
// ECN echo, and DCQCN CNP generation.
void HostNode::HandleData(net::PacketPtr pkt) {
  const sim::TimePs now = simulator_->now();
  RxState& rx = RxStateFor(pkt->flow_id);

  // DCQCN: a CE-marked data packet elicits a CNP, at most one per 50 us.
  if (pkt->ecn_ce &&
      (rx.last_cnp < 0 || now - rx.last_cnp >= config_.cnp_interval)) {
    rx.last_cnp = now;
    SendControl(net::MakeCnp(pkt->flow_id, pkt->dst, pkt->src),
                pkt->flow_id);
  }

  const uint64_t seq = pkt->seq;
  const uint64_t end = seq + static_cast<uint64_t>(pkt->payload_bytes);

  if (!pkt->irn) {
    // Go-back-N receiver: no reorder buffer.
    if (seq <= rx.rcv_nxt) {
      rx.rcv_nxt = std::max(rx.rcv_nxt, end);
      SendControl(net::MakeAck(*pkt, rx.rcv_nxt), pkt->flow_id);
    } else if (rx.last_nack < 0 || now - rx.last_nack >= config_.nack_interval) {
      rx.last_nack = now;
      SendControl(net::MakeNack(*pkt, rx.rcv_nxt), pkt->flow_id);
    }
    return;
  }

  // IRN receiver: out-of-order data is kept; every packet is answered.
  if (seq <= rx.rcv_nxt) {
    rx.rcv_nxt = std::max(rx.rcv_nxt, end);
    // Merge any now-contiguous out-of-order ranges.
    rx.rcv_nxt = rx.ooo.MergeFrom(rx.rcv_nxt);
    SendControl(net::MakeAck(*pkt, rx.rcv_nxt), pkt->flow_id);
  } else {
    rx.ooo.Add(seq, end);
    SendControl(net::MakeNack(*pkt, rx.rcv_nxt), pkt->flow_id);
  }
}

// RX pipe, ACK direction: update flow state, feed the CC module (§4.2).
void HostNode::HandleAckLike(net::PacketPtr pkt) {
  Flow* flow = FindFlow(pkt->flow_id);
  if (flow == nullptr || flow->done) return;
  const sim::TimePs now = simulator_->now();
  ++acks_received_;

  if (pkt->type == net::PacketType::kCnp) {
    flow->cc().OnCnp(now);
    if (check_hooks_ != nullptr) [[unlikely]] {
      check_hooks_->OnCcUpdate(flow->spec().id, flow->cc().window_bytes(),
                               flow->cc().rate_bps(), now);
    }
    return;
  }

  const int64_t newly =
      pkt->seq > flow->snd_una
          ? static_cast<int64_t>(pkt->seq - flow->snd_una)
          : 0;
  flow->snd_una = std::max(flow->snd_una, pkt->seq);

  if (flow->recovery() == RecoveryMode::kIrn) {
    flow->irn_inflight_bytes = std::max<int64_t>(
        0, flow->irn_inflight_bytes - pkt->acked_payload_bytes);
    // Drop retransmit requests that cumulative progress made moot.
    while (!flow->irn_rtx_queue.empty() &&
           *flow->irn_rtx_queue.begin() < flow->snd_una) {
      flow->irn_rtx_queue.erase(flow->irn_rtx_queue.begin());
    }
    while (!flow->irn_marked_lost.empty() &&
           *flow->irn_marked_lost.begin() < flow->snd_una) {
      flow->irn_marked_lost.erase(flow->irn_marked_lost.begin());
    }
  }

  if (pkt->type == net::PacketType::kNack) {
    if (flow->recovery() == RecoveryMode::kGoBackN) {
      if (pkt->seq < flow->snd_nxt) flow->snd_nxt = pkt->seq;
    } else if (pkt->has_sack) {
      // IRN: everything between the cumulative ack and the out-of-order
      // arrival is a loss candidate.
      for (uint64_t s = pkt->seq; s < pkt->sack_seq;
           s += static_cast<uint64_t>(config_.mtu_bytes)) {
        if (s < flow->snd_una) continue;
        if (flow->irn_marked_lost.insert(s).second) {
          flow->irn_rtx_queue.insert(s);
        }
      }
    }
  }

  cc::AckInfo info;
  info.now = now;
  info.ack_seq = pkt->seq;
  info.snd_nxt = flow->snd_nxt;
  info.newly_acked = newly;
  info.ecn_echo = pkt->ecn_echo;
  info.rtt = pkt->data_sent_time > 0 ? now - pkt->data_sent_time : 0;
  info.rcp_rate_bps = pkt->rcp_rate_bps;
  info.int_stack = pkt->int_enabled ? &pkt->int_stack : nullptr;
  if (check_hooks_ != nullptr && info.int_stack != nullptr) {
    check_hooks_->OnIntEcho(flow->spec().id, *info.int_stack, now);
  }
  if (pkt->type == net::PacketType::kNack) {
    flow->cc().OnNack(info);
  } else {
    flow->cc().OnAck(info);
  }
  if (check_hooks_ != nullptr) [[unlikely]] {
    check_hooks_->OnCcUpdate(flow->spec().id, flow->cc().window_bytes(),
                             flow->cc().rate_bps(), now);
  }

  if (flow->all_acked()) {
    CompleteFlow(*flow, now);
  } else if (newly > 0) {
    // Forward progress: the backoff schedule starts over.
    flow->consecutive_rtos = 0;
    flow->cur_rto = config_.rto;
    flow->last_activity = now;
    ArmRto(*flow);
  }
  TrySend(flow->tx_port);
}

void HostNode::CompleteFlow(Flow& flow, sim::TimePs now) {
  flow.done = true;
  flow.finish_time = now;
  if (flow.rto_event != sim::kInvalidEvent) {
    simulator_->Cancel(flow.rto_event);
    flow.rto_event = sim::kInvalidEvent;
  }
  flow.cc().OnFlowDone();
  schedulers_[static_cast<size_t>(flow.tx_port)].Compact();
  if (flow_done_) flow_done_(flow, now);
}

void HostNode::FailFlow(Flow& flow, sim::TimePs now) {
  flow.failed = true;
  CompleteFlow(flow, now);
}

}  // namespace hpcc::host
