// Sorted small-vector byte-range set: the IRN receiver's out-of-order
// buffer, previously a std::map<uint64_t, uint64_t>.
//
// The structure sits on the per-packet RX path, and its population is almost
// always tiny (a handful of in-flight gaps), so entries live inline in the
// RxState until the set outgrows kInline — no allocation, no per-node
// pointer chase, and the linear scans run over one cache line.
//
// Semantics mirror the map-based code exactly (the fast-path determinism
// suite depends on byte-identical receiver behavior): ranges are keyed by
// start offset, Add on an existing start extends its end (never merges
// neighbors), and MergeFrom consumes leading ranges whose start is covered
// by the cumulative ack.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

namespace hpcc::host {

class OooRanges {
 public:
  struct Range {
    uint64_t start;
    uint64_t end;
  };

  OooRanges() = default;
  OooRanges(OooRanges&&) = default;
  OooRanges& operator=(OooRanges&&) = default;
  OooRanges(const OooRanges&) = delete;
  OooRanges& operator=(const OooRanges&) = delete;

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  const Range& at(size_t i) const {
    assert(i < size_);
    return begin()[i];
  }

  // Records [start, end) as received out of order. A range starting at the
  // same offset keeps the larger end (a retransmit can carry more payload).
  void Add(uint64_t start, uint64_t end) {
    Range* r = begin();
    size_t i = 0;
    while (i < size_ && r[i].start < start) ++i;
    if (i < size_ && r[i].start == start) {
      if (end > r[i].end) r[i].end = end;
      return;
    }
    InsertAt(i, Range{start, end});
  }

  // Consumes every leading range now covered by `rcv_nxt` (start <= rcv_nxt)
  // and returns the advanced cumulative position.
  uint64_t MergeFrom(uint64_t rcv_nxt) {
    Range* r = begin();
    size_t consumed = 0;
    while (consumed < size_ && r[consumed].start <= rcv_nxt) {
      if (r[consumed].end > rcv_nxt) rcv_nxt = r[consumed].end;
      ++consumed;
    }
    if (consumed > 0) {
      std::memmove(r, r + consumed, (size_ - consumed) * sizeof(Range));
      size_ -= consumed;
    }
    return rcv_nxt;
  }

 private:
  static constexpr size_t kInline = 6;

  Range* begin() { return spill_.empty() ? inline_ : spill_.data(); }
  const Range* begin() const {
    return spill_.empty() ? inline_ : spill_.data();
  }

  void InsertAt(size_t i, Range v) {
    if (spill_.empty() && size_ == kInline) {
      // One-way spill: once a flow has ever held >kInline gaps it stays on
      // the heap (re-inlining would buy little and churn allocations).
      spill_.assign(inline_, inline_ + size_);
    }
    if (!spill_.empty() || size_ == kInline) {
      spill_.insert(spill_.begin() + static_cast<ptrdiff_t>(i), v);
      ++size_;
      return;
    }
    Range* r = inline_;
    std::memmove(r + i + 1, r + i, (size_ - i) * sizeof(Range));
    r[i] = v;
    ++size_;
  }

  Range inline_[kInline];
  size_t size_ = 0;
  std::vector<Range> spill_;
};

}  // namespace hpcc::host
