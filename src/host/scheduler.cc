#include "host/scheduler.h"

#include <algorithm>

namespace hpcc::host {

bool FlowScheduler::HasDataToSend(const Flow& f) {
  if (f.done || !f.started) return false;
  if (f.recovery() == RecoveryMode::kIrn && !f.irn_rtx_queue.empty()) {
    return true;
  }
  return !f.all_sent();
}

bool FlowScheduler::WindowOpen(const Flow& f) {
  int64_t w = f.cc().window_bytes();
  if (f.recovery() == RecoveryMode::kIrn && f.irn_window_bytes > 0) {
    // IRN's fixed BDP window caps inflight bytes on top of the CC window.
    w = std::min(w, f.irn_window_bytes);
  }
  return f.inflight_bytes() < w;
}

Flow* FlowScheduler::PickEligible(sim::TimePs now) {
  const size_t n = flows_.size();
  for (size_t k = 0; k < n; ++k) {
    Flow* f = flows_[(rr_index_ + k) % n];
    if (HasDataToSend(*f) && WindowOpen(*f) && f->next_tx_time <= now) {
      rr_index_ = (rr_index_ + k + 1) % n;
      return f;
    }
  }
  return nullptr;
}

sim::TimePs FlowScheduler::NextWakeTime(sim::TimePs now) const {
  sim::TimePs best = -1;
  for (const Flow* f : flows_) {
    if (!HasDataToSend(*f) || !WindowOpen(*f)) continue;
    const sim::TimePs t = std::max(f->next_tx_time, now);
    if (best < 0 || t < best) best = t;
  }
  return best;
}

bool FlowScheduler::HasPendingData() const {
  for (const Flow* f : flows_) {
    if (HasDataToSend(*f)) return true;
  }
  return false;
}

void FlowScheduler::Compact() {
  std::erase_if(flows_, [](const Flow* f) { return f->done; });
  if (!flows_.empty()) rr_index_ %= flows_.size();
  else rr_index_ = 0;
}

}  // namespace hpcc::host
