// Per-flow sender state kept at the source host NIC (§4.2 flow context).
#pragma once

#include <cstdint>
#include <functional>
#include <set>

#include "cc/cc.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace hpcc::host {

// Loss-recovery discipline (Fig. 12).
enum class RecoveryMode {
  kGoBackN,  // RoCEv2 default: NACK rewinds snd_nxt to the lost packet
  kIrn,      // selective repeat behind a fixed-BDP window
};

struct FlowSpec {
  uint64_t id = 0;
  uint32_t src = 0;
  uint32_t dst = 0;
  uint64_t size_bytes = 0;
  sim::TimePs start_time = 0;
};

class Flow {
 public:
  Flow(const FlowSpec& spec, cc::CcPtr cc, RecoveryMode recovery)
      : spec_(spec), cc_(std::move(cc)), recovery_(recovery) {}

  const FlowSpec& spec() const { return spec_; }
  cc::CongestionControl& cc() { return *cc_; }
  const cc::CongestionControl& cc() const { return *cc_; }
  RecoveryMode recovery() const { return recovery_; }

  // --- sender progress ---
  uint64_t snd_nxt = 0;        // next new byte to send
  uint64_t snd_una = 0;        // lowest unacknowledged byte
  bool started = false;
  bool done = false;
  // Give-up outcome: the flow hit HostConfig::max_retx consecutive timeouts
  // and was abandoned. `done` is also set (the flow leaves the scheduler and
  // fires the completion callback), so accounting always checks `failed`
  // before treating `done` as success.
  bool failed = false;
  sim::TimePs finish_time = 0;

  // Pacing: earliest time the next packet may leave (token at rate R).
  sim::TimePs next_tx_time = 0;
  // NIC port this flow is pinned to at the source host.
  int tx_port = 0;

  // IRN state: exact per-packet inflight accounting plus the set of segment
  // offsets reported lost (to retransmit first). The window is a fixed BDP.
  int64_t irn_inflight_bytes = 0;
  std::set<uint64_t> irn_rtx_queue;
  std::set<uint64_t> irn_marked_lost;
  int64_t irn_window_bytes = 0;  // set by the host from BDP when kIrn

  // Retransmission safety timer, re-armed lazily: every ACK just moves the
  // deadline; the scheduled event re-checks and hops forward instead of a
  // Cancel+Schedule pair per ACK (see HostNode::ArmRto/OnRto).
  sim::EventId rto_event = sim::kInvalidEvent;
  sim::TimePs rto_deadline = 0;
  // Exponential backoff state: `cur_rto` starts at HostConfig::rto, doubles
  // on every expiry up to HostConfig::rto_max and snaps back on forward ACK
  // progress. `consecutive_rtos` drives the max_retx give-up;
  // `retx_timeouts` counts every real expiry over the flow's lifetime.
  sim::TimePs cur_rto = 0;
  uint32_t consecutive_rtos = 0;
  uint64_t retx_timeouts = 0;
  // Last instant the transport made observable forward progress on this
  // flow — start, ACK progress, or an RTO expiry taking recovery action.
  // The check-layer no-progress monitor flags flows stalled past this.
  sim::TimePs last_activity = 0;

  uint64_t bytes_remaining() const { return spec_.size_bytes - snd_nxt; }
  bool all_sent() const { return snd_nxt >= spec_.size_bytes; }
  bool all_acked() const { return snd_una >= spec_.size_bytes; }

  // Bytes charged against the congestion window.
  int64_t inflight_bytes() const {
    if (recovery_ == RecoveryMode::kIrn) return irn_inflight_bytes;
    return static_cast<int64_t>(snd_nxt - snd_una);
  }

 private:
  FlowSpec spec_;
  cc::CcPtr cc_;
  RecoveryMode recovery_;
};

// Completion callback: fired once when the flow's last byte is acknowledged.
using FlowDoneCallback = std::function<void(const Flow&, sim::TimePs now)>;

}  // namespace hpcc::host
