// Per-NIC-port flow scheduler (§4.2): round-robin across active flows whose
// pacing token has matured and whose congestion window permits, mirroring the
// FPGA's credit-based engine.
#pragma once

#include <cstdint>
#include <vector>

#include "host/flow.h"
#include "sim/time.h"

namespace hpcc::host {

class FlowScheduler {
 public:
  void Add(Flow* flow) { flows_.push_back(flow); }

  // Next flow allowed to transmit at `now` (round-robin among eligible),
  // or nullptr. A flow is eligible when it still has bytes to send (new or
  // retransmit), its window has room, and its pacing time has arrived.
  Flow* PickEligible(sim::TimePs now);

  // Earliest future time any window-open flow becomes eligible, or -1 if no
  // flow is waiting purely on pacing (then only an ACK can unblock us).
  sim::TimePs NextWakeTime(sim::TimePs now) const;

  // True when some flow still holds unsent (or retransmit) data. The NIC
  // port asks this at emission start to decide whether the emission boundary
  // needs an OnPortIdle pull event at all. Window and pacing state are
  // deliberately NOT part of the predicate: the boundary pull doubles as
  // the wake-(re)scheduler of last resort — a wake consumed by a TrySend
  // that found the NIC slot occupied re-arms only through this pull — so it
  // must keep firing while any flow could ever need one.
  bool HasPendingData() const;

  // Drops completed flows lazily; keeps iteration cheap on long runs.
  void Compact();

  size_t active_flows() const { return flows_.size(); }

 private:
  static bool HasDataToSend(const Flow& f);
  static bool WindowOpen(const Flow& f);

  std::vector<Flow*> flows_;
  size_t rr_index_ = 0;
};

}  // namespace hpcc::host
