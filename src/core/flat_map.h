// Open-addressing hash table for the forwarding hot path.
//
// The per-packet lookups (host flow tables, monitor ledgers) were
// std::unordered_map: one heap node per entry, a pointer chase per find, and
// a modulo per probe. FlatMap keeps {key, value} pairs in one flat
// power-of-two array with linear probing, so the common hit costs one hash,
// one mask and one (usually first-probe) compare on contiguous memory.
//
// Contract, chosen to fit those call sites exactly:
//  - Keys are nonzero uint64 (0 marks an empty slot). Callers with naturally
//    zero-based keys bias by +1.
//  - No erase. Flows and ledgers are never removed mid-run; tables die whole.
//  - Values must be movable; slot addresses are stable only until the next
//    rehash, so don't hold references across an insert (same rule as
//    unordered_map iterators-after-rehash, but for pointers too).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/hash.h"

namespace hpcc::core {

template <typename V>
class FlatMap {
 public:
  FlatMap() = default;

  // Returns the value for `key`, default-constructing it on first use.
  V& operator[](uint64_t key) {
    assert(key != 0 && "FlatMap keys must be nonzero");
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) Grow();
    size_t i = Probe(key);
    if (slots_[i].key == 0) {
      slots_[i].key = key;
      ++size_;
    }
    return slots_[i].value;
  }

  // Returns the value for `key`, or nullptr when absent. Never allocates.
  V* Find(uint64_t key) {
    if (slots_.empty()) return nullptr;
    const size_t i = Probe(key);
    return slots_[i].key == key ? &slots_[i].value : nullptr;
  }
  const V* Find(uint64_t key) const {
    return const_cast<FlatMap*>(this)->Find(key);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Visits every (key, value) pair in slot order — deterministic for a given
  // insertion history, which is all the end-of-run ledger sweeps need.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != 0) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    uint64_t key = 0;
    V value{};
  };

  // First slot holding `key`, or the empty slot where it would go.
  size_t Probe(uint64_t key) const {
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(SplitMix64(key)) & mask;
    while (slots_[i].key != 0 && slots_[i].key != key) i = (i + 1) & mask;
    return i;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    for (Slot& s : old) {
      if (s.key == 0) continue;
      slots_[Probe(s.key)] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace hpcc::core
