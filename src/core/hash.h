// splitmix64 finalizer: the one deterministic integer mixer used across the
// tree (ECMP hashing, flow->port pinning, trace digests, fuzz seeding). One
// definition so the avalanche constants can never diverge between users.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hpcc::core {

inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Sub-seed derivation for generator streams. Affine forms like
// `seed * 31 + stream` alias across (seed, stream) pairs — seed 1/stream 31
// equals seed 2/stream 0 — so nearby experiment seeds could share generator
// RNG streams exactly. Mixing seed and stream through separate avalanche
// rounds makes every (seed, stream) pair land on an independent 64-bit
// point; distinct pairs colliding is a ~2^-64 accident, not a pattern.
inline uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  return SplitMix64(SplitMix64(seed) ^ SplitMix64(~stream));
}

// FNV-1a over bytes: the stable string hash for cache keys recorded as
// provenance (fabric signatures, warm fingerprints in run manifests).
// std::hash is implementation-defined and may change across standard-library
// versions, which would silently invalidate recorded signatures; FNV-1a is
// fixed by construction.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hpcc::core
