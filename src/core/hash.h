// splitmix64 finalizer: the one deterministic integer mixer used across the
// tree (ECMP hashing, flow->port pinning, trace digests, fuzz seeding). One
// definition so the avalanche constants can never diverge between users.
#pragma once

#include <cstdint>

namespace hpcc::core {

inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace hpcc::core
