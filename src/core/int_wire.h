// Fig. 7 wire encoding of the per-hop INT record.
//
// The hardware format packs each hop into 64 bits:
//   B       4 bits   port speed enum (40/100/200/400G...)
//   TS     24 bits   egress timestamp, nanoseconds, wraps every ~16.8 ms
//   txBytes 20 bits  cumulative bytes sent, units of 128 B, wraps at 128 MB
//   qLen   16 bits   queue length, units of 80 B (max ~5.2 MB)
// Senders must therefore compute txRate and timestamps with wrap-safe
// modular deltas. This header provides the exact encode/decode plus the
// delta helpers HPCC needs; the simulator's in-memory IntHop keeps full
// precision, and these functions are exercised to prove the quantized
// format loses nothing the algorithm cares about.
#pragma once

#include <cstdint>

#include "core/int_header.h"

namespace hpcc::core {

inline constexpr int kTsBits = 24;
inline constexpr int kTxBytesBits = 20;
inline constexpr int kQlenBits = 16;
inline constexpr int64_t kTxBytesUnit = 128;  // bytes
inline constexpr int64_t kQlenUnit = 80;      // bytes
inline constexpr uint32_t kTsMask = (1u << kTsBits) - 1;
inline constexpr uint32_t kTxMask = (1u << kTxBytesBits) - 1;
inline constexpr uint32_t kQlenMask = (1u << kQlenBits) - 1;

// Port speed enum (4 bits). Values follow common ASIC conventions.
enum class PortSpeed : uint8_t {
  k10G = 1,
  k25G = 2,
  k40G = 3,
  k50G = 4,
  k100G = 5,
  k200G = 6,
  k400G = 7,
};

PortSpeed SpeedFromBps(int64_t bps);
int64_t BpsFromSpeed(PortSpeed speed);

// Packs a full-precision hop snapshot into the 64-bit wire word.
uint64_t EncodeHop(const IntHop& hop);

// Expands a wire word into a (wrapped, quantized) hop. `bandwidth_bps` is
// exact (enum), `ts` is modulo 2^24 ns, tx_bytes modulo 2^20 units.
struct WireHop {
  PortSpeed speed;
  uint32_t ts_ns;      // 24-bit ns
  uint32_t tx_units;   // 20-bit 128B units
  uint32_t qlen_units; // 16-bit 80B units
};
WireHop DecodeHop(uint64_t word);

// Wrap-safe deltas (the sender's view when computing txRate, Algorithm 1
// line 4). Results are in full-precision units.
int64_t TsDeltaNs(uint32_t now_ns, uint32_t prev_ns);
int64_t TxBytesDelta(uint32_t now_units, uint32_t prev_units);
// Queue length decoded to bytes.
int64_t QlenBytes(uint32_t qlen_units);

// Round-trip a full-precision hop through the wire format and reconstruct a
// sender-side estimate given the previous reconstructed snapshot. Returns
// the reconstructed txRate in bytes/sec (what MeasureInflight would use).
double WireTxRateBps(const IntHop& prev, const IntHop& now);

}  // namespace hpcc::core
