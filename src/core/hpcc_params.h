// HPCC's three tunables (§3.3) plus reaction-mode switches used for the
// ablations of §3.4 (txRate vs rxRate) and §5.4 (per-ACK vs per-RTT).
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace hpcc::core {

// How the sender reacts to ACKs (Fig. 13).
enum class ReactionMode {
  kHpcc,     // per-ACK updates against a per-RTT reference window (default)
  kPerAck,   // react to every ACK directly (overreacts, §3.2/Fig. 5)
  kPerRtt,   // update only once per RTT (slow, wastes early ACKs)
};

// Which rate signal enters the utilization estimate (§3.4, Fig. 6).
enum class RateSignal {
  kTxRate,   // paper's choice: egress txBytes delta
  kRxRate,   // ablation: arrival rate at the queue (qlen delta + tx delta)
};

struct HpccParams {
  // Target utilization η: keep each link's inflight bytes at η·B·T (§3.2).
  double eta = 0.95;
  // Consecutive additive-increase rounds before trying multiplicative
  // increase again (§3.3).
  int max_stage = 5;
  // Additive increase per update, in bytes. Rule of thumb:
  // W_AI = Winit·(1−η)/N for N expected concurrent flows (§3.3). A value of
  // <= 0 asks the algorithm to apply that rule with expected_flows below.
  double wai_bytes = -1.0;
  int expected_flows = 100;

  ReactionMode reaction = ReactionMode::kHpcc;
  RateSignal rate_signal = RateSignal::kTxRate;

  // Hardware division ablation (§4.3): compute W = Wc/k via the reciprocal
  // lookup table instead of floating-point division.
  bool use_div_table = false;

  // Hardware-faithful INT: switches stamp the quantized/wrapped Fig. 7
  // fields and the sender computes wrap-safe modular deltas (core/int_wire).
  bool wire_format = false;

  // Noise filters from Algorithm 1: min(qlen, last qlen) (line 5) and the
  // time-weighted EWMA of U (line 9). Disabling them is an ablation.
  bool use_min_qlen_filter = true;
  bool use_ewma = true;
};

}  // namespace hpcc::core
