// Reciprocal lookup table replacing hardware division (§4.3).
//
// The FPGA prototype avoids divisions by multiplying with stored values of
// 1/n. To bound memory, only those n are stored whose reciprocal differs from
// the previously stored one by a relative epsilon:
//     1/n_k − 1/n_{k+1} >= eps · 1/n_k
// i.e. the stored n form a geometric-like ladder. Looking up an arbitrary
// n <= n_max returns the reciprocal of the nearest stored n, with relative
// error bounded by eps. The paper stores {1/n | 1 <= n <= 2^22} in ~10 KB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpcc::core {

class DivTable {
 public:
  // eps: maximum relative error; n_max: largest divisor representable.
  explicit DivTable(double eps = 0.01, uint32_t n_max = 1u << 22);

  // Reciprocal of integer n (1 <= n <= n_max), within eps relative error.
  double Reciprocal(uint32_t n) const;

  // Divide x by d (> 0) using the table: d is scaled to a fixed-point
  // integer, the reciprocal looked up, and the scale reapplied. This is the
  // operation the CC module performs for W = Wc / k in Eqn (4).
  double Divide(double x, double d) const;

  size_t table_entries() const { return ns_.size(); }
  // Memory footprint a hardware table would need (§4.3 reports ~10 KB):
  // one n plus one reciprocal per entry.
  size_t ApproxBytes() const { return ns_.size() * (4 + 4); }
  double eps() const { return eps_; }
  uint32_t n_max() const { return n_max_; }

 private:
  double eps_;
  uint32_t n_max_;
  std::vector<uint32_t> ns_;       // stored divisors, ascending
  std::vector<double> recips_;     // 1/ns_[i]
};

}  // namespace hpcc::core
