#include "core/int_wire.h"

#include <cassert>

#include "sim/time.h"

namespace hpcc::core {

PortSpeed SpeedFromBps(int64_t bps) {
  if (bps <= 10'000'000'000) return PortSpeed::k10G;
  if (bps <= 25'000'000'000) return PortSpeed::k25G;
  if (bps <= 40'000'000'000) return PortSpeed::k40G;
  if (bps <= 50'000'000'000) return PortSpeed::k50G;
  if (bps <= 100'000'000'000) return PortSpeed::k100G;
  if (bps <= 200'000'000'000) return PortSpeed::k200G;
  return PortSpeed::k400G;
}

int64_t BpsFromSpeed(PortSpeed speed) {
  switch (speed) {
    case PortSpeed::k10G: return 10'000'000'000;
    case PortSpeed::k25G: return 25'000'000'000;
    case PortSpeed::k40G: return 40'000'000'000;
    case PortSpeed::k50G: return 50'000'000'000;
    case PortSpeed::k100G: return 100'000'000'000;
    case PortSpeed::k200G: return 200'000'000'000;
    case PortSpeed::k400G: return 400'000'000'000;
  }
  return 0;
}

uint64_t EncodeHop(const IntHop& hop) {
  const uint64_t speed = static_cast<uint64_t>(SpeedFromBps(hop.bandwidth_bps));
  const uint64_t ts_ns =
      static_cast<uint64_t>(hop.ts / sim::kPsPerNs) & kTsMask;
  const uint64_t tx_units =
      static_cast<uint64_t>(hop.tx_bytes / kTxBytesUnit) & kTxMask;
  // Queue length saturates at the 16-bit ceiling rather than wrapping: a
  // deeper queue than ~5.2 MB is "very congested" either way.
  uint64_t qlen_units = static_cast<uint64_t>(hop.qlen_bytes / kQlenUnit);
  if (qlen_units > kQlenMask) qlen_units = kQlenMask;
  return (speed << 60) | (ts_ns << 36) | (tx_units << 16) | qlen_units;
}

WireHop DecodeHop(uint64_t word) {
  WireHop out;
  out.speed = static_cast<PortSpeed>((word >> 60) & 0xf);
  out.ts_ns = static_cast<uint32_t>((word >> 36) & kTsMask);
  out.tx_units = static_cast<uint32_t>((word >> 16) & kTxMask);
  out.qlen_units = static_cast<uint32_t>(word & kQlenMask);
  return out;
}

int64_t TsDeltaNs(uint32_t now_ns, uint32_t prev_ns) {
  // Modular subtraction: correct as long as the true gap < 2^24 ns (~16.8ms),
  // far longer than any RTT the algorithm reacts across.
  return static_cast<int64_t>((now_ns - prev_ns) & kTsMask);
}

int64_t TxBytesDelta(uint32_t now_units, uint32_t prev_units) {
  // Correct while fewer than 2^20 * 128 B = 128 MB leave the port between
  // two ACKs of a flow — >1 ms even at 400 Gbps, i.e. always in practice.
  return static_cast<int64_t>((now_units - prev_units) & kTxMask) *
         kTxBytesUnit;
}

int64_t QlenBytes(uint32_t qlen_units) {
  return static_cast<int64_t>(qlen_units) * kQlenUnit;
}

double WireTxRateBps(const IntHop& prev, const IntHop& now) {
  const WireHop a = DecodeHop(EncodeHop(prev));
  const WireHop b = DecodeHop(EncodeHop(now));
  const int64_t dt_ns = TsDeltaNs(b.ts_ns, a.ts_ns);
  if (dt_ns <= 0) return 0;
  const int64_t dbytes = TxBytesDelta(b.tx_units, a.tx_units);
  return static_cast<double>(dbytes) * 8.0 * 1e9 /
         static_cast<double>(dt_ns);
}

}  // namespace hpcc::core
