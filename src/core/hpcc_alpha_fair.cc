#include "core/hpcc_alpha_fair.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/time.h"

namespace hpcc::core {

HpccAlphaFairCc::HpccAlphaFairCc(const cc::CcContext& ctx,
                                 const HpccParams& params, double alpha)
    : ctx_(ctx), params_(params), alpha_(alpha) {
  assert(alpha_ > 0);
  winit_ = static_cast<int64_t>(
      (static_cast<__int128>(ctx.nic_bps) * ctx.base_rtt) /
      (8 * sim::kPsPerSec));
  wai_ = params_.wai_bytes > 0
             ? params_.wai_bytes
             : static_cast<double>(winit_) * (1.0 - params_.eta) /
                   std::max(1, params_.expected_flows);
  W_ = static_cast<double>(winit_);
}

double HpccAlphaFairCc::Aggregate() const {
  // Eqn (7): W = (Σ W_i^{-α})^{-1/α}. Computed in log space for stability at
  // large α, where the expression approaches min_i W_i.
  if (n_links_ == 0) return static_cast<double>(winit_);
  double wmin = links_[0].w;
  for (int i = 1; i < n_links_; ++i) wmin = std::min(wmin, links_[i].w);
  if (alpha_ > 64) return wmin;  // numerically indistinguishable from min
  double sum = 0;
  for (int i = 0; i < n_links_; ++i) {
    sum += std::pow(links_[i].w / wmin, -alpha_);
  }
  return wmin * std::pow(sum, -1.0 / alpha_);
}

void HpccAlphaFairCc::OnAck(const cc::AckInfo& ack) {
  if (ack.int_stack == nullptr || ack.int_stack->n_hops() == 0) return;
  const IntStack& stack = *ack.int_stack;

  if (have_last_ &&
      (stack.n_hops() != n_links_ || stack.path_id() != last_path_id_)) {
    have_last_ = false;
  }
  if (!have_last_) {
    n_links_ = stack.n_hops();
    last_path_id_ = stack.path_id();
    for (int i = 0; i < n_links_; ++i) {
      const IntHop& h = stack.hop(i);
      links_[i] = LinkState{static_cast<double>(winit_),
                            static_cast<double>(winit_),
                            0.0,
                            0,
                            h.ts,
                            h.tx_bytes,
                            h.qlen_bytes,
                            h.bandwidth_bps};
    }
    have_last_ = true;
    last_update_seq_ = ack.snd_nxt;
    return;
  }

  const bool new_round = ack.ack_seq > last_update_seq_;
  const double t_sec = sim::ToSec(ctx_.base_rtt);

  for (int i = 0; i < n_links_; ++i) {
    LinkState& ls = links_[i];
    const IntHop& h = stack.hop(i);
    const sim::TimePs dt = h.ts - ls.ts;
    if (dt > 0) {
      const double dt_sec = sim::ToSec(dt);
      const double tx_Bps =
          static_cast<double>(h.tx_bytes - ls.tx_bytes) / dt_sec;
      const double b_Bps = static_cast<double>(h.bandwidth_bps) / 8.0;
      const double qlen =
          static_cast<double>(std::min(h.qlen_bytes, ls.qlen));
      const double u_sample = qlen / (b_Bps * t_sec) + tx_Bps / b_Bps;
      const double f =
          std::min(1.0, static_cast<double>(dt) / ctx_.base_rtt);
      ls.u = (1.0 - f) * ls.u + f * u_sample;

      // Same MI/AI staging as ComputeWind, but per link.
      if (ls.u >= params_.eta || ls.inc_stage >= params_.max_stage) {
        ls.w = ls.wc / (ls.u / params_.eta) + wai_;
        if (new_round) {
          ls.inc_stage = 0;
          ls.wc = ls.w;
        }
      } else {
        ls.w = ls.wc + wai_;
        if (new_round) {
          ++ls.inc_stage;
          ls.wc = ls.w;
        }
      }
      ls.w = std::clamp(ls.w, 1.0, static_cast<double>(winit_));
      if (new_round) ls.wc = std::clamp(ls.wc, 1.0, static_cast<double>(winit_));
    }
    ls.ts = h.ts;
    ls.tx_bytes = h.tx_bytes;
    ls.qlen = h.qlen_bytes;
    ls.bandwidth_bps = h.bandwidth_bps;
  }
  if (new_round) last_update_seq_ = ack.snd_nxt;

  W_ = std::clamp(Aggregate(), 1.0, static_cast<double>(winit_));
}

int64_t HpccAlphaFairCc::window_bytes() const {
  return static_cast<int64_t>(std::llround(std::max(W_, 1.0)));
}

int64_t HpccAlphaFairCc::rate_bps() const {
  const double bps = W_ * 8.0 / sim::ToSec(ctx_.base_rtt);
  return static_cast<int64_t>(
      std::min(bps, static_cast<double>(ctx_.nic_bps)));
}

}  // namespace hpcc::core
