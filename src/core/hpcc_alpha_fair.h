// Appendix A.3 extension: per-resource registers with alpha-fair aggregation.
//
// The appendix sketches a variant where a source keeps one register R_i per
// resource on its path, each updated by its own multiplicative law
//     R_i <- R_i · U_target / U_i + a
// and the flow's rate is the alpha-fair aggregate
//     R = (Σ_i R_i^{-α})^{-1/α}                               (Eqn 7)
// α→∞ recovers max-min fairness (the min over links, i.e. base HPCC's
// max_j U_j reaction), α=1 proportional fairness, α→0 throughput
// maximization. We realize it in window form (W_i = R_i·T), consistent with
// the rest of the implementation: each link keeps its own reference window
// synced once per RTT, and the sending window is the α-aggregate.
#pragma once

#include <array>

#include "cc/cc.h"
#include "core/hpcc_params.h"
#include "core/int_header.h"

namespace hpcc::core {

class HpccAlphaFairCc : public cc::CongestionControl {
 public:
  HpccAlphaFairCc(const cc::CcContext& ctx, const HpccParams& params,
                  double alpha);

  void OnAck(const cc::AckInfo& ack) override;
  int64_t window_bytes() const override;
  int64_t rate_bps() const override;
  bool wants_int() const override { return true; }
  std::string name() const override { return "hpcc-alpha-fair"; }

  double alpha() const { return alpha_; }
  double link_window(int i) const { return links_[i].w; }
  int n_links() const { return n_links_; }

 private:
  struct LinkState {
    double w = 0;        // current per-link window
    double wc = 0;       // per-link reference window
    double u = 0;        // per-link EWMA of normalized inflight
    int inc_stage = 0;
    sim::TimePs ts = 0;  // last INT snapshot
    uint64_t tx_bytes = 0;
    int64_t qlen = 0;
    int64_t bandwidth_bps = 0;
  };

  double Aggregate() const;

  cc::CcContext ctx_;
  HpccParams params_;
  double alpha_;
  double wai_ = 0;
  int64_t winit_ = 0;
  double W_ = 0;

  std::array<LinkState, kMaxIntHops> links_{};
  int n_links_ = 0;
  uint16_t last_path_id_ = 0;
  bool have_last_ = false;
  uint64_t last_update_seq_ = 0;
};

}  // namespace hpcc::core
