#include "core/hpcc.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/int_wire.h"
#include "sim/time.h"

namespace hpcc::core {

std::shared_ptr<const DivTable> SharedDivTable() {
  static const std::shared_ptr<const DivTable> table =
      std::make_shared<DivTable>(/*eps=*/0.005);
  return table;
}

HpccCc::HpccCc(const cc::CcContext& ctx, const HpccParams& params)
    : ctx_(ctx), params_(params) {
  assert(ctx.nic_bps > 0 && ctx.base_rtt > 0);
  // Winit = B_nic * T so flows start at line rate (§3.2).
  winit_ = static_cast<int64_t>(
      (static_cast<__int128>(ctx.nic_bps) * ctx.base_rtt) /
      (8 * sim::kPsPerSec));
  if (params_.wai_bytes > 0) {
    wai_ = params_.wai_bytes;
  } else {
    // Rule of thumb W_AI = Winit·(1−η)/N (§3.3).
    wai_ = static_cast<double>(winit_) * (1.0 - params_.eta) /
           std::max(1, params_.expected_flows);
  }
  W_ = static_cast<double>(winit_);
  Wc_ = W_;
  if (params_.use_div_table) div_table_ = SharedDivTable();
}

double HpccCc::Div(double x, double d) const {
  if (div_table_) return div_table_->Divide(x, d);
  return x / d;
}

// Algorithm 1, MeasureInflight: returns the EWMA-filtered normalized inflight
// bytes U of the most loaded link on the path.
double HpccCc::MeasureInflight(const cc::AckInfo& ack) {
  const core::IntStack& stack = *ack.int_stack;
  const double t_sec = sim::ToSec(ctx_.base_rtt);

  double u = -1;                // line 2 (init below any real sample so the
                                // first hop always sets tau)
  sim::TimePs tau = 0;
  for (int i = 0; i < stack.n_hops(); ++i) {  // line 3
    const IntHop& hop = stack.hop(i);
    const LinkRecord& last = last_links_[i];
    sim::TimePs dt;
    double dtx_bytes;
    if (params_.wire_format) {
      // Fig. 7 hardware counters wrap (24-bit ns timestamp, 20-bit 128B
      // txBytes); reconstruct the deltas modulo the field widths.
      dt = TsDeltaNs(static_cast<uint32_t>(hop.ts / sim::kPsPerNs),
                     static_cast<uint32_t>(last.ts / sim::kPsPerNs)) *
           sim::kPsPerNs;
      dtx_bytes = static_cast<double>(TxBytesDelta(
          static_cast<uint32_t>(hop.tx_bytes / kTxBytesUnit),
          static_cast<uint32_t>(last.tx_bytes / kTxBytesUnit)));
    } else {
      dt = hop.ts - last.ts;
      dtx_bytes = static_cast<double>(hop.tx_bytes - last.tx_bytes);
    }
    if (dt <= 0) continue;  // duplicate/stale snapshot of this hop
    const double dt_sec = sim::ToSec(dt);
    // line 4: txRate from the delta of the egress byte counter.
    const double tx_rate_Bps = dtx_bytes / dt_sec;
    const double b_Bps = static_cast<double>(hop.bandwidth_bps) / 8.0;
    double rate_Bps = tx_rate_Bps;
    if (params_.rate_signal == RateSignal::kRxRate) {
      // Ablation (§3.4, Fig. 6): the queue's *arrival* rate instead of its
      // departure rate: rx = tx + dqlen/dt.
      rate_Bps += static_cast<double>(hop.qlen_bytes - last.qlen) / dt_sec;
      rate_Bps = std::max(rate_Bps, 0.0);
    }
    // line 5: min(qlen_now, qlen_last) filters transient spikes.
    const double qlen = params_.use_min_qlen_filter
                            ? static_cast<double>(
                                  std::min(hop.qlen_bytes, last.qlen))
                            : static_cast<double>(hop.qlen_bytes);
    const double u_prime = qlen / (b_Bps * t_sec) + rate_Bps / b_Bps;
    if (u_prime > u) {  // lines 6-7
      u = u_prime;
      tau = dt;
    }
  }
  if (u < 0 || tau <= 0) return U_;  // no fresh hop snapshot in this ACK
  tau = std::min(tau, ctx_.base_rtt);  // line 8
  if (params_.use_ewma) {
    // line 9: time-weighted EWMA; the weight of new samples scales with the
    // inter-ACK gap, so the filter is parameterless (§3.4).
    const double f = static_cast<double>(tau) / ctx_.base_rtt;
    U_ = (1.0 - f) * U_ + f * u;
  } else {
    U_ = u;
  }
  return U_;  // line 10
}

// Algorithm 1, ComputeWind.
double HpccCc::ComputeWind(double u, bool update_wc) {
  double w;
  if (u >= params_.eta || inc_stage_ >= params_.max_stage) {  // line 12
    // line 13: multiplicative adjustment toward η, plus additive increase.
    w = Div(Wc_, u / params_.eta) + wai_;
    if (update_wc) {  // lines 14-15
      inc_stage_ = 0;
      Wc_ = w;
    }
  } else {
    w = Wc_ + wai_;  // line 17
    if (update_wc) {  // lines 18-19
      ++inc_stage_;
      Wc_ = w;
    }
  }
  return w;  // line 20
}

// Algorithm 1, NewAck (lines 21-27).
void HpccCc::OnAck(const cc::AckInfo& ack) {
  if (ack.int_stack == nullptr || ack.int_stack->n_hops() == 0) return;
  const core::IntStack& stack = *ack.int_stack;

  // Path change detection (§4.1): drop stale link records.
  if (have_last_ && (stack.n_hops() != last_n_hops_ ||
                     stack.path_id() != last_path_id_)) {
    have_last_ = false;
  }

  if (!have_last_) {
    // First ACK on this path: only prime L; txRate needs two snapshots.
    for (int i = 0; i < stack.n_hops(); ++i) {
      const IntHop& h = stack.hop(i);
      last_links_[i] = {h.ts, h.tx_bytes, h.qlen_bytes, h.bandwidth_bps};
    }
    last_n_hops_ = stack.n_hops();
    last_path_id_ = stack.path_id();
    have_last_ = true;
    last_update_seq_ = ack.snd_nxt;
    return;
  }

  const bool new_round = ack.ack_seq > last_update_seq_;  // line 22
  bool react = true;
  bool update_wc = false;
  switch (params_.reaction) {
    case ReactionMode::kHpcc:
      update_wc = new_round;  // lines 23-26
      break;
    case ReactionMode::kPerAck:
      update_wc = true;  // blindly treat every ACK as a fresh round (Fig. 5)
      break;
    case ReactionMode::kPerRtt:
      update_wc = new_round;
      react = new_round;  // ignore ACKs within the round entirely
      break;
  }

  const double u = MeasureInflight(ack);
  if (react) {
    W_ = ComputeWind(u, update_wc);
    // Practical clamps: the NIC cannot have more than line-rate inflight, and
    // the window must stay positive so the flow can always trickle.
    W_ = std::clamp(W_, 1.0, static_cast<double>(winit_));
    if (update_wc) Wc_ = std::clamp(Wc_, 1.0, static_cast<double>(winit_));
    if (update_wc) last_update_seq_ = ack.snd_nxt;  // line 24
  }

  // Line 27: R = W/T is implicit (rate_bps derives from W_); L = ack.L:
  for (int i = 0; i < stack.n_hops(); ++i) {
    const IntHop& h = stack.hop(i);
    last_links_[i] = {h.ts, h.tx_bytes, h.qlen_bytes, h.bandwidth_bps};
  }
  last_n_hops_ = stack.n_hops();
  last_path_id_ = stack.path_id();
}

int64_t HpccCc::window_bytes() const {
  return static_cast<int64_t>(std::llround(std::max(W_, 1.0)));
}

int64_t HpccCc::rate_bps() const {
  // R = W / T (§3.2).
  const double bps = W_ * 8.0 / sim::ToSec(ctx_.base_rtt);
  return static_cast<int64_t>(
      std::min(bps, static_cast<double>(ctx_.nic_bps)));
}

}  // namespace hpcc::core
