// In-network telemetry (INT) records, following the packet format of Fig. 7.
//
// Each switch hop appends one 64-bit record describing the state of the
// packet's egress port at the moment the packet is emitted:
//   B       egress link speed (enum of port speeds in hardware; we keep bps)
//   TS      timestamp when the packet left the egress port
//   txBytes accumulated bytes ever sent from that egress port
//   qLen    egress queue length at dequeue
// plus two header-level fields: nHop (hop count) and pathID (XOR of switch
// IDs, used by the sender to detect path changes, §4.1).
//
// The wire format packs a 5-hop stack into 42 bytes; our in-memory struct is
// wider for convenience but WireBytes() charges the paper's exact overhead.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>

#include "sim/time.h"

namespace hpcc::core {

// DC paths are <= 5 switch hops (§4.1). A packet in flight while link
// failures recompute routes can be forwarded extra hops before the tables
// settle; the stack saturates then (Push) rather than growing, like the
// fixed-capacity telemetry of real INT hardware.
inline constexpr int kMaxIntHops = 8;

// Per-hop egress port snapshot.
struct IntHop {
  int64_t bandwidth_bps = 0;   // B: egress link capacity
  sim::TimePs ts = 0;          // TS: dequeue timestamp
  uint64_t tx_bytes = 0;       // txBytes: cumulative bytes sent on the port
  int64_t qlen_bytes = 0;      // qLen: egress queue depth at dequeue
  uint32_t switch_id = 0;      // contributes to pathID
};

// The INT stack carried by a data packet and echoed back in its ACK.
//
// Copying moves only the live hop prefix: the stack rides every data packet
// and its ACK echo, and the packet pool scrubs recycled packets with a
// whole-struct assignment — copying all kMaxIntHops slots (320 B) per packet
// per cycle was one of the larger fixed costs on the forward path. Slots at
// or beyond n_hops() are unreadable through the interface (hop() asserts),
// so stale contents there are unobservable.
class IntStack {
 public:
  IntStack() = default;
  IntStack(const IntStack& other) { *this = other; }
  IntStack& operator=(const IntStack& other) {
    for (int i = 0; i < other.n_hops_; ++i) hops_[i] = other.hops_[i];
    n_hops_ = other.n_hops_;
    path_id_ = other.path_id_;
    return *this;
  }

  void Clear() { n_hops_ = 0; path_id_ = 0; }

  // Called by each switch egress port when the packet is emitted (§3.1 step 2).
  // A full stack saturates — further hops are not recorded — mirroring the
  // fixed-capacity telemetry of real INT hardware. (Overrunning is possible
  // when transient post-reroute forwarding makes a path pathologically long;
  // writing past the array here used to corrupt the packet, found by the
  // scenario fuzzer under UBSan.)
  void Push(const IntHop& hop) {
    if (n_hops_ == kMaxIntHops) return;
    hops_[n_hops_++] = hop;
    path_id_ ^= static_cast<uint16_t>(hop.switch_id & 0x0fff);
  }

  int n_hops() const { return n_hops_; }
  uint16_t path_id() const { return path_id_; }
  const IntHop& hop(int i) const {
    assert(i >= 0 && i < n_hops_);
    return hops_[i];
  }

  // Paper wire format: 2 bytes of nHop/pathID + 8 bytes per hop
  // ("42 bytes for 5 hops", §4.1).
  int WireBytes() const { return 2 + 8 * n_hops_; }

  // Worst-case overhead charged to every HPCC data packet in the evaluation
  // (§5.1 "INT overhead": 42 bytes).
  static constexpr int kWorstCaseWireBytes = 2 + 8 * 5;

 private:
  std::array<IntHop, kMaxIntHops> hops_;  // only [0, n_hops_) is ever read
  int n_hops_ = 0;
  uint16_t path_id_ = 0;
};

}  // namespace hpcc::core
