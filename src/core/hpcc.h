// HPCC sender algorithm — the paper's primary contribution (§3, Algorithm 1).
//
// HPCC is window-based: it controls inflight bytes, paced at R = W/T. Each
// ACK carries the INT records of every hop; the sender estimates each link's
// normalized inflight bytes
//     U_j = qlen_j/(B_j·T) + txRate_j/B_j                      (Eqn 2)
// and multiplicatively adjusts its window against the most congested link,
// with a small additive-increase term for fairness:
//     W_i = W_i^c / (max_j U_j / η) + W_AI                     (Eqn 4)
// where W^c is a *reference window* only re-synced once per RTT, which gives
// fast per-ACK reaction without overreacting to ACKs that describe the same
// queue (Fig. 5). Additive increase runs for maxStage rounds before a
// multiplicative probe (ComputeWind, lines 11-20).
#pragma once

#include <array>
#include <memory>
#include <optional>

#include "cc/cc.h"
#include "core/div_table.h"
#include "core/hpcc_params.h"
#include "core/int_header.h"

namespace hpcc::core {

class HpccCc : public cc::CongestionControl {
 public:
  HpccCc(const cc::CcContext& ctx, const HpccParams& params);

  void OnAck(const cc::AckInfo& ack) override;
  void OnNack(const cc::AckInfo& nack) override { OnAck(nack); }

  int64_t window_bytes() const override;
  int64_t rate_bps() const override;
  bool wants_int() const override { return true; }
  std::string name() const override { return "hpcc"; }

  // Introspection for tests and ablation benches.
  double utilization_estimate() const { return U_; }
  double window_raw() const { return W_; }
  double reference_window() const { return Wc_; }
  int inc_stage() const { return inc_stage_; }
  double wai_bytes() const { return wai_; }
  int64_t winit_bytes() const { return winit_; }
  uint64_t last_update_seq() const { return last_update_seq_; }

 private:
  // Algorithm 1 lines 1-10.
  double MeasureInflight(const cc::AckInfo& ack);
  // Algorithm 1 lines 11-20.
  double ComputeWind(double u, bool update_wc);
  // Divide per Eqn (4); routed through the reciprocal table when enabled.
  double Div(double x, double d) const;

  cc::CcContext ctx_;
  HpccParams params_;
  double wai_ = 0;        // resolved W_AI in bytes
  int64_t winit_ = 0;     // B_nic * T (§3.2)

  double W_ = 0;          // current window (bytes)
  double Wc_ = 0;         // reference window W^c (bytes)
  double U_ = 0;          // EWMA of normalized inflight bytes
  int inc_stage_ = 0;     // incStage
  uint64_t last_update_seq_ = 0;  // lastUpdateSeq
  bool seen_first_update_ = false;

  // L: the link feedback recorded at the previous ACK (Algorithm 1 header).
  struct LinkRecord {
    sim::TimePs ts = 0;
    uint64_t tx_bytes = 0;
    int64_t qlen = 0;
    int64_t bandwidth_bps = 0;
  };
  std::array<LinkRecord, kMaxIntHops> last_links_{};
  int last_n_hops_ = 0;
  uint16_t last_path_id_ = 0;
  bool have_last_ = false;

  std::shared_ptr<const DivTable> div_table_;
};

// Shared reciprocal table (built once; ~10 KB equivalent, §4.3).
std::shared_ptr<const DivTable> SharedDivTable();

}  // namespace hpcc::core
