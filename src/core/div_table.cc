#include "core/div_table.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hpcc::core {

DivTable::DivTable(double eps, uint32_t n_max) : eps_(eps), n_max_(n_max) {
  assert(eps > 0 && eps < 1);
  assert(n_max >= 1);
  // Store n = 1, then each next n whose reciprocal dropped by >= eps
  // relatively: 1/n <= (1 - eps)/n_prev  <=>  n >= n_prev / (1 - eps).
  uint32_t n = 1;
  while (n <= n_max) {
    ns_.push_back(n);
    recips_.push_back(1.0 / n);
    double next = std::ceil(static_cast<double>(n) / (1.0 - eps));
    uint32_t next_n = static_cast<uint32_t>(next);
    if (next_n <= n) next_n = n + 1;
    n = next_n;
  }
}

double DivTable::Reciprocal(uint32_t n) const {
  assert(n >= 1);
  n = std::min(n, n_max_);
  // Largest stored divisor <= n: its reciprocal overestimates 1/n by at most
  // the construction epsilon.
  auto it = std::upper_bound(ns_.begin(), ns_.end(), n);
  size_t idx = static_cast<size_t>(it - ns_.begin()) - 1;
  return recips_[idx];
}

double DivTable::Divide(double x, double d) const {
  assert(d > 0);
  // Scale d into the integer range [2^16, 2^22] to keep quantization error
  // below the table epsilon for any magnitude, mirroring the fixed-point
  // normalization a hardware pipeline performs.
  int exp = 0;
  double mant = std::frexp(d, &exp);          // d = mant * 2^exp, mant in [0.5,1)
  double scaled = std::ldexp(mant, 17);       // in [2^16, 2^17)
  uint32_t n = static_cast<uint32_t>(std::lround(scaled));
  double recip = Reciprocal(n);               // approx 2^-17 / mant... times
  // x / d = x * (1/mant) * 2^-exp = x * recip * 2^(17-exp)
  return std::ldexp(x * recip, 17 - exp);
}

}  // namespace hpcc::core
