// Low-level instrumentation hooks for the invariant-monitor subsystem.
//
// This header is the only piece of src/check the forwarding layers see:
// net::Node carries one `NetHooks*` (null by default), and the hot paths
// guard every call with a single pointer test, so an unmonitored simulation
// pays one predictable branch per hook site and nothing else (the
// "check/..." benchmarks in tools/bench_report pin this down).
//
// Everything above it — the InvariantMonitor interface, the registry that
// fans one NetHooks out to many monitors, and the concrete monitors — lives
// in check/invariant.h and check/monitors.h.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace hpcc::net {
struct Packet;
}
namespace hpcc::core {
class IntStack;
}

namespace hpcc::check {

// Why a node discarded a packet (see SwitchNode::Receive/AdmitAndForward and
// net::Node::Deliver for the corruption path).
enum class DropReason {
  kNoRoute,          // destination unreachable (link failures)
  kBufferFull,       // shared buffer exhausted — must not happen under PFC
  kEgressThreshold,  // lossy-mode dynamic egress threshold (pfc off only)
  kCorrupt,          // seeded scenario `corrupt` event (fault injection)
};

// Number of DropReason values, for per-reason counter arrays (switch
// counters, telemetry, CSV columns).
inline constexpr int kNumDropReasons = 4;

// One dequeue observation inside a burst (OnDequeueBurst). `pkt` stays valid
// only for the duration of the call; `queue_bytes_after` is the occupancy of
// the packet's (port, priority) queue at its emission instant, excluding it —
// the same value the per-packet OnDequeue hook reports.
struct DequeueRecord {
  const net::Packet* pkt;
  int64_t queue_bytes_after;
};

// Observation points the simulator/net layers expose. All methods default to
// no-ops so implementations override only what they watch. Calls arrive
// strictly on the simulation thread, in event order.
class NetHooks {
 public:
  virtual ~NetHooks() = default;

  // A packet entered an egress queue; `queue_bytes_after` is the occupancy
  // of that (port, priority) queue including the packet.
  virtual void OnEnqueue(uint32_t /*node*/, int /*port*/,
                         const net::Packet& /*pkt*/,
                         int64_t /*queue_bytes_after*/) {}
  // A packet left an egress queue for the wire; occupancy excludes it.
  virtual void OnDequeue(uint32_t /*node*/, int /*port*/,
                         const net::Packet& /*pkt*/,
                         int64_t /*queue_bytes_after*/) {}
  // A transmission train emitted `n` packets back-to-back from one port (in
  // emission order). The fast path accumulates per-burst records and flushes
  // them through this single call instead of n virtual dispatches; the
  // default unpacks to OnDequeue so observers see one stream either way.
  virtual void OnDequeueBurst(uint32_t node, int port,
                              const DequeueRecord* recs, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      OnDequeue(node, port, *recs[i].pkt, recs[i].queue_bytes_after);
    }
  }
  // A switch dropped a packet instead of forwarding it.
  virtual void OnDrop(uint32_t /*node*/, const net::Packet& /*pkt*/,
                      DropReason /*reason*/) {}
  // An egress direction (node, port, priority) was paused or resumed by a
  // PFC frame from its peer.
  virtual void OnPauseChange(uint32_t /*node*/, int /*port*/,
                             int /*priority*/, bool /*paused*/,
                             sim::TimePs /*now*/) {}
  // A flow's congestion-control state was updated (ACK/NACK/CNP processed);
  // window/rate are the values the sender will use from now on.
  virtual void OnCcUpdate(uint64_t /*flow_id*/, int64_t /*window_bytes*/,
                          int64_t /*rate_bps*/, sim::TimePs /*now*/) {}
  // An ACK/NACK carrying an INT stack reached the sender (before the CC
  // module consumes it).
  virtual void OnIntEcho(uint64_t /*flow_id*/,
                         const core::IntStack& /*stack*/,
                         sim::TimePs /*now*/) {}
};

}  // namespace hpcc::check
