// Invariant monitors: always-on correctness checks over a live simulation.
//
// An InvariantMonitor is a NetHooks implementation that watches one global
// property (conservation, bounds, protocol sanity) and reports violations
// instead of crashing, so a fuzz run can finish, collect every violation and
// emit a reproducer. The MonitorRegistry fans the single per-node hook
// pointer out to any number of monitors and owns the violation log.
//
// Usage:
//   check::MonitorRegistry reg;                  // must outlive the run
//   runner::Experiment e(cfg);
//   check::InstallStandardMonitors(reg, e);      // monitors.h
//   auto result = e.Run();
//   reg.Finish(e.simulator().now());             // end-of-run checks
//   for (const auto& v : reg.violations()) ...
//
// Cost model: with no registry attached the hook pointer is null and every
// hook site is one predictable branch (see check/hooks.h); with a registry
// attached the cost is one virtual call per hook per monitor that overrides
// it. Monitors must never mutate simulation state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/hooks.h"
#include "sim/time.h"

namespace hpcc::topo {
class Topology;
}
namespace hpcc::sim {
class Simulator;
}

namespace hpcc::check {

class MonitorRegistry;

struct Violation {
  std::string monitor;   // reporting monitor's name()
  std::string message;   // what broke, with enough context to debug
  sim::TimePs at = 0;    // simulation time of detection

  std::string Format() const;  // "[t=12.3us] monitor: message"
};

class InvariantMonitor : public NetHooks {
 public:
  // Which hook families a monitor consumes. The registry fans each hook out
  // only to interested monitors, so one enqueue costs one virtual call per
  // monitor that actually watches enqueues instead of one per monitor.
  enum Interest : unsigned {
    kEnqueue = 1u << 0,
    kDequeue = 1u << 1,
    kDrop = 1u << 2,
    kPause = 1u << 3,
    kCcUpdate = 1u << 4,
    kIntEcho = 1u << 5,
    kAll = ~0u,
  };

  virtual std::string name() const = 0;
  // Hook families this monitor overrides; default subscribes to everything
  // (always safe, just slower).
  virtual unsigned interests() const { return kAll; }
  // Called once after the run (registry.Finish): residual/closure checks.
  virtual void OnFinish(sim::TimePs /*now*/) {}

 protected:
  // Files a violation with the owning registry. Safe to call from any hook;
  // a monitor not yet added to a registry drops the report.
  void Report(sim::TimePs at, std::string message);

 private:
  friend class MonitorRegistry;
  MonitorRegistry* registry_ = nullptr;
};

// Fans NetHooks out to the registered monitors and collects violations.
class MonitorRegistry final : public NetHooks {
 public:
  // At most this many violations keep their full text; beyond it only the
  // count grows (a broken invariant in a hot loop would otherwise OOM).
  static constexpr size_t kMaxStoredViolations = 200;

  MonitorRegistry() = default;
  MonitorRegistry(const MonitorRegistry&) = delete;
  MonitorRegistry& operator=(const MonitorRegistry&) = delete;

  InvariantMonitor* Add(std::unique_ptr<InvariantMonitor> monitor);
  size_t num_monitors() const { return monitors_.size(); }

  // Installs this registry as the check-hooks sink of every node in the
  // topology. The registry must outlive the simulation.
  void AttachTo(topo::Topology& topology);
  // Shard-local variant: installs on the listed nodes only, so each lane's
  // registry sees exactly its own nodes' hooks (no cross-thread reports).
  void AttachTo(topo::Topology& topology, const std::vector<uint32_t>& nodes);

  // Optional clock: hooks without a time argument (enqueue/dequeue/drop)
  // report at t=0 unless a clock is set, in which case every violation is
  // stamped with the simulation time at detection.
  void set_clock(const sim::Simulator* clock) { clock_ = clock; }

  // Runs every monitor's end-of-run checks. Call once, after the run.
  void Finish(sim::TimePs now);

  void ReportViolation(Violation v);
  const std::vector<Violation>& violations() const { return violations_; }
  size_t violation_count() const { return violation_count_; }
  bool ok() const { return violation_count_ == 0; }
  // One line per stored violation (plus a truncation note if applicable).
  std::string Summary() const;

  // NetHooks fan-out.
  void OnEnqueue(uint32_t node, int port, const net::Packet& pkt,
                 int64_t queue_bytes_after) override;
  void OnDequeue(uint32_t node, int port, const net::Packet& pkt,
                 int64_t queue_bytes_after) override;
  void OnDequeueBurst(uint32_t node, int port, const DequeueRecord* recs,
                      size_t n) override;
  void OnDrop(uint32_t node, const net::Packet& pkt,
              DropReason reason) override;
  void OnPauseChange(uint32_t node, int port, int priority, bool paused,
                     sim::TimePs now) override;
  void OnCcUpdate(uint64_t flow_id, int64_t window_bytes, int64_t rate_bps,
                  sim::TimePs now) override;
  void OnIntEcho(uint64_t flow_id, const core::IntStack& stack,
                 sim::TimePs now) override;

 private:
  std::vector<std::unique_ptr<InvariantMonitor>> monitors_;
  // Per-hook interest lists (raw views into monitors_), built at Add time.
  std::vector<InvariantMonitor*> on_enqueue_;
  std::vector<InvariantMonitor*> on_dequeue_;
  std::vector<InvariantMonitor*> on_drop_;
  std::vector<InvariantMonitor*> on_pause_;
  std::vector<InvariantMonitor*> on_cc_;
  std::vector<InvariantMonitor*> on_int_;
  std::vector<Violation> violations_;
  size_t violation_count_ = 0;
  const sim::Simulator* clock_ = nullptr;
};

}  // namespace hpcc::check
