#include "check/monitors.h"

#include <algorithm>
#include <string>

#include "net/packet.h"
#include "runner/experiment.h"

namespace hpcc::check {
namespace {

// Keys are biased by +1: core::FlatMap reserves key 0 for empty slots, and
// (node 0, port 0[, prio 0]) is a legal queue.
uint64_t PortKey(uint32_t node, int port) {
  return ((static_cast<uint64_t>(node) << 16) |
          static_cast<uint64_t>(port & 0xffff)) +
         1;
}

uint64_t QueueKey(uint32_t node, int port, int priority) {
  return (((PortKey(node, port) - 1) << 2) |
          static_cast<uint64_t>(priority & 3)) +
         1;
}

std::string QueueName(uint32_t node, int port, int priority) {
  return "node " + std::to_string(node) + " port " + std::to_string(port) +
         " prio " + std::to_string(priority);
}

}  // namespace

// ---- QueueConservationMonitor ----------------------------------------------

QueueConservationMonitor::Ledger& QueueConservationMonitor::At(uint32_t node,
                                                               int port,
                                                               int priority) {
  if (node < num_nodes_ && port < max_ports_) [[likely]] {
    return dense_[(static_cast<size_t>(node) * static_cast<size_t>(max_ports_) +
                   static_cast<size_t>(port)) *
                      net::kNumPriorities +
                  static_cast<size_t>(priority)];
  }
  return overflow_[QueueKey(node, port, priority)];
}

void QueueConservationMonitor::OnEnqueue(uint32_t node, int port,
                                         const net::Packet& pkt,
                                         int64_t queue_bytes_after) {
  Ledger& l = At(node, port, pkt.priority);
  l.enq_bytes += pkt.size_bytes();
  ++l.enq_packets;
  const int64_t expect = l.enq_bytes - l.deq_bytes;
  if (queue_bytes_after != expect) {
    Report(0, QueueName(node, port, pkt.priority) +
                  ": enqueue ledger mismatch (port reports " +
                  std::to_string(queue_bytes_after) + " B queued, ledger " +
                  std::to_string(expect) + " B)");
  }
}

void QueueConservationMonitor::OnDequeue(uint32_t node, int port,
                                         const net::Packet& pkt,
                                         int64_t queue_bytes_after) {
  CheckDequeue(At(node, port, pkt.priority), node, port, pkt,
               queue_bytes_after);
}

void QueueConservationMonitor::OnDequeueBurst(uint32_t node, int port,
                                              const DequeueRecord* recs,
                                              size_t n) {
  Ledger* cached[net::kNumPriorities] = {};
  for (size_t i = 0; i < n; ++i) {
    const net::Packet& pkt = *recs[i].pkt;
    Ledger*& l = cached[pkt.priority];
    if (l == nullptr) l = &At(node, port, pkt.priority);
    CheckDequeue(*l, node, port, pkt, recs[i].queue_bytes_after);
  }
}

void QueueConservationMonitor::CheckDequeue(Ledger& l, uint32_t node,
                                            int port, const net::Packet& pkt,
                                            int64_t queue_bytes_after) {
  l.deq_bytes += pkt.size_bytes();
  ++l.deq_packets;
  if (l.deq_bytes > l.enq_bytes || l.deq_packets > l.enq_packets) {
    Report(0, QueueName(node, port, pkt.priority) +
                  ": dequeued more than was enqueued (" +
                  std::to_string(l.deq_bytes) + " of " +
                  std::to_string(l.enq_bytes) + " B)");
    return;
  }
  const int64_t expect = l.enq_bytes - l.deq_bytes;
  if (queue_bytes_after != expect) {
    Report(0, QueueName(node, port, pkt.priority) +
                  ": dequeue ledger mismatch (port reports " +
                  std::to_string(queue_bytes_after) + " B queued, ledger " +
                  std::to_string(expect) + " B)");
  }
}

void QueueConservationMonitor::OnFinish(sim::TimePs now) {
  const auto check = [&](uint64_t key, const Ledger& l) {
    // Bytes still queued at the end of the run are fine (frozen links,
    // paused priorities); a negative residue can't happen without an earlier
    // report, so the closing check is packet/byte consistency.
    const int64_t residual_bytes = l.enq_bytes - l.deq_bytes;
    const uint64_t residual_pkts = l.enq_packets - l.deq_packets;
    if ((residual_bytes == 0) != (residual_pkts == 0)) {
      Report(now, "ledger " + std::to_string(key) +
                      ": byte and packet residues disagree (" +
                      std::to_string(residual_bytes) + " B vs " +
                      std::to_string(residual_pkts) + " pkts)");
    }
  };
  for (size_t i = 0; i < dense_.size(); ++i) check(i, dense_[i]);
  overflow_.ForEach(check);
}

// ---- QueueBoundMonitor ------------------------------------------------------

void QueueBoundMonitor::OnEnqueue(uint32_t node, int port,
                                  const net::Packet& pkt,
                                  int64_t queue_bytes_after) {
  if (pkt.priority != net::kDataPriority) return;  // control is tiny/bounded
  if (node >= capacity_.size() || capacity_[node] <= 0) return;
  if (queue_bytes_after <= capacity_[node]) return;
  bool& seen = reported_[PortKey(node, port)];
  if (seen) return;  // one report per overflowing queue, not per packet
  seen = true;
  Report(0, QueueName(node, port, pkt.priority) + " holds " +
                std::to_string(queue_bytes_after) +
                " B, above its configured bound of " +
                std::to_string(capacity_[node]) + " B");
}

// ---- PfcSanityMonitor -------------------------------------------------------

void PfcSanityMonitor::OnPauseChange(uint32_t node, int port, int priority,
                                     bool paused, sim::TimePs now) {
  if (!options_.pfc_enabled) {
    Report(now, "PFC " + std::string(paused ? "pause" : "resume") + " on " +
                    QueueName(node, port, priority) +
                    " although PFC is disabled");
    return;
  }
  PortState& st = ports_[PortKey(node, port)];
  ++st.events;
  if (st.events > options_.max_events_per_port && !st.storm_reported) {
    st.storm_reported = true;
    Report(now, "pause storm: node " + std::to_string(node) + " port " +
                    std::to_string(port) + " saw more than " +
                    std::to_string(options_.max_events_per_port) +
                    " pause/resume events");
  }
  if (paused) {
    st.paused = true;
    st.since = now;
    return;
  }
  if (st.paused && now - st.since > options_.max_pause) {
    Report(now, "node " + std::to_string(node) + " port " +
                    std::to_string(port) + " stayed paused for " +
                    std::to_string(sim::ToUs(now - st.since)) +
                    " us (max_pause " +
                    std::to_string(sim::ToUs(options_.max_pause)) + " us)");
  }
  st.paused = false;
}

void PfcSanityMonitor::OnFinish(sim::TimePs now) {
  ports_.ForEach([&](uint64_t key, const PortState& st) {
    if (st.paused && now - st.since > options_.max_pause) {
      const uint64_t raw = key - 1;  // undo the FlatMap key bias
      Report(now, "node " + std::to_string(raw >> 16) + " port " +
                      std::to_string(raw & 0xffff) +
                      " still paused at end of run, for " +
                      std::to_string(sim::ToUs(now - st.since)) +
                      " us (possible PFC deadlock)");
    }
  });
}

// ---- IntSanityMonitor -------------------------------------------------------

IntSanityMonitor::FlowState& IntSanityMonitor::StateFor(uint64_t flow_id) {
  uint32_t& slot = flow_index_[flow_id + 1];  // bias past the empty key
  if (slot == 0) {
    states_.emplace_back();
    slot = static_cast<uint32_t>(states_.size());
  }
  return states_[slot - 1];
}

void IntSanityMonitor::OnIntEcho(uint64_t flow_id,
                                 const core::IntStack& stack,
                                 sim::TimePs now) {
  if (stack.n_hops() == 0) return;
  FlowState& st = StateFor(flow_id);
  // Same reset rule the HPCC sender uses (§4.1): a different pathID or hop
  // count means the flow was rerouted and the per-hop history is stale.
  if (st.have &&
      (st.n_hops != stack.n_hops() || st.path_id != stack.path_id())) {
    st.have = false;
  }
  for (int i = 0; i < stack.n_hops(); ++i) {
    const core::IntHop& hop = stack.hop(i);
    if (hop.bandwidth_bps <= 0) {
      Report(now, "flow " + std::to_string(flow_id) + " hop " +
                      std::to_string(i) + ": non-positive bandwidth " +
                      std::to_string(hop.bandwidth_bps));
    }
    if (hop.qlen_bytes < 0 ||
        (options_.max_qlen_bytes > 0 &&
         hop.qlen_bytes > options_.max_qlen_bytes)) {
      Report(now, "flow " + std::to_string(flow_id) + " hop " +
                      std::to_string(i) + ": qLen " +
                      std::to_string(hop.qlen_bytes) +
                      " B outside [0, " +
                      std::to_string(options_.max_qlen_bytes) + "]");
    }
    if (st.have && options_.check_monotonic && !options_.wire_format) {
      if (hop.ts < st.ts[i]) {
        Report(now, "flow " + std::to_string(flow_id) + " hop " +
                        std::to_string(i) + ": INT timestamp went backwards (" +
                        std::to_string(hop.ts) + " < " +
                        std::to_string(st.ts[i]) + " ps)");
      }
      if (hop.tx_bytes < st.tx_bytes[i]) {
        Report(now, "flow " + std::to_string(flow_id) + " hop " +
                        std::to_string(i) + ": INT txBytes went backwards (" +
                        std::to_string(hop.tx_bytes) + " < " +
                        std::to_string(st.tx_bytes[i]) + ")");
      }
    }
    st.ts[i] = hop.ts;
    st.tx_bytes[i] = hop.tx_bytes;
  }
  st.n_hops = stack.n_hops();
  st.path_id = stack.path_id();
  st.have = true;
}

// ---- CcSanityMonitor --------------------------------------------------------

void CcSanityMonitor::OnCcUpdate(uint64_t flow_id, int64_t window_bytes,
                                 int64_t rate_bps, sim::TimePs now) {
  const bool bad_rate = rate_bps <= 0 || rate_bps > max_rate_bps_;
  const bool bad_window = window_bytes <= 0;
  if (!bad_rate && !bad_window) return;
  bool& seen = reported_[flow_id + 1];  // FlatMap: bias past the empty key
  if (seen) return;  // the same broken flow would report on every ACK
  seen = true;
  if (bad_rate) {
    Report(now, "flow " + std::to_string(flow_id) + ": rate " +
                    std::to_string(rate_bps) + " bps outside (0, " +
                    std::to_string(max_rate_bps_) + "]");
  }
  if (bad_window) {
    Report(now, "flow " + std::to_string(flow_id) +
                    ": non-positive window " + std::to_string(window_bytes) +
                    " B");
  }
}

// ---- LosslessDropMonitor ----------------------------------------------------

void LosslessDropMonitor::OnDrop(uint32_t node, const net::Packet& pkt,
                                 DropReason reason) {
  (void)pkt;
  if (!pfc_enabled_) return;  // lossy mode drops by design
  switch (reason) {
    case DropReason::kNoRoute:
      return;  // link failure made the destination unreachable
    case DropReason::kCorrupt:
      return;  // seeded fault injection drops by design, even under PFC
    case DropReason::kBufferFull:
    case DropReason::kEgressThreshold:
      break;
  }
  ++buffer_drops_;
  if (buffer_drops_ == 1) {
    Report(0, "switch " + std::to_string(node) +
                  " dropped a packet for buffer exhaustion although PFC is "
                  "enabled");
  }
}

void LosslessDropMonitor::OnFinish(sim::TimePs now) {
  if (buffer_drops_ > 1) {
    Report(now, std::to_string(buffer_drops_) +
                    " total buffer-exhaustion drops in lossless mode");
  }
}

// ---- CheckFlowProgress ------------------------------------------------------

void CheckFlowProgress(MonitorRegistry& registry, runner::Experiment& e,
                       sim::TimePs now, int stall_rtos) {
  if (e.hosts().empty()) return;
  const sim::TimePs rto_max =
      e.topology().host(e.hosts().front()).config().rto_max;
  const sim::TimePs stall = static_cast<sim::TimePs>(stall_rtos) * rto_max;
  for (const host::Flow* f : e.AllFlows()) {
    if (!f->started || f->done) continue;
    if (now - f->last_activity <= stall) continue;
    Violation v;
    v.monitor = "no-progress";
    v.at = now;
    const host::FlowSpec& s = f->spec();
    v.message = "flow " + std::to_string(s.id) + " (" + std::to_string(s.src) +
                " -> " + std::to_string(s.dst) + ", " +
                std::to_string(s.size_bytes) + " B) stalled: no forward "
                "progress since t=" +
                std::to_string(sim::ToUs(f->last_activity)) + " us (" +
                std::to_string(sim::ToUs(now - f->last_activity)) +
                " us ago, stall bound " + std::to_string(sim::ToUs(stall)) +
                " us)";
    registry.ReportViolation(std::move(v));
  }
}

// ---- InstallStandardMonitors ------------------------------------------------

namespace {

// The monitor set with bounds derived from the full topology/config —
// shared by the whole-fabric and shard-local installers.
void AddStandardMonitors(MonitorRegistry& registry, runner::Experiment& e,
                         const StandardMonitorOptions& options) {
  topo::Topology& topology = e.topology();
  const runner::ExperimentConfig& cfg = e.config();

  // Per-node data-queue bounds: switches are capped by their shared buffer;
  // hosts keep at most one paced data packet per NIC port (HostNode::TrySend)
  // — allow a small multiple for slack.
  std::vector<int64_t> capacity(topology.num_nodes(), 0);
  int64_t max_buffer = 0;
  for (uint32_t s : topology.switches()) {
    capacity[s] = topology.switch_node(s).config().buffer_bytes;
    max_buffer = std::max(max_buffer, capacity[s]);
  }
  int64_t max_nic_bps = 0;
  for (uint32_t h : topology.hosts()) {
    const host::HostNode& host = topology.host(h);
    const int64_t full_packet =
        host.config().mtu_bytes + net::kDataHeaderBytes +
        core::IntStack::kWorstCaseWireBytes;
    capacity[h] = 4 * full_packet;
    for (int p = 0; p < host.num_ports(); ++p) {
      max_nic_bps = std::max(max_nic_bps, host.port(p).bandwidth_bps());
    }
  }

  int max_ports = 0;
  for (uint32_t id = 0; id < topology.num_nodes(); ++id) {
    max_ports = std::max(max_ports, topology.node(id).num_ports());
  }
  registry.Add(std::make_unique<QueueConservationMonitor>(topology.num_nodes(),
                                                          max_ports));
  registry.Add(std::make_unique<QueueBoundMonitor>(std::move(capacity)));

  PfcSanityMonitor::Options pfc = options.pfc;
  pfc.pfc_enabled = cfg.pfc_enabled;
  registry.Add(std::make_unique<PfcSanityMonitor>(pfc));

  IntSanityMonitor::Options io;
  io.wire_format = cfg.cc.hpcc.wire_format;
  io.max_qlen_bytes = max_buffer;
  io.check_monotonic = !options.topology_mutates;
  registry.Add(std::make_unique<IntSanityMonitor>(io));

  registry.Add(std::make_unique<CcSanityMonitor>(max_nic_bps));
  registry.Add(std::make_unique<LosslessDropMonitor>(cfg.pfc_enabled));
}

}  // namespace

void InstallStandardMonitors(MonitorRegistry& registry, runner::Experiment& e,
                             const StandardMonitorOptions& options) {
  AddStandardMonitors(registry, e, options);
  registry.set_clock(&e.simulator());
  registry.AttachTo(e.topology());
}

void InstallStandardMonitors(MonitorRegistry& registry, runner::Experiment& e,
                             const StandardMonitorOptions& options, int lane) {
  AddStandardMonitors(registry, e, options);
  registry.set_clock(&e.lane_simulator(lane));
  registry.AttachTo(e.topology(), e.lane_nodes(lane));
}

}  // namespace hpcc::check
