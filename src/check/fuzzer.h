// Deterministic scenario fuzzer.
//
// From a single RNG seed, generates random-but-valid scenario documents
// (random dumbbell/fat-tree sizes, CC scheme, workload mix, timed link flaps,
// incast bursts and load phases), runs each under the full standard
// invariant-monitor set, and on violation emits the exact scenario JSON as a
// runnable reproducer:
//
//   build/fuzz_scenarios --seed=42 --runs=50
//   build/scenario_main repro_fuzz_42_17.json --check   # replay a violation
//
// Determinism contract: GenerateScenarioDoc(seed, i) is a pure function of
// (seed, i) — the same binary always produces byte-identical documents — and
// every run is executed twice with the golden-trace hash compared, so fuzz
// runs double as run-to-run determinism checks.
//
// The committed corpus under tests/corpus/ is a frozen set of these
// documents; see docs/TESTING.md for the corpus policy.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/invariant.h"
#include "scenario/json.h"

namespace hpcc::runner {
class Experiment;
}

namespace hpcc::check {

// Lets callers add monitors beside the standard set (tests register an
// intentionally-broken monitor through this to exercise the violation path).
using MonitorInstaller =
    std::function<void(MonitorRegistry&, runner::Experiment&)>;

struct FuzzOptions {
  uint64_t seed = 1;
  int runs = 20;
  // Where reproducer JSONs for violating runs are written.
  std::string reproducer_dir = ".";
  bool verbose = false;
  // Livelock watchdog: a run executing more simulator events than this is
  // itself an invariant violation (event storms must not hang the fuzzer).
  uint64_t max_events = 50'000'000;
  // Run each scenario twice and compare golden-trace hashes.
  bool check_determinism = true;
  // Additionally replay each clean run on the per-packet reference engine
  // (--fastpath=off) and require an identical golden-trace hash, so every
  // fuzz scenario doubles as a train-fast-path equivalence check.
  bool check_fastpath = true;
  // Additionally replay each clean run on two execution lanes (--shards=2)
  // and require an identical golden-trace hash and a clean monitor log, so
  // every fuzz scenario doubles as a conservative-PDES equivalence check.
  // Event-budget-truncated replays are skipped (a truncated run stops at an
  // arbitrary event, so its hash is meaningless).
  bool check_shards = true;
  // Additionally replay each clean run twice with an injected
  // warm_start.until_us (~40% of the horizon) through one shared
  // fabric-snapshot/warm-checkpoint cache — the first replay builds the
  // checkpoint, the second restores from it — and require both to reproduce
  // the cold golden-trace hash, so every fuzz scenario doubles as a
  // warm-start equivalence check.
  bool check_warm = true;
  // Chaos mode (--faults): additionally inject random fault events — seeded
  // corruption windows, switch flaps, NIC flaps (always repaired before the
  // end) — into every generated scenario. All the equivalence replays above
  // still apply, so every chaos scenario is also pinned deterministic,
  // fastpath-equal and shard-equal, and the monitors (including the
  // flow no-progress audit) must stay clean under faults.
  bool faults = false;
};

struct FuzzRunReport {
  std::string name;
  scenario::Json doc;               // the scenario that ran
  std::vector<Violation> violations;
  size_t violation_count = 0;
  uint64_t trace_hash = 0;
  uint64_t flows_created = 0;
  uint64_t flows_completed = 0;
  std::string error;                // exception text; empty on clean runs
  std::string reproducer_path;      // set when a reproducer was written

  bool ok() const { return error.empty() && violation_count == 0; }
};

// The index-th scenario document for `seed`; pure and deterministic (a
// function of (seed, index, faults) only). `faults` appends the chaos-mode
// fault events described at FuzzOptions::faults; false reproduces the
// historical documents byte-identically.
scenario::Json GenerateScenarioDoc(uint64_t seed, int index,
                                   bool faults = false);

// Parses and runs one scenario document under the standard monitors (plus
// `extra`, if any) with the event-budget watchdog armed. Never throws: parse
// and runtime errors land in FuzzRunReport::error. `fastpath_override`: -1
// as the scenario says, 0/1 force the reference/train transmit engine.
// `shards_override`: 0 as the scenario says, >= 1 forces that many execution
// lanes (each lane gets its own registry; `extra` is invoked once per lane,
// so installers must hand out a fresh monitor instance per call).
FuzzRunReport RunScenarioDocChecked(const scenario::Json& doc,
                                    uint64_t max_events,
                                    const MonitorInstaller& extra = nullptr,
                                    int fastpath_override = -1,
                                    int shards_override = 0);

// Writes `doc` as "<dir>/repro_<name>.json"; returns the path, or "" when
// the file cannot be written.
std::string WriteReproducer(const scenario::Json& doc, const std::string& dir,
                            const std::string& name);

// CLI driver behind tools/fuzz_scenarios: generates and runs
// `options.runs` scenarios, writes reproducers for violating runs, prints a
// summary, and returns the process exit code (0 = all clean).
int FuzzMain(const FuzzOptions& options,
             const MonitorInstaller& extra = nullptr);

}  // namespace hpcc::check
