#include "check/fuzzer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <memory>

#include "cc/factory.h"
#include "check/monitors.h"
#include "core/hash.h"
#include "obs/telemetry.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "sim/rng.h"

namespace hpcc::check {
namespace {

using scenario::Json;

double Round2(double v) { return std::round(v * 100.0) / 100.0; }

Json Num(double v) { return Json::MakeNumber(v); }
Json Str(const std::string& s) { return Json::MakeString(s); }

// Topology generation: dumbbells (the shared-trunk stress shape), small
// fat-trees (multipath + redundancy, so link failures reroute), and — since
// the burst fast path and the scale-out routing core target large fabrics —
// occasional wide fat-trees in the shape of the
// fattree16_hadoop_burst/fattree32_websearch scenario family, scaled down
// enough to fuzz quickly but wide enough (up to 16 pods) that link flaps
// exercise the incremental route-repair classification across tiers.
Json RandomTopology(sim::Rng& rng) {
  Json t = Json::MakeObject();
  const double shape = rng.Uniform();
  if (shape < 0.45) {
    const double host_gbps[] = {25, 50, 100};
    const double g = host_gbps[rng.Index(3)];
    t.Set("kind", Str("dumbbell"));
    t.Set("hosts_per_side", Num(2 + static_cast<double>(rng.Index(5))));
    t.Set("host_gbps", Num(g));
    // Trunk at 1-4x the host rate: 1x makes it the bottleneck.
    t.Set("trunk_gbps", Num(g * static_cast<double>(1 + rng.Index(4))));
  } else if (shape < 0.85) {
    t.Set("kind", Str("fattree"));
    t.Set("pods", Num(2));
    t.Set("tors_per_pod", Num(1 + static_cast<double>(rng.Index(2))));
    t.Set("aggs_per_pod", Num(1 + static_cast<double>(rng.Index(2))));
    t.Set("cores_per_agg", Num(1 + static_cast<double>(rng.Index(2))));
    t.Set("hosts_per_tor", Num(2 + static_cast<double>(rng.Index(3))));
  } else {
    t.Set("kind", Str("fattree"));
    t.Set("pods", Num(4 * static_cast<double>(1 << rng.Index(3))));  // 4/8/16
    t.Set("tors_per_pod", Num(2 + static_cast<double>(rng.Index(2))));
    t.Set("aggs_per_pod", Num(2 + static_cast<double>(rng.Index(2))));
    t.Set("cores_per_agg", Num(2 + static_cast<double>(rng.Index(2))));
    t.Set("hosts_per_tor", Num(2 + static_cast<double>(rng.Index(3))));
  }
  return t;
}

Json RandomWorkload(sim::Rng& rng) {
  Json w = Json::MakeObject();
  w.Set("load", Num(Round2(0.1 + rng.Uniform() * 0.6)));
  w.Set("trace", Str(rng.Uniform() < 0.5 ? "websearch" : "fbhadoop"));
  w.Set("max_flows", Num(20 + static_cast<double>(rng.Index(61))));
  return w;
}

// Valid incast fan-in for `num_hosts` hosts: the schema requires
// fan_in < num_hosts (one host must be left over to receive).
double RandFanIn(sim::Rng& rng, size_t num_hosts) {
  const size_t lo = 2;
  const size_t hi = std::min<size_t>(num_hosts - 1, 8);
  return static_cast<double>(lo + rng.Index(hi - lo + 1));
}

}  // namespace

Json GenerateScenarioDoc(uint64_t seed, int index, bool faults) {
  sim::Rng rng(core::SplitMix64(seed * 0x9e3779b97f4a7c15ULL +
                                static_cast<uint64_t>(index)));

  const double duration_us = 300 + static_cast<double>(rng.Index(301));
  Json doc = Json::MakeObject();
  doc.Set("name", Str("fuzz_" + std::to_string(seed) + "_" +
                      std::to_string(index)));
  doc.Set("topology", RandomTopology(rng));

  Json cc = Json::MakeObject();
  const std::vector<std::string>& schemes = cc::AllSchemes();
  cc.Set("scheme", Str(schemes[rng.Index(schemes.size())]));
  doc.Set("cc", std::move(cc));

  doc.Set("workload", RandomWorkload(rng));
  doc.Set("duration_ms", Num(Round2(duration_us / 1000.0)));
  doc.Set("seed", Num(static_cast<double>(1 + rng.Index(1'000'000))));
  const bool pfc = rng.Uniform() < 0.8;  // 20% lossy-mode coverage
  doc.Set("pfc", Json::MakeBool(pfc));
  if (rng.Uniform() < 0.25) doc.Set("recovery", Str("irn"));
  if (rng.Uniform() < 0.3) {
    doc.Set("int_sample_every", Num(1 + static_cast<double>(rng.Index(4))));
  }

  // Probe build: the generated document must be *valid*, so every
  // host-count- or link-count-dependent choice (incast fan-in, receivers,
  // flap targets) is made against the actually-built topology, not against
  // duplicated sizing formulas.
  scenario::Scenario probe_sc = scenario::ParseScenario(doc);
  runner::Experiment probe(scenario::MakeExperimentConfig(probe_sc));
  const size_t num_links = probe.topology().links().size();
  const size_t num_hosts = probe.hosts().size();

  // 30%: periodic incast on top of the background load (Fig. 11a's shape).
  if (rng.Uniform() < 0.3 && num_hosts >= 3) {
    Json inc = Json::MakeObject();
    inc.Set("fan_in", Num(RandFanIn(rng, num_hosts)));
    inc.Set("flow_bytes",
            Num(20'000 + static_cast<double>(rng.Index(81)) * 1000));
    inc.Set("first_event_us", Num(50 + static_cast<double>(rng.Index(100))));
    inc.Set("period_us", Num(150 + static_cast<double>(rng.Index(250))));
    Json workload = *doc.Find("workload");
    workload.Set("incast", std::move(inc));
    doc.Set("workload", std::move(workload));
  }

  Json events = Json::MakeArray();
  // 70%: one link flap, always repaired before the end so flows can finish.
  if (rng.Uniform() < 0.7 && num_links > 0) {
    const double down_us = 50 + rng.Uniform() * duration_us * 0.4;
    const double up_us =
        down_us + 20 + rng.Uniform() * (duration_us * 0.9 - down_us);
    const double link = static_cast<double>(rng.Index(num_links));
    Json down = Json::MakeObject();
    down.Set("type", Str("link_down"));
    down.Set("at_us", Num(Round2(down_us)));
    down.Set("link", Num(link));
    events.Append(std::move(down));
    Json up = Json::MakeObject();
    up.Set("type", Str("link_up"));
    up.Set("at_us", Num(Round2(up_us)));
    up.Set("link", Num(link));
    events.Append(std::move(up));
  }
  // 40%: a one-shot incast burst.
  if (rng.Uniform() < 0.4 && num_hosts >= 3) {
    Json burst = Json::MakeObject();
    burst.Set("type", Str("incast"));
    burst.Set("at_us", Num(Round2(30 + rng.Uniform() * duration_us * 0.7)));
    burst.Set("fan_in", Num(RandFanIn(rng, num_hosts)));
    burst.Set("flow_bytes",
              Num(10'000 + static_cast<double>(rng.Index(91)) * 1000));
    if (rng.Uniform() < 0.5) {
      burst.Set("receiver", Num(static_cast<double>(rng.Index(num_hosts))));
    }
    events.Append(std::move(burst));
  }
  // Up to two background-load phase changes.
  const size_t phases = rng.Index(3);
  for (size_t p = 0; p < phases; ++p) {
    Json phase = Json::MakeObject();
    phase.Set("type", Str("load_phase"));
    phase.Set("at_us", Num(Round2(50 + rng.Uniform() * duration_us * 0.8)));
    phase.Set("load", Num(Round2(rng.Uniform())));
    events.Append(std::move(phase));
  }
  // Chaos mode: fault-injection events on top of whatever the scenario
  // already does. All extra draws happen after the base document's, so
  // faults=false reproduces the historical documents byte-identically.
  if (faults) {
    const size_t num_switches = probe.topology().switches().size();
    // ~50%: a seeded corruption window on one link (bounded, so flows can
    // retransmit their way out after it closes).
    if (rng.Uniform() < 0.5 && num_links > 0) {
      const double bers[] = {0.0001, 0.001, 0.01, 0.05};
      const double from_us = 30 + rng.Uniform() * duration_us * 0.4;
      const double until_us =
          from_us + 20 + rng.Uniform() * (duration_us * 0.8 - from_us);
      Json ev = Json::MakeObject();
      ev.Set("type", Str("corrupt"));
      ev.Set("at_us", Num(Round2(from_us)));
      ev.Set("link", Num(static_cast<double>(rng.Index(num_links))));
      ev.Set("ber", Num(bers[rng.Index(4)]));
      ev.Set("until_us", Num(Round2(until_us)));
      events.Append(std::move(ev));
    }
    // ~35%: a switch flap, always repaired before the end.
    if (rng.Uniform() < 0.35 && num_switches > 0) {
      const double down_us = 50 + rng.Uniform() * duration_us * 0.4;
      const double up_us =
          down_us + 20 + rng.Uniform() * (duration_us * 0.85 - down_us);
      const double sw = static_cast<double>(rng.Index(num_switches));
      Json down = Json::MakeObject();
      down.Set("type", Str("switch_down"));
      down.Set("at_us", Num(Round2(down_us)));
      down.Set("switch", Num(sw));
      events.Append(std::move(down));
      Json up = Json::MakeObject();
      up.Set("type", Str("switch_up"));
      up.Set("at_us", Num(Round2(up_us)));
      up.Set("switch", Num(sw));
      events.Append(std::move(up));
    }
    // ~25%: a NIC flap (host isolation), also repaired.
    if (rng.Uniform() < 0.25 && num_hosts > 1) {
      const double down_us = 50 + rng.Uniform() * duration_us * 0.4;
      const double up_us =
          down_us + 20 + rng.Uniform() * (duration_us * 0.85 - down_us);
      const double host = static_cast<double>(rng.Index(num_hosts));
      Json down = Json::MakeObject();
      down.Set("type", Str("nic_down"));
      down.Set("at_us", Num(Round2(down_us)));
      down.Set("host", Num(host));
      events.Append(std::move(down));
      Json up = Json::MakeObject();
      up.Set("type", Str("nic_up"));
      up.Set("at_us", Num(Round2(up_us)));
      up.Set("host", Num(host));
      events.Append(std::move(up));
    }
  }
  if (events.size() > 0) doc.Set("events", std::move(events));
  return doc;
}

FuzzRunReport RunScenarioDocChecked(const Json& doc, uint64_t max_events,
                                    const MonitorInstaller& extra,
                                    int fastpath_override,
                                    int shards_override) {
  FuzzRunReport rep;
  rep.doc = doc;
  // Declared before the Experiment: nodes point into the registries (one per
  // execution lane; exactly one when unsharded).
  std::deque<MonitorRegistry> registries;
  try {
    const scenario::Scenario s = scenario::ParseScenario(doc);
    rep.name = s.name;
    runner::ExperimentConfig cfg = scenario::MakeExperimentConfig(s);
    if (fastpath_override >= 0) cfg.fast_path = fastpath_override != 0;
    if (shards_override >= 1) cfg.shards = shards_override;
    runner::Experiment e(cfg);
    if (max_events > 0) e.set_event_budget(max_events);
    StandardMonitorOptions mo;
    mo.topology_mutates = scenario::MutatesTopology(s);
    const int lanes = e.shards();
    for (int lane = 0; lane < lanes; ++lane) {
      registries.emplace_back();
      if (lanes == 1) {
        InstallStandardMonitors(registries.back(), e, mo);
      } else {
        InstallStandardMonitors(registries.back(), e, mo, lane);
      }
      if (extra) extra(registries.back(), e);
    }
    const scenario::InstalledEvents events = scenario::InstallEvents(e, s);
    const runner::ExperimentResult result = e.Run();
    for (int lane = 0; lane < lanes; ++lane) {
      registries[static_cast<size_t>(lane)].Finish(
          e.lane_simulator(lane).now());
    }
    if (e.budget_exhausted()) {
      registries.front().ReportViolation(Violation{
          "event-budget",
          "run exceeded " + std::to_string(max_events) +
              " simulator events (event storm / livelock?)",
          e.simulator().now()});
    } else {
      // Retry machinery audit: every started flow must either have finished
      // or still be making progress (skipped on truncated runs, which strand
      // in-flight flows legitimately).
      CheckFlowProgress(registries.front(), e, e.simulator().now());
    }
    for (const MonitorRegistry& registry : registries) {
      rep.violations.insert(rep.violations.end(),
                            registry.violations().begin(),
                            registry.violations().end());
      rep.violation_count += registry.violation_count();
    }
    rep.trace_hash = result.trace_hash;
    rep.flows_created = result.flows_created;
    rep.flows_completed = result.flows_completed;
  } catch (const std::exception& ex) {
    rep.error = ex.what();
  }
  return rep;
}

std::string WriteReproducer(const Json& doc, const std::string& dir,
                            const std::string& name) {
  const std::string path =
      (dir.empty() ? std::string(".") : dir) + "/repro_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return "";
  const std::string text = doc.Dump(2) + "\n";
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;  // always close, even on short write
  return (written == text.size() && closed) ? path : "";
}

namespace {

// Flight recorder: replay the violating scenario once more with telemetry on
// and drop a manifest + Perfetto trace next to the reproducer, so the first
// triage step (what was queued where, which flows stalled, when PFC fired)
// needs no extra tooling run.
void RecordFlight(const Json& doc, const FuzzOptions& options,
                  FuzzRunReport* rep) {
  const std::string base = rep->reproducer_path.substr(
      0, rep->reproducer_path.size() - 5);  // strip ".json"
  try {
    scenario::ScenarioRun run;
    run.label = rep->name;
    run.scenario = scenario::ParseScenario(doc);
    scenario::RunOneOptions ro;
    ro.check = true;
    obs::TelemetryConfig tcfg = run.scenario.telemetry;
    tcfg.manifest = true;
    tcfg.trace = true;
    tcfg.profile = true;
    ro.telemetry = tcfg;
    ro.manifest_path = base + ".manifest.json";
    ro.trace_path = base + ".trace.json";
    // The replay must terminate even when the violation was an event storm.
    ro.event_budget = options.max_events > 0 ? options.max_events * 3 : 0;
    const scenario::SweepRunResult flight =
        scenario::ScenarioRunner::RunOne(run, ro);
    if (!flight.manifest_path.empty() || !flight.trace_path.empty()) {
      std::fprintf(stderr, "    flight record: %s %s\n",
                   flight.manifest_path.c_str(), flight.trace_path.c_str());
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "    (flight record replay failed: %s)\n", ex.what());
  }

  // A shard-equivalence failure triages by diffing the single-lane manifest
  // above against the sharded run's view: record the shards=2 side too
  // (manifest only — trace export forces one lane, see scenario/runner.cc).
  bool shard_mismatch = false;
  for (const Violation& v : rep->violations) {
    if (v.monitor == "shard-equivalence") shard_mismatch = true;
  }
  if (!shard_mismatch) return;
  try {
    scenario::ScenarioRun run;
    run.label = rep->name;
    run.scenario = scenario::ParseScenario(doc);
    scenario::RunOneOptions ro;
    ro.check = true;
    ro.shards_override = 2;
    obs::TelemetryConfig tcfg = run.scenario.telemetry;
    tcfg.manifest = true;
    tcfg.profile = true;
    ro.telemetry = tcfg;
    ro.manifest_path = base + ".shards2.manifest.json";
    ro.event_budget = options.max_events > 0 ? options.max_events * 3 : 0;
    const scenario::SweepRunResult flight =
        scenario::ScenarioRunner::RunOne(run, ro);
    if (!flight.manifest_path.empty()) {
      std::fprintf(stderr, "    flight record (shards=2): %s\n",
                   flight.manifest_path.c_str());
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "    (shards=2 flight record replay failed: %s)\n",
                 ex.what());
  }
}

// One warm-equivalence replay: runs `doc` through RunOne with the shared
// snapshot/checkpoint caches attached (no monitors, no event budget — warm
// capture is ineligible under either, and the scenario already ran clean
// twice within budget). Returns the golden-trace hash plus whether this
// replay built or restored the checkpoint.
struct WarmReplay {
  uint64_t trace_hash = 0;
  bool built = false;
  bool restored = false;
  std::string error;
};

WarmReplay ReplayWarm(const Json& doc,
                      const std::shared_ptr<scenario::FabricCache>& fabrics,
                      const std::shared_ptr<scenario::WarmCache>& warms) {
  WarmReplay out;
  try {
    scenario::ScenarioRun run;
    run.scenario = scenario::ParseScenario(doc);
    run.label = run.scenario.name;
    scenario::RunOneOptions ro;
    ro.warm = true;
    ro.fabric_cache = fabrics;
    ro.warm_cache = warms;
    const scenario::SweepRunResult r =
        scenario::ScenarioRunner::RunOne(run, ro);
    out.error = r.error;
    out.trace_hash = r.result.trace_hash;
    out.built = r.warm_built;
    out.restored = r.warm_restored;
  } catch (const std::exception& ex) {
    out.error = ex.what();
  }
  return out;
}

void WriteAndAnnounceReproducer(const Json& doc, const FuzzOptions& options,
                                FuzzRunReport* rep) {
  rep->reproducer_path =
      WriteReproducer(doc, options.reproducer_dir, rep->name);
  if (!rep->reproducer_path.empty()) {
    std::fprintf(stderr,
                 "    reproducer: %s  (replay: scenario_main %s --check)\n",
                 rep->reproducer_path.c_str(), rep->reproducer_path.c_str());
    RecordFlight(doc, options, rep);
  } else {
    std::fprintf(stderr, "    (could not write reproducer under %s)\n",
                 options.reproducer_dir.c_str());
  }
}

}  // namespace

int FuzzMain(const FuzzOptions& options, const MonitorInstaller& extra) {
  int bad_runs = 0;
  size_t total_violations = 0;
  for (int i = 0; i < options.runs; ++i) {
    Json doc;
    try {
      doc = GenerateScenarioDoc(options.seed, i, options.faults);
    } catch (const std::exception& ex) {
      // A generator that emits an invalid scenario is itself a bug; report
      // it like a violation instead of tearing the whole fuzz run down.
      ++bad_runs;
      std::fprintf(stderr, "[%d/%d] generation failed: %s\n", i + 1,
                   options.runs, ex.what());
      continue;
    }
    FuzzRunReport rep = RunScenarioDocChecked(doc, options.max_events, extra);
    if (rep.ok() && options.check_determinism) {
      const FuzzRunReport again =
          RunScenarioDocChecked(doc, options.max_events, extra);
      if (again.trace_hash != rep.trace_hash) {
        rep.violations.push_back(Violation{
            "determinism",
            "two runs of the identical scenario produced different "
            "golden-trace hashes",
            0});
        ++rep.violation_count;
      }
    }
    if (rep.ok() && options.check_fastpath) {
      // Equivalence pin: the per-packet reference engine must produce the
      // same per-flow outcomes as the train fast path. The reference engine
      // executes ~1.5x the events for the same simulated work, so give the
      // replay budget headroom — a watchdog-truncated replay would otherwise
      // masquerade as a hash mismatch.
      const uint64_t replay_budget =
          options.max_events > 0 ? options.max_events * 3 : 0;
      const FuzzRunReport reference = RunScenarioDocChecked(
          doc, replay_budget, extra, /*fastpath_override=*/0);
      bool truncated = false;
      for (const Violation& v : reference.violations) {
        if (v.monitor == "event-budget") truncated = true;
      }
      if (truncated) {
        std::fprintf(stderr,
                     "[%s] fastpath-equivalence replay exceeded %llu events; "
                     "comparison skipped\n",
                     rep.name.c_str(),
                     static_cast<unsigned long long>(replay_budget));
      } else if (!reference.error.empty() ||
                 reference.trace_hash != rep.trace_hash) {
        rep.violations.push_back(Violation{
            "fastpath-equivalence",
            reference.error.empty()
                ? "reference (--fastpath=off) replay produced a different "
                  "golden-trace hash"
                : "reference (--fastpath=off) replay failed: " +
                      reference.error,
            0});
        ++rep.violation_count;
      }
    }
    if (rep.ok() && options.check_shards) {
      // Equivalence pin for sharded execution: a two-lane replay must
      // produce the same per-flow outcomes and a clean monitor log. Same
      // budget headroom as the fastpath replay (the lanes execute a handful
      // of extra no-op barrier markers); a truncated replay stops at an
      // arbitrary event, so its hash is skipped rather than compared.
      const uint64_t replay_budget =
          options.max_events > 0 ? options.max_events * 3 : 0;
      const FuzzRunReport sharded =
          RunScenarioDocChecked(doc, replay_budget, extra,
                                /*fastpath_override=*/-1,
                                /*shards_override=*/2);
      bool truncated = false;
      for (const Violation& v : sharded.violations) {
        if (v.monitor == "event-budget") truncated = true;
      }
      if (truncated) {
        std::fprintf(stderr,
                     "[%s] shard-equivalence replay exceeded %llu events; "
                     "comparison skipped\n",
                     rep.name.c_str(),
                     static_cast<unsigned long long>(replay_budget));
      } else if (!sharded.error.empty() ||
                 sharded.trace_hash != rep.trace_hash ||
                 sharded.violation_count > 0) {
        std::string detail;
        if (!sharded.error.empty()) {
          detail = "sharded (--shards=2) replay failed: " + sharded.error;
        } else if (sharded.trace_hash != rep.trace_hash) {
          detail = "sharded (--shards=2) replay produced a different "
                   "golden-trace hash";
        } else {
          detail = "sharded (--shards=2) replay tripped " +
                   std::to_string(sharded.violation_count) +
                   " invariant violation(s) on a clean scenario";
        }
        rep.violations.push_back(
            Violation{"shard-equivalence", detail, 0});
        ++rep.violation_count;
      }
    }
    if (rep.ok() && options.check_warm) {
      // Equivalence pin for warm-start sweeps: inject a checkpoint instant at
      // ~40% of the horizon and replay twice through one shared cache. The
      // first replay either captures the checkpoint or (not quiescent at T,
      // pre-T link flap, ...) publishes a cold fallback; the second restores
      // or re-runs cold. Either way both hashes must match the cold run —
      // warm-start must never change a single output byte.
      Json warm_doc = doc;
      const double duration_us = doc.Find("duration_ms")->AsDouble() * 1000.0;
      Json ws = Json::MakeObject();
      ws.Set("until_us", Num(Round2(duration_us * 0.4)));
      warm_doc.Set("warm_start", std::move(ws));
      auto fabrics = std::make_shared<scenario::FabricCache>();
      auto warms = std::make_shared<scenario::WarmCache>();
      const WarmReplay first = ReplayWarm(warm_doc, fabrics, warms);
      const WarmReplay second = ReplayWarm(warm_doc, fabrics, warms);
      for (const WarmReplay* w : {&first, &second}) {
        const char* which = w == &first ? "first" : "second";
        if (!w->error.empty()) {
          rep.violations.push_back(Violation{
              "warm-equivalence",
              std::string(which) + " warm_start replay failed: " + w->error,
              0});
          ++rep.violation_count;
        } else if (w->trace_hash != rep.trace_hash) {
          rep.violations.push_back(Violation{
              "warm-equivalence",
              std::string(which) + " warm_start replay (" +
                  (w->restored ? "restored checkpoint"
                               : w->built ? "built checkpoint" : "cold") +
                  ") produced a different golden-trace hash",
              0});
          ++rep.violation_count;
        }
      }
    }
    if (!rep.error.empty()) {
      ++bad_runs;
      std::fprintf(stderr, "[%d/%d] %s: ERROR: %s\n", i + 1, options.runs,
                   rep.name.c_str(), rep.error.c_str());
      WriteAndAnnounceReproducer(doc, options, &rep);
      continue;
    }
    if (rep.violation_count > 0) {
      ++bad_runs;
      total_violations += rep.violation_count;
      std::fprintf(stderr, "[%d/%d] %s: %zu invariant violation(s)\n", i + 1,
                   options.runs, rep.name.c_str(), rep.violation_count);
      for (const Violation& v : rep.violations) {
        std::fprintf(stderr, "    %s\n", v.Format().c_str());
      }
      WriteAndAnnounceReproducer(doc, options, &rep);
      continue;
    }
    if (options.verbose) {
      std::fprintf(stderr,
                   "[%d/%d] %s: ok  flows %llu/%llu  trace %016llx\n", i + 1,
                   options.runs, rep.name.c_str(),
                   static_cast<unsigned long long>(rep.flows_completed),
                   static_cast<unsigned long long>(rep.flows_created),
                   static_cast<unsigned long long>(rep.trace_hash));
    }
  }
  std::printf("fuzz: %d run(s), seed %llu: %d bad, %zu violation(s)\n",
              options.runs, static_cast<unsigned long long>(options.seed),
              bad_runs, total_violations);
  return bad_runs == 0 ? 0 : 1;
}

}  // namespace hpcc::check
