// The standard invariant-monitor set, derived from the paper's core claims:
//
//   QueueConservationMonitor  per-(node, port, priority) byte/packet ledger:
//                             enqueued == dequeued + queued, never negative,
//                             and the port's own byte counter agrees.
//   QueueBoundMonitor         switch data queues never exceed the configured
//                             shared buffer; host data queues never hold
//                             more than the NIC's one-packet pacing window.
//   PfcSanityMonitor          no pause events when PFC is disabled; no pause
//                             outlives max_pause (deadlock/stuck-resume
//                             detector); per-port pause event count bounded
//                             (pause-storm detector).
//   IntSanityMonitor          per-(flow, hop) INT records are sane (positive
//                             bandwidth, qlen within the buffer) and ts /
//                             txBytes are monotone, with HPCC's own pathID
//                             reset semantics on path changes.
//   CcSanityMonitor           every CC update leaves rate in (0, line rate]
//                             and a positive window, for all schemes.
//   LosslessDropMonitor       a PFC-protected fabric never drops for buffer
//                             exhaustion (route drops from link failures are
//                             legitimate and exempt).
//
// InstallStandardMonitors wires all of them to a live Experiment with bounds
// taken from its actual topology and config.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "check/invariant.h"
#include "core/flat_map.h"
#include "core/int_header.h"
#include "net/packet.h"

namespace hpcc::runner {
class Experiment;
}

namespace hpcc::check {

class QueueConservationMonitor : public InvariantMonitor {
 public:
  // `num_nodes`/`max_ports` size a dense ledger array (direct index per
  // hook, no hashing — this monitor runs on every single enqueue). Ledgers
  // for out-of-range ids (none in practice) fall back to a flat map.
  QueueConservationMonitor(uint32_t num_nodes = 0, int max_ports = 0)
      : num_nodes_(num_nodes),
        max_ports_(max_ports),
        dense_(static_cast<size_t>(num_nodes) * static_cast<size_t>(max_ports) *
               net::kNumPriorities) {}
  std::string name() const override { return "queue-conservation"; }
  unsigned interests() const override { return kEnqueue | kDequeue; }
  void OnEnqueue(uint32_t node, int port, const net::Packet& pkt,
                 int64_t queue_bytes_after) override;
  void OnDequeue(uint32_t node, int port, const net::Packet& pkt,
                 int64_t queue_bytes_after) override;
  // Native burst path: one ledger lookup per (priority, train) instead of
  // one per packet — the monitored cost of a train scales with its priority
  // mix, not its length.
  void OnDequeueBurst(uint32_t node, int port, const DequeueRecord* recs,
                      size_t n) override;
  void OnFinish(sim::TimePs now) override;

 private:
  struct Ledger {
    int64_t enq_bytes = 0;
    int64_t deq_bytes = 0;
    uint64_t enq_packets = 0;
    uint64_t deq_packets = 0;
  };
  Ledger& At(uint32_t node, int port, int priority);
  // Checks one dequeue against its ledger (shared by both dequeue paths).
  void CheckDequeue(Ledger& l, uint32_t node, int port,
                    const net::Packet& pkt, int64_t queue_bytes_after);
  uint32_t num_nodes_;
  int max_ports_;
  std::vector<Ledger> dense_;
  core::FlatMap<Ledger> overflow_;
};

class QueueBoundMonitor : public InvariantMonitor {
 public:
  // `node_capacity[id]` is the byte bound of node id's data-priority queues:
  // the shared buffer for switches, the pacing allowance for hosts.
  explicit QueueBoundMonitor(std::vector<int64_t> node_capacity)
      : capacity_(std::move(node_capacity)) {}
  std::string name() const override { return "queue-bound"; }
  unsigned interests() const override { return kEnqueue; }
  void OnEnqueue(uint32_t node, int port, const net::Packet& pkt,
                 int64_t queue_bytes_after) override;

 private:
  std::vector<int64_t> capacity_;
  core::FlatMap<bool> reported_;  // one report per (node,port)
};

class PfcSanityMonitor : public InvariantMonitor {
 public:
  struct Options {
    bool pfc_enabled = true;
    // A single pause longer than this is a stuck-resume / deadlock suspect.
    sim::TimePs max_pause = sim::Ms(20);
    // More pause events than this on one (node, port) is a pause storm.
    uint64_t max_events_per_port = 1'000'000;
  };
  explicit PfcSanityMonitor(const Options& options) : options_(options) {}
  std::string name() const override { return "pfc-sanity"; }
  unsigned interests() const override { return kPause; }
  void OnPauseChange(uint32_t node, int port, int priority, bool paused,
                     sim::TimePs now) override;
  void OnFinish(sim::TimePs now) override;

 private:
  struct PortState {
    bool paused = false;
    sim::TimePs since = 0;
    uint64_t events = 0;
    bool storm_reported = false;
  };
  Options options_;
  core::FlatMap<PortState> ports_;
};

class IntSanityMonitor : public InvariantMonitor {
 public:
  struct Options {
    // Fig. 7 wire format wraps ts/txBytes; monotonicity is then checked by
    // the CC's wrap-aware deltas, not here.
    bool wire_format = false;
    int64_t max_qlen_bytes = 0;  // 0 = unbounded
    // Strict per-hop ts/txBytes monotonicity. Sound only while the topology
    // is static: a link flap can reorder the *observation* stream (an ACK
    // frozen on a downed port is overtaken by a newer ACK on the rerouted
    // path), which the HPCC sender tolerates by skipping dt <= 0 samples.
    // Scenario runs with link events therefore disable it.
    bool check_monotonic = true;
  };
  explicit IntSanityMonitor(const Options& options) : options_(options) {}
  std::string name() const override { return "int-sanity"; }
  unsigned interests() const override { return kIntEcho; }
  void OnIntEcho(uint64_t flow_id, const core::IntStack& stack,
                 sim::TimePs now) override;

 private:
  struct FlowState {
    uint16_t path_id = 0;
    int n_hops = 0;
    bool have = false;
    sim::TimePs ts[core::kMaxIntHops] = {};
    uint64_t tx_bytes[core::kMaxIntHops] = {};
  };
  FlowState& StateFor(uint64_t flow_id);
  Options options_;
  // Hash probes touch small index slots; the fat per-flow histories live
  // densely to the side (this hook runs once per INT-carrying ACK).
  core::FlatMap<uint32_t> flow_index_;
  std::vector<FlowState> states_;
};

class CcSanityMonitor : public InvariantMonitor {
 public:
  // `max_rate_bps`: the fastest NIC in the experiment; no sender may ever
  // pace above its line rate (every scheme clamps — §3.2 and each scheme's
  // own min/max bounds).
  explicit CcSanityMonitor(int64_t max_rate_bps)
      : max_rate_bps_(max_rate_bps) {}
  std::string name() const override { return "cc-sanity"; }
  unsigned interests() const override { return kCcUpdate; }
  void OnCcUpdate(uint64_t flow_id, int64_t window_bytes, int64_t rate_bps,
                  sim::TimePs now) override;

 private:
  int64_t max_rate_bps_;
  core::FlatMap<bool> reported_;  // one report per flow
};

class LosslessDropMonitor : public InvariantMonitor {
 public:
  explicit LosslessDropMonitor(bool pfc_enabled)
      : pfc_enabled_(pfc_enabled) {}
  std::string name() const override { return "lossless-drop"; }
  unsigned interests() const override { return kDrop; }
  void OnDrop(uint32_t node, const net::Packet& pkt,
              DropReason reason) override;
  void OnFinish(sim::TimePs now) override;

 private:
  bool pfc_enabled_;
  uint64_t buffer_drops_ = 0;
};

// Options for InstallStandardMonitors; every field defaults to "derive from
// the experiment".
struct StandardMonitorOptions {
  PfcSanityMonitor::Options pfc;
  // Set when the run's event script takes links down/up: relaxes checks that
  // assume a static topology (INT observation-stream monotonicity).
  bool topology_mutates = false;
};

// No-progress check, run once after the simulation: any started, unfinished
// flow whose last observable forward progress (start, ACK advance, or RTO
// recovery action — Flow::last_activity) is more than `stall_rtos` maximum
// RTOs in the past is reported as a "no-progress" violation. The transport's
// own backoff re-arms within one rto_max whenever it is still trying, so a
// stall this long means the retry machinery itself wedged. Callers should
// skip runs cut short by the event budget or a wall deadline — a truncated
// run legitimately strands in-flight flows.
void CheckFlowProgress(MonitorRegistry& registry, runner::Experiment& e,
                       sim::TimePs now, int stall_rtos = 4);

// Builds the full standard monitor set with bounds taken from `e`'s
// topology/config and attaches `registry` to every node. The registry must
// outlive the experiment's run.
void InstallStandardMonitors(MonitorRegistry& registry, runner::Experiment& e,
                             const StandardMonitorOptions& options = {});

// Shard-local variant: the same monitor set with the same bounds (derived
// from the full topology, so they are lane-independent), but clocked by lane
// `lane`'s simulator and attached only to that lane's nodes. Every monitor
// keys its state per (node, port[, prio]) or per flow, and a flow's packets
// are only ever observed by the nodes on its path — each lane's registry
// sees a self-consistent slice, and clean runs stay clean.
void InstallStandardMonitors(MonitorRegistry& registry, runner::Experiment& e,
                             const StandardMonitorOptions& options, int lane);

}  // namespace hpcc::check
