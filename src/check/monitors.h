// The standard invariant-monitor set, derived from the paper's core claims:
//
//   QueueConservationMonitor  per-(node, port, priority) byte/packet ledger:
//                             enqueued == dequeued + queued, never negative,
//                             and the port's own byte counter agrees.
//   QueueBoundMonitor         switch data queues never exceed the configured
//                             shared buffer; host data queues never hold
//                             more than the NIC's one-packet pacing window.
//   PfcSanityMonitor          no pause events when PFC is disabled; no pause
//                             outlives max_pause (deadlock/stuck-resume
//                             detector); per-port pause event count bounded
//                             (pause-storm detector).
//   IntSanityMonitor          per-(flow, hop) INT records are sane (positive
//                             bandwidth, qlen within the buffer) and ts /
//                             txBytes are monotone, with HPCC's own pathID
//                             reset semantics on path changes.
//   CcSanityMonitor           every CC update leaves rate in (0, line rate]
//                             and a positive window, for all schemes.
//   LosslessDropMonitor       a PFC-protected fabric never drops for buffer
//                             exhaustion (route drops from link failures are
//                             legitimate and exempt).
//
// InstallStandardMonitors wires all of them to a live Experiment with bounds
// taken from its actual topology and config.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "check/invariant.h"
#include "core/int_header.h"

namespace hpcc::runner {
class Experiment;
}

namespace hpcc::check {

class QueueConservationMonitor : public InvariantMonitor {
 public:
  std::string name() const override { return "queue-conservation"; }
  void OnEnqueue(uint32_t node, int port, const net::Packet& pkt,
                 int64_t queue_bytes_after) override;
  void OnDequeue(uint32_t node, int port, const net::Packet& pkt,
                 int64_t queue_bytes_after) override;
  void OnFinish(sim::TimePs now) override;

 private:
  struct Ledger {
    int64_t enq_bytes = 0;
    int64_t deq_bytes = 0;
    uint64_t enq_packets = 0;
    uint64_t deq_packets = 0;
  };
  Ledger& At(uint32_t node, int port, int priority);
  std::unordered_map<uint64_t, Ledger> ledgers_;
};

class QueueBoundMonitor : public InvariantMonitor {
 public:
  // `node_capacity[id]` is the byte bound of node id's data-priority queues:
  // the shared buffer for switches, the pacing allowance for hosts.
  explicit QueueBoundMonitor(std::vector<int64_t> node_capacity)
      : capacity_(std::move(node_capacity)) {}
  std::string name() const override { return "queue-bound"; }
  void OnEnqueue(uint32_t node, int port, const net::Packet& pkt,
                 int64_t queue_bytes_after) override;

 private:
  std::vector<int64_t> capacity_;
  std::unordered_map<uint64_t, bool> reported_;  // one report per (node,port)
};

class PfcSanityMonitor : public InvariantMonitor {
 public:
  struct Options {
    bool pfc_enabled = true;
    // A single pause longer than this is a stuck-resume / deadlock suspect.
    sim::TimePs max_pause = sim::Ms(20);
    // More pause events than this on one (node, port) is a pause storm.
    uint64_t max_events_per_port = 1'000'000;
  };
  explicit PfcSanityMonitor(const Options& options) : options_(options) {}
  std::string name() const override { return "pfc-sanity"; }
  void OnPauseChange(uint32_t node, int port, int priority, bool paused,
                     sim::TimePs now) override;
  void OnFinish(sim::TimePs now) override;

 private:
  struct PortState {
    bool paused = false;
    sim::TimePs since = 0;
    uint64_t events = 0;
    bool storm_reported = false;
  };
  Options options_;
  std::unordered_map<uint64_t, PortState> ports_;
};

class IntSanityMonitor : public InvariantMonitor {
 public:
  struct Options {
    // Fig. 7 wire format wraps ts/txBytes; monotonicity is then checked by
    // the CC's wrap-aware deltas, not here.
    bool wire_format = false;
    int64_t max_qlen_bytes = 0;  // 0 = unbounded
    // Strict per-hop ts/txBytes monotonicity. Sound only while the topology
    // is static: a link flap can reorder the *observation* stream (an ACK
    // frozen on a downed port is overtaken by a newer ACK on the rerouted
    // path), which the HPCC sender tolerates by skipping dt <= 0 samples.
    // Scenario runs with link events therefore disable it.
    bool check_monotonic = true;
  };
  explicit IntSanityMonitor(const Options& options) : options_(options) {}
  std::string name() const override { return "int-sanity"; }
  void OnIntEcho(uint64_t flow_id, const core::IntStack& stack,
                 sim::TimePs now) override;

 private:
  struct FlowState {
    uint16_t path_id = 0;
    int n_hops = 0;
    bool have = false;
    sim::TimePs ts[core::kMaxIntHops] = {};
    uint64_t tx_bytes[core::kMaxIntHops] = {};
  };
  Options options_;
  std::unordered_map<uint64_t, FlowState> flows_;
};

class CcSanityMonitor : public InvariantMonitor {
 public:
  // `max_rate_bps`: the fastest NIC in the experiment; no sender may ever
  // pace above its line rate (every scheme clamps — §3.2 and each scheme's
  // own min/max bounds).
  explicit CcSanityMonitor(int64_t max_rate_bps)
      : max_rate_bps_(max_rate_bps) {}
  std::string name() const override { return "cc-sanity"; }
  void OnCcUpdate(uint64_t flow_id, int64_t window_bytes, int64_t rate_bps,
                  sim::TimePs now) override;

 private:
  int64_t max_rate_bps_;
  std::unordered_map<uint64_t, bool> reported_;  // one report per flow
};

class LosslessDropMonitor : public InvariantMonitor {
 public:
  explicit LosslessDropMonitor(bool pfc_enabled)
      : pfc_enabled_(pfc_enabled) {}
  std::string name() const override { return "lossless-drop"; }
  void OnDrop(uint32_t node, const net::Packet& pkt,
              DropReason reason) override;
  void OnFinish(sim::TimePs now) override;

 private:
  bool pfc_enabled_;
  uint64_t buffer_drops_ = 0;
};

// Options for InstallStandardMonitors; every field defaults to "derive from
// the experiment".
struct StandardMonitorOptions {
  PfcSanityMonitor::Options pfc;
  // Set when the run's event script takes links down/up: relaxes checks that
  // assume a static topology (INT observation-stream monotonicity).
  bool topology_mutates = false;
};

// Builds the full standard monitor set with bounds taken from `e`'s
// topology/config and attaches `registry` to every node. The registry must
// outlive the experiment's run.
void InstallStandardMonitors(MonitorRegistry& registry, runner::Experiment& e,
                             const StandardMonitorOptions& options = {});

}  // namespace hpcc::check
