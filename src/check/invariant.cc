#include "check/invariant.h"

#include <cstdio>

#include "sim/simulator.h"
#include "topo/topology.h"

namespace hpcc::check {

std::string Violation::Format() const {
  char head[64];
  std::snprintf(head, sizeof(head), "[t=%.3fus] ", sim::ToUs(at));
  return head + monitor + ": " + message;
}

void InvariantMonitor::Report(sim::TimePs at, std::string message) {
  if (registry_ == nullptr) return;
  registry_->ReportViolation(Violation{name(), std::move(message), at});
}

InvariantMonitor* MonitorRegistry::Add(
    std::unique_ptr<InvariantMonitor> monitor) {
  monitor->registry_ = this;
  monitors_.push_back(std::move(monitor));
  InvariantMonitor* m = monitors_.back().get();
  const unsigned in = m->interests();
  if (in & InvariantMonitor::kEnqueue) on_enqueue_.push_back(m);
  if (in & InvariantMonitor::kDequeue) on_dequeue_.push_back(m);
  if (in & InvariantMonitor::kDrop) on_drop_.push_back(m);
  if (in & InvariantMonitor::kPause) on_pause_.push_back(m);
  if (in & InvariantMonitor::kCcUpdate) on_cc_.push_back(m);
  if (in & InvariantMonitor::kIntEcho) on_int_.push_back(m);
  return m;
}

void MonitorRegistry::AttachTo(topo::Topology& topology) {
  for (uint32_t id = 0; id < topology.num_nodes(); ++id) {
    topology.node(id).set_check_hooks(this);
  }
}

void MonitorRegistry::AttachTo(topo::Topology& topology,
                               const std::vector<uint32_t>& nodes) {
  for (uint32_t id : nodes) topology.node(id).set_check_hooks(this);
}

void MonitorRegistry::Finish(sim::TimePs now) {
  for (auto& m : monitors_) m->OnFinish(now);
}

void MonitorRegistry::ReportViolation(Violation v) {
  if (v.at == 0 && clock_ != nullptr) v.at = clock_->now();
  ++violation_count_;
  if (violations_.size() < kMaxStoredViolations) {
    violations_.push_back(std::move(v));
  }
}

std::string MonitorRegistry::Summary() const {
  std::string out;
  for (const Violation& v : violations_) {
    out += v.Format();
    out += '\n';
  }
  if (violation_count_ > violations_.size()) {
    out += "... and " +
           std::to_string(violation_count_ - violations_.size()) +
           " more violation(s)\n";
  }
  return out;
}

void MonitorRegistry::OnEnqueue(uint32_t node, int port,
                                const net::Packet& pkt,
                                int64_t queue_bytes_after) {
  for (auto* m : on_enqueue_) m->OnEnqueue(node, port, pkt, queue_bytes_after);
}

void MonitorRegistry::OnDequeue(uint32_t node, int port,
                                const net::Packet& pkt,
                                int64_t queue_bytes_after) {
  for (auto* m : on_dequeue_) m->OnDequeue(node, port, pkt, queue_bytes_after);
}

void MonitorRegistry::OnDequeueBurst(uint32_t node, int port,
                                     const DequeueRecord* recs, size_t n) {
  // One virtual call per interested monitor per train, however many packets
  // the train carried; monitors without a burst override unpack to their
  // per-packet OnDequeue themselves.
  for (auto* m : on_dequeue_) m->OnDequeueBurst(node, port, recs, n);
}

void MonitorRegistry::OnDrop(uint32_t node, const net::Packet& pkt,
                             DropReason reason) {
  for (auto* m : on_drop_) m->OnDrop(node, pkt, reason);
}

void MonitorRegistry::OnPauseChange(uint32_t node, int port, int priority,
                                    bool paused, sim::TimePs now) {
  for (auto* m : on_pause_) {
    m->OnPauseChange(node, port, priority, paused, now);
  }
}

void MonitorRegistry::OnCcUpdate(uint64_t flow_id, int64_t window_bytes,
                                 int64_t rate_bps, sim::TimePs now) {
  for (auto* m : on_cc_) m->OnCcUpdate(flow_id, window_bytes, rate_bps, now);
}

void MonitorRegistry::OnIntEcho(uint64_t flow_id, const core::IntStack& stack,
                                sim::TimePs now) {
  for (auto* m : on_int_) m->OnIntEcho(flow_id, stack, now);
}

}  // namespace hpcc::check
