// Appendix A.1: queueing at a resource fed by paced (periodic) sources.
//
// With N homogeneous periodic sources at total load rho, the ΣD/D/1 queue
// stays tiny: at rho = 1 the mean queue is about sqrt(πN/8) packets, and at
// rho = 0.95 with N = 50 the probability of >20 queued packets is ~1e-9.
// We provide the closed-form mean at full load and a Monte-Carlo simulator
// of the superposed periodic arrival process to validate the claims.
#pragma once

#include <cstdint>

#include "sim/rng.h"

namespace hpcc::analytic {

// Mean queue length at rho = 1 for N periodic sources: sqrt(pi*N/8).
double MeanQueueAtFullLoad(int num_sources);

struct PeriodicQueueStats {
  double mean_queue = 0;        // time-average packets in queue
  double p99_queue = 0;
  double max_queue = 0;
  double prob_above = 0;        // fraction of slots with queue > threshold
};

// Simulates N periodic sources with i.i.d. uniform random phases feeding a
// deterministic unit-rate server at load rho, in discrete slots of one
// packet service time. `slots` is the horizon; `threshold` sets prob_above.
PeriodicQueueStats SimulatePeriodicSources(int num_sources, double rho,
                                           int64_t slots, int threshold,
                                           sim::Rng& rng);

}  // namespace hpcc::analytic
