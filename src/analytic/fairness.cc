#include "analytic/fairness.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hpcc::analytic {

double EquilibriumRate(double a, double u_target, double u) {
  assert(a > 0 && u > u_target);
  return a / (1.0 - u_target / u);
}

double EquilibriumUtilization(double a, double u_target, double rate) {
  assert(rate > a);
  return u_target / (1.0 - a / rate);
}

double MaxStableAdditiveStep(double u_target, double r1) {
  return r1 * (1.0 - u_target);
}

double AlphaFairAggregate(const std::vector<double>& rates, double alpha) {
  assert(!rates.empty() && alpha > 0);
  const double rmin = *std::min_element(rates.begin(), rates.end());
  if (alpha > 64) return rmin;  // numerically the min
  double sum = 0;
  for (double r : rates) sum += std::pow(r / rmin, -alpha);
  return rmin * std::pow(sum, -1.0 / alpha);
}

}  // namespace hpcc::analytic
