// Appendix A.2: the discrete-time multiplicative update model and its Lemma.
//
// Resources i = 1..I with capacities C_i; paths j = 1..J with incidence
// A_ij = 1 iff path j uses resource i. Rates update synchronously:
//     Y(n)   = A R(n)
//     R_j(n+1) = R_j(n) / max_i { Y_i(n) A_ij / C_i }
// Lemma: (i) rates are feasible after one step; (ii) non-decreasing from then
// on; (iii) constant and Pareto-optimal after at most I steps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpcc::analytic {

struct ResourceNetwork {
  // incidence[i][j] = true iff resource i is used by path j.
  std::vector<std::vector<bool>> incidence;
  std::vector<double> capacities;  // C_i > 0

  size_t num_resources() const { return incidence.size(); }
  size_t num_paths() const {
    return incidence.empty() ? 0 : incidence[0].size();
  }
  // Every path must use >= 1 resource (the Lemma's precondition).
  bool Valid() const;
};

// Loads Y = A R.
std::vector<double> Loads(const ResourceNetwork& net,
                          const std::vector<double>& rates);

// One synchronous update step (Eqn 5-6).
std::vector<double> Step(const ResourceNetwork& net,
                         const std::vector<double>& rates);

// Y <= C componentwise (within tol).
bool IsFeasible(const ResourceNetwork& net, const std::vector<double>& rates,
                double tol = 1e-9);

// Every path traverses at least one saturated resource: no rate can grow
// without shrinking another (Pareto optimality as used in the Lemma proof).
bool IsParetoOptimal(const ResourceNetwork& net,
                     const std::vector<double>& rates, double tol = 1e-6);

struct ConvergenceResult {
  std::vector<double> rates;
  int steps = 0;        // steps until the rate vector stopped changing
  bool converged = false;
};

// Iterates Step() until fixed point (or max_steps).
ConvergenceResult RunToFixedPoint(const ResourceNetwork& net,
                                  std::vector<double> initial_rates,
                                  int max_steps = 1000, double tol = 1e-9);

}  // namespace hpcc::analytic
