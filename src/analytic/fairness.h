// Appendix A.3: additive-increase equilibria and alpha-fair aggregation.
#pragma once

#include <vector>

namespace hpcc::analytic {

// Equilibrium of R <- R·U_target/U + a at a bottleneck with observed
// utilization U:   R = a · (1 − U_target/U)^{-1}.
double EquilibriumRate(double a, double u_target, double u);

// Inverse: the equilibrium utilization a bottleneck settles at when its
// flows' rate is R:   U = U_target · (1 − a/R)^{-1}.
double EquilibriumUtilization(double a, double u_target, double rate);

// Largest additive step keeping the most congested bottleneck under 100 %:
// a < R_(1) · (1 − U_target).
double MaxStableAdditiveStep(double u_target, double r1);

// Eqn (7): R = (Σ_i R_i^{-α})^{-1/α}. α→∞ -> min; α=1 -> harmonic-style
// proportional fairness; α→0 -> throughput maximization.
double AlphaFairAggregate(const std::vector<double>& rates, double alpha);

}  // namespace hpcc::analytic
