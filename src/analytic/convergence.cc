#include "analytic/convergence.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hpcc::analytic {

bool ResourceNetwork::Valid() const {
  if (incidence.size() != capacities.size()) return false;
  for (double c : capacities) {
    if (c <= 0) return false;
  }
  const size_t j_count = num_paths();
  for (const auto& row : incidence) {
    if (row.size() != j_count) return false;
  }
  for (size_t j = 0; j < j_count; ++j) {
    bool used = false;
    for (size_t i = 0; i < incidence.size(); ++i) used |= incidence[i][j];
    if (!used) return false;
  }
  return j_count > 0;
}

std::vector<double> Loads(const ResourceNetwork& net,
                          const std::vector<double>& rates) {
  std::vector<double> y(net.num_resources(), 0.0);
  for (size_t i = 0; i < net.num_resources(); ++i) {
    for (size_t j = 0; j < net.num_paths(); ++j) {
      if (net.incidence[i][j]) y[i] += rates[j];
    }
  }
  return y;
}

std::vector<double> Step(const ResourceNetwork& net,
                         const std::vector<double>& rates) {
  assert(net.Valid());
  const std::vector<double> y = Loads(net, rates);
  std::vector<double> next(rates.size());
  for (size_t j = 0; j < rates.size(); ++j) {
    double k = 0;
    for (size_t i = 0; i < net.num_resources(); ++i) {
      if (net.incidence[i][j]) {
        k = std::max(k, y[i] / net.capacities[i]);
      }
    }
    assert(k > 0);
    next[j] = rates[j] / k;
  }
  return next;
}

bool IsFeasible(const ResourceNetwork& net, const std::vector<double>& rates,
                double tol) {
  const std::vector<double> y = Loads(net, rates);
  for (size_t i = 0; i < y.size(); ++i) {
    if (y[i] > net.capacities[i] * (1.0 + tol)) return false;
  }
  return true;
}

bool IsParetoOptimal(const ResourceNetwork& net,
                     const std::vector<double>& rates, double tol) {
  const std::vector<double> y = Loads(net, rates);
  for (size_t j = 0; j < net.num_paths(); ++j) {
    bool bottlenecked = false;
    for (size_t i = 0; i < net.num_resources(); ++i) {
      if (net.incidence[i][j] &&
          y[i] >= net.capacities[i] * (1.0 - tol)) {
        bottlenecked = true;
        break;
      }
    }
    if (!bottlenecked) return false;
  }
  return true;
}

ConvergenceResult RunToFixedPoint(const ResourceNetwork& net,
                                  std::vector<double> rates, int max_steps,
                                  double tol) {
  ConvergenceResult out;
  for (int n = 0; n < max_steps; ++n) {
    std::vector<double> next = Step(net, rates);
    double delta = 0;
    for (size_t j = 0; j < rates.size(); ++j) {
      delta = std::max(delta, std::fabs(next[j] - rates[j]) /
                                  std::max(1e-300, rates[j]));
    }
    rates = std::move(next);
    if (delta < tol) {
      out.converged = true;
      out.steps = n + 1;
      break;
    }
  }
  out.rates = std::move(rates);
  if (!out.converged) out.steps = max_steps;
  return out;
}

}  // namespace hpcc::analytic
