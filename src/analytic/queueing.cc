#include "analytic/queueing.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "stats/percentile.h"

namespace hpcc::analytic {

double MeanQueueAtFullLoad(int num_sources) {
  return std::sqrt(M_PI * static_cast<double>(num_sources) / 8.0);
}

PeriodicQueueStats SimulatePeriodicSources(int num_sources, double rho,
                                           int64_t slots, int threshold,
                                           sim::Rng& rng) {
  assert(num_sources > 0 && rho > 0 && rho <= 1.0 && slots > 0);
  // Each source emits one packet every `period` slots; N sources at load rho
  // means period = N / rho (fractional periods handled in continuous time).
  const double period = static_cast<double>(num_sources) / rho;
  std::vector<double> next_arrival(static_cast<size_t>(num_sources));
  for (auto& t : next_arrival) t = rng.Uniform() * period;

  stats::PercentileTracker dist;
  double queue = 0;  // packets waiting (fluid-rounded per slot)
  int64_t above = 0;
  double mean_acc = 0;
  double max_queue = 0;

  for (int64_t slot = 0; slot < slots; ++slot) {
    const double t0 = static_cast<double>(slot);
    const double t1 = t0 + 1.0;
    int arrivals = 0;
    for (auto& t : next_arrival) {
      while (t < t1) {
        if (t >= t0) ++arrivals;
        t += period;
      }
    }
    queue += arrivals;
    if (queue >= 1.0) queue -= 1.0;  // serve one packet per slot
    mean_acc += queue;
    max_queue = std::max(max_queue, queue);
    if (queue > threshold) ++above;
    dist.Add(queue);
  }

  PeriodicQueueStats out;
  out.mean_queue = mean_acc / static_cast<double>(slots);
  out.p99_queue = dist.Percentile(99);
  out.max_queue = max_queue;
  out.prob_above = static_cast<double>(above) / static_cast<double>(slots);
  return out;
}

}  // namespace hpcc::analytic
