// Deterministic per-RTT fluid model of HPCC on a single bottleneck.
//
// N flows share a link of capacity B with base RTT T. Each round (one RTT):
//   queue' = max(0, queue + sum(W) - B*T)                (service vs arrival)
//   U      = queue'/(B*T) + min(1, sum(W)/(B*T))         (Eqn 2, aggregated)
//   each flow applies ComputeWind with per-round reference sync:
//     U >= eta or stage >= maxStage : W <- W*eta/U + W_AI
//     else                          : W <- W + W_AI
// This is the discrete-time map the Appendix A analysis linearizes; the unit
// tests verify convergence of utilization (fast, multiplicative) and of
// fairness (slow, additive) against the closed-form predictions, and the
// packet simulator is expected to track it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpcc::analytic {

struct FluidParams {
  double capacity_bytes_per_rtt = 0;  // B*T in bytes
  double eta = 0.95;
  int max_stage = 5;
  double wai_bytes = 80;
};

class FluidLink {
 public:
  // Flows are named by stable handles: the `initial_windows` get handles
  // 0..n-1, AddFlow returns the next one. Handles survive other flows'
  // departures (unlike raw indices into windows(), which shift on erase —
  // exactly the corruption the handle surface exists to prevent for hybrid
  // runs, where fluid flows join and depart in arbitrary interleavings).
  using FlowId = uint64_t;

  FluidLink(const FluidParams& params, std::vector<double> initial_windows);

  // Advances one RTT; returns the utilization U observed this round.
  double Step();
  FlowId AddFlow(double window);  // a new flow joins at this window
  // A flow departs. Throws std::out_of_range on an unknown (never issued or
  // already removed) handle — a silent mis-erase would shift every later
  // flow's window onto the wrong identity.
  void RemoveFlow(FlowId id);
  bool HasFlow(FlowId id) const;
  // Current window of a live flow; throws std::out_of_range when unknown.
  double WindowOf(FlowId id) const;

  const std::vector<double>& windows() const { return windows_; }
  double queue_bytes() const { return queue_; }
  double total_window() const;
  double utilization() const { return u_; }
  int rounds() const { return rounds_; }

  // Jain fairness index of the current windows.
  double JainIndex() const;

 private:
  size_t IndexOf(FlowId id) const;  // throws std::out_of_range when unknown

  FluidParams params_;
  std::vector<double> windows_;
  std::vector<int> stages_;
  std::vector<FlowId> ids_;  // parallel to windows_/stages_
  FlowId next_id_ = 0;
  double queue_ = 0;
  double u_ = 0;
  int rounds_ = 0;
};

}  // namespace hpcc::analytic
