// Deterministic per-RTT fluid model of HPCC on a single bottleneck.
//
// N flows share a link of capacity B with base RTT T. Each round (one RTT):
//   queue' = max(0, queue + sum(W) - B*T)                (service vs arrival)
//   U      = queue'/(B*T) + min(1, sum(W)/(B*T))         (Eqn 2, aggregated)
//   each flow applies ComputeWind with per-round reference sync:
//     U >= eta or stage >= maxStage : W <- W*eta/U + W_AI
//     else                          : W <- W + W_AI
// This is the discrete-time map the Appendix A analysis linearizes; the unit
// tests verify convergence of utilization (fast, multiplicative) and of
// fairness (slow, additive) against the closed-form predictions, and the
// packet simulator is expected to track it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpcc::analytic {

struct FluidParams {
  double capacity_bytes_per_rtt = 0;  // B*T in bytes
  double eta = 0.95;
  int max_stage = 5;
  double wai_bytes = 80;
};

class FluidLink {
 public:
  FluidLink(const FluidParams& params, std::vector<double> initial_windows);

  // Advances one RTT; returns the utilization U observed this round.
  double Step();
  void AddFlow(double window);     // a new flow joins at this window
  void RemoveFlow(size_t index);   // a flow departs

  const std::vector<double>& windows() const { return windows_; }
  double queue_bytes() const { return queue_; }
  double total_window() const;
  double utilization() const { return u_; }
  int rounds() const { return rounds_; }

  // Jain fairness index of the current windows.
  double JainIndex() const;

 private:
  FluidParams params_;
  std::vector<double> windows_;
  std::vector<int> stages_;
  double queue_ = 0;
  double u_ = 0;
  int rounds_ = 0;
};

}  // namespace hpcc::analytic
