#include "analytic/fluid_region.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hpcc::analytic {

FluidRegion::FluidRegion(sim::Simulator* simulator, topo::Topology* topology,
                         const FluidRegionParams& params)
    : simulator_(simulator), topology_(topology), params_(params) {
  if (params_.tick <= 0) {
    throw std::invalid_argument("FluidRegion requires a positive tick");
  }
  tick_seconds_ =
      static_cast<double>(params_.tick) / static_cast<double>(sim::kPsPerSec);
}

uint32_t FluidRegion::InternDirectedLink(size_t link_index, bool a_to_b) {
  const uint64_t key = static_cast<uint64_t>(link_index) * 2 + (a_to_b ? 0 : 1);
  auto it = dlink_index_.find(key);
  if (it != dlink_index_.end()) return it->second;
  const topo::LinkSpec& l = topology_->links()[link_index];
  DirectedLink d;
  const uint32_t egress_node = a_to_b ? l.a : l.b;
  const int egress_port = a_to_b ? l.port_a : l.port_b;
  d.port = &topology_->node(egress_node).port(egress_port);
  d.cap_per_tick =
      static_cast<double>(l.bps) / 8.0 * tick_seconds_;  // B*T in bytes
  d.last_pkt_tx = d.port->tx_bytes();
  const uint32_t index = static_cast<uint32_t>(dlinks_.size());
  dlinks_.push_back(d);
  dlink_index_.emplace(key, index);
  return index;
}

void FluidRegion::AddFlow(uint64_t id, uint32_t src, uint32_t dst,
                          uint64_t size_bytes, sim::TimePs start) {
  if (src == dst) throw std::invalid_argument("fluid flow src == dst");
  const std::vector<size_t> path = topology_->ShortestPathLinks(src, dst);
  if (path.empty()) {
    throw std::invalid_argument("fluid flow has no path src -> dst");
  }

  Flow f;
  f.record = records_.size();
  f.remaining = static_cast<double>(size_bytes);
  f.window_cap = std::numeric_limits<double>::max();
  // Walk from src to recover each link's traversal direction; the egress
  // side is the endpoint matching the current node.
  uint32_t cur = src;
  f.links.reserve(path.size());
  for (size_t li : path) {
    const topo::LinkSpec& l = topology_->links()[li];
    const bool a_to_b = l.a == cur;
    const uint32_t di = InternDirectedLink(li, a_to_b);
    f.links.push_back(di);
    f.window_cap = std::min(f.window_cap, dlinks_[di].cap_per_tick);
    cur = a_to_b ? l.b : l.a;
  }
  // Line-rate start (RDMA semantics): one path-bottleneck BDP, or the whole
  // flow if smaller.
  f.window = std::min(static_cast<double>(size_bytes), f.window_cap);

  FlowRecord rec;
  rec.id = id;
  rec.src = src;
  rec.dst = dst;
  rec.size_bytes = size_bytes;
  rec.start = start;
  records_.push_back(rec);
  flows_.push_back(std::move(f));
  ++live_flows_;

  if (!ticking_) {
    ticking_ = true;
    // First round one full tick out: the flow's first window of bytes takes
    // one fluid RTT to traverse the region, like FluidLink's first Step.
    simulator_->SchedulePeriodic(simulator_->now() + params_.tick,
                                 params_.tick, [this]() { return Tick(); });
  }
}

bool FluidRegion::Tick() {
  ++ticks_;
  const sim::TimePs now = simulator_->now();

  // Pass 1: read every coupled port's real tx counter. This settles due
  // fast-path train work *before* any fluid state changes, so packets
  // emitted at or before this tick are stamped with the pre-tick fluid
  // state under both transmit engines (the Port::SetFluidState contract).
  for (DirectedLink& d : dlinks_) {
    const uint64_t tx = d.port->tx_bytes();
    const double pkt = static_cast<double>(tx - d.last_pkt_tx);
    d.last_pkt_tx = tx;
    d.sum_w = 0;
    // Stash pkt in `served` until pass 3 reuses the field.
    d.served = pkt;
  }

  // Pass 2: offered fluid load per link.
  for (const Flow& f : flows_) {
    if (f.done) continue;
    for (uint32_t di : f.links) dlinks_[di].sum_w += f.window;
  }

  // Pass 3: link service + utilization (the FluidLink map, minus the
  // capacity consumed by real packets).
  for (DirectedLink& d : dlinks_) {
    const double pkt = d.served;
    const double avail = std::max(0.0, d.cap_per_tick - pkt);
    const double supply = d.queue + d.sum_w;
    d.served = std::min(supply, avail);
    d.share = supply > 0 ? d.served / supply : 1.0;
    d.queue = supply - d.served;
    d.u = d.queue / d.cap_per_tick +
          std::min(1.0, (d.sum_w + pkt) / d.cap_per_tick);
    peak_queue_bytes_ =
        std::max(peak_queue_bytes_, static_cast<int64_t>(std::llround(d.queue)));
  }

  // Pass 4: per-flow delivery + HPCC window update against the path max U.
  for (Flow& f : flows_) {
    if (f.done) continue;
    double u = 0;
    double share = 1.0;
    for (uint32_t di : f.links) {
      u = std::max(u, dlinks_[di].u);
      share = std::min(share, dlinks_[di].share);
    }
    const double delivered = std::min(f.remaining, f.window * share);
    f.remaining -= delivered;
    delivered_bytes_ += static_cast<uint64_t>(std::llround(delivered));
    if (f.remaining <= 0.5) {
      f.done = true;
      --live_flows_;
      ++completed_;
      FlowRecord& rec = records_[f.record];
      rec.finish = now;
      rec.done = true;
      if (completion_) completion_(rec, now);
      continue;
    }
    if (u >= params_.eta || f.stage >= params_.max_stage) {
      f.window =
          f.window * params_.eta / std::max(u, 1e-12) + params_.wai_bytes;
      f.stage = 0;
    } else {
      f.window += params_.wai_bytes;
      ++f.stage;
    }
    f.window = std::clamp(f.window, 1.0, f.window_cap);
  }

  // Pass 5: push the post-tick fluid state into the shared ports. The
  // served rate drives the INT virtual-txBytes interpolation until the next
  // tick; the backlog adds to stamped qLen (clamped to the buffer bound).
  bool backlog = false;
  for (DirectedLink& d : dlinks_) {
    const int64_t qlen = std::llround(d.queue);
    if (qlen > 0) backlog = true;
    const int64_t rate =
        std::llround(d.served / tick_seconds_);  // bytes per second
    d.port->SetFluidState(qlen, rate, params_.qlen_cap_bytes);
  }

  if (live_flows_ == 0 && !backlog) {
    // Idle: zero every port's fluid rate so interpolation stops advancing,
    // and end the periodic series (AddFlow restarts it).
    for (DirectedLink& d : dlinks_) {
      d.port->SetFluidState(0, 0, params_.qlen_cap_bytes);
      d.queue = 0;
    }
    ticking_ = false;
    return false;
  }
  return true;
}

}  // namespace hpcc::analytic
