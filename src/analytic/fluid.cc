#include "analytic/fluid.h"

#include <algorithm>
#include <cassert>

namespace hpcc::analytic {

FluidLink::FluidLink(const FluidParams& params,
                     std::vector<double> initial_windows)
    : params_(params),
      windows_(std::move(initial_windows)),
      stages_(windows_.size(), 0) {
  assert(params_.capacity_bytes_per_rtt > 0);
}

double FluidLink::total_window() const {
  double sum = 0;
  for (double w : windows_) sum += w;
  return sum;
}

double FluidLink::Step() {
  const double bdp = params_.capacity_bytes_per_rtt;
  const double inflight = total_window();
  queue_ = std::max(0.0, queue_ + inflight - bdp);
  u_ = queue_ / bdp + std::min(1.0, inflight / bdp);

  for (size_t i = 0; i < windows_.size(); ++i) {
    if (u_ >= params_.eta || stages_[i] >= params_.max_stage) {
      windows_[i] = windows_[i] * params_.eta / std::max(u_, 1e-12) +
                    params_.wai_bytes;
      stages_[i] = 0;
    } else {
      windows_[i] += params_.wai_bytes;
      ++stages_[i];
    }
    windows_[i] = std::max(windows_[i], 1.0);
  }
  ++rounds_;
  return u_;
}

void FluidLink::AddFlow(double window) {
  windows_.push_back(window);
  stages_.push_back(0);
}

void FluidLink::RemoveFlow(size_t index) {
  assert(index < windows_.size());
  windows_.erase(windows_.begin() + static_cast<ptrdiff_t>(index));
  stages_.erase(stages_.begin() + static_cast<ptrdiff_t>(index));
}

double FluidLink::JainIndex() const {
  if (windows_.empty()) return 1.0;
  double sum = 0;
  double sq = 0;
  for (double w : windows_) {
    sum += w;
    sq += w * w;
  }
  return sum * sum / (static_cast<double>(windows_.size()) * sq);
}

}  // namespace hpcc::analytic
