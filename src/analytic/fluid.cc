#include "analytic/fluid.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace hpcc::analytic {

FluidLink::FluidLink(const FluidParams& params,
                     std::vector<double> initial_windows)
    : params_(params),
      windows_(std::move(initial_windows)),
      stages_(windows_.size(), 0) {
  assert(params_.capacity_bytes_per_rtt > 0);
  ids_.reserve(windows_.size());
  for (size_t i = 0; i < windows_.size(); ++i) ids_.push_back(next_id_++);
}

double FluidLink::total_window() const {
  double sum = 0;
  for (double w : windows_) sum += w;
  return sum;
}

double FluidLink::Step() {
  const double bdp = params_.capacity_bytes_per_rtt;
  const double inflight = total_window();
  queue_ = std::max(0.0, queue_ + inflight - bdp);
  u_ = queue_ / bdp + std::min(1.0, inflight / bdp);

  for (size_t i = 0; i < windows_.size(); ++i) {
    if (u_ >= params_.eta || stages_[i] >= params_.max_stage) {
      windows_[i] = windows_[i] * params_.eta / std::max(u_, 1e-12) +
                    params_.wai_bytes;
      stages_[i] = 0;
    } else {
      windows_[i] += params_.wai_bytes;
      ++stages_[i];
    }
    windows_[i] = std::max(windows_[i], 1.0);
  }
  ++rounds_;
  return u_;
}

FluidLink::FlowId FluidLink::AddFlow(double window) {
  windows_.push_back(window);
  stages_.push_back(0);
  ids_.push_back(next_id_);
  return next_id_++;
}

size_t FluidLink::IndexOf(FlowId id) const {
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id) return i;
  }
  throw std::out_of_range("FluidLink: unknown flow handle " +
                          std::to_string(id));
}

bool FluidLink::HasFlow(FlowId id) const {
  for (FlowId live : ids_) {
    if (live == id) return true;
  }
  return false;
}

double FluidLink::WindowOf(FlowId id) const { return windows_[IndexOf(id)]; }

void FluidLink::RemoveFlow(FlowId id) {
  const size_t index = IndexOf(id);
  windows_.erase(windows_.begin() + static_cast<ptrdiff_t>(index));
  stages_.erase(stages_.begin() + static_cast<ptrdiff_t>(index));
  ids_.erase(ids_.begin() + static_cast<ptrdiff_t>(index));
}

double FluidLink::JainIndex() const {
  if (windows_.empty()) return 1.0;
  double sum = 0;
  double sq = 0;
  for (double w : windows_) {
    sum += w;
    sq += w * w;
  }
  return sum * sum / (static_cast<double>(windows_.size()) * sq);
}

}  // namespace hpcc::analytic
