// FluidRegion: multi-bottleneck per-RTT fluid engine for hybrid
// fluid/packet co-simulation.
//
// This generalizes the single-link FluidLink map (analytic/fluid.h) into a
// runtime engine over the real topology: each fluid flow is reduced to a
// window trajectory W(t) walked once per coarse RTT tick, coupled across
// every directed link on its (designed-topology, first-parent BFS) path.
// Per tick, per directed link of capacity B (bytes servable per tick T):
//
//   pkt    = real bytes the shared egress port transmitted since last tick
//   avail  = max(0, B*T - pkt)                   (capacity left for fluid)
//   queue' = max(0, queue + sum(W) - avail)      (fluid backlog)
//   U      = queue'/(B*T) + min(1, (sum(W) + pkt)/(B*T))
//
// and each flow applies the HPCC per-RTT update (Eqn 2 / Appendix A) against
// the *maximum* U along its path — the multi-bottleneck composition the
// paper's per-link max rule prescribes. Delivered bytes per tick are the
// window scaled by the most-constrained link's service share.
//
// Coupling back to the packet engine is one-way state injection: after each
// tick the fluid backlog and served-rate of every coupled link are pushed
// into the egress Port (Port::SetFluidState), where INT stamps report
// real+fluid queue occupancy and txBytes. Packet-level foreground flows
// therefore see correct congestion signals from fluid background load; fluid
// flows see packet load through the tx-byte deltas. Real queues, PFC and
// drops are NOT modeled for fluid traffic — see docs/ARCHITECTURE.md for the
// exact contract and its monitor implications.
//
// Determinism: ticks run through the normal event queue (one
// sim::Simulator::SchedulePeriodic series, EventClass::kOther tie-breaks),
// every per-tick port read settles fast-path trains before any state is
// written, and all iteration orders are admission/creation order — so hybrid
// runs are byte-identical across --jobs values and both transmit engines
// (pinned by tests/hybrid_test.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/simulator.h"
#include "topo/topology.h"

namespace hpcc::analytic {

struct FluidRegionParams {
  // Tick period (the fluid "RTT"); required > 0. The experiment defaults it
  // to the fabric's MaxBaseRtt — the same T configured into HPCC.
  sim::TimePs tick = 0;
  // HPCC per-RTT map constants (match cc defaults; see analytic/fluid.h).
  double eta = 0.95;
  int max_stage = 5;
  double wai_bytes = 80;
  // Clamp for the qLen injected into INT stamps: the switch buffer bound the
  // IntSanityMonitor enforces (0 = unclamped). The internal fluid backlog is
  // never clamped — only its packet-visible projection.
  int64_t qlen_cap_bytes = 0;
};

class FluidRegion {
 public:
  // Per-flow outcome record, shaped like runner::Experiment::WarmFlowRecord
  // so Collect can fold fluid flows into the TraceHash and flow counts.
  struct FlowRecord {
    uint64_t id = 0;
    uint32_t src = 0;
    uint32_t dst = 0;
    uint64_t size_bytes = 0;
    sim::TimePs start = 0;
    sim::TimePs finish = 0;
    bool done = false;
  };
  // Invoked inside the completing tick's event (deterministic order).
  using CompletionFn = std::function<void(const FlowRecord&, sim::TimePs now)>;

  FluidRegion(sim::Simulator* simulator, topo::Topology* topology,
              const FluidRegionParams& params);

  void set_completion_callback(CompletionFn fn) { completion_ = std::move(fn); }

  // Admits a fluid flow at the current simulation time. `id` comes from the
  // experiment's shared flow-id space (fluid and packet flows interleave in
  // one creation order). Lazily starts the tick series.
  void AddFlow(uint64_t id, uint32_t src, uint32_t dst, uint64_t size_bytes,
               sim::TimePs start);

  // Unfinished flows remain (the experiment's drain loop waits on this).
  bool active() const { return live_flows_ > 0; }
  // All admitted flows, admission order.
  const std::vector<FlowRecord>& flows() const { return records_; }

  uint64_t flows_admitted() const { return records_.size(); }
  uint64_t flows_completed() const { return completed_; }
  uint64_t ticks() const { return ticks_; }
  // Directed links carrying at least one fluid flow so far.
  size_t coupled_links() const { return dlinks_.size(); }
  uint64_t delivered_bytes() const { return delivered_bytes_; }
  int64_t peak_queue_bytes() const { return peak_queue_bytes_; }
  sim::TimePs tick_period() const { return params_.tick; }

 private:
  // One direction of a topology link shared with the packet engine.
  struct DirectedLink {
    net::Port* port = nullptr;
    double cap_per_tick = 0;  // B*T in bytes
    double queue = 0;         // fluid backlog in bytes
    uint64_t last_pkt_tx = 0;
    // Per-tick scratch.
    double sum_w = 0;
    double served = 0;
    double share = 1.0;  // fraction of offered fluid bytes served
    double u = 0;
  };
  struct Flow {
    size_t record = 0;  // index into records_
    double window = 0;
    double remaining = 0;
    int stage = 0;
    bool done = false;
    double window_cap = 0;  // line-rate bound: min path cap_per_tick
    std::vector<uint32_t> links;  // DirectedLink indices, src -> dst order
  };

  // One fluid round; returns false (ending the periodic series) once no
  // live flow remains and every backlog has drained.
  bool Tick();
  uint32_t InternDirectedLink(size_t link_index, bool a_to_b);

  sim::Simulator* simulator_;
  topo::Topology* topology_;
  FluidRegionParams params_;
  double tick_seconds_ = 0;

  std::map<uint64_t, uint32_t> dlink_index_;  // link*2 + dir -> dlinks_ index
  std::vector<DirectedLink> dlinks_;
  std::vector<Flow> flows_;
  std::vector<FlowRecord> records_;
  uint64_t live_flows_ = 0;
  uint64_t completed_ = 0;
  uint64_t ticks_ = 0;
  uint64_t delivered_bytes_ = 0;
  int64_t peak_queue_bytes_ = 0;
  bool ticking_ = false;
  CompletionFn completion_;
};

}  // namespace hpcc::analytic
