// DCTCP (Alizadeh et al., SIGCOMM 2010) — window-based ECN-fraction CC,
// the host-stack baseline (§5.1; slow start removed for fair comparison).
//
// Per RTT (one window of data), the sender computes the fraction F of acked
// bytes that carried an ECN echo and smooths alpha <- (1-g)·alpha + g·F.
// A window with any marks shrinks W by W·alpha/2; an unmarked window grows by
// one MSS. Flows start at line rate (BDP window) like the RDMA schemes.
#pragma once

#include "cc/cc.h"

namespace hpcc::cc {

struct DctcpParams {
  double g = 1.0 / 16.0;
};

class DctcpCc : public CongestionControl {
 public:
  DctcpCc(const CcContext& ctx, const DctcpParams& params);

  void OnAck(const AckInfo& ack) override;

  int64_t window_bytes() const override {
    return static_cast<int64_t>(window_);
  }
  int64_t rate_bps() const override;
  bool wants_ecn() const override { return true; }
  std::string name() const override { return "dctcp"; }

  double alpha() const { return alpha_; }

 private:
  CcContext ctx_;
  DctcpParams params_;
  int64_t winit_;

  double window_;
  double alpha_ = 0.0;
  uint64_t epoch_end_ = 0;      // snd_nxt at the start of the current epoch
  int64_t epoch_acked_ = 0;     // bytes acked this epoch
  int64_t epoch_marked_ = 0;    // of which carried ECN echo
  bool epoch_open_ = false;
};

}  // namespace hpcc::cc
