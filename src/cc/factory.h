// Builds a per-flow CongestionControl instance from a scheme name.
//
// Supported schemes (the full comparison set of §5):
//   "hpcc"          Algorithm 1 (INT, window + pacing)
//   "hpcc-rxrate"   ablation: rxRate instead of txRate (Fig. 6)
//   "hpcc-perack"   ablation: react to every ACK (Fig. 13)
//   "hpcc-perrtt"   ablation: react once per RTT (Fig. 13)
//   "hpcc-alpha"    Appendix A.3 multi-register alpha-fair variant
//   "dcqcn"         ECN/CNP rate-based
//   "dcqcn+win"     DCQCN with a sending window (§5.1)
//   "timely"        RTT-gradient rate-based
//   "timely+win"    TIMELY with a sending window
//   "dctcp"         window-based ECN fraction
//   "rcp"           explicit-feedback processor sharing (§3.4/§6 baseline)
//   "rcp+win"       RCP with a sending window
#pragma once

#include <string>
#include <vector>

#include "cc/cc.h"
#include "cc/dcqcn.h"
#include "cc/dctcp.h"
#include "cc/timely.h"
#include "core/hpcc_params.h"

namespace hpcc::cc {

struct CcConfig {
  std::string scheme = "hpcc";
  core::HpccParams hpcc;
  DcqcnParams dcqcn;
  TimelyParams timely;
  DctcpParams dctcp;
  double alpha_fair = 16.0;  // alpha for "hpcc-alpha"
};

// Throws std::invalid_argument on an unknown scheme name.
CcPtr MakeCc(const CcConfig& config, const CcContext& ctx);

// True if the scheme requires switches to ECN-mark (WRED must be on).
bool SchemeUsesEcn(const std::string& scheme);
// True if the scheme requires INT stamping.
bool SchemeUsesInt(const std::string& scheme);
// True if the scheme requires switch-side RCP rate computation.
bool SchemeUsesRcp(const std::string& scheme);

// Every scheme name MakeCc accepts, in documentation order. The scenario
// fuzzer and cross-scheme conformance tests draw from this list so a newly
// registered scheme is covered without touching them.
const std::vector<std::string>& AllSchemes();
// The five primary schemes of the §5 comparison (no ablations/variants).
const std::vector<std::string>& PrimarySchemes();

}  // namespace hpcc::cc
