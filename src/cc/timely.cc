#include "cc/timely.h"

#include <algorithm>
#include <limits>

namespace hpcc::cc {

TimelyCc::TimelyCc(const CcContext& ctx, const TimelyParams& params)
    : ctx_(ctx), params_(params) {
  add_step_ = static_cast<double>(params.add_step_bps_at_10g) *
              static_cast<double>(ctx.nic_bps) / 10e9;
  min_rate_ = params.min_rate_fraction * static_cast<double>(ctx.nic_bps);
  rate_ = static_cast<double>(ctx.nic_bps);  // line-rate start
}

void TimelyCc::OnAck(const AckInfo& ack) {
  if (ack.rtt <= 0) return;
  const double new_rtt = static_cast<double>(ack.rtt);

  if (prev_rtt_ == 0) {
    prev_rtt_ = ack.rtt;
    return;
  }
  const double diff = new_rtt - static_cast<double>(prev_rtt_);
  prev_rtt_ = ack.rtt;
  rtt_diff_ = (1.0 - params_.ewma_alpha) * rtt_diff_ +
              params_.ewma_alpha * diff;
  const double min_rtt = static_cast<double>(ctx_.base_rtt);
  const double gradient = rtt_diff_ / min_rtt;
  last_gradient_ = gradient;

  const double line = static_cast<double>(ctx_.nic_bps);
  if (ack.rtt < params_.t_low) {
    rate_ += add_step_;
    neg_rounds_ = 0;
  } else if (ack.rtt > params_.t_high) {
    rate_ *= 1.0 - params_.beta *
                       (1.0 - static_cast<double>(params_.t_high) / new_rtt);
    neg_rounds_ = 0;
  } else if (gradient <= 0) {
    ++neg_rounds_;
    // HAI mode: after `hai_threshold` consecutive non-increasing rounds,
    // probe N times faster.
    const int n = neg_rounds_ >= params_.hai_threshold ? 5 : 1;
    rate_ += n * add_step_;
  } else {
    rate_ *= 1.0 - params_.beta * std::min(gradient, 1.0);
    neg_rounds_ = 0;
  }
  rate_ = std::clamp(rate_, min_rate_, line);
}

int64_t TimelyCc::window_bytes() const {
  return std::numeric_limits<int64_t>::max() / 4;  // pure rate-based
}

}  // namespace hpcc::cc
