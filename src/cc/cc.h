// Congestion-control interface.
//
// One CongestionControl instance exists per flow at the sender. The host
// transport feeds it ACK/NACK/CNP events; the instance exposes the sending
// window (bytes of inflight data allowed) and the pacing rate. Window-based
// schemes (HPCC, DCTCP) derive rate R = W/T (§3.2); rate-based schemes
// (DCQCN, TIMELY) report an effectively unlimited window unless wrapped by
// WindowedCc (the paper's "+win" variants, §5.1).
//
// Ownership and reentrancy:
//  - The owning Flow/host transport holds the CcPtr; the CC instance never
//    outlives its flow. Schemes that self-schedule timers capture `this`,
//    so they MUST cancel those timers before destruction — OnFlowDone() is
//    the hook and the transport always calls it when the flow completes.
//  - Timer EventIds may be held after they fire or are cancelled: the
//    simulator's generation-tagged ids make a stale Cancel a no-op, so the
//    re-arm pattern (Cancel old, Schedule new, overwrite the id) is safe.
//  - All entry points run inside simulator callbacks on the simulation
//    thread; they may schedule/cancel freely (including at now()) but must
//    not call Simulator::Run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/int_header.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace hpcc::cc {

// Everything a CC algorithm may look at when an ACK/NACK arrives.
struct AckInfo {
  sim::TimePs now = 0;
  uint64_t ack_seq = 0;      // cumulative ack (next expected byte)
  uint64_t snd_nxt = 0;      // sender's next unsent byte, sampled at delivery
  int64_t newly_acked = 0;   // bytes newly acknowledged by this ACK
  bool ecn_echo = false;     // receiver echoed a CE mark
  sim::TimePs rtt = 0;       // measured for this ACK (now - data sent time)
  const core::IntStack* int_stack = nullptr;  // non-null when INT enabled
  // RCP: min fair rate stamped along the path (INT64_MAX if not stamped).
  int64_t rcp_rate_bps = 0;
};

// Static per-flow context the algorithm needs.
struct CcContext {
  int64_t nic_bps = 0;       // line rate of the sender NIC port
  sim::TimePs base_rtt = 0;  // the network's base RTT "T" (§3.2)
  int mtu_bytes = 1000;      // payload bytes per full packet
  // For schemes with self-scheduled timers (DCQCN's alpha decay and rate
  // increase); may be null for purely ACK-clocked schemes.
  sim::Simulator* simulator = nullptr;
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void OnAck(const AckInfo& ack) = 0;
  // Go-back-N NACK (loss or OOS indication).
  virtual void OnNack(const AckInfo& nack) { OnAck(nack); }
  // DCQCN congestion notification packet.
  virtual void OnCnp(sim::TimePs /*now*/) {}
  // Data bytes handed to the wire (DCQCN's byte-counter rate increase).
  virtual void OnSent(int64_t /*bytes*/, sim::TimePs /*now*/) {}
  // Flow finished: cancel any self-scheduled timers.
  virtual void OnFlowDone() {}

  // Bytes of unacknowledged data the sender may have outstanding.
  virtual int64_t window_bytes() const = 0;
  // Pacing rate in bits/second.
  virtual int64_t rate_bps() const = 0;

  // Whether data packets of this flow carry INT instructions.
  virtual bool wants_int() const { return false; }
  // Whether data packets are marked ECN-capable.
  virtual bool wants_ecn() const { return false; }

  virtual std::string name() const = 0;
};

using CcPtr = std::unique_ptr<CongestionControl>;

}  // namespace hpcc::cc
