#include "cc/factory.h"

#include <memory>
#include <stdexcept>

#include "cc/rcp.h"
#include "cc/windowed.h"
#include "core/hpcc.h"
#include "core/hpcc_alpha_fair.h"

namespace hpcc::cc {

CcPtr MakeCc(const CcConfig& config, const CcContext& ctx) {
  const std::string& s = config.scheme;
  if (s == "hpcc") {
    return std::make_unique<core::HpccCc>(ctx, config.hpcc);
  }
  if (s == "hpcc-rxrate") {
    core::HpccParams p = config.hpcc;
    p.rate_signal = core::RateSignal::kRxRate;
    return std::make_unique<core::HpccCc>(ctx, p);
  }
  if (s == "hpcc-perack") {
    core::HpccParams p = config.hpcc;
    p.reaction = core::ReactionMode::kPerAck;
    return std::make_unique<core::HpccCc>(ctx, p);
  }
  if (s == "hpcc-perrtt") {
    core::HpccParams p = config.hpcc;
    p.reaction = core::ReactionMode::kPerRtt;
    return std::make_unique<core::HpccCc>(ctx, p);
  }
  if (s == "hpcc-alpha") {
    return std::make_unique<core::HpccAlphaFairCc>(ctx, config.hpcc,
                                                   config.alpha_fair);
  }
  if (s == "dcqcn") {
    return std::make_unique<DcqcnCc>(ctx, config.dcqcn);
  }
  if (s == "dcqcn+win") {
    return std::make_unique<WindowedCc>(
        std::make_unique<DcqcnCc>(ctx, config.dcqcn), ctx);
  }
  if (s == "timely") {
    return std::make_unique<TimelyCc>(ctx, config.timely);
  }
  if (s == "timely+win") {
    return std::make_unique<WindowedCc>(
        std::make_unique<TimelyCc>(ctx, config.timely), ctx);
  }
  if (s == "dctcp") {
    return std::make_unique<DctcpCc>(ctx, config.dctcp);
  }
  if (s == "rcp") {
    return std::make_unique<RcpCc>(ctx);
  }
  if (s == "rcp+win") {
    return std::make_unique<WindowedCc>(std::make_unique<RcpCc>(ctx), ctx);
  }
  throw std::invalid_argument("unknown CC scheme: " + s);
}

bool SchemeUsesEcn(const std::string& scheme) {
  return scheme == "dcqcn" || scheme == "dcqcn+win" || scheme == "dctcp";
}

bool SchemeUsesInt(const std::string& scheme) {
  return scheme.rfind("hpcc", 0) == 0;
}

bool SchemeUsesRcp(const std::string& scheme) {
  return scheme.rfind("rcp", 0) == 0;
}

const std::vector<std::string>& AllSchemes() {
  static const std::vector<std::string> kAll = {
      "hpcc",   "hpcc-rxrate", "hpcc-perack", "hpcc-perrtt",
      "hpcc-alpha", "dcqcn",   "dcqcn+win",   "timely",
      "timely+win", "dctcp",   "rcp",         "rcp+win"};
  return kAll;
}

const std::vector<std::string>& PrimarySchemes() {
  static const std::vector<std::string> kPrimary = {"hpcc", "dcqcn", "timely",
                                                    "dctcp", "rcp"};
  return kPrimary;
}

}  // namespace hpcc::cc
