#include "cc/dcqcn.h"

#include <algorithm>
#include <limits>

namespace hpcc::cc {

DcqcnCc::DcqcnCc(const CcContext& ctx, const DcqcnParams& params)
    : ctx_(ctx), params_(params) {
  const double scale = static_cast<double>(ctx.nic_bps) / 25e9;
  rai_bps_ = static_cast<double>(params.rai_bps_at_25g) * scale;
  rhai_bps_ = static_cast<double>(params.rhai_bps_at_25g) * scale;
  min_rate_ = params.min_rate_fraction * static_cast<double>(ctx.nic_bps);
  // RDMA senders start at line rate (§2.2).
  rc_ = static_cast<double>(ctx.nic_bps);
  rt_ = rc_;
  ArmAlphaTimer();
  ArmRateTimer();
}

DcqcnCc::~DcqcnCc() { OnFlowDone(); }

void DcqcnCc::OnFlowDone() {
  done_ = true;
  if (ctx_.simulator != nullptr) {
    ctx_.simulator->Cancel(alpha_event_);
    ctx_.simulator->Cancel(rate_event_);
    alpha_event_ = sim::kInvalidEvent;
    rate_event_ = sim::kInvalidEvent;
  }
}

void DcqcnCc::ArmAlphaTimer() {
  if (ctx_.simulator == nullptr || done_) return;
  alpha_event_ = ctx_.simulator->ScheduleIn(
      params_.alpha_timer,
      [this]() { AlphaTimerExpired(ctx_.simulator->now()); });
}

void DcqcnCc::ArmRateTimer() {
  if (ctx_.simulator == nullptr || done_) return;
  rate_event_ = ctx_.simulator->ScheduleIn(
      params_.rate_inc_timer,
      [this]() { RateTimerExpired(ctx_.simulator->now()); });
}

void DcqcnCc::OnAck(const AckInfo& /*ack*/) {
  // DCQCN ignores plain ACKs; all feedback arrives as CNPs.
}

void DcqcnCc::OnCnp(sim::TimePs now) {
  if (last_decrease_ >= 0 && now - last_decrease_ < params_.min_dec_interval) {
    return;  // Td gate: at most one decrease per monitor period
  }
  last_decrease_ = now;
  alpha_ = (1.0 - params_.g) * alpha_ + params_.g;
  rt_ = rc_;
  rc_ = rc_ * (1.0 - alpha_ / 2.0);
  timer_stage_ = 0;
  byte_stage_ = 0;
  bytes_since_event_ = 0;
  Clamp();
  // Restart the increase timer so recovery counts from the decrease.
  if (ctx_.simulator != nullptr) {
    ctx_.simulator->Cancel(rate_event_);
    ArmRateTimer();
  }
}

void DcqcnCc::AlphaTimerExpired(sim::TimePs /*now*/) {
  alpha_ *= (1.0 - params_.g);
  ArmAlphaTimer();
}

void DcqcnCc::RateTimerExpired(sim::TimePs /*now*/) {
  ++timer_stage_;
  RaiseRate();
  ArmRateTimer();
}

void DcqcnCc::OnSent(int64_t bytes, sim::TimePs /*now*/) {
  bytes_since_event_ += bytes;
  while (bytes_since_event_ >= params_.byte_counter) {
    bytes_since_event_ -= params_.byte_counter;
    ++byte_stage_;
    RaiseRate();
  }
}

void DcqcnCc::RaiseRate() {
  const int f = params_.fast_recovery_stages;
  if (std::max(timer_stage_, byte_stage_) <= f) {
    // Fast recovery (the first F events after a decrease): halve the gap to
    // the target rate without raising the target.
    rc_ = (rt_ + rc_) / 2.0;
  } else if (std::min(timer_stage_, byte_stage_) > f) {
    rt_ += rhai_bps_;  // hyper increase
    rc_ = (rt_ + rc_) / 2.0;
  } else {
    rt_ += rai_bps_;   // additive increase
    rc_ = (rt_ + rc_) / 2.0;
  }
  Clamp();
}

void DcqcnCc::Clamp() {
  const double line = static_cast<double>(ctx_.nic_bps);
  rc_ = std::clamp(rc_, min_rate_, line);
  rt_ = std::clamp(rt_, min_rate_, line);
}

int64_t DcqcnCc::window_bytes() const {
  // Pure rate-based: effectively unlimited inflight (§3.2's critique).
  return std::numeric_limits<int64_t>::max() / 4;
}

int64_t DcqcnCc::rate_bps() const { return static_cast<int64_t>(rc_); }

}  // namespace hpcc::cc
