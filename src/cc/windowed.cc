#include "cc/windowed.h"

#include <algorithm>

#include "sim/time.h"

namespace hpcc::cc {

int64_t WindowedCc::window_bytes() const {
  // W = R·T: the window a rate R sustains over one base RTT (§3.2), never
  // wider than the inner scheme's own window.
  const int64_t bdp_window = static_cast<int64_t>(
      (static_cast<__int128>(inner_->rate_bps()) * ctx_.base_rtt) /
      (8 * sim::kPsPerSec));
  return std::min(std::max<int64_t>(bdp_window, ctx_.mtu_bytes),
                  inner_->window_bytes());
}

}  // namespace hpcc::cc
