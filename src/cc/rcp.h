// RCP (Rate Control Protocol, Dukkipati) — the explicit-feedback baseline
// the paper argues against in §3.4/§6.
//
// Switches compute a per-port fair rate
//     R <- R * [1 + (T/d) * (alpha*(C - y) - beta*q/d) / C]
// (y = measured input rate, q = instantaneous queue, d = RTT estimate) and
// stamp min(R) along the path into data packets; receivers echo it and
// senders simply transmit at the stamped rate. Note the paper's critique:
// the alpha/beta scaling knobs exist precisely because rate mismatch and
// queue are heuristically combined — HPCC's inflight-bytes signal needs no
// such weights (§3.4). Processor sharing also converges to fairness in a few
// RTTs, much faster than HPCC's additive term — but new flows cannot start
// at line rate usefully (they get the current R), and the switch must do
// per-port arithmetic that commodity ASICs lack (§6).
#pragma once

#include <algorithm>
#include <limits>

#include "cc/cc.h"

namespace hpcc::cc {

struct RcpParams {
  // Control gains from the RCP thesis (alpha = 0.4, beta = 0.226).
  double alpha = 0.4;
  double beta = 0.226;
};

class RcpCc : public CongestionControl {
 public:
  explicit RcpCc(const CcContext& ctx) : ctx_(ctx) {
    rate_ = static_cast<double>(ctx.nic_bps);
  }

  void OnAck(const AckInfo& ack) override {
    if (ack.rcp_rate_bps > 0 &&
        ack.rcp_rate_bps < std::numeric_limits<int64_t>::max()) {
      rate_ = std::min(static_cast<double>(ack.rcp_rate_bps),
                       static_cast<double>(ctx_.nic_bps));
    }
  }

  int64_t window_bytes() const override {
    return std::numeric_limits<int64_t>::max() / 4;  // pure rate-based
  }
  int64_t rate_bps() const override { return static_cast<int64_t>(rate_); }
  std::string name() const override { return "rcp"; }

 private:
  CcContext ctx_;
  double rate_;
};

}  // namespace hpcc::cc
