#include "cc/cc.h"

// Interface-only translation unit; kept so the target has a home for future
// shared helpers and so every header is compiled standalone at least once.
namespace hpcc::cc {}
