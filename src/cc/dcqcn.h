// DCQCN (Zhu et al., SIGCOMM 2015) — the production RDMA CC the paper
// compares against (§2.3, §5).
//
// Rate-based: the switch ECN-marks packets under WRED; the receiver converts
// marks into CNPs (at most one per 50 us per flow); the sender keeps a
// current rate Rc and target rate Rt:
//   on CNP:     alpha <- (1-g)·alpha + g;  Rt <- Rc;  Rc <- Rc·(1 - alpha/2)
//   alpha timer (no CNP for Ta): alpha <- (1-g)·alpha
//   rate increase, driven by a timer (period Ti) and a byte counter (B):
//     fast recovery  (max(iT,iB) < F):  Rc <- (Rt + Rc)/2
//     additive       (otherwise)     :  Rt <- Rt + Rai;  Rc <- (Rt+Rc)/2
//     hyper          (min(iT,iB) > F):  Rt <- Rt + Rhai; Rc <- (Rt+Rc)/2
// The two timers the paper sweeps in Fig. 2 map to: Ti = rate-increase timer,
// Td = minimum gap between consecutive rate decreases (the vendor's
// "rate reduce monitor period").
#pragma once

#include "cc/cc.h"
#include "sim/simulator.h"

namespace hpcc::cc {

struct DcqcnParams {
  double g = 1.0 / 256.0;
  sim::TimePs alpha_timer = sim::Us(55);   // alpha decay period Ta
  sim::TimePs rate_inc_timer = sim::Us(55);  // Ti (swept in Fig. 2)
  sim::TimePs min_dec_interval = sim::Us(4);  // Td (swept in Fig. 2)
  int64_t byte_counter = 10'000'000;       // B: bytes per byte-counter event
  int fast_recovery_stages = 5;            // F
  // Additive / hyper increase steps at 25 Gbps reference, scaled linearly.
  int64_t rai_bps_at_25g = 40'000'000;
  int64_t rhai_bps_at_25g = 200'000'000;
  double min_rate_fraction = 0.001;        // floor on Rc as a fraction of line
};

class DcqcnCc : public CongestionControl {
 public:
  DcqcnCc(const CcContext& ctx, const DcqcnParams& params);
  ~DcqcnCc() override;

  void OnAck(const AckInfo& ack) override;
  void OnCnp(sim::TimePs now) override;
  void OnSent(int64_t bytes, sim::TimePs now) override;
  void OnFlowDone() override;

  int64_t window_bytes() const override;
  int64_t rate_bps() const override;
  bool wants_ecn() const override { return true; }
  std::string name() const override { return "dcqcn"; }

  // Exposed for unit tests (and driven by the self-scheduled timers).
  void AlphaTimerExpired(sim::TimePs now);
  void RateTimerExpired(sim::TimePs now);

  double alpha() const { return alpha_; }
  double current_rate_bps() const { return rc_; }
  double target_rate_bps() const { return rt_; }
  int timer_stage() const { return timer_stage_; }
  int byte_stage() const { return byte_stage_; }

 private:
  void RaiseRate();
  void ArmAlphaTimer();
  void ArmRateTimer();
  void Clamp();

  CcContext ctx_;
  DcqcnParams params_;
  double rai_bps_;
  double rhai_bps_;
  double min_rate_;

  double rc_;         // current rate
  double rt_;         // target rate
  double alpha_ = 1.0;
  int timer_stage_ = 0;
  int byte_stage_ = 0;
  int64_t bytes_since_event_ = 0;
  sim::TimePs last_decrease_ = -1;
  bool done_ = false;

  sim::EventId alpha_event_ = sim::kInvalidEvent;
  sim::EventId rate_event_ = sim::kInvalidEvent;
};

}  // namespace hpcc::cc
