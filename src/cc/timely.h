// TIMELY (Mittal et al., SIGCOMM 2015) — RTT-gradient congestion control,
// the second RDMA baseline (§5.1).
//
// Per completion (here: per ACK), the sender computes the normalized RTT
// gradient and adjusts its rate:
//   rtt < Tlow            : additive increase
//   rtt > Thigh           : multiplicative decrease  R·(1 − β·(1 − Thigh/rtt))
//   gradient <= 0         : additive increase (xN after 5 good rounds — HAI)
//   gradient > 0          : R·(1 − β·gradient)
// Constants follow the TIMELY paper, with the additive step scaled to line
// rate (10 Mbps at 10 Gbps reference).
#pragma once

#include "cc/cc.h"

namespace hpcc::cc {

struct TimelyParams {
  sim::TimePs t_low = sim::Us(50);
  sim::TimePs t_high = sim::Us(500);
  double ewma_alpha = 0.125;  // weight of the newest RTT difference
  double beta = 0.8;
  int64_t add_step_bps_at_10g = 10'000'000;
  int hai_threshold = 5;
  double min_rate_fraction = 0.001;
};

class TimelyCc : public CongestionControl {
 public:
  TimelyCc(const CcContext& ctx, const TimelyParams& params);

  void OnAck(const AckInfo& ack) override;

  int64_t window_bytes() const override;
  int64_t rate_bps() const override { return static_cast<int64_t>(rate_); }
  std::string name() const override { return "timely"; }

  double normalized_gradient() const { return last_gradient_; }
  int neg_gradient_rounds() const { return neg_rounds_; }

 private:
  CcContext ctx_;
  TimelyParams params_;
  double add_step_;
  double min_rate_;

  double rate_;
  sim::TimePs prev_rtt_ = 0;
  double rtt_diff_ = 0;      // EWMA of consecutive RTT differences
  double last_gradient_ = 0;
  int neg_rounds_ = 0;
};

}  // namespace hpcc::cc
