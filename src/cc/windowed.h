// The paper's "+win" variants (§5.1): wrap a rate-based scheme with a sending
// window W = R·T, so inflight bytes are limited even when feedback is
// delayed. Fig. 11b shows this alone almost eliminates PFC pauses.
#pragma once

#include <utility>

#include "cc/cc.h"

namespace hpcc::cc {

class WindowedCc : public CongestionControl {
 public:
  WindowedCc(CcPtr inner, const CcContext& ctx)
      : inner_(std::move(inner)), ctx_(ctx) {}

  void OnAck(const AckInfo& ack) override { inner_->OnAck(ack); }
  void OnNack(const AckInfo& nack) override { inner_->OnNack(nack); }
  void OnCnp(sim::TimePs now) override { inner_->OnCnp(now); }
  void OnSent(int64_t bytes, sim::TimePs now) override {
    inner_->OnSent(bytes, now);
  }
  void OnFlowDone() override { inner_->OnFlowDone(); }

  int64_t window_bytes() const override;
  int64_t rate_bps() const override { return inner_->rate_bps(); }
  bool wants_int() const override { return inner_->wants_int(); }
  bool wants_ecn() const override { return inner_->wants_ecn(); }
  std::string name() const override { return inner_->name() + "+win"; }

  const CongestionControl& inner() const { return *inner_; }

 private:
  CcPtr inner_;
  CcContext ctx_;
};

}  // namespace hpcc::cc
