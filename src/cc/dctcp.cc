#include "cc/dctcp.h"

#include <algorithm>

#include "sim/time.h"

namespace hpcc::cc {

DctcpCc::DctcpCc(const CcContext& ctx, const DctcpParams& params)
    : ctx_(ctx), params_(params) {
  winit_ = static_cast<int64_t>(
      (static_cast<__int128>(ctx.nic_bps) * ctx.base_rtt) /
      (8 * sim::kPsPerSec));
  window_ = static_cast<double>(winit_);
}

void DctcpCc::OnAck(const AckInfo& ack) {
  if (!epoch_open_) {
    epoch_open_ = true;
    epoch_end_ = ack.snd_nxt;
  }
  epoch_acked_ += ack.newly_acked;
  if (ack.ecn_echo) epoch_marked_ += ack.newly_acked;

  if (ack.ack_seq >= epoch_end_) {
    // One window worth of data has been acknowledged: close the epoch.
    const double f =
        epoch_acked_ > 0
            ? static_cast<double>(epoch_marked_) /
                  static_cast<double>(epoch_acked_)
            : 0.0;
    alpha_ = (1.0 - params_.g) * alpha_ + params_.g * f;
    if (epoch_marked_ > 0) {
      window_ *= 1.0 - alpha_ / 2.0;
    } else {
      window_ += ctx_.mtu_bytes;  // additive growth, no slow start (§5.1)
    }
    window_ = std::clamp(window_, static_cast<double>(ctx_.mtu_bytes),
                         static_cast<double>(winit_));
    epoch_end_ = ack.snd_nxt;
    epoch_acked_ = 0;
    epoch_marked_ = 0;
  }
}

int64_t DctcpCc::rate_bps() const {
  // Window-based; pace at W/T like the other windowed schemes.
  const double bps = window_ * 8.0 / sim::ToSec(ctx_.base_rtt);
  return static_cast<int64_t>(
      std::min(bps, static_cast<double>(ctx_.nic_bps)));
}

}  // namespace hpcc::cc
