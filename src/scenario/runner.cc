#include "scenario/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iterator>
#include <thread>

#include "check/monitors.h"
#include "scenario/json.h"
#include "stats/csv_writer.h"

namespace hpcc::scenario {
namespace {

// Single source of truth for the CSV shape: CsvHeader emits these names and
// CsvRow emits exactly one cell per entry ("error" last).
// `packets_forwarded` (not events_executed) is the throughput-ish column:
// the event count depends on which transmit engine ran, while the CSV must
// be byte-identical across --fastpath=on/off.
constexpr const char* kMetricColumns[] = {
    "flows_created",  "flows_completed",  "slowdown_p50",  "slowdown_p95",
    "slowdown_p99",   "short_fct_p95_us", "queue_p50_kb",  "queue_p99_kb",
    "queue_max_kb",   "pfc_pause_pct",    "pfc_events",    "dropped_packets",
    "sim_time_ms",    "packets_forwarded", "error"};
constexpr size_t kNumMetricColumns = std::size(kMetricColumns);

}  // namespace

ScenarioRunner::ScenarioRunner(const ScenarioRunnerOptions& options)
    : options_(options) {}

SweepRunResult ScenarioRunner::RunOne(const ScenarioRun& run, bool check,
                                      int fastpath_override) {
  SweepRunResult out;
  out.label = run.label;
  out.params = run.params;
  const auto t0 = std::chrono::steady_clock::now();
  // Declared before the Experiment: nodes keep a pointer to the registry, so
  // it must be destroyed after them.
  check::MonitorRegistry registry;
  try {
    runner::ExperimentConfig cfg = MakeExperimentConfig(run.scenario);
    if (fastpath_override >= 0) cfg.fast_path = fastpath_override != 0;
    runner::Experiment e(cfg);
    if (check) {
      check::StandardMonitorOptions mo;
      mo.topology_mutates = MutatesTopology(run.scenario);
      check::InstallStandardMonitors(registry, e, mo);
    }
    InstalledEvents events = InstallEvents(e, run.scenario);
    out.result = e.Run();
    if (check) {
      registry.Finish(e.simulator().now());
      out.violations = registry.violations();
      out.violation_count = registry.violation_count();
    }
  } catch (const std::exception& ex) {
    out.error = ex.what();
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

uint64_t ScenarioRunner::CombinedTraceHash(
    const std::vector<SweepRunResult>& results) {
  stats::TraceHash combined;
  for (size_t i = 0; i < results.size(); ++i) {
    combined.Combine(results[i].result.trace_hash, i);
  }
  return combined.digest();
}

std::vector<SweepRunResult> ScenarioRunner::RunAll(const Scenario& scenario) {
  return RunAll(ExpandSweep(scenario));
}

std::vector<SweepRunResult> ScenarioRunner::RunAll(
    const std::vector<ScenarioRun>& runs) {
  std::vector<SweepRunResult> results(runs.size());

  int jobs = options_.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  jobs = std::min<int>(jobs, static_cast<int>(runs.size()));
  jobs = std::max(jobs, 1);

  std::atomic<size_t> next{0};
  const bool verbose = options_.verbose;
  auto worker = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= runs.size()) return;
      results[i] = RunOne(runs[i], options_.check, options_.fastpath_override);
      if (verbose) {
        const SweepRunResult& r = results[i];
        std::fprintf(stderr, "[%zu/%zu] %s: %s (%.2fs)\n", i + 1, runs.size(),
                     r.label.c_str(),
                     !r.error.empty() ? r.error.c_str()
                                      : r.result.Summary().c_str(),
                     r.wall_seconds);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(jobs - 1));
  for (int t = 1; t < jobs; ++t) pool.emplace_back(worker);
  worker();  // the caller thread is worker 0
  for (std::thread& t : pool) t.join();
  return results;
}

std::vector<std::string> ScenarioRunner::CsvHeader(
    const std::vector<SweepRunResult>& results) {
  std::vector<std::string> header{"run"};
  if (!results.empty()) {
    // All points of one sweep share the same axis keys.
    for (const auto& [key, value] : results.front().params) {
      header.push_back(key);
    }
  }
  header.insert(header.end(), std::begin(kMetricColumns),
                std::end(kMetricColumns));
  return header;
}

std::vector<std::string> ScenarioRunner::CsvRow(const SweepRunResult& r) {
  std::vector<std::string> row{r.label};
  for (const auto& [key, value] : r.params) row.push_back(value);
  if (!r.error.empty()) {
    // Keep the row rectangular: blanks for the numeric metrics, error last.
    // (A run with invariant violations but no exception still has metrics;
    // violations are reported on the console, not in the CSV.)
    for (size_t i = 0; i + 1 < kNumMetricColumns; ++i) row.emplace_back();
    row.push_back(r.error);
    return row;
  }
  const runner::ExperimentResult& res = r.result;
  const stats::PercentileTracker& slow = res.fct->overall();
  row.push_back(FormatNumber(static_cast<double>(res.flows_created)));
  row.push_back(FormatNumber(static_cast<double>(res.flows_completed)));
  row.push_back(FormatNumber(slow.Percentile(50)));
  row.push_back(FormatNumber(slow.Percentile(95)));
  row.push_back(FormatNumber(slow.Percentile(99)));
  row.push_back(FormatNumber(res.short_fct_us.Percentile(95)));
  row.push_back(FormatNumber(res.queue_dist.Percentile(50) / 1e3));
  row.push_back(FormatNumber(res.queue_dist.Percentile(99) / 1e3));
  row.push_back(FormatNumber(static_cast<double>(res.max_queue_bytes) / 1e3));
  row.push_back(FormatNumber(res.pause_time_fraction * 100));
  row.push_back(FormatNumber(static_cast<double>(res.pause_events)));
  row.push_back(FormatNumber(static_cast<double>(res.dropped_packets)));
  row.push_back(FormatNumber(sim::ToMs(res.sim_time)));
  row.push_back(FormatNumber(static_cast<double>(res.packets_forwarded)));
  row.emplace_back();  // error
  return row;
}

int ScenarioRunner::ReportAndWriteCsv(
    const std::vector<SweepRunResult>& results, const std::string& csv_path) {
  int failures = 0;
  for (const SweepRunResult& r : results) {
    if (r.ok()) {
      std::printf("%-48s %s\n", r.label.c_str(), r.result.Summary().c_str());
    } else if (!r.error.empty()) {
      ++failures;
      std::printf("%-48s ERROR: %s\n", r.label.c_str(), r.error.c_str());
    } else {
      ++failures;
      std::printf("%-48s %zu INVARIANT VIOLATION(S)\n", r.label.c_str(),
                  r.violation_count);
      for (const check::Violation& v : r.violations) {
        std::printf("    %s\n", v.Format().c_str());
      }
    }
  }
  if (!WriteCsv(csv_path, results)) {
    std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)\n", csv_path.c_str(), results.size());
  return failures == 0 ? 0 : 1;
}

bool ScenarioRunner::WriteCsv(const std::string& path,
                              const std::vector<SweepRunResult>& results) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(results.size());
  for (const SweepRunResult& r : results) rows.push_back(CsvRow(r));
  return stats::WriteTableCsv(path, CsvHeader(results), rows);
}

int RunScenarioFile(const std::string& path,
                    const ScenarioRunnerOptions& options,
                    const std::string& out_override) {
  try {
    const Scenario sc = LoadScenarioFile(path);
    const std::vector<ScenarioRun> runs = ExpandSweep(sc);
    std::printf("scenario %s: %zu run(s), %zu event(s)\n", sc.name.c_str(),
                runs.size(), sc.events.size());
    const std::vector<SweepRunResult> results =
        ScenarioRunner(options).RunAll(runs);
    const std::string out =
        out_override.empty() ? sc.name + ".csv" : out_override;
    return ScenarioRunner::ReportAndWriteCsv(results, out);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
}

}  // namespace hpcc::scenario
