#include "scenario/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <iterator>
#include <memory>
#include <string_view>
#include <thread>

#include "check/monitors.h"
#include "obs/manifest.h"
#include "obs/telemetry.h"
#include "obs/trace_export.h"
#include "scenario/json.h"
#include "stats/csv_writer.h"

namespace hpcc::scenario {
namespace {

// Single source of truth for the CSV shape: CsvHeader emits these names and
// CsvRow emits exactly one cell per entry ("error" last).
// `packets_forwarded` (not events_executed) is the throughput-ish column:
// the event count depends on which transmit engine ran, while the CSV must
// be byte-identical across --fastpath=on/off.
constexpr const char* kMetricColumns[] = {
    "flows_created", "flows_completed",  "flows_failed",
    "slowdown_p50",  "slowdown_p95",     "slowdown_p99",
    "short_fct_p95_us", "queue_p50_kb",  "queue_p99_kb",
    "queue_max_kb",  "pfc_pause_pct",    "pfc_events",
    "dropped_packets", "retx_timeouts",  "sim_time_ms",
    "packets_forwarded", "status",       "error"};

// Extra columns spliced in after "dropped_packets" when a sweep saw drops.
// Order matches check::DropReason.
constexpr const char* kDropReasonColumns[] = {
    "drops_no_route", "drops_buffer_full", "drops_egress_threshold",
    "drops_corrupt"};
static_assert(std::size(kDropReasonColumns) == check::kNumDropReasons);

bool IsDropReasonColumn(const std::string& name) {
  for (const char* col : kDropReasonColumns) {
    if (name == col) return true;
  }
  return false;
}

// The full column superset MetricCells formats: the metric columns with the
// per-reason drop columns spliced in. CsvHeader/CsvRow select from it; the
// manifest sweep journal records all of it.
std::vector<std::string> AllMetricColumns() {
  std::vector<std::string> cols;
  for (const char* col : kMetricColumns) {
    cols.emplace_back(col);
    if (std::string_view(col) == "dropped_packets") {
      cols.insert(cols.end(), std::begin(kDropReasonColumns),
                  std::end(kDropReasonColumns));
    }
  }
  return cols;
}

// Whole-file read for the resume journal probe; false on any I/O error.
bool ReadTextFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

// "x.json" + index 3 -> "x.run3.json" (plain append when no .json suffix):
// per-run artifact names for sweeps, same for any --jobs interleaving.
std::string WithRunIndex(const std::string& path, size_t index) {
  const std::string suffix = ".json";
  const std::string tag = ".run" + std::to_string(index);
  if (path.size() > suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return path.substr(0, path.size() - suffix.size()) + tag + suffix;
  }
  return path + tag;
}

}  // namespace

ScenarioRunner::ScenarioRunner(const ScenarioRunnerOptions& options)
    : options_(options) {
  // A resumable sweep must journal itself: every completed point writes the
  // manifest the next --resume invocation validates against.
  if (options_.resume) options_.manifest = true;
}

SweepRunResult ScenarioRunner::RunOne(const ScenarioRun& run, bool check,
                                      int fastpath_override) {
  RunOneOptions opts;
  opts.check = check;
  opts.fastpath_override = fastpath_override;
  return RunOne(run, opts);
}

SweepRunResult ScenarioRunner::RunOne(const ScenarioRun& run,
                                      const RunOneOptions& opts) {
  SweepRunResult out;
  out.label = run.label;
  out.params = run.params;
  out.attempt = opts.attempt;
  // CLI/per-point override wins over the scenario's own deadline_s.
  const double deadline_s =
      opts.deadline_s > 0 ? opts.deadline_s : run.scenario.deadline_s;
  const auto t0 = std::chrono::steady_clock::now();
  // Declared before the Experiment: nodes keep pointers into the registries,
  // so they must be destroyed after it. One registry per execution lane
  // (exactly one when shards == 1); a deque keeps them address-stable while
  // lanes are added.
  std::deque<check::MonitorRegistry> registries;
  // Builder-side promises, outside the try: a builder that dies before
  // publishing must not strand the members blocked on its shared future —
  // `abandon` resolves anything still pending to null (= run cold).
  std::promise<std::shared_ptr<const topo::FabricSnapshot>> fabric_promise;
  std::promise<std::shared_ptr<const WarmCheckpoint>> warm_promise;
  bool fabric_pending = false;
  bool warm_pending = false;
  const auto abandon = [&]() noexcept {
    if (fabric_pending) {
      fabric_promise.set_value(nullptr);
      fabric_pending = false;
    }
    if (warm_pending) {
      warm_promise.set_value(nullptr);
      warm_pending = false;
    }
  };
  try {
    const obs::TelemetryConfig tcfg =
        opts.telemetry ? *opts.telemetry : run.scenario.telemetry;
    const bool telemetry_on = tcfg.enabled();
    runner::ExperimentConfig cfg = MakeExperimentConfig(run.scenario);
    if (opts.fastpath_override >= 0) {
      cfg.fast_path = opts.fastpath_override != 0;
    }
    if (opts.shards_override >= 1) cfg.shards = opts.shards_override;
    // The flight-recorder samplers read live state from one simulator at
    // fixed sim times; trace export therefore always runs single-lane. The
    // deterministic outputs are pinned shard-equal, so this costs nothing
    // but wall clock.
    if (tcfg.trace) cfg.shards = 1;
    // The fluid engine couples shared-port state on one event arena; a
    // shards override must not push a hybrid run into lanes.
    if (cfg.hybrid.enabled) cfg.shards = 1;

    // Fabric snapshot sharing: the first run to reach this topology key
    // builds the fabric cold and publishes its routing state; everyone else
    // adopts the snapshot and skips the route BFS entirely.
    uint64_t fabric_sig = 0;
    std::shared_future<std::shared_ptr<const topo::FabricSnapshot>>
        fabric_future;
    if (opts.fabric_cache != nullptr) {
      fabric_sig = FabricSignature(run.scenario);
      std::lock_guard<std::mutex> lock(opts.fabric_cache->mu);
      auto [it, inserted] = opts.fabric_cache->entries.try_emplace(fabric_sig);
      if (inserted) {
        it->second = fabric_promise.get_future().share();
        fabric_pending = true;
      } else {
        fabric_future = it->second;
      }
    }
    if (fabric_future.valid()) {
      cfg.fabric_snapshot = fabric_future.get();  // null = build cold
    }

    // Warm checkpoint eligibility. Everything here falls back to a cold run
    // without changing a single output byte: checking runs hold monitor
    // state a restore cannot reproduce, trace/profile modes record
    // mid-run engine state, sharded lanes checkpoint nothing, and a link
    // event before the checkpoint instant mutates routes the snapshotted
    // fabric build must not see.
    const sim::TimePs warm_until = run.scenario.warm_until;
    // Fault scripts always run cold (the checkpoint models neither the
    // degree-dependent install draws of expanded switch/NIC events nor the
    // corruption RNG streams), and a wall deadline can fire mid-checkpoint.
    // Hybrid runs are always cold too: the fluid engine's continuous link
    // and window state has no warm capture surface.
    bool warm_on = opts.warm && opts.warm_cache != nullptr && warm_until > 0 &&
                   warm_until < cfg.duration && cfg.shards == 1 &&
                   !opts.check && opts.event_budget == 0 && !tcfg.trace &&
                   !tcfg.profile && deadline_s == 0 &&
                   !HasFaultEvents(run.scenario) && !cfg.hybrid.enabled;
    for (const ScenarioEvent& ev : run.scenario.events) {
      if ((ev.kind == ScenarioEvent::Kind::kLinkDown ||
           ev.kind == ScenarioEvent::Kind::kLinkUp) &&
          ev.at < warm_until) {
        warm_on = false;
      }
    }
    std::shared_future<std::shared_ptr<const WarmCheckpoint>> warm_future;
    if (warm_on) {
      const uint64_t fp = WarmFingerprint(run.scenario);
      std::lock_guard<std::mutex> lock(opts.warm_cache->mu);
      auto [it, inserted] = opts.warm_cache->entries.try_emplace(fp);
      if (inserted) {
        it->second = warm_promise.get_future().share();
        warm_pending = true;
      } else {
        warm_future = it->second;
      }
    }

    obs::PhaseTimers phases;
    std::unique_ptr<runner::Experiment> e;
    {
      obs::PhaseTimer build(&phases.build_s);
      e = std::make_unique<runner::Experiment>(cfg);
    }
    if (fabric_pending) {
      // Publish right after the build, before any link event can mutate the
      // routes the snapshot aliases.
      fabric_promise.set_value(e->topology().ExportSnapshot(fabric_sig));
      fabric_pending = false;
    }
    if (opts.event_budget > 0) {
      e->set_event_budget(opts.event_budget);
    }
    if (deadline_s > 0) {
      e->set_wall_deadline(
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(deadline_s)));
    }
    const int lanes = e->shards();
    if (opts.check || telemetry_on) {
      for (int lane = 0; lane < lanes; ++lane) registries.emplace_back();
    }
    if (opts.check) {
      check::StandardMonitorOptions mo;
      mo.topology_mutates = MutatesTopology(run.scenario);
      for (int lane = 0; lane < lanes; ++lane) {
        check::InstallStandardMonitors(registries[static_cast<size_t>(lane)],
                                       *e, mo, lane);
      }
    } else if (telemetry_on) {
      // InstallStandardMonitors does this pair itself; a telemetry-only run
      // still needs the hook fan-out wired up — each lane's registry on that
      // lane's clock and nodes.
      for (int lane = 0; lane < lanes; ++lane) {
        check::MonitorRegistry& reg = registries[static_cast<size_t>(lane)];
        reg.set_clock(&e->lane_simulator(lane));
        reg.AttachTo(e->topology(), e->lane_nodes(lane));
      }
    }
    std::unique_ptr<obs::TelemetrySession> session;
    if (telemetry_on) {
      std::vector<check::MonitorRegistry*> regs;
      regs.reserve(registries.size());
      for (check::MonitorRegistry& r : registries) regs.push_back(&r);
      session = std::make_unique<obs::TelemetrySession>(tcfg, regs, e.get());
      session->Start();
    }
    InstalledEvents events = InstallEvents(*e, run.scenario);
    {
      obs::PhaseTimer run_timer(&phases.run_s);
      if (warm_pending) {
        // Checkpoint builder: simulate [0, T), capture at the quiescent
        // instant, publish (unblocking every member while this run keeps
        // going), then finish normally.
        e->StartWorkload();
        e->simulator().Run(warm_until, 0);
        // Caller-owned pendings the quiescence accounting must explain: the
        // link script (all at >= T — checked above) and the installed
        // generators' own next schedules.
        size_t external = 0;
        for (const ScenarioEvent& ev : run.scenario.events) {
          if (ev.kind == ScenarioEvent::Kind::kLinkDown ||
              ev.kind == ScenarioEvent::Kind::kLinkUp) {
            ++external;
          }
        }
        for (const auto& g : events.phases) {
          if (g->warm_pending()) ++external;
        }
        for (const auto& g : events.bursts) {
          if (g->warm_pending()) ++external;
        }
        if (e->QuiescentForWarmCheckpoint(external)) {
          auto cp = std::make_shared<WarmCheckpoint>();
          std::unique_ptr<runner::Experiment::WarmState> st =
              e->CaptureWarmState();
          cp->state = std::move(*st);
          for (const auto& g : events.phases) {
            cp->phases.push_back(
                g->first_activity() < warm_until
                    ? std::optional<workload::GenWarmState>(g->CaptureWarm())
                    : std::nullopt);
          }
          for (const auto& g : events.bursts) {
            cp->bursts.push_back(
                g->first_activity() < warm_until
                    ? std::optional<workload::GenWarmState>(g->CaptureWarm())
                    : std::nullopt);
          }
          for (const auto& c : events.background_flows) {
            cp->background_flows.push_back(*c);
          }
          if (session != nullptr) cp->counters = session->counters();
          warm_promise.set_value(std::move(cp));
          out.warm_built = true;
        } else {
          warm_promise.set_value(nullptr);
        }
        warm_pending = false;
        out.result = e->FinishRun();
      } else if (warm_future.valid()) {
        // Member: adopt the builder's checkpoint if it materialized. Any
        // null/mismatch path degenerates to the exact cold execution.
        std::shared_ptr<const WarmCheckpoint> cp = warm_future.get();
        if (cp != nullptr && cp->phases.size() == events.phases.size() &&
            cp->bursts.size() == events.bursts.size() &&
            cp->background_flows.size() == events.background_flows.size()) {
          // Same start order as a cold run, so this experiment draws the
          // same schedule seqs the builder drew before its checkpoint.
          e->StartWorkload();
          if (e->ValidateWarmState(cp->state)) {
            // Installed generators before RestoreWarmState: their pre-T
            // self-schedules must be cancelled and replaced while the clock
            // is still pre-T (RestoreWarmState jumps it last).
            for (size_t i = 0; i < events.phases.size(); ++i) {
              if (cp->phases[i].has_value()) {
                events.phases[i]->RestoreWarm(*cp->phases[i]);
              }
            }
            for (size_t i = 0; i < events.bursts.size(); ++i) {
              if (cp->bursts[i].has_value()) {
                events.bursts[i]->RestoreWarm(*cp->bursts[i]);
              }
            }
            for (size_t i = 0; i < events.background_flows.size(); ++i) {
              *events.background_flows[i] = cp->background_flows[i];
            }
            if (session != nullptr) session->RestoreCounters(cp->counters);
            out.warm_restored = e->RestoreWarmState(cp->state);
          }
          // Restored: continues from T. Not restored: nothing was mutated,
          // and StartWorkload + FinishRun is exactly Run().
          out.result = e->FinishRun();
        } else {
          out.result = e->Run();
        }
      } else {
        out.result = e->Run();
      }
    }
    if (e->deadline_exceeded()) {
      // The partial metrics stay in out.result for callers that want them,
      // but the point is reported failed: its CSV row blanks the metrics and
      // carries this error, and --resume re-simulates it.
      out.error = "deadline exceeded (" + FormatNumber(deadline_s) +
                  "s wall, " + FormatNumber(sim::ToMs(e->simulator().now())) +
                  "ms simulated)";
    }
    if (opts.check || telemetry_on) {
      for (int lane = 0; lane < lanes; ++lane) {
        registries[static_cast<size_t>(lane)].Finish(
            e->lane_simulator(lane).now());
      }
    }
    if (opts.check && !e->budget_exhausted() && !e->deadline_exceeded()) {
      // No-progress audit: only meaningful when the run actually finished —
      // a budget or deadline stop strands in-flight flows legitimately.
      check::CheckFlowProgress(registries.front(), *e, e->simulator().now());
    }
    if (opts.check) {
      // Lane order, so the report is stable; counts sum (each lane caps its
      // own log like the single registry did).
      for (const check::MonitorRegistry& r : registries) {
        out.violations.insert(out.violations.end(), r.violations().begin(),
                              r.violations().end());
        out.violation_count += r.violation_count();
      }
    }
    if (telemetry_on) {
      obs::PhaseTimer agg(&phases.aggregate_s);
      phases.routes_s = e->topology().route_compute_seconds();
      if (tcfg.manifest && !opts.manifest_path.empty()) {
        obs::ManifestInputs mi;
        mi.label = run.label;
        mi.params = run.params;
        mi.scenario = &run.scenario;
        mi.telemetry = &tcfg;
        mi.experiment = e.get();
        mi.result = &out.result;
        mi.session = session.get();
        mi.checked = opts.check;
        mi.violations = &out.violations;
        mi.violation_count = out.violation_count;
        mi.phases = &phases;
        // Sweep journal: grid coordinates, attempt, final status and the
        // formatted CSV cells — everything --resume needs to replay this
        // point without re-simulating it.
        mi.sweep_index = opts.sweep_index;
        mi.sweep_count = opts.sweep_count;
        mi.attempt = opts.attempt;
        mi.status = StatusOf(out);
        const std::vector<std::pair<std::string, std::string>> cells =
            MetricCells(out);
        mi.csv_cells = &cells;
        const std::string text = obs::BuildManifest(mi).Dump(2) + "\n";
        if (obs::WriteTextFile(opts.manifest_path, text)) {
          out.manifest_path = opts.manifest_path;
        } else {
          out.error = "cannot write " + opts.manifest_path;
        }
      }
      if (tcfg.trace && !opts.trace_path.empty()) {
        obs::TraceExportInputs ti;
        ti.label = run.label;
        ti.experiment = e.get();
        ti.result = &out.result;
        ti.events = &run.scenario.events;
        ti.violations = &out.violations;
        ti.session = session.get();
        if (obs::WriteTextFile(opts.trace_path, obs::BuildTraceJson(ti))) {
          out.trace_path = opts.trace_path;
        } else {
          out.error = "cannot write " + opts.trace_path;
        }
      }
    }
    out.phases = phases;
  } catch (const std::exception& ex) {
    out.error = ex.what();
  }
  abandon();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

uint64_t ScenarioRunner::CombinedTraceHash(
    const std::vector<SweepRunResult>& results) {
  stats::TraceHash combined;
  for (size_t i = 0; i < results.size(); ++i) {
    combined.Combine(results[i].result.trace_hash, i);
  }
  return combined.digest();
}

std::vector<SweepRunResult> ScenarioRunner::RunAll(const Scenario& scenario) {
  return RunAll(ExpandSweep(scenario));
}

std::vector<SweepRunResult> ScenarioRunner::RunAll(
    const std::vector<ScenarioRun>& runs) {
  std::vector<SweepRunResult> results(runs.size());

  int jobs = options_.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  jobs = std::min<int>(jobs, static_cast<int>(runs.size()));
  jobs = std::max(jobs, 1);

  std::atomic<size_t> next{0};
  const bool verbose = options_.verbose;
  std::unique_ptr<obs::ProgressMeter> progress;
  if (options_.progress) {
    progress = std::make_unique<obs::ProgressMeter>(runs.size());
  }
  // One cache pair per sweep execution: grid points with equal topology
  // (resp. warm-fingerprint) keys build the fabric (resp. warm checkpoint)
  // once and share it. --warm=off drops both, forcing every point cold.
  std::shared_ptr<FabricCache> fabric_cache;
  std::shared_ptr<WarmCache> warm_cache;
  if (options_.warm) {
    fabric_cache = std::make_shared<FabricCache>();
    warm_cache = std::make_shared<WarmCache>();
  }
  auto worker = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= runs.size()) return;
      RunOneOptions o = PlanRun(runs[i], i, runs.size());
      o.fabric_cache = fabric_cache;
      o.warm_cache = warm_cache;
      bool resumed = false;
      if (options_.resume) {
        if (std::optional<SweepRunResult> prior = TryResume(runs[i], o)) {
          results[i] = std::move(*prior);
          resumed = true;
        }
      }
      if (!resumed) {
        results[i] = RunOne(runs[i], o);
        if (!results[i].error.empty() &&
            results[i].error.compare(0, 8, "deadline") != 0) {
          // Transient-failure insurance: one retry per point, journaled as
          // attempt 1 so it is auditable. Deadline trips are excluded — a
          // point that deterministically outruns its wall budget would just
          // burn the budget twice.
          o.attempt = 1;
          results[i] = RunOne(runs[i], o);
        }
      }
      const SweepRunResult& r = results[i];
      if (progress) {
        progress->JobDone(r.result.events_executed,
                          sim::ToMs(r.result.sim_time));
      }
      if (verbose) {
        std::fprintf(stderr, "[%zu/%zu] %s: %s (%.2fs)\n", i + 1, runs.size(),
                     r.label.c_str(),
                     r.resumed          ? "resumed from manifest journal"
                     : !r.error.empty() ? r.error.c_str()
                                        : r.result.Summary().c_str(),
                     r.wall_seconds);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(jobs - 1));
  for (int t = 1; t < jobs; ++t) pool.emplace_back(worker);
  worker();  // the caller thread is worker 0
  for (std::thread& t : pool) t.join();
  if (progress) progress->Finish();
  return results;
}

RunOneOptions ScenarioRunner::PlanRun(const ScenarioRun& run, size_t index,
                                      size_t count) const {
  RunOneOptions opts;
  opts.check = options_.check;
  opts.fastpath_override = options_.fastpath_override;
  opts.shards_override = options_.shards_override;
  opts.warm = options_.warm;
  opts.deadline_s = options_.deadline_s;
  opts.sweep_index = index;
  opts.sweep_count = count;

  obs::TelemetryConfig cfg = run.scenario.telemetry;
  if (!options_.trace_out.empty()) cfg.trace = true;
  if (options_.manifest) cfg.manifest = true;
  opts.telemetry = cfg;
  if (!cfg.enabled()) return opts;

  // Artifact paths: sweeps get a ".run<i>" tag so workers never collide and
  // names stay stable for any --jobs interleaving.
  if (cfg.trace) {
    if (!options_.trace_out.empty()) {
      opts.trace_path = count > 1 ? WithRunIndex(options_.trace_out, index)
                                  : options_.trace_out;
    } else if (!options_.out_base.empty()) {
      opts.trace_path =
          count > 1
              ? options_.out_base + ".run" + std::to_string(index) +
                    ".trace.json"
              : options_.out_base + ".trace.json";
    }
  }
  if (cfg.manifest && !options_.out_base.empty()) {
    opts.manifest_path =
        count > 1 ? options_.out_base + ".run" + std::to_string(index) +
                        ".manifest.json"
                  : options_.out_base + ".manifest.json";
  }
  return opts;
}

std::optional<SweepRunResult> ScenarioRunner::TryResume(
    const ScenarioRun& run, const RunOneOptions& opts) const {
  if (opts.manifest_path.empty()) return std::nullopt;
  std::string text;
  if (!ReadTextFile(opts.manifest_path, &text)) return std::nullopt;
  try {
    const Json m = Json::Parse(text);
    const Json* schema = m.Find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->AsString() != "hpccsim-manifest-v1") {
      return std::nullopt;
    }
    const Json* label = m.Find("label");
    if (label == nullptr || !label->is_string() ||
        label->AsString() != run.label) {
      return std::nullopt;
    }
    // The scenario echo must match byte for byte: a resumable point is the
    // same simulation the journal recorded, not a same-named edit. Any
    // config/seed/sweep-patch change invalidates the entry.
    const Json* sc = m.Find("scenario");
    if (sc == nullptr || sc->Dump() != ScenarioToJson(run.scenario).Dump()) {
      return std::nullopt;
    }
    const Json* sweep = m.Find("sweep");
    if (sweep == nullptr || !sweep->is_object()) return std::nullopt;
    const Json* status = sweep->Find("status");
    if (status == nullptr || !status->is_string() ||
        status->AsString() != "ok") {
      return std::nullopt;  // error/violation points re-simulate
    }
    const Json* cells = sweep->Find("cells");
    if (cells == nullptr || !cells->is_object()) return std::nullopt;

    SweepRunResult out;
    out.label = run.label;
    out.params = run.params;
    out.resumed = true;
    for (const auto& [name, value] : cells->members()) {
      if (!value.is_string()) return std::nullopt;
      out.resumed_cells[name] = value.AsString();
    }
    // The two result fields the aggregate outputs read directly: drop
    // presence decides the CSV shape, the trace hash feeds
    // CombinedTraceHash.
    const auto drops = out.resumed_cells.find("dropped_packets");
    if (drops == out.resumed_cells.end()) return std::nullopt;
    out.result.dropped_packets =
        static_cast<uint64_t>(std::strtod(drops->second.c_str(), nullptr));
    const Json* hash = m.Find("trace_hash");
    if (hash == nullptr || !hash->is_string()) return std::nullopt;
    out.result.trace_hash = std::strtoull(hash->AsString().c_str(), nullptr, 16);
    out.manifest_path = opts.manifest_path;
    return out;
  } catch (const std::exception&) {
    return std::nullopt;  // malformed journal: just re-run the point
  }
}

bool ScenarioRunner::HasDrops(const std::vector<SweepRunResult>& results) {
  for (const SweepRunResult& r : results) {
    if (r.error.empty() && r.result.dropped_packets > 0) return true;
  }
  return false;
}

std::vector<std::string> ScenarioRunner::CsvHeader(
    const std::vector<SweepRunResult>& results) {
  std::vector<std::string> header{"run"};
  if (!results.empty()) {
    // All points of one sweep share the same axis keys.
    for (const auto& [key, value] : results.front().params) {
      header.push_back(key);
    }
  }
  const bool drops = HasDrops(results);
  for (const char* col : kMetricColumns) {
    header.emplace_back(col);
    if (drops && std::string_view(col) == "dropped_packets") {
      header.insert(header.end(), std::begin(kDropReasonColumns),
                    std::end(kDropReasonColumns));
    }
  }
  return header;
}

std::string ScenarioRunner::StatusOf(const SweepRunResult& r) {
  if (r.resumed) return "ok";  // only status-ok journal entries are resumed
  if (!r.error.empty()) return "error";
  if (r.violation_count > 0) return "violations";
  return "ok";
}

std::vector<std::pair<std::string, std::string>> ScenarioRunner::MetricCells(
    const SweepRunResult& r) {
  std::vector<std::pair<std::string, std::string>> cells;
  const std::vector<std::string> cols = AllMetricColumns();
  cells.reserve(cols.size());
  if (r.resumed) {
    // Replay the journaled cells verbatim; a column the journal lacks
    // (future schema growth) degrades to a blank, never a crash.
    for (const std::string& col : cols) {
      const auto it = r.resumed_cells.find(col);
      cells.emplace_back(
          col, it != r.resumed_cells.end() ? it->second : std::string());
    }
    return cells;
  }
  if (!r.error.empty()) {
    // Keep the row rectangular: blanks for the numeric metrics, the status
    // and error cells carry the failure. (A run with invariant violations
    // but no exception still has metrics; violations are reported on the
    // console and in the manifest, not in the CSV.)
    for (const std::string& col : cols) {
      if (col == "status") {
        cells.emplace_back(col, StatusOf(r));
      } else if (col == "error") {
        cells.emplace_back(col, r.error);
      } else {
        cells.emplace_back(col, std::string());
      }
    }
    return cells;
  }
  const runner::ExperimentResult& res = r.result;
  const stats::PercentileTracker& slow = res.fct->overall();
  // Distribution metrics are NaN when no samples were collected (e.g. a
  // zero-flow point): emit an empty cell so "no data" is distinguishable
  // from a real 0. Non-empty values format exactly as before.
  const auto metric = [](double v) {
    return std::isnan(v) ? std::string() : FormatNumber(v);
  };
  const auto count = [](uint64_t v) {
    return FormatNumber(static_cast<double>(v));
  };
  cells.emplace_back("flows_created", count(res.flows_created));
  cells.emplace_back("flows_completed", count(res.flows_completed));
  cells.emplace_back("flows_failed", count(res.flows_failed));
  cells.emplace_back("slowdown_p50", metric(slow.Percentile(50)));
  cells.emplace_back("slowdown_p95", metric(slow.Percentile(95)));
  cells.emplace_back("slowdown_p99", metric(slow.Percentile(99)));
  cells.emplace_back("short_fct_p95_us",
                     metric(res.short_fct_us.Percentile(95)));
  cells.emplace_back("queue_p50_kb",
                     metric(res.queue_dist.Percentile(50) / 1e3));
  cells.emplace_back("queue_p99_kb",
                     metric(res.queue_dist.Percentile(99) / 1e3));
  cells.emplace_back(
      "queue_max_kb",
      FormatNumber(static_cast<double>(res.max_queue_bytes) / 1e3));
  cells.emplace_back("pfc_pause_pct",
                     FormatNumber(res.pause_time_fraction * 100));
  cells.emplace_back("pfc_events", count(res.pause_events));
  cells.emplace_back("dropped_packets", count(res.dropped_packets));
  for (int d = 0; d < check::kNumDropReasons; ++d) {
    cells.emplace_back(kDropReasonColumns[d], count(res.dropped_by_reason[d]));
  }
  cells.emplace_back("retx_timeouts", count(res.retx_timeouts));
  cells.emplace_back("sim_time_ms", FormatNumber(sim::ToMs(res.sim_time)));
  cells.emplace_back("packets_forwarded", count(res.packets_forwarded));
  cells.emplace_back("status", StatusOf(r));
  cells.emplace_back("error", std::string());
  return cells;
}

std::vector<std::string> ScenarioRunner::CsvRow(const SweepRunResult& r,
                                                bool drop_reasons) {
  std::vector<std::string> row{r.label};
  for (const auto& [key, value] : r.params) row.push_back(value);
  for (auto& [name, value] : MetricCells(r)) {
    if (!drop_reasons && IsDropReasonColumn(name)) continue;
    row.push_back(std::move(value));
  }
  return row;
}

int ScenarioRunner::ReportAndWriteCsv(
    const std::vector<SweepRunResult>& results, const std::string& csv_path) {
  int failures = 0;
  for (const SweepRunResult& r : results) {
    if (r.resumed) {
      std::printf("%-48s resumed (journal: %s)\n", r.label.c_str(),
                  r.manifest_path.c_str());
    } else if (r.ok()) {
      std::printf("%-48s %s\n", r.label.c_str(), r.result.Summary().c_str());
    } else if (!r.error.empty()) {
      ++failures;
      std::printf("%-48s ERROR: %s\n", r.label.c_str(), r.error.c_str());
    } else {
      ++failures;
      std::printf("%-48s %zu INVARIANT VIOLATION(S)\n", r.label.c_str(),
                  r.violation_count);
      for (const check::Violation& v : r.violations) {
        std::printf("    %s\n", v.Format().c_str());
      }
    }
  }
  if (!WriteCsv(csv_path, results)) {
    std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)\n", csv_path.c_str(), results.size());
  size_t manifests = 0, traces = 0;
  for (const SweepRunResult& r : results) {
    manifests += r.manifest_path.empty() ? 0 : 1;
    traces += r.trace_path.empty() ? 0 : 1;
  }
  if (manifests > 0 || traces > 0) {
    std::printf("wrote %zu manifest(s), %zu trace(s)", manifests, traces);
    // Single-run invocations are the common case; name the files outright.
    if (results.size() == 1) {
      const SweepRunResult& r = results.front();
      if (!r.manifest_path.empty()) {
        std::printf(" [%s]", r.manifest_path.c_str());
      }
      if (!r.trace_path.empty()) std::printf(" [%s]", r.trace_path.c_str());
    }
    std::printf("\n");
  }
  return failures == 0 ? 0 : 1;
}

bool ScenarioRunner::WriteCsv(const std::string& path,
                              const std::vector<SweepRunResult>& results) {
  const bool drops = HasDrops(results);
  std::vector<std::vector<std::string>> rows;
  rows.reserve(results.size());
  for (const SweepRunResult& r : results) rows.push_back(CsvRow(r, drops));
  return stats::WriteTableCsv(path, CsvHeader(results), rows);
}

int RunScenarioFile(const std::string& path,
                    const ScenarioRunnerOptions& options,
                    const std::string& out_override) {
  try {
    const Scenario sc = LoadScenarioFile(path);
    const std::vector<ScenarioRun> runs = ExpandSweep(sc);
    std::printf("scenario %s: %zu run(s), %zu event(s)\n", sc.name.c_str(),
                runs.size(), sc.events.size());
    const std::string out =
        out_override.empty() ? sc.name + ".csv" : out_override;
    ScenarioRunnerOptions opts = options;
    if (opts.out_base.empty()) {
      // Telemetry artifacts land next to the CSV: "<out minus .csv>.*".
      opts.out_base = out.size() > 4 && out.compare(out.size() - 4, 4,
                                                    ".csv") == 0
                          ? out.substr(0, out.size() - 4)
                          : out;
    }
    const std::vector<SweepRunResult> results =
        ScenarioRunner(opts).RunAll(runs);
    return ScenarioRunner::ReportAndWriteCsv(results, out);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
}

}  // namespace hpcc::scenario
