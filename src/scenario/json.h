// Zero-dependency JSON: a small value type with a strict recursive-descent
// parser and a deterministic serializer. This is the substrate of the
// declarative scenario subsystem — scenario files, sweep patching and the
// round-trip tests all go through it. Objects preserve insertion order so a
// parse -> dump cycle is stable.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hpcc::scenario {

// Thrown on malformed input (with offset/line context) and on type-mismatched
// accessor calls.
struct JsonError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, Json>;

  Json() = default;  // null
  static Json MakeBool(bool v);
  static Json MakeNumber(double v);
  static Json MakeString(std::string v);
  static Json MakeArray();
  static Json MakeObject();

  // Strict RFC-8259 subset: no comments, no trailing commas, one top-level
  // value, nesting capped (anti stack-bomb). Throws JsonError.
  static Json Parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw JsonError on mismatch.
  bool AsBool() const;
  double AsDouble() const;
  // Requires the number to be integral and in int64 range.
  int64_t AsInt() const;
  const std::string& AsString() const;

  // Array/object element count (0 for scalars).
  size_t size() const;

  // Array access.
  const Json& at(size_t i) const;
  const std::vector<Json>& items() const;
  void Append(Json v);

  // Object access. Find returns nullptr when absent; Get throws.
  const Json* Find(const std::string& key) const;
  const Json& Get(const std::string& key) const;
  void Set(const std::string& key, Json v);  // replace or append
  bool Remove(const std::string& key);
  const std::vector<Member>& members() const;
  // Sets a value through a dotted path ("workload.load"), creating
  // intermediate objects as needed. Numeric segments index existing array
  // elements ("events.1.fan_in"); arrays are never extended. Used for
  // sweep-grid patching.
  void SetPath(const std::string& dotted_path, Json v);

  // Deterministic serialization: same value -> same bytes. indent == 0 is
  // compact, > 0 pretty-prints. Numbers use the shortest representation that
  // parses back to the identical double.
  std::string Dump(int indent = 0) const;

  bool operator==(const Json& o) const;
  bool operator!=(const Json& o) const { return !(*this == o); }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<Member> obj_;

  void DumpTo(std::string* out, int indent, int depth) const;
};

// Shortest decimal form of `v` that round-trips through strtod. Exposed for
// the CSV aggregation path, which wants the same determinism.
std::string FormatNumber(double v);

}  // namespace hpcc::scenario
