#include "scenario/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <system_error>

namespace hpcc::scenario {
namespace {

constexpr int kMaxDepth = 64;

// Tracks position for error messages and enforces the depth cap.
struct Parser {
  const std::string& text;
  size_t pos = 0;

  [[noreturn]] void Fail(const std::string& what) const {
    int line = 1;
    int col = 1;
    for (size_t i = 0; i < pos && i < text.size(); ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("JSON parse error at line " + std::to_string(line) +
                    ", column " + std::to_string(col) + ": " + what);
  }

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return AtEnd() ? '\0' : text[pos]; }

  void SkipWs() {
    while (!AtEnd()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        return;
      }
    }
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text.compare(pos, n, lit) != 0) return false;
    pos += n;
    return true;
  }

  Json ParseValue(int depth) {
    if (depth > kMaxDepth) Fail("nesting too deep");
    SkipWs();
    if (AtEnd()) Fail("unexpected end of input");
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return Json::MakeString(ParseString());
      case 't':
        if (!Literal("true")) Fail("bad literal");
        return Json::MakeBool(true);
      case 'f':
        if (!Literal("false")) Fail("bad literal");
        return Json::MakeBool(false);
      case 'n':
        if (!Literal("null")) Fail("bad literal");
        return Json();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        Fail("unexpected character");
    }
  }

  Json ParseObject(int depth) {
    Expect('{');
    Json out = Json::MakeObject();
    SkipWs();
    if (Peek() == '}') {
      ++pos;
      return out;
    }
    while (true) {
      SkipWs();
      if (Peek() != '"') Fail("expected object key");
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      if (out.Find(key) != nullptr) Fail("duplicate key \"" + key + "\"");
      out.Set(key, ParseValue(depth + 1));
      SkipWs();
      if (Peek() == ',') {
        ++pos;
        continue;
      }
      Expect('}');
      return out;
    }
  }

  Json ParseArray(int depth) {
    Expect('[');
    Json out = Json::MakeArray();
    SkipWs();
    if (Peek() == ']') {
      ++pos;
      return out;
    }
    while (true) {
      out.Append(ParseValue(depth + 1));
      SkipWs();
      if (Peek() == ',') {
        ++pos;
        continue;
      }
      Expect(']');
      return out;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (AtEnd()) Fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) Fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) Fail("unterminated escape");
      c = text[pos++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': AppendCodepoint(&out); break;
        default: Fail("bad escape");
      }
    }
  }

  void AppendCodepoint(std::string* out) {
    const unsigned cp = ParseHex4();
    // Scenario files are ASCII in practice; encode BMP codepoints as UTF-8
    // (surrogate pairs are rejected rather than half-supported).
    if (cp >= 0xD800 && cp <= 0xDFFF) Fail("surrogate escapes unsupported");
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  unsigned ParseHex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (AtEnd()) Fail("unterminated \\u escape");
      const char c = text[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else Fail("bad hex digit");
    }
    return v;
  }

  // Decimal exponent of a grammar-validated number token: the power of ten
  // of its first significant digit (0 for "1.5", 2 for "123", -3 for
  // "0.0015"), plus the explicit exponent, saturated to +/-1e9. Out-of-range
  // tokens underflow iff this is negative.
  static long long DecimalExponent(const char* tok, const char* end) {
    const char* p = tok;
    if (*p == '-') ++p;
    // Integer part: "0" or a nonzero-leading digit run (grammar-enforced).
    long long base = 0;
    const char* first_sig = nullptr;
    const char* int_start = p;
    while (p < end && *p >= '0' && *p <= '9') ++p;
    if (*int_start != '0') {
      first_sig = int_start;
      base = (p - int_start) - 1;
    } else if (p < end && *p == '.') {
      const char* f = p + 1;
      while (f < end && *f == '0') ++f;
      if (f < end && *f >= '1' && *f <= '9') {
        first_sig = f;
        base = -(f - p);  // "0.001" -> -3
      }
    }
    if (first_sig == nullptr) return 0;  // literal zero never range-errors
    while (p < end && *p != 'e' && *p != 'E') ++p;
    long long exp = 0;
    if (p < end) {
      ++p;
      bool neg = false;
      if (p < end && (*p == '+' || *p == '-')) neg = *p++ == '-';
      for (; p < end && *p >= '0' && *p <= '9'; ++p) {
        if (exp < 1'000'000'000) exp = exp * 10 + (*p - '0');
      }
      if (neg) exp = -exp;
    }
    return base + exp;
  }

  Json ParseNumber() {
    const size_t start = pos;
    if (Peek() == '-') ++pos;
    if (AtEnd() || Peek() < '0' || Peek() > '9') Fail("bad number");
    // RFC 8259: the integer part is "0" or a nonzero-leading digit run.
    if (Peek() == '0' && pos + 1 < text.size() && text[pos + 1] >= '0' &&
        text[pos + 1] <= '9') {
      Fail("leading zero in number");
    }
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos;
    if (Peek() == '.') {
      ++pos;
      if (AtEnd() || Peek() < '0' || Peek() > '9') Fail("bad fraction");
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos;
      if (Peek() == '+' || Peek() == '-') ++pos;
      if (AtEnd() || Peek() < '0' || Peek() > '9') Fail("bad exponent");
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos;
    }
    // Locale-independent conversion: std::strtod honors LC_NUMERIC, so under
    // e.g. LC_NUMERIC=de_DE "1.5" parsed as 1 and silently dropped the
    // fraction. std::from_chars always uses the JSON ('C') number format.
    const char* tok = text.data() + start;
    const char* tok_end = text.data() + pos;
    double v = 0;
    const auto [ptr, ec] = std::from_chars(tok, tok_end, v);
    if (ec == std::errc::result_out_of_range) {
      // Overflow (1e999) must fail loudly like any malformed input, but an
      // underflow (1e-999) is a representable-as-(-)0 value that the strtod
      // path accepted; keep accepting it. from_chars leaves `v` unset on
      // range errors, so tell the two apart by the token's true decimal
      // exponent (mantissa shape alone is not enough: 0.5e400 overflows).
      if (DecimalExponent(tok, tok_end) >= 0) Fail("number out of range");
      v = tok[0] == '-' ? -0.0 : 0.0;
    } else if (ec != std::errc() || ptr != tok_end || !std::isfinite(v)) {
      Fail("number out of range");
    }
    return Json::MakeNumber(v);
  }
};

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string FormatNumber(double v) {
  if (v == 0) return std::signbit(v) ? "-0" : "0";
  // Integral values in int64 range print without a decimal point.
  if (std::abs(v) < 9.2e18 && v == std::floor(v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest form that survives a parse round trip. std::to_chars with an
  // explicit precision is specified to produce exactly what printf "%.*g"
  // produces in the "C" locale — unlike snprintf/strtod, which follow
  // LC_NUMERIC and would flip the decimal separator (and break the
  // round-trip check) under e.g. a German locale.
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    const auto res = std::to_chars(buf, buf + sizeof(buf) - 1, v,
                                   std::chars_format::general, prec);
    *res.ptr = '\0';
    double back = 0;
    std::from_chars(buf, res.ptr, back);
    if (back == v) return buf;
  }
  return buf;
}

Json Json::MakeBool(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::MakeNumber(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = v;
  return j;
}

Json Json::MakeString(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(v);
  return j;
}

Json Json::MakeArray() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::MakeObject() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json Json::Parse(const std::string& text) {
  Parser p{text};
  Json v = p.ParseValue(0);
  p.SkipWs();
  if (!p.AtEnd()) p.Fail("trailing content after value");
  return v;
}

bool Json::AsBool() const {
  if (type_ != Type::kBool) throw JsonError("expected a boolean");
  return bool_;
}

double Json::AsDouble() const {
  if (type_ != Type::kNumber) throw JsonError("expected a number");
  return num_;
}

int64_t Json::AsInt() const {
  const double v = AsDouble();
  if (v != std::floor(v) || std::abs(v) >= 9.2e18) {
    throw JsonError("expected an integer");
  }
  return static_cast<int64_t>(v);
}

const std::string& Json::AsString() const {
  if (type_ != Type::kString) throw JsonError("expected a string");
  return str_;
}

size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  return 0;
}

const Json& Json::at(size_t i) const {
  if (type_ != Type::kArray) throw JsonError("expected an array");
  if (i >= arr_.size()) throw JsonError("array index out of range");
  return arr_[i];
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) throw JsonError("expected an array");
  return arr_;
}

void Json::Append(Json v) {
  if (type_ != Type::kArray) throw JsonError("Append on non-array");
  arr_.push_back(std::move(v));
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : obj_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const Json& Json::Get(const std::string& key) const {
  const Json* v = Find(key);
  if (v == nullptr) throw JsonError("missing key \"" + key + "\"");
  return *v;
}

void Json::Set(const std::string& key, Json v) {
  if (type_ != Type::kObject) throw JsonError("Set on non-object");
  for (Member& m : obj_) {
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

bool Json::Remove(const std::string& key) {
  if (type_ != Type::kObject) return false;
  for (auto it = obj_.begin(); it != obj_.end(); ++it) {
    if (it->first == key) {
      obj_.erase(it);
      return true;
    }
  }
  return false;
}

const std::vector<Json::Member>& Json::members() const {
  if (type_ != Type::kObject) throw JsonError("expected an object");
  return obj_;
}

namespace {
bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}
}  // namespace

void Json::SetPath(const std::string& dotted_path, Json v) {
  const size_t dot = dotted_path.find('.');
  const std::string head =
      dot == std::string::npos ? dotted_path : dotted_path.substr(0, dot);
  const std::string rest =
      dot == std::string::npos ? std::string() : dotted_path.substr(dot + 1);
  if (head.empty() || (dot != std::string::npos && rest.empty())) {
    throw JsonError("bad path");
  }
  if (type_ == Type::kArray) {
    // Numeric segments index existing array elements ("events.1.fan_in").
    // Arrays are never extended: a sweep axis that points past the end is a
    // scenario bug, not a request for a new element.
    if (!AllDigits(head)) {
      throw JsonError("path segment \"" + head +
                      "\" indexes an array but is not a number");
    }
    const size_t idx = std::stoul(head);
    if (idx >= arr_.size()) {
      throw JsonError("path segment \"" + head + "\" is out of range (array has " +
                      std::to_string(arr_.size()) + " elements)");
    }
    if (rest.empty()) {
      arr_[idx] = std::move(v);
    } else {
      arr_[idx].SetPath(rest, std::move(v));
    }
    return;
  }
  if (rest.empty()) {
    Set(head, std::move(v));
    return;
  }
  for (Member& m : obj_) {
    if (m.first == head) {
      if (!m.second.is_object() && !m.second.is_array()) {
        throw JsonError("path \"" + dotted_path +
                        "\" descends into a non-container");
      }
      m.second.SetPath(rest, std::move(v));
      return;
    }
  }
  Json child = MakeObject();
  child.SetPath(rest, std::move(v));
  Set(head, std::move(child));
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      *out += FormatNumber(num_);
      return;
    case Type::kString:
      EscapeInto(str_, out);
      return;
    case Type::kArray: {
      if (arr_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        EscapeInto(obj_[i].first, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        obj_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

bool Json::operator==(const Json& o) const {
  if (type_ != o.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == o.bool_;
    case Type::kNumber: return num_ == o.num_;
    case Type::kString: return str_ == o.str_;
    case Type::kArray: return arr_ == o.arr_;
    case Type::kObject: return obj_ == o.obj_;
  }
  return false;
}

}  // namespace hpcc::scenario
