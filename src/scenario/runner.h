// ScenarioRunner: expands a scenario's sweep grid and executes the points on
// a thread pool. Each sim::Simulator is independent and single-threaded, so
// sweep points are embarrassingly parallel; results are keyed by grid index,
// making the aggregate CSV byte-identical for any --jobs value.
//
// Ownership and threading:
//  - RunOne builds and tears down a full Experiment (simulator, topology,
//    generators, monitors) on the calling thread; nothing escapes but the
//    SweepRunResult. Pooled resources with thread-local caches (e.g.
//    net::PacketPool) are therefore acquired and released on one thread.
//  - RunAll never shares simulation state between workers: each worker owns
//    its sweep points end to end, and only the results vector (pre-sized,
//    one slot per point) is written concurrently — each slot by exactly one
//    worker. A failed point records its error; it never aborts the sweep.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "check/invariant.h"
#include "obs/progress.h"
#include "runner/experiment.h"
#include "scenario/scenario.h"

namespace hpcc::scenario {

// One warm checkpoint (see runner::Experiment's warm surface): the
// experiment-level state plus the state of every scenario-installed
// generator (install order, engaged iff its activity predates the
// checkpoint), the per-lane background-flow cap counters, and the telemetry
// counter baseline. Immutable once published; shared across the grid points
// whose WarmFingerprint matches.
struct WarmCheckpoint {
  runner::Experiment::WarmState state;
  std::vector<std::optional<workload::GenWarmState>> phases;
  std::vector<std::optional<workload::GenWarmState>> bursts;
  std::vector<uint64_t> background_flows;
  obs::TelemetryCounters counters;
};

// Build-once-share-many caches for one sweep execution. The first worker to
// reach a key becomes its builder and publishes through the shared future;
// everyone else blocks on the future and reuses the value. A null value
// means the builder failed (or found the checkpoint instant unrestorable) —
// members fall back to building/running cold themselves.
struct FabricCache {
  std::mutex mu;
  std::map<uint64_t,
           std::shared_future<std::shared_ptr<const topo::FabricSnapshot>>>
      entries;
};
struct WarmCache {
  std::mutex mu;
  std::map<uint64_t, std::shared_future<std::shared_ptr<const WarmCheckpoint>>>
      entries;
};

struct SweepRunResult {
  std::string label;
  std::vector<std::pair<std::string, std::string>> params;
  runner::ExperimentResult result;
  // Non-empty when the run threw; such rows carry empty metrics.
  std::string error;
  // Invariant violations (populated when the runner checks — see
  // ScenarioRunnerOptions::check); capped like MonitorRegistry's log.
  std::vector<check::Violation> violations;
  size_t violation_count = 0;
  // Host wall-clock seconds for this point (diagnostic; never in the CSV).
  double wall_seconds = 0;
  // Telemetry artifacts written for this run (empty when none).
  std::string manifest_path;
  std::string trace_path;
  // Wall-clock phase breakdown (manifest "profile" section; diagnostic).
  obs::PhaseTimers phases;
  // Warm-start provenance (diagnostic; never in the CSV): whether this run
  // captured and published the warm checkpoint for its fingerprint, and
  // whether it restored from one instead of simulating [0, warm_until)
  // itself. Both false on cold runs and fallbacks.
  bool warm_built = false;
  bool warm_restored = false;
  // Which attempt produced this result: 0 = first try, 1 = the sweep's
  // retry-once-on-error pass. Recorded in the manifest journal.
  int attempt = 0;
  // Set when --resume validated this point's manifest journal from a prior
  // sweep and skipped re-simulation. CsvRow then replays `resumed_cells`
  // (the exact formatted cells the original run wrote) instead of
  // reformatting `result`, which only carries the fields the aggregate
  // outputs read directly (dropped_packets, trace_hash).
  bool resumed = false;
  std::map<std::string, std::string> resumed_cells;

  bool ok() const { return error.empty() && violation_count == 0; }
};

struct ScenarioRunnerOptions {
  // Worker threads; 0 = hardware concurrency clamped to the run count.
  int jobs = 0;
  // Per-run progress lines on stderr.
  bool verbose = false;
  // Run every point under the standard invariant monitors
  // (check::InstallStandardMonitors); violations mark the run failed.
  bool check = false;
  // Transmit-engine override: -1 = as the scenario says, 0 = force the
  // per-packet reference engine, 1 = force the train fast path. The
  // determinism suite and `--fastpath=on|off` A/B runs use this.
  int fastpath_override = -1;
  // Shard-count override: 0 = as the scenario says, >= 1 forces that many
  // execution lanes (runner::ExperimentConfig::shards). The shard-equivalence
  // suite and `--shards=N` A/B runs use this. Trace export still forces
  // shards=1 (the flight-recorder samplers are single-sim).
  int shards_override = 0;

  // --- telemetry (src/obs) ---
  // Non-empty: force trace export on and write it here. A sweep derives
  // per-run names ("<stem>.run<i>.json") from it so workers never collide.
  std::string trace_out;
  // Force manifest emission on (scenario "telemetry" can also request it).
  bool manifest = false;
  // Live sweep progress line on stderr (jobs done/total, events/s, ETA).
  bool progress = false;
  // Base path for derived telemetry files (usually the CSV path minus
  // ".csv"; RunScenarioFile fills it). Empty = only write files whose path
  // is explicit (trace_out).
  std::string out_base;
  // Warm-start sweeps (`--warm=off` clears it): share one fabric snapshot
  // across the grid, and when the scenario sets warm_start.until_us, also
  // checkpoint the simulation there once per WarmFingerprint and restore it
  // for the other grid points. Never changes any output byte — ineligible or
  // unrestorable runs silently fall back to cold.
  bool warm = true;

  // --- resilience (fault-injection issue) ---
  // Per-point wall-clock deadline override in seconds. 0 = use the
  // scenario's own deadline_s (which may also be 0 = none). A point that
  // trips its deadline stops early and reports a "deadline exceeded" error
  // instead of wedging the whole sweep.
  double deadline_s = 0;
  // Crash-resumable sweeps: before simulating a point, look for its manifest
  // from a previous (killed or partial) invocation with the same out_base.
  // A manifest that validates (schema, label, byte-identical scenario echo)
  // and records status "ok" short-circuits the point; error/violation points
  // re-run. Implies manifest emission, so every completed point journals
  // itself for the next resume.
  bool resume = false;
};

// Per-point execution options for RunOne (the non-static surface RunAll
// resolves from ScenarioRunnerOptions; the fuzzer builds its own).
struct RunOneOptions {
  bool check = false;
  int fastpath_override = -1;
  // 0 = as the scenario says; >= 1 forces that lane count (see
  // ScenarioRunnerOptions::shards_override).
  int shards_override = 0;
  // Effective telemetry config; unset = use run.scenario.telemetry.
  std::optional<obs::TelemetryConfig> telemetry;
  // Artifact destinations; an empty path skips that artifact even when the
  // telemetry config asks for it (nowhere to put it).
  std::string manifest_path;
  std::string trace_path;
  // Abort the event loop after this many events (0 = unlimited); the fuzz
  // flight recorder replays violating runs under a budget.
  uint64_t event_budget = 0;
  // Warm-start machinery (RunAll wires these; plain RunOne calls leave them
  // null and always run cold). `warm` gates checkpoint capture/restore;
  // the fabric cache engages on its own whenever present.
  bool warm = true;
  std::shared_ptr<FabricCache> fabric_cache;
  std::shared_ptr<WarmCache> warm_cache;
  // Wall-clock deadline in seconds; 0 falls back to the scenario's
  // deadline_s. Disables warm-start (a deadline can fire mid-checkpoint).
  double deadline_s = 0;
  // Sweep-journal coordinates recorded in the manifest (RunAll fills them;
  // standalone RunOne calls are a 1-point sweep).
  size_t sweep_index = 0;
  size_t sweep_count = 1;
  int attempt = 0;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(const ScenarioRunnerOptions& options = {});

  // Expands the sweep and runs every point. Results are in grid order
  // regardless of scheduling; a failed point records its error and does not
  // abort the sweep.
  std::vector<SweepRunResult> RunAll(const Scenario& scenario);
  // Same, over an already-expanded grid (avoids re-expanding when the
  // caller needed the points anyway).
  std::vector<SweepRunResult> RunAll(const std::vector<ScenarioRun>& runs);

  // Executes one fully-resolved sweep point (no threading). `check` attaches
  // the standard invariant monitors for this point; `fastpath_override` as
  // in ScenarioRunnerOptions.
  static SweepRunResult RunOne(const ScenarioRun& run, bool check = false,
                               int fastpath_override = -1);
  // Full-control variant: telemetry session, manifest/trace emission and
  // event budgets. The bool overload above delegates here.
  static SweepRunResult RunOne(const ScenarioRun& run,
                               const RunOneOptions& opts);

  // Order-independent digest over the per-flow trace hashes of all points
  // (each salted with its grid index). Equal digests <=> every point saw
  // identical per-flow outcomes, whatever --jobs interleaving produced them.
  static uint64_t CombinedTraceHash(const std::vector<SweepRunResult>& results);

  // Aggregates per-run results into one CSV via stats::CsvWriter. Columns:
  // run label, one column per sweep axis, then the summary metrics.
  static bool WriteCsv(const std::string& path,
                       const std::vector<SweepRunResult>& results);

  // Shared CLI tail (hpccsim --scenario and scenario_main): prints one
  // summary line per point, writes the aggregated CSV, and returns a process
  // exit code — 0 when every point succeeded and the CSV was written.
  static int ReportAndWriteCsv(const std::vector<SweepRunResult>& results,
                               const std::string& csv_path);

  // Header/row shape shared by WriteCsv and tests. The per-reason drop
  // columns appear only when some row actually dropped packets, so
  // zero-drop scenarios keep their historical byte-identical CSVs;
  // `drop_reasons` for CsvRow must match HasDrops() over the whole sweep.
  static bool HasDrops(const std::vector<SweepRunResult>& results);
  static std::vector<std::string> CsvHeader(
      const std::vector<SweepRunResult>& results);
  static std::vector<std::string> CsvRow(const SweepRunResult& r,
                                         bool drop_reasons = false);

  // Formatted metric cells for one result, keyed by column name, covering
  // the full column superset (every drop-reason column, status, error).
  // CsvRow and the manifest sweep journal share this one formatter — that
  // is what makes --resume byte-identical: a resumed row replays exactly
  // the cells the original run journaled.
  static std::vector<std::pair<std::string, std::string>> MetricCells(
      const SweepRunResult& r);
  // The CSV status cell: "ok", "violations" or "error".
  static std::string StatusOf(const SweepRunResult& r);

 private:
  // Resolves the effective telemetry config and artifact paths for sweep
  // point `index` of `count` under this runner's options.
  RunOneOptions PlanRun(const ScenarioRun& run, size_t index,
                        size_t count) const;
  // --resume probe: loads and validates the manifest a previous invocation
  // may have left at opts.manifest_path. Returns the reconstructed result
  // when the point can be skipped, nullopt when it must (re-)run.
  std::optional<SweepRunResult> TryResume(const ScenarioRun& run,
                                          const RunOneOptions& opts) const;

  ScenarioRunnerOptions options_;
};

// The whole CLI flow shared by `scenario_main FILE` and `hpccsim
// --scenario=FILE`: load, expand, run, report, write the CSV (to
// `out_override`, or "<scenario name>.csv" when empty). Catches and prints
// scenario/runtime errors; returns the process exit code.
int RunScenarioFile(const std::string& path,
                    const ScenarioRunnerOptions& options,
                    const std::string& out_override);

}  // namespace hpcc::scenario
