// ScenarioRunner: expands a scenario's sweep grid and executes the points on
// a thread pool. Each sim::Simulator is independent and single-threaded, so
// sweep points are embarrassingly parallel; results are keyed by grid index,
// making the aggregate CSV byte-identical for any --jobs value.
//
// Ownership and threading:
//  - RunOne builds and tears down a full Experiment (simulator, topology,
//    generators, monitors) on the calling thread; nothing escapes but the
//    SweepRunResult. Pooled resources with thread-local caches (e.g.
//    net::PacketPool) are therefore acquired and released on one thread.
//  - RunAll never shares simulation state between workers: each worker owns
//    its sweep points end to end, and only the results vector (pre-sized,
//    one slot per point) is written concurrently — each slot by exactly one
//    worker. A failed point records its error; it never aborts the sweep.
#pragma once

#include <string>
#include <vector>

#include "check/invariant.h"
#include "runner/experiment.h"
#include "scenario/scenario.h"

namespace hpcc::scenario {

struct SweepRunResult {
  std::string label;
  std::vector<std::pair<std::string, std::string>> params;
  runner::ExperimentResult result;
  // Non-empty when the run threw; such rows carry empty metrics.
  std::string error;
  // Invariant violations (populated when the runner checks — see
  // ScenarioRunnerOptions::check); capped like MonitorRegistry's log.
  std::vector<check::Violation> violations;
  size_t violation_count = 0;
  // Host wall-clock seconds for this point (diagnostic; never in the CSV).
  double wall_seconds = 0;

  bool ok() const { return error.empty() && violation_count == 0; }
};

struct ScenarioRunnerOptions {
  // Worker threads; 0 = hardware concurrency clamped to the run count.
  int jobs = 0;
  // Per-run progress lines on stderr.
  bool verbose = false;
  // Run every point under the standard invariant monitors
  // (check::InstallStandardMonitors); violations mark the run failed.
  bool check = false;
  // Transmit-engine override: -1 = as the scenario says, 0 = force the
  // per-packet reference engine, 1 = force the train fast path. The
  // determinism suite and `--fastpath=on|off` A/B runs use this.
  int fastpath_override = -1;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(const ScenarioRunnerOptions& options = {});

  // Expands the sweep and runs every point. Results are in grid order
  // regardless of scheduling; a failed point records its error and does not
  // abort the sweep.
  std::vector<SweepRunResult> RunAll(const Scenario& scenario);
  // Same, over an already-expanded grid (avoids re-expanding when the
  // caller needed the points anyway).
  std::vector<SweepRunResult> RunAll(const std::vector<ScenarioRun>& runs);

  // Executes one fully-resolved sweep point (no threading). `check` attaches
  // the standard invariant monitors for this point; `fastpath_override` as
  // in ScenarioRunnerOptions.
  static SweepRunResult RunOne(const ScenarioRun& run, bool check = false,
                               int fastpath_override = -1);

  // Order-independent digest over the per-flow trace hashes of all points
  // (each salted with its grid index). Equal digests <=> every point saw
  // identical per-flow outcomes, whatever --jobs interleaving produced them.
  static uint64_t CombinedTraceHash(const std::vector<SweepRunResult>& results);

  // Aggregates per-run results into one CSV via stats::CsvWriter. Columns:
  // run label, one column per sweep axis, then the summary metrics.
  static bool WriteCsv(const std::string& path,
                       const std::vector<SweepRunResult>& results);

  // Shared CLI tail (hpccsim --scenario and scenario_main): prints one
  // summary line per point, writes the aggregated CSV, and returns a process
  // exit code — 0 when every point succeeded and the CSV was written.
  static int ReportAndWriteCsv(const std::vector<SweepRunResult>& results,
                               const std::string& csv_path);

  // Header/row shape shared by WriteCsv and tests.
  static std::vector<std::string> CsvHeader(
      const std::vector<SweepRunResult>& results);
  static std::vector<std::string> CsvRow(const SweepRunResult& r);

 private:
  ScenarioRunnerOptions options_;
};

// The whole CLI flow shared by `scenario_main FILE` and `hpccsim
// --scenario=FILE`: load, expand, run, report, write the CSV (to
// `out_override`, or "<scenario name>.csv" when empty). Catches and prints
// scenario/runtime errors; returns the process exit code.
int RunScenarioFile(const std::string& path,
                    const ScenarioRunnerOptions& options,
                    const std::string& out_override);

}  // namespace hpcc::scenario
