// Declarative scenarios: a JSON schema describing a full ExperimentConfig
// (topology, CC scheme, workload, seeds) plus a timed event script
// (link_down/link_up, one-shot incast bursts, background-load phase changes)
// and parameter sweep grids that expand into N concrete runs.
//
// Minimal example:
//
//   {
//     "name": "trunk_failure",
//     "topology": {"kind": "dumbbell", "hosts_per_side": 4},
//     "cc": {"scheme": "hpcc"},
//     "workload": {"load": 0.3, "trace": "websearch", "max_flows": 100},
//     "duration_ms": 2,
//     "events": [
//       {"type": "link_down", "at_us": 300, "link": 0},
//       {"type": "link_up",   "at_us": 800, "link": 0}
//     ],
//     "sweep": {"cc.scheme": ["hpcc", "dcqcn"], "workload.load": [0.3, 0.7]}
//   }
//
// Sweep keys are dotted paths patched into the document; the grid is the
// cross product of all axes in declaration order.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/telemetry.h"
#include "runner/experiment.h"
#include "scenario/json.h"

namespace hpcc::scenario {

// Schema violations: unknown keys, wrong types, out-of-range values.
struct ScenarioError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ScenarioEvent {
  enum class Kind {
    kLinkDown,
    kLinkUp,
    kIncast,
    kLoadPhase,
    // Fault injection: a switch_down fails every link attached to the switch
    // (and switch_up repairs them), nic_down/nic_up do the same for a host's
    // NIC links, and corrupt drops packets on one link with a seeded
    // Bernoulli stream for a bounded window. switch/nic events expand to the
    // equivalent per-link events at install time, so they compose with
    // sharding and warm-start exactly like hand-written link scripts — the
    // fault-equivalence tests pin switch_down == the link_down sequence.
    kSwitchDown,
    kSwitchUp,
    kNicDown,
    kNicUp,
    kCorrupt,
  };
  Kind kind = Kind::kLinkDown;
  sim::TimePs at = 0;
  // kLinkDown / kLinkUp / kCorrupt: index into Topology::links().
  size_t link = 0;
  // kSwitchDown/kSwitchUp: index into Topology::switches();
  // kNicDown/kNicUp: index into Experiment::hosts().
  size_t node = 0;
  // kCorrupt: per-packet drop probability (bit-error rate folded to packet
  // granularity) and the end of the corruption window.
  double ber = 0;
  sim::TimePs until = 0;
  // kIncast: a one-shot burst at `at` (period/end/seed filled at install).
  workload::IncastOptions incast;
  // kLoadPhase: background Poisson load from `at` until the next phase event
  // (or the workload horizon). 0 pauses background traffic. workload's
  // max_flows stays a cap on the whole background workload, not per phase.
  double load = 0;
};

struct SweepAxis {
  std::string key;           // dotted config path, e.g. "workload.load"
  std::vector<Json> values;  // one run per value (cross product over axes)
};

struct Scenario {
  std::string name = "scenario";
  std::string description;  // free-form, carried through the round trip
  runner::ExperimentConfig config;
  // "telemetry" block: manifest/trace emission and track shaping. The CLI
  // (--trace-out/--manifest) can force parts of it on per invocation.
  obs::TelemetryConfig telemetry;
  // "warm_start" block: when > 0, sweep runs may checkpoint the simulation
  // at this instant and restore it for grid points sharing the same pre-T
  // prefix (see WarmFingerprint). 0 = off. Purely a setup-cost knob: warm
  // runs are byte-identical to cold ones, and a run falls back to cold
  // whenever the instant is not cleanly restorable.
  sim::TimePs warm_until = 0;
  // Per-point wall-clock deadline in seconds (0 = none): a sweep point whose
  // simulation exceeds it stops early and reports a "deadline exceeded"
  // error instead of wedging the whole sweep. CLI --deadline overrides.
  double deadline_s = 0;
  std::vector<ScenarioEvent> events;
  std::vector<SweepAxis> sweep;
  // The original document, kept for sweep patching.
  Json source;
};

// Parses and validates a scenario document. Throws ScenarioError (or
// JsonError for type mismatches) on anything malformed — unknown keys are
// rejected so typos fail loudly instead of silently running defaults.
Scenario ParseScenario(const Json& doc);
Scenario ParseScenarioText(const std::string& text);
// Reads, parses and validates a scenario file. Throws on I/O failure too.
Scenario LoadScenarioFile(const std::string& path);

// Canonical document for a parsed scenario: every recognized field with its
// resolved value. ParseScenario(ScenarioToJson(s)) is a fixed point, which
// the round-trip tests pin down.
Json ScenarioToJson(const Scenario& s);

// One concrete sweep point: the fully-resolved scenario (sweep stripped)
// plus the axis assignments that produced it.
struct ScenarioRun {
  std::string label;
  std::vector<std::pair<std::string, std::string>> params;
  Scenario scenario;
};

// Cross-product expansion of the sweep grid; a scenario without a sweep
// expands to a single run. Axis order is declaration order, the last axis
// varies fastest.
std::vector<ScenarioRun> ExpandSweep(const Scenario& s);

// True when the event script changes topology state (link_down/link_up and
// the switch/NIC fault events that expand to them).
// Invariant checks that assume a static fabric (INT observation-stream
// monotonicity) key off this — keep it the single source of truth when new
// topology-mutating event kinds appear.
bool MutatesTopology(const Scenario& s);

// True when the script contains fault-injection events (switch/NIC flaps,
// corruption windows). Such scenarios always run cold: warm-start
// checkpoints neither model the degree-dependent install draws of the
// expanded events nor the corruption RNG streams.
bool HasFaultEvents(const Scenario& s);

// ExperimentConfig for one run. When the event script contains load phases
// the built-in background generator is disabled (InstallEvents owns all
// phase generators, including phase 0 from the configured load).
runner::ExperimentConfig MakeExperimentConfig(const Scenario& s);

// FNV-1a digest of the canonical topology block: the key sweep runs share a
// fabric snapshot under (identical digest => identical fabric build).
uint64_t FabricSignature(const Scenario& s);

// Digest of everything that can influence the simulation on [0, warm_until):
// the full canonical document, except that events at or beyond warm_until
// (other than load phases, whose times bound earlier phase windows) are
// reduced to their bare {type} marker. Two sweep grid points with equal
// fingerprints run identically up to warm_until — same traffic, same RNG
// draws, same schedule-seq assignments (the type markers preserve the
// install-time draw pattern) — so one warm checkpoint serves both.
uint64_t WarmFingerprint(const Scenario& s);

// Generators created by the event script; must outlive the run.
// `phases` and `bursts` are install-ordered, so two experiments built from
// the same scenario align element-wise — the warm-start runner relies on
// this to carry generator state from a checkpointing run into a restored
// one. `background_flows` holds the per-lane shared flow counters the phase
// sinks use to enforce the global max_flows cap (empty without load phases);
// warm restore must carry their values too.
struct InstalledEvents {
  std::vector<std::unique_ptr<workload::PoissonGenerator>> phases;
  std::vector<std::unique_ptr<workload::IncastGenerator>> bursts;
  std::vector<std::shared_ptr<uint64_t>> background_flows;
};

// Schedules the scenario's timed events onto a freshly-built experiment:
// link_down/link_up drive Topology::SetLinkUp (routes recompute), incast
// events start one-shot bursts, load phases start windowed Poisson
// generators. Validates link indices against the live topology.
InstalledEvents InstallEvents(runner::Experiment& e, const Scenario& s);

}  // namespace hpcc::scenario
