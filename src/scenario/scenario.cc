#include "scenario/scenario.h"

#include <algorithm>
#include <cstdio>
#include <initializer_list>
#include <limits>

#include "core/hash.h"
#include "obs/manifest.h"

namespace hpcc::scenario {
namespace {

constexpr size_t kMaxSweepRuns = 100'000;

// Largest double that still fits the int64 picosecond clock: casting beyond
// it is undefined behavior, so absurd (but positive-checked) times like
// "at_us": 1e300 must be rejected loudly like every other malformed input.
constexpr double kMaxTimePs = 9.2e18;

sim::TimePs CheckedPs(double value, double ps_per_unit, const char* what) {
  const double ps = value * ps_per_unit;
  if (!(ps > -kMaxTimePs && ps < kMaxTimePs)) {
    throw ScenarioError(std::string(what) +
                        " is outside the simulator's time range");
  }
  return static_cast<sim::TimePs>(ps);
}

sim::TimePs UsToPs(double us, const char* what = "time value") {
  return CheckedPs(us, static_cast<double>(sim::kPsPerUs), what);
}

double PsToUs(sim::TimePs t) { return sim::ToUs(t); }

int64_t GbpsToBps(double gbps) {
  const double bps = gbps * static_cast<double>(sim::kGbps);
  // Same loud-failure rule as CheckedPs: casting past int64 is UB.
  if (!(bps < 9.2e18)) {
    throw ScenarioError("link rate is outside the representable range");
  }
  return static_cast<int64_t>(bps);
}

uint64_t CheckedBytes(double v, const char* what) {
  if (!(v < 9.2e18)) {
    throw ScenarioError(std::string(what) + " is too large");
  }
  return static_cast<uint64_t>(v);
}

double BpsToGbps(int64_t bps) {
  return static_cast<double>(bps) / static_cast<double>(sim::kGbps);
}

// Every object in the schema rejects unknown keys so typos fail loudly
// instead of silently running defaults.
void CheckKeys(const Json& obj, const char* where,
               std::initializer_list<const char*> allowed) {
  for (const auto& m : obj.members()) {
    bool ok = false;
    for (const char* k : allowed) {
      if (m.first == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw ScenarioError("unknown key \"" + m.first + "\" in " + where);
    }
  }
}

const Json& Require(const Json& obj, const char* key, const char* where) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    throw ScenarioError(std::string("missing required key \"") + key +
                        "\" in " + where);
  }
  return *v;
}

double NumOr(const Json& obj, const char* key, double def) {
  const Json* v = obj.Find(key);
  return v == nullptr ? def : v->AsDouble();
}

int64_t IntOr(const Json& obj, const char* key, int64_t def) {
  const Json* v = obj.Find(key);
  return v == nullptr ? def : v->AsInt();
}

bool BoolOr(const Json& obj, const char* key, bool def) {
  const Json* v = obj.Find(key);
  return v == nullptr ? def : v->AsBool();
}

std::string StrOr(const Json& obj, const char* key, const std::string& def) {
  const Json* v = obj.Find(key);
  return v == nullptr ? def : v->AsString();
}

int PositiveInt(const Json& obj, const char* key, int64_t def,
                const char* where) {
  const int64_t v = IntOr(obj, key, def);
  if (v <= 0 || v > 1'000'000) {
    throw ScenarioError(std::string("\"") + key + "\" in " + where +
                        " must be a positive integer");
  }
  return static_cast<int>(v);
}

double PositiveNum(const Json& obj, const char* key, double def,
                   const char* where) {
  const double v = NumOr(obj, key, def);
  if (!(v > 0)) {
    throw ScenarioError(std::string("\"") + key + "\" in " + where +
                        " must be > 0");
  }
  return v;
}

void ParseTopology(const Json& t, runner::ExperimentConfig* cfg) {
  const std::string kind = Require(t, "kind", "topology").AsString();
  if (kind == "fattree") {
    CheckKeys(t, "topology",
              {"kind", "paper_scale", "pods", "tors_per_pod", "aggs_per_pod",
               "cores_per_agg", "hosts_per_tor", "host_gbps", "fabric_gbps",
               "link_delay_us"});
    cfg->topology = runner::TopologyKind::kFatTree;
    topo::FatTreeOptions o = BoolOr(t, "paper_scale", false)
                                 ? topo::FatTreeOptions::PaperScale()
                                 : topo::FatTreeOptions{};
    o.pods = PositiveInt(t, "pods", o.pods, "topology");
    o.tors_per_pod = PositiveInt(t, "tors_per_pod", o.tors_per_pod, "topology");
    o.aggs_per_pod = PositiveInt(t, "aggs_per_pod", o.aggs_per_pod, "topology");
    o.cores_per_agg =
        PositiveInt(t, "cores_per_agg", o.cores_per_agg, "topology");
    o.hosts_per_tor =
        PositiveInt(t, "hosts_per_tor", o.hosts_per_tor, "topology");
    o.host_bps = GbpsToBps(
        PositiveNum(t, "host_gbps", BpsToGbps(o.host_bps), "topology"));
    o.fabric_bps = GbpsToBps(
        PositiveNum(t, "fabric_gbps", BpsToGbps(o.fabric_bps), "topology"));
    o.link_delay = UsToPs(
        PositiveNum(t, "link_delay_us", PsToUs(o.link_delay), "topology"));
    cfg->fattree = o;
  } else if (kind == "testbed") {
    CheckKeys(t, "topology",
              {"kind", "servers_per_pair", "host_gbps", "fabric_gbps",
               "link_delay_us"});
    cfg->topology = runner::TopologyKind::kTestbed;
    topo::TestbedOptions o;
    o.servers_per_pair =
        PositiveInt(t, "servers_per_pair", o.servers_per_pair, "topology");
    o.host_bps = GbpsToBps(
        PositiveNum(t, "host_gbps", BpsToGbps(o.host_bps), "topology"));
    o.fabric_bps = GbpsToBps(
        PositiveNum(t, "fabric_gbps", BpsToGbps(o.fabric_bps), "topology"));
    o.link_delay = UsToPs(
        PositiveNum(t, "link_delay_us", PsToUs(o.link_delay), "topology"));
    cfg->testbed = o;
  } else if (kind == "star") {
    CheckKeys(t, "topology", {"kind", "hosts", "host_gbps", "link_delay_us"});
    cfg->topology = runner::TopologyKind::kStar;
    topo::StarOptions o;
    o.num_hosts = PositiveInt(t, "hosts", o.num_hosts, "topology");
    o.host_bps = GbpsToBps(
        PositiveNum(t, "host_gbps", BpsToGbps(o.host_bps), "topology"));
    o.link_delay = UsToPs(
        PositiveNum(t, "link_delay_us", PsToUs(o.link_delay), "topology"));
    cfg->star = o;
  } else if (kind == "dumbbell") {
    CheckKeys(t, "topology",
              {"kind", "hosts_per_side", "host_gbps", "trunk_gbps",
               "link_delay_us"});
    cfg->topology = runner::TopologyKind::kDumbbell;
    topo::DumbbellOptions o;
    o.hosts_per_side =
        PositiveInt(t, "hosts_per_side", o.hosts_per_side, "topology");
    o.host_bps = GbpsToBps(
        PositiveNum(t, "host_gbps", BpsToGbps(o.host_bps), "topology"));
    o.trunk_bps = GbpsToBps(
        PositiveNum(t, "trunk_gbps", BpsToGbps(o.trunk_bps), "topology"));
    o.link_delay = UsToPs(
        PositiveNum(t, "link_delay_us", PsToUs(o.link_delay), "topology"));
    cfg->dumbbell = o;
  } else {
    throw ScenarioError("unknown topology kind \"" + kind +
                        "\" (fattree|testbed|star|dumbbell)");
  }
}

void ParseCc(const Json& c, runner::ExperimentConfig* cfg) {
  CheckKeys(c, "cc",
            {"scheme", "eta", "wai_bytes", "max_stage", "expected_flows",
             "alpha_fair"});
  cfg->cc.scheme = StrOr(c, "scheme", cfg->cc.scheme);
  if (cfg->cc.scheme.empty()) throw ScenarioError("cc.scheme must be set");
  cfg->cc.hpcc.eta = PositiveNum(c, "eta", cfg->cc.hpcc.eta, "cc");
  cfg->cc.hpcc.wai_bytes = NumOr(c, "wai_bytes", cfg->cc.hpcc.wai_bytes);
  cfg->cc.hpcc.max_stage =
      PositiveInt(c, "max_stage", cfg->cc.hpcc.max_stage, "cc");
  cfg->cc.hpcc.expected_flows =
      PositiveInt(c, "expected_flows", cfg->cc.hpcc.expected_flows, "cc");
  cfg->cc.alpha_fair = PositiveNum(c, "alpha_fair", cfg->cc.alpha_fair, "cc");
}

// "flow_class": "packet" (default) | "fluid" — which transport engine the
// emitted flows ride (workload/traffic_source.h). Fluid requires the
// top-level "hybrid" block; that cross-field check runs after the whole
// document parses.
workload::FlowClass ParseFlowClass(const Json& obj, const char* where) {
  const std::string v = StrOr(obj, "flow_class", "packet");
  if (v == "packet") return workload::FlowClass::kPacket;
  if (v == "fluid") return workload::FlowClass::kFluid;
  throw ScenarioError(std::string("\"flow_class\" in ") + where +
                      " must be packet|fluid");
}

// Reads the incast fields shared between "workload.incast" and incast
// events; key whitelisting is the caller's job (the allowed sets differ).
workload::IncastOptions ParseIncast(const Json& inc, const char* where) {
  workload::IncastOptions io;
  io.fan_in = PositiveInt(inc, "fan_in", io.fan_in, where);
  io.flow_bytes = CheckedBytes(
      PositiveNum(inc, "flow_bytes", static_cast<double>(io.flow_bytes),
                  where),
      "flow_bytes");
  io.first_event =
      UsToPs(PositiveNum(inc, "first_event_us", PsToUs(io.first_event),
                         where));
  const double period_us = NumOr(inc, "period_us", PsToUs(io.period));
  if (period_us < 0) {
    throw ScenarioError(std::string("\"period_us\" in ") + where +
                        " must be >= 0");
  }
  io.period = UsToPs(period_us);
  const int64_t receiver = IntOr(inc, "receiver", io.fixed_receiver);
  // Upper bound before the int32 narrowing: a huge index must be rejected,
  // not wrapped (e.g. 4294967295 would wrap to -1, "random receiver").
  if (receiver < -1 || receiver > 1'000'000) {
    throw ScenarioError(std::string("\"receiver\" in ") + where +
                        " must be a host index or -1 (random)");
  }
  io.fixed_receiver = static_cast<int32_t>(receiver);
  io.flow_class = ParseFlowClass(inc, where);
  return io;
}

void ParseWorkload(const Json& w, runner::ExperimentConfig* cfg) {
  CheckKeys(w, "workload",
            {"load", "trace", "max_flows", "incast", "flow_class",
             "trace_file"});
  cfg->load = NumOr(w, "load", cfg->load);
  if (cfg->load < 0 || cfg->load > 4) {
    throw ScenarioError("workload.load must be in [0, 4]");
  }
  cfg->trace = StrOr(w, "trace", cfg->trace);
  if (cfg->trace != "websearch" && cfg->trace != "fbhadoop") {
    throw ScenarioError("workload.trace must be websearch|fbhadoop");
  }
  const int64_t max_flows = IntOr(w, "max_flows", 0);
  if (max_flows < 0) throw ScenarioError("workload.max_flows must be >= 0");
  cfg->max_flows = static_cast<uint64_t>(max_flows);
  // Engine class for background flows: the Poisson generator, trace replay
  // and scripted load phases. Incast carries its own class below.
  cfg->flow_class = ParseFlowClass(w, "workload");
  // CSV flow-trace replay (workload/trace_replay.h), relative to the CWD.
  cfg->trace_file = StrOr(w, "trace_file", "");
  if (const Json* inc = w.Find("incast")) {
    CheckKeys(*inc, "workload.incast",
              {"fan_in", "flow_bytes", "first_event_us", "period_us",
               "receiver", "flow_class"});
    cfg->incast = true;
    cfg->incast_opts = ParseIncast(*inc, "workload.incast");
  }
}

ScenarioEvent ParseEvent(const Json& ev, size_t index) {
  const std::string where = "events[" + std::to_string(index) + "]";
  const std::string type = Require(ev, "type", where.c_str()).AsString();
  const double at_us = Require(ev, "at_us", where.c_str()).AsDouble();
  if (at_us < 0) throw ScenarioError(where + ".at_us must be >= 0");

  ScenarioEvent out;
  out.at = UsToPs(at_us, "at_us");
  if (type == "link_down" || type == "link_up") {
    CheckKeys(ev, where.c_str(), {"type", "at_us", "link"});
    out.kind = type == "link_down" ? ScenarioEvent::Kind::kLinkDown
                                   : ScenarioEvent::Kind::kLinkUp;
    const int64_t link = Require(ev, "link", where.c_str()).AsInt();
    if (link < 0) throw ScenarioError(where + ".link must be >= 0");
    out.link = static_cast<size_t>(link);
  } else if (type == "incast") {
    CheckKeys(ev, where.c_str(),
              {"type", "at_us", "fan_in", "flow_bytes", "receiver",
               "flow_class"});
    out.kind = ScenarioEvent::Kind::kIncast;
    out.incast = ParseIncast(ev, where.c_str());
    // `at_us` is authoritative; fold it into the one-shot generator.
    out.incast.first_event = out.at;
    out.incast.period = 0;
  } else if (type == "load_phase") {
    CheckKeys(ev, where.c_str(), {"type", "at_us", "load"});
    out.kind = ScenarioEvent::Kind::kLoadPhase;
    out.load = Require(ev, "load", where.c_str()).AsDouble();
    if (out.load < 0 || out.load > 4) {
      throw ScenarioError(where + ".load must be in [0, 4]");
    }
  } else if (type == "switch_down" || type == "switch_up") {
    CheckKeys(ev, where.c_str(), {"type", "at_us", "switch"});
    out.kind = type == "switch_down" ? ScenarioEvent::Kind::kSwitchDown
                                     : ScenarioEvent::Kind::kSwitchUp;
    const int64_t sw = Require(ev, "switch", where.c_str()).AsInt();
    if (sw < 0) throw ScenarioError(where + ".switch must be >= 0");
    out.node = static_cast<size_t>(sw);
  } else if (type == "nic_down" || type == "nic_up") {
    CheckKeys(ev, where.c_str(), {"type", "at_us", "host"});
    out.kind = type == "nic_down" ? ScenarioEvent::Kind::kNicDown
                                  : ScenarioEvent::Kind::kNicUp;
    const int64_t h = Require(ev, "host", where.c_str()).AsInt();
    if (h < 0) throw ScenarioError(where + ".host must be >= 0");
    out.node = static_cast<size_t>(h);
  } else if (type == "corrupt") {
    CheckKeys(ev, where.c_str(), {"type", "at_us", "link", "ber", "until_us"});
    out.kind = ScenarioEvent::Kind::kCorrupt;
    const int64_t link = Require(ev, "link", where.c_str()).AsInt();
    if (link < 0) throw ScenarioError(where + ".link must be >= 0");
    out.link = static_cast<size_t>(link);
    out.ber = Require(ev, "ber", where.c_str()).AsDouble();
    if (!(out.ber > 0 && out.ber < 1)) {
      throw ScenarioError(where + ".ber must be in (0, 1)");
    }
    const double until_us = Require(ev, "until_us", where.c_str()).AsDouble();
    out.until = UsToPs(until_us, "until_us");
    if (out.until <= out.at) {
      throw ScenarioError(where + ".until_us must be > at_us");
    }
  } else {
    throw ScenarioError(
        "unknown event type \"" + type +
        "\" (link_down|link_up|incast|load_phase|switch_down|switch_up|"
        "nic_down|nic_up|corrupt)");
  }
  return out;
}

std::vector<SweepAxis> ParseSweep(const Json& sw) {
  std::vector<SweepAxis> axes;
  for (const auto& [key, values] : sw.members()) {
    if (key.empty()) throw ScenarioError("empty sweep key");
    if (!values.is_array() || values.size() == 0) {
      throw ScenarioError("sweep axis \"" + key +
                          "\" must be a non-empty array");
    }
    axes.push_back(SweepAxis{key, values.items()});
  }
  return axes;
}

std::string ValueText(const Json& v) {
  return v.is_string() ? v.AsString() : v.Dump();
}

// 0 disables a track family, so "positive" is too strict here.
int TrackCount(const Json& t, const char* key, int def) {
  const int64_t v = IntOr(t, key, def);
  if (v < 0 || v > 1'000'000) {
    throw ScenarioError(std::string("\"") + key +
                        "\" in telemetry must be a non-negative integer");
  }
  return static_cast<int>(v);
}

obs::TelemetryConfig ParseTelemetry(const Json& t) {
  CheckKeys(t, "telemetry",
            {"manifest", "trace", "profile", "queue_tracks",
             "queue_track_points", "queue_sample_us", "flow_tracks",
             "flow_track_points", "flow_sample_us", "int_tracks",
             "int_track_points"});
  obs::TelemetryConfig c;
  c.manifest = BoolOr(t, "manifest", c.manifest);
  c.trace = BoolOr(t, "trace", c.trace);
  c.profile = BoolOr(t, "profile", c.profile);
  c.queue_tracks = TrackCount(t, "queue_tracks", c.queue_tracks);
  c.queue_track_points =
      PositiveInt(t, "queue_track_points", c.queue_track_points, "telemetry");
  c.queue_sample_us =
      PositiveNum(t, "queue_sample_us", c.queue_sample_us, "telemetry");
  c.flow_tracks = TrackCount(t, "flow_tracks", c.flow_tracks);
  c.flow_track_points =
      PositiveInt(t, "flow_track_points", c.flow_track_points, "telemetry");
  c.flow_sample_us =
      PositiveNum(t, "flow_sample_us", c.flow_sample_us, "telemetry");
  c.int_tracks = TrackCount(t, "int_tracks", c.int_tracks);
  c.int_track_points =
      PositiveInt(t, "int_track_points", c.int_track_points, "telemetry");
  return c;
}

// Host count every topology kind will build — lets the parser reject incast
// shapes that could never run (the generator's own guard is a debug assert,
// compiled out in Release).
int NumHosts(const runner::ExperimentConfig& cfg) {
  switch (cfg.topology) {
    case runner::TopologyKind::kFatTree:
      return cfg.fattree.num_hosts();
    case runner::TopologyKind::kTestbed:
      return 2 * cfg.testbed.servers_per_pair;
    case runner::TopologyKind::kStar:
      return cfg.star.num_hosts;
    case runner::TopologyKind::kDumbbell:
      return 2 * cfg.dumbbell.hosts_per_side;
  }
  return 0;
}

}  // namespace

Scenario ParseScenario(const Json& doc) {
  if (!doc.is_object()) {
    throw ScenarioError("scenario document must be a JSON object");
  }
  CheckKeys(doc, "scenario",
            {"name", "description", "topology", "cc", "workload",
             "duration_ms", "drain_factor", "seed", "shards", "pfc",
             "fastpath", "recovery", "int_sample_every", "short_flow_bytes",
             "telemetry", "warm_start", "deadline_s", "hybrid", "events",
             "sweep"});

  Scenario s;
  s.source = doc;
  s.name = StrOr(doc, "name", s.name);
  if (s.name.empty()) throw ScenarioError("name must not be empty");
  s.description = StrOr(doc, "description", "");

  ParseTopology(Require(doc, "topology", "scenario"), &s.config);
  if (const Json* c = doc.Find("cc")) ParseCc(*c, &s.config);
  if (const Json* w = doc.Find("workload")) ParseWorkload(*w, &s.config);
  if (s.config.incast) {
    const int hosts = NumHosts(s.config);
    if (s.config.incast_opts.fan_in >= hosts) {
      throw ScenarioError("workload.incast.fan_in " +
                          std::to_string(s.config.incast_opts.fan_in) +
                          " needs more hosts than the topology's " +
                          std::to_string(hosts));
    }
    if (s.config.incast_opts.fixed_receiver >= hosts) {
      throw ScenarioError("workload.incast.receiver index out of range");
    }
  }

  s.config.duration = CheckedPs(
      PositiveNum(doc, "duration_ms", sim::ToMs(s.config.duration),
                  "scenario"),
      static_cast<double>(sim::kPsPerMs), "duration_ms");
  s.config.drain_factor =
      PositiveNum(doc, "drain_factor", s.config.drain_factor, "scenario");
  const int64_t seed = IntOr(doc, "seed", static_cast<int64_t>(s.config.seed));
  if (seed < 0) throw ScenarioError("seed must be >= 0");
  s.config.seed = static_cast<uint64_t>(seed);
  // Execution sharding (conservative PDES). Results are pinned byte-equal to
  // shards=1, so this is a performance knob, not a semantic one.
  s.config.shards = PositiveInt(doc, "shards", s.config.shards, "scenario");
  if (s.config.shards > 64) {
    throw ScenarioError("shards must be <= 64");
  }
  s.config.pfc_enabled = BoolOr(doc, "pfc", s.config.pfc_enabled);
  s.config.fast_path = BoolOr(doc, "fastpath", s.config.fast_path);
  const std::string recovery = StrOr(doc, "recovery", "gbn");
  if (recovery == "gbn") {
    s.config.recovery = host::RecoveryMode::kGoBackN;
  } else if (recovery == "irn") {
    s.config.recovery = host::RecoveryMode::kIrn;
  } else {
    throw ScenarioError("recovery must be gbn|irn");
  }
  s.config.int_sample_every = PositiveInt(doc, "int_sample_every",
                                          s.config.int_sample_every,
                                          "scenario");
  const int64_t short_bytes = IntOr(doc, "short_flow_bytes",
                                    static_cast<int64_t>(
                                        s.config.short_flow_bytes));
  if (short_bytes < 0) throw ScenarioError("short_flow_bytes must be >= 0");
  s.config.short_flow_bytes = static_cast<uint64_t>(short_bytes);

  if (const Json* t = doc.Find("telemetry")) {
    if (!t->is_object()) throw ScenarioError("telemetry must be an object");
    s.telemetry = ParseTelemetry(*t);
  }

  if (const Json* ws = doc.Find("warm_start")) {
    if (!ws->is_object()) throw ScenarioError("warm_start must be an object");
    CheckKeys(*ws, "warm_start", {"until_us"});
    const double until_us =
        Require(*ws, "until_us", "warm_start").AsDouble();
    if (!(until_us > 0)) {
      throw ScenarioError("warm_start.until_us must be > 0");
    }
    s.warm_until = UsToPs(until_us, "warm_start.until_us");
  }

  if (const Json* dl = doc.Find("deadline_s")) {
    s.deadline_s = dl->AsDouble();
    if (!(s.deadline_s > 0)) {
      throw ScenarioError("deadline_s must be > 0");
    }
  }

  // Hybrid fluid/packet co-simulation: presence of the block enables the
  // fluid engine. tick_us = fluid round period (default: one MaxBaseRtt).
  if (const Json* hy = doc.Find("hybrid")) {
    if (!hy->is_object()) throw ScenarioError("hybrid must be an object");
    CheckKeys(*hy, "hybrid", {"tick_us"});
    s.config.hybrid.enabled = true;
    if (hy->Find("tick_us") != nullptr) {
      s.config.hybrid.tick = UsToPs(
          PositiveNum(*hy, "tick_us", 0, "hybrid"), "hybrid.tick_us");
    }
    if (s.config.shards != 1) {
      throw ScenarioError("hybrid requires shards = 1");
    }
    if (!cc::SchemeUsesInt(s.config.cc.scheme)) {
      throw ScenarioError(
          "hybrid fluid coupling needs an INT-carrying cc.scheme (the fluid "
          "engine injects congestion state through INT stamps)");
    }
  } else if (s.config.flow_class == workload::FlowClass::kFluid ||
             (s.config.incast && s.config.incast_opts.flow_class ==
                                     workload::FlowClass::kFluid)) {
    throw ScenarioError(
        "flow_class \"fluid\" requires the top-level \"hybrid\" block");
  }

  if (const Json* evs = doc.Find("events")) {
    if (!evs->is_array()) throw ScenarioError("events must be an array");
    for (size_t i = 0; i < evs->size(); ++i) {
      s.events.push_back(ParseEvent(evs->at(i), i));
    }
  }
  for (const ScenarioEvent& ev : s.events) {
    if (ev.kind == ScenarioEvent::Kind::kIncast &&
        ev.incast.flow_class == workload::FlowClass::kFluid &&
        !s.config.hybrid.enabled) {
      throw ScenarioError(
          "flow_class \"fluid\" requires the top-level \"hybrid\" block");
    }
  }
  if (const Json* sw = doc.Find("sweep")) {
    if (!sw->is_object()) throw ScenarioError("sweep must be an object");
    s.sweep = ParseSweep(*sw);
  }
  return s;
}

Scenario ParseScenarioText(const std::string& text) {
  return ParseScenario(Json::Parse(text));
}

Scenario LoadScenarioFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw ScenarioError("cannot open scenario file: " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    // Without this, a truncated read would surface as a misleading JSON
    // parse error on the partial text.
    throw ScenarioError("read error on scenario file: " + path);
  }
  try {
    return ParseScenarioText(text);
  } catch (const std::runtime_error& e) {
    throw ScenarioError(path + ": " + e.what());
  }
}

namespace {

Json IncastToJson(const workload::IncastOptions& io, bool with_schedule) {
  Json inc = Json::MakeObject();
  inc.Set("fan_in", Json::MakeNumber(io.fan_in));
  inc.Set("flow_bytes", Json::MakeNumber(static_cast<double>(io.flow_bytes)));
  if (with_schedule) {
    inc.Set("first_event_us", Json::MakeNumber(PsToUs(io.first_event)));
    inc.Set("period_us", Json::MakeNumber(PsToUs(io.period)));
  }
  inc.Set("receiver", Json::MakeNumber(io.fixed_receiver));
  // Default-elided so pre-hybrid documents round-trip unchanged.
  if (io.flow_class == workload::FlowClass::kFluid) {
    inc.Set("flow_class", Json::MakeString("fluid"));
  }
  return inc;
}

Json TopologyToJson(const runner::ExperimentConfig& cfg) {
  Json t = Json::MakeObject();
  switch (cfg.topology) {
    case runner::TopologyKind::kFatTree: {
      const topo::FatTreeOptions& o = cfg.fattree;
      t.Set("kind", Json::MakeString("fattree"));
      t.Set("pods", Json::MakeNumber(o.pods));
      t.Set("tors_per_pod", Json::MakeNumber(o.tors_per_pod));
      t.Set("aggs_per_pod", Json::MakeNumber(o.aggs_per_pod));
      t.Set("cores_per_agg", Json::MakeNumber(o.cores_per_agg));
      t.Set("hosts_per_tor", Json::MakeNumber(o.hosts_per_tor));
      t.Set("host_gbps", Json::MakeNumber(BpsToGbps(o.host_bps)));
      t.Set("fabric_gbps", Json::MakeNumber(BpsToGbps(o.fabric_bps)));
      t.Set("link_delay_us", Json::MakeNumber(PsToUs(o.link_delay)));
      break;
    }
    case runner::TopologyKind::kTestbed: {
      const topo::TestbedOptions& o = cfg.testbed;
      t.Set("kind", Json::MakeString("testbed"));
      t.Set("servers_per_pair", Json::MakeNumber(o.servers_per_pair));
      t.Set("host_gbps", Json::MakeNumber(BpsToGbps(o.host_bps)));
      t.Set("fabric_gbps", Json::MakeNumber(BpsToGbps(o.fabric_bps)));
      t.Set("link_delay_us", Json::MakeNumber(PsToUs(o.link_delay)));
      break;
    }
    case runner::TopologyKind::kStar: {
      const topo::StarOptions& o = cfg.star;
      t.Set("kind", Json::MakeString("star"));
      t.Set("hosts", Json::MakeNumber(o.num_hosts));
      t.Set("host_gbps", Json::MakeNumber(BpsToGbps(o.host_bps)));
      t.Set("link_delay_us", Json::MakeNumber(PsToUs(o.link_delay)));
      break;
    }
    case runner::TopologyKind::kDumbbell: {
      const topo::DumbbellOptions& o = cfg.dumbbell;
      t.Set("kind", Json::MakeString("dumbbell"));
      t.Set("hosts_per_side", Json::MakeNumber(o.hosts_per_side));
      t.Set("host_gbps", Json::MakeNumber(BpsToGbps(o.host_bps)));
      t.Set("trunk_gbps", Json::MakeNumber(BpsToGbps(o.trunk_bps)));
      t.Set("link_delay_us", Json::MakeNumber(PsToUs(o.link_delay)));
      break;
    }
  }
  return t;
}

Json EventToJson(const ScenarioEvent& ev) {
  Json e = Json::MakeObject();
  switch (ev.kind) {
    case ScenarioEvent::Kind::kLinkDown:
    case ScenarioEvent::Kind::kLinkUp:
      e.Set("type", Json::MakeString(ev.kind == ScenarioEvent::Kind::kLinkDown
                                         ? "link_down"
                                         : "link_up"));
      e.Set("at_us", Json::MakeNumber(PsToUs(ev.at)));
      e.Set("link", Json::MakeNumber(static_cast<double>(ev.link)));
      break;
    case ScenarioEvent::Kind::kIncast: {
      e.Set("type", Json::MakeString("incast"));
      e.Set("at_us", Json::MakeNumber(PsToUs(ev.at)));
      e.Set("fan_in", Json::MakeNumber(ev.incast.fan_in));
      e.Set("flow_bytes",
            Json::MakeNumber(static_cast<double>(ev.incast.flow_bytes)));
      e.Set("receiver", Json::MakeNumber(ev.incast.fixed_receiver));
      if (ev.incast.flow_class == workload::FlowClass::kFluid) {
        e.Set("flow_class", Json::MakeString("fluid"));
      }
      break;
    }
    case ScenarioEvent::Kind::kLoadPhase:
      e.Set("type", Json::MakeString("load_phase"));
      e.Set("at_us", Json::MakeNumber(PsToUs(ev.at)));
      e.Set("load", Json::MakeNumber(ev.load));
      break;
    case ScenarioEvent::Kind::kSwitchDown:
    case ScenarioEvent::Kind::kSwitchUp:
      e.Set("type",
            Json::MakeString(ev.kind == ScenarioEvent::Kind::kSwitchDown
                                 ? "switch_down"
                                 : "switch_up"));
      e.Set("at_us", Json::MakeNumber(PsToUs(ev.at)));
      e.Set("switch", Json::MakeNumber(static_cast<double>(ev.node)));
      break;
    case ScenarioEvent::Kind::kNicDown:
    case ScenarioEvent::Kind::kNicUp:
      e.Set("type", Json::MakeString(ev.kind == ScenarioEvent::Kind::kNicDown
                                         ? "nic_down"
                                         : "nic_up"));
      e.Set("at_us", Json::MakeNumber(PsToUs(ev.at)));
      e.Set("host", Json::MakeNumber(static_cast<double>(ev.node)));
      break;
    case ScenarioEvent::Kind::kCorrupt:
      e.Set("type", Json::MakeString("corrupt"));
      e.Set("at_us", Json::MakeNumber(PsToUs(ev.at)));
      e.Set("link", Json::MakeNumber(static_cast<double>(ev.link)));
      e.Set("ber", Json::MakeNumber(ev.ber));
      e.Set("until_us", Json::MakeNumber(PsToUs(ev.until)));
      break;
  }
  return e;
}

}  // namespace

Json ScenarioToJson(const Scenario& s) {
  const runner::ExperimentConfig& cfg = s.config;
  Json doc = Json::MakeObject();
  doc.Set("name", Json::MakeString(s.name));
  if (!s.description.empty()) {
    doc.Set("description", Json::MakeString(s.description));
  }
  doc.Set("topology", TopologyToJson(cfg));

  Json c = Json::MakeObject();
  c.Set("scheme", Json::MakeString(cfg.cc.scheme));
  c.Set("eta", Json::MakeNumber(cfg.cc.hpcc.eta));
  c.Set("wai_bytes", Json::MakeNumber(cfg.cc.hpcc.wai_bytes));
  c.Set("max_stage", Json::MakeNumber(cfg.cc.hpcc.max_stage));
  c.Set("expected_flows", Json::MakeNumber(cfg.cc.hpcc.expected_flows));
  c.Set("alpha_fair", Json::MakeNumber(cfg.cc.alpha_fair));
  doc.Set("cc", std::move(c));

  Json w = Json::MakeObject();
  w.Set("load", Json::MakeNumber(cfg.load));
  w.Set("trace", Json::MakeString(cfg.trace));
  w.Set("max_flows", Json::MakeNumber(static_cast<double>(cfg.max_flows)));
  if (cfg.flow_class == workload::FlowClass::kFluid) {
    w.Set("flow_class", Json::MakeString("fluid"));
  }
  if (!cfg.trace_file.empty()) {
    w.Set("trace_file", Json::MakeString(cfg.trace_file));
  }
  if (cfg.incast) {
    w.Set("incast", IncastToJson(cfg.incast_opts, /*with_schedule=*/true));
  }
  doc.Set("workload", std::move(w));

  doc.Set("duration_ms", Json::MakeNumber(sim::ToMs(cfg.duration)));
  doc.Set("drain_factor", Json::MakeNumber(cfg.drain_factor));
  doc.Set("seed", Json::MakeNumber(static_cast<double>(cfg.seed)));
  // Default-elided so pre-sharding documents round-trip unchanged.
  if (cfg.shards != 1) doc.Set("shards", Json::MakeNumber(cfg.shards));
  doc.Set("pfc", Json::MakeBool(cfg.pfc_enabled));
  doc.Set("fastpath", Json::MakeBool(cfg.fast_path));
  doc.Set("recovery",
          Json::MakeString(cfg.recovery == host::RecoveryMode::kIrn ? "irn"
                                                                    : "gbn"));
  doc.Set("int_sample_every", Json::MakeNumber(cfg.int_sample_every));
  doc.Set("short_flow_bytes",
          Json::MakeNumber(static_cast<double>(cfg.short_flow_bytes)));

  // Like "events": emitted only when it says something (non-default), so
  // telemetry-free documents round-trip unchanged.
  if (!(s.telemetry == obs::TelemetryConfig{})) {
    doc.Set("telemetry", obs::TelemetryConfigToJson(s.telemetry));
  }
  if (s.warm_until > 0) {
    Json ws = Json::MakeObject();
    ws.Set("until_us", Json::MakeNumber(PsToUs(s.warm_until)));
    doc.Set("warm_start", std::move(ws));
  }
  if (s.deadline_s > 0) {
    doc.Set("deadline_s", Json::MakeNumber(s.deadline_s));
  }
  if (cfg.hybrid.enabled) {
    Json hy = Json::MakeObject();
    if (cfg.hybrid.tick > 0) {
      hy.Set("tick_us", Json::MakeNumber(PsToUs(cfg.hybrid.tick)));
    }
    doc.Set("hybrid", std::move(hy));
  }

  if (!s.events.empty()) {
    Json evs = Json::MakeArray();
    for (const ScenarioEvent& ev : s.events) evs.Append(EventToJson(ev));
    doc.Set("events", std::move(evs));
  }
  if (!s.sweep.empty()) {
    Json sw = Json::MakeObject();
    for (const SweepAxis& axis : s.sweep) {
      Json vals = Json::MakeArray();
      for (const Json& v : axis.values) vals.Append(v);
      sw.Set(axis.key, std::move(vals));
    }
    doc.Set("sweep", std::move(sw));
  }
  return doc;
}

std::vector<ScenarioRun> ExpandSweep(const Scenario& s) {
  if (s.sweep.empty()) {
    ScenarioRun run;
    run.label = s.name;
    run.scenario = s;
    run.scenario.sweep.clear();
    return {std::move(run)};
  }
  if (!s.source.is_object()) {
    throw ScenarioError(
        "sweep expansion needs the source document (scenario was built "
        "programmatically)");
  }
  size_t total = 1;
  for (const SweepAxis& axis : s.sweep) {
    if (axis.values.empty()) {
      throw ScenarioError("sweep axis \"" + axis.key + "\" is empty");
    }
    total *= axis.values.size();
    if (total > kMaxSweepRuns) {
      throw ScenarioError("sweep grid exceeds " +
                          std::to_string(kMaxSweepRuns) + " runs");
    }
  }

  std::vector<ScenarioRun> runs;
  runs.reserve(total);
  for (size_t flat = 0; flat < total; ++flat) {
    // Mixed-radix decode, last axis fastest.
    std::vector<size_t> idx(s.sweep.size(), 0);
    size_t rem = flat;
    for (size_t a = s.sweep.size(); a-- > 0;) {
      idx[a] = rem % s.sweep[a].values.size();
      rem /= s.sweep[a].values.size();
    }

    Json doc = s.source;
    doc.Remove("sweep");
    ScenarioRun run;
    std::string suffix;
    for (size_t a = 0; a < s.sweep.size(); ++a) {
      const SweepAxis& axis = s.sweep[a];
      const Json& value = axis.values[idx[a]];
      doc.SetPath(axis.key, value);
      // Short key for the label: last path segment.
      const size_t dot = axis.key.rfind('.');
      const std::string leaf =
          dot == std::string::npos ? axis.key : axis.key.substr(dot + 1);
      if (!suffix.empty()) suffix += ",";
      suffix += leaf + "=" + ValueText(value);
      run.params.emplace_back(axis.key, ValueText(value));
    }
    run.scenario = ParseScenario(doc);
    run.label = s.name + "[" + suffix + "]";
    runs.push_back(std::move(run));
  }
  return runs;
}

bool MutatesTopology(const Scenario& s) {
  for (const ScenarioEvent& ev : s.events) {
    switch (ev.kind) {
      case ScenarioEvent::Kind::kLinkDown:
      case ScenarioEvent::Kind::kLinkUp:
      case ScenarioEvent::Kind::kSwitchDown:
      case ScenarioEvent::Kind::kSwitchUp:
      case ScenarioEvent::Kind::kNicDown:
      case ScenarioEvent::Kind::kNicUp:
        return true;
      case ScenarioEvent::Kind::kIncast:
      case ScenarioEvent::Kind::kLoadPhase:
      case ScenarioEvent::Kind::kCorrupt:
        // Corruption drops packets but never rewires routes.
        break;
    }
  }
  return false;
}

// True when the scenario injects faults the warm-start machinery does not
// model: switch/NIC events consume install-time schedule seqs per attached
// link (degree-dependent, so the bare-marker fingerprint reduction would be
// wrong) and corruption windows carry per-port RNG state no checkpoint
// captures. The sweep runner runs such scenarios cold.
bool HasFaultEvents(const Scenario& s) {
  for (const ScenarioEvent& ev : s.events) {
    switch (ev.kind) {
      case ScenarioEvent::Kind::kSwitchDown:
      case ScenarioEvent::Kind::kSwitchUp:
      case ScenarioEvent::Kind::kNicDown:
      case ScenarioEvent::Kind::kNicUp:
      case ScenarioEvent::Kind::kCorrupt:
        return true;
      case ScenarioEvent::Kind::kLinkDown:
      case ScenarioEvent::Kind::kLinkUp:
      case ScenarioEvent::Kind::kIncast:
      case ScenarioEvent::Kind::kLoadPhase:
        break;
    }
  }
  return false;
}

uint64_t FabricSignature(const Scenario& s) {
  return core::Fnv1a64(TopologyToJson(s.config).Dump());
}

uint64_t WarmFingerprint(const Scenario& s) {
  Json doc = ScenarioToJson(s);
  if (!s.events.empty()) {
    Json evs = Json::MakeArray();
    for (const ScenarioEvent& ev : s.events) {
      // Post-checkpoint link/incast events only contribute their install-time
      // schedule draws to the pre-T prefix, which depend on the event's type
      // and position alone — reduce them to a bare type marker so grid
      // points differing only in their parameters share one checkpoint.
      // Load phases stay verbatim at any time: a phase event's time closes
      // the previous phase's generation window, wherever it sits. Fault
      // events (switch/NIC/corrupt) also stay verbatim — their scenarios run
      // cold (HasFaultEvents), so the fingerprint only needs to keep them
      // distinct, not reduced.
      if ((ev.kind == ScenarioEvent::Kind::kLinkDown ||
           ev.kind == ScenarioEvent::Kind::kLinkUp ||
           ev.kind == ScenarioEvent::Kind::kIncast) &&
          ev.at >= s.warm_until) {
        Json e = Json::MakeObject();
        e.Set("type",
              Json::MakeString(ev.kind == ScenarioEvent::Kind::kIncast
                                   ? "incast"
                                   : ev.kind == ScenarioEvent::Kind::kLinkDown
                                         ? "link_down"
                                         : "link_up"));
        evs.Append(std::move(e));
      } else {
        evs.Append(EventToJson(ev));
      }
    }
    doc.Set("events", std::move(evs));
  }
  return core::Fnv1a64(doc.Dump());
}

runner::ExperimentConfig MakeExperimentConfig(const Scenario& s) {
  runner::ExperimentConfig cfg = s.config;
  for (const ScenarioEvent& ev : s.events) {
    if (ev.kind == ScenarioEvent::Kind::kLoadPhase) {
      // Phase generators (including phase 0) are owned by InstallEvents.
      cfg.load = 0;
      break;
    }
  }
  return cfg;
}

InstalledEvents InstallEvents(runner::Experiment& e, const Scenario& s) {
  InstalledEvents out;
  topo::Topology& topology = e.topology();
  // Sharded runs replicate every generator in every lane (same seeds, all
  // hosts, the lane's own event arena); AddFlowOnLane keeps only the flows a
  // lane owns while consuming its flow-id counter for the rest, so ids and
  // draws match the shards=1 run exactly. The inner per-lane loops preserve
  // the single-sim install order within each lane.
  const int shards = e.shards();
  const size_t num_links = topology.links().size();
  const size_t num_hosts = e.hosts().size();

  // Load phases, in time order. Phase 0 is the configured workload.load
  // starting at t=0; each load_phase event ends the previous phase.
  struct Phase {
    sim::TimePs start;
    double load;
  };
  std::vector<Phase> phases;
  size_t incast_index = 0;
  size_t corrupt_index = 0;
  for (const ScenarioEvent& ev : s.events) {
    switch (ev.kind) {
      case ScenarioEvent::Kind::kLinkDown:
      case ScenarioEvent::Kind::kLinkUp: {
        if (ev.link >= num_links) {
          throw ScenarioError("event link index " + std::to_string(ev.link) +
                              " out of range (topology has " +
                              std::to_string(num_links) + " links)");
        }
        e.InstallLinkEvent(ev.at, ev.link,
                           ev.kind == ScenarioEvent::Kind::kLinkUp);
        break;
      }
      case ScenarioEvent::Kind::kIncast: {
        workload::IncastOptions io = ev.incast;
        if (static_cast<size_t>(io.fan_in) >= num_hosts) {
          throw ScenarioError("incast fan_in " + std::to_string(io.fan_in) +
                              " needs more hosts than the topology's " +
                              std::to_string(num_hosts));
        }
        if (io.fixed_receiver >= 0 &&
            static_cast<size_t>(io.fixed_receiver) >= num_hosts) {
          throw ScenarioError("incast receiver index out of range");
        }
        io.first_event = ev.at;
        io.period = 0;  // one-shot
        // Mix, don't add: affine derivation collided across (seed, index)
        // pairs (seed 1/index 31 == seed 2/index 0). Streams 1000+ are
        // incast events; 2000+ are load phases; 3000+ are corruption
        // windows; 7 is the workload incast.
        io.seed = core::DeriveSeed(s.config.seed, 1000 + incast_index++);
        for (int lane = 0; lane < shards; ++lane) {
          const workload::FlowClass fc = io.flow_class;
          workload::FlowSink sink = [&e, lane, fc](uint32_t src, uint32_t dst,
                                                   uint64_t size,
                                                   sim::TimePs start) {
            e.AddWorkloadFlow(fc, lane, src, dst, size, start);
          };
          auto gen = std::make_unique<workload::IncastGenerator>(
              &e.lane_simulator(lane), e.hosts(), io, std::move(sink));
          gen->Start();
          out.bursts.push_back(std::move(gen));
        }
        break;
      }
      case ScenarioEvent::Kind::kLoadPhase:
        phases.push_back(Phase{ev.at, ev.load});
        break;
      case ScenarioEvent::Kind::kSwitchDown:
      case ScenarioEvent::Kind::kSwitchUp:
      case ScenarioEvent::Kind::kNicDown:
      case ScenarioEvent::Kind::kNicUp: {
        // Node faults expand to per-link events over the node's attached
        // links, in ascending link order — exactly the script a hand-written
        // link_down/link_up sequence would install, so determinism, sharding
        // (coordinator barriers) and the equivalence tests all get the
        // composed behavior for free.
        const bool is_switch = ev.kind == ScenarioEvent::Kind::kSwitchDown ||
                               ev.kind == ScenarioEvent::Kind::kSwitchUp;
        const bool up = ev.kind == ScenarioEvent::Kind::kSwitchUp ||
                        ev.kind == ScenarioEvent::Kind::kNicUp;
        uint32_t node_id = 0;
        if (is_switch) {
          const std::vector<uint32_t>& switches = topology.switches();
          if (ev.node >= switches.size()) {
            throw ScenarioError("event switch index " +
                                std::to_string(ev.node) +
                                " out of range (topology has " +
                                std::to_string(switches.size()) +
                                " switches)");
          }
          node_id = switches[ev.node];
        } else {
          if (ev.node >= num_hosts) {
            throw ScenarioError("event host index " + std::to_string(ev.node) +
                                " out of range (topology has " +
                                std::to_string(num_hosts) + " hosts)");
          }
          node_id = e.hosts()[ev.node];
        }
        for (size_t li = 0; li < num_links; ++li) {
          const topo::LinkSpec& L = topology.links()[li];
          if (L.a == node_id || L.b == node_id) {
            e.InstallLinkEvent(ev.at, li, up);
          }
        }
        break;
      }
      case ScenarioEvent::Kind::kCorrupt: {
        if (ev.link >= num_links) {
          throw ScenarioError("corrupt link index " + std::to_string(ev.link) +
                              " out of range (topology has " +
                              std::to_string(num_links) + " links)");
        }
        const topo::LinkSpec& L = topology.links()[ev.link];
        // BER scaled to the full 64-bit draw range; guard the cast against
        // rounding up to exactly 2^64 for ber -> 1.
        const double scaled = ev.ber * 18446744073709551616.0;
        const uint64_t threshold = scaled >= 18446744073709551615.0
                                       ? std::numeric_limits<uint64_t>::max()
                                       : static_cast<uint64_t>(scaled);
        // One seed stream per (event, direction): delivery order on each
        // receiving port is deterministic, so the drop pattern is pinned
        // across engines, shard counts and job counts.
        const uint64_t ev_seed =
            core::DeriveSeed(s.config.seed, 3000 + corrupt_index++);
        topology.node(L.b).AddCorruptWindow(L.port_b, ev.at, ev.until,
                                            threshold,
                                            core::DeriveSeed(ev_seed, 0));
        topology.node(L.a).AddCorruptWindow(L.port_a, ev.at, ev.until,
                                            threshold,
                                            core::DeriveSeed(ev_seed, 1));
        break;
      }
    }
  }

  if (!phases.empty()) {
    std::stable_sort(phases.begin(), phases.end(),
                     [](const Phase& a, const Phase& b) {
                       return a.start < b.start;
                     });
    phases.insert(phases.begin(), Phase{0, s.config.load});

    // Aggregate NIC rate of one host (testbed hosts are dual-homed), matching
    // the Experiment's own load accounting.
    const host::HostNode& h0 = topology.host(e.hosts().front());
    int64_t host_bps = 0;
    for (int p = 0; p < h0.num_ports(); ++p) {
      host_bps += h0.port(p).bandwidth_bps();
    }
    const workload::SizeCdf cdf = s.config.trace == "fbhadoop"
                                      ? workload::SizeCdf::FbHadoop()
                                      : workload::SizeCdf::WebSearch();
    // max_flows caps the whole background workload, not each phase — same
    // meaning as in a phase-less scenario. One counter per lane, shared
    // across that lane's phase sinks (phases run sequentially in sim time);
    // every lane replays the same draws, so the counters advance in lockstep
    // and the cap cuts at the same flow in every lane.
    for (int lane = 0; lane < shards; ++lane) {
      out.background_flows.push_back(std::make_shared<uint64_t>(0));
    }
    const std::vector<std::shared_ptr<uint64_t>>& background_flows =
        out.background_flows;
    const uint64_t max_flows = s.config.max_flows;
    for (size_t i = 0; i < phases.size(); ++i) {
      const sim::TimePs end =
          i + 1 < phases.size() ? phases[i + 1].start : s.config.duration;
      if (phases[i].load <= 0 || phases[i].start >= end) continue;
      workload::PoissonOptions po;
      po.load = phases[i].load;
      po.host_bps = host_bps;
      po.start = phases[i].start;
      po.end = std::min(end, s.config.duration);
      po.max_flows = max_flows;  // per-generator bound; sink enforces global
      po.seed = core::DeriveSeed(s.config.seed, 2000 + i);
      for (int lane = 0; lane < shards; ++lane) {
        // Phase flows ride the workload's configured engine class, exactly
        // like the phase-less background generator would.
        const workload::FlowClass fc = s.config.flow_class;
        workload::FlowSink sink = [&e, lane, fc,
                                   counter = background_flows[lane],
                                   max_flows](uint32_t src, uint32_t dst,
                                              uint64_t size,
                                              sim::TimePs start) {
          if (max_flows > 0 && *counter >= max_flows) return;
          ++*counter;
          e.AddWorkloadFlow(fc, lane, src, dst, size, start);
        };
        auto gen = std::make_unique<workload::PoissonGenerator>(
            &e.lane_simulator(lane), e.hosts(), cdf, po, std::move(sink));
        gen->Start();
        out.phases.push_back(std::move(gen));
      }
    }
  }
  return out;
}

}  // namespace hpcc::scenario
