// Three-tier Clos / FatTree, the simulation topology of §5.1 (16 Core,
// 20 Agg, 20 ToR, 320 single-NIC 100 Gbps servers, 400 Gbps fabric).
//
// Structure: pods of (tors_per_pod ToRs x aggs_per_pod Aggs) with a full
// bipartite mesh inside the pod; Agg j of each pod connects to core group j
// (cores_per_agg cores). Defaults build a scaled-down instance for fast
// benches; PaperScale() matches the paper's counts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "topo/topology.h"

namespace hpcc::topo {

struct FatTreeOptions {
  int pods = 2;
  int tors_per_pod = 2;
  int aggs_per_pod = 2;
  int cores_per_agg = 2;  // cores total = aggs_per_pod * cores_per_agg
  int hosts_per_tor = 8;
  int64_t host_bps = 100'000'000'000;
  int64_t fabric_bps = 400'000'000'000;
  sim::TimePs link_delay = sim::Us(1);
  host::HostConfig host;
  net::SwitchConfig sw;

  // §5.1 scale: 4 pods x 5 ToRs x 5 Aggs, 20 cores, 16 hosts/ToR = 320 hosts.
  static FatTreeOptions PaperScale() {
    FatTreeOptions o;
    o.pods = 4;
    o.tors_per_pod = 5;
    o.aggs_per_pod = 5;
    o.cores_per_agg = 4;
    o.hosts_per_tor = 16;
    return o;
  }

  int num_hosts() const { return pods * tors_per_pod * hosts_per_tor; }
};

struct FatTreeTopology {
  std::unique_ptr<Topology> topo;
  std::vector<uint32_t> host_ids;
  std::vector<uint32_t> tor_ids;
  std::vector<uint32_t> agg_ids;
  std::vector<uint32_t> core_ids;
  // Tier of every node id (for PFC propagation depth reporting).
  enum class Tier { kHost, kTor, kAgg, kCore };
  std::vector<Tier> tiers;
};

// `snapshot`: optional warm-start fabric snapshot from an identically
// configured build; Finalize adopts its routing tables instead of running
// the route BFS (see topo/snapshot.h).
FatTreeTopology MakeFatTree(
    sim::Simulator* simulator, const FatTreeOptions& options,
    std::shared_ptr<const FabricSnapshot> snapshot = nullptr);

// Analytic designed-topology path model for the regular fat-tree: hop count
// and link composition from pod arithmetic over the builder's host order
// (2 hops same-rack, 4 same-pod, 6 cross-pod; host links at the ends,
// fabric links between). Installed by MakeFatTree so BaseRtt / IdealFct /
// MaxBaseRtt answer in O(1) instead of BFS — experiment setup and per-flow
// FCT normalization stop scaling with fabric size. Must agree exactly with
// the BFS answers; the routing tests compare all pairs on several shapes.
class FatTreePathModel : public PathModel {
 public:
  FatTreePathModel(const FatTreeOptions& options,
                   const std::vector<uint32_t>& host_ids, size_t num_nodes);

  bool Links(uint32_t src, uint32_t dst, Profile* out) const override;
  bool MaxRttPair(uint32_t* src, uint32_t* dst) const override;

 private:
  int tors_per_pod_;
  int hosts_per_tor_;
  int64_t host_bps_;
  int64_t fabric_bps_;
  sim::TimePs link_delay_;
  uint32_t first_host_ = 0;
  uint32_t last_host_ = 0;
  size_t num_hosts_ = 0;
  // node id -> linear host index in builder order (-1 for switches).
  std::vector<int32_t> host_index_;
};

}  // namespace hpcc::topo
