// Three-tier Clos / FatTree, the simulation topology of §5.1 (16 Core,
// 20 Agg, 20 ToR, 320 single-NIC 100 Gbps servers, 400 Gbps fabric).
//
// Structure: pods of (tors_per_pod ToRs x aggs_per_pod Aggs) with a full
// bipartite mesh inside the pod; Agg j of each pod connects to core group j
// (cores_per_agg cores). Defaults build a scaled-down instance for fast
// benches; PaperScale() matches the paper's counts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "topo/topology.h"

namespace hpcc::topo {

struct FatTreeOptions {
  int pods = 2;
  int tors_per_pod = 2;
  int aggs_per_pod = 2;
  int cores_per_agg = 2;  // cores total = aggs_per_pod * cores_per_agg
  int hosts_per_tor = 8;
  int64_t host_bps = 100'000'000'000;
  int64_t fabric_bps = 400'000'000'000;
  sim::TimePs link_delay = sim::Us(1);
  host::HostConfig host;
  net::SwitchConfig sw;

  // §5.1 scale: 4 pods x 5 ToRs x 5 Aggs, 20 cores, 16 hosts/ToR = 320 hosts.
  static FatTreeOptions PaperScale() {
    FatTreeOptions o;
    o.pods = 4;
    o.tors_per_pod = 5;
    o.aggs_per_pod = 5;
    o.cores_per_agg = 4;
    o.hosts_per_tor = 16;
    return o;
  }

  int num_hosts() const { return pods * tors_per_pod * hosts_per_tor; }
};

struct FatTreeTopology {
  std::unique_ptr<Topology> topo;
  std::vector<uint32_t> host_ids;
  std::vector<uint32_t> tor_ids;
  std::vector<uint32_t> agg_ids;
  std::vector<uint32_t> core_ids;
  // Tier of every node id (for PFC propagation depth reporting).
  enum class Tier { kHost, kTor, kAgg, kCore };
  std::vector<Tier> tiers;
};

FatTreeTopology MakeFatTree(sim::Simulator* simulator,
                            const FatTreeOptions& options);

}  // namespace hpcc::topo
