#include "topo/fattree.h"

#include <string>

namespace hpcc::topo {

FatTreeTopology MakeFatTree(sim::Simulator* simulator,
                            const FatTreeOptions& options) {
  FatTreeTopology out;
  out.topo = std::make_unique<Topology>(simulator);
  Topology& t = *out.topo;

  auto tier_of = [&out](uint32_t id, FatTreeTopology::Tier tier) {
    if (out.tiers.size() <= id) out.tiers.resize(id + 1);
    out.tiers[id] = tier;
  };

  // Core layer: one group of `cores_per_agg` cores per agg position.
  const int num_cores = options.aggs_per_pod * options.cores_per_agg;
  for (int c = 0; c < num_cores; ++c) {
    const uint32_t id = t.AddSwitch(options.sw, "core" + std::to_string(c));
    out.core_ids.push_back(id);
    tier_of(id, FatTreeTopology::Tier::kCore);
  }

  for (int p = 0; p < options.pods; ++p) {
    std::vector<uint32_t> pod_aggs;
    for (int a = 0; a < options.aggs_per_pod; ++a) {
      const uint32_t agg = t.AddSwitch(
          options.sw, "agg" + std::to_string(p) + "_" + std::to_string(a));
      out.agg_ids.push_back(agg);
      pod_aggs.push_back(agg);
      tier_of(agg, FatTreeTopology::Tier::kAgg);
      // Agg position `a` connects to core group `a`.
      for (int k = 0; k < options.cores_per_agg; ++k) {
        t.AddLink(agg, out.core_ids[a * options.cores_per_agg + k],
                  options.fabric_bps, options.link_delay);
      }
    }
    for (int r = 0; r < options.tors_per_pod; ++r) {
      const uint32_t tor = t.AddSwitch(
          options.sw, "tor" + std::to_string(p) + "_" + std::to_string(r));
      out.tor_ids.push_back(tor);
      tier_of(tor, FatTreeTopology::Tier::kTor);
      for (uint32_t agg : pod_aggs) {
        t.AddLink(tor, agg, options.fabric_bps, options.link_delay);
      }
      for (int h = 0; h < options.hosts_per_tor; ++h) {
        const uint32_t host = t.AddHost(
            options.host, "h" + std::to_string(p) + "_" + std::to_string(r) +
                              "_" + std::to_string(h));
        out.host_ids.push_back(host);
        tier_of(host, FatTreeTopology::Tier::kHost);
        t.AddLink(host, tor, options.host_bps, options.link_delay);
      }
    }
  }
  t.Finalize();
  return out;
}

}  // namespace hpcc::topo
