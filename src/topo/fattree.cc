#include "topo/fattree.h"

#include <string>

namespace hpcc::topo {

FatTreeTopology MakeFatTree(sim::Simulator* simulator,
                            const FatTreeOptions& options,
                            std::shared_ptr<const FabricSnapshot> snapshot) {
  FatTreeTopology out;
  out.topo = std::make_unique<Topology>(simulator);
  Topology& t = *out.topo;

  auto tier_of = [&out](uint32_t id, FatTreeTopology::Tier tier) {
    if (out.tiers.size() <= id) out.tiers.resize(id + 1);
    out.tiers[id] = tier;
  };

  // Core layer: one group of `cores_per_agg` cores per agg position.
  const int num_cores = options.aggs_per_pod * options.cores_per_agg;
  for (int c = 0; c < num_cores; ++c) {
    const uint32_t id = t.AddSwitch(options.sw, "core" + std::to_string(c));
    out.core_ids.push_back(id);
    tier_of(id, FatTreeTopology::Tier::kCore);
  }

  for (int p = 0; p < options.pods; ++p) {
    std::vector<uint32_t> pod_aggs;
    for (int a = 0; a < options.aggs_per_pod; ++a) {
      const uint32_t agg = t.AddSwitch(
          options.sw, "agg" + std::to_string(p) + "_" + std::to_string(a));
      out.agg_ids.push_back(agg);
      pod_aggs.push_back(agg);
      tier_of(agg, FatTreeTopology::Tier::kAgg);
      // Agg position `a` connects to core group `a`.
      for (int k = 0; k < options.cores_per_agg; ++k) {
        t.AddLink(agg, out.core_ids[a * options.cores_per_agg + k],
                  options.fabric_bps, options.link_delay);
      }
    }
    for (int r = 0; r < options.tors_per_pod; ++r) {
      const uint32_t tor = t.AddSwitch(
          options.sw, "tor" + std::to_string(p) + "_" + std::to_string(r));
      out.tor_ids.push_back(tor);
      tier_of(tor, FatTreeTopology::Tier::kTor);
      for (uint32_t agg : pod_aggs) {
        t.AddLink(tor, agg, options.fabric_bps, options.link_delay);
      }
      for (int h = 0; h < options.hosts_per_tor; ++h) {
        const uint32_t host = t.AddHost(
            options.host, "h" + std::to_string(p) + "_" + std::to_string(r) +
                              "_" + std::to_string(h));
        out.host_ids.push_back(host);
        tier_of(host, FatTreeTopology::Tier::kHost);
        t.AddLink(host, tor, options.host_bps, options.link_delay);
      }
    }
  }
  t.SetPathModel(std::make_unique<FatTreePathModel>(options, out.host_ids,
                                                    t.num_nodes()));
  if (snapshot != nullptr) t.AdoptSnapshot(std::move(snapshot));
  t.Finalize();
  return out;
}

FatTreePathModel::FatTreePathModel(const FatTreeOptions& options,
                                   const std::vector<uint32_t>& host_ids,
                                   size_t num_nodes)
    : tors_per_pod_(options.tors_per_pod),
      hosts_per_tor_(options.hosts_per_tor),
      host_bps_(options.host_bps),
      fabric_bps_(options.fabric_bps),
      link_delay_(options.link_delay),
      num_hosts_(host_ids.size()),
      host_index_(num_nodes, -1) {
  for (size_t i = 0; i < host_ids.size(); ++i) {
    host_index_[host_ids[i]] = static_cast<int32_t>(i);
  }
  if (!host_ids.empty()) {
    first_host_ = host_ids.front();
    last_host_ = host_ids.back();
  }
}

bool FatTreePathModel::Links(uint32_t src, uint32_t dst,
                             Profile* out) const {
  if (src >= host_index_.size() || dst >= host_index_.size()) return false;
  const int32_t si = host_index_[src];
  const int32_t di = host_index_[dst];
  if (si < 0 || di < 0) return false;  // switches: fall back to BFS
  out->num_segs = 0;
  if (si == di) return true;  // zero-link path, matching the BFS answer
  const int32_t stor = si / hosts_per_tor_;
  const int32_t dtor = di / hosts_per_tor_;
  out->segs[out->num_segs++] = Seg{host_bps_, link_delay_, 2};
  if (stor == dtor) return true;  // host -> ToR -> host
  // Same pod: 2 fabric links (ToR->Agg->ToR); cross pod: 4 (via a core).
  const int fabric =
      stor / tors_per_pod_ == dtor / tors_per_pod_ ? 2 : 4;
  out->segs[out->num_segs++] = Seg{fabric_bps_, link_delay_, fabric};
  return true;
}

bool FatTreePathModel::MaxRttPair(uint32_t* src, uint32_t* dst) const {
  // Builder host order makes front/back the structurally farthest pair
  // (cross-pod when pods >= 2, cross-rack when a pod has >= 2 ToRs), and
  // with uniform link delays more hops never cost less.
  if (num_hosts_ < 2) return false;
  *src = first_host_;
  *dst = last_host_;
  return true;
}

}  // namespace hpcc::topo
