// Topology: owns all nodes, wires links, computes shortest-path ECMP routes,
// and provides base-RTT / ideal-FCT queries for FCT-slowdown accounting.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "host/host_node.h"
#include "net/node.h"
#include "net/switch_node.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace hpcc::topo {

struct LinkSpec {
  uint32_t a;
  int port_a;
  uint32_t b;
  int port_b;
  int64_t bps;
  sim::TimePs delay;
  bool up = true;
};

class Topology {
 public:
  explicit Topology(sim::Simulator* simulator) : simulator_(simulator) {}

  uint32_t AddHost(const host::HostConfig& config, const std::string& name);
  uint32_t AddSwitch(const net::SwitchConfig& config, const std::string& name);
  // Full-duplex link: one egress port on each side.
  void AddLink(uint32_t a, uint32_t b, int64_t bps, sim::TimePs delay);

  // Computes BFS ECMP routing tables and finalizes switch buffers. Must be
  // called once after all nodes/links are added, before the simulation runs.
  void Finalize();

  // Link failure / repair: takes the link down (both directions stop
  // transmitting; in-flight packets still arrive) and recomputes every
  // routing table around it. Flows rehash onto surviving paths; HPCC senders
  // notice via the INT pathID and reset their link records (§4.1).
  void SetLinkUp(size_t link_index, bool up);
  // Recomputes ECMP tables from the current link states.
  void RecomputeRoutes();

  net::Node& node(uint32_t id) { return *nodes_[id]; }
  host::HostNode& host(uint32_t id);
  net::SwitchNode& switch_node(uint32_t id);
  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<uint32_t>& hosts() const { return hosts_; }
  const std::vector<uint32_t>& switches() const { return switches_; }
  const std::vector<LinkSpec>& links() const { return links_; }
  sim::Simulator& simulator() { return *simulator_; }

  // Number of links on a shortest path src -> dst over currently-up links
  // (-1 when the live topology has no path).
  int PathHops(uint32_t src, uint32_t dst) const;
  // Base (unloaded) RTT: forward MTU-sized data + returning ACK.
  sim::TimePs BaseRtt(uint32_t src, uint32_t dst) const;
  // Max base RTT over all host pairs (the "T" configured into CC, §5.1).
  sim::TimePs MaxBaseRtt() const;
  // Lowest link capacity on a shortest path.
  int64_t BottleneckBps(uint32_t src, uint32_t dst) const;
  // Standalone FCT of a `bytes`-long flow (denominator of FCT slowdown):
  // wire time of all its packets at the bottleneck + base RTT. Like BaseRtt
  // and BottleneckBps, computed over the designed topology (link failures
  // ignored) so the normalization is stable across a run with link events.
  sim::TimePs IdealFct(uint32_t src, uint32_t dst, uint64_t bytes) const;

  // BFS hop distance between any two nodes (PFC propagation depth metric).
  int Distance(uint32_t from, uint32_t to) const;

 private:
  // One shortest path (first-parent BFS) as a sequence of LinkSpec indices,
  // over the designed topology (link state ignored).
  std::vector<size_t> ShortestPathLinks(uint32_t src, uint32_t dst) const;
  std::vector<int> BfsDistances(uint32_t from,
                                bool respect_link_state = true) const;

  sim::Simulator* simulator_;
  std::vector<std::unique_ptr<net::Node>> nodes_;
  std::vector<uint32_t> hosts_;
  std::vector<uint32_t> switches_;
  std::vector<LinkSpec> links_;
  // adjacency: node -> list of (link index, out port, peer)
  struct Edge {
    size_t link;
    int port;
    uint32_t peer;
  };
  std::vector<std::vector<Edge>> adj_;
  bool finalized_ = false;
};

}  // namespace hpcc::topo
