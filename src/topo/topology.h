// Topology: owns all nodes, wires links, computes shortest-path ECMP routes,
// and provides base-RTT / ideal-FCT queries for FCT-slowdown accounting.
//
// Routing state lives in per-switch interned next-hop-group tables
// (net/nexthop.h): dst -> shared ECMP port set. Topology is the only writer:
// Finalize()/RecomputeRoutes() build the tables from scratch, and
// SetLinkUp() repairs them incrementally (see the implementation notes on
// SetLinkUp) instead of rebuilding every table on every link event.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "host/host_node.h"
#include "net/node.h"
#include "net/switch_node.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "topo/snapshot.h"

namespace hpcc::topo {

struct LinkSpec {
  uint32_t a;
  int port_a;
  uint32_t b;
  int port_b;
  int64_t bps;
  sim::TimePs delay;
  bool up = true;
};

// Analytic path model a regular-fabric builder can install so the
// designed-topology queries (BaseRtt / BottleneckBps / IdealFct /
// MaxBaseRtt) answer in O(1) from structural arithmetic instead of a BFS
// per call. The model must agree exactly with the BFS answers — the routing
// tests compare them pairwise — since IdealFct is the denominator of FCT
// slowdown and any drift would shift every reported number.
class PathModel {
 public:
  struct Seg {
    int64_t bps = 0;
    sim::TimePs delay = 0;
    int count = 0;
  };
  // Link composition of one designed-topology shortest path, grouped by
  // (bps, delay). Order is irrelevant: every per-link quantity we sum is
  // commutative.
  struct Profile {
    std::array<Seg, 3> segs;
    int num_segs = 0;
  };
  virtual ~PathModel() = default;
  // Fills the composition of a shortest src -> dst path. Returns false when
  // the model cannot answer (caller falls back to BFS).
  virtual bool Links(uint32_t src, uint32_t dst, Profile* out) const = 0;
  // A host pair attaining the maximum BaseRtt. False when fewer than two
  // hosts exist.
  virtual bool MaxRttPair(uint32_t* src, uint32_t* dst) const = 0;
};

class Topology {
 public:
  explicit Topology(sim::Simulator* simulator);

  uint32_t AddHost(const host::HostConfig& config, const std::string& name);
  uint32_t AddSwitch(const net::SwitchConfig& config, const std::string& name);
  // Full-duplex link: one egress port on each side.
  void AddLink(uint32_t a, uint32_t b, int64_t bps, sim::TimePs delay);

  // Computes BFS ECMP routing tables and finalizes switch buffers. Must be
  // called once after all nodes/links are added, before the simulation runs.
  void Finalize();

  // Link failure / repair: takes the link down (both directions stop
  // transmitting; in-flight packets still arrive) and repairs the routing
  // tables around it. Flows rehash onto surviving paths; HPCC senders
  // notice via the INT pathID and reset their link records (§4.1).
  //
  // Repair is incremental: two BFS passes seeded at the link endpoints
  // classify every destination as untouched, patchable in O(1) (one ECMP
  // group gains/loses the flapped port), or distance-changed (rebuilt with
  // one per-destination BFS); a full RecomputeRoutes runs only when the
  // distance-changed set exceeds a bound. The result is exactly equal to a
  // from-scratch rebuild — pinned by the storm tests and, when
  // set_route_oracle(true) (or HPCC_ROUTE_ORACLE=1), re-verified against a
  // dense recomputation after every call.
  void SetLinkUp(size_t link_index, bool up);
  // Rebuilds every ECMP table from the current link states.
  void RecomputeRoutes();

  // Installs an analytic designed-topology path model (regular builders).
  void SetPathModel(std::unique_ptr<PathModel> model) {
    path_model_ = std::move(model);
  }

  // --- Fabric snapshots (warm-start sweeps; topo/snapshot.h) -------------
  // Captures the finalized routing state, path model and measured
  // MaxBaseRtt into an immutable snapshot shareable across sweep jobs.
  // Call after Finalize and before any link event mutates routes.
  // `signature` is the caller's cache key for this fabric configuration
  // (recorded in the snapshot for manifest provenance).
  std::shared_ptr<const FabricSnapshot> ExportSnapshot(
      uint64_t signature = 0) const;
  // Pre-Finalize: Finalize() will adopt `snap`'s tables as shared read
  // views instead of running the route BFS. The snapshot must come from an
  // identically built topology (same nodes, links, initial link states) —
  // the sweep runner keys its cache on the topology configuration.
  void AdoptSnapshot(std::shared_ptr<const FabricSnapshot> snap) {
    adopted_snapshot_ = std::move(snap);
  }
  // The snapshot Finalize adopted (null on a cold build).
  const std::shared_ptr<const FabricSnapshot>& adopted_snapshot() const {
    return adopted_snapshot_;
  }

  // Cumulative wall-clock seconds spent building or repairing routes
  // (Finalize, RecomputeRoutes, SetLinkUp). Telemetry self-profiling only —
  // machine-dependent, never part of deterministic output.
  double route_compute_seconds() const { return route_compute_seconds_; }

  net::Node& node(uint32_t id) { return *nodes_[id]; }
  host::HostNode& host(uint32_t id);
  net::SwitchNode& switch_node(uint32_t id);
  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<uint32_t>& hosts() const { return hosts_; }
  const std::vector<uint32_t>& switches() const { return switches_; }
  const std::vector<LinkSpec>& links() const { return links_; }
  sim::Simulator& simulator() { return *simulator_; }

  // Number of links on a shortest path src -> dst over currently-up links
  // (-1 when the live topology has no path).
  int PathHops(uint32_t src, uint32_t dst) const;
  // Base (unloaded) RTT: forward MTU-sized data + returning ACK.
  sim::TimePs BaseRtt(uint32_t src, uint32_t dst) const;
  // Max base RTT over all host pairs (the "T" configured into CC, §5.1).
  // Exact: either the builder's analytic model answers, or every host pair
  // is covered by one cost-propagating BFS per destination — sampling
  // against an arbitrary anchor host under-reports T on asymmetric fabrics
  // and would mis-configure every scheme's RTT constant.
  sim::TimePs MaxBaseRtt() const;
  // Lowest link capacity on a shortest path.
  int64_t BottleneckBps(uint32_t src, uint32_t dst) const;
  // Standalone FCT of a `bytes`-long flow (denominator of FCT slowdown):
  // wire time of all its packets at the bottleneck + base RTT. Like BaseRtt
  // and BottleneckBps, computed over the designed topology (link failures
  // ignored) so the normalization is stable across a run with link events.
  sim::TimePs IdealFct(uint32_t src, uint32_t dst, uint64_t bytes) const;

  // BFS hop distance between any two nodes (PFC propagation depth metric).
  int Distance(uint32_t from, uint32_t to) const;

  // One shortest path (first-parent BFS) as a sequence of LinkSpec indices
  // in src -> dst walk order, over the designed topology (link state
  // ignored). The per-link traversal direction is recoverable by walking
  // from `src`: the endpoint matching the current node is the egress side.
  // The hybrid fluid engine uses this to pin each fluid flow's link list.
  std::vector<size_t> ShortestPathLinks(uint32_t src, uint32_t dst) const;

  // BFS-only variants bypassing the analytic model — the oracle the model
  // equality tests compare against.
  sim::TimePs BaseRttViaBfs(uint32_t src, uint32_t dst) const;
  int64_t BottleneckBpsViaBfs(uint32_t src, uint32_t dst) const;

  // Routing-table footprint across all switches (memory benchmarks).
  size_t RoutingResidentBytes() const;
  // Port entries a dense per-destination table would hold, and the number of
  // distinct interned groups actually holding them.
  size_t RoutingExpandedPortEntries() const;
  size_t RoutingGroups() const;

  // Debug oracle: when enabled, every SetLinkUp re-derives the dense tables
  // from scratch and throws std::logic_error on any divergence. Defaults to
  // the HPCC_ROUTE_ORACLE environment variable.
  void set_route_oracle(bool on) { route_oracle_ = on; }
  // Compares the live tables against a dense recomputation (and each
  // table's internal invariants); throws std::logic_error on mismatch.
  void VerifyRoutesAgainstOracle();

 private:
  // RAII wall-clock accumulator into route_compute_seconds_; nesting-aware
  // so SetLinkUp falling back to RecomputeRoutes counts once.
  class RouteTimer;

  std::vector<int> BfsDistances(uint32_t from,
                                bool respect_link_state = true) const;
  // RTT contribution of one traversed link: both-way propagation + forward
  // data serialization + returning ACK serialization.
  static sim::TimePs LinkRttCost(int64_t bps, sim::TimePs delay);

  // ECMP candidates of `node` toward the root of the `dist` BFS (ascending
  // port order) — the single definition the full and incremental rebuild
  // paths share. The oracle keeps its own independent copy on purpose.
  void CollectCandidates(uint32_t node, const std::vector<int>& dist,
                         std::vector<uint16_t>* cand) const;
  // Rebuilds every switch's candidate list toward `dst` with one BFS.
  void RebuildDestination(uint32_t dst);
  // Rebuilds a set of destinations, sharing one BFS across destinations
  // behind the same attachment switch. Both the full pass (all hosts, on
  // freshly reset tables) and incremental repair (the distance-changed
  // subset) funnel through this, so the two can never diverge.
  void RebuildDestinations(const std::vector<uint32_t>& dsts);
  // Rebuilds routes toward every degree-1 host in `hosts` attached to
  // switch `via`: one BFS from `via` serves them all, and each non-attach
  // switch interns a single shared group per (switch, via) pair.
  void RebuildDestinationsBehind(uint32_t via,
                                 const std::vector<uint32_t>& hosts);
  // The switch a degree-1, up-linked host hangs off; -1 otherwise.
  int64_t AttachmentSwitch(uint32_t h) const;

  sim::Simulator* simulator_;
  std::vector<std::unique_ptr<net::Node>> nodes_;
  std::vector<uint32_t> hosts_;
  std::vector<uint32_t> switches_;
  std::vector<net::SwitchNode*> switch_ptrs_;  // switches_, typed
  std::vector<LinkSpec> links_;
  // adjacency: node -> list of (link index, out port, peer)
  struct Edge {
    size_t link;
    int port;
    uint32_t peer;
  };
  std::vector<std::vector<Edge>> adj_;
  std::shared_ptr<const PathModel> path_model_;
  // Keeps an adopted snapshot's tables alive while switches alias them.
  std::shared_ptr<const FabricSnapshot> adopted_snapshot_;
  sim::TimePs max_base_rtt_cache_ = -1;  // < 0 = not cached
  std::vector<uint16_t> cand_scratch_;
  bool finalized_ = false;
  bool route_oracle_ = false;
  double route_compute_seconds_ = 0;
  int route_timer_depth_ = 0;
};

}  // namespace hpcc::topo
