// Fabric partitioning for sharded (conservative-PDES) execution.
//
// A partition assigns every node to one lane (logical process). Links whose
// endpoints land in different lanes are "cut": each direction becomes an
// inter-lane handoff channel, and the minimum propagation delay over the
// currently-up cut links is the safe lookahead window — a packet committed
// onto a cut link at time t cannot arrive before t + delay, so lanes may
// advance a full window past the last barrier without ever receiving an
// arrival from the past.
//
// Fat-tree fabrics partition along pod boundaries (pods dealt round-robin to
// lanes, core switches dealt round-robin too), so only Agg<->Core links are
// cut. Any other topology falls back to contiguous node-id blocks; the
// partition is then arbitrary but still *correct* — equivalence never
// depends on partition quality, only on every cut link having a positive
// delay.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/time.h"
#include "topo/fattree.h"
#include "topo/topology.h"

namespace hpcc::topo {

// One direction of a cut link: packets leaving `from_node` port `from_port`
// (lane `from_lane`) arrive at `to_node` port `to_port` (lane `to_lane`).
struct CutLink {
  size_t link = 0;  // index into Topology::links()
  uint32_t from_node = 0;
  int from_port = 0;
  uint32_t to_node = 0;
  int to_port = 0;
  int from_lane = 0;
  int to_lane = 0;
  sim::TimePs delay = 0;
};

struct Partition {
  int shards = 1;
  std::vector<int> lane_of_node;                     // node id -> lane
  std::vector<std::vector<uint32_t>> lane_hosts;     // topology host order
  std::vector<std::vector<uint32_t>> lane_switches;  // topology switch order
  std::vector<CutLink> cut_links;                    // both directions
};

// No up cut link bounds the window: lanes may run to the next scripted
// split / chunk boundary unsynchronized.
inline constexpr sim::TimePs kUnboundedLookahead =
    std::numeric_limits<sim::TimePs>::max();

// Lane of every node of a fat-tree built by MakeFatTree(options), matching
// the builder's node-id order exactly: pod p -> lane p % shards, core c ->
// lane c % shards.
std::vector<int> FatTreeLanes(const FatTreeOptions& options, int shards);

// Generic fallback: contiguous, balanced blocks of node ids.
std::vector<int> ContiguousLanes(size_t num_nodes, int shards);

// Builds the partition record from a per-node lane assignment: per-lane
// host/switch lists (in topology order) and the cut-link inventory.
Partition MakePartition(const Topology& topology,
                        std::vector<int> lane_of_node, int shards);

// Minimum propagation delay over currently-up cut links, reading link state
// from the live topology; kUnboundedLookahead when every cut link is down
// (a down link transmits nothing, so it cannot constrain the window).
// Recompute after every link_down/link_up script application.
sim::TimePs UpLookahead(const Topology& topology, const Partition& partition);

}  // namespace hpcc::topo
