#include "topo/partition.h"

#include <algorithm>
#include <stdexcept>

namespace hpcc::topo {

std::vector<int> FatTreeLanes(const FatTreeOptions& options, int shards) {
  // Mirrors MakeFatTree's id order: all cores first, then per pod its aggs,
  // then per ToR the ToR followed by its hosts.
  const int num_cores = options.aggs_per_pod * options.cores_per_agg;
  const int nodes_per_pod =
      options.aggs_per_pod +
      options.tors_per_pod * (1 + options.hosts_per_tor);
  std::vector<int> lanes;
  lanes.reserve(static_cast<size_t>(num_cores) +
                static_cast<size_t>(options.pods) * nodes_per_pod);
  for (int c = 0; c < num_cores; ++c) lanes.push_back(c % shards);
  for (int p = 0; p < options.pods; ++p) {
    for (int i = 0; i < nodes_per_pod; ++i) lanes.push_back(p % shards);
  }
  return lanes;
}

std::vector<int> ContiguousLanes(size_t num_nodes, int shards) {
  std::vector<int> lanes(num_nodes, 0);
  if (shards <= 1 || num_nodes == 0) return lanes;
  const size_t s = static_cast<size_t>(shards);
  for (size_t i = 0; i < num_nodes; ++i) {
    // Balanced blocks: lane = floor(i * shards / num_nodes).
    lanes[i] = static_cast<int>(i * s / num_nodes);
  }
  return lanes;
}

Partition MakePartition(const Topology& topology,
                        std::vector<int> lane_of_node, int shards) {
  if (lane_of_node.size() != topology.num_nodes()) {
    throw std::invalid_argument("partition: lane assignment size mismatch");
  }
  for (int lane : lane_of_node) {
    if (lane < 0 || lane >= shards) {
      throw std::invalid_argument("partition: lane out of range");
    }
  }
  Partition p;
  p.shards = shards;
  p.lane_of_node = std::move(lane_of_node);
  p.lane_hosts.resize(static_cast<size_t>(shards));
  p.lane_switches.resize(static_cast<size_t>(shards));
  for (uint32_t h : topology.hosts()) {
    p.lane_hosts[static_cast<size_t>(p.lane_of_node[h])].push_back(h);
  }
  for (uint32_t s : topology.switches()) {
    p.lane_switches[static_cast<size_t>(p.lane_of_node[s])].push_back(s);
  }
  const std::vector<LinkSpec>& links = topology.links();
  for (size_t i = 0; i < links.size(); ++i) {
    const LinkSpec& l = links[i];
    const int la = p.lane_of_node[l.a];
    const int lb = p.lane_of_node[l.b];
    if (la == lb) continue;
    p.cut_links.push_back(
        CutLink{i, l.a, l.port_a, l.b, l.port_b, la, lb, l.delay});
    p.cut_links.push_back(
        CutLink{i, l.b, l.port_b, l.a, l.port_a, lb, la, l.delay});
  }
  return p;
}

sim::TimePs UpLookahead(const Topology& topology,
                        const Partition& partition) {
  sim::TimePs min_delay = kUnboundedLookahead;
  const std::vector<LinkSpec>& links = topology.links();
  for (const CutLink& c : partition.cut_links) {
    if (!links[c.link].up) continue;
    min_delay = std::min(min_delay, c.delay);
  }
  return min_delay;
}

}  // namespace hpcc::topo
