// Immutable fabric snapshot: the routing state of a finalized topology,
// shareable read-only across every job of a sweep.
//
// Building a big fabric's routes (one BFS per rack plus group interning) is
// the dominant per-job setup cost, yet the tables depend only on the graph
// shape — not on the CC scheme, load, or seed a sweep varies. A sweep
// therefore builds them once, exports this snapshot, and every other job
// adopts it: each switch's read view aliases the snapshot's table and only
// detaches onto a private copy on its first route mutation (link-event
// scripts fork just the switches they touch — see
// net::SwitchNode::mutable_routes). Sweep setup drops from
// O(jobs x fabric) to O(fabric).
//
// Thread-safety: all members are immutable after construction; concurrent
// sweep workers read them without synchronization. NextHopTable::Lookup and
// the PathModel queries are const and allocation-free.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/nexthop.h"
#include "sim/time.h"

namespace hpcc::topo {

class PathModel;

struct FabricSnapshot {
  // Per-switch routing tables, in Topology::switches() order.
  std::vector<net::NextHopTable> routes;
  // The builder's analytic path model (may be null for irregular fabrics);
  // shared because its queries are const.
  std::shared_ptr<const PathModel> path_model;
  // Cached Topology::MaxBaseRtt() — the expensive all-pairs sweep runs once
  // per grid, not once per job.
  sim::TimePs max_base_rtt = 0;
  // Hash of the topology configuration that built this snapshot (the cache
  // key; recorded as manifest provenance).
  uint64_t signature = 0;
};

}  // namespace hpcc::topo
