#include "topo/topology.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <limits>
#include <stdexcept>

#include "net/packet.h"

namespace hpcc::topo {

Topology::Topology(sim::Simulator* simulator) : simulator_(simulator) {
  // Enabled by HPCC_ROUTE_ORACLE=1 (any non-empty value other than "0");
  // =0 or empty must keep the expensive oracle off.
  const char* oracle = std::getenv("HPCC_ROUTE_ORACLE");
  route_oracle_ =
      oracle != nullptr && oracle[0] != '\0' && std::string(oracle) != "0";
}

uint32_t Topology::AddHost(const host::HostConfig& config,
                           const std::string& name) {
  const auto id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(
      std::make_unique<host::HostNode>(simulator_, id, name, config));
  hosts_.push_back(id);
  adj_.emplace_back();
  return id;
}

uint32_t Topology::AddSwitch(const net::SwitchConfig& config,
                             const std::string& name) {
  const auto id = static_cast<uint32_t>(nodes_.size());
  auto sw = std::make_unique<net::SwitchNode>(simulator_, id, name, config);
  switch_ptrs_.push_back(sw.get());
  nodes_.push_back(std::move(sw));
  switches_.push_back(id);
  adj_.emplace_back();
  return id;
}

void Topology::AddLink(uint32_t a, uint32_t b, int64_t bps,
                       sim::TimePs delay) {
  assert(!finalized_);
  net::Node& na = *nodes_[a];
  net::Node& nb = *nodes_[b];
  const int pa = na.AddPort(std::make_unique<net::Port>(&na, na.num_ports(),
                                                        bps, delay));
  const int pb = nb.AddPort(std::make_unique<net::Port>(&nb, nb.num_ports(),
                                                        bps, delay));
  na.port(pa).ConnectTo(&nb, pb);
  nb.port(pb).ConnectTo(&na, pa);
  const size_t link = links_.size();
  links_.push_back(LinkSpec{a, pa, b, pb, bps, delay});
  adj_[a].push_back(Edge{link, pa, b});
  adj_[b].push_back(Edge{link, pb, a});
}

host::HostNode& Topology::host(uint32_t id) {
  auto* h = dynamic_cast<host::HostNode*>(nodes_[id].get());
  if (h == nullptr) throw std::invalid_argument("node is not a host");
  return *h;
}

net::SwitchNode& Topology::switch_node(uint32_t id) {
  auto* s = dynamic_cast<net::SwitchNode*>(nodes_[id].get());
  if (s == nullptr) throw std::invalid_argument("node is not a switch");
  return *s;
}

std::vector<int> Topology::BfsDistances(uint32_t from,
                                        bool respect_link_state) const {
  std::vector<int> dist(nodes_.size(), -1);
  std::deque<uint32_t> q{from};
  dist[from] = 0;
  while (!q.empty()) {
    const uint32_t n = q.front();
    q.pop_front();
    for (const Edge& e : adj_[n]) {
      if (respect_link_state && !links_[e.link].up) continue;
      if (dist[e.peer] < 0) {
        dist[e.peer] = dist[n] + 1;
        q.push_back(e.peer);
      }
    }
  }
  return dist;
}

int64_t Topology::AttachmentSwitch(uint32_t h) const {
  if (adj_[h].size() != 1) return -1;
  const Edge& e = adj_[h].front();
  if (!links_[e.link].up) return -1;
  if (!nodes_[e.peer]->IsSwitch()) return -1;
  return static_cast<int64_t>(e.peer);
}

void Topology::CollectCandidates(uint32_t node, const std::vector<int>& dist,
                                 std::vector<uint16_t>* cand) const {
  // A node's ECMP set toward the BFS root: every up port whose peer is one
  // hop closer. Candidate order is adjacency order == ascending port index,
  // the canonical group order.
  cand->clear();
  if (dist[node] <= 0) return;
  for (const Edge& e : adj_[node]) {
    if (!links_[e.link].up) continue;
    if (dist[e.peer] >= 0 && dist[e.peer] == dist[node] - 1) {
      cand->push_back(static_cast<uint16_t>(e.port));
    }
  }
}

void Topology::RebuildDestination(uint32_t dst) {
  // Per-destination BFS over links that are up.
  const std::vector<int> dist = BfsDistances(dst);
  std::vector<uint16_t>& cand = cand_scratch_;
  for (net::SwitchNode* sw : switch_ptrs_) {
    cand.clear();
    if (sw->id() != dst) CollectCandidates(sw->id(), dist, &cand);
    sw->mutable_routes().SetRoute(dst, cand.data(),
                                  static_cast<uint32_t>(cand.size()));
  }
}

void Topology::RebuildDestinationsBehind(uint32_t via,
                                         const std::vector<uint32_t>& hosts) {
  // Every path to a degree-1 host h attached to switch `via` ends with the
  // via->h link, so d(n, h) = d(n, via) + 1 for every n != h and the ECMP
  // candidates of any switch s != via toward h equal its candidates toward
  // `via` — one BFS and one interned group per switch serve every host
  // behind the same attachment point. `via` itself routes straight to each
  // host's NIC port(s).
  const std::vector<int> dist = BfsDistances(via);
  std::vector<uint16_t>& cand = cand_scratch_;
  for (net::SwitchNode* sw : switch_ptrs_) {
    const uint32_t s = sw->id();
    if (s == via) continue;
    CollectCandidates(s, dist, &cand);
    if (cand.empty()) {
      for (const uint32_t h : hosts) {
        sw->mutable_routes().AssignGroup(h, net::NextHopTable::kNoGroup);
      }
    } else {
      const uint32_t gid = sw->mutable_routes().InternGroup(
          cand.data(), static_cast<uint32_t>(cand.size()));
      for (const uint32_t h : hosts) sw->mutable_routes().AssignGroup(h, gid);
    }
  }
  net::SwitchNode& attach = *static_cast<net::SwitchNode*>(nodes_[via].get());
  for (const uint32_t h : hosts) {
    cand.clear();
    for (const Edge& e : adj_[via]) {
      if (e.peer == h && links_[e.link].up) {
        cand.push_back(static_cast<uint16_t>(e.port));
      }
    }
    attach.mutable_routes().SetRoute(h, cand.data(),
                                     static_cast<uint32_t>(cand.size()));
  }
}

class Topology::RouteTimer {
 public:
  explicit RouteTimer(Topology* t) : t_(t) {
    if (t_->route_timer_depth_++ == 0) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~RouteTimer() {
    if (--t_->route_timer_depth_ == 0) {
      t_->route_compute_seconds_ +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
    }
  }
  RouteTimer(const RouteTimer&) = delete;
  RouteTimer& operator=(const RouteTimer&) = delete;

 private:
  Topology* t_;
  std::chrono::steady_clock::time_point start_;
};

void Topology::RecomputeRoutes() {
  RouteTimer timer(this);
  for (net::SwitchNode* sw : switch_ptrs_) {
    // Reset rebuilds from scratch, so a shared snapshot view detaches
    // without the copy.
    sw->mutable_routes(/*preserve=*/false)
        .Reset(static_cast<uint32_t>(nodes_.size()));
  }
  RebuildDestinations(hosts_);
}

void Topology::Finalize() {
  assert(!finalized_);
  finalized_ = true;
  if (adopted_snapshot_ != nullptr &&
      adopted_snapshot_->routes.size() == switches_.size()) {
    // Warm start: alias the snapshot's immutable tables instead of running
    // the route BFS. A later mutation (link event) detaches just the
    // switches it touches (SwitchNode::mutable_routes).
    for (size_t i = 0; i < switches_.size(); ++i) {
      switch_ptrs_[i]->AdoptRouteView(&adopted_snapshot_->routes[i]);
    }
    if (adopted_snapshot_->path_model != nullptr) {
      path_model_ = adopted_snapshot_->path_model;
    }
    max_base_rtt_cache_ = adopted_snapshot_->max_base_rtt;
  } else {
    adopted_snapshot_ = nullptr;
    RecomputeRoutes();
  }
  for (uint32_t s : switches_) {
    switch_node(s).FinishSetup();
  }
}

std::shared_ptr<const FabricSnapshot> Topology::ExportSnapshot(
    uint64_t signature) const {
  assert(finalized_);
  auto snap = std::make_shared<FabricSnapshot>();
  snap->signature = signature;
  snap->routes.reserve(switches_.size());
  for (const net::SwitchNode* sw : switch_ptrs_) {
    snap->routes.push_back(sw->routes());
  }
  snap->path_model = path_model_;
  snap->max_base_rtt = MaxBaseRtt();
  return snap;
}

void Topology::SetLinkUp(size_t link_index, bool up) {
  LinkSpec& l = links_[link_index];
  if (l.up == up) return;
  if (!finalized_) {
    // No routing tables exist yet (Reset runs at Finalize, which will build
    // routes from the link states current then); classifying against the
    // unsized tables would read out of bounds.
    l.up = up;
    nodes_[l.a]->port(l.port_a).SetLinkUp(up);
    nodes_[l.b]->port(l.port_b).SetLinkUp(up);
    return;
  }

  RouteTimer timer(this);
  // Classify every destination against the flapped link using two BFS
  // passes seeded at its endpoints, over the pre-change fabric:
  //
  //   |d(a,dst) - d(b,dst)| == 0  ->  the link is on no shortest path to
  //       dst and (up or down) opens/closes none: untouched.
  //   |diff| == 1  ->  only the farther endpoint's ECMP group toward dst
  //       changes (it gains/loses the port across the link); distances are
  //       provably unchanged as long as, on a down, the farther endpoint
  //       keeps at least one other parent. O(1) group patch.
  //   otherwise (|diff| >= 2 on up, lost-last-parent on down, or a
  //       partition heal)  ->  distances shift and changes can cascade:
  //       rebuild that destination with one BFS, or fall back to a full
  //       RecomputeRoutes when too many destinations need it.
  const std::vector<int> da = BfsDistances(l.a);
  const std::vector<int> db = BfsDistances(l.b);

  struct Patch {
    net::SwitchNode* sw;
    uint32_t dst;
    uint16_t port;
    bool add;
  };
  std::vector<Patch> patches;
  std::vector<uint32_t> rebuild;
  for (const uint32_t dst : hosts_) {
    const int xa = da[dst];
    const int xb = db[dst];
    if (xa < 0 && xb < 0) continue;  // neither endpoint reaches dst
    if (xa < 0 || xb < 0) {
      // Only possible on an up: the link heals a partition for dst.
      rebuild.push_back(dst);
      continue;
    }
    const int diff = xa - xb;
    if (diff == 0) continue;
    if (diff > 1 || diff < -1) {
      // Only possible on an up (endpoints were not adjacent): the new link
      // shortens paths toward dst.
      rebuild.push_back(dst);
      continue;
    }
    // |diff| == 1: the endpoint farther from dst routes across the link.
    const uint32_t farther = diff > 0 ? l.a : l.b;
    const uint16_t fport =
        static_cast<uint16_t>(diff > 0 ? l.port_a : l.port_b);
    net::Node& fn = *nodes_[farther];
    if (!fn.IsSwitch()) {
      // Hosts hold no routing table. A degree-1 host is a leaf nothing
      // routes through, so no switch table changes; a multi-homed host
      // losing a parent can shift distances for switches routing through
      // it — rebuild exactly.
      if (!up && adj_[farther].size() > 1) rebuild.push_back(dst);
      continue;
    }
    auto* sw = static_cast<net::SwitchNode*>(&fn);
    if (up) {
      patches.push_back(Patch{sw, dst, fport, /*add=*/true});
      continue;
    }
    const net::NextHopTable::Group g = sw->routes().Lookup(dst);
    const bool has_port =
        std::binary_search(g.ports, g.ports + g.size, fport);
    if (g.size >= 2 && has_port) {
      patches.push_back(Patch{sw, dst, fport, /*add=*/false});
    } else {
      // Last parent lost (or an unexpected table state): exact rebuild.
      rebuild.push_back(dst);
    }
  }

  l.up = up;
  nodes_[l.a]->port(l.port_a).SetLinkUp(up);
  nodes_[l.b]->port(l.port_b).SetLinkUp(up);

  // Beyond this bound incremental repair is no cheaper than one
  // from-scratch pass, so it degrades gracefully to the full rebuild.
  const size_t bound = std::max<size_t>(hosts_.size() / 2, 16);
  if (rebuild.size() > bound) {
    RecomputeRoutes();
  } else {
    for (const Patch& p : patches) {
      if (p.add) {
        p.sw->mutable_routes().AddPort(p.dst, p.port);
      } else {
        p.sw->mutable_routes().RemovePort(p.dst, p.port);
      }
    }
    RebuildDestinations(rebuild);
  }
  if (route_oracle_) VerifyRoutesAgainstOracle();
}

void Topology::RebuildDestinations(const std::vector<uint32_t>& dsts) {
  if (dsts.empty()) return;
  // Share BFS work exactly like RecomputeRoutes: destinations behind the
  // same attachment switch rebuild together (a whole pod losing its path
  // through a flapped core costs one BFS per rack, not one per host).
  std::vector<std::vector<uint32_t>> behind(nodes_.size());
  std::vector<uint32_t> group_order;
  for (const uint32_t dst : dsts) {
    const int64_t via = AttachmentSwitch(dst);
    if (via >= 0) {
      if (behind[static_cast<size_t>(via)].empty()) {
        group_order.push_back(static_cast<uint32_t>(via));
      }
      behind[static_cast<size_t>(via)].push_back(dst);
    } else if (adj_[dst].size() == 1 && !links_[adj_[dst].front().link].up) {
      // Sole NIC link down: unreachable from everywhere.
      for (net::SwitchNode* sw : switch_ptrs_) {
        sw->mutable_routes().AssignGroup(dst, net::NextHopTable::kNoGroup);
      }
    } else {
      RebuildDestination(dst);
    }
  }
  for (const uint32_t via : group_order) {
    RebuildDestinationsBehind(via, behind[via]);
  }
}

void Topology::VerifyRoutesAgainstOracle() {
  // Dense from-scratch recomputation (the seed algorithm, shared with
  // nothing above): one BFS per host, candidates re-derived directly.
  for (const uint32_t dst : hosts_) {
    const std::vector<int> dist = BfsDistances(dst);
    for (net::SwitchNode* sw : switch_ptrs_) {
      const uint32_t s = sw->id();
      std::vector<uint16_t> want;
      if (s != dst && dist[s] > 0) {
        for (const Edge& e : adj_[s]) {
          if (!links_[e.link].up) continue;
          if (dist[e.peer] >= 0 && dist[e.peer] == dist[s] - 1) {
            want.push_back(static_cast<uint16_t>(e.port));
          }
        }
      }
      if (want != sw->routes().PortsOf(dst)) {
        throw std::logic_error(
            "route oracle mismatch: switch " + sw->name() + " dst " +
            nodes_[dst]->name() + " has a different ECMP set than a dense "
            "recomputation");
      }
    }
  }
  for (net::SwitchNode* sw : switch_ptrs_) {
    if (!sw->routes().CheckConsistency()) {
      throw std::logic_error("next-hop table inconsistency on switch " +
                             sw->name());
    }
  }
}

int Topology::Distance(uint32_t from, uint32_t to) const {
  return BfsDistances(from)[to];
}

int Topology::PathHops(uint32_t src, uint32_t dst) const {
  return Distance(src, dst);
}

std::vector<size_t> Topology::ShortestPathLinks(uint32_t src,
                                                uint32_t dst) const {
  // Ideal-FCT/base-RTT queries describe the *designed* topology, ignoring
  // transient link failures: a flow whose last ACK lands just after a
  // failure partitions the fabric must normalize against the same
  // denominator as one completing just before it. (Walking live distances
  // here also used to loop forever on a partitioned graph — found by
  // fuzz_scenarios, pinned by topology_test.IdealFctStableAcrossLinkFlap.)
  const std::vector<int> dist = BfsDistances(dst, /*respect_link_state=*/false);
  assert(dist[src] >= 0 && "no path");
  std::vector<size_t> path;
  uint32_t n = src;
  while (n != dst) {
    bool advanced = false;
    for (const Edge& e : adj_[n]) {
      if (dist[e.peer] == dist[n] - 1) {
        path.push_back(e.link);
        n = e.peer;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;  // disconnected-by-construction: never loop
  }
  return path;
}

sim::TimePs Topology::LinkRttCost(int64_t bps, sim::TimePs delay) {
  const int data_bytes = net::kPayloadBytes + net::kDataHeaderBytes +
                         core::IntStack::kWorstCaseWireBytes;
  return 2 * delay +                                  // both directions
         sim::SerializationTime(data_bytes, bps) +    // data forward
         sim::SerializationTime(net::kAckHeaderBytes, bps);  // ack back
}

sim::TimePs Topology::BaseRttViaBfs(uint32_t src, uint32_t dst) const {
  sim::TimePs rtt = 0;
  for (size_t li : ShortestPathLinks(src, dst)) {
    const LinkSpec& l = links_[li];
    rtt += LinkRttCost(l.bps, l.delay);
  }
  return rtt;
}

sim::TimePs Topology::BaseRtt(uint32_t src, uint32_t dst) const {
  PathModel::Profile p;
  if (path_model_ != nullptr && path_model_->Links(src, dst, &p)) {
    sim::TimePs rtt = 0;
    for (int i = 0; i < p.num_segs; ++i) {
      rtt += p.segs[i].count * LinkRttCost(p.segs[i].bps, p.segs[i].delay);
    }
    return rtt;
  }
  return BaseRttViaBfs(src, dst);
}

sim::TimePs Topology::MaxBaseRtt() const {
  // Adopted-snapshot fast path: the exporting topology already measured it.
  if (max_base_rtt_cache_ >= 0) return max_base_rtt_cache_;
  if (path_model_ != nullptr) {
    uint32_t src = 0;
    uint32_t dst = 0;
    if (path_model_->MaxRttPair(&src, &dst)) return BaseRtt(src, dst);
    // Fall through to the exact sweep when the model declines.
  }
  // Exact over every host pair: one BFS per destination, then propagate the
  // first-parent path cost down the distance layers — cost[src] equals
  // BaseRtt(src, dst) because ShortestPathLinks walks the same first
  // adjacent parent at every step.
  sim::TimePs best = 0;
  std::vector<uint32_t> order(nodes_.size());
  std::vector<sim::TimePs> cost(nodes_.size());
  for (const uint32_t dst : hosts_) {
    const std::vector<int> dist =
        BfsDistances(dst, /*respect_link_state=*/false);
    order.clear();
    for (uint32_t n = 0; n < nodes_.size(); ++n) {
      if (dist[n] >= 0) order.push_back(n);
    }
    std::sort(order.begin(), order.end(),
              [&dist](uint32_t x, uint32_t y) { return dist[x] < dist[y]; });
    for (const uint32_t n : order) {
      if (dist[n] == 0) {
        cost[n] = 0;
        continue;
      }
      for (const Edge& e : adj_[n]) {
        if (dist[e.peer] == dist[n] - 1) {
          cost[n] = cost[e.peer] + LinkRttCost(links_[e.link].bps,
                                               links_[e.link].delay);
          break;
        }
      }
    }
    for (const uint32_t src : hosts_) {
      if (src != dst && dist[src] > 0) best = std::max(best, cost[src]);
    }
  }
  return best;
}

int64_t Topology::BottleneckBpsViaBfs(uint32_t src, uint32_t dst) const {
  int64_t bps = std::numeric_limits<int64_t>::max();
  for (size_t li : ShortestPathLinks(src, dst)) {
    bps = std::min(bps, links_[li].bps);
  }
  return bps;
}

int64_t Topology::BottleneckBps(uint32_t src, uint32_t dst) const {
  PathModel::Profile p;
  if (path_model_ != nullptr && path_model_->Links(src, dst, &p)) {
    int64_t bps = std::numeric_limits<int64_t>::max();
    for (int i = 0; i < p.num_segs; ++i) bps = std::min(bps, p.segs[i].bps);
    return bps;
  }
  return BottleneckBpsViaBfs(src, dst);
}

sim::TimePs Topology::IdealFct(uint32_t src, uint32_t dst,
                               uint64_t bytes) const {
  // Standalone transfer: all packets back-to-back at the bottleneck, plus one
  // base RTT (first byte propagation + last ACK). Header overhead uses the
  // INT-free header so the denominator is identical across schemes.
  const int64_t bottleneck = BottleneckBps(src, dst);
  const uint64_t mtu = net::kPayloadBytes;
  const uint64_t full = bytes / mtu;
  const uint64_t rem = bytes % mtu;
  uint64_t wire_bytes =
      full * (mtu + net::kDataHeaderBytes) +
      (rem > 0 ? rem + net::kDataHeaderBytes : 0);
  if (bytes == 0) wire_bytes = net::kDataHeaderBytes;
  return sim::SerializationTime(static_cast<int64_t>(wire_bytes),
                                bottleneck) +
         BaseRtt(src, dst);
}

size_t Topology::RoutingResidentBytes() const {
  size_t total = 0;
  for (const net::SwitchNode* sw : switch_ptrs_) {
    total += sw->routes().resident_bytes();
  }
  return total;
}

size_t Topology::RoutingExpandedPortEntries() const {
  size_t total = 0;
  for (const net::SwitchNode* sw : switch_ptrs_) {
    total += sw->routes().expanded_port_entries();
  }
  return total;
}

size_t Topology::RoutingGroups() const {
  size_t total = 0;
  for (const net::SwitchNode* sw : switch_ptrs_) {
    total += sw->routes().num_groups();
  }
  return total;
}

}  // namespace hpcc::topo
