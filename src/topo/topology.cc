#include "topo/topology.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <stdexcept>

#include "net/packet.h"

namespace hpcc::topo {

uint32_t Topology::AddHost(const host::HostConfig& config,
                           const std::string& name) {
  const auto id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(
      std::make_unique<host::HostNode>(simulator_, id, name, config));
  hosts_.push_back(id);
  adj_.emplace_back();
  return id;
}

uint32_t Topology::AddSwitch(const net::SwitchConfig& config,
                             const std::string& name) {
  const auto id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(
      std::make_unique<net::SwitchNode>(simulator_, id, name, config));
  switches_.push_back(id);
  adj_.emplace_back();
  return id;
}

void Topology::AddLink(uint32_t a, uint32_t b, int64_t bps,
                       sim::TimePs delay) {
  assert(!finalized_);
  net::Node& na = *nodes_[a];
  net::Node& nb = *nodes_[b];
  const int pa = na.AddPort(std::make_unique<net::Port>(&na, na.num_ports(),
                                                        bps, delay));
  const int pb = nb.AddPort(std::make_unique<net::Port>(&nb, nb.num_ports(),
                                                        bps, delay));
  na.port(pa).ConnectTo(&nb, pb);
  nb.port(pb).ConnectTo(&na, pa);
  const size_t link = links_.size();
  links_.push_back(LinkSpec{a, pa, b, pb, bps, delay});
  adj_[a].push_back(Edge{link, pa, b});
  adj_[b].push_back(Edge{link, pb, a});
}

host::HostNode& Topology::host(uint32_t id) {
  auto* h = dynamic_cast<host::HostNode*>(nodes_[id].get());
  if (h == nullptr) throw std::invalid_argument("node is not a host");
  return *h;
}

net::SwitchNode& Topology::switch_node(uint32_t id) {
  auto* s = dynamic_cast<net::SwitchNode*>(nodes_[id].get());
  if (s == nullptr) throw std::invalid_argument("node is not a switch");
  return *s;
}

std::vector<int> Topology::BfsDistances(uint32_t from,
                                        bool respect_link_state) const {
  std::vector<int> dist(nodes_.size(), -1);
  std::deque<uint32_t> q{from};
  dist[from] = 0;
  while (!q.empty()) {
    const uint32_t n = q.front();
    q.pop_front();
    for (const Edge& e : adj_[n]) {
      if (respect_link_state && !links_[e.link].up) continue;
      if (dist[e.peer] < 0) {
        dist[e.peer] = dist[n] + 1;
        q.push_back(e.peer);
      }
    }
  }
  return dist;
}

void Topology::RecomputeRoutes() {
  // Per-destination BFS: a switch's ECMP set toward dst is every port whose
  // peer is one hop closer to dst (over links that are up).
  std::vector<std::vector<std::vector<uint16_t>>> routes(nodes_.size());
  for (auto& r : routes) r.resize(nodes_.size());
  for (uint32_t dst : hosts_) {
    const std::vector<int> dist = BfsDistances(dst);
    for (uint32_t n = 0; n < nodes_.size(); ++n) {
      if (n == dst || dist[n] < 0) continue;
      for (const Edge& e : adj_[n]) {
        if (!links_[e.link].up) continue;
        if (dist[e.peer] >= 0 && dist[e.peer] == dist[n] - 1) {
          routes[n][dst].push_back(static_cast<uint16_t>(e.port));
        }
      }
    }
  }
  for (uint32_t s : switches_) {
    switch_node(s).SetRoutes(std::move(routes[s]));
  }
}

void Topology::Finalize() {
  assert(!finalized_);
  finalized_ = true;
  RecomputeRoutes();
  for (uint32_t s : switches_) {
    switch_node(s).FinishSetup();
  }
}

void Topology::SetLinkUp(size_t link_index, bool up) {
  LinkSpec& l = links_[link_index];
  if (l.up == up) return;
  l.up = up;
  nodes_[l.a]->port(l.port_a).SetLinkUp(up);
  nodes_[l.b]->port(l.port_b).SetLinkUp(up);
  RecomputeRoutes();
}

int Topology::Distance(uint32_t from, uint32_t to) const {
  return BfsDistances(from)[to];
}

int Topology::PathHops(uint32_t src, uint32_t dst) const {
  return Distance(src, dst);
}

std::vector<size_t> Topology::ShortestPathLinks(uint32_t src,
                                                uint32_t dst) const {
  // Ideal-FCT/base-RTT queries describe the *designed* topology, ignoring
  // transient link failures: a flow whose last ACK lands just after a
  // failure partitions the fabric must normalize against the same
  // denominator as one completing just before it. (Walking live distances
  // here also used to loop forever on a partitioned graph — found by
  // fuzz_scenarios, pinned by topology_test.IdealFctStableAcrossLinkFlap.)
  const std::vector<int> dist = BfsDistances(dst, /*respect_link_state=*/false);
  assert(dist[src] >= 0 && "no path");
  std::vector<size_t> path;
  uint32_t n = src;
  while (n != dst) {
    bool advanced = false;
    for (const Edge& e : adj_[n]) {
      if (dist[e.peer] == dist[n] - 1) {
        path.push_back(e.link);
        n = e.peer;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;  // disconnected-by-construction: never loop
  }
  return path;
}

sim::TimePs Topology::BaseRtt(uint32_t src, uint32_t dst) const {
  const std::vector<size_t> path = ShortestPathLinks(src, dst);
  const int data_bytes = net::kPayloadBytes + net::kDataHeaderBytes +
                         core::IntStack::kWorstCaseWireBytes;
  sim::TimePs rtt = 0;
  for (size_t li : path) {
    const LinkSpec& l = links_[li];
    rtt += 2 * l.delay;  // both directions
    rtt += sim::SerializationTime(data_bytes, l.bps);        // data forward
    rtt += sim::SerializationTime(net::kAckHeaderBytes, l.bps);  // ack back
  }
  return rtt;
}

sim::TimePs Topology::MaxBaseRtt() const {
  sim::TimePs best = 0;
  // The regular topologies we build are symmetric; sampling pairs against
  // host 0 and the farthest candidates is exact for them and cheap.
  for (uint32_t a : hosts_) {
    if (a == hosts_[0]) continue;
    best = std::max(best, BaseRtt(hosts_[0], a));
    best = std::max(best, BaseRtt(a, hosts_[0]));
  }
  return best == 0 && hosts_.size() >= 2
             ? BaseRtt(hosts_[0], hosts_[1])
             : best;
}

int64_t Topology::BottleneckBps(uint32_t src, uint32_t dst) const {
  int64_t bps = std::numeric_limits<int64_t>::max();
  for (size_t li : ShortestPathLinks(src, dst)) {
    bps = std::min(bps, links_[li].bps);
  }
  return bps;
}

sim::TimePs Topology::IdealFct(uint32_t src, uint32_t dst,
                               uint64_t bytes) const {
  // Standalone transfer: all packets back-to-back at the bottleneck, plus one
  // base RTT (first byte propagation + last ACK). Header overhead uses the
  // INT-free header so the denominator is identical across schemes.
  const int64_t bottleneck = BottleneckBps(src, dst);
  const uint64_t mtu = net::kPayloadBytes;
  const uint64_t full = bytes / mtu;
  const uint64_t rem = bytes % mtu;
  uint64_t wire_bytes =
      full * (mtu + net::kDataHeaderBytes) +
      (rem > 0 ? rem + net::kDataHeaderBytes : 0);
  if (bytes == 0) wire_bytes = net::kDataHeaderBytes;
  return sim::SerializationTime(static_cast<int64_t>(wire_bytes),
                                bottleneck) +
         BaseRtt(src, dst);
}

}  // namespace hpcc::topo
