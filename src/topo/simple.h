// Micro-benchmark topologies: star (single switch) and dumbbell.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "topo/topology.h"

namespace hpcc::topo {

struct StarOptions {
  int num_hosts = 17;               // e.g. 16 senders + 1 receiver (§5.4)
  int64_t host_bps = 100'000'000'000;
  sim::TimePs link_delay = sim::Us(1);
  host::HostConfig host;
  net::SwitchConfig sw;
};

struct StarTopology {
  std::unique_ptr<Topology> topo;
  std::vector<uint32_t> host_ids;
  uint32_t switch_id = 0;
};

// All hosts hang off one switch — the 16-to-1 incast fixture of §5.4 and the
// 2-to-1 fixture of Fig. 6.
StarTopology MakeStar(sim::Simulator* simulator, const StarOptions& options,
                      std::shared_ptr<const FabricSnapshot> snapshot = nullptr);

struct DumbbellOptions {
  int hosts_per_side = 2;
  int64_t host_bps = 100'000'000'000;
  int64_t trunk_bps = 100'000'000'000;
  sim::TimePs link_delay = sim::Us(1);
  host::HostConfig host;
  net::SwitchConfig sw;
};

struct DumbbellTopology {
  std::unique_ptr<Topology> topo;
  std::vector<uint32_t> left_hosts;
  std::vector<uint32_t> right_hosts;
  uint32_t left_switch = 0;
  uint32_t right_switch = 0;
};

// Two switches joined by one trunk; left/right host groups. The shared-trunk
// fixture for long-vs-short and fairness micro-benchmarks (Fig. 9).
DumbbellTopology MakeDumbbell(
    sim::Simulator* simulator, const DumbbellOptions& options,
    std::shared_ptr<const FabricSnapshot> snapshot = nullptr);

}  // namespace hpcc::topo
