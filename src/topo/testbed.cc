#include "topo/testbed.h"

namespace hpcc::topo {

TestbedTopology MakeTestbed(sim::Simulator* simulator,
                            const TestbedOptions& options,
                            std::shared_ptr<const FabricSnapshot> snapshot) {
  TestbedTopology out;
  out.topo = std::make_unique<Topology>(simulator);
  Topology& t = *out.topo;

  out.agg_id = t.AddSwitch(options.sw, "agg");
  for (int i = 0; i < 4; ++i) {
    const uint32_t tor = t.AddSwitch(options.sw, "tor" + std::to_string(i));
    out.tor_ids.push_back(tor);
    t.AddLink(tor, out.agg_id, options.fabric_bps, options.link_delay);
  }

  // Group A dual-homes to ToR0/ToR1, group B to ToR2/ToR3 (§5.1).
  for (int g = 0; g < 2; ++g) {
    for (int i = 0; i < options.servers_per_pair; ++i) {
      const uint32_t h = t.AddHost(
          options.host, "s" + std::to_string(g) + "_" + std::to_string(i));
      t.AddLink(h, out.tor_ids[2 * g], options.host_bps, options.link_delay);
      t.AddLink(h, out.tor_ids[2 * g + 1], options.host_bps,
                options.link_delay);
      out.host_ids.push_back(h);
    }
  }
  if (snapshot != nullptr) t.AdoptSnapshot(std::move(snapshot));
  t.Finalize();
  return out;
}

}  // namespace hpcc::topo
