#include "topo/simple.h"

namespace hpcc::topo {

StarTopology MakeStar(sim::Simulator* simulator, const StarOptions& options,
                      std::shared_ptr<const FabricSnapshot> snapshot) {
  StarTopology out;
  out.topo = std::make_unique<Topology>(simulator);
  out.switch_id = out.topo->AddSwitch(options.sw, "sw0");
  for (int i = 0; i < options.num_hosts; ++i) {
    const uint32_t h =
        out.topo->AddHost(options.host, "h" + std::to_string(i));
    out.topo->AddLink(h, out.switch_id, options.host_bps, options.link_delay);
    out.host_ids.push_back(h);
  }
  if (snapshot != nullptr) out.topo->AdoptSnapshot(std::move(snapshot));
  out.topo->Finalize();
  return out;
}

DumbbellTopology MakeDumbbell(sim::Simulator* simulator,
                              const DumbbellOptions& options,
                              std::shared_ptr<const FabricSnapshot> snapshot) {
  DumbbellTopology out;
  out.topo = std::make_unique<Topology>(simulator);
  out.left_switch = out.topo->AddSwitch(options.sw, "swL");
  out.right_switch = out.topo->AddSwitch(options.sw, "swR");
  out.topo->AddLink(out.left_switch, out.right_switch, options.trunk_bps,
                    options.link_delay);
  for (int i = 0; i < options.hosts_per_side; ++i) {
    const uint32_t l =
        out.topo->AddHost(options.host, "hl" + std::to_string(i));
    out.topo->AddLink(l, out.left_switch, options.host_bps,
                      options.link_delay);
    out.left_hosts.push_back(l);
    const uint32_t r =
        out.topo->AddHost(options.host, "hr" + std::to_string(i));
    out.topo->AddLink(r, out.right_switch, options.host_bps,
                      options.link_delay);
    out.right_hosts.push_back(r);
  }
  if (snapshot != nullptr) out.topo->AdoptSnapshot(std::move(snapshot));
  out.topo->Finalize();
  return out;
}

}  // namespace hpcc::topo
