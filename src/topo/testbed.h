// The paper's 32-server testbed PoD (§5.1): one Agg switch, four ToRs
// (100 Gbps uplinks), servers with two 25 Gbps NICs dual-homed to a ToR pair.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "topo/topology.h"

namespace hpcc::topo {

struct TestbedOptions {
  // Servers per ToR pair (16 in the paper => 32 total).
  int servers_per_pair = 16;
  int64_t host_bps = 25'000'000'000;
  int64_t fabric_bps = 100'000'000'000;
  sim::TimePs link_delay = sim::Us(1);
  host::HostConfig host;
  net::SwitchConfig sw;
};

struct TestbedTopology {
  std::unique_ptr<Topology> topo;
  std::vector<uint32_t> host_ids;   // group A first, then group B
  std::vector<uint32_t> tor_ids;    // ToR1..ToR4
  uint32_t agg_id = 0;
};

TestbedTopology MakeTestbed(
    sim::Simulator* simulator, const TestbedOptions& options,
    std::shared_ptr<const FabricSnapshot> snapshot = nullptr);

}  // namespace hpcc::topo
