// Chrome-trace-event / Perfetto JSON export of one simulation run.
//
// The emitted file loads directly in https://ui.perfetto.dev or
// chrome://tracing. Mapping (see docs/OBSERVABILITY.md):
//
//   pid 1 "scenario"  script events (link flaps, incasts, load phases) and
//                     monitor violations as instants
//   pid 2 "flows"     flow lifetimes as async spans (start -> FCT), binned
//                     into short/mid/long lanes, args carry size/scheme/
//                     slowdown
//   pid 3 "pfc"       PFC pause windows as complete events, one lane per
//                     paused (node, port)
//   pid 4 "queues"    busiest egress-queue depth counter tracks (kB)
//   pid 5 "rates"     per-flow goodput counter tracks (Gbps)
//   pid 6 "int"       INT flight recorder: echoed max qLen / hop-util
//
// Output is a deterministic function of the simulation run: byte-identical
// across --jobs and --fastpath on/off (tests/telemetry_test.cc).
#pragma once

#include <string>
#include <vector>

#include "check/invariant.h"

namespace hpcc::runner {
class Experiment;
struct ExperimentResult;
}
namespace hpcc::scenario {
struct ScenarioEvent;
}

namespace hpcc::obs {

class TelemetrySession;

struct TraceExportInputs {
  std::string label;  // run label (trace name metadata)
  runner::Experiment* experiment = nullptr;              // required
  const runner::ExperimentResult* result = nullptr;      // required
  const std::vector<scenario::ScenarioEvent>* events = nullptr;  // optional
  const std::vector<check::Violation>* violations = nullptr;     // optional
  const TelemetrySession* session = nullptr;                     // optional
};

// Builds the complete trace JSON ("traceEvents" array object) as a string.
std::string BuildTraceJson(const TraceExportInputs& in);

}  // namespace hpcc::obs
