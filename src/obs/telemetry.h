// Unified telemetry layer: counters, flight-recorder tracks and samplers.
//
// Everything here rides the existing check::NetHooks observation points —
// the hot path gains no new branches when telemetry is off (the per-node
// hook pointer stays null; micro/telemetry_overhead in tools/bench_report
// pins this). The layer splits into:
//
//   TelemetryConfig    scenario "telemetry" block / CLI overrides
//   TelemetryRecorder  an InvariantMonitor that only counts (never reports)
//   TelemetrySession   owns the recorder + periodic samplers for one run
//
// Determinism contract (tested by tests/telemetry_test.cc): everything the
// recorder and samplers collect — counter totals, sampled queue depths and
// flow rates, INT echoes — is identical across --jobs and --fastpath=on/off.
// Counter totals are order-independent sums over the same packet stream;
// sampled tracks read state (queue_bytes, snd_una) at fixed sim times, and
// that state is already pinned engine-equal by the byte-identical CSV
// contract. Engine-dependent data (events executed, train aborts, wall
// clock) is quarantined in the opt-in manifest "profile" section.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariant.h"
#include "sim/time.h"
#include "stats/timeseries.h"

namespace hpcc::runner {
class Experiment;
}

namespace hpcc::obs {

// Short stable token for a drop reason ("no_route", ...): manifest keys and
// CSV column suffixes.
const char* DropReasonToken(check::DropReason reason);

// Scenario "telemetry" block (see docs/SCENARIO_FORMAT.md). Defaults are
// chosen so that `--trace-out=FILE` alone produces a useful trace: flow
// spans, scenario events, PFC windows, the 8 busiest queue tracks and the
// first 8 flow-rate tracks.
struct TelemetryConfig {
  bool manifest = false;  // write <out>.manifest.json per run
  bool trace = false;     // write a Chrome-trace-event / Perfetto JSON
  // Include engine-dependent extras (events executed, train aborts, wall
  // clock) in the manifest "profile" section. Off by default because it
  // breaks byte-identity across --fastpath on/off.
  bool profile = false;

  // Queue-depth counter tracks: the `queue_tracks` busiest data-priority
  // egress queues (by peak depth), sampled every `queue_sample_us`, each
  // capped at `queue_track_points` (stride-doubling downsample beyond).
  int queue_tracks = 8;
  int queue_track_points = 256;
  double queue_sample_us = 10.0;

  // Per-flow rate tracks (delta snd_una, same idea as stats::GoodputSampler)
  // for the first `flow_tracks` flows by creation order.
  int flow_tracks = 8;
  int flow_track_points = 512;
  double flow_sample_us = 10.0;

  // INT flight recorder: per-flow max qLen / max hop-utilization tracks
  // rebuilt from echoed IntStacks for flow ids 1..int_tracks. Off by
  // default — only meaningful for INT-carrying schemes.
  int int_tracks = 0;
  int int_track_points = 512;

  bool enabled() const { return manifest || trace; }
  bool operator==(const TelemetryConfig&) const = default;
};

// Order-independent totals accumulated from the hook stream.
struct TelemetryCounters {
  uint64_t enqueued_packets = 0;
  uint64_t enqueued_bytes = 0;
  uint64_t dequeued_packets = 0;
  uint64_t dequeued_bytes = 0;
  uint64_t drops_by_reason[check::kNumDropReasons] = {};
  uint64_t pause_on = 0;   // pause transitions (off -> paused)
  uint64_t pause_off = 0;  // resume transitions
  uint64_t cc_updates = 0;
  uint64_t int_echoes = 0;
};

// One bounded sampled track, labeled for trace export.
struct TelemetryTrack {
  std::string name;        // e.g. "q sw17 p3" or "flow 4"
  std::string unit;        // "kB", "Gbps", ...
  stats::TimeSeries series;
};

// A monitor that only counts. Never files violations, so it is safe to run
// without --check; the registry fan-out gives it the same hook stream the
// invariant monitors see.
class TelemetryRecorder final : public check::InvariantMonitor {
 public:
  explicit TelemetryRecorder(const TelemetryConfig& cfg);

  std::string name() const override { return "telemetry"; }
  unsigned interests() const override;

  void OnEnqueue(uint32_t node, int port, const net::Packet& pkt,
                 int64_t queue_bytes_after) override;
  void OnDequeue(uint32_t node, int port, const net::Packet& pkt,
                 int64_t queue_bytes_after) override;
  void OnDequeueBurst(uint32_t node, int port, const check::DequeueRecord* recs,
                      size_t n) override;
  void OnDrop(uint32_t node, const net::Packet& pkt,
              check::DropReason reason) override;
  void OnPauseChange(uint32_t node, int port, int priority, bool paused,
                     sim::TimePs now) override;
  void OnCcUpdate(uint64_t flow_id, int64_t window_bytes, int64_t rate_bps,
                  sim::TimePs now) override;
  void OnIntEcho(uint64_t flow_id, const core::IntStack& stack,
                 sim::TimePs now) override;

  const TelemetryCounters& counters() const { return counters_; }
  // Warm restore: seeds the totals with a checkpoint's counter baseline so
  // the hook stream observed after the restore adds onto the pre-checkpoint
  // traffic's contribution.
  void set_counters(const TelemetryCounters& c) { counters_ = c; }
  // INT flight-recorder tracks (empty unless trace && int_tracks > 0).
  const std::vector<TelemetryTrack>& int_qlen_tracks() const {
    return int_qlen_;
  }
  const std::vector<TelemetryTrack>& int_util_tracks() const {
    return int_util_;
  }

 private:
  // Per-(tracked flow, hop) last INT sample, for tx-byte-delta utilization.
  struct HopState {
    sim::TimePs ts = -1;
    uint64_t tx_bytes = 0;
  };

  TelemetryConfig cfg_;
  TelemetryCounters counters_;
  std::vector<TelemetryTrack> int_qlen_;
  std::vector<TelemetryTrack> int_util_;
  std::vector<HopState> hop_state_;  // int_tracks * core::kMaxIntHops
};

// Owns the telemetry machinery for one experiment run: adds a
// TelemetryRecorder to the registry (which owns it) and, when tracks are
// requested, schedules fixed-interval samplers for queue depth and per-flow
// rate. Samplers are read-only: a run with telemetry on produces the exact
// CSV a run with telemetry off does.
class TelemetrySession {
 public:
  TelemetrySession(const TelemetryConfig& cfg, check::MonitorRegistry* registry,
                   runner::Experiment* experiment);
  // Sharded variant: one recorder per lane registry. Counter totals are
  // summed over the lanes by counters(); sampled tracks require trace mode,
  // which forces shards=1, so the samplers only ever run single-sim.
  TelemetrySession(const TelemetryConfig& cfg,
                   const std::vector<check::MonitorRegistry*>& registries,
                   runner::Experiment* experiment);

  // Schedules the samplers (must be called before Experiment::Run). Sampling
  // covers [0, duration * (1 + drain_factor)].
  void Start();

  const TelemetryConfig& config() const { return cfg_; }
  const TelemetryRecorder& recorder() const { return *recorder_; }
  // Counter totals over every lane recorder (== recorder().counters() on a
  // single-registry session). Plain sums, so the aggregate is byte-equal to
  // the single-sim totals whatever the shard count.
  TelemetryCounters counters() const;
  // Warm restore (single-lane sessions only — warm checkpoints force
  // shards=1): seeds the recorder with the checkpoint's counter baseline.
  void RestoreCounters(const TelemetryCounters& c) {
    recorder_->set_counters(c);
  }

  // The `queue_tracks` busiest sampled queues (peak depth desc, then node,
  // port asc); empty tracks (never above zero) are skipped.
  std::vector<TelemetryTrack> TopQueueTracks() const;
  const std::vector<TelemetryTrack>& flow_tracks() const {
    return flow_tracks_;
  }

 private:
  struct QueueTrack {
    uint32_t node = 0;
    int port = 0;
    int64_t max_bytes = 0;
    stats::TimeSeries series;
  };
  struct FlowTrack {
    uint64_t flow_id = 0;
    uint64_t last_acked = 0;
    const void* flow = nullptr;  // host::Flow*, opaque here
  };

  void SampleQueues();
  void SampleFlows();

  TelemetryConfig cfg_;
  runner::Experiment* experiment_;
  TelemetryRecorder* recorder_;  // owned by the (first) registry
  std::vector<TelemetryRecorder*> recorders_;  // one per lane registry
  sim::TimePs until_ = 0;
  sim::TimePs queue_interval_ = 0;
  sim::TimePs flow_interval_ = 0;
  std::vector<QueueTrack> queue_tracks_;   // one per data-priority queue
  std::vector<FlowTrack> flow_states_;
  std::vector<TelemetryTrack> flow_tracks_;
};

}  // namespace hpcc::obs
