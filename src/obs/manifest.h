// Deterministic per-run manifest: config echo, counter tree, metrics,
// violation summary and trace hash as one machine-readable JSON document.
//
// The default manifest is a pure function of the simulation run — it is
// byte-identical across --jobs and --fastpath on/off (the same contract the
// CSVs honor; tests/telemetry_test.cc pins it). Engine- and wall-clock-
// dependent data (events executed, train aborts, phase timers) only appears
// when TelemetryConfig::profile is set, in a clearly-marked "profile"
// section. Schema documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "check/invariant.h"
#include "scenario/json.h"

namespace hpcc::runner {
class Experiment;
struct ExperimentResult;
}
namespace hpcc::scenario {
struct Scenario;
}

namespace hpcc::obs {

struct PhaseTimers;
class TelemetrySession;
struct TelemetryConfig;

struct ManifestInputs {
  std::string label;
  std::vector<std::pair<std::string, std::string>> params;  // sweep axes
  const scenario::Scenario* scenario = nullptr;        // config echo
  const TelemetryConfig* telemetry = nullptr;          // effective config
  runner::Experiment* experiment = nullptr;            // required
  const runner::ExperimentResult* result = nullptr;    // required
  const TelemetrySession* session = nullptr;           // hook counters
  bool checked = false;
  const std::vector<check::Violation>* violations = nullptr;
  size_t violation_count = 0;
  const PhaseTimers* phases = nullptr;  // profile section only
  // Sweep journal ("sweep" section, emitted when csv_cells is set): grid
  // coordinates, attempt number, final status and the formatted CSV cells
  // of this point. A later --resume invocation validates and replays it
  // instead of re-simulating the point.
  size_t sweep_index = 0;
  size_t sweep_count = 1;
  int attempt = 0;
  std::string status;
  const std::vector<std::pair<std::string, std::string>>* csv_cells = nullptr;
};

// Canonical JSON form of a TelemetryConfig (every key, resolved values) —
// the scenario "telemetry" block and the manifest echo share it.
scenario::Json TelemetryConfigToJson(const TelemetryConfig& t);

// Builds the manifest document. Serialize with .Dump(2).
scenario::Json BuildManifest(const ManifestInputs& in);

// Writes `content` to `path` atomically (temp file + rename): a concurrent
// reader — notably the sweep resume journal scan — never observes a
// half-written file, even across a SIGKILL mid-write. Returns false on any
// I/O failure.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace hpcc::obs
