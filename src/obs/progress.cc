#include "obs/progress.h"

#include <cstdio>

namespace hpcc::obs {

ProgressMeter::ProgressMeter(size_t total_jobs)
    : total_(total_jobs), start_(std::chrono::steady_clock::now()) {}

void ProgressMeter::JobDone(uint64_t events_executed, double sim_time_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  ++done_;
  events_ += events_executed;
  sim_ms_ += sim_time_ms;
  Paint(false);
}

void ProgressMeter::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  Paint(true);
}

void ProgressMeter::Paint(bool final_line) {
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  const double safe = elapsed > 1e-9 ? elapsed : 1e-9;
  const double ev_per_s = static_cast<double>(events_) / safe;
  const double sim_ms_per_s = sim_ms_ / safe;
  char eta[32] = "--:--";
  if (done_ > 0 && done_ < total_) {
    const double remain = elapsed / static_cast<double>(done_) *
                          static_cast<double>(total_ - done_);
    std::snprintf(eta, sizeof(eta), "%d:%02d",
                  static_cast<int>(remain) / 60,
                  static_cast<int>(remain) % 60);
  }
  if (final_line) {
    std::fprintf(stderr,
                 "\r[progress] %zu/%zu jobs  %.2fM events/s  "
                 "%.3f sim-ms/s  %.1fs elapsed          \n",
                 done_, total_, ev_per_s / 1e6, sim_ms_per_s, elapsed);
  } else {
    std::fprintf(stderr,
                 "\r[progress] %zu/%zu jobs  %.2fM events/s  "
                 "%.3f sim-ms/s  ETA %s   ",
                 done_, total_, ev_per_s / 1e6, sim_ms_per_s, eta);
  }
  std::fflush(stderr);
}

}  // namespace hpcc::obs
