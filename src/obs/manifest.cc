#include "obs/manifest.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/progress.h"
#include "obs/telemetry.h"
#include "runner/experiment.h"
#include "scenario/scenario.h"
#include "sim/time.h"

namespace hpcc::obs {
namespace {

scenario::Json Num(double v) { return scenario::Json::MakeNumber(v); }
// Distribution metrics are NaN when no samples were collected; JSON has no
// NaN, so emit null (mirrors the empty CSV cell).
scenario::Json NumOrNull(double v) {
  return std::isnan(v) ? scenario::Json() : scenario::Json::MakeNumber(v);
}
scenario::Json NumU(uint64_t v) {
  return scenario::Json::MakeNumber(static_cast<double>(v));
}
scenario::Json Str(std::string v) {
  return scenario::Json::MakeString(std::move(v));
}

std::string HashHex(uint64_t h) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

scenario::Json TelemetryConfigToJson(const TelemetryConfig& t) {
  scenario::Json o = scenario::Json::MakeObject();
  o.Set("manifest", scenario::Json::MakeBool(t.manifest));
  o.Set("trace", scenario::Json::MakeBool(t.trace));
  o.Set("profile", scenario::Json::MakeBool(t.profile));
  o.Set("queue_tracks", Num(t.queue_tracks));
  o.Set("queue_track_points", Num(t.queue_track_points));
  o.Set("queue_sample_us", Num(t.queue_sample_us));
  o.Set("flow_tracks", Num(t.flow_tracks));
  o.Set("flow_track_points", Num(t.flow_track_points));
  o.Set("flow_sample_us", Num(t.flow_sample_us));
  o.Set("int_tracks", Num(t.int_tracks));
  o.Set("int_track_points", Num(t.int_track_points));
  return o;
}

scenario::Json BuildManifest(const ManifestInputs& in) {
  const runner::ExperimentResult& res = *in.result;
  scenario::Json m = scenario::Json::MakeObject();
  m.Set("schema", Str("hpccsim-manifest-v1"));
  m.Set("label", Str(in.label));
  if (!in.params.empty()) {
    scenario::Json p = scenario::Json::MakeObject();
    for (const auto& [key, value] : in.params) p.Set(key, Str(value));
    m.Set("params", p);
  }
  // CI exports the commit under HPCC_GIT_REV (same value for every job of a
  // sweep, so byte-identity across jobs/fastpath holds).
  if (const char* rev = std::getenv("HPCC_GIT_REV")) {
    m.Set("git_rev", Str(rev));
  }
  if (in.scenario) m.Set("scenario", scenario::ScenarioToJson(*in.scenario));
  if (in.telemetry) m.Set("telemetry", TelemetryConfigToJson(*in.telemetry));

  // -- warm-start provenance ----------------------------------------------
  // Purely scenario-derived (which fabric/checkpoint cache keys this run
  // maps to), so the bytes are identical whether the run actually went warm
  // or fell back to cold — the warm-vs-cold byte-compare depends on that.
  if (in.scenario && in.scenario->warm_until > 0) {
    scenario::Json snap = scenario::Json::MakeObject();
    snap.Set("fabric_signature",
             Str(HashHex(scenario::FabricSignature(*in.scenario))));
    snap.Set("warm_fingerprint",
             Str(HashHex(scenario::WarmFingerprint(*in.scenario))));
    snap.Set("until_us", Num(sim::ToUs(in.scenario->warm_until)));
    m.Set("snapshot", snap);
  }

  // -- counter tree -------------------------------------------------------
  scenario::Json counters = scenario::Json::MakeObject();
  {
    scenario::Json flows = scenario::Json::MakeObject();
    flows.Set("created", NumU(res.flows_created));
    flows.Set("completed", NumU(res.flows_completed));
    flows.Set("failed", NumU(res.flows_failed));
    flows.Set("retx_timeouts", NumU(res.retx_timeouts));
    counters.Set("flows", flows);

    scenario::Json packets = scenario::Json::MakeObject();
    packets.Set("forwarded", NumU(res.packets_forwarded));
    scenario::Json drops = scenario::Json::MakeObject();
    drops.Set("total", NumU(res.dropped_packets));
    for (int i = 0; i < check::kNumDropReasons; ++i) {
      drops.Set(DropReasonToken(static_cast<check::DropReason>(i)),
                NumU(res.dropped_by_reason[i]));
    }
    scenario::Json pfc = scenario::Json::MakeObject();
    pfc.Set("pause_events", NumU(res.pause_events));
    pfc.Set("pause_time_pct", Num(res.pause_time_fraction * 100));

    if (in.session) {
      const TelemetryCounters c = in.session->counters();
      packets.Set("enqueued", NumU(c.enqueued_packets));
      packets.Set("dequeued", NumU(c.dequeued_packets));
      packets.Set("enqueued_bytes", NumU(c.enqueued_bytes));
      packets.Set("dequeued_bytes", NumU(c.dequeued_bytes));
      pfc.Set("pause_on", NumU(c.pause_on));
      pfc.Set("pause_off", NumU(c.pause_off));
      scenario::Json cc = scenario::Json::MakeObject();
      cc.Set("updates", NumU(c.cc_updates));
      counters.Set("cc", cc);
      scenario::Json intc = scenario::Json::MakeObject();
      intc.Set("echoes", NumU(c.int_echoes));
      counters.Set("int", intc);
    }
    counters.Set("packets", packets);
    counters.Set("drops", drops);
    counters.Set("pfc", pfc);

    // Hybrid fluid-engine accounting, present only when the run carried
    // fluid flows (per-reason: every fluid flow is also folded into
    // counters.flows, so the totals stay engine-inclusive).
    if (in.experiment != nullptr &&
        in.experiment->config().hybrid.enabled) {
      scenario::Json fluid = scenario::Json::MakeObject();
      fluid.Set("flows_admitted", NumU(res.fluid_flows_created));
      fluid.Set("flows_completed", NumU(res.fluid_flows_completed));
      fluid.Set("ticks", NumU(res.fluid_ticks));
      fluid.Set("coupled_links", NumU(res.fluid_coupled_links));
      fluid.Set("delivered_bytes", NumU(res.fluid_delivered_bytes));
      fluid.Set("peak_queue_bytes",
                NumU(static_cast<uint64_t>(
                    res.fluid_peak_queue_bytes < 0
                        ? 0
                        : res.fluid_peak_queue_bytes)));
      counters.Set("fluid", fluid);
    }
  }
  m.Set("counters", counters);

  // -- CSV-mirror metrics -------------------------------------------------
  {
    scenario::Json metrics = scenario::Json::MakeObject();
    const stats::PercentileTracker& slow = res.fct->overall();
    metrics.Set("slowdown_p50", NumOrNull(slow.Percentile(50)));
    metrics.Set("slowdown_p95", NumOrNull(slow.Percentile(95)));
    metrics.Set("slowdown_p99", NumOrNull(slow.Percentile(99)));
    metrics.Set("short_fct_p95_us",
                NumOrNull(res.short_fct_us.Percentile(95)));
    metrics.Set("queue_p50_kb",
                NumOrNull(res.queue_dist.Percentile(50) / 1e3));
    metrics.Set("queue_p99_kb",
                NumOrNull(res.queue_dist.Percentile(99) / 1e3));
    metrics.Set("queue_max_kb",
                Num(static_cast<double>(res.max_queue_bytes) / 1e3));
    metrics.Set("sim_time_ms", Num(sim::ToMs(res.sim_time)));
    metrics.Set("base_rtt_us", Num(sim::ToUs(res.base_rtt)));
    m.Set("metrics", metrics);
  }

  // -- invariant-monitor summary ------------------------------------------
  {
    scenario::Json v = scenario::Json::MakeObject();
    v.Set("checked", scenario::Json::MakeBool(in.checked));
    v.Set("count", NumU(in.violation_count));
    if (in.violations && !in.violations->empty()) {
      scenario::Json items = scenario::Json::MakeArray();
      for (const check::Violation& viol : *in.violations) {
        items.Append(Str(viol.Format()));
      }
      v.Set("items", items);
    }
    m.Set("violations", v);
  }

  m.Set("trace_hash", Str(HashHex(res.trace_hash)));

  // -- sweep journal (resume support) -------------------------------------
  // Deterministic for clean runs (attempt 0, cells formatted from the
  // deterministic metrics), so the jobs/fastpath byte-identity contract
  // still holds.
  if (in.csv_cells != nullptr) {
    scenario::Json sweep = scenario::Json::MakeObject();
    sweep.Set("index", NumU(in.sweep_index));
    sweep.Set("count", NumU(in.sweep_count));
    sweep.Set("attempt", Num(in.attempt));
    sweep.Set("status", Str(in.status));
    scenario::Json cells = scenario::Json::MakeObject();
    for (const auto& [name, value] : *in.csv_cells) cells.Set(name, Str(value));
    sweep.Set("cells", cells);
    m.Set("sweep", sweep);
  }

  // -- opt-in, engine/machine-dependent -----------------------------------
  if (in.telemetry && in.telemetry->profile) {
    scenario::Json prof = scenario::Json::MakeObject();
    prof.Set("engine", Str(in.experiment->config().fast_path
                               ? "trains"
                               : "reference"));
    prof.Set("events_executed", NumU(res.events_executed));
    prof.Set("train_aborts", NumU(res.train_aborts));
    if (in.phases) {
      scenario::Json wall = scenario::Json::MakeObject();
      wall.Set("build_s", Num(in.phases->build_s));
      wall.Set("routes_s", Num(in.phases->routes_s));
      wall.Set("run_s", Num(in.phases->run_s));
      wall.Set("aggregate_s", Num(in.phases->aggregate_s));
      prof.Set("wall", wall);
    }
    m.Set("profile", prof);
  }
  return m;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  // Temp + rename: readers (the sweep resume journal probe) either see the
  // previous complete file or the new complete file, never a torn write.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  const size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (n != content.size() || !closed ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace hpcc::obs
