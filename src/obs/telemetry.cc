#include "obs/telemetry.h"

#include <algorithm>

#include "core/int_header.h"
#include "host/flow.h"
#include "net/packet.h"
#include "net/switch_node.h"
#include "runner/experiment.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace hpcc::obs {

const char* DropReasonToken(check::DropReason reason) {
  switch (reason) {
    case check::DropReason::kNoRoute: return "no_route";
    case check::DropReason::kBufferFull: return "buffer_full";
    case check::DropReason::kEgressThreshold: return "egress_threshold";
    case check::DropReason::kCorrupt: return "corrupt";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// TelemetryRecorder

TelemetryRecorder::TelemetryRecorder(const TelemetryConfig& cfg) : cfg_(cfg) {
  const int n = (cfg.trace && cfg.int_tracks > 0) ? cfg.int_tracks : 0;
  int_qlen_.resize(n);
  int_util_.resize(n);
  for (int i = 0; i < n; ++i) {
    const std::string id = std::to_string(i + 1);
    int_qlen_[i].name = "int f" + id + " qlen";
    int_qlen_[i].unit = "kB";
    int_qlen_[i].series.set_max_points(cfg.int_track_points);
    int_util_[i].name = "int f" + id + " util";
    int_util_[i].unit = "frac";
    int_util_[i].series.set_max_points(cfg.int_track_points);
  }
  hop_state_.resize(static_cast<size_t>(n) * core::kMaxIntHops);
}

unsigned TelemetryRecorder::interests() const {
  return kEnqueue | kDequeue | kDrop | kPause | kCcUpdate | kIntEcho;
}

void TelemetryRecorder::OnEnqueue(uint32_t, int, const net::Packet& pkt,
                                  int64_t) {
  ++counters_.enqueued_packets;
  counters_.enqueued_bytes += pkt.size_bytes();
}

void TelemetryRecorder::OnDequeue(uint32_t, int, const net::Packet& pkt,
                                  int64_t) {
  ++counters_.dequeued_packets;
  counters_.dequeued_bytes += pkt.size_bytes();
}

void TelemetryRecorder::OnDequeueBurst(uint32_t, int,
                                       const check::DequeueRecord* recs,
                                       size_t n) {
  counters_.dequeued_packets += n;
  for (size_t i = 0; i < n; ++i) {
    counters_.dequeued_bytes += recs[i].pkt->size_bytes();
  }
}

void TelemetryRecorder::OnDrop(uint32_t, const net::Packet&,
                               check::DropReason reason) {
  const int idx = static_cast<int>(reason);
  if (idx >= 0 && idx < check::kNumDropReasons) {
    ++counters_.drops_by_reason[idx];
  }
}

void TelemetryRecorder::OnPauseChange(uint32_t, int, int, bool paused,
                                      sim::TimePs) {
  if (paused) {
    ++counters_.pause_on;
  } else {
    ++counters_.pause_off;
  }
}

void TelemetryRecorder::OnCcUpdate(uint64_t, int64_t, int64_t, sim::TimePs) {
  ++counters_.cc_updates;
}

void TelemetryRecorder::OnIntEcho(uint64_t flow_id, const core::IntStack& stack,
                                  sim::TimePs now) {
  ++counters_.int_echoes;
  if (int_qlen_.empty()) return;
  // Flow ids are assigned 1.. in creation order, so ids 1..int_tracks are
  // the first flows — a stable flight-recorder selection.
  if (flow_id < 1 || flow_id > int_qlen_.size()) return;
  const size_t idx = static_cast<size_t>(flow_id - 1);
  int64_t max_qlen = 0;
  double max_util = 0;
  bool have_util = false;
  for (int h = 0; h < stack.n_hops(); ++h) {
    const core::IntHop& hop = stack.hop(h);
    max_qlen = std::max(max_qlen, hop.qlen_bytes);
    HopState& hs = hop_state_[idx * core::kMaxIntHops + h];
    if (hs.ts >= 0 && hop.ts > hs.ts && hop.tx_bytes >= hs.tx_bytes &&
        hop.bandwidth_bps > 0) {
      const double dt = sim::ToSec(hop.ts - hs.ts);
      const double bps =
          static_cast<double>(hop.tx_bytes - hs.tx_bytes) * 8.0 / dt;
      max_util = std::max(max_util, bps / hop.bandwidth_bps);
      have_util = true;
    }
    hs.ts = hop.ts;
    hs.tx_bytes = hop.tx_bytes;
  }
  int_qlen_[idx].series.Add(now, static_cast<double>(max_qlen) / 1000.0);
  if (have_util) int_util_[idx].series.Add(now, max_util);
}

// ---------------------------------------------------------------------------
// TelemetrySession

TelemetrySession::TelemetrySession(const TelemetryConfig& cfg,
                                   check::MonitorRegistry* registry,
                                   runner::Experiment* experiment)
    : TelemetrySession(cfg, std::vector<check::MonitorRegistry*>{registry},
                       experiment) {}

TelemetrySession::TelemetrySession(
    const TelemetryConfig& cfg,
    const std::vector<check::MonitorRegistry*>& registries,
    runner::Experiment* experiment)
    : cfg_(cfg), experiment_(experiment) {
  for (check::MonitorRegistry* registry : registries) {
    recorders_.push_back(static_cast<TelemetryRecorder*>(
        registry->Add(std::make_unique<TelemetryRecorder>(cfg))));
  }
  recorder_ = recorders_.front();
}

TelemetryCounters TelemetrySession::counters() const {
  TelemetryCounters total;
  for (const TelemetryRecorder* r : recorders_) {
    const TelemetryCounters& c = r->counters();
    total.enqueued_packets += c.enqueued_packets;
    total.enqueued_bytes += c.enqueued_bytes;
    total.dequeued_packets += c.dequeued_packets;
    total.dequeued_bytes += c.dequeued_bytes;
    for (int i = 0; i < check::kNumDropReasons; ++i) {
      total.drops_by_reason[i] += c.drops_by_reason[i];
    }
    total.pause_on += c.pause_on;
    total.pause_off += c.pause_off;
    total.cc_updates += c.cc_updates;
    total.int_echoes += c.int_echoes;
  }
  return total;
}

void TelemetrySession::Start() {
  const runner::ExperimentConfig& c = experiment_->config();
  // Cover the drain window too — that is where incast queues empty out.
  until_ = c.duration +
           static_cast<sim::TimePs>(c.drain_factor *
                                    static_cast<double>(c.duration));
  if (!cfg_.trace) return;
  sim::Simulator& sim = experiment_->simulator();
  if (cfg_.queue_tracks > 0 && cfg_.queue_sample_us > 0) {
    queue_interval_ = std::max<sim::TimePs>(
        1, static_cast<sim::TimePs>(cfg_.queue_sample_us * sim::kPsPerUs));
    topo::Topology& topo = experiment_->topology();
    for (uint32_t id : topo.switches()) {
      const net::Node& node = topo.node(id);
      for (int p = 0; p < node.num_ports(); ++p) {
        QueueTrack qt;
        qt.node = id;
        qt.port = p;
        qt.series.set_max_points(cfg_.queue_track_points);
        queue_tracks_.push_back(std::move(qt));
      }
    }
    sim.ScheduleIn(queue_interval_, [this] { SampleQueues(); });
  }
  if (cfg_.flow_tracks > 0 && cfg_.flow_sample_us > 0) {
    flow_interval_ = std::max<sim::TimePs>(
        1, static_cast<sim::TimePs>(cfg_.flow_sample_us * sim::kPsPerUs));
    sim.ScheduleIn(flow_interval_, [this] { SampleFlows(); });
  }
}

void TelemetrySession::SampleQueues() {
  sim::Simulator& sim = experiment_->simulator();
  const sim::TimePs now = sim.now();
  topo::Topology& topo = experiment_->topology();
  for (QueueTrack& qt : queue_tracks_) {
    const int64_t q = topo.node(qt.node).port(qt.port).queue_bytes(
        net::kDataPriority);
    // Idle ports stay pointless (most of a big fabric never queues); the
    // first nonzero sample retroactively adds a zero so ramps render.
    if (q == 0 && qt.series.empty()) continue;
    if (qt.series.empty() && now > queue_interval_) {
      qt.series.Add(now - queue_interval_, 0);
    }
    qt.max_bytes = std::max(qt.max_bytes, q);
    qt.series.Add(now, static_cast<double>(q) / 1000.0);
  }
  if (now + queue_interval_ <= until_) {
    sim.ScheduleIn(queue_interval_, [this] { SampleQueues(); });
  }
}

void TelemetrySession::SampleFlows() {
  sim::Simulator& sim = experiment_->simulator();
  const sim::TimePs now = sim.now();
  const auto& flows = experiment_->flows();
  // Adopt newly created flows (creation order) until the track budget fills.
  while (flow_states_.size() < flows.size() &&
         flow_states_.size() < static_cast<size_t>(cfg_.flow_tracks)) {
    const host::Flow* f = flows[flow_states_.size()];
    FlowTrack ft;
    ft.flow_id = f->spec().id;
    ft.last_acked = f->snd_una;
    ft.flow = f;
    flow_states_.push_back(ft);
    TelemetryTrack t;
    t.name = "flow " + std::to_string(f->spec().id);
    t.unit = "Gbps";
    t.series.set_max_points(cfg_.flow_track_points);
    flow_tracks_.push_back(std::move(t));
  }
  const double interval_sec = sim::ToSec(flow_interval_);
  for (size_t i = 0; i < flow_states_.size(); ++i) {
    FlowTrack& ft = flow_states_[i];
    const host::Flow* f = static_cast<const host::Flow*>(ft.flow);
    const uint64_t acked = std::min(f->snd_una, f->spec().size_bytes);
    const double gbps = static_cast<double>(acked - ft.last_acked) * 8.0 /
                        interval_sec / 1e9;
    ft.last_acked = acked;
    stats::TimeSeries& s = flow_tracks_[i].series;
    // Suppress flat zero tails after completion (and before first byte).
    if (gbps == 0 && (f->done || s.empty())) continue;
    s.Add(now, gbps);
  }
  if (now + flow_interval_ <= until_) {
    sim.ScheduleIn(flow_interval_, [this] { SampleFlows(); });
  }
}

std::vector<TelemetryTrack> TelemetrySession::TopQueueTracks() const {
  std::vector<const QueueTrack*> active;
  for (const QueueTrack& qt : queue_tracks_) {
    if (qt.max_bytes > 0 && !qt.series.empty()) active.push_back(&qt);
  }
  std::sort(active.begin(), active.end(),
            [](const QueueTrack* a, const QueueTrack* b) {
              if (a->max_bytes != b->max_bytes)
                return a->max_bytes > b->max_bytes;
              if (a->node != b->node) return a->node < b->node;
              return a->port < b->port;
            });
  if (active.size() > static_cast<size_t>(cfg_.queue_tracks)) {
    active.resize(cfg_.queue_tracks);
  }
  std::vector<TelemetryTrack> out;
  out.reserve(active.size());
  for (const QueueTrack* qt : active) {
    TelemetryTrack t;
    t.name = "q sw" + std::to_string(qt->node) + " p" +
             std::to_string(qt->port);
    t.unit = "kB";
    t.series = qt->series;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace hpcc::obs
