// Runner self-profiling (wall-clock phase timers) and live sweep progress.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace hpcc::obs {

// Wall-clock phase timers for one run. Engine- and machine-dependent, so
// they only ever appear in the manifest's opt-in "profile" section, never
// in the deterministic default output.
struct PhaseTimers {
  double build_s = 0;      // Experiment construction: topology + host wiring
  double routes_s = 0;     // route (re)computation, included in build/run
  double run_s = 0;        // event loop, including the drain window
  double aggregate_s = 0;  // metric collection + telemetry file writes
};

// RAII stopwatch accumulating elapsed wall seconds into a slot.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* slot)
      : slot_(slot), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    *slot_ += std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* slot_;
  std::chrono::steady_clock::time_point start_;
};

// A single `\r`-rewritten stderr line for sweeps: jobs done/total, aggregate
// event rate, simulated-time rate and ETA. Thread-safe — sweep workers call
// JobDone concurrently.
class ProgressMeter {
 public:
  explicit ProgressMeter(size_t total_jobs);

  // Records one finished job and repaints the line.
  void JobDone(uint64_t events_executed, double sim_time_ms);
  // Final repaint plus newline; the meter goes quiet afterwards.
  void Finish();

 private:
  void Paint(bool final_line);  // caller holds mu_

  std::mutex mu_;
  size_t total_;
  size_t done_ = 0;
  uint64_t events_ = 0;
  double sim_ms_ = 0;
  bool finished_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hpcc::obs
