#include "obs/trace_export.h"

#include <algorithm>
#include <map>
#include <utility>

#include "host/flow.h"
#include "obs/telemetry.h"
#include "runner/experiment.h"
#include "scenario/json.h"
#include "scenario/scenario.h"
#include "sim/time.h"
#include "stats/pfc_monitor.h"
#include "topo/topology.h"

namespace hpcc::obs {
namespace {

// JSON string literal (quoted + escaped) via the scenario Json dumper.
std::string JStr(const std::string& s) {
  return scenario::Json::MakeString(s).Dump();
}
// Shortest-roundtrip number, same formatter the scenario dumper uses, so
// the trace inherits its byte-determinism.
std::string Num(double v) { return scenario::FormatNumber(v); }
// Trace timestamps are microseconds (the trace-event convention).
std::string TsUs(sim::TimePs t) { return Num(sim::ToUs(t)); }

// Accumulates the traceEvents array with deterministic separators.
struct Writer {
  std::string buf;
  bool first = true;
  void Add(std::string event) {
    buf += first ? "\n  " : ",\n  ";
    first = false;
    buf += event;
  }
};

std::string ProcessName(int pid, const std::string& name) {
  return "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"name\":\"process_name\",\"args\":{\"name\":" + JStr(name) + "}}";
}

std::string ProcessSortIndex(int pid) {
  return "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"name\":\"process_sort_index\",\"args\":{\"sort_index\":" +
         std::to_string(pid) + "}}";
}

std::string ThreadName(int pid, int tid, const std::string& name) {
  return "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":" + JStr(name) + "}}";
}

std::string Instant(int pid, int tid, sim::TimePs at, const std::string& name,
                    const std::string& args_json = "") {
  std::string e = "{\"name\":" + JStr(name) +
                  ",\"ph\":\"i\",\"s\":\"g\",\"pid\":" + std::to_string(pid) +
                  ",\"tid\":" + std::to_string(tid) + ",\"ts\":" + TsUs(at);
  if (!args_json.empty()) e += ",\"args\":" + args_json;
  return e + "}";
}

// Size-binned lane so thousands of flows share three async tracks.
const char* FlowLane(uint64_t bytes) {
  if (bytes <= 100'000) return "short flows (<=100kB)";
  if (bytes <= 1'000'000) return "mid flows (<=1MB)";
  return "long flows (>1MB)";
}

void CounterTrack(Writer& w, int pid, const TelemetryTrack& track) {
  const std::string head = "{\"name\":" + JStr(track.name) +
                           ",\"ph\":\"C\",\"pid\":" + std::to_string(pid) +
                           ",\"tid\":0,\"ts\":";
  const std::string tail = ",\"u\":\"" + track.unit + "\",\"args\":{\"" +
                           track.unit + "\":";
  for (const auto& [t, v] : track.series.points()) {
    w.Add(head + TsUs(t) + tail + Num(v) + "}}");
  }
}

}  // namespace

std::string BuildTraceJson(const TraceExportInputs& in) {
  runner::Experiment& e = *in.experiment;
  const runner::ExperimentResult& result = *in.result;
  const sim::TimePs sim_end = result.sim_time;
  const std::string& scheme = e.config().cc.scheme;

  Writer w;
  w.Add(ProcessName(1, "scenario"));
  w.Add(ProcessName(2, "flows"));
  w.Add(ProcessName(3, "pfc"));
  w.Add(ProcessName(4, "queues"));
  w.Add(ProcessName(5, "rates"));
  for (int pid = 1; pid <= 5; ++pid) w.Add(ProcessSortIndex(pid));
  w.Add(ThreadName(1, 0, "script"));
  w.Add(ThreadName(1, 1, "violations"));

  // -- pid 1: scenario script events + violations -------------------------
  if (in.events) {
    for (const scenario::ScenarioEvent& ev : *in.events) {
      std::string name;
      switch (ev.kind) {
        case scenario::ScenarioEvent::Kind::kLinkDown:
          name = "link_down " + std::to_string(ev.link);
          break;
        case scenario::ScenarioEvent::Kind::kLinkUp:
          name = "link_up " + std::to_string(ev.link);
          break;
        case scenario::ScenarioEvent::Kind::kIncast:
          name = "incast " + std::to_string(ev.incast.fan_in) + "x" +
                 std::to_string(ev.incast.flow_bytes) + "B";
          break;
        case scenario::ScenarioEvent::Kind::kLoadPhase:
          name = "load " + Num(ev.load);
          break;
        case scenario::ScenarioEvent::Kind::kSwitchDown:
          name = "switch_down " + std::to_string(ev.node);
          break;
        case scenario::ScenarioEvent::Kind::kSwitchUp:
          name = "switch_up " + std::to_string(ev.node);
          break;
        case scenario::ScenarioEvent::Kind::kNicDown:
          name = "nic_down " + std::to_string(ev.node);
          break;
        case scenario::ScenarioEvent::Kind::kNicUp:
          name = "nic_up " + std::to_string(ev.node);
          break;
        case scenario::ScenarioEvent::Kind::kCorrupt:
          name = "corrupt " + std::to_string(ev.link) + " ber " + Num(ev.ber);
          break;
      }
      w.Add(Instant(1, 0, ev.at, name));
    }
  }
  if (in.violations) {
    for (const check::Violation& v : *in.violations) {
      w.Add(Instant(1, 1, v.at, "violation: " + v.monitor,
                    "{\"message\":" + JStr(v.message) + "}"));
    }
  }
  w.Add(Instant(1, 0, sim_end, "simulation end"));

  // -- pid 2: flow lifetime spans -----------------------------------------
  for (const host::Flow* f : e.flows()) {
    const host::FlowSpec& spec = f->spec();
    const std::string id = std::to_string(spec.id);
    const std::string lane = JStr(FlowLane(spec.size_bytes));
    std::string args = "{\"flow\":" + id +
                       ",\"bytes\":" + std::to_string(spec.size_bytes) +
                       ",\"src\":" + std::to_string(spec.src) +
                       ",\"dst\":" + std::to_string(spec.dst) +
                       ",\"scheme\":" + JStr(scheme);
    const sim::TimePs end = f->done ? f->finish_time : sim_end;
    if (f->done) {
      const sim::TimePs ideal =
          e.topology().IdealFct(spec.src, spec.dst, spec.size_bytes);
      args += ",\"fct_us\":" + Num(sim::ToUs(end - spec.start_time));
      if (ideal > 0) {
        args += ",\"slowdown\":" +
                Num(static_cast<double>(end - spec.start_time) /
                    static_cast<double>(ideal));
      }
    } else {
      args += ",\"done\":false";
    }
    args += "}";
    w.Add("{\"name\":" + lane + ",\"cat\":\"flow\",\"ph\":\"b\",\"id\":\"" +
          id + "\",\"pid\":2,\"tid\":0,\"ts\":" + TsUs(spec.start_time) +
          ",\"args\":" + args + "}");
    w.Add("{\"name\":" + lane + ",\"cat\":\"flow\",\"ph\":\"e\",\"id\":\"" +
          id + "\",\"pid\":2,\"tid\":0,\"ts\":" + TsUs(end) + "}");
  }

  // -- pid 3: PFC pause windows, one lane per paused (node, port) ---------
  {
    std::map<std::pair<uint32_t, int>, int> lane;  // (node, port) -> tid
    for (const stats::PfcMonitor::PauseEvent& pe : e.pfc_monitor().events()) {
      if (pe.end < pe.start) continue;
      lane.emplace(std::make_pair(pe.node, pe.port), 0);
    }
    int next_tid = 0;
    for (auto& [key, tid] : lane) {  // std::map: sorted, deterministic
      tid = next_tid++;
      w.Add(ThreadName(3, tid,
                       "sw" + std::to_string(key.first) + " p" +
                           std::to_string(key.second)));
    }
    for (const stats::PfcMonitor::PauseEvent& pe : e.pfc_monitor().events()) {
      if (pe.end < pe.start) continue;
      const int tid = lane.at({pe.node, pe.port});
      w.Add("{\"name\":\"pause\",\"ph\":\"X\",\"pid\":3,\"tid\":" +
            std::to_string(tid) + ",\"ts\":" + TsUs(pe.start) +
            ",\"dur\":" + TsUs(pe.end - pe.start) +
            ",\"args\":{\"port_gbps\":" + Num(pe.port_bps / 1e9) + "}}");
    }
  }

  // -- pid 4/5/6: sampled counter tracks ----------------------------------
  if (in.session) {
    for (const TelemetryTrack& t : in.session->TopQueueTracks()) {
      CounterTrack(w, 4, t);
    }
    for (const TelemetryTrack& t : in.session->flow_tracks()) {
      CounterTrack(w, 5, t);
    }
    const TelemetryRecorder& rec = in.session->recorder();
    if (!rec.int_qlen_tracks().empty()) {
      w.Add(ProcessName(6, "int"));
      w.Add(ProcessSortIndex(6));
      for (const TelemetryTrack& t : rec.int_qlen_tracks()) {
        if (!t.series.empty()) CounterTrack(w, 6, t);
      }
      for (const TelemetryTrack& t : rec.int_util_tracks()) {
        if (!t.series.empty()) CounterTrack(w, 6, t);
      }
    }
  }

  return "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"label\":" +
         JStr(in.label) + "},\"traceEvents\":[" + w.buf + "\n]}\n";
}

}  // namespace hpcc::obs
