#include "workload/trace_replay.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace hpcc::workload {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void Fail(size_t line, const std::string& what) {
  throw std::runtime_error("flow trace line " + std::to_string(line) + ": " +
                           what);
}

uint64_t ParseU64(const std::string& field, size_t line,
                  const char* what) {
  if (field.empty()) Fail(line, std::string("empty ") + what);
  uint64_t v = 0;
  for (char c : field) {
    if (!std::isdigit(static_cast<unsigned char>(c)))
      Fail(line, std::string("non-numeric ") + what + " '" + field + "'");
    const uint64_t d = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) Fail(line, std::string(what) + " overflow");
    v = v * 10 + d;
  }
  return v;
}

// Decimal microseconds -> integer picoseconds, exactly (no floating point:
// the round-trip test requires Format(Parse(x)) == x at ps resolution, and
// 1 ps is the 6th decimal of a microsecond).
sim::TimePs ParseArrivalUs(const std::string& field, size_t line) {
  const size_t dot = field.find('.');
  const std::string whole_s = dot == std::string::npos ? field
                                                       : field.substr(0, dot);
  std::string frac_s = dot == std::string::npos ? "" : field.substr(dot + 1);
  if (frac_s.size() > 6)
    Fail(line, "arrival_us finer than 1 ps: '" + field + "'");
  frac_s.resize(6, '0');  // pad to exactly ps
  const uint64_t whole =
      whole_s.empty() ? 0 : ParseU64(whole_s, line, "arrival_us");
  const uint64_t frac = ParseU64(frac_s, line, "arrival_us fraction");
  return static_cast<sim::TimePs>(whole * 1'000'000 + frac);
}

}  // namespace

std::vector<TraceRecord> ParseFlowTrace(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  size_t line_no = 0;
  bool saw_data = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    // A leading header row ("arrival_us,...") is tolerated once.
    if (!saw_data && !std::isdigit(static_cast<unsigned char>(t[0])) &&
        t[0] != '.') {
      continue;
    }
    std::vector<std::string> fields;
    std::stringstream ss(t);
    std::string field;
    while (std::getline(ss, field, ',')) fields.push_back(Trim(field));
    if (fields.size() != 4)
      Fail(line_no, "expected 4 fields (arrival_us,src,dst,bytes), got " +
                        std::to_string(fields.size()));
    TraceRecord r;
    r.at = ParseArrivalUs(fields[0], line_no);
    r.src = static_cast<uint32_t>(ParseU64(fields[1], line_no, "src"));
    r.dst = static_cast<uint32_t>(ParseU64(fields[2], line_no, "dst"));
    r.bytes = ParseU64(fields[3], line_no, "bytes");
    if (r.src == r.dst) Fail(line_no, "src == dst");
    if (r.bytes == 0) Fail(line_no, "zero-byte flow");
    if (!records.empty() && r.at < records.back().at)
      Fail(line_no, "arrivals not sorted (non-decreasing arrival_us required)");
    records.push_back(r);
    saw_data = true;
  }
  return records;
}

std::vector<TraceRecord> LoadFlowTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open flow trace: " + path);
  return ParseFlowTrace(in);
}

std::string FormatFlowTrace(const std::vector<TraceRecord>& records) {
  std::string out = "arrival_us,src,dst,bytes\n";
  for (const TraceRecord& r : records) {
    const uint64_t whole = static_cast<uint64_t>(r.at) / 1'000'000;
    uint64_t frac = static_cast<uint64_t>(r.at) % 1'000'000;
    out += std::to_string(whole);
    if (frac != 0) {
      std::string f = std::to_string(frac);
      f.insert(f.begin(), 6 - f.size(), '0');
      while (f.back() == '0') f.pop_back();
      out += "." + f;
    }
    out += "," + std::to_string(r.src) + "," + std::to_string(r.dst) + "," +
           std::to_string(r.bytes) + "\n";
  }
  return out;
}

TraceReplaySource::TraceReplaySource(
    sim::Simulator* simulator,
    std::shared_ptr<const std::vector<TraceRecord>> records, FlowSink sink)
    : simulator_(simulator),
      records_(std::move(records)),
      sink_(std::move(sink)) {}

sim::TimePs TraceReplaySource::first_activity() const {
  return records_->empty() ? std::numeric_limits<sim::TimePs>::max()
                           : records_->front().at;
}

void TraceReplaySource::Start() { ScheduleRecord(); }

void TraceReplaySource::ScheduleRecord() {
  if (emitted_ >= records_->size()) return;
  const sim::TimePs at =
      std::max((*records_)[emitted_].at, simulator_->now());
  pending_kind_ = GenWarmState::kEmit;
  pending_at_ = at;
  pending_seq_ = simulator_->next_schedule_seq();
  pending_event_ = simulator_->ScheduleAt(at, [this]() {
    pending_kind_ = GenWarmState::kNone;
    Emit();
  });
}

void TraceReplaySource::Emit() {
  const TraceRecord& r = (*records_)[emitted_];
  ++emitted_;
  sink_(r.src, r.dst, r.bytes, simulator_->now());
  ScheduleRecord();
}

GenWarmState TraceReplaySource::CaptureWarm() const {
  GenWarmState w;
  w.pending_kind = pending_kind_;
  w.pending_at = pending_at_;
  w.pending_seq = pending_seq_;
  w.count = emitted_;
  return w;
}

void TraceReplaySource::RestoreWarm(const GenWarmState& w) {
  if (pending_kind_ != GenWarmState::kNone) {
    simulator_->Cancel(pending_event_);
    pending_kind_ = GenWarmState::kNone;
  }
  emitted_ = w.count;
  if (w.pending_kind == GenWarmState::kNone) return;
  pending_kind_ = w.pending_kind;
  pending_at_ = w.pending_at;
  pending_seq_ = w.pending_seq;
  pending_event_ =
      simulator_->ScheduleAtSeq(w.pending_at, w.pending_seq, [this]() {
        pending_kind_ = GenWarmState::kNone;
        Emit();
      });
}

}  // namespace hpcc::workload
