// Flow-size distributions: piecewise-linear CDFs with inverse-transform
// sampling. Builtins approximate the two public traces the paper evaluates
// with (§5.1): WebSearch (DCTCP paper) and FB_Hadoop (Facebook SIGCOMM'15).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace hpcc::workload {

class SizeCdf {
 public:
  struct Point {
    uint64_t bytes;
    double cdf;  // cumulative probability at `bytes`
  };

  // Points must start at cdf 0, end at cdf 1, and be strictly increasing in
  // both coordinates (validated).
  explicit SizeCdf(std::vector<Point> points);

  // Inverse-transform sample (linear interpolation between points).
  uint64_t Sample(sim::Rng& rng) const;
  // Exact mean of the piecewise-linear distribution.
  double MeanBytes() const;
  // CDF evaluated at an arbitrary size.
  double Cdf(uint64_t bytes) const;

  const std::vector<Point>& points() const { return points_; }

  // The web search workload of the DCTCP paper: mass between a few KB and
  // 30 MB, heavy tail (~1.6 MB mean).
  static SizeCdf WebSearch();
  // Facebook Hadoop: dominated by sub-KB flows, >90 % below 120 KB, tail to
  // 10 MB.
  static SizeCdf FbHadoop();
  // Fixed-size helper (incast flows, unit tests).
  static SizeCdf Fixed(uint64_t bytes);

 private:
  std::vector<Point> points_;
};

}  // namespace hpcc::workload
