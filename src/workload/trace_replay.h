// Flow-trace replay: a TrafficSource that releases flows from a recorded
// CSV of `(arrival_us, src, dst, bytes)` rows instead of a stochastic
// process. This closes the ROADMAP "trace replay" bullet: measured
// datacenter traces (or traces exported from another simulator) can drive
// the fabric directly, with the same engine dispatch (packet or fluid) as
// the synthetic generators.
//
// Format, one flow per line:
//
//   # comment lines and a leading header line are skipped
//   arrival_us,src,dst,bytes
//   0.0,0,4,31250
//   12.5,3,1,1000000
//
// `arrival_us` is microseconds from simulation start (fractional allowed;
// resolved to integer picoseconds), `src`/`dst` are host indices into the
// experiment's host list, `bytes` the flow size. Rows must be sorted by
// non-decreasing arrival time — replay is a forward walk, and enforcing the
// sort keeps ParseFlowTrace <-> replay a bijection (the round-trip test pins
// this). Parsing is strict: malformed rows, src == dst, or out-of-order
// arrivals throw std::runtime_error naming the line.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "workload/flow_gen.h"
#include "workload/traffic_source.h"

namespace hpcc::workload {

struct TraceRecord {
  sim::TimePs at = 0;
  uint32_t src = 0;
  uint32_t dst = 0;
  uint64_t bytes = 0;

  bool operator==(const TraceRecord& o) const {
    return at == o.at && src == o.src && dst == o.dst && bytes == o.bytes;
  }
};

// Parses the CSV format above. Throws std::runtime_error with the offending
// line number on malformed input.
std::vector<TraceRecord> ParseFlowTrace(std::istream& in);
// File variant; throws when the file cannot be opened.
std::vector<TraceRecord> LoadFlowTrace(const std::string& path);
// Serializes records back to the CSV format ParseFlowTrace accepts
// (header line included). ParseFlowTrace(FormatFlowTrace(r)) == r.
std::string FormatFlowTrace(const std::vector<TraceRecord>& records);

class TraceReplaySource : public TrafficSource {
 public:
  // `records` is shared (not copied) so sharded lanes can replicate the
  // source without re-parsing the file per lane.
  TraceReplaySource(sim::Simulator* simulator,
                    std::shared_ptr<const std::vector<TraceRecord>> records,
                    FlowSink sink);

  void Start() override;
  uint64_t emitted() const override { return emitted_; }

  // Warm checkpoint/restore — see TrafficSource. The trace has no RNG; the
  // counter alone (plus the pending record's original key) reconstructs the
  // replay position.
  sim::TimePs first_activity() const override;
  bool warm_pending() const override {
    return pending_kind_ != GenWarmState::kNone;
  }
  GenWarmState CaptureWarm() const override;
  void RestoreWarm(const GenWarmState& w) override;

 private:
  void ScheduleRecord();
  void Emit();

  sim::Simulator* simulator_;
  std::shared_ptr<const std::vector<TraceRecord>> records_;
  FlowSink sink_;
  uint64_t emitted_ = 0;  // index of the next record to release
  int pending_kind_ = GenWarmState::kNone;
  sim::TimePs pending_at_ = 0;
  uint64_t pending_seq_ = 0;
  sim::EventId pending_event_ = sim::kInvalidEvent;
};

}  // namespace hpcc::workload
