#include "workload/flow_gen.h"

#include <cassert>

namespace hpcc::workload {

PoissonGenerator::PoissonGenerator(sim::Simulator* simulator,
                                   std::vector<uint32_t> hosts, SizeCdf cdf,
                                   const PoissonOptions& options,
                                   FlowSink sink)
    : simulator_(simulator),
      hosts_(std::move(hosts)),
      cdf_(std::move(cdf)),
      options_(options),
      sink_(std::move(sink)),
      rng_(options.seed) {
  assert(hosts_.size() >= 2);
  assert(options_.host_bps > 0);
  // Flow arrival rate lambda = load * aggregate_host_bps / (8 * mean_size).
  // Each host's NIC contributes its full rate to the aggregate; dividing by
  // the mean flow size yields flows/second for the whole fabric.
  const double aggregate_Bps = options_.load *
                               static_cast<double>(options_.host_bps) / 8.0 *
                               static_cast<double>(hosts_.size());
  const double lambda = aggregate_Bps / cdf_.MeanBytes();  // flows per second
  mean_gap_ = static_cast<sim::TimePs>(static_cast<double>(sim::kPsPerSec) /
                                       lambda);
  assert(mean_gap_ > 0);
}

void PoissonGenerator::Start() { ScheduleKickoff(options_.start); }

void PoissonGenerator::ScheduleKickoff(sim::TimePs at) {
  pending_kind_ = GenWarmState::kKickoff;
  pending_at_ = at;
  pending_seq_ = simulator_->next_schedule_seq();
  pending_event_ = simulator_->ScheduleAt(at, [this]() {
    pending_kind_ = GenWarmState::kNone;
    ScheduleNext();
  });
}

void PoissonGenerator::ScheduleNext() {
  const sim::TimePs gap = static_cast<sim::TimePs>(
      rng_.Exponential(static_cast<double>(mean_gap_)));
  const sim::TimePs at = simulator_->now() + std::max<sim::TimePs>(1, gap);
  if (options_.end > 0 && at > options_.end) return;
  if (options_.max_flows > 0 && emitted_ >= options_.max_flows) return;
  pending_kind_ = GenWarmState::kEmit;
  pending_at_ = at;
  pending_seq_ = simulator_->next_schedule_seq();
  pending_event_ = simulator_->ScheduleAt(at, [this]() {
    pending_kind_ = GenWarmState::kNone;
    Emit();
  });
}

GenWarmState PoissonGenerator::CaptureWarm() const {
  GenWarmState w;
  w.pending_kind = pending_kind_;
  w.pending_at = pending_at_;
  w.pending_seq = pending_seq_;
  w.rng = rng_;
  w.count = emitted_;
  return w;
}

void PoissonGenerator::RestoreWarm(const GenWarmState& w) {
  if (pending_kind_ != GenWarmState::kNone) {
    simulator_->Cancel(pending_event_);
    pending_kind_ = GenWarmState::kNone;
  }
  rng_ = w.rng;
  emitted_ = w.count;
  if (w.pending_kind == GenWarmState::kNone) return;
  pending_kind_ = w.pending_kind;
  pending_at_ = w.pending_at;
  pending_seq_ = w.pending_seq;
  const bool kickoff = w.pending_kind == GenWarmState::kKickoff;
  pending_event_ =
      simulator_->ScheduleAtSeq(w.pending_at, w.pending_seq, [this, kickoff]() {
        pending_kind_ = GenWarmState::kNone;
        if (kickoff) {
          ScheduleNext();
        } else {
          Emit();
        }
      });
}

void PoissonGenerator::Emit() {
  const size_t si = rng_.Index(hosts_.size());
  size_t di = rng_.Index(hosts_.size() - 1);
  if (di >= si) ++di;
  const uint64_t size = cdf_.Sample(rng_);
  ++emitted_;
  sink_(hosts_[si], hosts_[di], size, simulator_->now());
  ScheduleNext();
}

IncastGenerator::IncastGenerator(sim::Simulator* simulator,
                                 std::vector<uint32_t> hosts,
                                 const IncastOptions& options, FlowSink sink)
    : simulator_(simulator),
      hosts_(std::move(hosts)),
      options_(options),
      sink_(std::move(sink)),
      rng_(options.seed) {
  assert(static_cast<size_t>(options_.fan_in) < hosts_.size());
}

void IncastGenerator::Start() { ScheduleEmit(options_.first_event); }

void IncastGenerator::ScheduleEmit(sim::TimePs at) {
  pending_kind_ = GenWarmState::kEmit;
  pending_at_ = at;
  pending_seq_ = simulator_->next_schedule_seq();
  pending_event_ = simulator_->ScheduleAt(at, [this]() {
    pending_kind_ = GenWarmState::kNone;
    Emit();
  });
}

GenWarmState IncastGenerator::CaptureWarm() const {
  GenWarmState w;
  w.pending_kind = pending_kind_;
  w.pending_at = pending_at_;
  w.pending_seq = pending_seq_;
  w.rng = rng_;
  w.count = events_;
  return w;
}

void IncastGenerator::RestoreWarm(const GenWarmState& w) {
  if (pending_kind_ != GenWarmState::kNone) {
    simulator_->Cancel(pending_event_);
    pending_kind_ = GenWarmState::kNone;
  }
  rng_ = w.rng;
  events_ = w.count;
  if (w.pending_kind == GenWarmState::kNone) return;
  pending_kind_ = w.pending_kind;
  pending_at_ = w.pending_at;
  pending_seq_ = w.pending_seq;
  pending_event_ =
      simulator_->ScheduleAtSeq(w.pending_at, w.pending_seq, [this]() {
        pending_kind_ = GenWarmState::kNone;
        Emit();
      });
}

void IncastGenerator::Emit() {
  const sim::TimePs now = simulator_->now();
  // Receiver plus fan_in distinct senders.
  std::vector<size_t> picks = rng_.SampleDistinct(
      static_cast<size_t>(options_.fan_in) + 1, hosts_.size());
  const bool fixed = options_.fixed_receiver >= 0;
  const uint32_t receiver =
      fixed ? hosts_[static_cast<size_t>(options_.fixed_receiver)]
            : hosts_[picks[0]];
  int emitted = 0;
  for (size_t i = fixed ? 0 : 1;
       i < picks.size() && emitted < options_.fan_in; ++i) {
    const uint32_t sender = hosts_[picks[i]];
    if (sender == receiver) continue;
    sink_(sender, receiver, options_.flow_bytes, now);
    ++emitted;
  }
  ++events_;
  if (options_.period > 0) {
    const sim::TimePs next = now + options_.period;
    if (options_.end == 0 || next <= options_.end) {
      ScheduleEmit(next);
    }
  }
}

}  // namespace hpcc::workload
