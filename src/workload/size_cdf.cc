#include "workload/size_cdf.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hpcc::workload {

SizeCdf::SizeCdf(std::vector<Point> points) : points_(std::move(points)) {
  if (points_.size() < 2 || points_.front().cdf != 0.0 ||
      points_.back().cdf != 1.0) {
    throw std::invalid_argument("CDF must span [0,1]");
  }
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].bytes < points_[i - 1].bytes ||
        points_[i].cdf < points_[i - 1].cdf) {
      throw std::invalid_argument("CDF points must be non-decreasing");
    }
  }
}

uint64_t SizeCdf::Sample(sim::Rng& rng) const {
  const double u = rng.Uniform();
  for (size_t i = 1; i < points_.size(); ++i) {
    if (u <= points_[i].cdf) {
      const Point& a = points_[i - 1];
      const Point& b = points_[i];
      const double span = b.cdf - a.cdf;
      const double frac = span > 0 ? (u - a.cdf) / span : 1.0;
      const double bytes =
          static_cast<double>(a.bytes) +
          frac * static_cast<double>(b.bytes - a.bytes);
      return std::max<uint64_t>(1, static_cast<uint64_t>(bytes));
    }
  }
  return std::max<uint64_t>(1, points_.back().bytes);
}

double SizeCdf::MeanBytes() const {
  // Each linear CDF segment is uniform mass between its endpoints.
  double mean = 0;
  for (size_t i = 1; i < points_.size(); ++i) {
    const Point& a = points_[i - 1];
    const Point& b = points_[i];
    const double mass = b.cdf - a.cdf;
    mean += mass * (static_cast<double>(a.bytes) +
                    static_cast<double>(b.bytes)) /
            2.0;
  }
  return mean;
}

double SizeCdf::Cdf(uint64_t bytes) const {
  if (bytes <= points_.front().bytes) return points_.front().cdf;
  for (size_t i = 1; i < points_.size(); ++i) {
    if (bytes <= points_[i].bytes) {
      const Point& a = points_[i - 1];
      const Point& b = points_[i];
      const double span = static_cast<double>(b.bytes - a.bytes);
      const double frac =
          span > 0 ? static_cast<double>(bytes - a.bytes) / span : 1.0;
      return a.cdf + frac * (b.cdf - a.cdf);
    }
  }
  return 1.0;
}

SizeCdf SizeCdf::WebSearch() {
  return SizeCdf({{1, 0.0},
                  {10'000, 0.15},
                  {20'000, 0.20},
                  {30'000, 0.30},
                  {50'000, 0.40},
                  {80'000, 0.53},
                  {200'000, 0.60},
                  {1'000'000, 0.70},
                  {2'000'000, 0.80},
                  {5'000'000, 0.90},
                  {10'000'000, 0.97},
                  {30'000'000, 1.0}});
}

SizeCdf SizeCdf::FbHadoop() {
  return SizeCdf({{1, 0.0},
                  {180, 0.10},
                  {250, 0.20},
                  {324, 0.30},
                  {400, 0.40},
                  {500, 0.53},
                  {600, 0.60},
                  {700, 0.70},
                  {1'000, 0.80},
                  {2'000, 0.85},
                  {10'000, 0.90},
                  {46'000, 0.94},
                  {120'000, 0.97},
                  {1'000'000, 0.98},
                  {2'000'000, 0.99},
                  {10'000'000, 1.0}});
}

SizeCdf SizeCdf::Fixed(uint64_t bytes) {
  assert(bytes >= 1);
  return SizeCdf({{bytes, 0.0}, {bytes, 1.0}});
}

}  // namespace hpcc::workload
