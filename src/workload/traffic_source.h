// TrafficSource: the one interface behind "a thing that injects load".
//
// Poisson background generators, synchronized incast bursts, scripted
// load_phase events and trace replay all implement this surface; the runner
// and scenario layers only ever see TrafficSource + FlowSink, which is what
// decouples flow *release* (when/where/how big) from flow *transport* (which
// engine carries the bytes). Each released flow carries a FlowClass telling
// the experiment which engine to install it on:
//
//   kPacket — a full packet-level Flow on the host scheduler (NIC, CC state,
//             per-packet events); the default, and the only class monitors
//             can fully check.
//   kFluid  — a window-trajectory flow on the analytic::FluidRegion engine;
//             no packets exist, only per-RTT window/queue state coupled into
//             the shared ports' INT stamps (see analytic/fluid_region.h).
//
// The warm checkpoint/restore surface mirrors what PoissonGenerator pioneered
// (see GenWarmState below): every source self-schedules through the normal
// event queue and records its one pending (time, tie-break seq) pair, so a
// restored run replays the exact event order the checkpointing run would
// have used.
#pragma once

#include <cstdint>

#include "sim/rng.h"
#include "sim/simulator.h"

namespace hpcc::workload {

// Which transport engine carries a released flow's bytes.
enum class FlowClass : uint8_t { kPacket = 0, kFluid = 1 };

// Checkpointed source state (warm-start sweeps): the RNG engine, the
// emission counter, and the one pending self-schedule with its original
// (time, tie-break seq) so a restored run replays the exact event order the
// checkpointing run would have used. `pending_kind` distinguishes the
// start-of-generation kickoff callback from a flow/burst emission. Sources
// without randomness (trace replay) simply ignore the rng member.
struct GenWarmState {
  enum Kind { kNone = 0, kKickoff = 1, kEmit = 2 };
  int pending_kind = kNone;
  sim::TimePs pending_at = 0;
  uint64_t pending_seq = 0;
  sim::Rng rng;
  uint64_t count = 0;  // emitted flows (Poisson/trace) / events (incast)
};

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  // Begins self-scheduling emissions through the simulator's event queue.
  virtual void Start() = 0;
  // Emission counter: flows for flow-grained sources, burst events for the
  // incast generator (matching what GenWarmState::count checkpoints).
  virtual uint64_t emitted() const = 0;

  // --- Warm checkpoint/restore (runner/experiment.h) ---------------------
  // Earliest simulation time this source touches after Start: sources
  // entirely beyond the checkpoint time are left untouched by a restore
  // (their own install-time schedule already matches the checkpointing run).
  virtual sim::TimePs first_activity() const = 0;
  // Whether a self-scheduled event is currently pending (checkpoint-time
  // event accounting).
  virtual bool warm_pending() const = 0;
  virtual GenWarmState CaptureWarm() const = 0;
  // Cancels this source's own pending event and replays the captured one
  // under its original (time, seq) key; restores the RNG and counters.
  virtual void RestoreWarm(const GenWarmState& w) = 0;
};

}  // namespace hpcc::workload
