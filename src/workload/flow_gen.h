// Traffic generators (§5.1): Poisson background load drawn from a flow-size
// CDF between random host pairs, and the synchronized N-to-1 incast events
// (60 senders x 500 KB by default).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/rng.h"
#include "sim/simulator.h"
#include "workload/size_cdf.h"
#include "workload/traffic_source.h"

namespace hpcc::workload {

// Receives (src, dst, size, start): the runner turns these into flows.
using FlowSink =
    std::function<void(uint32_t src, uint32_t dst, uint64_t size_bytes,
                       sim::TimePs start)>;

struct PoissonOptions {
  double load = 0.3;           // fraction of aggregate host NIC bandwidth
  int64_t host_bps = 0;        // per-host NIC rate
  sim::TimePs start = 0;
  sim::TimePs end = 0;         // stop generating at this time
  uint64_t max_flows = 0;      // 0 = unlimited (until `end`)
  uint64_t seed = 1;
};

class PoissonGenerator : public TrafficSource {
 public:
  PoissonGenerator(sim::Simulator* simulator, std::vector<uint32_t> hosts,
                   SizeCdf cdf, const PoissonOptions& options, FlowSink sink);

  void Start() override;
  uint64_t emitted() const override { return emitted_; }
  uint64_t flows_emitted() const { return emitted_; }
  // Mean flow inter-arrival time implied by the load target.
  sim::TimePs mean_interarrival() const { return mean_gap_; }

  // Warm checkpoint/restore — see TrafficSource.
  sim::TimePs first_activity() const override { return options_.start; }
  bool warm_pending() const override {
    return pending_kind_ != GenWarmState::kNone;
  }
  GenWarmState CaptureWarm() const override;
  void RestoreWarm(const GenWarmState& w) override;

 private:
  void ScheduleKickoff(sim::TimePs at);
  void ScheduleNext();
  void Emit();

  sim::Simulator* simulator_;
  std::vector<uint32_t> hosts_;
  SizeCdf cdf_;
  PoissonOptions options_;
  FlowSink sink_;
  sim::Rng rng_;
  sim::TimePs mean_gap_ = 0;
  uint64_t emitted_ = 0;
  int pending_kind_ = GenWarmState::kNone;
  sim::TimePs pending_at_ = 0;
  uint64_t pending_seq_ = 0;
  sim::EventId pending_event_ = sim::kInvalidEvent;
};

struct IncastOptions {
  int fan_in = 60;              // senders per event (§5.3)
  uint64_t flow_bytes = 500'000;
  sim::TimePs first_event = sim::Us(100);
  sim::TimePs period = sim::Ms(10);  // 0 = single event
  sim::TimePs end = 0;
  uint64_t seed = 7;
  int32_t fixed_receiver = -1;  // -1 = random receiver per event
  // Transport engine the emitted flows ride (the generator itself is
  // engine-agnostic; the experiment's sink dispatches on this).
  FlowClass flow_class = FlowClass::kPacket;
};

class IncastGenerator : public TrafficSource {
 public:
  IncastGenerator(sim::Simulator* simulator, std::vector<uint32_t> hosts,
                  const IncastOptions& options, FlowSink sink);
  void Start() override;
  uint64_t emitted() const override { return events_; }
  uint64_t events_emitted() const { return events_; }

  // Warm checkpoint/restore — see TrafficSource.
  sim::TimePs first_activity() const override { return options_.first_event; }
  bool warm_pending() const override {
    return pending_kind_ != GenWarmState::kNone;
  }
  GenWarmState CaptureWarm() const override;
  void RestoreWarm(const GenWarmState& w) override;

 private:
  void ScheduleEmit(sim::TimePs at);
  void Emit();

  sim::Simulator* simulator_;
  std::vector<uint32_t> hosts_;
  IncastOptions options_;
  FlowSink sink_;
  sim::Rng rng_;
  uint64_t events_ = 0;
  int pending_kind_ = GenWarmState::kNone;
  sim::TimePs pending_at_ = 0;
  uint64_t pending_seq_ = 0;
  sim::EventId pending_event_ = sim::kInvalidEvent;
};

}  // namespace hpcc::workload
