// Traffic generators (§5.1): Poisson background load drawn from a flow-size
// CDF between random host pairs, and the synchronized N-to-1 incast events
// (60 senders x 500 KB by default).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/rng.h"
#include "sim/simulator.h"
#include "workload/size_cdf.h"

namespace hpcc::workload {

// Receives (src, dst, size, start): the runner turns these into flows.
using FlowSink =
    std::function<void(uint32_t src, uint32_t dst, uint64_t size_bytes,
                       sim::TimePs start)>;

struct PoissonOptions {
  double load = 0.3;           // fraction of aggregate host NIC bandwidth
  int64_t host_bps = 0;        // per-host NIC rate
  sim::TimePs start = 0;
  sim::TimePs end = 0;         // stop generating at this time
  uint64_t max_flows = 0;      // 0 = unlimited (until `end`)
  uint64_t seed = 1;
};

// Checkpointed generator state (warm-start sweeps): the RNG engine, the
// emission counter, and the one pending self-schedule with its original
// (time, tie-break seq) so a restored run replays the exact event order the
// checkpointing run would have used. `pending_kind` distinguishes the
// start-of-generation kickoff callback from a flow/burst emission.
struct GenWarmState {
  enum Kind { kNone = 0, kKickoff = 1, kEmit = 2 };
  int pending_kind = kNone;
  sim::TimePs pending_at = 0;
  uint64_t pending_seq = 0;
  sim::Rng rng;
  uint64_t count = 0;  // emitted_ (Poisson) / events_ (incast)
};

class PoissonGenerator {
 public:
  PoissonGenerator(sim::Simulator* simulator, std::vector<uint32_t> hosts,
                   SizeCdf cdf, const PoissonOptions& options, FlowSink sink);

  void Start();
  uint64_t flows_emitted() const { return emitted_; }
  // Mean flow inter-arrival time implied by the load target.
  sim::TimePs mean_interarrival() const { return mean_gap_; }

  // --- Warm checkpoint/restore (runner/experiment.h) ---------------------
  // Earliest simulation time this generator touches after Start: generators
  // entirely beyond the checkpoint time are left untouched by a restore
  // (their own install-time schedule already matches the checkpointing run).
  sim::TimePs first_activity() const { return options_.start; }
  // Whether a self-scheduled event is currently pending (checkpoint-time
  // event accounting).
  bool warm_pending() const { return pending_kind_ != GenWarmState::kNone; }
  GenWarmState CaptureWarm() const;
  // Cancels this generator's own pending event and replays the captured one
  // under its original (time, seq) key; restores the RNG and counters.
  void RestoreWarm(const GenWarmState& w);

 private:
  void ScheduleKickoff(sim::TimePs at);
  void ScheduleNext();
  void Emit();

  sim::Simulator* simulator_;
  std::vector<uint32_t> hosts_;
  SizeCdf cdf_;
  PoissonOptions options_;
  FlowSink sink_;
  sim::Rng rng_;
  sim::TimePs mean_gap_ = 0;
  uint64_t emitted_ = 0;
  int pending_kind_ = GenWarmState::kNone;
  sim::TimePs pending_at_ = 0;
  uint64_t pending_seq_ = 0;
  sim::EventId pending_event_ = sim::kInvalidEvent;
};

struct IncastOptions {
  int fan_in = 60;              // senders per event (§5.3)
  uint64_t flow_bytes = 500'000;
  sim::TimePs first_event = sim::Us(100);
  sim::TimePs period = sim::Ms(10);  // 0 = single event
  sim::TimePs end = 0;
  uint64_t seed = 7;
  int32_t fixed_receiver = -1;  // -1 = random receiver per event
};

class IncastGenerator {
 public:
  IncastGenerator(sim::Simulator* simulator, std::vector<uint32_t> hosts,
                  const IncastOptions& options, FlowSink sink);
  void Start();
  uint64_t events_emitted() const { return events_; }

  // Warm checkpoint/restore — see PoissonGenerator.
  sim::TimePs first_activity() const { return options_.first_event; }
  bool warm_pending() const { return pending_kind_ != GenWarmState::kNone; }
  GenWarmState CaptureWarm() const;
  void RestoreWarm(const GenWarmState& w);

 private:
  void ScheduleEmit(sim::TimePs at);
  void Emit();

  sim::Simulator* simulator_;
  std::vector<uint32_t> hosts_;
  IncastOptions options_;
  FlowSink sink_;
  sim::Rng rng_;
  uint64_t events_ = 0;
  int pending_kind_ = GenWarmState::kNone;
  sim::TimePs pending_at_ = 0;
  uint64_t pending_seq_ = 0;
  sim::EventId pending_event_ = sim::kInvalidEvent;
};

}  // namespace hpcc::workload
