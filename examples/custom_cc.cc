// Plugging in your own congestion control. The transport consults
// cc::CongestionControl for a window and a pacing rate on every ACK, so a
// new scheme is one subclass — here a deliberately naive AIMD-over-delay
// ("ToyDelayCc") compared against HPCC on the same incast.
#include <cstdio>
#include <memory>

#include "cc/cc.h"
#include "runner/experiment.h"

using namespace hpcc;

namespace {

// Toy scheme: window-based AIMD keyed on measured RTT. One MTU of additive
// increase per ACK'd window; halve when the RTT exceeds 1.5x base.
class ToyDelayCc : public cc::CongestionControl {
 public:
  explicit ToyDelayCc(const cc::CcContext& ctx) : ctx_(ctx) {
    window_ = static_cast<double>(
        (static_cast<__int128>(ctx.nic_bps) * ctx.base_rtt) /
        (8 * sim::kPsPerSec));
    max_window_ = window_;
  }

  void OnAck(const cc::AckInfo& ack) override {
    if (ack.rtt <= 0) return;
    if (ack.rtt > ctx_.base_rtt * 3 / 2) {
      if (ack.now - last_cut_ >= ctx_.base_rtt) {  // once per RTT
        window_ /= 2;
        last_cut_ = ack.now;
      }
    } else {
      window_ += static_cast<double>(ctx_.mtu_bytes) *
                 static_cast<double>(ack.newly_acked) / window_;
    }
    window_ = std::clamp(window_, static_cast<double>(ctx_.mtu_bytes),
                         max_window_);
  }

  int64_t window_bytes() const override {
    return static_cast<int64_t>(window_);
  }
  int64_t rate_bps() const override {
    return std::min<int64_t>(
        ctx_.nic_bps,
        static_cast<int64_t>(window_ * 8.0 / sim::ToSec(ctx_.base_rtt)));
  }
  std::string name() const override { return "toy-delay"; }

 private:
  cc::CcContext ctx_;
  double window_;
  double max_window_;
  sim::TimePs last_cut_ = 0;
};

void Run(const char* label, bool toy) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = 9;
  cfg.cc.scheme = "hpcc";
  runner::Experiment e(cfg);
  const auto& h = e.hosts();
  std::vector<host::Flow*> flows;
  for (int i = 0; i < 8; ++i) {
    if (toy) {
      // Bypass the factory: hand the transport a custom CC instance.
      cc::CcContext ctx;
      ctx.nic_bps = e.topology().host(h[i]).port(0).bandwidth_bps();
      ctx.base_rtt = e.base_rtt();
      ctx.simulator = &e.simulator();
      host::FlowSpec spec;
      spec.id = 1000 + static_cast<uint64_t>(i);
      spec.src = h[i];
      spec.dst = h[8];
      spec.size_bytes = 2'000'000;
      auto flow = std::make_unique<host::Flow>(
          spec, std::make_unique<ToyDelayCc>(ctx),
          host::RecoveryMode::kGoBackN);
      flows.push_back(flow.get());
      e.topology().host(h[i]).AddFlow(std::move(flow));
    } else {
      flows.push_back(e.AddFlow(h[i], h[8], 2'000'000, 0));
    }
  }
  e.RunUntil(sim::Ms(10));
  runner::ExperimentResult r = e.Collect();
  stats::PercentileTracker fct;
  for (auto* f : flows) {
    if (f->done) fct.Add(sim::ToUs(f->finish_time - f->spec().start_time));
  }
  std::printf("%-10s  FCT p50 %8.1f us  p99 %8.1f us   queue p99 %8.1f KB\n",
              label, fct.Percentile(50), fct.Percentile(99),
              r.queue_dist.Percentile(99) / 1e3);
}

}  // namespace

int main() {
  std::printf("8-to-1 incast, 2MB each: custom AIMD vs HPCC\n\n");
  Run("toy-delay", true);
  Run("hpcc", false);
  std::printf(
      "\nToyDelayCc only needs window_bytes()/rate_bps() + OnAck(); the "
      "transport, pacing, retransmission and stats come for free.\n");
  return 0;
}
