// Datacenter load: a FatTree under the public WebSearch workload — the
// paper's end-to-end evaluation shape (§5.2/§5.3) as a runnable example.
// Prints the per-size-bin FCT slowdown table for a scheme of your choice.
//
//   $ ./datacenter_load [scheme] [load]
//   $ ./datacenter_load hpcc 0.5
#include <cstdio>
#include <cstdlib>

#include "runner/experiment.h"

using namespace hpcc;

int main(int argc, char** argv) {
  const char* scheme = argc > 1 ? argv[1] : "hpcc";
  const double load = argc > 2 ? std::atof(argv[2]) : 0.3;

  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kFatTree;
  cfg.fattree.pods = 2;
  cfg.fattree.tors_per_pod = 2;
  cfg.fattree.aggs_per_pod = 2;
  cfg.fattree.hosts_per_tor = 4;  // 16 hosts; bump for bigger runs
  cfg.cc.scheme = scheme;
  cfg.load = load;
  cfg.trace = "websearch";
  cfg.duration = sim::Ms(3);

  std::printf("FatTree %d hosts, WebSearch at %.0f%% load, scheme=%s\n",
              cfg.fattree.num_hosts(), load * 100, scheme);
  runner::Experiment e(cfg);
  runner::ExperimentResult r = e.Run();

  std::printf("\nFCT slowdown per flow-size bin:\n%s",
              r.fct->FormatTable().c_str());
  std::printf("\nqueueing: p50 %.1f KB  p95 %.1f KB  p99 %.1f KB  max %.1f KB\n",
              r.queue_dist.Percentile(50) / 1e3,
              r.queue_dist.Percentile(95) / 1e3,
              r.queue_dist.Percentile(99) / 1e3,
              static_cast<double>(r.max_queue_bytes) / 1e3);
  std::printf("PFC pause time: %.4f%% of port-time (%zu events), drops: %llu\n",
              r.pause_time_fraction * 100, r.pause_events,
              static_cast<unsigned long long>(r.dropped_packets));
  return 0;
}
