// Quickstart: build a tiny network, run two HPCC flows into one receiver,
// and print what the congestion control is doing.
//
//   $ ./quickstart
//
// This walks through the core public API:
//   1. runner::ExperimentConfig chooses a topology and a CC scheme.
//   2. Experiment wires hosts, switches, INT, and monitors.
//   3. AddFlow() injects flows; RunUntil()/Run() advance simulated time.
//   4. Results come back as FCT slowdowns, queue distributions, PFC stats.
#include <cstdio>

#include "runner/experiment.h"

using namespace hpcc;

int main() {
  // A star: 3 hosts x 100 Gbps behind one switch. h0 and h1 will both send
  // to h2, so the switch's downlink to h2 is a 2:1 bottleneck.
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = 3;
  cfg.cc.scheme = "hpcc";  // try "dcqcn", "timely+win", "dctcp", ...

  runner::Experiment e(cfg);
  const auto& hosts = e.hosts();
  std::printf("base RTT measured from the topology: %.2f us\n",
              sim::ToUs(e.base_rtt()));

  host::Flow* f1 = e.AddFlow(hosts[0], hosts[2], 10'000'000, /*start=*/0);
  host::Flow* f2 = e.AddFlow(hosts[1], hosts[2], 10'000'000, /*start=*/0);

  // Step the simulation and watch HPCC converge: the two windows settle so
  // the bottleneck runs at eta = 95% with an (almost) empty queue.
  net::SwitchNode& sw = e.topology().switch_node(e.topology().switches()[0]);
  std::printf("\n  %8s %12s %12s %12s\n", "time", "f1 window", "f2 window",
              "queue");
  for (int us = 0; us <= 200; us += 20) {
    e.RunUntil(sim::Us(us));
    std::printf("  %6dus %10lldB %10lldB %10lldB\n", us,
                static_cast<long long>(f1->cc().window_bytes()),
                static_cast<long long>(f2->cc().window_bytes()),
                static_cast<long long>(
                    sw.port(2).queue_bytes(net::kDataPriority)));
  }

  // Let both flows finish and report.
  e.RunUntil(sim::Ms(10));
  std::printf("\nf1 done=%d fct=%.1fus   f2 done=%d fct=%.1fus\n", f1->done,
              sim::ToUs(f1->finish_time), f2->done,
              sim::ToUs(f2->finish_time));
  runner::ExperimentResult r = e.Collect();
  std::printf("%s\n", r.Summary().c_str());
  return 0;
}
