// Fairness demo (Fig. 9g): flows join a bottleneck one by one; HPCC's
// MI/MD handles efficiency while the small additive-increase term W_AI
// drives the shares together (§3.2's decoupling).
#include <cstdio>
#include <vector>

#include "runner/experiment.h"
#include "stats/timeseries.h"

using namespace hpcc;

int main() {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = 5;
  cfg.star.host_bps = 25'000'000'000;  // testbed-style 25G hosts
  cfg.cc.scheme = "hpcc";
  cfg.cc.hpcc.wai_bytes = 200;  // larger W_AI -> faster fairness (§3.3)

  runner::Experiment e(cfg);
  const auto& h = e.hosts();
  stats::GoodputSampler gp(&e.simulator(), sim::Us(100));
  std::vector<host::Flow*> flows;
  for (int i = 0; i < 4; ++i) {
    host::Flow* f = e.AddFlow(h[i], h[4], 2'000'000'000, i * sim::Ms(1));
    flows.push_back(f);
    gp.Track(f, "flow" + std::to_string(i + 1));
  }
  const sim::TimePs horizon = sim::Ms(8);
  gp.Start(horizon);
  e.RunUntil(horizon);

  std::printf("per-flow goodput (Gbps) as flows join every 1 ms:\n");
  std::printf("  %8s %8s %8s %8s %8s\n", "time", "flow1", "flow2", "flow3",
              "flow4");
  const auto& pts = gp.series(0).points();
  const size_t stride = std::max<size_t>(1, pts.size() / 20);
  for (size_t i = 0; i < pts.size(); i += stride) {
    std::printf("  %6.1fms", sim::ToMs(pts[i].first));
    for (size_t f = 0; f < 4; ++f) {
      std::printf(" %8.2f", gp.series(f).points()[i].second);
    }
    std::printf("\n");
  }

  // Jain's fairness index across the last samples with all four active.
  double sum = 0;
  double sq = 0;
  for (size_t f = 0; f < 4; ++f) {
    const double g = gp.series(f).points().back().second;
    sum += g;
    sq += g * g;
  }
  std::printf("\nfinal Jain index: %.3f (1.0 = perfectly fair)\n",
              sum * sum / (4 * sq));
  return 0;
}
