// Incast recovery: the paper's motivating scenario (§1 Case-1). A 16-to-1
// burst slams into one downlink; compare how HPCC and DCQCN handle it —
// queue growth, PFC pauses, and completion times.
#include <cstdio>
#include <vector>

#include "runner/experiment.h"
#include "stats/queue_monitor.h"

using namespace hpcc;

namespace {

void RunScheme(const char* scheme) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kDumbbell;
  cfg.dumbbell.hosts_per_side = 16;
  cfg.dumbbell.host_bps = 100'000'000'000;
  cfg.dumbbell.trunk_bps = 400'000'000'000;
  cfg.cc.scheme = scheme;
  cfg.cc.hpcc.expected_flows = 16;
  cfg.duration = sim::Ms(3);
  runner::Experiment e(cfg);

  // All 16 left-side hosts burst 500 KB to the same right-side receiver.
  const auto& h = e.hosts();
  const uint32_t receiver = h[16];
  std::vector<host::Flow*> flows;
  for (int i = 0; i < 16; ++i) {
    flows.push_back(e.AddFlow(h[i], receiver, 500'000, 0));
  }

  runner::ExperimentResult r = e.Run();
  stats::PercentileTracker fct;
  for (auto* f : flows) {
    if (f->done) fct.Add(sim::ToUs(f->finish_time - f->spec().start_time));
  }
  std::printf("%-8s  max queue %8.1f KB   PFC pauses %3zu   "
              "FCT p50 %7.1f us  p99 %7.1f us\n",
              scheme, static_cast<double>(r.max_queue_bytes) / 1e3,
              r.pause_events, fct.Percentile(50), fct.Percentile(99));
}

}  // namespace

int main() {
  std::printf("16-to-1 incast through a 400G trunk onto a 100G downlink\n\n");
  for (const char* scheme : {"hpcc", "dcqcn", "dcqcn+win", "timely", "dctcp"}) {
    RunScheme(scheme);
  }
  std::printf(
      "\nHPCC bounds inflight bytes, so the burst never builds a deep queue "
      "and PFC stays silent; rate-only schemes overshoot (§3.2).\n");
  return 0;
}
