// Tests for the RCP baseline (§3.4/§6): switch-computed fair rates,
// processor-sharing convergence, and the contrast with HPCC.
#include <gtest/gtest.h>

#include "cc/rcp.h"
#include "runner/experiment.h"

namespace hpcc::runner {
namespace {

ExperimentConfig StarCfg(int hosts, const char* scheme = "rcp") {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kStar;
  cfg.star.num_hosts = hosts;
  cfg.cc.scheme = scheme;
  return cfg;
}

TEST(RcpUnit, AdoptsStampedRate) {
  cc::CcContext ctx;
  ctx.nic_bps = 100'000'000'000;
  ctx.base_rtt = sim::Us(10);
  cc::RcpCc cc(ctx);
  EXPECT_EQ(cc.rate_bps(), 100'000'000'000);
  cc::AckInfo a;
  a.rcp_rate_bps = 25'000'000'000;
  cc.OnAck(a);
  EXPECT_EQ(cc.rate_bps(), 25'000'000'000);
  // Unstamped ACKs (max sentinel / zero) leave the rate alone.
  a.rcp_rate_bps = std::numeric_limits<int64_t>::max();
  cc.OnAck(a);
  EXPECT_EQ(cc.rate_bps(), 25'000'000'000);
  a.rcp_rate_bps = 0;
  cc.OnAck(a);
  EXPECT_EQ(cc.rate_bps(), 25'000'000'000);
  // Stamps above the NIC speed clamp to line rate.
  a.rcp_rate_bps = 400'000'000'000;
  cc.OnAck(a);
  EXPECT_EQ(cc.rate_bps(), 100'000'000'000);
}

TEST(Rcp, SingleFlowRunsNearLineRate) {
  Experiment e(StarCfg(2));
  const auto& h = e.hosts();
  host::Flow* f = e.AddFlow(h[0], h[1], 10'000'000, 0);
  e.RunUntil(sim::Ms(3));
  ASSERT_TRUE(f->done);
  const double gbps = 10e6 * 8 / sim::ToSec(f->finish_time) / 1e9;
  EXPECT_GT(gbps, 70.0);
}

TEST(Rcp, TwoFlowsConvergeToHalfShareEach) {
  Experiment e(StarCfg(3));
  const auto& h = e.hosts();
  host::Flow* f1 = e.AddFlow(h[0], h[2], 1'000'000'000, 0);
  host::Flow* f2 = e.AddFlow(h[1], h[2], 1'000'000'000, 0);
  e.RunUntil(sim::Ms(1));
  const uint64_t a1 = f1->snd_una;
  const uint64_t a2 = f2->snd_una;
  e.RunUntil(sim::Ms(3));
  // Goodput over the last 2ms: processor sharing splits the link evenly.
  const double g1 = static_cast<double>(f1->snd_una - a1);
  const double g2 = static_cast<double>(f2->snd_una - a2);
  const double jain = (g1 + g2) * (g1 + g2) / (2 * (g1 * g1 + g2 * g2));
  EXPECT_GT(jain, 0.98);
  // And the bottleneck is well used.
  const double gbps = (g1 + g2) * 8 / sim::ToSec(sim::Ms(2)) / 1e9;
  EXPECT_GT(gbps, 60.0);
  EXPECT_LE(gbps, 100.0);
}

TEST(Rcp, SwitchRateApproachesFairShare) {
  Experiment e(StarCfg(5));
  const auto& h = e.hosts();
  for (int i = 0; i < 4; ++i) {
    e.AddFlow(h[i], h[4], 1'000'000'000, 0);
  }
  e.RunUntil(sim::Ms(4));
  net::SwitchNode& sw = e.topology().switch_node(e.topology().switches()[0]);
  // Port 4 (toward the receiver) should have settled near C/4 = 25G.
  EXPECT_GT(sw.rcp_rate(4), 10'000'000'000);
  EXPECT_LT(sw.rcp_rate(4), 45'000'000'000);
}

TEST(Rcp, IncastCompletesWithoutDrops) {
  Experiment e(StarCfg(9, "rcp+win"));
  const auto& h = e.hosts();
  std::vector<host::Flow*> flows;
  for (int i = 0; i < 8; ++i) {
    flows.push_back(e.AddFlow(h[i], h[8], 400'000, 0));
  }
  e.RunUntil(sim::Ms(10));
  ExperimentResult r = e.Collect();
  for (auto* f : flows) EXPECT_TRUE(f->done);
  EXPECT_EQ(r.dropped_packets, 0u);
}

TEST(Rcp, HpccHoldsSmallerQueueUnderIncastStart) {
  // §3.4's point in action: RCP reacts through its periodic rate updates and
  // queue term; HPCC's inflight-bytes limit absorbs the line-rate start
  // burst with far less peak queueing.
  auto peak_queue = [](const char* scheme) {
    ExperimentConfig cfg = StarCfg(9, scheme);
    cfg.cc.hpcc.expected_flows = 8;
    Experiment e(cfg);
    const auto& h = e.hosts();
    for (int i = 0; i < 8; ++i) {
      e.AddFlow(h[i], h[8], 2'000'000, 0);
    }
    net::SwitchNode& sw =
        e.topology().switch_node(e.topology().switches()[0]);
    int64_t peak = 0;
    for (int t = 0; t < 600; ++t) {
      e.RunUntil(t * sim::Us(1));
      peak = std::max(peak, sw.port(8).queue_bytes(net::kDataPriority));
    }
    return peak;
  };
  EXPECT_LT(peak_queue("hpcc"), peak_queue("rcp"));
}

TEST(Rcp, MixedWorkloadCompletes) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kFatTree;
  cfg.fattree.pods = 2;
  cfg.fattree.tors_per_pod = 2;
  cfg.fattree.aggs_per_pod = 2;
  cfg.fattree.hosts_per_tor = 4;
  cfg.cc.scheme = "rcp";
  cfg.load = 0.3;
  cfg.trace = "fbhadoop";
  cfg.max_flows = 150;
  cfg.duration = sim::Ms(2);
  Experiment e(cfg);
  ExperimentResult r = e.Run();
  EXPECT_GE(r.flows_completed, r.flows_created * 95 / 100);
  EXPECT_EQ(r.dropped_packets, 0u);
}

}  // namespace
}  // namespace hpcc::runner
