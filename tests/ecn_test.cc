// Tests for WRED/ECN marking.
#include <gtest/gtest.h>

#include "net/ecn.h"

namespace hpcc::net {
namespace {

TEST(Red, DisabledNeverMarks) {
  RedConfig red;
  sim::Rng rng(1);
  EXPECT_FALSE(red.ShouldMark(1 << 30, 25'000'000'000, rng));
}

TEST(Red, BelowKminNeverMarks) {
  RedConfig red = RedConfig::Dcqcn(100, 400);
  sim::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(red.ShouldMark(99'000, 25'000'000'000, rng));
  }
}

TEST(Red, AboveKmaxAlwaysMarks) {
  RedConfig red = RedConfig::Dcqcn(100, 400);
  sim::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(red.ShouldMark(500'000, 25'000'000'000, rng));
  }
}

TEST(Red, LinearRampBetweenThresholds) {
  RedConfig red = RedConfig::Dcqcn(100, 400, /*pmax=*/0.2);
  sim::Rng rng(7);
  // Midpoint: marking probability should be ~pmax/2 = 0.1.
  int marks = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (red.ShouldMark(250'000, 25'000'000'000, rng)) ++marks;
  }
  EXPECT_NEAR(static_cast<double>(marks) / n, 0.1, 0.01);
}

TEST(Red, ThresholdsScaleWithPortSpeed) {
  RedConfig red = RedConfig::Dcqcn(100, 400);
  // §5.1: Kmin = 100KB * Bw/25G.
  EXPECT_DOUBLE_EQ(red.ScaledKmin(25'000'000'000), 100'000.0);
  EXPECT_DOUBLE_EQ(red.ScaledKmin(100'000'000'000), 400'000.0);
  EXPECT_DOUBLE_EQ(red.ScaledKmax(100'000'000'000), 1'600'000.0);
  sim::Rng rng(1);
  // 200KB queue: above Kmax at 25G but below Kmin at 100G.
  EXPECT_FALSE(red.ShouldMark(399'000, 100'000'000'000, rng));
}

TEST(Red, DctcpIsStepMark) {
  RedConfig red = RedConfig::Dctcp(30);
  sim::Rng rng(1);
  // At 10G reference: threshold 30KB, step to probability 1.
  EXPECT_FALSE(red.ShouldMark(29'000, 10'000'000'000, rng));
  EXPECT_TRUE(red.ShouldMark(31'000, 10'000'000'000, rng));
}

TEST(Red, MarkingProbabilityMonotoneInQueue) {
  RedConfig red = RedConfig::Dcqcn(100, 400, 0.2);
  auto estimate = [&red](int64_t q) {
    sim::Rng rng(3);
    int marks = 0;
    for (int i = 0; i < 50'000; ++i) {
      if (red.ShouldMark(q, 25'000'000'000, rng)) ++marks;
    }
    return static_cast<double>(marks) / 50'000;
  };
  const double p1 = estimate(150'000);
  const double p2 = estimate(250'000);
  const double p3 = estimate(350'000);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
}

}  // namespace
}  // namespace hpcc::net
