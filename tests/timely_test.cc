// Unit tests for the TIMELY baseline.
#include <gtest/gtest.h>

#include "cc/timely.h"

namespace hpcc::cc {
namespace {

constexpr int64_t kNic = 25'000'000'000;

CcContext Ctx() {
  CcContext ctx;
  ctx.nic_bps = kNic;
  ctx.base_rtt = sim::Us(9);
  return ctx;
}

AckInfo Ack(sim::TimePs rtt) {
  AckInfo a;
  a.rtt = rtt;
  a.newly_acked = 1000;
  return a;
}

TEST(Timely, StartsAtLineRate) {
  TimelyCc cc(Ctx(), TimelyParams{});
  EXPECT_EQ(cc.rate_bps(), kNic);
}

TEST(Timely, FirstRttOnlyPrimes) {
  TimelyCc cc(Ctx(), TimelyParams{});
  cc.OnAck(Ack(sim::Us(300)));
  EXPECT_EQ(cc.rate_bps(), kNic);
}

TEST(Timely, BelowTlowAdditiveIncrease) {
  TimelyParams p;
  TimelyCc cc(Ctx(), p);
  cc.OnAck(Ack(sim::Us(40)));
  // Pull the rate down first so increase is observable.
  cc.OnAck(Ack(sim::Us(600)));
  const int64_t r0 = cc.rate_bps();
  cc.OnAck(Ack(sim::Us(30)));
  const double step = static_cast<double>(p.add_step_bps_at_10g) * kNic / 10e9;
  EXPECT_NEAR(static_cast<double>(cc.rate_bps() - r0), step, step * 0.01);
}

TEST(Timely, AboveThighMultiplicativeDecrease) {
  TimelyParams p;
  TimelyCc cc(Ctx(), p);
  cc.OnAck(Ack(sim::Us(100)));
  const sim::TimePs rtt = sim::Us(1000);
  cc.OnAck(Ack(rtt));
  const double expected =
      kNic * (1.0 - p.beta * (1.0 - static_cast<double>(p.t_high) /
                                        static_cast<double>(rtt)));
  EXPECT_NEAR(static_cast<double>(cc.rate_bps()), expected, expected * 0.01);
}

TEST(Timely, PositiveGradientDecreases) {
  TimelyCc cc(Ctx(), TimelyParams{});
  // Steadily rising RTT inside [Tlow, Thigh]: gradient > 0 -> decrease.
  cc.OnAck(Ack(sim::Us(100)));
  cc.OnAck(Ack(sim::Us(130)));
  cc.OnAck(Ack(sim::Us(160)));
  EXPECT_GT(cc.normalized_gradient(), 0.0);
  EXPECT_LT(cc.rate_bps(), kNic);
}

TEST(Timely, NegativeGradientIncreases) {
  TimelyCc cc(Ctx(), TimelyParams{});
  cc.OnAck(Ack(sim::Us(400)));
  cc.OnAck(Ack(sim::Us(450)));  // drop the rate below line first
  const int64_t r0 = cc.rate_bps();
  cc.OnAck(Ack(sim::Us(300)));
  cc.OnAck(Ack(sim::Us(200)));
  EXPECT_LT(cc.normalized_gradient(), 0.0);
  EXPECT_GT(cc.rate_bps(), r0);
}

TEST(Timely, HaiAfterConsecutiveGoodRounds) {
  TimelyParams p;
  TimelyCc cc(Ctx(), p);
  cc.OnAck(Ack(sim::Us(490)));
  cc.OnAck(Ack(sim::Us(499)));  // decrease once (gradient > 0)
  // Feed monotonically falling RTTs in band: negative gradient runs.
  sim::TimePs rtt = sim::Us(400);
  int64_t prev = cc.rate_bps();
  double last_step = 0;
  for (int i = 0; i < 8; ++i) {
    cc.OnAck(Ack(rtt));
    rtt -= sim::Us(20);
    last_step = static_cast<double>(cc.rate_bps() - prev);
    prev = cc.rate_bps();
  }
  EXPECT_GE(cc.neg_gradient_rounds(), 5);
  const double base_step =
      static_cast<double>(p.add_step_bps_at_10g) * kNic / 10e9;
  EXPECT_NEAR(last_step, 5 * base_step, base_step * 0.5);  // HAI x5
}

TEST(Timely, RateStaysWithinBounds) {
  TimelyCc cc(Ctx(), TimelyParams{});
  cc.OnAck(Ack(sim::Us(100)));
  for (int i = 0; i < 100; ++i) cc.OnAck(Ack(sim::Us(2000)));
  EXPECT_GE(cc.rate_bps(), static_cast<int64_t>(kNic * 0.001));
  for (int i = 0; i < 10000; ++i) cc.OnAck(Ack(sim::Us(10)));
  EXPECT_LE(cc.rate_bps(), kNic);
}

TEST(Timely, IgnoresAcksWithoutRtt) {
  TimelyCc cc(Ctx(), TimelyParams{});
  AckInfo a;
  a.rtt = 0;
  cc.OnAck(a);
  EXPECT_EQ(cc.rate_bps(), kNic);
}

TEST(Timely, PureRateBased) {
  TimelyCc cc(Ctx(), TimelyParams{});
  EXPECT_GT(cc.window_bytes(), int64_t{1} << 50);
  EXPECT_FALSE(cc.wants_ecn());
  EXPECT_FALSE(cc.wants_int());
  EXPECT_EQ(cc.name(), "timely");
}

}  // namespace
}  // namespace hpcc::cc
