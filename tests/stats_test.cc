// Tests for percentile tracking, FCT binning, time series and PFC stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>

#include "sim/rng.h"
#include "stats/fct_recorder.h"
#include "stats/percentile.h"
#include "stats/pfc_monitor.h"
#include "stats/timeseries.h"

namespace hpcc::stats {
namespace {

TEST(Percentile, EmptyIsNaN) {
  // NaN (not 0) so "no samples" is distinguishable from a real 0 downstream;
  // CSV/manifest writers map it to an empty cell / JSON null.
  PercentileTracker t;
  EXPECT_TRUE(std::isnan(t.Percentile(50)));
  EXPECT_TRUE(std::isnan(t.Mean()));
  EXPECT_TRUE(std::isnan(t.Min()));
  EXPECT_TRUE(std::isnan(t.Max()));
  EXPECT_TRUE(t.Empty());
}

TEST(Percentile, ConstReadDoesNotMutate) {
  // Reading an unsorted tracker must not reorder samples_: concurrent
  // readers of a merged tracker would race otherwise. Exercised for real
  // under TSan by the ConcurrentReads test below.
  PercentileTracker a;
  for (int i = 100; i > 0; --i) a.Add(i);
  PercentileTracker b;
  b.Merge(a);  // unsorted
  const PercentileTracker& view = b;
  EXPECT_NEAR(view.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(view.Percentile(50), 50.5, 0.01);
  b.Sort();  // fast path gives identical answers
  EXPECT_NEAR(view.Percentile(50), 50.5, 0.01);
}

TEST(Percentile, ConcurrentReads) {
  // Cross-thread read of one merged tracker: the sweep-aggregation pattern
  // the TSan CI job guards. Both sorted and unsorted trackers are read from
  // two threads at once.
  PercentileTracker shared;
  sim::Rng rng(7);
  for (int i = 0; i < 20000; ++i) shared.Add(rng.Uniform() * 1e6);
  PercentileTracker unsorted;
  unsorted.Merge(shared);
  shared.Sort();
  auto reader = [&](const PercentileTracker& t, double* out) {
    double acc = 0;
    for (int i = 0; i < 50; ++i) {
      acc += t.Percentile(50) + t.Percentile(99) + t.Mean() + t.Max();
    }
    *out = acc;
  };
  double r1 = 0, r2 = 0, r3 = 0, r4 = 0;
  std::thread t1(reader, std::cref(shared), &r1);
  std::thread t2(reader, std::cref(shared), &r2);
  std::thread t3(reader, std::cref(unsorted), &r3);
  std::thread t4(reader, std::cref(unsorted), &r4);
  t1.join();
  t2.join();
  t3.join();
  t4.join();
  EXPECT_DOUBLE_EQ(r1, r2);
  EXPECT_DOUBLE_EQ(r3, r4);
  EXPECT_DOUBLE_EQ(r1, r3);
}

TEST(Percentile, SingleSample) {
  PercentileTracker t;
  t.Add(42);
  EXPECT_EQ(t.Percentile(0), 42);
  EXPECT_EQ(t.Percentile(50), 42);
  EXPECT_EQ(t.Percentile(100), 42);
}

TEST(Percentile, KnownQuantiles) {
  PercentileTracker t;
  for (int i = 1; i <= 100; ++i) t.Add(i);
  EXPECT_NEAR(t.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(t.Percentile(95), 95.05, 0.01);
  EXPECT_NEAR(t.Percentile(99), 99.01, 0.01);
  EXPECT_EQ(t.Min(), 1);
  EXPECT_EQ(t.Max(), 100);
  EXPECT_DOUBLE_EQ(t.Mean(), 50.5);
}

TEST(Percentile, InterleavedAddAndQuery) {
  PercentileTracker t;
  t.Add(10);
  EXPECT_EQ(t.Percentile(50), 10);
  t.Add(20);
  t.Add(30);
  EXPECT_EQ(t.Percentile(50), 20);  // re-sorts after new samples
}

class PercentileProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PercentileProperty, MatchesSortedVector) {
  sim::Rng rng(GetParam());
  PercentileTracker t;
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.Uniform() * 1e6;
    t.Add(x);
    v.push_back(x);
  }
  std::sort(v.begin(), v.end());
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0}) {
    const double rank = p / 100.0 * (v.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    const double want = v[lo] * (1 - frac) + v[std::min(lo + 1, v.size() - 1)] * frac;
    EXPECT_NEAR(t.Percentile(p), want, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty,
                         ::testing::Values(3, 5, 8));

TEST(FctRecorder, BinsBySizeAndFloorsSlowdownAtOne) {
  FctRecorder r({1'000, 10'000});
  r.Record(500, sim::Us(10), sim::Us(10));    // slowdown 1, bin 0
  r.Record(500, sim::Us(5), sim::Us(10));     // floored to 1
  r.Record(5'000, sim::Us(40), sim::Us(10));  // slowdown 4, bin 1
  r.Record(50'000, sim::Us(90), sim::Us(10)); // slowdown 9, bin 2
  EXPECT_EQ(r.bin(0).Count(), 2u);
  EXPECT_EQ(r.bin(1).Count(), 1u);
  EXPECT_EQ(r.bin(2).Count(), 1u);
  EXPECT_DOUBLE_EQ(r.bin(0).Percentile(50), 1.0);
  EXPECT_DOUBLE_EQ(r.bin(1).Percentile(50), 4.0);
  EXPECT_EQ(r.total_flows(), 4u);
}

TEST(FctRecorder, EdgeSizesGoToLowerBin) {
  FctRecorder r({1'000});
  r.Record(1'000, sim::Us(10), sim::Us(10));  // exactly the edge
  EXPECT_EQ(r.bin(0).Count(), 1u);
  EXPECT_EQ(r.bin(1).Count(), 0u);
}

TEST(FctRecorder, PaperBinSets) {
  EXPECT_EQ(FctRecorder::WebSearchBins().size(), 10u);
  EXPECT_EQ(FctRecorder::WebSearchBins().back(), 30'000'000u);
  EXPECT_EQ(FctRecorder::FbHadoopBins().front(), 324u);
  EXPECT_EQ(FctRecorder::FbHadoopBins().back(), 10'000'000u);
}

TEST(FctRecorder, TableFormatsNonEmptyBins) {
  FctRecorder r(FctRecorder::WebSearchBins());
  r.Record(100, sim::Us(20), sim::Us(10));
  r.Record(25'000'000, sim::Us(400), sim::Us(100));
  const std::string table = r.FormatTable();
  EXPECT_NE(table.find("<=6.7K"), std::string::npos);
  EXPECT_NE(table.find("all"), std::string::npos);
}

TEST(TimeSeries, StoresAndFormats) {
  TimeSeries ts;
  ts.Add(sim::Us(1), 10.0);
  ts.Add(sim::Us(2), 30.0);
  EXPECT_EQ(ts.points().size(), 2u);
  EXPECT_DOUBLE_EQ(ts.MaxValue(), 30.0);
  EXPECT_FALSE(ts.Format().empty());
}

TEST(TimeSeries, MaxPointsCapsViaStrideDoubling) {
  TimeSeries ts(64);
  EXPECT_EQ(ts.max_points(), 64u);
  for (int i = 0; i < 100'000; ++i) {
    ts.Add(sim::Us(i), static_cast<double>(i));
  }
  // Bounded no matter how long the run...
  EXPECT_LE(ts.points().size(), 64u);
  EXPECT_GE(ts.points().size(), 32u);  // ...but not over-thinned
  // ...and the endpoints survive every compaction.
  EXPECT_EQ(ts.points().front().first, sim::Us(0));
  EXPECT_EQ(ts.points().back().first, sim::Us(99'999));
  // Time stays strictly increasing through compactions.
  for (size_t i = 1; i < ts.points().size(); ++i) {
    EXPECT_LT(ts.points()[i - 1].first, ts.points()[i].first);
  }
}

TEST(TimeSeries, CapAppliedToExistingPoints) {
  TimeSeries ts;
  for (int i = 0; i < 1000; ++i) ts.Add(sim::Us(i), 1.0);
  ts.set_max_points(16);
  EXPECT_LE(ts.points().size(), 16u);
  EXPECT_EQ(ts.points().front().first, sim::Us(0));
}

TEST(TimeSeries, TinyCapClampedToUsableMinimum) {
  TimeSeries ts(1);  // clamped to 4: first/last plus a thinned middle
  EXPECT_EQ(ts.max_points(), 4u);
  for (int i = 0; i < 100; ++i) ts.Add(sim::Us(i), 1.0);
  EXPECT_LE(ts.points().size(), 4u);
  EXPECT_FALSE(ts.empty());
}

TEST(PfcMonitor, TracksDurationsAndPeaks) {
  PfcMonitor m;
  const auto& obs = m.observer();
  // node 1 port 0 paused 10us..40us; node 2 port 1 paused 20us..50us.
  obs.on_change(1, 0, net::kDataPriority, sim::Us(10), true);
  obs.on_change(2, 1, net::kDataPriority, sim::Us(20), true);
  obs.on_change(1, 0, net::kDataPriority, sim::Us(40), false);
  obs.on_change(2, 1, net::kDataPriority, sim::Us(50), false);
  m.Finish(sim::Us(100));
  EXPECT_EQ(m.pause_count(), 2u);
  EXPECT_EQ(m.total_pause_time(), sim::Us(60));
  EXPECT_NEAR(m.PauseTimeFraction(sim::Us(100), 6), 0.1, 1e-9);
  const PercentileTracker d = m.DurationDistributionUs();
  EXPECT_DOUBLE_EQ(d.Percentile(100), 30.0);
}

TEST(PfcMonitor, OpenPausesClosedByFinish) {
  PfcMonitor m;
  m.observer().on_change(1, 0, net::kDataPriority, sim::Us(10), true);
  m.Finish(sim::Us(25));
  EXPECT_EQ(m.total_pause_time(), sim::Us(15));
}

TEST(PfcMonitor, IgnoresControlPriority) {
  PfcMonitor m;
  m.observer().on_change(1, 0, net::kControlPriority, sim::Us(10), true);
  EXPECT_EQ(m.pause_count(), 0u);
}

TEST(PfcMonitor, DuplicatePauseEventsIgnored) {
  PfcMonitor m;
  m.observer().on_change(1, 0, net::kDataPriority, sim::Us(10), true);
  m.observer().on_change(1, 0, net::kDataPriority, sim::Us(11), true);
  m.observer().on_change(1, 0, net::kDataPriority, sim::Us(20), false);
  m.observer().on_change(1, 0, net::kDataPriority, sim::Us(21), false);
  m.Finish(sim::Us(30));
  EXPECT_EQ(m.pause_count(), 1u);
  EXPECT_EQ(m.total_pause_time(), sim::Us(10));
}

}  // namespace
}  // namespace hpcc::stats
