// Tests for ports, links, and the switch pipeline: delivery timing, FIFO,
// INT stamping at dequeue, ECN marking, buffer drops and PFC on the wire.
#include <gtest/gtest.h>

#include <vector>

#include "net/packet.h"
#include "net/port.h"
#include "net/switch_node.h"
#include "sim/simulator.h"

namespace hpcc::net {
namespace {

class SinkNode : public Node {
 public:
  using Node::Node;
  void Receive(PacketPtr pkt, int in_port) override {
    arrival_times.push_back(simulator_->now());
    in_ports.push_back(in_port);
    received.push_back(std::move(pkt));
  }
  bool IsSwitch() const override { return false; }

  std::vector<PacketPtr> received;
  std::vector<sim::TimePs> arrival_times;
  std::vector<int> in_ports;
};

constexpr int64_t kBps = 100'000'000'000;
constexpr sim::TimePs kDelay = sim::Us(1);

void Wire(Node& a, Node& b, int64_t bps, sim::TimePs delay) {
  const int pa = a.AddPort(std::make_unique<Port>(&a, a.num_ports(), bps,
                                                  delay));
  const int pb = b.AddPort(std::make_unique<Port>(&b, b.num_ports(), bps,
                                                  delay));
  a.port(pa).ConnectTo(&b, pb);
  b.port(pb).ConnectTo(&a, pa);
}

// A(0) -- switch -- B(1); node ids: A=0, B=1, switch=2.
struct Fixture {
  sim::Simulator s;
  SinkNode a{&s, 0, "a"};
  SinkNode b{&s, 1, "b"};
  SwitchNode sw;

  explicit Fixture(SwitchConfig cfg = {}) : sw(&s, 2, "sw", cfg) {
    Wire(a, sw, kBps, kDelay);
    Wire(b, sw, kBps, kDelay);
    std::vector<std::vector<uint16_t>> routes(3);
    routes[0] = {0};  // toward A via switch port 0
    routes[1] = {1};  // toward B via switch port 1
    sw.SetRoutes(std::move(routes));
    sw.FinishSetup();
  }

  PacketPtr Data(int payload = 1000, bool int_on = false, uint64_t seq = 0,
                 bool ecn = false) {
    auto p = MakeDataPacket(1, 0, 1, seq, payload, int_on, ecn);
    return p;
  }
};

TEST(Switch, DeliversWithExactTiming) {
  Fixture f;
  f.a.port(0).Enqueue(f.Data());
  f.s.Run();
  ASSERT_EQ(f.b.received.size(), 1u);
  // Two serializations (host link + switch egress) + two propagations.
  const sim::TimePs ser = sim::SerializationTime(1048, kBps);
  EXPECT_EQ(f.b.arrival_times[0], 2 * ser + 2 * kDelay);
  EXPECT_EQ(f.sw.forwarded_packets(), 1u);
  EXPECT_EQ(f.sw.dropped_packets(), 0u);
}

TEST(Switch, FifoOrderPreserved) {
  Fixture f;
  for (uint64_t i = 0; i < 10; ++i) {
    f.a.port(0).Enqueue(f.Data(1000, false, i * 1000));
  }
  f.s.Run();
  ASSERT_EQ(f.b.received.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(f.b.received[i]->seq, i * 1000);
  }
}

TEST(Switch, BackToBackPacketsPipelineOnTheWire) {
  Fixture f;
  const int n = 5;
  for (int i = 0; i < n; ++i) f.a.port(0).Enqueue(f.Data());
  f.s.Run();
  const sim::TimePs ser = sim::SerializationTime(1048, kBps);
  // Steady state: one packet per serialization time.
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(f.b.arrival_times[i] - f.b.arrival_times[i - 1], ser);
  }
}

TEST(Switch, StampsIntHopAtDequeue) {
  Fixture f;
  f.a.port(0).Enqueue(f.Data(1000, /*int_on=*/true));
  f.s.Run();
  ASSERT_EQ(f.b.received.size(), 1u);
  const Packet& p = *f.b.received[0];
  ASSERT_EQ(p.int_stack.n_hops(), 1);
  const core::IntHop& h = p.int_stack.hop(0);
  EXPECT_EQ(h.bandwidth_bps, kBps);
  EXPECT_EQ(h.switch_id, 2u);
  EXPECT_EQ(h.qlen_bytes, 0);  // nothing left behind
  EXPECT_EQ(h.tx_bytes, static_cast<uint64_t>(p.size_bytes()));
  EXPECT_EQ(p.int_stack.path_id(), 2);
}

TEST(Switch, IntQlenReportsQueueLeftBehind) {
  Fixture f;
  // Three INT packets arrive back-to-back; the first leaves two behind.
  for (int i = 0; i < 3; ++i) {
    f.a.port(0).Enqueue(f.Data(1000, true, static_cast<uint64_t>(i) * 1000));
  }
  f.s.Run();
  ASSERT_EQ(f.b.received.size(), 3u);
  // Arrival at the switch is paced by the ingress link at the same speed as
  // the egress, so queue occupancy at dequeue is 0 here; instead verify
  // txBytes monotonically accumulates.
  uint64_t prev = 0;
  for (const auto& p : f.b.received) {
    EXPECT_GT(p->int_stack.hop(0).tx_bytes, prev);
    prev = p->int_stack.hop(0).tx_bytes;
  }
}

TEST(Switch, IntNotStampedWhenPacketDoesNotAsk) {
  Fixture f;
  f.a.port(0).Enqueue(f.Data(1000, /*int_on=*/false));
  f.s.Run();
  EXPECT_EQ(f.b.received[0]->int_stack.n_hops(), 0);
}

TEST(Switch, IntDisabledSwitchDoesNotStamp) {
  SwitchConfig cfg;
  cfg.int_enabled = false;
  Fixture f(cfg);
  f.a.port(0).Enqueue(f.Data(1000, /*int_on=*/true));
  f.s.Run();
  EXPECT_EQ(f.b.received[0]->int_stack.n_hops(), 0);
}

TEST(Switch, EcnMarksAboveKmax) {
  SwitchConfig cfg;
  cfg.red.enabled = true;
  cfg.red.kmin_bytes = 0;
  cfg.red.kmax_bytes = 0;  // always mark ECN-capable packets
  cfg.red.pmax = 1.0;
  Fixture f(cfg);
  f.a.port(0).Enqueue(f.Data(1000, false, 0, /*ecn=*/true));
  f.a.port(0).Enqueue(f.Data(1000, false, 1000, /*ecn=*/false));
  f.s.Run();
  ASSERT_EQ(f.b.received.size(), 2u);
  EXPECT_TRUE(f.b.received[0]->ecn_ce);
  EXPECT_FALSE(f.b.received[1]->ecn_ce);  // not ECN-capable: never marked
}

// Two senders converging on one egress: the only way queues build when all
// links run at the same speed.
struct FanInFixture {
  sim::Simulator s;
  SinkNode a{&s, 0, "a"};
  SinkNode c{&s, 1, "c"};
  SinkNode b{&s, 2, "b"};  // receiver
  SwitchNode sw;

  explicit FanInFixture(SwitchConfig cfg = {}) : sw(&s, 3, "sw", cfg) {
    Wire(a, sw, kBps, kDelay);
    Wire(c, sw, kBps, kDelay);
    Wire(b, sw, kBps, kDelay);
    std::vector<std::vector<uint16_t>> routes(4);
    routes[0] = {0};
    routes[1] = {1};
    routes[2] = {2};
    sw.SetRoutes(std::move(routes));
    sw.FinishSetup();
  }

  void Blast(SinkNode& src, uint64_t flow, int packets) {
    for (int i = 0; i < packets; ++i) {
      src.port(0).Enqueue(MakeDataPacket(flow, src.id(), 2,
                                         static_cast<uint64_t>(i) * 1000,
                                         1000, false, false));
    }
  }
};

TEST(Switch, TailDropWhenBufferExhausted) {
  SwitchConfig cfg;
  cfg.buffer_bytes = 5'000;  // fits ~four 1048B packets
  cfg.pfc_enabled = false;
  cfg.egress_alpha = 1e9;  // disable the dynamic threshold; pure tail drop
  FanInFixture f(cfg);
  f.Blast(f.a, 1, 30);
  f.Blast(f.c, 2, 30);
  f.s.Run();
  EXPECT_GT(f.sw.dropped_packets(), 0u);
  EXPECT_EQ(f.b.received.size() + f.sw.dropped_packets(), 60u);
}

TEST(Switch, LossyDynamicThresholdDropsBeforeBufferFull) {
  SwitchConfig cfg;
  cfg.buffer_bytes = 1'000'000;
  cfg.pfc_enabled = false;
  cfg.egress_alpha = 0.000003;  // threshold ~ 3 bytes: everything queued drops
  Fixture f(cfg);
  for (int i = 0; i < 5; ++i) {
    f.a.port(0).Enqueue(f.Data(1000, false, static_cast<uint64_t>(i) * 1000));
  }
  f.s.Run();
  // First packet goes straight to the idle egress queue then dequeues;
  // subsequent arrivals find the queue over threshold.
  EXPECT_GT(f.sw.dropped_packets(), 0u);
}

TEST(Switch, SendsPfcPauseUpstreamWhenIngressExceedsThreshold) {
  SwitchConfig cfg;
  cfg.pfc_enabled = true;
  cfg.buffer_bytes = 200'000;
  cfg.pfc_alpha = 0.02;  // pause past ~4KB ingress occupancy
  FanInFixture f(cfg);
  // 2:1 fan-in overloads the egress toward B; per-ingress occupancy crosses
  // the dynamic threshold and both upstreams get paused.
  f.Blast(f.a, 1, 40);
  f.Blast(f.c, 2, 40);
  f.s.Run();
  int pauses = 0;
  int resumes = 0;
  for (const auto& p : f.a.received) {
    pauses += p->type == PacketType::kPfcPause;
    resumes += p->type == PacketType::kPfcResume;
  }
  EXPECT_GT(pauses, 0);
  EXPECT_EQ(pauses, resumes);  // every pause eventually resumed
  // All data still delivered (lossless).
  EXPECT_EQ(f.b.received.size(), 80u);
  EXPECT_EQ(f.sw.dropped_packets(), 0u);
}

TEST(Switch, PfcFrameArrivingPausesEgressPort) {
  Fixture f;
  // Deliver a PAUSE to the switch through port 0 (as if A sent it).
  f.a.port(0).Enqueue(MakePfc(PacketType::kPfcPause, kDataPriority));
  f.s.Run();
  EXPECT_TRUE(f.sw.port(0).paused(kDataPriority));
  // Data toward A now sticks in the switch...
  auto toward_a = MakeDataPacket(2, 1, 0, 0, 1000, false, false);
  f.b.port(0).Enqueue(std::move(toward_a));
  f.s.Run();
  EXPECT_TRUE(f.a.received.empty());
  EXPECT_GT(f.sw.port(0).queue_bytes(kDataPriority), 0);
  // ...until a RESUME arrives.
  f.a.port(0).Enqueue(MakePfc(PacketType::kPfcResume, kDataPriority));
  f.s.Run();
  ASSERT_EQ(f.a.received.size(), 1u);
  EXPECT_EQ(f.a.received[0]->type, PacketType::kData);
}

TEST(Switch, ControlTrafficBypassesPausedData) {
  Fixture f;
  f.a.port(0).Enqueue(MakePfc(PacketType::kPfcPause, kDataPriority));
  f.s.Run();
  // Data stuck, but a CNP (control priority) flows through.
  f.b.port(0).Enqueue(MakeDataPacket(2, 1, 0, 0, 1000, false, false));
  f.b.port(0).Enqueue(MakeCnp(2, 1, 0));
  f.s.Run();
  ASSERT_EQ(f.a.received.size(), 1u);
  EXPECT_EQ(f.a.received[0]->type, PacketType::kCnp);
}

TEST(Switch, EcmpSpreadsFlowsAcrossEqualPaths) {
  sim::Simulator s;
  SinkNode a(&s, 0, "a");
  SinkNode b(&s, 1, "b");
  SwitchNode sw(&s, 2, "sw", {});
  Wire(a, sw, kBps, kDelay);
  Wire(b, sw, kBps, kDelay);
  Wire(b, sw, kBps, kDelay);  // second equal-cost port toward B
  std::vector<std::vector<uint16_t>> routes(3);
  routes[0] = {0};
  routes[1] = {1, 2};
  sw.SetRoutes(std::move(routes));
  sw.FinishSetup();
  // Many flows: both ports must be chosen at least once, and one flow must
  // always hash to the same port.
  Packet probe;
  probe.dst = 1;
  bool saw[2] = {false, false};
  for (uint64_t flow = 0; flow < 64; ++flow) {
    probe.flow_id = flow;
    const int p0 = sw.RoutePort(probe);
    EXPECT_EQ(sw.RoutePort(probe), p0);
    ASSERT_TRUE(p0 == 1 || p0 == 2);
    saw[p0 - 1] = true;
  }
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
}

TEST(Port, TxBytesCountsEverything) {
  Fixture f;
  f.a.port(0).Enqueue(f.Data());
  f.s.Run();
  EXPECT_EQ(f.a.port(0).tx_bytes(), 1048u);
  EXPECT_EQ(f.sw.port(1).tx_bytes(), 1048u);
  EXPECT_EQ(f.sw.port(0).tx_bytes(), 0u);
}

TEST(Port, PausedTimeAccounting) {
  Fixture f;
  f.sw.port(0).SetPaused(kDataPriority, true, sim::Us(10));
  f.sw.port(0).SetPaused(kDataPriority, false, sim::Us(35));
  EXPECT_EQ(f.sw.port(0).total_paused_time(sim::Us(100)), sim::Us(25));
  // Open-ended pause counts up to `now`.
  f.sw.port(0).SetPaused(kDataPriority, true, sim::Us(50));
  EXPECT_EQ(f.sw.port(0).total_paused_time(sim::Us(60)), sim::Us(35));
}

}  // namespace
}  // namespace hpcc::net
