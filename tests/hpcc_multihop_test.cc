// HPCC unit tests on multi-hop paths with heterogeneous link speeds, and the
// hardware wire-format mode (wrapped counters).
#include <gtest/gtest.h>

#include "core/hpcc.h"
#include "core/int_wire.h"
#include "sim/time.h"

namespace hpcc::core {
namespace {

constexpr int64_t kNic = 100'000'000'000;
constexpr sim::TimePs kT = sim::Us(13);
const int64_t kWinit = kNic / 8 * 13 / 1'000'000;

cc::CcContext Ctx() {
  cc::CcContext ctx;
  ctx.nic_bps = kNic;
  ctx.base_rtt = kT;
  return ctx;
}

HpccParams Params() {
  HpccParams p;
  p.wai_bytes = 80;
  return p;
}

// Multi-hop ACK factory with per-hop bandwidths and utilizations.
class PathAcks {
 public:
  explicit PathAcks(std::vector<int64_t> bandwidths)
      : bps_(std::move(bandwidths)), tx_(bps_.size(), 1'000'000) {}

  cc::AckInfo Next(const std::vector<double>& utilization,
                   const std::vector<int64_t>& qlen) {
    ts_ += kT;
    stack_.Clear();
    for (size_t i = 0; i < bps_.size(); ++i) {
      tx_[i] += static_cast<uint64_t>(utilization[i] *
                                      static_cast<double>(bps_[i]) / 8.0 *
                                      sim::ToSec(kT));
      IntHop h;
      h.bandwidth_bps = bps_[i];
      h.ts = ts_;
      h.tx_bytes = tx_[i];
      h.qlen_bytes = qlen[i];
      h.switch_id = static_cast<uint32_t>(i + 1);
      stack_.Push(h);
    }
    cc::AckInfo a;
    seq_ += 60'000;
    a.ack_seq = seq_;
    a.snd_nxt = seq_ + 50'000;
    a.int_stack = &stack_;
    return a;
  }

 private:
  std::vector<int64_t> bps_;
  std::vector<uint64_t> tx_;
  sim::TimePs ts_ = sim::Us(100);
  uint64_t seq_ = 0;
  IntStack stack_;
};

TEST(HpccMultiHop, FiveHopPathWorks) {
  HpccCc cc(Ctx(), Params());
  PathAcks f({kNic, 400'000'000'000, 400'000'000'000, 400'000'000'000, kNic});
  const std::vector<double> u{0.5, 0.2, 0.2, 0.2, 1.2};
  const std::vector<int64_t> q{0, 0, 0, 0, 0};
  cc.OnAck(f.Next(u, q));
  cc.OnAck(f.Next(u, q));
  // The last hop (1.2 utilization) dominates.
  EXPECT_NEAR(cc.utilization_estimate(), 1.2, 0.01);
}

TEST(HpccMultiHop, SlowLinkNormalizesByItsOwnCapacity) {
  // A 25G hop carrying 20G is more loaded (0.8) than a 400G hop carrying
  // 100G (0.25) even though the absolute rate is lower.
  HpccCc cc(Ctx(), Params());
  PathAcks f({25'000'000'000, 400'000'000'000});
  const std::vector<double> u{0.8, 0.25};
  const std::vector<int64_t> q{0, 0};
  cc.OnAck(f.Next(u, q));
  cc.OnAck(f.Next(u, q));
  EXPECT_NEAR(cc.utilization_estimate(), 0.8, 0.01);
}

TEST(HpccMultiHop, QueueOnFastLinkStillCounts) {
  // qLen normalizes by B*T: the same 100KB queue is much worse on a 25G
  // link (BDP 40.6KB) than on a 400G link (BDP 650KB).
  HpccCc slow(Ctx(), Params());
  HpccCc fast(Ctx(), Params());
  {
    PathAcks f({25'000'000'000});
    slow.OnAck(f.Next({0.5}, {100'000}));
    slow.OnAck(f.Next({0.5}, {100'000}));
  }
  {
    PathAcks f({400'000'000'000});
    fast.OnAck(f.Next({0.5}, {100'000}));
    fast.OnAck(f.Next({0.5}, {100'000}));
  }
  EXPECT_GT(slow.utilization_estimate(), 2.5);
  EXPECT_LT(fast.utilization_estimate(), 0.7);
}

TEST(HpccMultiHop, ConvergesToBottleneckBdp) {
  // Single flow over a 25G bottleneck: the window should settle near
  // eta * 25G * T even though the NIC is 100G.
  HpccCc cc(Ctx(), Params());
  PathAcks f({kNic, 25'000'000'000});
  const double bneck_bdp = 25e9 / 8 * sim::ToSec(kT);
  cc.OnAck(f.Next({0.0, 0.0}, {0, 0}));
  for (int i = 0; i < 60; ++i) {
    // Feed back the utilization this window would produce on each hop.
    const double w = cc.window_raw();
    const double u_nic = w / (kNic / 8 * sim::ToSec(kT));
    const double u_b = w / bneck_bdp;
    cc.OnAck(f.Next({u_nic, std::min(u_b, 1.0)},
                    {0, static_cast<int64_t>(
                            std::max(0.0, w - bneck_bdp))}));
  }
  EXPECT_NEAR(cc.window_raw() / bneck_bdp, 0.95, 0.06);
}

TEST(HpccMultiHop, ZeroWaiIsStable) {
  HpccParams p = Params();
  p.wai_bytes = 0.0001;  // effectively zero
  HpccCc cc(Ctx(), p);
  PathAcks f({kNic});
  cc.OnAck(f.Next({1.0}, {0}));
  for (int i = 0; i < 30; ++i) cc.OnAck(f.Next({0.95}, {0}));
  // Perfectly at eta: the window must not drift.
  const double w1 = cc.window_raw();
  for (int i = 0; i < 10; ++i) cc.OnAck(f.Next({0.95}, {0}));
  EXPECT_NEAR(cc.window_raw(), w1, w1 * 0.01);
}

TEST(HpccMultiHop, MaxStageZeroProbesEveryRound) {
  HpccParams p = Params();
  p.max_stage = 0;
  HpccCc cc(Ctx(), p);
  PathAcks f({kNic});
  cc.OnAck(f.Next({1.6}, {0}));  // prime
  cc.OnAck(f.Next({1.6}, {0}));  // MD pulls W below Winit
  ASSERT_LT(cc.window_raw(), 0.7 * kWinit);
  const double w0 = cc.window_raw();
  cc.OnAck(f.Next({0.4}, {0}));
  // MI immediately (no AI stage): multiplicative jump, not +WAI.
  EXPECT_GT(cc.window_raw(), w0 * 1.5);
}

// --- wire-format mode ---------------------------------------------------

class WireAcks {
 public:
  // Emits ACKs whose INT fields are quantized/wrapped like hardware
  // counters (what a SwitchConfig::int_wire_format switch stamps).
  cc::AckInfo Next(double utilization, int64_t qlen, sim::TimePs dt) {
    ts_ += dt;
    tx_ += static_cast<uint64_t>(utilization * kNic / 8.0 * sim::ToSec(dt));
    stack_.Clear();
    IntHop h;
    h.bandwidth_bps = kNic;
    h.ts = ((ts_ / sim::kPsPerNs) & kTsMask) * sim::kPsPerNs;
    h.tx_bytes = (tx_ / kTxBytesUnit & kTxMask) * kTxBytesUnit;
    h.qlen_bytes = std::min<int64_t>(qlen / kQlenUnit, kQlenMask) * kQlenUnit;
    h.switch_id = 1;
    stack_.Push(h);
    cc::AckInfo a;
    seq_ += 60'000;
    a.ack_seq = seq_;
    a.snd_nxt = seq_ + 50'000;
    a.int_stack = &stack_;
    return a;
  }

  void JumpTo(sim::TimePs ts, uint64_t tx) {
    ts_ = ts;
    tx_ = tx;
  }

 private:
  sim::TimePs ts_ = sim::Us(100);
  uint64_t tx_ = 0;
  uint64_t seq_ = 0;
  IntStack stack_;
};

TEST(HpccWireMode, MatchesExactEstimates) {
  HpccParams p = Params();
  p.wire_format = true;
  HpccCc cc(Ctx(), p);
  WireAcks f;
  cc.OnAck(f.Next(1.0, 0, kT));
  cc.OnAck(f.Next(1.0, 0, kT));
  EXPECT_NEAR(cc.utilization_estimate(), 1.0, 0.02);
}

TEST(HpccWireMode, SurvivesTimestampWrap) {
  HpccParams p = Params();
  p.wire_format = true;
  HpccCc cc(Ctx(), p);
  WireAcks f;
  // Park just before the 24-bit ns wrap (~16.78 ms).
  f.JumpTo(sim::Ms(16) + sim::Us(770), 10'000'000);
  cc.OnAck(f.Next(1.0, 0, kT));
  // Next ACK crosses the wrap; the modular delta must still be ~13us.
  cc.OnAck(f.Next(1.0, 0, kT));
  EXPECT_NEAR(cc.utilization_estimate(), 1.0, 0.05);
}

TEST(HpccWireMode, SurvivesTxCounterWrap) {
  HpccParams p = Params();
  p.wire_format = true;
  HpccCc cc(Ctx(), p);
  WireAcks f;
  // Park so the 2^20-unit (128 MB) tx counter wraps between ACKs.
  f.JumpTo(sim::Us(500), (1ull << 20) * 128 - 250'000);
  cc.OnAck(f.Next(1.0, 0, kT));
  cc.OnAck(f.Next(1.0, 0, kT));  // wraps during this interval
  EXPECT_NEAR(cc.utilization_estimate(), 1.0, 0.05);
}

TEST(HpccWireMode, WithoutWireFlagWrappedCounterWouldMislead) {
  // Control experiment: the same wrapped input *without* wire_format makes
  // the unsigned delta blow up (underflow), proving the modular decode is
  // doing real work. The estimate must differ wildly between modes.
  HpccParams wire = Params();
  wire.wire_format = true;
  HpccCc a(Ctx(), wire);
  HpccCc b(Ctx(), Params());
  for (HpccCc* cc : {&a, &b}) {
    WireAcks f;
    f.JumpTo(sim::Us(500), (1ull << 20) * 128 - 250'000);
    cc->OnAck(f.Next(1.0, 0, kT));
    cc->OnAck(f.Next(1.0, 0, kT));
  }
  EXPECT_NEAR(a.utilization_estimate(), 1.0, 0.05);
  EXPECT_GT(b.utilization_estimate(), 10.0);  // garbage without mod-decode
}

}  // namespace
}  // namespace hpcc::core
