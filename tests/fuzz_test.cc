// Randomized end-to-end robustness: random topologies, schemes, flow mixes,
// link failures and repairs — the stack must never drop invariants:
// conservation (every completed flow delivered exactly its bytes), no
// lossless-mode drops while the fabric is intact, and eventual completion.
#include <gtest/gtest.h>

#include "runner/experiment.h"
#include "sim/rng.h"

namespace hpcc::runner {
namespace {

const char* kSchemes[] = {"hpcc",   "hpcc-rxrate", "dcqcn", "dcqcn+win",
                          "timely", "timely+win",  "dctcp", "hpcc-alpha"};

class FuzzEndToEnd : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEndToEnd, InvariantsHoldUnderRandomScenarios) {
  sim::Rng rng(GetParam());
  for (int scenario = 0; scenario < 4; ++scenario) {
    ExperimentConfig cfg;
    // Random topology.
    switch (rng.Index(3)) {
      case 0:
        cfg.topology = TopologyKind::kStar;
        cfg.star.num_hosts = 3 + static_cast<int>(rng.Index(8));
        break;
      case 1:
        cfg.topology = TopologyKind::kDumbbell;
        cfg.dumbbell.hosts_per_side = 2 + static_cast<int>(rng.Index(4));
        break;
      default:
        cfg.topology = TopologyKind::kFatTree;
        cfg.fattree.pods = 2;
        cfg.fattree.tors_per_pod = 1 + static_cast<int>(rng.Index(2));
        cfg.fattree.aggs_per_pod = 2;
        cfg.fattree.hosts_per_tor = 2 + static_cast<int>(rng.Index(3));
        break;
    }
    cfg.cc.scheme = kSchemes[rng.Index(std::size(kSchemes))];
    cfg.recovery = rng.Uniform() < 0.3 ? host::RecoveryMode::kIrn
                                       : host::RecoveryMode::kGoBackN;
    cfg.int_sample_every = 1 + static_cast<int>(rng.Index(4));
    cfg.cc.hpcc.wire_format = rng.Uniform() < 0.3;
    cfg.seed = GetParam() * 17 + static_cast<uint64_t>(scenario);

    Experiment e(cfg);
    const auto& hosts = e.hosts();
    std::vector<host::Flow*> flows;
    const int n_flows = 3 + static_cast<int>(rng.Index(12));
    for (int i = 0; i < n_flows; ++i) {
      const uint32_t src = hosts[rng.Index(hosts.size())];
      uint32_t dst = src;
      while (dst == src) dst = hosts[rng.Index(hosts.size())];
      const uint64_t bytes = 1 + static_cast<uint64_t>(
                                     rng.Uniform() * 800'000);
      const sim::TimePs start = sim::Us(rng.UniformInt(0, 200));
      if (rng.Uniform() < 0.2) {
        flows.push_back(e.AddReadFlow(src, dst, bytes, start));
      } else {
        flows.push_back(e.AddFlow(src, dst, bytes, start));
      }
    }

    // Random mid-run fabric hiccup on redundant topologies.
    const bool inject_failure =
        cfg.topology == TopologyKind::kFatTree && rng.Uniform() < 0.5;
    e.RunUntil(sim::Us(300));
    size_t failed_link = 0;
    if (inject_failure) {
      const auto& links = e.topology().links();
      // Pick a switch-switch link (fattree keeps redundancy).
      for (size_t i = 0; i < links.size(); ++i) {
        if (e.topology().node(links[i].a).IsSwitch() &&
            e.topology().node(links[i].b).IsSwitch()) {
          failed_link = i;
          break;
        }
      }
      e.topology().SetLinkUp(failed_link, false);
    }
    e.RunUntil(sim::Ms(5));
    if (inject_failure && rng.Uniform() < 0.5) {
      e.topology().SetLinkUp(failed_link, true);
    }
    e.RunUntil(sim::Ms(60));

    // Invariants.
    for (host::Flow* f : flows) {
      ASSERT_TRUE(f->done)
          << "scheme=" << cfg.cc.scheme << " seed=" << GetParam()
          << " scenario=" << scenario;
      const auto* rx =
          e.topology().host(f->spec().dst).FindRxState(f->spec().id);
      ASSERT_NE(rx, nullptr);
      EXPECT_EQ(rx->rcv_nxt, f->spec().size_bytes) << cfg.cc.scheme;
      EXPECT_EQ(f->snd_una, f->spec().size_bytes);
    }
    ExperimentResult r = e.Collect();
    if (!inject_failure) {
      // Lossless fabric intact: PFC must have prevented every drop.
      EXPECT_EQ(r.dropped_packets, 0u) << cfg.cc.scheme;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEndToEnd,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace hpcc::runner
