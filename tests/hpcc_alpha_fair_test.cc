// Unit tests for the Appendix A.3 multi-register alpha-fair HPCC variant.
#include <gtest/gtest.h>

#include "core/hpcc_alpha_fair.h"
#include "sim/time.h"

namespace hpcc::core {
namespace {

constexpr int64_t kNic = 100'000'000'000;
constexpr sim::TimePs kT = sim::Us(13);
const int64_t kWinit = kNic / 8 * 13 / 1'000'000;

cc::CcContext Ctx() {
  cc::CcContext ctx;
  ctx.nic_bps = kNic;
  ctx.base_rtt = kT;
  return ctx;
}

HpccParams Params() {
  HpccParams p;
  p.wai_bytes = 80;
  return p;
}

// Two-hop ACK factory with independently controllable per-hop utilization.
class TwoHopAcks {
 public:
  cc::AckInfo Next(double u0, double u1, int64_t q0, int64_t q1) {
    ts_ += kT;
    tx0_ += static_cast<uint64_t>(u0 * kNic / 8.0 * sim::ToSec(kT));
    tx1_ += static_cast<uint64_t>(u1 * kNic / 8.0 * sim::ToSec(kT));
    stack_.Clear();
    IntHop h0;
    h0.bandwidth_bps = kNic;
    h0.ts = ts_;
    h0.tx_bytes = tx0_;
    h0.qlen_bytes = q0;
    h0.switch_id = 1;
    stack_.Push(h0);
    IntHop h1 = h0;
    h1.tx_bytes = tx1_;
    h1.qlen_bytes = q1;
    h1.switch_id = 2;
    stack_.Push(h1);
    cc::AckInfo a;
    seq_ += 60'000;
    a.ack_seq = seq_;
    a.snd_nxt = seq_ + 50'000;
    a.int_stack = &stack_;
    return a;
  }

 private:
  sim::TimePs ts_ = sim::Us(100);
  uint64_t tx0_ = 0;
  uint64_t tx1_ = 0;
  uint64_t seq_ = 0;
  IntStack stack_;
};

TEST(HpccAlphaFair, LargeAlphaTracksBottleneckLink) {
  HpccAlphaFairCc cc(Ctx(), Params(), /*alpha=*/128.0);
  TwoHopAcks f;
  cc.OnAck(f.Next(0.2, 1.9, 0, 0));  // prime
  cc.OnAck(f.Next(0.2, 1.9, 0, 0));
  ASSERT_EQ(cc.n_links(), 2);
  // Link 1 is heavily congested; with alpha->inf the aggregate is min W_i.
  EXPECT_LT(cc.link_window(1), cc.link_window(0));
  EXPECT_NEAR(static_cast<double>(cc.window_bytes()), cc.link_window(1), 1.0);
}

TEST(HpccAlphaFair, SmallAlphaBlendsLinks) {
  HpccAlphaFairCc a1(Ctx(), Params(), 1.0);
  HpccAlphaFairCc a64(Ctx(), Params(), 128.0);
  for (auto* cc : {&a1, &a64}) {
    TwoHopAcks f;
    cc->OnAck(f.Next(0.5, 1.9, 0, 0));
    cc->OnAck(f.Next(0.5, 1.9, 0, 0));
  }
  // alpha=1 penalizes multi-hop flows more: aggregate strictly below the
  // bottleneck register (1/W = sum 1/W_i), while alpha=inf equals it.
  EXPECT_LT(a1.window_bytes(), a64.window_bytes());
}

TEST(HpccAlphaFair, UncongestedPathStaysNearLineRate) {
  HpccAlphaFairCc cc(Ctx(), Params(), 16.0);
  TwoHopAcks f;
  cc.OnAck(f.Next(0.1, 0.1, 0, 0));
  for (int i = 0; i < 25; ++i) cc.OnAck(f.Next(0.1, 0.1, 0, 0));
  // Both per-link registers sit at Winit; the alpha-aggregate of two equal
  // links is Winit * 2^(-1/alpha) — a small multi-hop penalty (Eqn 7).
  EXPECT_GE(cc.window_bytes(),
            static_cast<int64_t>(0.9 * static_cast<double>(kWinit)));
  EXPECT_LE(cc.window_bytes(), kWinit);
}

TEST(HpccAlphaFair, CongestionShrinksWindow) {
  HpccAlphaFairCc cc(Ctx(), Params(), 16.0);
  TwoHopAcks f;
  cc.OnAck(f.Next(1.0, 1.0, 0, 0));
  cc.OnAck(f.Next(1.0, 2.0, 0, kWinit));
  EXPECT_LT(cc.window_bytes(), kWinit / 2 + 2000);
}

TEST(HpccAlphaFair, ReportsIntRequirement) {
  HpccAlphaFairCc cc(Ctx(), Params(), 2.0);
  EXPECT_TRUE(cc.wants_int());
  EXPECT_EQ(cc.alpha(), 2.0);
  EXPECT_GT(cc.rate_bps(), 0);
}

}  // namespace
}  // namespace hpcc::core
