// Tests for the event-arena core: generation-tag reuse, small-buffer
// callback edge cases, timing-ring/far-heap ordering against a reference
// model, and packet-pool reuse rules.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "sim/callback.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace hpcc::sim {
namespace {

TEST(EventArena, StaleCancelAfterSlotReuseIsNoop) {
  Simulator s;
  int a_runs = 0;
  int b_runs = 0;
  // A runs, releasing its slot; B reuses it with a fresh generation.
  EventId a = s.ScheduleAt(Us(1), [&]() { ++a_runs; });
  s.Run();
  EXPECT_EQ(a_runs, 1);
  EventId b = s.ScheduleAt(Us(2), [&]() { ++b_runs; });
  EXPECT_NE(a, b);
  s.Cancel(a);  // stale id: must not touch B even if it reuses A's slot
  EXPECT_EQ(s.pending_events(), 1u);
  s.Run();
  EXPECT_EQ(b_runs, 1);
}

TEST(EventArena, StaleCancelAfterCancelAndReuseIsNoop) {
  Simulator s;
  int b_runs = 0;
  EventId a = s.ScheduleAt(Us(1), []() { FAIL() << "cancelled event ran"; });
  s.Cancel(a);
  s.ScheduleAt(Us(1), [&]() { ++b_runs; });
  s.Cancel(a);  // double-cancel of the stale id
  s.Cancel(a);
  EXPECT_EQ(s.pending_events(), 1u);
  s.Run();
  EXPECT_EQ(b_runs, 1);
}

TEST(EventArena, IdsStayUniqueAcrossHeavySlotReuse) {
  Simulator s;
  EventId prev = kInvalidEvent;
  for (int i = 0; i < 1000; ++i) {
    EventId id = s.ScheduleAt(s.now(), []() {});
    EXPECT_NE(id, kInvalidEvent);
    EXPECT_NE(id, prev);  // same slot, but a fresh generation every time
    prev = id;
    s.Run();
  }
  EXPECT_EQ(s.events_executed(), 1000u);
}

// --- small-buffer callback -------------------------------------------------

// A capture of `N` bytes that counts live copies, to verify the callback
// destroys inline and heap-stored closures exactly once.
template <size_t N>
struct Tracked {
  explicit Tracked(int* counter) : counter(counter) { ++*counter; }
  Tracked(const Tracked& o) : counter(o.counter) { ++*counter; }
  Tracked(Tracked&& o) noexcept : counter(o.counter) { ++*counter; }
  ~Tracked() { --*counter; }
  int* counter;
  std::array<char, N> payload{};
};

template <size_t N>
void ExerciseCaptureSize() {
  int live = 0;
  int runs = 0;
  {
    Simulator s;
    Tracked<N> t(&live);
    s.ScheduleAt(Us(1), [t = std::move(t), &runs]() {
      ++runs;
      EXPECT_NE(t.counter, nullptr);
    });
    EXPECT_GE(live, 1);
    s.Run();
    EXPECT_EQ(runs, 1);
  }
  EXPECT_EQ(live, 0) << "capture of " << N << " bytes leaked or double-freed";
}

TEST(CallbackCapture, SizesAcrossTheInlineBoundary) {
  ExerciseCaptureSize<1>();    // tiny
  ExerciseCaptureSize<24>();   // typical network closure
  ExerciseCaptureSize<32>();   // at std::function's SBO, inside ours
  ExerciseCaptureSize<128>();  // heap fallback
  ExerciseCaptureSize<512>();  // large heap fallback
}

TEST(CallbackCapture, CancelDestroysInlineAndHeapClosures) {
  int live = 0;
  Simulator s;
  EventId small =
      s.ScheduleAt(Us(1), [t = Tracked<8>(&live)]() { (void)t; });
  EventId big =
      s.ScheduleAt(Us(1), [t = Tracked<256>(&live)]() { (void)t; });
  EXPECT_EQ(live, 2);
  s.Cancel(small);
  s.Cancel(big);
  EXPECT_EQ(live, 0) << "Cancel must destroy the closure immediately";
  s.Run();
}

TEST(CallbackCapture, MoveOnlyCaptureWorks) {
  Simulator s;
  auto owned = std::make_unique<int>(41);
  int seen = 0;
  s.ScheduleAt(Us(1), [p = std::move(owned), &seen]() { seen = *p + 1; });
  s.Run();
  EXPECT_EQ(seen, 42);
}

// --- ordering against a reference model ------------------------------------

// Drives the two-level queue (timing ring + far heap) with a deterministic
// storm of mixed delays — sub-bucket, in-window, far beyond the ~2 µs window
// — plus exact ties and cancellations, and checks the execution order against
// a straightforward (time, insertion order) reference.
TEST(EventOrdering, StormMatchesReferenceModel) {
  Simulator s;
  std::multimap<std::pair<TimePs, uint64_t>, int> reference;
  std::vector<int> executed;
  uint64_t insertion = 0;
  uint64_t rng = 0xDEADBEEF;
  auto next = [&rng]() {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return rng >> 33;
  };

  std::vector<EventId> ids;
  std::vector<std::pair<TimePs, uint64_t>> keys;
  int tag = 0;
  for (int round = 0; round < 400; ++round) {
    const uint64_t r = next() % 100;
    TimePs delay;
    if (r < 40) {
      delay = static_cast<TimePs>(next() % 2000);  // sub-bucket & ties
    } else if (r < 80) {
      delay = static_cast<TimePs>(next() % Us(2));  // within the ring window
    } else {
      delay = Us(3) + static_cast<TimePs>(next() % Ms(2));  // far heap
    }
    const TimePs at = delay;  // scheduled up front: absolute == delay
    const int t = tag++;
    EventId id = s.ScheduleAt(at, [&executed, t]() { executed.push_back(t); });
    ids.push_back(id);
    keys.push_back({at, insertion});
    reference.emplace(std::make_pair(at, insertion), t);
    ++insertion;
  }
  // Cancel a deterministic quarter of them.
  for (size_t i = 0; i < ids.size(); i += 4) {
    s.Cancel(ids[i]);
    reference.erase(keys[i]);
  }
  s.Run();

  std::vector<int> expected;
  for (const auto& [key, t] : reference) expected.push_back(t);
  EXPECT_EQ(executed, expected);
}

TEST(EventOrdering, IdenticalScheduleGivesIdenticalTrace) {
  auto run_once = []() {
    Simulator s;
    std::vector<int> trace;
    uint64_t rng = 7;
    for (int i = 0; i < 200; ++i) {
      rng = rng * 6364136223846793005ULL + 1;
      const TimePs at = static_cast<TimePs>(rng % Us(50));
      s.ScheduleAt(at, [&trace, i]() { trace.push_back(i); });
    }
    s.Run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

// Regression: a horizon-bounded Run must not drag far-future events into the
// ring early. Two far events whose buckets alias different window positions
// must still fire in time order after an intervening short-horizon Run.
TEST(EventOrdering, HorizonDoesNotReorderFarEvents) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(Ms(1), [&]() { order.push_back(1); });
  s.ScheduleAt(Ms(1) + Us(1) + Ns(500), [&]() { order.push_back(2); });
  EXPECT_EQ(s.Run(Us(1)), 0u);  // horizon long before either event
  EXPECT_EQ(s.now(), Us(1));
  s.Run(Ms(1) + Us(1));  // pops only the first
  EXPECT_EQ(order, (std::vector<int>{1}));
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventOrdering, ZeroDelayScheduleFromCallbackRunsSameTime) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(Us(1), [&]() {
    order.push_back(1);
    s.ScheduleIn(0, [&]() { order.push_back(2); });
    s.ScheduleAt(s.now(), [&]() { order.push_back(3); });
  });
  s.ScheduleAt(Us(1), [&]() { order.push_back(4); });
  s.Run();
  // Same-time events run in insertion order: the two pre-scheduled ones
  // first, then the two added from inside the first callback.
  EXPECT_EQ(order, (std::vector<int>{1, 4, 2, 3}));
}

}  // namespace
}  // namespace hpcc::sim

namespace hpcc::net {
namespace {

// --- packet pool ------------------------------------------------------------

TEST(PacketPool, GrowsOnDemandAndRecycles) {
  PacketPool::TrimThreadCache();
  const size_t base_allocated = PacketPool::allocated_count();

  std::vector<PacketPtr> held;
  for (int i = 0; i < 100; ++i) {
    held.push_back(MakeDataPacket(1, 0, 1, 0, 1000, false, false));
  }
  // Pool was empty: all 100 came from the heap.
  EXPECT_EQ(PacketPool::allocated_count(), base_allocated + 100);
  held.clear();
  EXPECT_EQ(PacketPool::free_count(), 100u);

  // Steady state: reacquiring allocates nothing new.
  for (int i = 0; i < 100; ++i) {
    held.push_back(MakeCnp(1, 0, 1));
  }
  EXPECT_EQ(PacketPool::allocated_count(), base_allocated + 100);
  EXPECT_EQ(PacketPool::free_count(), 0u);
  held.clear();
  PacketPool::TrimThreadCache();
  EXPECT_EQ(PacketPool::free_count(), 0u);
}

TEST(PacketPool, RecycledPacketIsScrubbed) {
  PacketPool::TrimThreadCache();
  {
    auto p = MakeDataPacket(9, 3, 4, 5000, 1000, /*int=*/true, /*ecn=*/true);
    p->ecn_ce = true;
    p->sent_time = sim::Us(7);
    p->buffer_ingress_port = 3;
    core::IntHop hop;
    hop.switch_id = 11;
    p->int_stack.Push(hop);
  }  // released to the pool
  EXPECT_EQ(PacketPool::free_count(), 1u);
  auto q = AllocatePacket();  // must be the recycled one
  EXPECT_EQ(PacketPool::free_count(), 0u);
  const Packet fresh{};
  EXPECT_EQ(q->type, fresh.type);
  EXPECT_EQ(q->flow_id, fresh.flow_id);
  EXPECT_EQ(q->seq, fresh.seq);
  EXPECT_EQ(q->payload_bytes, fresh.payload_bytes);
  EXPECT_EQ(q->header_bytes, fresh.header_bytes);
  EXPECT_FALSE(q->ecn_ce);
  EXPECT_FALSE(q->int_enabled);
  EXPECT_EQ(q->int_stack.n_hops(), 0);
  EXPECT_EQ(q->buffer_ingress_port, fresh.buffer_ingress_port);
  EXPECT_EQ(q->sent_time, fresh.sent_time);
  EXPECT_EQ(q->rcp_rate_bps, fresh.rcp_rate_bps);
}

TEST(PacketPool, ReleaseViaRawRoundTrip) {
  // The wire-transit path releases the unique_ptr and re-wraps the raw
  // pointer at the peer; the deleter must still return it to the pool.
  PacketPool::TrimThreadCache();
  auto p = MakeDataPacket(1, 0, 1, 0, 1000, false, false);
  Packet* raw = p.release();
  { PacketPtr rewrapped(raw); }
  EXPECT_EQ(PacketPool::free_count(), 1u);
  PacketPool::TrimThreadCache();
}

}  // namespace
}  // namespace hpcc::net
