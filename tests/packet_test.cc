// Tests for packet factories and size accounting.
#include <gtest/gtest.h>

#include "net/packet.h"

namespace hpcc::net {
namespace {

TEST(Packet, DataPacketBasics) {
  auto p = MakeDataPacket(7, 1, 2, 5000, 1000, /*int=*/false, /*ecn=*/true);
  EXPECT_EQ(p->type, PacketType::kData);
  EXPECT_EQ(p->flow_id, 7u);
  EXPECT_EQ(p->src, 1u);
  EXPECT_EQ(p->dst, 2u);
  EXPECT_EQ(p->seq, 5000u);
  EXPECT_EQ(p->payload_bytes, 1000);
  EXPECT_EQ(p->header_bytes, kDataHeaderBytes);
  EXPECT_EQ(p->size_bytes(), 1048);
  EXPECT_TRUE(p->ecn_capable);
  EXPECT_FALSE(p->int_enabled);
  EXPECT_EQ(p->priority, kDataPriority);
}

TEST(Packet, IntDataPacketChargesWorstCaseOverhead) {
  auto p = MakeDataPacket(1, 1, 2, 0, 1000, /*int=*/true, false);
  // §5.1: every HPCC data packet carries the full 42-byte INT padding.
  EXPECT_EQ(p->header_bytes, kDataHeaderBytes + 42);
  EXPECT_TRUE(p->int_enabled);
}

TEST(Packet, AckEchoesFields) {
  auto d = MakeDataPacket(9, 3, 4, 2000, 1000, true, true);
  d->ecn_ce = true;
  d->sent_time = sim::Us(11);
  core::IntHop hop;
  hop.bandwidth_bps = 1;
  hop.ts = 1;
  hop.switch_id = 5;
  d->int_stack.Push(hop);

  auto a = MakeAck(*d, 3000);
  EXPECT_EQ(a->type, PacketType::kAck);
  EXPECT_EQ(a->flow_id, 9u);
  EXPECT_EQ(a->src, 4u);  // reversed direction
  EXPECT_EQ(a->dst, 3u);
  EXPECT_EQ(a->seq, 3000u);
  EXPECT_TRUE(a->ecn_echo);
  EXPECT_EQ(a->data_sent_time, sim::Us(11));
  EXPECT_EQ(a->priority, kControlPriority);
  EXPECT_EQ(a->int_stack.n_hops(), 1);
  EXPECT_EQ(a->acked_payload_bytes, 1000);
  // ACK carries the INT bytes it echoes.
  EXPECT_EQ(a->header_bytes, kAckHeaderBytes + 2 + 8);
}

TEST(Packet, AckWithoutIntIsSmall) {
  auto d = MakeDataPacket(9, 3, 4, 0, 1000, false, false);
  auto a = MakeAck(*d, 1000);
  EXPECT_EQ(a->header_bytes, kAckHeaderBytes);
  EXPECT_EQ(a->size_bytes(), kAckHeaderBytes);
}

TEST(Packet, NackCarriesSack) {
  auto d = MakeDataPacket(9, 3, 4, 9000, 1000, false, false);
  auto n = MakeNack(*d, 4000);
  EXPECT_EQ(n->type, PacketType::kNack);
  EXPECT_EQ(n->seq, 4000u);       // receiver's expected byte
  EXPECT_EQ(n->sack_seq, 9000u);  // the OOO packet that did arrive
  EXPECT_TRUE(n->has_sack);
}

TEST(Packet, Cnp) {
  auto c = MakeCnp(5, 10, 20);
  EXPECT_EQ(c->type, PacketType::kCnp);
  EXPECT_EQ(c->src, 10u);
  EXPECT_EQ(c->dst, 20u);
  EXPECT_EQ(c->priority, kControlPriority);
}

TEST(Packet, PfcFrames) {
  auto pause = MakePfc(PacketType::kPfcPause, kDataPriority);
  EXPECT_EQ(pause->type, PacketType::kPfcPause);
  EXPECT_EQ(pause->pause_priority, kDataPriority);
  EXPECT_EQ(pause->size_bytes(), kPfcFrameBytes);
  auto resume = MakePfc(PacketType::kPfcResume, kDataPriority);
  EXPECT_EQ(resume->type, PacketType::kPfcResume);
}

}  // namespace
}  // namespace hpcc::net
