// Unit tests for the discrete-event core: event ordering, cancellation,
// horizons, and the deterministic RNG helpers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace hpcc::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(Us(1), 1'000'000);
  EXPECT_EQ(Ms(1), Us(1000));
  EXPECT_EQ(Sec(1), Ms(1000));
  EXPECT_DOUBLE_EQ(ToUs(Us(7)), 7.0);
  EXPECT_DOUBLE_EQ(ToMs(Ms(3)), 3.0);
}

TEST(Time, SerializationExactAt100G) {
  // 1 byte at 100 Gbps is exactly 80 ps; a 1048-byte frame is 83840 ps.
  EXPECT_EQ(SerializationTime(1, 100'000'000'000), 80);
  EXPECT_EQ(SerializationTime(1048, 100'000'000'000), 83'840);
}

TEST(Time, SerializationAt25G) {
  EXPECT_EQ(SerializationTime(1000, 25'000'000'000), 320'000);
}

TEST(Time, RateBpsInverse) {
  const TimePs t = SerializationTime(1000, 40'000'000'000);
  EXPECT_EQ(RateBps(1000, t), 40'000'000'000);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(Us(3), [&]() { order.push_back(3); });
  s.ScheduleAt(Us(1), [&]() { order.push_back(1); });
  s.ScheduleAt(Us(2), [&]() { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(Simulator, TieBreaksByInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.ScheduleAt(Us(5), [&order, i]() { order.push_back(i); });
  }
  s.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NowAdvancesDuringRun) {
  Simulator s;
  TimePs seen = -1;
  s.ScheduleAt(Us(42), [&]() { seen = s.now(); });
  s.Run();
  EXPECT_EQ(seen, Us(42));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  TimePs seen = -1;
  s.ScheduleAt(Us(10), [&]() {
    s.ScheduleIn(Us(5), [&]() { seen = s.now(); });
  });
  s.Run();
  EXPECT_EQ(seen, Us(15));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  EventId id = s.ScheduleAt(Us(1), [&]() { ran = true; });
  s.Cancel(id);
  s.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Simulator, CancelInvalidOrTwiceIsNoop) {
  Simulator s;
  s.Cancel(kInvalidEvent);
  EventId id = s.ScheduleAt(Us(1), []() {});
  s.Cancel(id);
  s.Cancel(id);
  s.Run();
}

TEST(Simulator, RunUntilHorizonLeavesFutureEvents) {
  Simulator s;
  bool early = false;
  bool late = false;
  s.ScheduleAt(Us(1), [&]() { early = true; });
  s.ScheduleAt(Us(100), [&]() { late = true; });
  s.Run(Us(10));
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(s.now(), Us(10));
  s.Run();
  EXPECT_TRUE(late);
}

TEST(Simulator, StopHaltsLoop) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.ScheduleAt(Us(i), [&]() {
      if (++count == 3) s.Stop();
    });
  }
  s.Run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) s.ScheduleIn(Us(1), recurse);
  };
  s.ScheduleAt(0, recurse);
  s.Run();
  EXPECT_EQ(depth, 5);
}

TEST(Simulator, CancelAfterRunIsATrueNoop) {
  Simulator s;
  int runs = 0;
  EventId ran = s.ScheduleAt(Us(1), [&]() { ++runs; });
  s.Run();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(s.pending_events(), 0u);
  // Cancelling an id that already executed must change nothing: no pending
  // count drift, and future scheduling/execution is unaffected.
  s.Cancel(ran);
  s.Cancel(ran);
  EXPECT_EQ(s.pending_events(), 0u);
  EventId later = s.ScheduleAt(Us(2), [&]() { ++runs; });
  EXPECT_EQ(s.pending_events(), 1u);
  s.Cancel(ran);  // still a no-op, must not touch the new event
  EXPECT_EQ(s.pending_events(), 1u);
  s.Run();
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(s.pending_events(), 0u);
  s.Cancel(later);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, PendingEventsNeverUnderflowsAroundRunBoundaries) {
  Simulator s;
  // Cancel an event whose heap entry survives a horizon-limited Run (the
  // heap still holds it, the callback map does not): the count must stay
  // exact, not drift or wrap.
  EventId far = s.ScheduleAt(Us(100), []() {});
  EXPECT_EQ(s.pending_events(), 1u);
  s.Run(Us(10));  // pops nothing: the event is beyond the horizon
  s.Cancel(far);
  EXPECT_EQ(s.pending_events(), 0u);
  s.Cancel(far);  // double-cancel around the boundary
  EXPECT_EQ(s.pending_events(), 0u);
  s.Run(Us(200));  // skips the cancelled heap entry
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.events_executed(), 0u);

  // Interleave executed, cancelled and live ids across another boundary.
  EventId a = s.ScheduleAt(Us(300), []() {});
  EventId b = s.ScheduleAt(Us(400), []() {});
  EventId c = s.ScheduleAt(Us(500), []() {});
  EXPECT_EQ(s.pending_events(), 3u);
  s.Cancel(b);
  EXPECT_EQ(s.pending_events(), 2u);
  s.Run(Us(350));  // executes a
  EXPECT_EQ(s.pending_events(), 1u);
  s.Cancel(a);  // already ran
  s.Cancel(b);  // already cancelled, heap entry still queued
  EXPECT_EQ(s.pending_events(), 1u);
  s.Run();
  EXPECT_EQ(s.pending_events(), 0u);
  s.Cancel(c);  // ran
  s.Cancel(kInvalidEvent);
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.events_executed(), 2u);
}

TEST(Simulator, SelfCancelInsideCallbackIsNoop) {
  Simulator s;
  EventId id = kInvalidEvent;
  int runs = 0;
  id = s.ScheduleAt(Us(1), [&]() {
    ++runs;
    s.Cancel(id);  // cancelling the currently-running event
    EXPECT_EQ(s.pending_events(), 0u);
  });
  s.Run();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Rng, UniformInRange) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(1);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng rng(7);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, Deterministic) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Uniform(), b.Uniform());
}

TEST(Rng, SampleDistinctAreDistinctAndInRange) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    auto v = rng.SampleDistinct(10, 30);
    ASSERT_EQ(v.size(), 10u);
    std::sort(v.begin(), v.end());
    for (size_t i = 0; i < v.size(); ++i) {
      EXPECT_LT(v[i], 30u);
      if (i > 0) {
        EXPECT_NE(v[i], v[i - 1]);
      }
    }
  }
}

TEST(Rng, SampleDistinctFullRange) {
  Rng rng(5);
  auto v = rng.SampleDistinct(8, 8);
  std::sort(v.begin(), v.end());
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(v[i], i);
}

}  // namespace
}  // namespace hpcc::sim
