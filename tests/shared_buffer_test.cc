// Tests for shared-buffer accounting and the dynamic PFC thresholds.
#include <gtest/gtest.h>

#include "net/shared_buffer.h"
#include "sim/rng.h"

namespace hpcc::net {
namespace {

TEST(SharedBuffer, AdmitRelease) {
  SharedBuffer b(10'000, 4);
  EXPECT_TRUE(b.CanAdmit(10'000));
  b.Admit(0, kDataPriority, 4'000);
  EXPECT_EQ(b.used_bytes(), 4'000);
  EXPECT_EQ(b.free_bytes(), 6'000);
  EXPECT_EQ(b.ingress_bytes(0, kDataPriority), 4'000);
  EXPECT_FALSE(b.CanAdmit(6'001));
  EXPECT_TRUE(b.CanAdmit(6'000));
  b.Release(0, kDataPriority, 4'000);
  EXPECT_EQ(b.used_bytes(), 0);
}

TEST(SharedBuffer, PerIngressAccountingIsIndependent) {
  SharedBuffer b(100'000, 4);
  b.Admit(1, kDataPriority, 1'000);
  b.Admit(2, kDataPriority, 2'000);
  EXPECT_EQ(b.ingress_bytes(1, kDataPriority), 1'000);
  EXPECT_EQ(b.ingress_bytes(2, kDataPriority), 2'000);
  EXPECT_EQ(b.ingress_bytes(3, kDataPriority), 0);
  EXPECT_EQ(b.used_bytes(), 3'000);
}

TEST(SharedBuffer, DynamicPfcThresholdShrinksAsBufferFills) {
  SharedBuffer b(1'000'000, 2);
  const double alpha = 0.11;
  const int64_t t_empty = b.PfcThreshold(alpha);
  EXPECT_EQ(t_empty, static_cast<int64_t>(0.11 * 1'000'000));
  b.Admit(0, kDataPriority, 500'000);
  EXPECT_EQ(b.PfcThreshold(alpha), static_cast<int64_t>(0.11 * 500'000));
}

TEST(SharedBuffer, ShouldPauseWhenIngressExceedsThreshold) {
  SharedBuffer b(1'000'000, 2);
  const double alpha = 0.11;
  b.Admit(0, kDataPriority, 90'000);
  // free = 910'000, threshold ~ 100'100: not paused yet.
  EXPECT_FALSE(b.ShouldPause(0, kDataPriority, alpha));
  b.Admit(0, kDataPriority, 30'000);
  // ingress 120'000 > 0.11*880'000 = 96'800.
  EXPECT_TRUE(b.ShouldPause(0, kDataPriority, alpha));
  // The other port is unaffected.
  EXPECT_FALSE(b.ShouldPause(1, kDataPriority, alpha));
}

TEST(SharedBuffer, ResumeUsesHysteresis) {
  SharedBuffer b(1'000'000, 2);
  const double alpha = 0.11;
  b.Admit(0, kDataPriority, 120'000);
  EXPECT_TRUE(b.ShouldPause(0, kDataPriority, alpha));
  EXPECT_FALSE(b.ShouldResume(0, kDataPriority, alpha, 0.85));
  b.Release(0, kDataPriority, 60'000);
  // ingress 60'000 < 0.85 * 0.11 * 940'000 ~ 87'890.
  EXPECT_TRUE(b.ShouldResume(0, kDataPriority, alpha, 0.85));
}

// Property sweep: random admit/release sequences keep all counters
// consistent and non-negative.
class SharedBufferProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SharedBufferProperty, AccountingInvariants) {
  sim::Rng rng(GetParam());
  const int ports = 4;
  SharedBuffer b(1'000'000, ports);
  std::vector<std::vector<int64_t>> held(ports);
  int64_t total_held = 0;
  for (int step = 0; step < 20'000; ++step) {
    const int port = static_cast<int>(rng.Index(ports));
    if (rng.Uniform() < 0.55) {
      const int64_t bytes = rng.UniformInt(64, 1500);
      if (b.CanAdmit(bytes)) {
        b.Admit(port, kDataPriority, bytes);
        held[port].push_back(bytes);
        total_held += bytes;
      }
    } else if (!held[port].empty()) {
      const int64_t bytes = held[port].back();
      held[port].pop_back();
      b.Release(port, kDataPriority, bytes);
      total_held -= bytes;
    }
    ASSERT_EQ(b.used_bytes(), total_held);
    ASSERT_GE(b.free_bytes(), 0);
    int64_t sum = 0;
    for (int p = 0; p < ports; ++p) {
      ASSERT_GE(b.ingress_bytes(p, kDataPriority), 0);
      sum += b.ingress_bytes(p, kDataPriority);
    }
    ASSERT_EQ(sum, total_held);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedBufferProperty,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace hpcc::net
