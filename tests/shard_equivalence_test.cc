// Shard-equivalence suite: a sharded run (conservative PDES over per-pod /
// per-block lanes, see topo/partition.h and runner::Experiment::RunSharded)
// must be observably indistinguishable from the single-simulator run — equal
// golden-trace hashes, byte-identical scenario CSVs and byte-identical run
// manifests — at every shard count. Covers the committed example scenarios
// and the whole fuzz corpus at shards {1, 2, 4}, all under the full
// invariant-monitor set (each lane's registry must also stay clean).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace hpcc {
namespace {

constexpr int kShardCounts[] = {1, 2, 4};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// One full checked sweep of `runs` at `shards` lanes, with per-run manifests
// written under `tag`. Returns the results; registers failures for run
// errors and invariant violations.
std::vector<scenario::SweepRunResult> RunChecked(
    const std::vector<scenario::ScenarioRun>& runs, int shards,
    std::vector<std::string>* manifest_paths) {
  std::vector<scenario::SweepRunResult> results;
  results.reserve(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    scenario::RunOneOptions opts;
    opts.check = true;
    opts.shards_override = shards;
    obs::TelemetryConfig tcfg = runs[i].scenario.telemetry;
    tcfg.manifest = true;
    opts.telemetry = tcfg;
    opts.manifest_path = "shard_eq_s" + std::to_string(shards) + "_run" +
                         std::to_string(i) + ".manifest.json";
    manifest_paths->push_back(opts.manifest_path);
    results.push_back(scenario::ScenarioRunner::RunOne(runs[i], opts));
    const scenario::SweepRunResult& r = results.back();
    EXPECT_TRUE(r.error.empty()) << r.label << ": " << r.error;
    EXPECT_EQ(r.violation_count, 0u) << r.label;
    EXPECT_EQ(r.manifest_path, opts.manifest_path) << r.label;
  }
  return results;
}

// Runs every sweep point of `path` at shards {1, 2, 4} and expects the
// deterministic outputs — trace hashes, the aggregate CSV and every per-run
// manifest — byte-equal to the shards=1 run.
void ExpectShardEquivalence(const std::string& path) {
  SCOPED_TRACE(path);
  const scenario::Scenario sc = scenario::LoadScenarioFile(path);
  const std::vector<scenario::ScenarioRun> runs = scenario::ExpandSweep(sc);
  ASSERT_FALSE(runs.empty());

  std::vector<std::string> cleanup;
  std::string base_csv_bytes;
  std::vector<std::string> base_manifest_bytes;
  uint64_t base_hash = 0;
  for (int shards : kShardCounts) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    std::vector<std::string> manifests;
    const auto results = RunChecked(runs, shards, &manifests);
    cleanup.insert(cleanup.end(), manifests.begin(), manifests.end());

    const uint64_t hash = scenario::ScenarioRunner::CombinedTraceHash(results);
    const std::string csv = "shard_eq_s" + std::to_string(shards) + ".csv";
    cleanup.push_back(csv);
    ASSERT_TRUE(scenario::ScenarioRunner::WriteCsv(csv, results));
    const std::string csv_bytes = ReadFile(csv);
    ASSERT_FALSE(csv_bytes.empty());

    if (shards == kShardCounts[0]) {
      base_hash = hash;
      base_csv_bytes = csv_bytes;
      for (const std::string& m : manifests) {
        base_manifest_bytes.push_back(ReadFile(m));
        EXPECT_FALSE(base_manifest_bytes.back().empty()) << m;
      }
    } else {
      EXPECT_EQ(hash, base_hash);
      EXPECT_EQ(csv_bytes, base_csv_bytes);
      ASSERT_EQ(manifests.size(), base_manifest_bytes.size());
      for (size_t i = 0; i < manifests.size(); ++i) {
        EXPECT_EQ(ReadFile(manifests[i]), base_manifest_bytes[i])
            << manifests[i];
      }
    }
  }
  for (const std::string& f : cleanup) std::remove(f.c_str());
}

TEST(ShardEquivalence, Fig11LoadSweep) {
  ExpectShardEquivalence(std::string(HPCC_SOURCE_DIR) +
                         "/examples/scenarios/fig11_load_sweep.json");
}

TEST(ShardEquivalence, Fig13LinkFailure) {
  // Link flaps across the cut: the barrier coordinator applies the script
  // and recomputes the lookahead while every lane is blocked.
  ExpectShardEquivalence(std::string(HPCC_SOURCE_DIR) +
                         "/examples/scenarios/fig13_link_failure.json");
}

TEST(ShardEquivalence, Fattree32Websearch) {
  ExpectShardEquivalence(std::string(HPCC_SOURCE_DIR) +
                         "/examples/scenarios/fattree32_websearch.json");
}

TEST(ShardEquivalence, Fattree16HadoopBurst) {
  // The large-fabric 512-way incast: heavy cross-pod traffic, so nearly
  // every flow crosses a lane boundary at least twice.
  ExpectShardEquivalence(std::string(HPCC_SOURCE_DIR) +
                         "/examples/scenarios/fattree16_hadoop_burst.json");
}

TEST(ShardEquivalence, Corpus) {
  // Every committed fuzz reproducer (dumbbell topologies exercise the
  // contiguous-block partition fallback; storm_fattree_flaps exercises
  // repeated lookahead recomputation).
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::string(HPCC_SOURCE_DIR) + "/tests/corpus")) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  for (const std::string& f : files) ExpectShardEquivalence(f);
}

// The scenario "shards" key must itself be honored (not just the override):
// a document asking for shards=4 produces the exact outputs of the same
// document without the key.
TEST(ShardEquivalence, ScenarioShardsKey) {
  const char* doc = R"({
    "name": "shards_key",
    "topology": {"kind": "fattree", "pods": 2, "tors_per_pod": 2,
                  "aggs_per_pod": 2, "hosts_per_tor": 4},
    "cc": {"scheme": "hpcc"},
    "workload": {"load": 0.4, "trace": "websearch", "max_flows": 60},
    "duration_ms": 0.3,
    "seed": 11,
    "shards": 4
  })";
  const std::string path = "shard_eq_key_tmp.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << doc;
  }
  scenario::Scenario sc = scenario::LoadScenarioFile(path);
  std::remove(path.c_str());
  EXPECT_EQ(sc.config.shards, 4);
  const auto with = scenario::ScenarioRunner::RunOne(
      scenario::ExpandSweep(sc).front(), /*check=*/true);
  ASSERT_TRUE(with.error.empty()) << with.error;
  EXPECT_EQ(with.violation_count, 0u);

  sc.config.shards = 1;
  const auto without = scenario::ScenarioRunner::RunOne(
      scenario::ExpandSweep(sc).front(), /*check=*/true);
  ASSERT_TRUE(without.error.empty()) << without.error;
  EXPECT_EQ(with.result.trace_hash, without.result.trace_hash);
  EXPECT_EQ(with.result.flows_completed, without.result.flows_completed);
  EXPECT_EQ(with.result.sim_time, without.result.sim_time);
}

}  // namespace
}  // namespace hpcc
