// Unit tests for the sharded-execution building blocks: the fabric
// partitioner (topo/partition.h), the up-cut-link lookahead window, and the
// SPSC handoff channel (net/handoff.h). The end-to-end contract lives in
// shard_equivalence_test.cc; these pin the pieces in isolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "net/handoff.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "topo/fattree.h"
#include "topo/partition.h"

namespace hpcc {
namespace {

topo::FatTreeOptions SmallFatTree() {
  topo::FatTreeOptions o;
  o.pods = 4;
  o.tors_per_pod = 2;
  o.aggs_per_pod = 2;
  o.cores_per_agg = 2;
  o.hosts_per_tor = 2;
  return o;
}

TEST(Partition, FatTreeAssignsEveryNodeExactlyOnce) {
  sim::Simulator s;
  const topo::FatTreeOptions opts = SmallFatTree();
  topo::FatTreeTopology ft = topo::MakeFatTree(&s, opts);
  const topo::Topology& topo = *ft.topo;
  for (int shards : {1, 2, 3, 4}) {
    SCOPED_TRACE(shards);
    const std::vector<int> lanes = topo::FatTreeLanes(opts, shards);
    ASSERT_EQ(lanes.size(), topo.num_nodes());
    const topo::Partition p = topo::MakePartition(topo, lanes, shards);
    ASSERT_EQ(p.lane_of_node.size(), topo.num_nodes());
    for (int lane : p.lane_of_node) {
      EXPECT_GE(lane, 0);
      EXPECT_LT(lane, shards);
    }
    // lane_hosts / lane_switches partition hosts() / switches() exactly:
    // same multiset, each node listed once, lane agreeing with lane_of_node.
    std::vector<uint32_t> all_hosts, all_switches;
    for (int l = 0; l < shards; ++l) {
      for (uint32_t h : p.lane_hosts[l]) {
        EXPECT_EQ(p.lane_of_node[h], l);
        all_hosts.push_back(h);
      }
      for (uint32_t sw : p.lane_switches[l]) {
        EXPECT_EQ(p.lane_of_node[sw], l);
        all_switches.push_back(sw);
      }
    }
    std::sort(all_hosts.begin(), all_hosts.end());
    std::sort(all_switches.begin(), all_switches.end());
    std::vector<uint32_t> want_hosts = topo.hosts();
    std::vector<uint32_t> want_switches = topo.switches();
    std::sort(want_hosts.begin(), want_hosts.end());
    std::sort(want_switches.begin(), want_switches.end());
    EXPECT_EQ(all_hosts, want_hosts);
    EXPECT_EQ(all_switches, want_switches);
    // Pod cohesion: a pod's aggs, ToRs and hosts all share one lane (only
    // Agg<->Core links may be cut).
    for (size_t pod = 0; pod < static_cast<size_t>(opts.pods); ++pod) {
      const size_t cores =
          static_cast<size_t>(opts.aggs_per_pod) * opts.cores_per_agg;
      const size_t per_pod = static_cast<size_t>(opts.aggs_per_pod) +
                             static_cast<size_t>(opts.tors_per_pod) *
                                 (1 + opts.hosts_per_tor);
      const size_t base = cores + pod * per_pod;
      for (size_t i = 1; i < per_pod; ++i) {
        EXPECT_EQ(p.lane_of_node[base + i], p.lane_of_node[base]);
      }
    }
  }
}

TEST(Partition, CutLinksEnumeratedExactly) {
  sim::Simulator s;
  const topo::FatTreeOptions opts = SmallFatTree();
  topo::FatTreeTopology ft = topo::MakeFatTree(&s, opts);
  const topo::Topology& topo = *ft.topo;
  const int shards = 2;
  const topo::Partition p =
      topo::MakePartition(topo, topo::FatTreeLanes(opts, shards), shards);

  // Brute-force oracle: every link with endpoints in different lanes yields
  // exactly two directed entries, and nothing else appears.
  const std::vector<topo::LinkSpec>& links = topo.links();
  size_t expect_cut = 0;
  std::set<std::tuple<size_t, uint32_t, uint32_t>> seen;
  for (const topo::CutLink& c : p.cut_links) {
    EXPECT_NE(p.lane_of_node[c.from_node], p.lane_of_node[c.to_node]);
    EXPECT_EQ(c.from_lane, p.lane_of_node[c.from_node]);
    EXPECT_EQ(c.to_lane, p.lane_of_node[c.to_node]);
    EXPECT_EQ(c.delay, links[c.link].delay);
    EXPECT_TRUE(seen.emplace(c.link, c.from_node, c.to_node).second)
        << "duplicate cut entry for link " << c.link;
  }
  for (size_t i = 0; i < links.size(); ++i) {
    if (p.lane_of_node[links[i].a] == p.lane_of_node[links[i].b]) continue;
    expect_cut += 2;
    EXPECT_TRUE(seen.count({i, links[i].a, links[i].b})) << i;
    EXPECT_TRUE(seen.count({i, links[i].b, links[i].a})) << i;
  }
  EXPECT_EQ(p.cut_links.size(), expect_cut);
  EXPECT_GT(expect_cut, 0u);
}

TEST(Partition, ContiguousLanesBalancedAndComplete) {
  for (size_t nodes : {1u, 7u, 10u, 64u}) {
    for (int shards : {1, 2, 3, 4, 8}) {
      SCOPED_TRACE(std::to_string(nodes) + " nodes, " +
                   std::to_string(shards) + " shards");
      const std::vector<int> lanes = topo::ContiguousLanes(nodes, shards);
      ASSERT_EQ(lanes.size(), nodes);
      std::vector<size_t> count(static_cast<size_t>(shards), 0);
      int prev = 0;
      for (int lane : lanes) {
        ASSERT_GE(lane, 0);
        ASSERT_LT(lane, shards);
        EXPECT_GE(lane, prev);  // contiguous blocks
        prev = lane;
        ++count[static_cast<size_t>(lane)];
      }
      const size_t lo = *std::min_element(count.begin(), count.end());
      const size_t hi = *std::max_element(count.begin(), count.end());
      EXPECT_LE(hi - lo, 1u);  // balanced
    }
  }
}

TEST(Partition, UpLookaheadTracksLinkToggles) {
  sim::Simulator s;
  const topo::FatTreeOptions opts = SmallFatTree();
  topo::FatTreeTopology ft = topo::MakeFatTree(&s, opts);
  topo::Topology& topo = *ft.topo;
  const int shards = 2;
  const topo::Partition p =
      topo::MakePartition(topo, topo::FatTreeLanes(opts, shards), shards);
  ASSERT_FALSE(p.cut_links.empty());

  EXPECT_EQ(topo::UpLookahead(topo, p), opts.link_delay);

  // Down every cut link: no up cut link can constrain the window.
  std::set<size_t> cut_indices;
  for (const topo::CutLink& c : p.cut_links) cut_indices.insert(c.link);
  for (size_t i : cut_indices) topo.SetLinkUp(i, false);
  EXPECT_EQ(topo::UpLookahead(topo, p), topo::kUnboundedLookahead);

  // One repair restores the bound; full repair keeps it.
  topo.SetLinkUp(*cut_indices.begin(), true);
  EXPECT_EQ(topo::UpLookahead(topo, p), opts.link_delay);
  for (size_t i : cut_indices) topo.SetLinkUp(i, true);
  EXPECT_EQ(topo::UpLookahead(topo, p), opts.link_delay);

  // Intra-lane links never constrain the window.
  for (size_t i = 0; i < topo.links().size(); ++i) {
    if (!cut_indices.count(i)) {
      topo.SetLinkUp(i, false);
      break;
    }
  }
  EXPECT_EQ(topo::UpLookahead(topo, p), opts.link_delay);
}

TEST(Handoff, OrderAndChunkWrapSingleThread) {
  // Capacity 4 forces several chunk transitions over 35 records.
  net::HandoffChannel ch(4);
  sim::TimePs at = 0;
  EXPECT_FALSE(ch.PeekArrival(&at));
  for (int i = 0; i < 35; ++i) {
    net::Packet* pkt = net::PacketPool::Acquire();
    pkt->seq = static_cast<uint64_t>(i);
    ch.Push({sim::TimePs{100 + i}, sim::TimePs{50 + i}, pkt});
  }
  for (int i = 0; i < 35; ++i) {
    ASSERT_TRUE(ch.PeekArrival(&at));
    EXPECT_EQ(at, sim::TimePs{100 + i});
    net::HandoffRecord r;
    ASSERT_TRUE(ch.Pop(&r));
    EXPECT_EQ(r.at, sim::TimePs{100 + i});
    EXPECT_EQ(r.emission, sim::TimePs{50 + i});
    ASSERT_NE(r.pkt, nullptr);
    EXPECT_EQ(r.pkt->seq, static_cast<uint64_t>(i));
    net::PacketPool::Release(r.pkt);
  }
  EXPECT_FALSE(ch.PeekArrival(&at));
  net::HandoffRecord r;
  EXPECT_FALSE(ch.Pop(&r));
}

TEST(Handoff, ConcurrentSpscPreservesOrder) {
  // Two real threads across a tiny chunk size: the release/acquire pairs on
  // the write cursor and the chunk `next` pointer are the whole protocol;
  // the TSan CI job runs this with -fsanitize=thread.
  constexpr int kRecords = 20'000;
  net::HandoffChannel ch(8);
  std::thread producer([&ch] {
    for (int i = 0; i < kRecords; ++i) {
      ch.Push({sim::TimePs{i}, sim::TimePs{i}, nullptr});
    }
  });
  int got = 0;
  while (got < kRecords) {
    net::HandoffRecord r;
    if (!ch.Pop(&r)) continue;
    ASSERT_EQ(r.at, sim::TimePs{got});
    ++got;
  }
  producer.join();
  sim::TimePs at = 0;
  EXPECT_FALSE(ch.PeekArrival(&at));
}

TEST(Handoff, ShutdownDrainsUndeliveredPackets) {
  // Destroying a channel with pending records must return their packets to
  // the pool (leak check: pool free count grows by exactly the pending
  // count; ASan would flag the alternative).
  constexpr size_t kPending = 10;
  std::vector<net::Packet*> pkts;
  for (size_t i = 0; i < kPending; ++i) {
    pkts.push_back(net::PacketPool::Acquire());
  }
  const size_t free_before = net::PacketPool::free_count();
  {
    net::HandoffChannel ch(4);
    for (size_t i = 0; i < kPending; ++i) {
      ch.Push({sim::TimePs{static_cast<sim::TimePs>(i)}, 0, pkts[i]});
    }
  }
  EXPECT_EQ(net::PacketPool::free_count(), free_before + kPending);
}

}  // namespace
}  // namespace hpcc
