// Tests for the experiment runner: configuration wiring, monitors, metrics.
#include <gtest/gtest.h>

#include "runner/experiment.h"

namespace hpcc::runner {
namespace {

TEST(Runner, MeasuresBaseRttFromTopology) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kStar;
  cfg.star.num_hosts = 3;
  Experiment e(cfg);
  EXPECT_GT(e.base_rtt(), sim::Us(3));
  EXPECT_LT(e.base_rtt(), sim::Us(6));
}

TEST(Runner, BaseRttOverride) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kStar;
  cfg.star.num_hosts = 2;
  cfg.base_rtt_override = sim::Us(42);
  Experiment e(cfg);
  EXPECT_EQ(e.base_rtt(), sim::Us(42));
}

TEST(Runner, SwitchConfigFollowsScheme) {
  auto red_enabled = [](const char* scheme) {
    ExperimentConfig cfg;
    cfg.topology = TopologyKind::kStar;
    cfg.star.num_hosts = 2;
    cfg.cc.scheme = scheme;
    Experiment e(cfg);
    return e.topology()
        .switch_node(e.topology().switches()[0])
        .config()
        .red.enabled;
  };
  EXPECT_TRUE(red_enabled("dcqcn"));
  EXPECT_TRUE(red_enabled("dctcp"));
  EXPECT_FALSE(red_enabled("hpcc"));
  EXPECT_FALSE(red_enabled("timely"));
}

TEST(Runner, RedOverrideWins) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kStar;
  cfg.star.num_hosts = 2;
  cfg.cc.scheme = "hpcc";
  cfg.red_override = net::RedConfig::Dcqcn(12, 50);
  Experiment e(cfg);
  const auto& red =
      e.topology().switch_node(e.topology().switches()[0]).config().red;
  EXPECT_TRUE(red.enabled);
  EXPECT_DOUBLE_EQ(red.kmin_bytes, 12'000.0);
}

TEST(Runner, PfcDisableFlagPropagates) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kStar;
  cfg.star.num_hosts = 2;
  cfg.pfc_enabled = false;
  Experiment e(cfg);
  EXPECT_FALSE(e.topology()
                   .switch_node(e.topology().switches()[0])
                   .config()
                   .pfc_enabled);
}

TEST(Runner, PoissonRunCompletesAndRecordsEverything) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kStar;
  cfg.star.num_hosts = 6;
  cfg.cc.scheme = "hpcc";
  cfg.load = 0.4;
  cfg.trace = "fbhadoop";
  cfg.max_flows = 80;
  cfg.duration = sim::Ms(2);
  Experiment e(cfg);
  ExperimentResult r = e.Run();
  EXPECT_EQ(r.flows_created, 80u);
  EXPECT_EQ(r.flows_completed, 80u);
  EXPECT_EQ(r.fct->total_flows(), 80u);
  EXPECT_GT(r.events_executed, 1000u);
  EXPECT_GT(r.queue_dist.Count(), 0u);
  EXPECT_FALSE(r.Summary().empty());
}

TEST(Runner, ShortFlowLatencyTracked) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kStar;
  cfg.star.num_hosts = 3;
  cfg.short_flow_bytes = 3'000;
  Experiment e(cfg);
  const auto& h = e.hosts();
  e.AddFlow(h[0], h[2], 1'000, 0);     // short
  e.AddFlow(h[1], h[2], 500'000, 0);   // long
  e.RunUntil(sim::Ms(5));
  ExperimentResult r = e.Collect();
  EXPECT_EQ(r.short_fct_us.Count(), 1u);
  EXPECT_GT(r.short_fct_us.Percentile(50), 0.0);
}

TEST(Runner, DrainFinishesTailFlows) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kStar;
  cfg.star.num_hosts = 4;
  cfg.cc.scheme = "hpcc";
  cfg.load = 0.5;
  cfg.trace = "websearch";  // heavy tail: some flows outlive `duration`
  cfg.max_flows = 30;
  cfg.duration = sim::Ms(1);
  cfg.drain_factor = 50.0;
  Experiment e(cfg);
  ExperimentResult r = e.Run();
  EXPECT_EQ(r.flows_completed, r.flows_created);
  EXPECT_GE(r.sim_time, cfg.duration);
}

TEST(Runner, SeedsChangeWorkload) {
  auto run = [](uint64_t seed) {
    ExperimentConfig cfg;
    cfg.topology = TopologyKind::kStar;
    cfg.star.num_hosts = 4;
    cfg.load = 0.3;
    cfg.max_flows = 20;
    cfg.duration = sim::Ms(2);
    cfg.seed = seed;
    Experiment e(cfg);
    ExperimentResult r = e.Run();
    return r.events_executed;
  };
  EXPECT_NE(run(1), run(2));
  EXPECT_EQ(run(3), run(3));  // and identical seeds reproduce exactly
}

TEST(Runner, TestbedTopologyWiring) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kTestbed;
  cfg.testbed.servers_per_pair = 4;
  Experiment e(cfg);
  EXPECT_EQ(e.hosts().size(), 8u);
  // Dual-homed: every host has two NIC ports.
  EXPECT_EQ(e.topology().host(e.hosts()[0]).num_ports(), 2);
}

TEST(Runner, DumbbellHostOrdering) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kDumbbell;
  cfg.dumbbell.hosts_per_side = 3;
  Experiment e(cfg);
  ASSERT_EQ(e.hosts().size(), 6u);
  // Left hosts first, then right (documented for bench writers).
  EXPECT_EQ(e.topology().PathHops(e.hosts()[0], e.hosts()[1]), 2);
  EXPECT_EQ(e.topology().PathHops(e.hosts()[0], e.hosts()[3]), 3);
}

TEST(Runner, AddFlowRejectsSelfTraffic) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kStar;
  cfg.star.num_hosts = 2;
  Experiment e(cfg);
  EXPECT_THROW(e.AddFlow(e.hosts()[0], e.hosts()[0], 1000, 0),
               std::invalid_argument);
  EXPECT_THROW(e.AddReadFlow(e.hosts()[1], e.hosts()[1], 1000, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace hpcc::runner
