// Telemetry determinism + shape regression tests (src/obs).
//
// The headline pins: the manifest and the Perfetto trace are byte-identical
// across --jobs=1/4 and --fastpath=on/off (the same contract the CSVs
// honor), and a run with telemetry on produces the exact CSV a run with
// telemetry off does. Plus schema smoke tests for both artifacts and the
// per-reason drop columns' appear-only-with-drops rule.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/manifest.h"
#include "obs/telemetry.h"
#include "scenario/json.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace hpcc::scenario {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string ScenarioPath(const char* name) {
  return std::string(HPCC_SOURCE_DIR) + "/examples/scenarios/" + name;
}

std::string CorpusPath(const char* name) {
  return std::string(HPCC_SOURCE_DIR) + "/tests/corpus/" + name;
}

// Runs one sweep point with manifest + trace on, writing to `tag`-derived
// file names, and returns {manifest bytes, trace bytes}.
std::pair<std::string, std::string> RunWithTelemetry(const ScenarioRun& run,
                                                     const std::string& tag,
                                                     int fastpath_override) {
  RunOneOptions opts;
  opts.fastpath_override = fastpath_override;
  obs::TelemetryConfig tcfg = run.scenario.telemetry;
  tcfg.manifest = true;
  tcfg.trace = true;
  opts.telemetry = tcfg;
  opts.manifest_path = tag + ".manifest.json";
  opts.trace_path = tag + ".trace.json";
  const SweepRunResult r = ScenarioRunner::RunOne(run, opts);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.manifest_path, opts.manifest_path);
  EXPECT_EQ(r.trace_path, opts.trace_path);
  std::pair<std::string, std::string> out{ReadFile(opts.manifest_path),
                                          ReadFile(opts.trace_path)};
  std::remove(opts.manifest_path.c_str());
  std::remove(opts.trace_path.c_str());
  return out;
}

TEST(Telemetry, ArtifactsIdenticalAcrossJobs) {
  const Scenario sc = LoadScenarioFile(ScenarioPath("fig11_load_sweep.json"));
  const std::vector<ScenarioRun> runs = ExpandSweep(sc);
  ASSERT_GT(runs.size(), 1u);

  auto run_with_jobs = [&](int jobs, const std::string& base) {
    ScenarioRunnerOptions o;
    o.jobs = jobs;
    o.manifest = true;
    o.trace_out = base + ".trace.json";
    o.out_base = base;
    return ScenarioRunner(o).RunAll(runs);
  };
  const auto r1 = run_with_jobs(1, "telemetry_jobs1");
  const auto r4 = run_with_jobs(4, "telemetry_jobs4");
  ASSERT_EQ(r1.size(), runs.size());
  ASSERT_EQ(r4.size(), runs.size());

  for (size_t i = 0; i < r1.size(); ++i) {
    SCOPED_TRACE(r1[i].label);
    ASSERT_TRUE(r1[i].error.empty()) << r1[i].error;
    ASSERT_FALSE(r1[i].manifest_path.empty());
    ASSERT_FALSE(r1[i].trace_path.empty());
    const std::string m1 = ReadFile(r1[i].manifest_path);
    const std::string m4 = ReadFile(r4[i].manifest_path);
    const std::string t1 = ReadFile(r1[i].trace_path);
    const std::string t4 = ReadFile(r4[i].trace_path);
    EXPECT_FALSE(m1.empty());
    EXPECT_FALSE(t1.empty());
    EXPECT_EQ(m1, m4);
    EXPECT_EQ(t1, t4);
    std::remove(r1[i].manifest_path.c_str());
    std::remove(r4[i].manifest_path.c_str());
    std::remove(r1[i].trace_path.c_str());
    std::remove(r4[i].trace_path.c_str());
  }
}

TEST(Telemetry, ArtifactsIdenticalAcrossEngines) {
  // One sweep point of the fig11 sweep plus one fuzz-corpus scenario: the
  // manifest and trace must not leak which transmit engine ran (that is
  // profile-section-only data).
  const std::vector<std::string> files = {ScenarioPath("fig11_load_sweep.json"),
                                          CorpusPath("fuzz_42_0.json")};
  for (const std::string& file : files) {
    SCOPED_TRACE(file);
    const Scenario sc = LoadScenarioFile(file);
    const std::vector<ScenarioRun> runs = ExpandSweep(sc);
    ASSERT_FALSE(runs.empty());
    const auto fast = RunWithTelemetry(runs[0], "telemetry_fast", 1);
    const auto ref = RunWithTelemetry(runs[0], "telemetry_ref", 0);
    EXPECT_FALSE(fast.first.empty());
    EXPECT_FALSE(fast.second.empty());
    EXPECT_EQ(fast.first, ref.first);    // manifest
    EXPECT_EQ(fast.second, ref.second);  // trace
  }
}

TEST(Telemetry, ManifestShape) {
  const Scenario sc = LoadScenarioFile(ScenarioPath("fig11_load_sweep.json"));
  const std::vector<ScenarioRun> runs = ExpandSweep(sc);
  ASSERT_FALSE(runs.empty());
  const auto arts = RunWithTelemetry(runs[0], "telemetry_shape", -1);

  const Json doc = Json::Parse(arts.first);
  ASSERT_NE(doc.Find("schema"), nullptr);
  EXPECT_EQ(doc.Find("schema")->AsString(), "hpccsim-manifest-v1");
  ASSERT_NE(doc.Find("scenario"), nullptr);
  ASSERT_NE(doc.Find("telemetry"), nullptr);
  ASSERT_NE(doc.Find("counters"), nullptr);
  ASSERT_NE(doc.Find("metrics"), nullptr);
  ASSERT_NE(doc.Find("trace_hash"), nullptr);
  // profile is opt-in and must be absent by default (engine-dependent).
  EXPECT_EQ(doc.Find("profile"), nullptr);
  const Json* counters = doc.Find("counters");
  ASSERT_NE(counters->Find("packets"), nullptr);
  ASSERT_NE(counters->Find("drops"), nullptr);
  ASSERT_NE(counters->Find("pfc"), nullptr);
  const Json* drops = counters->Find("drops");
  ASSERT_NE(drops->Find("no_route"), nullptr);
  ASSERT_NE(drops->Find("buffer_full"), nullptr);
  ASSERT_NE(drops->Find("egress_threshold"), nullptr);

  const Json trace = Json::Parse(arts.second);
  const Json* events = trace.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GT(events->size(), 0u);
  // Every event carries the mandatory Chrome-trace fields.
  bool saw_flow_span = false, saw_counter = false;
  for (const Json& ev : events->items()) {
    ASSERT_NE(ev.Find("ph"), nullptr);
    ASSERT_NE(ev.Find("pid"), nullptr);
    const std::string ph = ev.Find("ph")->AsString();
    if (ph == "b") saw_flow_span = true;
    if (ph == "C") saw_counter = true;
  }
  EXPECT_TRUE(saw_flow_span);
  EXPECT_TRUE(saw_counter);
}

TEST(Telemetry, ProfileSectionIsOptIn) {
  const Scenario sc = LoadScenarioFile(ScenarioPath("fig11_load_sweep.json"));
  const std::vector<ScenarioRun> runs = ExpandSweep(sc);
  ASSERT_FALSE(runs.empty());
  RunOneOptions opts;
  obs::TelemetryConfig tcfg;
  tcfg.manifest = true;
  tcfg.profile = true;
  opts.telemetry = tcfg;
  opts.manifest_path = "telemetry_profile.manifest.json";
  const SweepRunResult r = ScenarioRunner::RunOne(runs[0], opts);
  ASSERT_TRUE(r.error.empty()) << r.error;
  const Json doc = Json::Parse(ReadFile(opts.manifest_path));
  std::remove(opts.manifest_path.c_str());
  const Json* profile = doc.Find("profile");
  ASSERT_NE(profile, nullptr);
  ASSERT_NE(profile->Find("events_executed"), nullptr);
  ASSERT_NE(profile->Find("wall"), nullptr);
  EXPECT_GT(profile->Find("events_executed")->AsDouble(), 0.0);
}

TEST(Telemetry, CsvUnchangedByTelemetry) {
  // A run with full telemetry must produce the exact CSV a plain run does:
  // the samplers are read-only and zero-drop scenarios keep their historical
  // columns.
  const Scenario sc = LoadScenarioFile(ScenarioPath("fig11_load_sweep.json"));
  const std::vector<ScenarioRun> runs = ExpandSweep(sc);

  ScenarioRunnerOptions plain;
  plain.jobs = 2;
  const auto rp = ScenarioRunner(plain).RunAll(runs);

  ScenarioRunnerOptions tele;
  tele.jobs = 2;
  tele.manifest = true;
  tele.trace_out = "telemetry_csv.trace.json";
  tele.out_base = "telemetry_csv";
  const auto rt = ScenarioRunner(tele).RunAll(runs);

  ASSERT_TRUE(ScenarioRunner::WriteCsv("telemetry_plain.csv", rp));
  ASSERT_TRUE(ScenarioRunner::WriteCsv("telemetry_on.csv", rt));
  const std::string a = ReadFile("telemetry_plain.csv");
  const std::string b = ReadFile("telemetry_on.csv");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // fig11 is a PFC scenario: no drops, so no drops_* columns.
  EXPECT_EQ(a.find("drops_no_route"), std::string::npos);
  std::remove("telemetry_plain.csv");
  std::remove("telemetry_on.csv");
  for (const auto& r : rt) {
    if (!r.manifest_path.empty()) std::remove(r.manifest_path.c_str());
    if (!r.trace_path.empty()) std::remove(r.trace_path.c_str());
  }
}

TEST(Telemetry, DropReasonColumnsOnlyWithDrops) {
  std::vector<SweepRunResult> results(2);
  results[0].label = "a";
  results[1].label = "b";
  EXPECT_FALSE(ScenarioRunner::HasDrops(results));
  auto header = ScenarioRunner::CsvHeader(results);
  for (const std::string& col : header) {
    EXPECT_TRUE(col.find("drops_") == std::string::npos) << col;
  }
  const size_t plain_cols = header.size();

  results[1].result.dropped_packets = 5;
  results[1].result.dropped_by_reason[1] = 5;  // buffer_full
  EXPECT_TRUE(ScenarioRunner::HasDrops(results));
  header = ScenarioRunner::CsvHeader(results);
  EXPECT_EQ(header.size(), plain_cols + 4);
  // The reason columns sit right after dropped_packets, before retx_timeouts.
  size_t at = 0;
  while (at < header.size() && header[at] != "dropped_packets") ++at;
  ASSERT_LT(at + 4, header.size());
  EXPECT_EQ(header[at + 1], "drops_no_route");
  EXPECT_EQ(header[at + 2], "drops_buffer_full");
  EXPECT_EQ(header[at + 3], "drops_egress_threshold");
  EXPECT_EQ(header[at + 4], "drops_corrupt");

  // Error rows stay rectangular under either shape.
  results[0].error = "boom";
  EXPECT_EQ(ScenarioRunner::CsvRow(results[0], true).size(), header.size());
  EXPECT_EQ(ScenarioRunner::CsvRow(results[0], false).size(),
            header.size() - 4);
}

TEST(Telemetry, ScenarioTelemetryBlockRoundTrips) {
  const std::string text = R"({
    "name": "tele_rt",
    "topology": {"kind": "dumbbell", "hosts_per_side": 2},
    "workload": {"load": 0.2, "max_flows": 10},
    "duration_ms": 0.2,
    "telemetry": {"manifest": true, "trace": true, "queue_tracks": 4,
                  "queue_sample_us": 5.0, "int_tracks": 2}
  })";
  const Scenario sc = ParseScenarioText(text);
  EXPECT_TRUE(sc.telemetry.manifest);
  EXPECT_TRUE(sc.telemetry.trace);
  EXPECT_FALSE(sc.telemetry.profile);
  EXPECT_EQ(sc.telemetry.queue_tracks, 4);
  EXPECT_EQ(sc.telemetry.int_tracks, 2);
  EXPECT_DOUBLE_EQ(sc.telemetry.queue_sample_us, 5.0);

  // Canonicalization fixed point, telemetry block included.
  const Json doc = ScenarioToJson(sc);
  const Scenario again = ParseScenario(doc);
  EXPECT_TRUE(again.telemetry == sc.telemetry);
  EXPECT_EQ(ScenarioToJson(again).Dump(2), doc.Dump(2));

  // Unknown telemetry keys fail loudly like everywhere else in the schema.
  EXPECT_THROW(ParseScenarioText(R"({
    "name": "bad",
    "topology": {"kind": "dumbbell", "hosts_per_side": 2},
    "workload": {"load": 0.2, "max_flows": 10},
    "duration_ms": 0.2,
    "telemetry": {"manifets": true}
  })"),
               ScenarioError);
}

}  // namespace
}  // namespace hpcc::scenario
