// End-to-end behavior tests reproducing the paper's qualitative claims on
// small fixtures: near-zero queues, incast without PFC, fast reclaim,
// fairness, and full workload runs for every CC scheme.
#include <gtest/gtest.h>

#include <cmath>

#include "runner/experiment.h"
#include "stats/timeseries.h"

namespace hpcc::runner {
namespace {

ExperimentConfig StarConfig(int hosts, const std::string& scheme) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kStar;
  cfg.star.num_hosts = hosts;
  cfg.cc.scheme = scheme;
  cfg.cc.hpcc.expected_flows = 16;
  return cfg;
}

// §5.2 "HPCC has lower network latency": a 2-to-1 overload converges to a
// near-empty queue at the bottleneck while keeping utilization ~eta.
TEST(Integration, TwoToOneHpccNearZeroQueue) {
  ExperimentConfig cfg = StarConfig(3, "hpcc");
  Experiment e(cfg);
  const auto& h = e.hosts();
  host::Flow* f1 = e.AddFlow(h[0], h[2], 20'000'000, 0);
  host::Flow* f2 = e.AddFlow(h[1], h[2], 20'000'000, 0);

  // Sample the receiver downlink queue after convergence (200us on).
  net::SwitchNode& sw = e.topology().switch_node(e.topology().switches()[0]);
  const int dl = 2;  // port toward h[2] (ports added in host order)
  stats::PercentileTracker steady;
  for (int i = 0; i < 800; ++i) {
    e.RunUntil(sim::Us(200) + i * sim::Us(1));
    steady.Add(static_cast<double>(sw.port(dl).queue_bytes(net::kDataPriority)));
  }
  // Median queue essentially zero; tail bounded by a few packets.
  EXPECT_LT(steady.Percentile(50), 5'000.0);
  EXPECT_LT(steady.Percentile(99), 40'000.0);
  // Throughput: both flows progressed at ~eta line rate combined.
  const double total_acked =
      static_cast<double>(f1->snd_una + f2->snd_una);
  const double gbps = total_acked * 8 / sim::ToSec(e.simulator().now()) / 1e9;
  EXPECT_GT(gbps, 80.0);
  EXPECT_LT(gbps, 100.0);
}

// Fig. 9e/9f: HPCC achieves high utilization AND a near-zero queue at the
// same time; DCQCN cannot — it first builds a large queue (ECN needs one),
// then overshoots downward and under-utilizes (§2.3's trade-offs).
TEST(Integration, TwoToOneDcqcnCannotGetBothQueueAndUtilization) {
  struct Outcome {
    double q95;
    double goodput_gbps;
  };
  auto run = [](const std::string& scheme) {
    ExperimentConfig cfg = StarConfig(3, scheme);
    Experiment e(cfg);
    const auto& h = e.hosts();
    host::Flow* f1 = e.AddFlow(h[0], h[2], 20'000'000, 0);
    host::Flow* f2 = e.AddFlow(h[1], h[2], 20'000'000, 0);
    net::SwitchNode& sw =
        e.topology().switch_node(e.topology().switches()[0]);
    stats::PercentileTracker q;
    for (int i = 0; i < 1100; ++i) {
      e.RunUntil(i * sim::Us(1));
      q.Add(static_cast<double>(sw.port(2).queue_bytes(net::kDataPriority)));
    }
    const double gbps = static_cast<double>(f1->snd_una + f2->snd_una) * 8 /
                        sim::ToSec(e.simulator().now()) / 1e9;
    return Outcome{q.Percentile(95), gbps};
  };
  const Outcome hpcc = run("hpcc");
  const Outcome dcqcn = run("dcqcn");
  // HPCC: tiny tail queue at ~eta utilization.
  EXPECT_LT(hpcc.q95, 50'000.0);
  EXPECT_GT(hpcc.goodput_gbps, 80.0);
  // DCQCN: an order of magnitude more queueing, and (on this horizon) less
  // goodput because of its slow timer-driven recovery after the overshoot.
  EXPECT_GT(dcqcn.q95, 10 * std::max(hpcc.q95, 5'000.0));
  EXPECT_LT(dcqcn.goodput_gbps, hpcc.goodput_gbps);
}

// Fig. 9c/9d + §5.3: incast through a single choke point. HPCC's inflight
// limit keeps the queue bounded and triggers no PFC; DCQCN (rate-only)
// overshoots into PFC.
struct IncastOutcome {
  size_t pauses;
  int64_t max_queue;
  uint64_t completed;
  uint64_t total;
};

IncastOutcome RunTrunkIncast(const std::string& scheme) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kDumbbell;
  cfg.dumbbell.hosts_per_side = 32;
  cfg.dumbbell.host_bps = 100'000'000'000;
  cfg.dumbbell.trunk_bps = 400'000'000'000;
  cfg.cc.scheme = scheme;
  cfg.cc.hpcc.expected_flows = 32;
  cfg.duration = sim::Ms(3);
  Experiment e(cfg);
  const auto& h = e.hosts();
  const uint32_t receiver = h[32];  // first right-side host
  for (int i = 0; i < 32; ++i) {
    e.AddFlow(h[i], receiver, 500'000, 0);
  }
  ExperimentResult r = e.Run();  // also starts the queue monitor
  return {r.pause_events, r.max_queue_bytes, r.flows_completed,
          r.flows_created};
}

TEST(Integration, IncastHpccTriggersNoPfc) {
  const IncastOutcome o = RunTrunkIncast("hpcc");
  EXPECT_EQ(o.pauses, 0u);
  EXPECT_EQ(o.completed, o.total);
  EXPECT_LT(o.max_queue, 3'000'000);
}

TEST(Integration, IncastDcqcnOvershootsIntoPfc) {
  const IncastOutcome o = RunTrunkIncast("dcqcn");
  EXPECT_GT(o.pauses, 0u);  // PFC kicked in (§5.3, Fig. 11b)
  EXPECT_EQ(o.completed, o.total);  // but lossless: flows still finish
}

TEST(Integration, AddingWindowToDcqcnPreventsPfc) {
  // §5.3: "just adding a sending window to DCQCN and TIMELY reduces PFCs to
  // almost zero".
  const IncastOutcome plain = RunTrunkIncast("dcqcn");
  const IncastOutcome win = RunTrunkIncast("dcqcn+win");
  EXPECT_GT(plain.pauses, 0u);
  EXPECT_EQ(win.pauses, 0u);
  EXPECT_LT(win.max_queue, plain.max_queue);
}

// Fig. 9g: fair sharing. Two HPCC flows through one bottleneck converge to
// near-equal throughput shortly after the second one joins.
TEST(Integration, FairShareTwoFlows) {
  ExperimentConfig cfg = StarConfig(3, "hpcc");
  cfg.cc.hpcc.wai_bytes = 500;  // faster AI for a short test horizon
  Experiment e(cfg);
  const auto& h = e.hosts();
  host::Flow* f1 = e.AddFlow(h[0], h[2], 50'000'000, 0);
  host::Flow* f2 = e.AddFlow(h[1], h[2], 50'000'000, sim::Us(200));
  e.RunUntil(sim::Ms(2));
  const uint64_t a1 = f1->snd_una;
  const uint64_t a2 = f2->snd_una;
  e.RunUntil(sim::Ms(4));
  // Goodput over the final 2ms window.
  const double g1 = static_cast<double>(f1->snd_una - a1);
  const double g2 = static_cast<double>(f2->snd_una - a2);
  const double jain = (g1 + g2) * (g1 + g2) / (2 * (g1 * g1 + g2 * g2));
  EXPECT_GT(jain, 0.95);
}

// Fig. 9a: bandwidth reclaim. A long flow shares with a 1MB short flow; once
// the short flow ends, HPCC re-ramps to (near) line rate within a handful of
// RTTs thanks to MI (§3.3), far faster than DCQCN's timer-driven recovery.
TEST(Integration, LongShortReclaimFasterThanDcqcn) {
  auto reclaim_gbps = [](const std::string& scheme) {
    ExperimentConfig cfg = StarConfig(3, scheme);
    cfg.cc.hpcc.expected_flows = 2;
    Experiment e(cfg);
    const auto& h = e.hosts();
    host::Flow* lf = e.AddFlow(h[0], h[2], 100'000'000, 0);
    host::Flow* sf = e.AddFlow(h[1], h[2], 1'000'000, sim::Us(100));
    // Run until the short flow completes.
    while (!sf->done && e.simulator().now() < sim::Ms(5)) {
      e.RunUntil(e.simulator().now() + sim::Us(10));
    }
    EXPECT_TRUE(sf->done);
    // Long-flow goodput over the 300us window starting 100us after the
    // short flow left.
    const sim::TimePs t0 = e.simulator().now() + sim::Us(100);
    e.RunUntil(t0);
    const uint64_t acked0 = lf->snd_una;
    e.RunUntil(t0 + sim::Us(300));
    return static_cast<double>(lf->snd_una - acked0) * 8 /
           sim::ToSec(sim::Us(300)) / 1e9;
  };
  const double hpcc = reclaim_gbps("hpcc");
  const double dcqcn = reclaim_gbps("dcqcn");
  EXPECT_GT(hpcc, 85.0);           // back to ~line promptly (Fig. 9a)
  EXPECT_GT(hpcc, dcqcn + 10.0);   // DCQCN recovers slowly (Fig. 9b)
}

// Every scheme must survive a realistic mixed workload on a small FatTree:
// flows complete, and with PFC on nothing is ever dropped.
class SchemeWorkload : public ::testing::TestWithParam<const char*> {};

TEST_P(SchemeWorkload, FatTreeWebSearchRunsClean) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kFatTree;
  cfg.fattree.pods = 2;
  cfg.fattree.tors_per_pod = 2;
  cfg.fattree.aggs_per_pod = 2;
  cfg.fattree.hosts_per_tor = 4;  // 16 hosts
  cfg.cc.scheme = GetParam();
  cfg.load = 0.3;
  cfg.trace = "websearch";
  cfg.max_flows = 120;
  cfg.duration = sim::Ms(2);
  cfg.seed = 5;
  Experiment e(cfg);
  ExperimentResult r = e.Run();
  EXPECT_EQ(r.dropped_packets, 0u) << "lossless fabric must not drop";
  EXPECT_GE(r.flows_completed, r.flows_created * 95 / 100);
  EXPECT_GT(r.fct->total_flows(), 0u);
  // Slowdown sanity: medians are finite and >= 1.
  EXPECT_GE(r.fct->overall().Percentile(50), 1.0);
  EXPECT_LT(r.fct->overall().Percentile(50), 100.0);
}

INSTANTIATE_TEST_SUITE_P(All, SchemeWorkload,
                         ::testing::Values("hpcc", "dcqcn", "dcqcn+win",
                                           "timely", "timely+win", "dctcp",
                                           "hpcc-alpha"));

// Hardware-faithful INT (Fig. 7 quantized/wrapped fields) must behave like
// the full-precision stack: same near-zero queue, same throughput.
TEST(Integration, WireFormatIntMatchesFullPrecision) {
  struct Outcome {
    double q99;
    double gbps;
  };
  auto run = [](bool wire) {
    ExperimentConfig cfg = StarConfig(3, "hpcc");
    cfg.cc.hpcc.wire_format = wire;
    Experiment e(cfg);
    const auto& h = e.hosts();
    host::Flow* f1 = e.AddFlow(h[0], h[2], 30'000'000, 0);
    host::Flow* f2 = e.AddFlow(h[1], h[2], 30'000'000, 0);
    net::SwitchNode& sw =
        e.topology().switch_node(e.topology().switches()[0]);
    stats::PercentileTracker q;
    for (int i = 0; i < 2000; ++i) {
      e.RunUntil(sim::Us(100) + i * sim::Us(1));
      q.Add(static_cast<double>(sw.port(2).queue_bytes(net::kDataPriority)));
    }
    const double gbps = static_cast<double>(f1->snd_una + f2->snd_una) * 8 /
                        sim::ToSec(e.simulator().now()) / 1e9;
    return Outcome{q.Percentile(99), gbps};
  };
  const Outcome exact = run(false);
  const Outcome wire = run(true);
  EXPECT_NEAR(wire.gbps, exact.gbps, exact.gbps * 0.05);
  EXPECT_LT(wire.q99, 50'000.0);
  // The 24-bit ns timestamp wraps every ~16.8 ms: the run crosses at least
  // one wrap without misbehaving (2ms horizon per flow start offset... the
  // counters themselves started wrapped at different bases).
}

// The paper's optional INT-efficiency extension: sampling INT on every Nth
// packet cuts header overhead while HPCC keeps its properties.
TEST(Integration, SampledIntStillConverges) {
  struct Outcome {
    double gbps;
    double q99;
    uint64_t int_acks;
  };
  auto run = [](int every) {
    ExperimentConfig cfg = StarConfig(3, "hpcc");
    cfg.int_sample_every = every;
    Experiment e(cfg);
    const auto& h = e.hosts();
    host::Flow* f1 = e.AddFlow(h[0], h[2], 20'000'000, 0);
    host::Flow* f2 = e.AddFlow(h[1], h[2], 20'000'000, 0);
    net::SwitchNode& sw =
        e.topology().switch_node(e.topology().switches()[0]);
    stats::PercentileTracker q;
    for (int i = 0; i < 1200; ++i) {
      e.RunUntil(sim::Us(100) + i * sim::Us(1));
      q.Add(static_cast<double>(sw.port(2).queue_bytes(net::kDataPriority)));
    }
    const double gbps = static_cast<double>(f1->snd_una + f2->snd_una) * 8 /
                        sim::ToSec(e.simulator().now()) / 1e9;
    return Outcome{gbps, q.Percentile(99), 0};
  };
  const Outcome full = run(1);
  const Outcome sampled = run(4);
  // 4x less telemetry: still ~eta utilization and near-zero queue.
  EXPECT_GT(sampled.gbps, full.gbps - 8.0);
  EXPECT_LT(sampled.q99, 60'000.0);
}

// Conservation through the full stack: receiver byte counts match flow sizes.
TEST(Integration, ByteConservation) {
  ExperimentConfig cfg = StarConfig(4, "hpcc");
  Experiment e(cfg);
  const auto& h = e.hosts();
  host::Flow* f1 = e.AddFlow(h[0], h[3], 777'777, 0);
  host::Flow* f2 = e.AddFlow(h[1], h[3], 123'456, sim::Us(5));
  host::Flow* f3 = e.AddFlow(h[2], h[3], 999, sim::Us(10));
  e.RunUntil(sim::Ms(5));
  for (host::Flow* f : {f1, f2, f3}) {
    ASSERT_TRUE(f->done);
    const auto* rx =
        e.topology().host(f->spec().dst).FindRxState(f->spec().id);
    ASSERT_NE(rx, nullptr);
    EXPECT_EQ(rx->rcv_nxt, f->spec().size_bytes);
  }
}

// IRN + lossy fabric (Fig. 12): HPCC's performance is insensitive to the
// flow-control choice; flows complete without PFC.
TEST(Integration, HpccWithIrnAndNoPfc) {
  ExperimentConfig cfg = StarConfig(9, "hpcc");
  cfg.pfc_enabled = false;
  cfg.recovery = host::RecoveryMode::kIrn;
  Experiment e(cfg);
  const auto& h = e.hosts();
  std::vector<host::Flow*> flows;
  for (int i = 0; i < 8; ++i) {
    flows.push_back(e.AddFlow(h[i], h[8], 400'000, 0));
  }
  e.RunUntil(sim::Ms(5));
  for (auto* f : flows) EXPECT_TRUE(f->done);
}

// The runner's Poisson + incast composition (Fig. 11 "30% + incast").
TEST(Integration, PoissonPlusIncastComposes) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kFatTree;
  cfg.fattree.pods = 2;
  cfg.fattree.tors_per_pod = 2;
  cfg.fattree.aggs_per_pod = 2;
  cfg.fattree.hosts_per_tor = 4;
  cfg.cc.scheme = "hpcc";
  cfg.load = 0.2;
  cfg.trace = "fbhadoop";
  cfg.max_flows = 200;
  cfg.incast = true;
  cfg.incast_opts.fan_in = 8;
  cfg.incast_opts.flow_bytes = 100'000;
  cfg.incast_opts.first_event = sim::Us(200);
  cfg.incast_opts.period = sim::Ms(1);
  cfg.duration = sim::Ms(2);
  Experiment e(cfg);
  ExperimentResult r = e.Run();
  // Poisson flows + at least 2 incast events x 8 flows.
  EXPECT_GT(r.flows_created, 200u);
  EXPECT_GE(r.flows_completed, r.flows_created * 9 / 10);
  EXPECT_EQ(r.dropped_packets, 0u);
}

}  // namespace
}  // namespace hpcc::runner
