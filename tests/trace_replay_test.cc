// Trace replay: CSV parse/format round-trip, strict-parse rejection, and
// end-to-end emission through TraceReplaySource and the experiment runner.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "runner/experiment.h"
#include "sim/simulator.h"
#include "workload/trace_replay.h"

namespace hpcc::workload {
namespace {

std::vector<TraceRecord> Parse(const std::string& text) {
  std::istringstream in(text);
  return ParseFlowTrace(in);
}

TEST(FlowTrace, ParseBasic) {
  const auto r = Parse(
      "# exported 2026-08-01\n"
      "arrival_us,src,dst,bytes\n"
      "0,0,4,31250\n"
      "12.5,3,1,1000000\n"
      "12.5,1,3,64\n");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].at, 0);
  EXPECT_EQ(r[0].src, 0u);
  EXPECT_EQ(r[0].dst, 4u);
  EXPECT_EQ(r[0].bytes, 31'250u);
  EXPECT_EQ(r[1].at, sim::TimePs(12'500'000));  // 12.5 us in ps
  EXPECT_EQ(r[2].at, r[1].at);                  // ties allowed
}

TEST(FlowTrace, FormatParseRoundTripIsIdentity) {
  const std::vector<TraceRecord> records = {
      {0, 0, 4, 31'250},
      {sim::TimePs(1), 2, 3, 1},  // 1 ps = 0.000001 us, the finest grain
      {sim::Us(12) + 500'000, 3, 1, 1'000'000},
      {sim::Sec(2), 9, 0, 77},
  };
  const std::string text = FormatFlowTrace(records);
  EXPECT_EQ(Parse(text), records);
  // Format is also a fixed point of parse-then-format.
  EXPECT_EQ(FormatFlowTrace(Parse(text)), text);
}

TEST(FlowTrace, StrictParseRejectsMalformedRows) {
  auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      Parse(text);
      FAIL() << "accepted: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("1,2,3\n", "expected 4 fields");
  expect_error("1,2,3,4,5\n", "expected 4 fields");
  expect_error("1,7,7,100\n", "src == dst");
  expect_error("1,0,1,0\n", "zero-byte flow");
  expect_error("5,0,1,10\n3,1,0,10\n", "not sorted");
  expect_error("1.2e3,0,1,10\n", "non-numeric");
  expect_error("0.0000001,0,1,10\n", "finer than 1 ps");
  // Errors name the offending line (comments and header count too).
  expect_error("# c\narrival_us,src,dst,bytes\n1,0,1,10\nbogus,0,1,10\n",
               "line 4");
}

TEST(TraceReplay, EmitsRecordsInOrderAtRecordedTimes) {
  sim::Simulator s;
  auto records = std::make_shared<const std::vector<TraceRecord>>(
      std::vector<TraceRecord>{{sim::Us(1), 0, 1, 100},
                               {sim::Us(1), 1, 0, 200},  // same-instant tie
                               {sim::Us(5), 2, 3, 300}});
  struct Got {
    uint32_t src, dst;
    uint64_t bytes;
    sim::TimePs at;
  };
  std::vector<Got> got;
  TraceReplaySource src(&s, records,
                        [&](uint32_t a, uint32_t b, uint64_t n,
                            sim::TimePs at) { got.push_back({a, b, n, at}); });
  EXPECT_EQ(src.first_activity(), sim::Us(1));
  src.Start();
  s.Run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(src.emitted(), 3u);
  EXPECT_FALSE(src.warm_pending());
  EXPECT_EQ(got[0].src, 0u);
  EXPECT_EQ(got[0].at, sim::Us(1));
  EXPECT_EQ(got[1].src, 1u);  // trace order preserved across the tie
  EXPECT_EQ(got[1].at, sim::Us(1));
  EXPECT_EQ(got[2].bytes, 300u);
  EXPECT_EQ(got[2].at, sim::Us(5));
}

std::string WriteTempTrace(const std::string& name, const std::string& text) {
  const std::string path = std::string(::testing::TempDir()) + "/" + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(TraceReplay, DrivesExperimentFromTraceFile) {
  const std::string path = WriteTempTrace("replay_ok.csv",
                                          "arrival_us,src,dst,bytes\n"
                                          "10,0,1,20000\n"
                                          "20,2,3,20000\n"
                                          "20,3,0,20000\n");
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = 4;
  cfg.cc.scheme = "hpcc";
  cfg.trace_file = path;
  cfg.duration = sim::Ms(1);
  runner::Experiment e(cfg);
  runner::ExperimentResult r = e.Run();
  EXPECT_EQ(r.flows_created, 3u);
  EXPECT_EQ(r.flows_completed, 3u);
  EXPECT_EQ(r.flows_failed, 0u);
}

TEST(TraceReplay, HostIndexOutOfRangeFailsLoudly) {
  const std::string path =
      WriteTempTrace("replay_oob.csv", "0,0,9,1000\n");  // 9 >= 4 hosts
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = 4;
  cfg.cc.scheme = "hpcc";
  cfg.trace_file = path;
  cfg.duration = sim::Ms(1);
  runner::Experiment e(cfg);
  EXPECT_THROW(e.Run(), std::out_of_range);
}

TEST(TraceReplay, MissingFileFailsAtConstruction) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = 2;
  cfg.trace_file = "/nonexistent/trace.csv";
  EXPECT_THROW(runner::Experiment e(cfg), std::runtime_error);
}

}  // namespace
}  // namespace hpcc::workload
