// Event-script and sweep-runner tests: scripted link_down/link_up drives
// Topology::SetLinkUp (routes recompute, stalled flows recover and finish),
// load phases gate the background generator, and the parallel sweep runner
// produces byte-identical results for any job count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "net/packet.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace hpcc::scenario {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Dumbbell with a 2-to-1 incast crossing the trunk (link 0); the trunk fails
// mid-transfer and repairs 600us later.
constexpr char kLinkScript[] = R"({
  "name": "linkscript",
  "topology": {"kind": "dumbbell", "hosts_per_side": 2},
  "cc": {"scheme": "hpcc", "expected_flows": 2},
  "duration_ms": 3,
  "drain_factor": 6,
  "events": [
    {"type": "incast", "at_us": 50, "fan_in": 2, "flow_bytes": 5000000,
     "receiver": 2},
    {"type": "link_down", "at_us": 100, "link": 0},
    {"type": "link_up", "at_us": 700, "link": 0}
  ]
})";

TEST(ScenarioEvents, LinkScriptRecomputesRoutesAndFlowsFinish) {
  const Scenario s = ParseScenarioText(kLinkScript);
  runner::Experiment e(MakeExperimentConfig(s));
  InstalledEvents installed = InstallEvents(e, s);

  topo::Topology& t = e.topology();
  const uint32_t left_sw = t.switches()[0];
  const uint32_t left_host = e.hosts()[0];   // left side
  const uint32_t right_host = e.hosts()[2];  // right side (incast receiver)
  ASSERT_EQ(t.links()[0].a, left_sw);  // link 0 is the trunk

  // Before the failure: trunk up, cross-side route exists (host-sw-sw-host).
  EXPECT_TRUE(t.links()[0].up);
  EXPECT_EQ(t.Distance(left_host, right_host), 3);

  // Mid-outage: the event script took the trunk down and routes recomputed —
  // the sides are partitioned and the left switch has no port toward the
  // right-side host.
  e.RunUntil(sim::Us(300));
  EXPECT_FALSE(t.links()[0].up);
  EXPECT_LT(t.Distance(left_host, right_host), 0);
  net::Packet probe;
  probe.dst = right_host;
  probe.flow_id = 1;
  EXPECT_LT(t.switch_node(left_sw).RoutePort(probe), 0);
  // Same-side routing is unaffected.
  EXPECT_EQ(t.Distance(left_host, e.hosts()[1]), 2);
  // The incast fired before the failure, so flows exist and are in flight.
  ASSERT_EQ(e.flows().size(), 2u);
  EXPECT_EQ(e.flows_completed(), 0u);

  // After the repair event: connectivity and ECMP tables are back.
  e.RunUntil(sim::Us(1000));
  EXPECT_TRUE(t.links()[0].up);
  EXPECT_EQ(t.Distance(left_host, right_host), 3);
  EXPECT_GE(t.switch_node(left_sw).RoutePort(probe), 0);

  // Flows stalled by the outage recover and finish.
  runner::ExperimentResult r = e.Run();
  EXPECT_EQ(r.flows_created, 2u);
  EXPECT_EQ(r.flows_completed, 2u);
}

TEST(ScenarioEvents, RunOneExecutesTheFullScript) {
  const Scenario s = ParseScenarioText(kLinkScript);
  ScenarioRun run;
  run.label = "linkscript";
  run.scenario = s;
  const SweepRunResult r = ScenarioRunner::RunOne(run);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.result.flows_created, 2u);
  EXPECT_EQ(r.result.flows_completed, 2u);
}

TEST(ScenarioEvents, LoadPhasePausesBackgroundTraffic) {
  const char* base = R"({
    "name": "phase",
    "topology": {"kind": "star", "hosts": 4},
    "workload": {"load": 0.3, "trace": "fbhadoop"},
    "duration_ms": 1%s
  })";
  char with_pause[512];
  std::snprintf(with_pause, sizeof(with_pause), base,
                R"(,
    "events": [{"type": "load_phase", "at_us": 200, "load": 0}])");
  char constant[512];
  std::snprintf(constant, sizeof(constant), base, "");

  ScenarioRun a;
  a.scenario = ParseScenarioText(constant);
  ScenarioRun b;
  b.scenario = ParseScenarioText(with_pause);
  const SweepRunResult ra = ScenarioRunner::RunOne(a);
  const SweepRunResult rb = ScenarioRunner::RunOne(b);
  ASSERT_TRUE(ra.ok()) << ra.error;
  ASSERT_TRUE(rb.ok()) << rb.error;
  // Pausing the generator at 200us of a 1ms horizon must cut flow count
  // hard; both runs still complete everything they created.
  EXPECT_GT(ra.result.flows_created, 2 * rb.result.flows_created);
  EXPECT_GT(rb.result.flows_created, 0u);
  EXPECT_EQ(rb.result.flows_completed, rb.result.flows_created);
}

TEST(ScenarioEvents, MaxFlowsCapsTheWholeBackgroundAcrossPhases) {
  // One load_phase event splits the background into two generators; the
  // max_flows cap must still apply globally, exactly as it would without
  // the event.
  const Scenario s = ParseScenarioText(R"({
    "name": "cap",
    "topology": {"kind": "star", "hosts": 4},
    "workload": {"load": 0.4, "trace": "fbhadoop", "max_flows": 20},
    "duration_ms": 1,
    "events": [{"type": "load_phase", "at_us": 100, "load": 0.8}]
  })");
  ScenarioRun run;
  run.scenario = s;
  const SweepRunResult r = ScenarioRunner::RunOne(run);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.result.flows_created, 20u);
}

TEST(ScenarioEvents, InstallValidatesAgainstLiveTopology) {
  // Link index out of range (star with 3 hosts has 3 links).
  {
    const Scenario s = ParseScenarioText(R"({
      "topology": {"kind": "star", "hosts": 3},
      "events": [{"type": "link_down", "at_us": 1, "link": 99}]
    })");
    runner::Experiment e(MakeExperimentConfig(s));
    EXPECT_THROW(InstallEvents(e, s), ScenarioError);
  }
  // Incast fan-in larger than the host count.
  {
    const Scenario s = ParseScenarioText(R"({
      "topology": {"kind": "star", "hosts": 3},
      "events": [{"type": "incast", "at_us": 1, "fan_in": 8,
                  "flow_bytes": 1000}]
    })");
    runner::Experiment e(MakeExperimentConfig(s));
    EXPECT_THROW(InstallEvents(e, s), ScenarioError);
  }
  // Incast receiver index out of range.
  {
    const Scenario s = ParseScenarioText(R"({
      "topology": {"kind": "star", "hosts": 3},
      "events": [{"type": "incast", "at_us": 1, "fan_in": 2,
                  "flow_bytes": 1000, "receiver": 5}]
    })");
    runner::Experiment e(MakeExperimentConfig(s));
    EXPECT_THROW(InstallEvents(e, s), ScenarioError);
  }
}

constexpr char kSeedSweep[] = R"({
  "name": "seeds",
  "topology": {"kind": "star", "hosts": 4},
  "workload": {"load": 0.3, "trace": "fbhadoop", "max_flows": 30},
  "duration_ms": 1,
  "sweep": {"seed": [1, 2, 3, 4]}
})";

TEST(ScenarioRunnerTest, ParallelSweepIsByteIdenticalToSerial) {
  const Scenario s = ParseScenarioText(kSeedSweep);

  ScenarioRunnerOptions serial;
  serial.jobs = 1;
  ScenarioRunnerOptions parallel;
  parallel.jobs = 4;
  const auto r1 = ScenarioRunner(serial).RunAll(s);
  const auto r4 = ScenarioRunner(parallel).RunAll(s);

  ASSERT_EQ(r1.size(), 4u);
  ASSERT_EQ(r4.size(), 4u);
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_TRUE(r1[i].ok()) << r1[i].error;
    EXPECT_EQ(r1[i].label, r4[i].label);
    // Same grid point -> bit-identical simulation regardless of scheduling.
    EXPECT_EQ(r1[i].result.events_executed, r4[i].result.events_executed);
    EXPECT_EQ(r1[i].result.flows_created, r4[i].result.flows_created);
    EXPECT_EQ(ScenarioRunner::CsvRow(r1[i]), ScenarioRunner::CsvRow(r4[i]));
  }

  // And the aggregated CSVs match byte for byte.
  const std::string p1 = testing::TempDir() + "/sweep_j1.csv";
  const std::string p4 = testing::TempDir() + "/sweep_j4.csv";
  ASSERT_TRUE(ScenarioRunner::WriteCsv(p1, r1));
  ASSERT_TRUE(ScenarioRunner::WriteCsv(p4, r4));
  const std::string c1 = ReadFile(p1);
  EXPECT_FALSE(c1.empty());
  EXPECT_EQ(c1, ReadFile(p4));
  std::remove(p1.c_str());
  std::remove(p4.c_str());

  // Different seeds really are different runs.
  EXPECT_NE(r1[0].result.events_executed, r1[1].result.events_executed);
}

TEST(ScenarioRunnerTest, CsvShapeIsRectangular) {
  const Scenario s = ParseScenarioText(kSeedSweep);
  const auto results = ScenarioRunner(ScenarioRunnerOptions{}).RunAll(s);
  const auto header = ScenarioRunner::CsvHeader(results);
  for (const auto& r : results) {
    EXPECT_EQ(ScenarioRunner::CsvRow(r).size(), header.size());
  }
  // run + 1 sweep axis + 16 metrics + status + error.
  EXPECT_EQ(header.size(), 1u + 1u + 18u);
  EXPECT_EQ(header[1], "seed");
}

TEST(ScenarioRunnerTest, FailedPointRecordsErrorWithoutAbortingSweep) {
  const Scenario s = ParseScenarioText(R"({
    "name": "badscheme",
    "topology": {"kind": "star", "hosts": 4},
    "workload": {"load": 0.3, "max_flows": 5},
    "duration_ms": 1,
    "sweep": {"cc.scheme": ["hpcc", "no-such-scheme"]}
  })");
  const auto results = ScenarioRunner(ScenarioRunnerOptions{}).RunAll(s);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok()) << results[0].error;
  ASSERT_FALSE(results[1].ok());
  EXPECT_NE(results[1].error.find("no-such-scheme"), std::string::npos);
  // The failed row still fits the header.
  EXPECT_EQ(ScenarioRunner::CsvRow(results[1]).size(),
            ScenarioRunner::CsvHeader(results).size());
}

}  // namespace
}  // namespace hpcc::scenario
