// Hybrid fluid/packet co-simulation gates: config + scenario-schema
// validation, fluid-engine accounting, the determinism suite (equal trace
// hashes across runs, --jobs values and both fastpath engines), and the
// k=16 incast A/B tolerance pin (pure-packet vs hybrid background).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "check/fuzzer.h"
#include "runner/experiment.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace hpcc {
namespace {

runner::ExperimentConfig SmallHybridConfig() {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kFatTree;  // default 2x2x2x8 = 32 hosts
  cfg.cc.scheme = "hpcc";
  cfg.load = 0.3;
  cfg.trace = "websearch";
  cfg.max_flows = 40;
  cfg.flow_class = workload::FlowClass::kFluid;
  cfg.hybrid.enabled = true;
  cfg.duration = sim::Ms(1);
  cfg.seed = 5;
  return cfg;
}

TEST(Hybrid, ConfigValidation) {
  {
    runner::ExperimentConfig cfg = SmallHybridConfig();
    cfg.shards = 4;  // fluid engine needs one event arena
    EXPECT_THROW(runner::Experiment e(cfg), std::invalid_argument);
  }
  {
    runner::ExperimentConfig cfg = SmallHybridConfig();
    cfg.cc.scheme = "dcqcn";  // no INT state to couple into
    EXPECT_THROW(runner::Experiment e(cfg), std::invalid_argument);
  }
  {
    runner::ExperimentConfig cfg = SmallHybridConfig();
    cfg.hybrid.enabled = false;  // fluid flows with no engine to carry them
    EXPECT_THROW(runner::Experiment e(cfg), std::invalid_argument);
  }
  {
    runner::ExperimentConfig cfg = SmallHybridConfig();
    cfg.flow_class = workload::FlowClass::kPacket;
    cfg.hybrid.enabled = false;
    cfg.incast = true;
    cfg.incast_opts.flow_class = workload::FlowClass::kFluid;
    EXPECT_THROW(runner::Experiment e(cfg), std::invalid_argument);
  }
}

TEST(Hybrid, ScenarioSchemaValidation) {
  auto expect_parse_error = [](const std::string& text) {
    EXPECT_THROW(scenario::ParseScenarioText(text), scenario::ScenarioError)
        << text;
  };
  const std::string topo =
      R"("topology": {"kind": "fattree"}, "cc": {"scheme": "hpcc"}, )";
  // fluid class without the hybrid block — background, incast, and event.
  expect_parse_error(R"({"name": "x", )" + topo +
                     R"("workload": {"load": 0.2, "flow_class": "fluid"}})");
  expect_parse_error(
      R"({"name": "x", )" + topo +
      R"("workload": {"incast": {"fan_in": 4, "flow_class": "fluid"}}})");
  expect_parse_error(
      R"({"name": "x", )" + topo +
      R"("events": [{"type": "incast", "at_us": 10, "flow_class": "fluid"}]})");
  // hybrid demands one lane and an INT-carrying scheme.
  expect_parse_error(R"({"name": "x", )" + topo +
                     R"("hybrid": {}, "shards": 4})");
  expect_parse_error(
      R"({"name": "x", "topology": {"kind": "fattree"},
          "cc": {"scheme": "dcqcn"}, "hybrid": {}})");
  expect_parse_error(R"({"name": "x", )" + topo +
                     R"("workload": {"load": 0.2, "flow_class": "plasma"}})");

  // A valid hybrid scenario survives the ToJson/Parse round trip intact.
  const scenario::Scenario s = scenario::ParseScenarioText(
      R"({"name": "x", )" + topo +
      R"("workload": {"load": 0.2, "flow_class": "fluid"},
          "hybrid": {"tick_us": 8}})");
  EXPECT_TRUE(s.config.hybrid.enabled);
  EXPECT_EQ(s.config.hybrid.tick, sim::Us(8));
  EXPECT_EQ(s.config.flow_class, workload::FlowClass::kFluid);
  const scenario::Scenario back =
      scenario::ParseScenario(scenario::ScenarioToJson(s));
  EXPECT_TRUE(back.config.hybrid.enabled);
  EXPECT_EQ(back.config.hybrid.tick, sim::Us(8));
  EXPECT_EQ(back.config.flow_class, workload::FlowClass::kFluid);
  EXPECT_EQ(scenario::ScenarioToJson(back).Dump(),
            scenario::ScenarioToJson(s).Dump());
}

TEST(Hybrid, FluidFlowsAreAccountedAndComplete) {
  runner::ExperimentConfig cfg = SmallHybridConfig();
  runner::Experiment e(cfg);
  runner::ExperimentResult r = e.Run();
  EXPECT_EQ(r.fluid_flows_created, cfg.max_flows);
  EXPECT_EQ(r.flows_created, r.fluid_flows_created);  // all background = fluid
  EXPECT_EQ(r.fluid_flows_completed, r.fluid_flows_created);
  EXPECT_EQ(r.flows_completed, r.fluid_flows_completed);
  EXPECT_GT(r.fluid_ticks, 0u);
  EXPECT_GT(r.fluid_coupled_links, 0u);
  EXPECT_GT(r.fluid_delivered_bytes, 0u);
  EXPECT_NE(r.trace_hash, 0u);
}

TEST(Hybrid, MixedRunInterleavesEnginesInOneFlowIdSpace) {
  runner::ExperimentConfig cfg = SmallHybridConfig();
  cfg.incast = true;
  cfg.incast_opts.fan_in = 8;
  cfg.incast_opts.flow_bytes = 30'000;
  cfg.incast_opts.first_event = sim::Us(100);
  cfg.incast_opts.period = sim::Us(300);
  runner::Experiment e(cfg);
  runner::ExperimentResult r = e.Run();
  EXPECT_EQ(r.fluid_flows_created, cfg.max_flows);
  EXPECT_GT(r.flows_created, r.fluid_flows_created);  // + packet incast flows
  EXPECT_GT(r.packets_forwarded, 0u);                 // packets really flowed
  EXPECT_EQ(r.flows_completed, r.flows_created);
}

// The determinism contract: a hybrid run's trace hash is a pure function of
// its scenario document — across repeat runs, across --jobs, and across the
// fastpath/reference transmit engines (fluid state is read at tick instants
// that are engine-independent).
constexpr char kHybridScenario[] = R"({
  "name": "hybrid_determinism",
  "topology": {"kind": "fattree", "pods": 2, "tors_per_pod": 2,
               "aggs_per_pod": 2, "cores_per_agg": 2, "hosts_per_tor": 4},
  "cc": {"scheme": "hpcc"},
  "workload": {
    "load": 0.3, "trace": "websearch", "max_flows": 30, "flow_class": "fluid",
    "incast": {"fan_in": 8, "flow_bytes": 30000, "first_event_us": 100,
               "period_us": 300}
  },
  "hybrid": {},
  "duration_ms": 1,
  "seed": 3
})";

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Hybrid, DeterministicAcrossJobsAndRepeats) {
  scenario::Json doc = scenario::Json::Parse(kHybridScenario);
  scenario::Json sweep = scenario::Json::MakeObject();
  scenario::Json loads = scenario::Json::MakeArray();
  loads.Append(scenario::Json::MakeNumber(0.2));
  loads.Append(scenario::Json::MakeNumber(0.4));
  sweep.Set("workload.load", loads);
  doc.Set("sweep", sweep);
  const scenario::Scenario sc = scenario::ParseScenario(doc);
  const std::vector<scenario::ScenarioRun> runs = scenario::ExpandSweep(sc);
  ASSERT_EQ(runs.size(), 2u);

  scenario::ScenarioRunnerOptions o1;
  o1.jobs = 1;
  scenario::ScenarioRunnerOptions o4;
  o4.jobs = 4;
  const auto r1 = scenario::ScenarioRunner(o1).RunAll(runs);
  const auto r1b = scenario::ScenarioRunner(o1).RunAll(runs);
  const auto r4 = scenario::ScenarioRunner(o4).RunAll(runs);
  ASSERT_EQ(r1.size(), runs.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    SCOPED_TRACE(r1[i].label);
    ASSERT_TRUE(r1[i].error.empty()) << r1[i].error;
    ASSERT_TRUE(r4[i].error.empty()) << r4[i].error;
    EXPECT_NE(r1[i].result.trace_hash, 0u);
    EXPECT_EQ(r1[i].result.trace_hash, r1b[i].result.trace_hash);
    EXPECT_EQ(r1[i].result.trace_hash, r4[i].result.trace_hash);
  }

  const std::string f1 = "hybrid_jobs1.csv";
  const std::string f4 = "hybrid_jobs4.csv";
  ASSERT_TRUE(scenario::ScenarioRunner::WriteCsv(f1, r1));
  ASSERT_TRUE(scenario::ScenarioRunner::WriteCsv(f4, r4));
  const std::string b1 = ReadFile(f1);
  EXPECT_FALSE(b1.empty());
  EXPECT_EQ(b1, ReadFile(f4));
  std::remove(f1.c_str());
  std::remove(f4.c_str());
}

TEST(Hybrid, DeterministicAcrossFastpathEnginesAndMonitorClean) {
  const scenario::Json doc = scenario::Json::Parse(kHybridScenario);
  const check::FuzzRunReport trains =
      check::RunScenarioDocChecked(doc, 50'000'000, nullptr,
                                   /*fastpath_override=*/1);
  const check::FuzzRunReport reference =
      check::RunScenarioDocChecked(doc, 50'000'000, nullptr,
                                   /*fastpath_override=*/0);
  ASSERT_TRUE(trains.error.empty()) << trains.error;
  ASSERT_TRUE(reference.error.empty()) << reference.error;
  EXPECT_EQ(trains.violation_count, 0u)
      << trains.violations.front().Format();
  EXPECT_EQ(reference.violation_count, 0u)
      << reference.violations.front().Format();
  EXPECT_NE(trains.trace_hash, 0u);
  EXPECT_EQ(trains.trace_hash, reference.trace_hash);
  EXPECT_GT(trains.flows_created, 0u);
}

// The k=16 A/B gate: the same foreground (16-way incast of short packet
// flows, every 300 us) over the same offered background load, carried once
// as packet flows and once as fluid trajectories. The hybrid approximation
// must keep the foreground's FCT distribution in the packet run's
// neighborhood — this pins how far the coupling is allowed to drift.
TEST(Hybrid, K16IncastAbFctWithinTolerance) {
  auto run = [](bool hybrid) {
    runner::ExperimentConfig cfg;
    cfg.topology = runner::TopologyKind::kFatTree;  // 32 hosts
    cfg.cc.scheme = "hpcc";
    cfg.load = 0.3;
    cfg.trace = "websearch";
    cfg.max_flows = 60;
    cfg.duration = sim::Ms(2);
    cfg.seed = 11;
    cfg.incast = true;
    cfg.incast_opts.fan_in = 16;
    cfg.incast_opts.flow_bytes = 3'000;  // short-flow class, tracked apart
    cfg.incast_opts.first_event = sim::Us(100);
    cfg.incast_opts.period = sim::Us(300);
    if (hybrid) {
      cfg.flow_class = workload::FlowClass::kFluid;
      cfg.hybrid.enabled = true;
    }
    runner::Experiment e(cfg);
    return e.Run();
  };
  const runner::ExperimentResult packet = run(false);
  const runner::ExperimentResult hybrid = run(true);
  ASSERT_EQ(packet.flows_completed, packet.flows_created);
  ASSERT_EQ(hybrid.flows_completed, hybrid.flows_created);

  // Foreground short-flow completion (the incast flows are packet-class in
  // BOTH runs; only the background engine differs).
  const double p_p95 = packet.short_fct_us.Percentile(95);
  const double h_p95 = hybrid.short_fct_us.Percentile(95);
  ASSERT_GT(p_p95, 0.0);
  ASSERT_GT(h_p95, 0.0);
  const double ratio = h_p95 / p_p95;
  std::cout << "[ A/B      ] packet p95 " << p_p95 << " us, hybrid p95 "
            << h_p95 << " us, ratio " << ratio << "\n";
  // Measured 0.92 at this configuration (fluid backgrounds run marginally
  // smoother than their packet twins — no per-packet burstiness). The band
  // is the acceptance gate for coupling changes: drifting outside it means
  // the fluid backpressure no longer resembles the packet background.
  EXPECT_GT(ratio, 0.7) << "hybrid p95 " << h_p95 << " vs packet " << p_p95;
  EXPECT_LT(ratio, 1.4) << "hybrid p95 " << h_p95 << " vs packet " << p_p95;
}

}  // namespace
}  // namespace hpcc
