// Tests for topology building, BFS/ECMP routing, base-RTT and ideal-FCT math.
#include <gtest/gtest.h>

#include "net/packet.h"
#include "topo/fattree.h"
#include "topo/simple.h"
#include "topo/testbed.h"
#include "topo/topology.h"

namespace hpcc::topo {
namespace {

TEST(Star, BuildsAndRoutes) {
  sim::Simulator s;
  StarOptions o;
  o.num_hosts = 5;
  auto star = MakeStar(&s, o);
  EXPECT_EQ(star.host_ids.size(), 5u);
  Topology& t = *star.topo;
  EXPECT_EQ(t.switches().size(), 1u);
  // Every host pair is 2 hops apart via the switch.
  EXPECT_EQ(t.PathHops(star.host_ids[0], star.host_ids[4]), 2);
  EXPECT_EQ(t.Distance(star.host_ids[0], star.switch_id), 1);
}

TEST(Star, BaseRttMatchesHandComputation) {
  sim::Simulator s;
  StarOptions o;
  o.num_hosts = 3;
  o.host_bps = 100'000'000'000;
  o.link_delay = sim::Us(1);
  auto star = MakeStar(&s, o);
  // 2 links each way: 4 us propagation + 2 data serializations (1090 B incl
  // INT worst case) + 2 ACK serializations (60 B) at 100 Gbps.
  const sim::TimePs expected =
      sim::Us(4) +
      2 * sim::SerializationTime(1000 + 48 + 42, 100'000'000'000) +
      2 * sim::SerializationTime(60, 100'000'000'000);
  EXPECT_EQ(star.topo->BaseRtt(star.host_ids[0], star.host_ids[1]), expected);
}

TEST(Dumbbell, TrunkIsBottleneck) {
  sim::Simulator s;
  DumbbellOptions o;
  o.hosts_per_side = 2;
  o.host_bps = 100'000'000'000;
  o.trunk_bps = 40'000'000'000;
  auto db = MakeDumbbell(&s, o);
  Topology& t = *db.topo;
  EXPECT_EQ(t.BottleneckBps(db.left_hosts[0], db.right_hosts[0]),
            40'000'000'000);
  // Same side: host links only.
  EXPECT_EQ(t.BottleneckBps(db.left_hosts[0], db.left_hosts[1]),
            100'000'000'000);
  EXPECT_EQ(t.PathHops(db.left_hosts[0], db.right_hosts[1]), 3);
}

TEST(Testbed, MatchesPaperShape) {
  sim::Simulator s;
  TestbedOptions o;  // defaults = paper scale
  auto tb = MakeTestbed(&s, o);
  EXPECT_EQ(tb.host_ids.size(), 32u);
  EXPECT_EQ(tb.tor_ids.size(), 4u);
  Topology& t = *tb.topo;
  // Dual-homed hosts: 2 ports each.
  EXPECT_EQ(t.node(tb.host_ids[0]).num_ports(), 2);
  // Intra-pair: host -> ToR -> host = 2 hops.
  EXPECT_EQ(t.PathHops(tb.host_ids[0], tb.host_ids[1]), 2);
  // Cross-pair: host -> ToR -> Agg -> ToR -> host = 4 hops.
  EXPECT_EQ(t.PathHops(tb.host_ids[0], tb.host_ids[16]), 4);
  // Cross-rack RTT > intra-rack RTT (5.4us vs 8.5us in the paper).
  EXPECT_GT(t.BaseRtt(tb.host_ids[0], tb.host_ids[16]),
            t.BaseRtt(tb.host_ids[0], tb.host_ids[1]));
}

TEST(FatTree, DefaultsBuildConsistently) {
  sim::Simulator s;
  FatTreeOptions o;  // mini scale
  auto ft = MakeFatTree(&s, o);
  EXPECT_EQ(ft.host_ids.size(), static_cast<size_t>(o.num_hosts()));
  EXPECT_EQ(ft.tor_ids.size(), static_cast<size_t>(o.pods * o.tors_per_pod));
  EXPECT_EQ(ft.agg_ids.size(), static_cast<size_t>(o.pods * o.aggs_per_pod));
  EXPECT_EQ(ft.core_ids.size(),
            static_cast<size_t>(o.aggs_per_pod * o.cores_per_agg));
  Topology& t = *ft.topo;
  // Same rack: 2 hops. Same pod: 4. Cross pod: 6.
  EXPECT_EQ(t.PathHops(ft.host_ids[0], ft.host_ids[1]), 2);
  EXPECT_EQ(t.PathHops(ft.host_ids[0], ft.host_ids[o.hosts_per_tor]), 4);
  const uint32_t other_pod =
      ft.host_ids[static_cast<size_t>(o.tors_per_pod * o.hosts_per_tor)];
  EXPECT_EQ(t.PathHops(ft.host_ids[0], other_pod), 6);
}

TEST(FatTree, PaperScaleCounts) {
  sim::Simulator s;
  auto o = FatTreeOptions::PaperScale();
  EXPECT_EQ(o.num_hosts(), 320);
  auto ft = MakeFatTree(&s, o);
  EXPECT_EQ(ft.host_ids.size(), 320u);
  EXPECT_EQ(ft.tor_ids.size(), 20u);
  EXPECT_EQ(ft.agg_ids.size(), 20u);
  EXPECT_EQ(ft.core_ids.size(), 20u);
  // §5.1: 1 us links yield a max base RTT ~ 12-13 us.
  const sim::TimePs t_max = ft.topo->MaxBaseRtt();
  EXPECT_GT(t_max, sim::Us(12));
  EXPECT_LT(t_max, sim::Us(14));
}

TEST(FatTree, TiersRecorded) {
  sim::Simulator s;
  FatTreeOptions o;
  auto ft = MakeFatTree(&s, o);
  EXPECT_EQ(ft.tiers[ft.host_ids[0]], FatTreeTopology::Tier::kHost);
  EXPECT_EQ(ft.tiers[ft.tor_ids[0]], FatTreeTopology::Tier::kTor);
  EXPECT_EQ(ft.tiers[ft.agg_ids[0]], FatTreeTopology::Tier::kAgg);
  EXPECT_EQ(ft.tiers[ft.core_ids[0]], FatTreeTopology::Tier::kCore);
}

TEST(IdealFct, ScalesWithSizeAndIncludesBaseRtt) {
  sim::Simulator s;
  StarOptions o;
  o.num_hosts = 2;
  auto star = MakeStar(&s, o);
  Topology& t = *star.topo;
  const uint32_t a = star.host_ids[0];
  const uint32_t b = star.host_ids[1];
  const sim::TimePs rtt = t.BaseRtt(a, b);
  // A zero-ish flow costs about one RTT.
  EXPECT_GE(t.IdealFct(a, b, 1), rtt);
  EXPECT_LT(t.IdealFct(a, b, 1), rtt + sim::Us(1));
  // 10x the bytes ~ 10x the serialization component.
  const sim::TimePs f1 = t.IdealFct(a, b, 1'000'000) - rtt;
  const sim::TimePs f10 = t.IdealFct(a, b, 10'000'000) - rtt;
  EXPECT_NEAR(static_cast<double>(f10) / static_cast<double>(f1), 10.0, 0.01);
}

TEST(IdealFct, AccountsPerPacketHeaders) {
  sim::Simulator s;
  StarOptions o;
  o.num_hosts = 2;
  o.host_bps = 100'000'000'000;
  auto star = MakeStar(&s, o);
  Topology& t = *star.topo;
  const uint32_t a = star.host_ids[0];
  const uint32_t b = star.host_ids[1];
  const sim::TimePs rtt = t.BaseRtt(a, b);
  // 2000 bytes = 2 MTU packets = 2 * 1048 wire bytes.
  const sim::TimePs want =
      sim::SerializationTime(2 * 1048, 100'000'000'000) + rtt;
  EXPECT_EQ(t.IdealFct(a, b, 2000), want);
}

TEST(Topology, HostAccessorTypechecks) {
  sim::Simulator s;
  StarOptions o;
  o.num_hosts = 2;
  auto star = MakeStar(&s, o);
  EXPECT_NO_THROW(star.topo->host(star.host_ids[0]));
  EXPECT_THROW(star.topo->host(star.switch_id), std::invalid_argument);
  EXPECT_THROW(star.topo->switch_node(star.host_ids[0]),
               std::invalid_argument);
}

// Property: in any mini fattree, every switch has at least one route to
// every host and all ECMP ports lead strictly closer to the destination.
class FatTreeRouting : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeRouting, EcmpPortsAreShortestPaths) {
  sim::Simulator s;
  FatTreeOptions o;
  o.pods = GetParam();
  auto ft = MakeFatTree(&s, o);
  Topology& t = *ft.topo;
  for (uint32_t sw : t.switches()) {
    for (uint32_t dst : t.hosts()) {
      net::Packet probe;
      probe.dst = dst;
      for (uint64_t flow = 1; flow <= 8; ++flow) {
        probe.flow_id = flow;
        const int port = t.switch_node(sw).RoutePort(probe);
        ASSERT_GE(port, 0);
        net::Node* peer = t.switch_node(sw).port(port).peer();
        ASSERT_NE(peer, nullptr);
        EXPECT_EQ(t.Distance(peer->id(), dst), t.Distance(sw, dst) - 1);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Pods, FatTreeRouting, ::testing::Values(1, 2, 3));

// Regression (found by fuzz_scenarios): IdealFct/BaseRtt are denominators of
// FCT slowdown and must describe the designed topology. Querying them while
// a link failure partitions the fabric used to walk live BFS distances and
// loop forever for disconnected pairs.
TEST(TopologyTest, IdealFctStableAcrossLinkFlap) {
  sim::Simulator s;
  FatTreeOptions o;
  o.pods = 2;
  o.tors_per_pod = 2;
  o.aggs_per_pod = 1;  // single agg/core: an agg-core link down partitions
  o.cores_per_agg = 1;
  o.hosts_per_tor = 2;
  auto ft = MakeFatTree(&s, o);
  Topology& t = *ft.topo;
  const uint32_t a = t.hosts().front();
  const uint32_t b = t.hosts().back();  // other pod
  const sim::TimePs ideal_before = t.IdealFct(a, b, 100'000);
  ASSERT_GT(ideal_before, 0);

  // Take down a switch-switch link that disconnects the pods.
  const auto& links = t.links();
  size_t trunk = links.size();
  for (size_t i = 0; i < links.size(); ++i) {
    if (t.node(links[i].a).IsSwitch() && t.node(links[i].b).IsSwitch()) {
      trunk = i;
    }
  }
  ASSERT_LT(trunk, links.size());
  t.SetLinkUp(trunk, false);
  EXPECT_EQ(t.IdealFct(a, b, 100'000), ideal_before);  // and no hang
  EXPECT_EQ(t.BaseRtt(a, b), t.BaseRtt(b, a));
  t.SetLinkUp(trunk, true);
  EXPECT_EQ(t.IdealFct(a, b, 100'000), ideal_before);
}

}  // namespace
}  // namespace hpcc::topo
