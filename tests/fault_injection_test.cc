// Fault-injection and resilience tests: RTO exponential backoff (doubling,
// cap, max_retx give-up), the switch_down ≡ link_down-sequence contract,
// corruption-window and NIC-flap determinism across engines/shards, per-point
// wall deadlines, retry-once sweep accounting, crash-resume from manifest
// journals, and the post-run no-progress audit.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/monitors.h"
#include "host/flow.h"
#include "host/host_node.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "sim/time.h"
#include "topo/topology.h"

namespace hpcc::scenario {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string Cell(const SweepRunResult& r, const std::string& column) {
  for (const auto& [name, value] : ScenarioRunner::MetricCells(r)) {
    if (name == column) return value;
  }
  ADD_FAILURE() << "no cell named " << column;
  return {};
}

// Link index of the (only) NIC link attached to host `host_index`.
size_t HostLink(runner::Experiment& e, size_t host_index) {
  const uint32_t node_id = e.hosts()[host_index];
  const auto& links = e.topology().links();
  for (size_t li = 0; li < links.size(); ++li) {
    if (links[li].a == node_id || links[li].b == node_id) return li;
  }
  ADD_FAILURE() << "host " << host_index << " has no link";
  return 0;
}

// ---------------------------------------------------------------------------
// Transport backoff: doubling, cap, give-up.
// ---------------------------------------------------------------------------

// Generous drain horizon: the recovery test's first post-repair RTO fires
// at ~7ms, which must stay inside FinishRun's duration * (1 + drain) cap.
constexpr char kTwoHostStar[] = R"({
  "name": "backoff",
  "topology": {"kind": "star", "hosts": 2},
  "duration_ms": 1,
  "drain_factor": 12
})";

TEST(RtoBackoff, DoublesCapsAndGivesUpAfterMaxRetx) {
  const Scenario s = ParseScenarioText(kTwoHostStar);
  runner::Experiment e(MakeExperimentConfig(s));
  const uint32_t h0 = e.hosts()[0];
  const uint32_t h1 = e.hosts()[1];
  const host::HostConfig& hc = e.topology().host(h0).config();
  ASSERT_GT(hc.max_retx, 0);

  host::Flow* flow = e.AddFlow(h0, h1, 5'000'000, 0);
  // Sever the receiver's NIC link mid-transfer; it never comes back.
  e.InstallLinkEvent(sim::Us(100), HostLink(e, 1), /*up=*/false);

  // Before the outage: ACKs flowing, backoff idle at the base RTO.
  e.RunUntil(sim::Us(90));
  ASSERT_TRUE(flow->started);
  EXPECT_GT(flow->snd_una, 0u);
  EXPECT_EQ(flow->consecutive_rtos, 0u);
  EXPECT_EQ(flow->cur_rto, hc.rto);

  // During the outage the effective RTO doubles per expiry up to the cap:
  // cur_rto == min(rto << consecutive_rtos, rto_max) at all times.
  const auto expect_backoff_invariant = [&] {
    sim::TimePs expect = hc.rto;
    for (uint32_t i = 0; i < flow->consecutive_rtos && expect < hc.rto_max;
         ++i) {
      expect = std::min(expect * 2, hc.rto_max);
    }
    EXPECT_EQ(flow->cur_rto, expect)
        << "after " << flow->consecutive_rtos << " consecutive expiries";
  };
  e.RunUntil(sim::Ms(5));
  EXPECT_GE(flow->consecutive_rtos, 1u);
  EXPECT_FALSE(flow->failed);
  expect_backoff_invariant();
  const uint32_t rtos_at_5ms = flow->consecutive_rtos;

  e.RunUntil(sim::Ms(100));
  EXPECT_GT(flow->consecutive_rtos, rtos_at_5ms);
  EXPECT_EQ(flow->cur_rto, hc.rto_max);  // cap reached
  expect_backoff_invariant();

  // Give-up: the (max_retx + 1)-th consecutive expiry abandons the flow.
  e.RunUntil(sim::Ms(260));
  EXPECT_TRUE(flow->failed);
  EXPECT_TRUE(flow->done);
  EXPECT_EQ(flow->consecutive_rtos,
            static_cast<uint32_t>(hc.max_retx) + 1);
  EXPECT_EQ(flow->retx_timeouts, static_cast<uint64_t>(hc.max_retx) + 1);

  const runner::ExperimentResult r = e.Run();
  EXPECT_EQ(r.flows_created, 1u);
  EXPECT_EQ(r.flows_completed, 0u);
  EXPECT_EQ(r.flows_failed, 1u);
  EXPECT_EQ(r.retx_timeouts, flow->retx_timeouts);
}

TEST(RtoBackoff, ForwardProgressResetsTheBackoffSchedule) {
  const Scenario s = ParseScenarioText(kTwoHostStar);
  runner::Experiment e(MakeExperimentConfig(s));
  const uint32_t h0 = e.hosts()[0];
  const uint32_t h1 = e.hosts()[1];
  const host::HostConfig& hc = e.topology().host(h0).config();

  host::Flow* flow = e.AddFlow(h0, h1, 5'000'000, 0);
  const size_t link = HostLink(e, 1);
  e.InstallLinkEvent(sim::Us(100), link, /*up=*/false);
  e.InstallLinkEvent(sim::Ms(5), link, /*up=*/true);

  // Mid-outage: backed off.
  e.RunUntil(sim::Ms(4));
  EXPECT_GE(flow->consecutive_rtos, 1u);
  EXPECT_GT(flow->cur_rto, hc.rto);

  // After the repair the retransmission goes through, ACK progress resumes
  // and the backoff schedule starts over; the flow completes, not fails.
  const runner::ExperimentResult r = e.Run();
  EXPECT_TRUE(flow->done);
  EXPECT_FALSE(flow->failed);
  EXPECT_EQ(flow->consecutive_rtos, 0u);  // reset by forward progress
  EXPECT_EQ(r.flows_completed, 1u);
  EXPECT_EQ(r.flows_failed, 0u);
  EXPECT_GE(r.retx_timeouts, 1u);  // the outage did cost real expiries
}

// ---------------------------------------------------------------------------
// switch_down ≡ the equivalent hand-written link_down sequence.
// ---------------------------------------------------------------------------

// 2-pod fat-tree with agg/core redundancy; %s is the events array.
constexpr char kSwitchFailTemplate[] = R"({
  "name": "swfail",
  "topology": {"kind": "fattree", "pods": 2, "tors_per_pod": 1,
               "aggs_per_pod": 2, "cores_per_agg": 2, "hosts_per_tor": 2},
  "workload": {"load": 0.3, "trace": "websearch", "max_flows": 25},
  "duration_ms": 0.6,
  "drain_factor": 8,
  "sweep": {"seed": [1, 2]},
  "events": [%s]
})";

TEST(FaultEvents, SwitchDownEqualsExpandedLinkScript) {
  // Scenario A: switch_down/switch_up on the last switch (a core — built
  // after ToRs and aggs — so the fabric keeps full connectivity).
  char a_text[1024];
  std::string probe_text;
  {
    const Scenario probe = ParseScenarioText(R"({
      "topology": {"kind": "fattree", "pods": 2, "tors_per_pod": 1,
                   "aggs_per_pod": 2, "cores_per_agg": 2,
                   "hosts_per_tor": 2}})");
    runner::Experiment e(MakeExperimentConfig(probe));
    const auto& switches = e.topology().switches();
    const size_t sw_index = switches.size() - 1;
    const uint32_t node_id = switches[sw_index];

    std::snprintf(a_text, sizeof(a_text), kSwitchFailTemplate,
                  ("{\"type\": \"switch_down\", \"at_us\": 100, \"switch\": " +
                   std::to_string(sw_index) +
                   "}, {\"type\": \"switch_up\", \"at_us\": 300, \"switch\": " +
                   std::to_string(sw_index) + "}")
                      .c_str());

    // Scenario B: the per-link expansion, written out by hand — every link
    // attached to that switch, ascending, downs first then ups.
    std::string events;
    for (const char* type : {"link_down", "link_up"}) {
      const auto& links = e.topology().links();
      for (size_t li = 0; li < links.size(); ++li) {
        if (links[li].a != node_id && links[li].b != node_id) continue;
        if (!events.empty()) events += ", ";
        events += std::string("{\"type\": \"") + type + "\", \"at_us\": " +
                  (type[5] == 'd' ? "100" : "300") +
                  ", \"link\": " + std::to_string(li) + "}";
      }
    }
    char b_text[2048];
    std::snprintf(b_text, sizeof(b_text), kSwitchFailTemplate, events.c_str());
    probe_text = b_text;
  }
  const Scenario a = ParseScenarioText(a_text);
  const Scenario b = ParseScenarioText(probe_text);

  // The contract must hold for any job count and both transmit engines:
  // equal combined trace hashes and byte-identical aggregate CSVs.
  struct Config {
    int jobs;
    int fastpath;
  };
  const Config configs[] = {{1, -1}, {4, -1}, {1, 0}};
  std::string first_csv;
  for (const Config& c : configs) {
    ScenarioRunnerOptions o;
    o.jobs = c.jobs;
    o.check = true;
    o.fastpath_override = c.fastpath;
    const auto ra = ScenarioRunner(o).RunAll(a);
    const auto rb = ScenarioRunner(o).RunAll(b);
    ASSERT_EQ(ra.size(), 2u);
    ASSERT_EQ(rb.size(), 2u);
    for (size_t i = 0; i < ra.size(); ++i) {
      ASSERT_TRUE(ra[i].ok()) << ra[i].error;
      ASSERT_TRUE(rb[i].ok()) << rb[i].error;
      // Faults repaired at 300us: everything the workload created finishes.
      EXPECT_GT(ra[i].result.flows_created, 0u);
      EXPECT_EQ(ra[i].result.flows_completed + ra[i].result.flows_failed,
                ra[i].result.flows_created);
    }
    EXPECT_EQ(ScenarioRunner::CombinedTraceHash(ra),
              ScenarioRunner::CombinedTraceHash(rb))
        << "jobs=" << c.jobs << " fastpath=" << c.fastpath;

    const std::string pa = testing::TempDir() + "/swfail_a.csv";
    const std::string pb = testing::TempDir() + "/swfail_b.csv";
    ASSERT_TRUE(ScenarioRunner::WriteCsv(pa, ra));
    ASSERT_TRUE(ScenarioRunner::WriteCsv(pb, rb));
    const std::string ca = ReadFile(pa);
    EXPECT_FALSE(ca.empty());
    EXPECT_EQ(ca, ReadFile(pb)) << "jobs=" << c.jobs
                                << " fastpath=" << c.fastpath;
    std::remove(pa.c_str());
    std::remove(pb.c_str());
    // And the whole suite is engine/job invariant: every config's CSV
    // matches the first one byte for byte.
    if (first_csv.empty()) first_csv = ca;
    EXPECT_EQ(ca, first_csv);
  }
}

TEST(FaultEvents, InstallValidatesSwitchAndHostIndices) {
  {
    const Scenario s = ParseScenarioText(R"({
      "topology": {"kind": "star", "hosts": 3},
      "events": [{"type": "switch_down", "at_us": 1, "switch": 9}]
    })");
    runner::Experiment e(MakeExperimentConfig(s));
    EXPECT_THROW(InstallEvents(e, s), ScenarioError);
  }
  {
    const Scenario s = ParseScenarioText(R"({
      "topology": {"kind": "star", "hosts": 3},
      "events": [{"type": "nic_down", "at_us": 1, "host": 3}]
    })");
    runner::Experiment e(MakeExperimentConfig(s));
    EXPECT_THROW(InstallEvents(e, s), ScenarioError);
  }
  {
    const Scenario s = ParseScenarioText(R"({
      "topology": {"kind": "star", "hosts": 3},
      "events": [{"type": "corrupt", "at_us": 1, "link": 99, "ber": 0.01,
                  "until_us": 50}]
    })");
    runner::Experiment e(MakeExperimentConfig(s));
    EXPECT_THROW(InstallEvents(e, s), ScenarioError);
  }
}

// ---------------------------------------------------------------------------
// Corruption windows and NIC flaps: deterministic, engine- and
// shard-invariant, fully accounted.
// ---------------------------------------------------------------------------

TEST(FaultEvents, CorruptWindowIsDeterministicAcrossEnginesAndShards) {
  // ber 0.05 on the dumbbell trunk (link 0) for 650us of a loaded run:
  // plenty of corruption drops, all recovered by retransmission.
  ScenarioRun run;
  run.label = "corrupt";
  run.scenario = ParseScenarioText(R"({
    "name": "corrupt",
    "topology": {"kind": "dumbbell", "hosts_per_side": 2},
    "workload": {"load": 0.3, "trace": "websearch", "max_flows": 20},
    "duration_ms": 1.5,
    "drain_factor": 8,
    "seed": 7,
    "events": [{"type": "corrupt", "at_us": 50, "link": 0, "ber": 0.05,
                "until_us": 700}]
  })");

  const SweepRunResult base = ScenarioRunner::RunOne(run, /*check=*/true);
  ASSERT_TRUE(base.ok()) << base.error;
  EXPECT_GT(base.result.dropped_by_reason[static_cast<int>(
                check::DropReason::kCorrupt)],
            0u);
  // Every flow is accounted: completed or recorded as failed.
  EXPECT_GT(base.result.flows_created, 0u);
  EXPECT_EQ(base.result.flows_completed + base.result.flows_failed,
            base.result.flows_created);
  // The corruption drops surface in their own CSV column.
  EXPECT_NE(Cell(base, "drops_corrupt"), "0");
  EXPECT_EQ(Cell(base, "status"), "ok");

  // Same seed stream -> bit-identical replay...
  const SweepRunResult again = ScenarioRunner::RunOne(run, /*check=*/true);
  ASSERT_TRUE(again.ok()) << again.error;
  EXPECT_EQ(base.result.trace_hash, again.result.trace_hash);
  EXPECT_EQ(ScenarioRunner::CsvRow(base, true),
            ScenarioRunner::CsvRow(again, true));

  // ...on the reference engine...
  const SweepRunResult ref = ScenarioRunner::RunOne(run, /*check=*/true,
                                                    /*fastpath_override=*/0);
  ASSERT_TRUE(ref.ok()) << ref.error;
  EXPECT_EQ(base.result.trace_hash, ref.result.trace_hash);

  // ...and under sharded execution.
  RunOneOptions opts;
  opts.check = true;
  opts.shards_override = 2;
  const SweepRunResult sharded = ScenarioRunner::RunOne(run, opts);
  ASSERT_TRUE(sharded.ok()) << sharded.error;
  EXPECT_EQ(base.result.trace_hash, sharded.result.trace_hash);
}

TEST(FaultEvents, NicFlapIsolatesHostThenRecovers) {
  ScenarioRun run;
  run.label = "nicflap";
  run.scenario = ParseScenarioText(R"({
    "name": "nicflap",
    "topology": {"kind": "star", "hosts": 4},
    "workload": {"load": 0.3, "trace": "fbhadoop", "max_flows": 20},
    "duration_ms": 1,
    "drain_factor": 8,
    "seed": 11,
    "events": [{"type": "nic_down", "at_us": 100, "host": 0},
               {"type": "nic_up", "at_us": 400, "host": 0}]
  })");
  const SweepRunResult base = ScenarioRunner::RunOne(run, /*check=*/true);
  ASSERT_TRUE(base.ok()) << base.error;
  EXPECT_GT(base.result.flows_created, 0u);
  // The 300us outage delays flows touching host 0 but everything recovers
  // (give-up needs ~200ms of consecutive dead time).
  EXPECT_EQ(base.result.flows_completed, base.result.flows_created);
  EXPECT_EQ(base.result.flows_failed, 0u);

  const SweepRunResult again = ScenarioRunner::RunOne(run, /*check=*/true);
  EXPECT_EQ(base.result.trace_hash, again.result.trace_hash);

  RunOneOptions opts;
  opts.check = true;
  opts.shards_override = 2;
  const SweepRunResult sharded = ScenarioRunner::RunOne(run, opts);
  ASSERT_TRUE(sharded.ok()) << sharded.error;
  EXPECT_EQ(base.result.trace_hash, sharded.result.trace_hash);
}

// ---------------------------------------------------------------------------
// Per-point wall deadlines and the sweep's retry-once policy.
// ---------------------------------------------------------------------------

TEST(Deadline, TripsAndReportsInsteadOfWedging) {
  ScenarioRun run;
  run.label = "deadline";
  run.scenario = ParseScenarioText(R"({
    "name": "deadline",
    "topology": {"kind": "star", "hosts": 8},
    "workload": {"load": 0.7, "trace": "websearch"},
    "duration_ms": 20,
    "seed": 3
  })");
  RunOneOptions opts;
  opts.deadline_s = 1e-9;  // already in the past when the event loop starts
  const SweepRunResult r = ScenarioRunner::RunOne(run, opts);
  ASSERT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("deadline exceeded"), std::string::npos) << r.error;
  EXPECT_EQ(ScenarioRunner::StatusOf(r), "error");
  EXPECT_EQ(Cell(r, "status"), "error");
}

TEST(Deadline, ScenarioDeadlineFieldIsHonored) {
  ScenarioRun run;
  run.label = "deadline2";
  run.scenario = ParseScenarioText(R"({
    "name": "deadline2",
    "topology": {"kind": "star", "hosts": 8},
    "workload": {"load": 0.7, "trace": "websearch"},
    "duration_ms": 20,
    "deadline_s": 0.000001,
    "seed": 3
  })");
  const SweepRunResult r = ScenarioRunner::RunOne(run);
  ASSERT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("deadline exceeded"), std::string::npos) << r.error;
}

TEST(Retry, ErrorsRetryOnceButDeadlinesDoNot) {
  // A genuinely broken point fails identically on its retry: the sweep
  // records attempt == 1 for it (it was retried once) and attempt == 0 for
  // the healthy point.
  {
    const Scenario s = ParseScenarioText(R"({
      "name": "retry",
      "topology": {"kind": "star", "hosts": 4},
      "workload": {"load": 0.3, "max_flows": 5},
      "duration_ms": 1,
      "sweep": {"cc.scheme": ["hpcc", "no-such-scheme"]}
    })");
    const auto results = ScenarioRunner(ScenarioRunnerOptions{}).RunAll(s);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok()) << results[0].error;
    EXPECT_EQ(results[0].attempt, 0);
    ASSERT_FALSE(results[1].ok());
    EXPECT_EQ(results[1].attempt, 1);
  }
  // Deadline trips are deterministic with respect to the budget, so the
  // sweep must not burn the wall-clock twice: no retry.
  {
    const Scenario s = ParseScenarioText(R"({
      "name": "nodretry",
      "topology": {"kind": "star", "hosts": 8},
      "workload": {"load": 0.7, "trace": "websearch"},
      "duration_ms": 20,
      "seed": 3
    })");
    ScenarioRunnerOptions o;
    o.deadline_s = 1e-9;
    const auto results = ScenarioRunner(o).RunAll(s);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_FALSE(results[0].ok());
    EXPECT_NE(results[0].error.find("deadline exceeded"), std::string::npos);
    EXPECT_EQ(results[0].attempt, 0);
  }
}

// ---------------------------------------------------------------------------
// Crash-resumable sweeps: manifests double as a journal.
// ---------------------------------------------------------------------------

TEST(Resume, SkipsValidatedPointsByteIdentically) {
  const Scenario s = ParseScenarioText(R"({
    "name": "resume",
    "topology": {"kind": "star", "hosts": 4},
    "workload": {"load": 0.3, "trace": "fbhadoop", "max_flows": 15},
    "duration_ms": 0.5,
    "sweep": {"seed": [1, 2, 3]}
  })");
  const std::string base = testing::TempDir() + "/fault_resume";

  // Pass 1: a full sweep journaling every point.
  ScenarioRunnerOptions o1;
  o1.jobs = 1;
  o1.manifest = true;
  o1.out_base = base;
  const auto pass1 = ScenarioRunner(o1).RunAll(s);
  ASSERT_EQ(pass1.size(), 3u);
  for (const auto& r : pass1) {
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_FALSE(r.manifest_path.empty());
    EXPECT_FALSE(ReadFile(r.manifest_path).empty());
  }
  const std::string csv1_path = base + "_pass1.csv";
  ASSERT_TRUE(ScenarioRunner::WriteCsv(csv1_path, pass1));
  const std::string csv1 = ReadFile(csv1_path);
  const uint64_t hash1 = ScenarioRunner::CombinedTraceHash(pass1);

  // Simulate a crash that lost point 1's journal and tore point 2's.
  ASSERT_EQ(std::remove(pass1[1].manifest_path.c_str()), 0);
  {
    std::ofstream torn(pass1[2].manifest_path, std::ios::trunc);
    torn << "{\"schema\": \"hpccsim-manifest-v1\", \"label\": trunc";
  }

  // Pass 2: --resume skips the intact point and re-simulates the rest.
  ScenarioRunnerOptions o2;
  o2.jobs = 1;
  o2.resume = true;  // implies manifest
  o2.out_base = base;
  const auto pass2 = ScenarioRunner(o2).RunAll(s);
  ASSERT_EQ(pass2.size(), 3u);
  EXPECT_TRUE(pass2[0].resumed);
  EXPECT_FALSE(pass2[1].resumed);
  EXPECT_FALSE(pass2[2].resumed);
  for (const auto& r : pass2) ASSERT_TRUE(r.ok()) << r.error;

  // The resumed sweep's aggregate outputs are byte-identical to pass 1.
  const std::string csv2_path = base + "_pass2.csv";
  ASSERT_TRUE(ScenarioRunner::WriteCsv(csv2_path, pass2));
  EXPECT_EQ(csv1, ReadFile(csv2_path));
  EXPECT_EQ(hash1, ScenarioRunner::CombinedTraceHash(pass2));

  // Re-run points re-journaled themselves: a third resume skips everything.
  const auto pass3 = ScenarioRunner(o2).RunAll(s);
  ASSERT_EQ(pass3.size(), 3u);
  for (const auto& r : pass3) {
    EXPECT_TRUE(r.resumed) << r.label;
    ASSERT_TRUE(r.ok()) << r.error;
  }
  const std::string csv3_path = base + "_pass3.csv";
  ASSERT_TRUE(ScenarioRunner::WriteCsv(csv3_path, pass3));
  EXPECT_EQ(csv1, ReadFile(csv3_path));

  for (const auto& r : pass3) std::remove(r.manifest_path.c_str());
  std::remove(csv1_path.c_str());
  std::remove(csv2_path.c_str());
  std::remove(csv3_path.c_str());
}

TEST(Resume, ScenarioMismatchInvalidatesTheJournal) {
  // A journal written for a different scenario (same label, different seed)
  // must not be resumed: the scenario echo comparison rejects it.
  const char* tmpl = R"({
    "name": "resume_mismatch",
    "topology": {"kind": "star", "hosts": 4},
    "workload": {"load": 0.3, "trace": "fbhadoop", "max_flows": 10},
    "duration_ms": 0.5,
    "seed": %d
  })";
  char text[512];
  const std::string base = testing::TempDir() + "/fault_resume_mismatch";

  std::snprintf(text, sizeof(text), tmpl, 1);
  ScenarioRunnerOptions o;
  o.jobs = 1;
  o.manifest = true;
  o.out_base = base;
  const auto first = ScenarioRunner(o).RunAll(ParseScenarioText(text));
  ASSERT_EQ(first.size(), 1u);
  ASSERT_TRUE(first[0].ok()) << first[0].error;
  ASSERT_FALSE(first[0].manifest_path.empty());

  std::snprintf(text, sizeof(text), tmpl, 2);
  o.resume = true;
  const auto second = ScenarioRunner(o).RunAll(ParseScenarioText(text));
  ASSERT_EQ(second.size(), 1u);
  EXPECT_FALSE(second[0].resumed);  // journal is for seed 1, not seed 2
  ASSERT_TRUE(second[0].ok()) << second[0].error;

  std::remove(second[0].manifest_path.c_str());
}

// ---------------------------------------------------------------------------
// Post-run no-progress audit.
// ---------------------------------------------------------------------------

TEST(NoProgress, FlagsWedgedFlowsOnly) {
  const Scenario s = ParseScenarioText(kTwoHostStar);
  runner::Experiment e(MakeExperimentConfig(s));
  const uint32_t h0 = e.hosts()[0];
  const uint32_t h1 = e.hosts()[1];
  host::Flow* flow = e.AddFlow(h0, h1, 50'000'000, 0);
  e.RunUntil(sim::Us(200));
  ASSERT_TRUE(flow->started);
  ASSERT_FALSE(flow->done);

  // Recent activity: clean.
  {
    check::MonitorRegistry reg;
    check::CheckFlowProgress(reg, e, e.simulator().now());
    EXPECT_EQ(reg.violation_count(), 0u);
  }
  // The same snapshot audited far past the stall threshold: flagged.
  {
    check::MonitorRegistry reg;
    check::CheckFlowProgress(reg, e, e.simulator().now() + sim::Ms(200));
    ASSERT_EQ(reg.violation_count(), 1u);
    EXPECT_EQ(reg.violations()[0].monitor, "no-progress");
  }
}

}  // namespace
}  // namespace hpcc::scenario
