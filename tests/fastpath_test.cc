// Fastpath determinism suite: the transmission-train transmit engine
// (--fastpath=on, the default) must be observably indistinguishable from the
// per-packet reference engine (--fastpath=off) — equal golden-trace hashes
// and byte-identical scenario CSVs — while executing measurably fewer
// simulator events. Covers the committed example scenarios, the whole fuzz
// corpus, and targeted burst boundary cases: PFC pause arriving mid-train,
// queue overflow (lossy drops) mid-train, and link_down mid-train.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/experiment.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace hpcc {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Runs every sweep point of `path` under both engines; expects equal trace
// hashes, byte-identical CSVs, and (when `expect_fewer_events`) a strictly
// smaller event count on the fast path somewhere in the grid.
void ExpectEngineEquivalence(const std::string& path,
                             bool expect_fewer_events = true) {
  SCOPED_TRACE(path);
  const scenario::Scenario sc = scenario::LoadScenarioFile(path);
  const std::vector<scenario::ScenarioRun> runs = scenario::ExpandSweep(sc);
  ASSERT_FALSE(runs.empty());

  scenario::ScenarioRunnerOptions on;
  on.jobs = 1;
  on.fastpath_override = 1;
  scenario::ScenarioRunnerOptions off = on;
  off.fastpath_override = 0;
  const auto r_on = scenario::ScenarioRunner(on).RunAll(runs);
  const auto r_off = scenario::ScenarioRunner(off).RunAll(runs);
  ASSERT_EQ(r_on.size(), r_off.size());

  uint64_t ev_on = 0, ev_off = 0;
  for (size_t i = 0; i < r_on.size(); ++i) {
    SCOPED_TRACE(r_on[i].label);
    ASSERT_TRUE(r_on[i].error.empty()) << r_on[i].error;
    ASSERT_TRUE(r_off[i].error.empty()) << r_off[i].error;
    EXPECT_EQ(r_on[i].result.trace_hash, r_off[i].result.trace_hash);
    EXPECT_EQ(r_on[i].result.packets_forwarded,
              r_off[i].result.packets_forwarded);
    ev_on += r_on[i].result.events_executed;
    ev_off += r_off[i].result.events_executed;
  }
  EXPECT_EQ(scenario::ScenarioRunner::CombinedTraceHash(r_on),
            scenario::ScenarioRunner::CombinedTraceHash(r_off));
  if (expect_fewer_events) {
    // The suite must not pass vacuously with the fast path disabled.
    EXPECT_LT(ev_on, ev_off);
  }

  const std::string f_on = "fastpath_on.csv";
  const std::string f_off = "fastpath_off.csv";
  ASSERT_TRUE(scenario::ScenarioRunner::WriteCsv(f_on, r_on));
  ASSERT_TRUE(scenario::ScenarioRunner::WriteCsv(f_off, r_off));
  const std::string b_on = ReadFile(f_on);
  EXPECT_FALSE(b_on.empty());
  EXPECT_EQ(b_on, ReadFile(f_off));
  std::remove(f_on.c_str());
  std::remove(f_off.c_str());
}

// Runs one ExperimentConfig under both engines and compares every
// engine-independent observable.
struct PairResult {
  runner::ExperimentResult on, off;
};
PairResult RunPair(runner::ExperimentConfig cfg) {
  cfg.fast_path = true;
  runner::Experiment e_on(cfg);
  PairResult r;
  r.on = e_on.Run();
  cfg.fast_path = false;
  runner::Experiment e_off(cfg);
  r.off = e_off.Run();
  EXPECT_EQ(r.on.trace_hash, r.off.trace_hash);
  EXPECT_EQ(r.on.flows_completed, r.off.flows_completed);
  EXPECT_EQ(r.on.packets_forwarded, r.off.packets_forwarded);
  EXPECT_EQ(r.on.dropped_packets, r.off.dropped_packets);
  EXPECT_EQ(r.on.pause_events, r.off.pause_events);
  EXPECT_EQ(r.on.max_queue_bytes, r.off.max_queue_bytes);
  EXPECT_EQ(r.on.sim_time, r.off.sim_time);
  return r;
}

TEST(Fastpath, ExampleScenariosIdenticalAcrossEngines) {
  const std::string dir = std::string(HPCC_SOURCE_DIR) + "/examples/scenarios";
  ExpectEngineEquivalence(dir + "/fig11_load_sweep.json");
  ExpectEngineEquivalence(dir + "/fig13_link_failure.json");
}

TEST(Fastpath, Fattree16BurstIdenticalAcrossEngines) {
  // The large-fabric 512-way incast: deep multi-tier backlogs, long trains.
  ExpectEngineEquivalence(std::string(HPCC_SOURCE_DIR) +
                          "/examples/scenarios/fattree16_hadoop_burst.json");
}

TEST(Fastpath, CorpusIdenticalAcrossEngines) {
  // Every committed fuzz reproducer (includes link-flap scripts).
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::string(HPCC_SOURCE_DIR) + "/tests/corpus")) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  for (const std::string& f : files) {
    // Tiny corpus runs may not form a single train; don't require savings.
    ExpectEngineEquivalence(f, /*expect_fewer_events=*/false);
  }
}

// PFC pause mid-train: a small shared buffer under a hard incast forces
// PAUSE frames while the bottleneck egress holds committed trains — the
// pause must rewind unemitted train items exactly like the reference engine
// re-picking at its next per-packet boundary.
TEST(Fastpath, PfcPauseMidTrain) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = 17;
  // Rate-based DCQCN with ECN marking disabled: every sender streams at
  // line rate, so the shared buffer actually reaches the PFC threshold
  // (HPCC would keep it orders of magnitude below).
  cfg.cc.scheme = "dcqcn";
  cfg.red_override = net::RedConfig{};  // marking off
  cfg.incast = true;
  cfg.incast_opts.fan_in = 16;
  // Per-ingress PFC pauses need ~20 MB of shared-buffer occupancy with 16
  // equal ingresses (pause when ingress share > 11% of free buffer).
  cfg.incast_opts.flow_bytes = 2'000'000;
  cfg.incast_opts.first_event = sim::Us(10);
  cfg.duration = sim::Ms(1);
  cfg.drain_factor = 60.0;
  PairResult r = RunPair(cfg);
  EXPECT_GT(r.on.pause_events, 0u);  // the case actually exercised pauses
  EXPECT_EQ(r.on.flows_completed, r.on.flows_created);
}

// Queue overflow mid-train (lossy mode): dynamic egress-threshold drops land
// while the egress is committed to a train; admission decisions must observe
// exactly the reference engine's queue/buffer state.
TEST(Fastpath, LossyOverflowMidTrain) {
  runner::ExperimentConfig cfg;
  cfg.topology = runner::TopologyKind::kStar;
  cfg.star.num_hosts = 17;
  // Unthrottled line-rate senders against the lossy-mode dynamic egress
  // threshold: the bottleneck queue must overflow mid-train.
  cfg.cc.scheme = "dcqcn";
  cfg.red_override = net::RedConfig{};  // marking off
  cfg.pfc_enabled = false;
  cfg.incast = true;
  cfg.incast_opts.fan_in = 16;
  cfg.incast_opts.flow_bytes = 1'500'000;
  cfg.incast_opts.first_event = sim::Us(10);
  cfg.duration = sim::Ms(1);
  cfg.drain_factor = 60.0;
  PairResult r = RunPair(cfg);
  EXPECT_GT(r.on.dropped_packets, 0u);  // overflow actually happened
}

// link_down / link_up mid-train: a failing trunk freezes committed-but-
// unemitted packets back into the queue; repair resumes them. Driven through
// the scenario event script against a congested dumbbell.
TEST(Fastpath, LinkFlapMidTrain) {
  const char* doc = R"({
    "name": "flap_under_burst",
    "topology": {"kind": "dumbbell", "hosts_per_side": 6,
                  "host_gbps": 100, "trunk_gbps": 100},
    "cc": {"scheme": "hpcc"},
    "workload": {"load": 0.4, "trace": "websearch", "max_flows": 40,
                  "incast": {"fan_in": 5, "flow_bytes": 200000,
                             "first_event_us": 20, "period_us": 200}},
    "duration_ms": 0.6,
    "drain_factor": 30,
    "events": [
      {"type": "link_down", "at_us": 80, "link": 12},
      {"type": "link_up",   "at_us": 220, "link": 12}
    ]
  })";
  const std::string path = "fastpath_flap_tmp.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << doc;
  }
  ExpectEngineEquivalence(path);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hpcc
